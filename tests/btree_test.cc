#include "index/btree.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/random.h"

namespace authdb {
namespace {

std::vector<uint8_t> Payload(int64_t v, uint32_t size = 24) {
  std::vector<uint8_t> out(size, 0);
  for (int i = 0; i < 8; ++i) out[i] = static_cast<uint64_t>(v) >> (8 * i);
  return out;
}

int64_t PayloadValue(const std::vector<uint8_t>& p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= uint64_t{p[i]} << (8 * i);
  return static_cast<int64_t>(v);
}

struct TreeFixture {
  TreeFixture() : dm(""), pool(&dm, 64), tree(&pool, 24) {}
  DiskManager dm;
  BufferPool pool;
  BPlusTree tree;
};

TEST(BPlusTreeTest, EmptyTree) {
  TreeFixture f;
  EXPECT_EQ(f.tree.size(), 0u);
  EXPECT_EQ(f.tree.height(), 1u);
  EXPECT_FALSE(f.tree.Get(1).ok());
  EXPECT_FALSE(f.tree.Contains(1));
  auto scan = f.tree.Scan(0, 100);
  EXPECT_TRUE(scan.entries.empty());
  EXPECT_FALSE(scan.left_boundary.has_value());
  EXPECT_FALSE(scan.right_boundary.has_value());
}

TEST(BPlusTreeTest, InsertGet) {
  TreeFixture f;
  ASSERT_TRUE(f.tree.Insert(5, Slice(Payload(50))).ok());
  ASSERT_TRUE(f.tree.Insert(3, Slice(Payload(30))).ok());
  ASSERT_TRUE(f.tree.Insert(8, Slice(Payload(80))).ok());
  EXPECT_EQ(f.tree.size(), 3u);
  EXPECT_EQ(PayloadValue(f.tree.Get(5).value()), 50);
  EXPECT_EQ(PayloadValue(f.tree.Get(3).value()), 30);
  EXPECT_EQ(PayloadValue(f.tree.Get(8).value()), 80);
  EXPECT_FALSE(f.tree.Get(4).ok());
}

TEST(BPlusTreeTest, DuplicateInsertRejected) {
  TreeFixture f;
  ASSERT_TRUE(f.tree.Insert(5, Slice(Payload(1))).ok());
  EXPECT_EQ(f.tree.Insert(5, Slice(Payload(2))).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(f.tree.size(), 1u);
}

TEST(BPlusTreeTest, UpdateExisting) {
  TreeFixture f;
  ASSERT_TRUE(f.tree.Insert(5, Slice(Payload(1))).ok());
  ASSERT_TRUE(f.tree.Update(5, Slice(Payload(2))).ok());
  EXPECT_EQ(PayloadValue(f.tree.Get(5).value()), 2);
  EXPECT_TRUE(f.tree.Update(99, Slice(Payload(3))).IsNotFound());
}

TEST(BPlusTreeTest, UpsertInsertsThenUpdates) {
  TreeFixture f;
  ASSERT_TRUE(f.tree.Upsert(5, Slice(Payload(1))).ok());
  ASSERT_TRUE(f.tree.Upsert(5, Slice(Payload(2))).ok());
  EXPECT_EQ(f.tree.size(), 1u);
  EXPECT_EQ(PayloadValue(f.tree.Get(5).value()), 2);
}

TEST(BPlusTreeTest, SplitsGrowHeight) {
  TreeFixture f;
  // leaf capacity = (4096-12)/32 = 127; insert enough to force splits.
  for (int64_t k = 0; k < 1000; ++k)
    ASSERT_TRUE(f.tree.Insert(k, Slice(Payload(k * 10))).ok());
  EXPECT_GE(f.tree.height(), 2u);
  EXPECT_EQ(f.tree.size(), 1000u);
  for (int64_t k = 0; k < 1000; ++k)
    EXPECT_EQ(PayloadValue(f.tree.Get(k).value()), k * 10);
  f.tree.CheckInvariants();
}

TEST(BPlusTreeTest, ScanRangeWithBoundaries) {
  TreeFixture f;
  for (int64_t k = 0; k < 100; ++k)
    ASSERT_TRUE(f.tree.Insert(k * 2, Slice(Payload(k))).ok());  // even keys
  auto scan = f.tree.Scan(10, 20);
  ASSERT_EQ(scan.entries.size(), 6u);  // 10,12,...,20
  EXPECT_EQ(scan.entries.front().key, 10);
  EXPECT_EQ(scan.entries.back().key, 20);
  ASSERT_TRUE(scan.left_boundary.has_value());
  EXPECT_EQ(scan.left_boundary->key, 8);
  ASSERT_TRUE(scan.right_boundary.has_value());
  EXPECT_EQ(scan.right_boundary->key, 22);
}

TEST(BPlusTreeTest, ScanAtDomainEdges) {
  TreeFixture f;
  for (int64_t k = 0; k < 50; ++k)
    ASSERT_TRUE(f.tree.Insert(k, Slice(Payload(k))).ok());
  auto lo_scan = f.tree.Scan(0, 5);
  EXPECT_FALSE(lo_scan.left_boundary.has_value());
  EXPECT_EQ(lo_scan.entries.size(), 6u);
  auto hi_scan = f.tree.Scan(45, 49);
  EXPECT_FALSE(hi_scan.right_boundary.has_value());
  EXPECT_EQ(hi_scan.entries.size(), 5u);
  auto all = f.tree.Scan(-10, 1000);
  EXPECT_EQ(all.entries.size(), 50u);
  EXPECT_FALSE(all.left_boundary.has_value());
  EXPECT_FALSE(all.right_boundary.has_value());
}

TEST(BPlusTreeTest, ScanEmptyRangeBetweenKeys) {
  TreeFixture f;
  ASSERT_TRUE(f.tree.Insert(10, Slice(Payload(1))).ok());
  ASSERT_TRUE(f.tree.Insert(20, Slice(Payload(2))).ok());
  auto scan = f.tree.Scan(12, 18);
  EXPECT_TRUE(scan.entries.empty());
  ASSERT_TRUE(scan.left_boundary.has_value());
  EXPECT_EQ(scan.left_boundary->key, 10);
  ASSERT_TRUE(scan.right_boundary.has_value());
  EXPECT_EQ(scan.right_boundary->key, 20);
}

TEST(BPlusTreeTest, DeleteSimple) {
  TreeFixture f;
  for (int64_t k = 0; k < 10; ++k)
    ASSERT_TRUE(f.tree.Insert(k, Slice(Payload(k))).ok());
  ASSERT_TRUE(f.tree.Delete(5).ok());
  EXPECT_FALSE(f.tree.Contains(5));
  EXPECT_EQ(f.tree.size(), 9u);
  EXPECT_TRUE(f.tree.Delete(5).IsNotFound());
}

TEST(BPlusTreeTest, DeleteEverythingAndShrink) {
  TreeFixture f;
  const int64_t kN = 2000;
  for (int64_t k = 0; k < kN; ++k)
    ASSERT_TRUE(f.tree.Insert(k, Slice(Payload(k))).ok());
  uint32_t tall = f.tree.height();
  EXPECT_GE(tall, 2u);
  for (int64_t k = 0; k < kN; ++k)
    ASSERT_TRUE(f.tree.Delete(k).ok()) << k;
  EXPECT_EQ(f.tree.size(), 0u);
  EXPECT_EQ(f.tree.height(), 1u);
  f.tree.CheckInvariants();
  // Tree remains usable.
  ASSERT_TRUE(f.tree.Insert(42, Slice(Payload(1))).ok());
  EXPECT_TRUE(f.tree.Contains(42));
}

TEST(BPlusTreeTest, RandomizedAgainstStdMap) {
  TreeFixture f;
  std::map<int64_t, int64_t> model;
  Rng rng(2024);
  for (int op = 0; op < 20000; ++op) {
    int64_t key = static_cast<int64_t>(rng.Uniform(3000));
    uint64_t action = rng.Uniform(10);
    if (action < 5) {  // insert
      Status s = f.tree.Insert(key, Slice(Payload(op)));
      if (model.count(key)) {
        EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
      } else {
        EXPECT_TRUE(s.ok());
        model[key] = op;
      }
    } else if (action < 7) {  // update
      Status s = f.tree.Update(key, Slice(Payload(op)));
      if (model.count(key)) {
        EXPECT_TRUE(s.ok());
        model[key] = op;
      } else {
        EXPECT_TRUE(s.IsNotFound());
      }
    } else if (action < 9) {  // delete
      Status s = f.tree.Delete(key);
      if (model.count(key)) {
        EXPECT_TRUE(s.ok());
        model.erase(key);
      } else {
        EXPECT_TRUE(s.IsNotFound());
      }
    } else {  // point lookup
      auto got = f.tree.Get(key);
      if (model.count(key)) {
        ASSERT_TRUE(got.ok());
        EXPECT_EQ(PayloadValue(got.value()), model[key]);
      } else {
        EXPECT_FALSE(got.ok());
      }
    }
  }
  EXPECT_EQ(f.tree.size(), model.size());
  f.tree.CheckInvariants();
  // Full scan equals the model.
  auto all = f.tree.ScanAll();
  ASSERT_EQ(all.size(), model.size());
  size_t i = 0;
  for (const auto& [k, v] : model) {
    EXPECT_EQ(all[i].key, k);
    EXPECT_EQ(PayloadValue(all[i].payload), v);
    ++i;
  }
}

TEST(BPlusTreeTest, RandomizedScansAgainstModel) {
  TreeFixture f;
  std::map<int64_t, int64_t> model;
  Rng rng(77);
  for (int i = 0; i < 3000; ++i) {
    int64_t key = static_cast<int64_t>(rng.Uniform(10000));
    if (f.tree.Insert(key, Slice(Payload(key))).ok()) model[key] = key;
  }
  for (int trial = 0; trial < 100; ++trial) {
    int64_t lo = static_cast<int64_t>(rng.Uniform(10000));
    int64_t hi = lo + static_cast<int64_t>(rng.Uniform(2000));
    auto scan = f.tree.Scan(lo, hi);
    auto it_lo = model.lower_bound(lo);
    auto it_hi = model.upper_bound(hi);
    size_t expect_n = std::distance(it_lo, it_hi);
    ASSERT_EQ(scan.entries.size(), expect_n) << lo << ".." << hi;
    // Boundaries match the model's neighbors.
    if (it_lo == model.begin()) {
      EXPECT_FALSE(scan.left_boundary.has_value());
    } else {
      ASSERT_TRUE(scan.left_boundary.has_value());
      EXPECT_EQ(scan.left_boundary->key, std::prev(it_lo)->first);
    }
    if (it_hi == model.end()) {
      EXPECT_FALSE(scan.right_boundary.has_value());
    } else {
      ASSERT_TRUE(scan.right_boundary.has_value());
      EXPECT_EQ(scan.right_boundary->key, it_hi->first);
    }
  }
}

TEST(BPlusTreeTest, PersistenceAcrossReopen) {
  std::string path = ::testing::TempDir() + "/authdb_btree_test.db";
  std::remove(path.c_str());
  {
    DiskManager dm(path);
    BufferPool pool(&dm, 32);
    BPlusTree tree(&pool, 24);
    for (int64_t k = 0; k < 500; ++k)
      ASSERT_TRUE(tree.Insert(k * 3, Slice(Payload(k))).ok());
    ASSERT_TRUE(pool.FlushAll().ok());
  }
  {
    DiskManager dm(path);
    BufferPool pool(&dm, 32);
    BPlusTree tree(&pool, 24);
    EXPECT_EQ(tree.size(), 500u);
    for (int64_t k = 0; k < 500; ++k)
      EXPECT_EQ(PayloadValue(tree.Get(k * 3).value()), k);
    tree.CheckInvariants();
  }
  std::remove(path.c_str());
}

TEST(BPlusTreeTest, CapacitiesMatchPageMath) {
  TreeFixture f;
  // leaf: (4096-12)/(8+24) = 127, internal: (4096-12-4)/12 = 340
  EXPECT_EQ(f.tree.leaf_capacity(), 127u);
  EXPECT_EQ(f.tree.internal_capacity(), 340u);
}

TEST(BPlusTreeTest, DescendingInsertOrder) {
  TreeFixture f;
  for (int64_t k = 999; k >= 0; --k)
    ASSERT_TRUE(f.tree.Insert(k, Slice(Payload(k))).ok());
  EXPECT_EQ(f.tree.size(), 1000u);
  f.tree.CheckInvariants();
  auto all = f.tree.ScanAll();
  for (int64_t k = 0; k < 1000; ++k) EXPECT_EQ(all[k].key, k);
}

}  // namespace
}  // namespace authdb
