#include "sim/throughput_sim.h"

#include <cstdint>

#include <gtest/gtest.h>

#include "workload/generator.h"
#include "workload/tpce.h"

namespace authdb {
namespace {

JobDemand SimpleQuery(double service) {
  JobDemand d;
  d.qs_cpu_seconds = service;
  d.reply_bytes = 1000;
  return d;
}

TEST(ThroughputSimTest, LightLoadResponseApproachesServiceTime) {
  SystemConfig cfg;
  ThroughputSimulator sim(cfg);
  Rng rng(1);
  auto stats = sim.Run(
      /*rate=*/1.0, /*jobs=*/2000, /*upd=*/0.0,
      [](bool, Rng*) { return SimpleQuery(0.010); }, &rng);
  // 10 ms service + ~0.6 ms transmission, nearly no queueing at rate 1.
  EXPECT_NEAR(stats.mean_query_response, 0.0106, 0.002);
}

TEST(ThroughputSimTest, ResponseGrowsWithLoad) {
  SystemConfig cfg;
  cfg.cpu_cores = 1;
  ThroughputSimulator sim(cfg);
  double prev = 0;
  for (double rate : {10.0, 50.0, 90.0}) {  // service 10ms => cap 100/s
    Rng rng(2);
    auto stats = sim.Run(rate, 5000, 0.0,
                         [](bool, Rng*) { return SimpleQuery(0.010); }, &rng);
    EXPECT_GT(stats.mean_query_response, prev);
    prev = stats.mean_query_response;
  }
  EXPECT_GT(prev, 0.020);  // near saturation queueing dominates
}

TEST(ThroughputSimTest, ExclusiveRootSerializesDespiteManyCores) {
  // The EMB phenomenon: updates hold the root exclusively, so extra cores
  // cannot help; the same demand with record-level locks scales.
  SystemConfig cfg;
  cfg.cpu_cores = 4;
  ThroughputSimulator sim(cfg);
  auto root_locked = [](bool is_update, Rng*) {
    JobDemand d = SimpleQuery(0.010);
    d.is_update = is_update;
    d.exclusive_root = is_update;
    d.shared_root = !is_update;
    return d;
  };
  auto record_locked = [](bool is_update, Rng*) {
    JobDemand d = SimpleQuery(0.010);
    d.is_update = is_update;
    return d;
  };
  Rng rng1(3), rng2(3);
  // 200 jobs/s, half updates: root locking admits ~100 X-jobs/s at 10 ms
  // each -> saturation; record locking has 4 cores for 200*10ms = 2 cores
  // worth of work -> stable.
  auto locked_stats = sim.Run(200, 4000, 0.5, root_locked, &rng1);
  auto free_stats = sim.Run(200, 4000, 0.5, record_locked, &rng2);
  EXPECT_GT(locked_stats.mean_query_response,
            5 * free_stats.mean_query_response);
}

TEST(ThroughputSimTest, BreakdownSumsToResponse) {
  SystemConfig cfg;
  ThroughputSimulator sim(cfg);
  Rng rng(4);
  auto gen = [](bool is_update, Rng*) {
    JobDemand d = SimpleQuery(0.004);
    d.is_update = is_update;
    d.verify_seconds = 0.002;
    d.qs_io_seconds = 0.001;
    return d;
  };
  auto stats = sim.Run(20, 5000, 0.1, gen, &rng);
  double sum = stats.query_locking + stats.query_queueing +
               stats.query_processing + stats.query_transmission +
               stats.query_verification;
  EXPECT_NEAR(sum, stats.mean_query_response, 1e-9);
}

TEST(ThroughputSimTest, UpdatePathIncludesWanAndDaSigning) {
  SystemConfig cfg;
  ThroughputSimulator sim(cfg);
  Rng rng(5);
  auto gen = [](bool is_update, Rng*) {
    JobDemand d;
    d.is_update = is_update;
    d.da_cpu_seconds = 0.0015;           // one BAS signature
    d.update_bytes = 532;                // record + signature
    d.qs_cpu_seconds = 0.0005;
    return d;
  };
  auto stats = sim.Run(5, 3000, 1.0, gen, &rng);
  EXPECT_GT(stats.mean_update_response, 0.0015);
  EXPECT_LT(stats.mean_update_response, 0.01);
}

TEST(WorkloadGeneratorTest, RecordsAreDenseAndSized) {
  WorkloadGenerator::Config cfg;
  cfg.n_records = 1000;
  cfg.record_len = 512;
  WorkloadGenerator gen(cfg);
  auto records = gen.MakeRecords();
  ASSERT_EQ(records.size(), 1000u);
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].key(), static_cast<int64_t>(i));
    EXPECT_LE(records[i].WireSize(), 512u);
  }
}

TEST(WorkloadGeneratorTest, SelectivityWithinPaperBand) {
  WorkloadGenerator::Config cfg;
  cfg.n_records = 100000;
  cfg.selectivity = 0.001;
  WorkloadGenerator gen(cfg);
  for (int i = 0; i < 200; ++i) {
    auto [lo, hi] = gen.NextRange();
    uint64_t q = hi - lo + 1;
    EXPECT_GE(q, 50u);    // sf/2
    EXPECT_LE(q, 150u);   // 3sf/2
    EXPECT_GE(lo, 0);
    EXPECT_LT(hi, 100000);
  }
}

TEST(TpceWorkloadTest, CardinalitiesMatchPaper) {
  TpceJoinWorkload::Config cfg;
  TpceJoinWorkload wl(cfg);
  EXPECT_EQ(wl.nr(), 6850u);
  EXPECT_EQ(wl.ns(), 894000u);
  EXPECT_EQ(wl.ib(), 3425u);
  EXPECT_EQ(wl.distinct_b().size(), 3425u);
}

TEST(TpceWorkloadTest, AlphaControlsMatchRatio) {
  TpceJoinWorkload::Config cfg;
  cfg.scale_divisor = 10;
  TpceJoinWorkload wl(cfg);
  std::set<int64_t> domain(wl.distinct_b().begin(), wl.distinct_b().end());
  // n must not exceed ib (342 here): matched values are distinct B draws.
  for (double alpha : {0.0, 0.3, 0.7, 1.0}) {
    auto values = wl.MakeSecurityValues(alpha, 300);
    size_t matched = 0;
    for (int64_t v : values) matched += domain.count(v);
    EXPECT_NEAR(static_cast<double>(matched) / values.size(), alpha, 0.05)
        << alpha;
  }
}

TEST(TpceWorkloadTest, HoldingRowsCoverEveryDistinctValue) {
  TpceJoinWorkload::Config cfg;
  cfg.scale_divisor = 100;
  TpceJoinWorkload wl(cfg);
  auto rows = wl.MakeHoldingRows();
  EXPECT_EQ(rows.size(), wl.ns());
  std::set<int64_t> seen;
  for (const auto& r : rows) seen.insert(r.attrs[1]);
  EXPECT_EQ(seen.size(), wl.distinct_b().size());
  // Composite keys strictly ascending (ready for bulk load).
  for (size_t i = 1; i < rows.size(); ++i)
    EXPECT_LT(rows[i - 1].key(), rows[i].key());
}

}  // namespace
}  // namespace authdb
