// Open-loop overload harness + admission control tests.
//
// Covers the four contracts the overload path is built on: (1) the arrival
// schedule is a pure function of options + seed (determinism is what makes
// overload runs comparable across commits), (2) the client verifier
// distinguishes an honest shed from a tampered or stale answer, (3) the
// admission controller's starvation bound really lets bulk work through
// under sustained priority pressure, and (4) ServerMetrics snapshots stay
// consistent under concurrent readers (runs under TSan via the
// `concurrency` label).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "core/data_aggregator.h"
#include "core/verifier.h"
#include "server/admission.h"
#include "server/sharded_query_server.h"
#include "server/update_stream.h"
#include "sim/open_loop.h"

namespace authdb {
namespace {

using HashMode = BasContext::HashMode;

// ---------------------------------------------------------------------------
// Schedule determinism (no server needed)

OpenLoopOptions ScheduleOptions(OpenLoopOptions::Arrivals arrivals,
                                uint64_t seed) {
  OpenLoopOptions o;
  o.arrivals = arrivals;
  o.target_qps = 5000.0;
  o.total_arrivals = 400;
  o.contexts = 1000;
  o.key_lo = 0;
  o.key_hi = 127;
  o.query_span = 8;
  o.join_fraction = 0.25;
  o.projection_fraction = 0.25;
  o.join_b_lo = 0;
  o.join_b_hi = 63;
  o.seed = seed;
  return o;
}

void ExpectSameSchedule(const std::vector<Arrival>& a,
                        const std::vector<Arrival>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].due_micros, b[i].due_micros) << "arrival " << i;
    EXPECT_EQ(a[i].context, b[i].context) << "arrival " << i;
    EXPECT_EQ(a[i].plan.kind, b[i].plan.kind) << "arrival " << i;
    EXPECT_EQ(a[i].plan.lo, b[i].plan.lo) << "arrival " << i;
    EXPECT_EQ(a[i].plan.hi, b[i].plan.hi) << "arrival " << i;
    EXPECT_EQ(a[i].plan.attr_indices, b[i].plan.attr_indices) << i;
    EXPECT_EQ(a[i].plan.join_values, b[i].plan.join_values) << i;
  }
}

TEST(OpenLoopScheduleTest, SameSeedSameOptionsSameSchedule) {
  for (auto arrivals : {OpenLoopOptions::Arrivals::kPoisson,
                        OpenLoopOptions::Arrivals::kBurst}) {
    OpenLoopOptions o = ScheduleOptions(arrivals, 42);
    std::vector<Arrival> first = BuildArrivalSchedule(o);
    std::vector<Arrival> second = BuildArrivalSchedule(o);
    ASSERT_EQ(first.size(), o.total_arrivals);
    ExpectSameSchedule(first, second);
  }
}

TEST(OpenLoopScheduleTest, DifferentSeedsDiverge) {
  OpenLoopOptions o = ScheduleOptions(OpenLoopOptions::Arrivals::kPoisson, 1);
  std::vector<Arrival> a = BuildArrivalSchedule(o);
  o.seed = 2;
  std::vector<Arrival> b = BuildArrivalSchedule(o);
  ASSERT_EQ(a.size(), b.size());
  size_t diffs = 0;
  for (size_t i = 0; i < a.size(); ++i)
    diffs += a[i].due_micros != b[i].due_micros || a[i].context != b[i].context;
  EXPECT_GT(diffs, 0u);
}

TEST(OpenLoopScheduleTest, ArrivalsSortedAndNearTargetRate) {
  for (auto arrivals : {OpenLoopOptions::Arrivals::kPoisson,
                        OpenLoopOptions::Arrivals::kBurst}) {
    OpenLoopOptions o = ScheduleOptions(arrivals, 7);
    o.total_arrivals = 4000;
    std::vector<Arrival> sched = BuildArrivalSchedule(o);
    for (size_t i = 1; i < sched.size(); ++i)
      ASSERT_GE(sched[i].due_micros, sched[i - 1].due_micros);
    // Long-run mean rate stays near target for BOTH processes (the burst
    // low/high rates are chosen to preserve the mean).
    const double span_s = sched.back().due_micros * 1e-6;
    ASSERT_GT(span_s, 0.0);
    const double rate = static_cast<double>(sched.size()) / span_s;
    EXPECT_GT(rate, o.target_qps * 0.8);
    EXPECT_LT(rate, o.target_qps * 1.25);
  }
}

TEST(OpenLoopScheduleTest, PlanMixMatchesFractions) {
  OpenLoopOptions o = ScheduleOptions(OpenLoopOptions::Arrivals::kPoisson, 3);
  o.total_arrivals = 2000;
  std::vector<Arrival> sched = BuildArrivalSchedule(o);
  size_t joins = 0, projects = 0, selects = 0;
  for (const Arrival& a : sched) {
    switch (a.plan.kind) {
      case QueryKind::kSelect: ++selects; break;
      case QueryKind::kProject: ++projects; break;
      case QueryKind::kJoin: ++joins; break;
    }
  }
  const double n = static_cast<double>(sched.size());
  EXPECT_NEAR(joins / n, o.join_fraction, 0.05);
  EXPECT_NEAR(projects / n, o.projection_fraction, 0.05);
  EXPECT_NEAR(selects / n, 1.0 - o.join_fraction - o.projection_fraction,
              0.05);
}

// ---------------------------------------------------------------------------
// AdmissionController: shed + lane policy (no server needed)

ServerConfig::Admission AdmissionOpts(size_t max_inflight, size_t queue_depth,
                                      size_t starvation_bound) {
  ServerConfig::Admission a;
  a.enabled = true;
  a.max_inflight_plans = max_inflight;
  a.queue_depth = queue_depth;
  a.starvation_bound = starvation_bound;
  a.retry_after_micros = 250;
  return a;
}

TEST(AdmissionControllerTest, LaterPlansOfAFullBatchShedImmediately) {
  // One slot, no queue: the batch's first plan takes the slot; every later
  // plan is admit-or-shed and must shed without blocking.
  AdmissionController ac(AdmissionOpts(1, 0, 8));
  std::vector<uint8_t> admitted;
  size_t granted = ac.AdmitPlans(
      {QueryKind::kSelect, QueryKind::kJoin, QueryKind::kProject}, &admitted);
  EXPECT_EQ(granted, 1u);
  EXPECT_EQ(admitted, (std::vector<uint8_t>{1, 0, 0}));
  ServerMetrics::Admission snap;
  ac.Snapshot(&snap);
  EXPECT_EQ(snap.admitted_total, 1u);
  EXPECT_EQ(snap.shed_total, 2u);
  EXPECT_EQ(snap.join_shed, 1u);
  EXPECT_EQ(snap.project_shed, 1u);
  ac.Release(granted);
  // The released slot is grantable again.
  granted = ac.AdmitPlans({QueryKind::kJoin}, &admitted);
  EXPECT_EQ(granted, 1u);
  ac.Release(granted);
}

TEST(AdmissionControllerTest, StarvationBoundAdmitsBulkUnderPriorityLoad) {
  // One slot, starvation_bound = 2. Main holds the slot (streak 1); one
  // bulk and two priority callers park. The releases then play out
  // deterministically: priority (streak 2) -> bulk owed its starvation
  // grant (the second parked priority caller's turn predicate is false
  // while the streak is at the bound) -> remaining priority.
  AdmissionController ac(AdmissionOpts(1, 8, 2));
  std::vector<uint8_t> admitted;
  ASSERT_EQ(ac.AdmitPlans({QueryKind::kSelect}, &admitted), 1u);

  auto wait_for_parked = [&ac](uint64_t depth) {
    ServerMetrics::Admission snap;
    for (int i = 0; i < 20000; ++i) {
      ac.Snapshot(&snap);
      if (snap.queue_depth_max >= depth) return true;
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    return false;
  };

  std::thread bulk([&ac] {
    std::vector<uint8_t> a;
    size_t g = ac.AdmitPlans({QueryKind::kJoin}, &a);
    ac.Release(g);
  });
  ASSERT_TRUE(wait_for_parked(1));
  std::vector<std::thread> priority;
  for (int i = 0; i < 2; ++i) {
    priority.emplace_back([&ac] {
      std::vector<uint8_t> a;
      size_t g = ac.AdmitPlans({QueryKind::kSelect}, &a);
      ac.Release(g);
    });
  }
  ASSERT_TRUE(wait_for_parked(3));

  ac.Release(1);
  bulk.join();
  for (auto& t : priority) t.join();

  ServerMetrics::Admission snap;
  ac.Snapshot(&snap);
  EXPECT_EQ(snap.shed_total, 0u);
  EXPECT_EQ(snap.select_admitted, 3u);
  EXPECT_EQ(snap.join_admitted, 1u);
  EXPECT_EQ(snap.starvation_grants, 1u);
  EXPECT_EQ(snap.bulk_grants, 1u);
  EXPECT_EQ(snap.priority_grants, 3u);
  EXPECT_GE(snap.queue_depth_max, 3u);
}

// ---------------------------------------------------------------------------
// Server-backed coverage

class OpenLoopTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(0x09E71007);
    ctx_ = new std::shared_ptr<const BasContext>(
        BasContext::Generate(96, 64, &rng));
  }

  void SetUp() override {
    clock_.SetMicros(1'000'000);
    rng_ = std::make_unique<Rng>(29);
    DataAggregator::Options opt;
    opt.record_len = 128;
    opt.piggyback_renewal = false;
    opt.sign_attributes = true;  // projection plans need attribute sigs
    da_ = std::make_unique<DataAggregator>(*ctx_, &clock_, rng_.get(), opt);
  }

  std::unique_ptr<ShardedQueryServer> MakeServer(const ServerConfig& cfg,
                                                 size_t shards,
                                                 int64_t n_keys) {
    auto server = std::make_unique<ShardedQueryServer>(
        *ctx_, ShardRouter::Uniform(shards, 0, n_keys - 1), cfg);
    std::vector<Record> records;
    for (int64_t k = 0; k < n_keys; ++k) {
      Record r;
      r.attrs = {k, k};
      records.push_back(r);
    }
    auto stream = da_->BulkLoad(std::move(records));
    EXPECT_TRUE(stream.ok());
    for (const auto& msg : stream.value())
      EXPECT_TRUE(server->ApplyUpdate(msg).ok());
    return server;
  }

  static ServerConfig Config(size_t workers) {
    ServerConfig cfg;
    cfg.node.record_len = 128;
    cfg.serving.worker_threads = workers;
    return cfg;
  }

  static std::shared_ptr<const BasContext>* ctx_;
  ManualClock clock_;
  std::unique_ptr<Rng> rng_;
  VarintGapCodec codec_;
  std::unique_ptr<DataAggregator> da_;
};
std::shared_ptr<const BasContext>* OpenLoopTest::ctx_ = nullptr;

TEST_F(OpenLoopTest, RunAccountsEveryArrivalWithoutAdmission) {
  auto server = MakeServer(Config(2), 2, 64);
  OpenLoopOptions o;
  o.target_qps = 20000.0;  // fast test; the tiny relation keeps up
  o.total_arrivals = 200;
  o.contexts = 500;
  o.dispatch_threads = 4;
  o.batch_size = 2;
  o.key_lo = 0;
  o.key_hi = 63;
  o.query_span = 4;
  o.projection_fraction = 0.2;
  o.projection_attrs = {1};
  o.seed = 5;
  OpenLoopReport rep = RunOpenLoopLoad(server.get(), o);
  EXPECT_EQ(rep.offered, o.total_arrivals);
  EXPECT_EQ(rep.offered,
            rep.offered_selects + rep.offered_projects + rep.offered_joins);
  // Admission is off: nothing sheds, nothing fails.
  EXPECT_EQ(rep.shed, 0u);
  EXPECT_EQ(rep.failures, 0u);
  EXPECT_EQ(rep.served + rep.not_found, rep.offered);
  EXPECT_EQ(rep.queue_delay.count(), rep.offered);
  EXPECT_GT(rep.goodput_qps, 0.0);
  EXPECT_EQ(rep.server.admission.enabled, false);
  EXPECT_EQ(rep.server.exec.plans, rep.offered);
}

TEST_F(OpenLoopTest, VerifierDistinguishesShedFromTamperedAndStale) {
  auto server = MakeServer(Config(2), 2, 64);
  const Query q = Query::Select(8, 15);
  auto served = server->Execute(q);
  ASSERT_TRUE(served.ok());
  ASSERT_EQ(served.value().outcome, AnswerOutcome::kServed);
  const uint64_t epoch = served.value().served_epoch;
  const uint64_t now = clock_.NowMicros();

  ClientVerifier verifier(&da_->public_key(), &codec_, HashMode::kFast);
  // Honest served answer: verifies.
  EXPECT_TRUE(verifier.VerifyAnswerFresh(q, served.value(), now, epoch).ok());

  // Honest shed: payload-free refusal -> ResourceExhausted (retry), never
  // a verification failure.
  QueryAnswer shed = MakeShedAnswer(q.kind, epoch, 250);
  Status s = verifier.VerifyAnswerFresh(q, shed, now, epoch);
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsResourceExhausted());

  // Tampering disguised as a shed: any payload under the shed banner is a
  // verification failure, NOT a retryable overload signal.
  QueryAnswer tampered = MakeShedAnswer(q.kind, epoch, 250);
  tampered.selection.records = served.value().selection.records;
  s = verifier.VerifyAnswerFresh(q, tampered, now, epoch);
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(s.IsResourceExhausted());

  // Stale served answer (older epoch than the summary stream reached):
  // also a verification failure, not a shed.
  s = verifier.VerifyAnswerFresh(q, served.value(), now, epoch + 1);
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(s.IsResourceExhausted());
}

TEST_F(OpenLoopTest, OverloadShedsBulkFirstAndCountsAgree) {
  ServerConfig cfg = Config(2);
  cfg.admission.enabled = true;
  cfg.admission.max_inflight_plans = 2;
  cfg.admission.queue_depth = 2;
  cfg.admission.starvation_bound = 4;
  cfg.admission.retry_after_micros = 200;
  auto server = MakeServer(cfg, 2, 64);

  OpenLoopOptions o;
  o.target_qps = 50000.0;  // far past a 2-slot server: must shed
  o.total_arrivals = 600;
  o.contexts = 2000;
  o.dispatch_threads = 12;  // > max_inflight + queue_depth
  o.batch_size = 2;
  o.key_lo = 0;
  o.key_hi = 63;
  o.query_span = 8;
  o.projection_fraction = 0.4;
  o.projection_attrs = {1};
  o.seed = 11;
  OpenLoopReport rep = RunOpenLoopLoad(server.get(), o);
  EXPECT_EQ(rep.offered, o.total_arrivals);
  EXPECT_EQ(rep.failures, 0u);
  EXPECT_EQ(rep.served + rep.shed + rep.not_found, rep.offered);
  // The harness's shed accounting and the server's agree exactly.
  EXPECT_EQ(rep.server.admission.shed_total, rep.shed);
  EXPECT_EQ(rep.server.admission.select_shed, rep.shed_selects);
  EXPECT_EQ(rep.server.admission.project_shed, rep.shed_projects);
  EXPECT_EQ(rep.shed_latency.count(), rep.shed);
}

TEST_F(OpenLoopTest, MetricsSnapshotsAreMonotonicUnderConcurrentReaders) {
  auto server = MakeServer(Config(4), 4, 128);
  ServerConfig scfg = Config(4);
  UpdateStream stream(server.get(), scfg);

  std::atomic<bool> done{false};
  std::atomic<size_t> violations{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      ServerMetrics prev = stream.Metrics();
      while (!done.load(std::memory_order_relaxed)) {
        ServerMetrics cur = stream.Metrics();
        // Every cumulative counter is monotone between two snapshots taken
        // by the same thread, no matter what runs concurrently.
        if (cur.exec.batches < prev.exec.batches ||
            cur.exec.plans < prev.exec.plans ||
            cur.ingest.updates_pushed < prev.ingest.updates_pushed ||
            cur.ingest.pieces_applied < prev.ingest.pieces_applied ||
            cur.epoch.published_total < prev.epoch.published_total) {
          ++violations;
        }
        prev = std::move(cur);
      }
    });
  }
  std::thread querier([&] {
    Rng rng(71);
    for (int i = 0; i < 80; ++i) {
      int64_t lo = static_cast<int64_t>(rng.Uniform(120));
      std::vector<Query> plans;
      plans.push_back(Query::Select(lo, lo + 4));
      plans.push_back(Query::Project(lo, lo + 4, {1}));
      auto answers = server->ExecuteBatch(PlanBatch::Of(std::move(plans)));
      for (const auto& a : answers) EXPECT_TRUE(a.ok());
    }
  });
  for (int i = 0; i < 40; ++i) {
    int64_t key = static_cast<int64_t>(rng_->Uniform(128));
    auto msg = da_->ModifyRecord(key, {key, 9000 + i});
    ASSERT_TRUE(msg.ok());
    stream.PushUpdate(std::move(msg.value()));
  }
  stream.Flush();
  querier.join();
  done.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(violations.load(), 0u);

  ServerMetrics last = stream.Metrics();
  EXPECT_EQ(last.ingest.updates_pushed, 40u);
  EXPECT_EQ(last.ingest.apply_failures, 0u);
  EXPECT_GE(last.exec.batches, 80u);
}

}  // namespace
}  // namespace authdb
