// End-to-end tests of the sharded serving layer: the DA's single signed
// stream is routed across K QueryServer shards, and the stitched multi-shard
// SelectionAnswer must pass the *unmodified* ClientVerifier — correctness,
// completeness boundaries, and freshness summaries.
#include "server/sharded_query_server.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/data_aggregator.h"
#include "core/verifier.h"

namespace authdb {
namespace {

using HashMode = BasContext::HashMode;

class ShardedServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(0x54AD);
    ctx_ = new std::shared_ptr<const BasContext>(
        BasContext::Generate(96, 64, &rng));
  }

  void SetUp() override {
    clock_.SetMicros(1'000'000);
    rng_ = std::make_unique<Rng>(7);
    DataAggregator::Options opt;
    opt.record_len = 128;
    opt.rho_micros = 1'000'000;
    opt.rho_prime_micros = 60'000'000;
    da_ = std::make_unique<DataAggregator>(*ctx_, &clock_, rng_.get(), opt);
    verifier_ = std::make_unique<ClientVerifier>(&da_->public_key(), &codec_,
                                                 HashMode::kFast);
  }

  /// Build a K-shard server over [0, 198] and a single-server reference,
  /// both fed the same bulk stream of records with the given keys.
  void Load(size_t shards, const std::vector<int64_t>& keys) {
    ServerConfig cfg;
    cfg.node.record_len = 128;
    cfg.serving.worker_threads = 2;
    server_ = std::make_unique<ShardedQueryServer>(
        *ctx_, ShardRouter::Uniform(shards, 0, 198), cfg);
    QueryServer::Options qopt;
    qopt.record_len = 128;
    reference_ = std::make_unique<QueryServer>(*ctx_, qopt);
    std::vector<Record> records;
    for (int64_t k : keys) {
      Record r;
      r.attrs = {k, k * 100, k};
      records.push_back(r);
    }
    auto stream = da_->BulkLoad(std::move(records));
    ASSERT_TRUE(stream.ok());
    for (const auto& msg : stream.value()) {
      ASSERT_TRUE(server_->ApplyUpdate(msg).ok());
      ASSERT_TRUE(reference_->ApplyUpdate(msg).ok());
    }
  }

  std::vector<int64_t> EvenKeys() {
    std::vector<int64_t> keys;
    for (int64_t k = 0; k < 100; ++k) keys.push_back(k * 2);
    return keys;
  }

  /// Apply a DA message to both servers.
  void Apply(const SignedRecordUpdate& msg) {
    ASSERT_TRUE(server_->ApplyUpdate(msg).ok());
    ASSERT_TRUE(reference_->ApplyUpdate(msg).ok());
  }
  void PublishPeriod() {
    auto out = da_->PublishSummary();
    server_->AddSummary(out.summary);
    for (const auto& msg : out.recertifications) Apply(msg);
  }

  /// The stitched answer must verify and agree record-for-record (and
  /// aggregate-for-aggregate) with the single-server answer.
  void ExpectMatchesReference(int64_t lo, int64_t hi) {
    auto sharded = server_->Select(lo, hi);
    auto single = reference_->Select(lo, hi);
    ASSERT_EQ(sharded.ok(), single.ok()) << lo << ".." << hi;
    if (!sharded.ok()) return;
    const SelectionAnswer& a = sharded.value();
    const SelectionAnswer& b = single.value();
    EXPECT_EQ(a.records, b.records);
    EXPECT_EQ(a.left_key, b.left_key);
    EXPECT_EQ(a.right_key, b.right_key);
    EXPECT_EQ(a.proof_record.has_value(), b.proof_record.has_value());
    EXPECT_TRUE((*ctx_)->curve().Equal(a.agg_sig.point, b.agg_sig.point));
    EXPECT_TRUE(verifier_->VerifySelection(lo, hi, a, Now()).ok())
        << lo << ".." << hi;
  }

  uint64_t Now() { return clock_.NowMicros(); }

  static std::shared_ptr<const BasContext>* ctx_;
  ManualClock clock_;
  std::unique_ptr<Rng> rng_;
  VarintGapCodec codec_;
  std::unique_ptr<DataAggregator> da_;
  std::unique_ptr<ShardedQueryServer> server_;
  std::unique_ptr<QueryServer> reference_;
  std::unique_ptr<ClientVerifier> verifier_;
};
std::shared_ptr<const BasContext>* ShardedServerTest::ctx_ = nullptr;

TEST_F(ShardedServerTest, SingleShardRangeVerifies) {
  Load(4, EvenKeys());
  auto ans = server_->Select(60, 80);  // interior to shard 1 = [50, 99]
  ASSERT_TRUE(ans.ok());
  EXPECT_EQ(ans.value().records.size(), 11u);
  EXPECT_TRUE(verifier_->VerifySelection(60, 80, ans.value(), Now()).ok());
}

TEST_F(ShardedServerTest, SeamSpanningRangeVerifies) {
  Load(4, EvenKeys());
  const ServerMetrics before = server_->Metrics();
  auto ans = server_->Select(40, 110);  // shards 0, 1, 2
  ASSERT_TRUE(ans.ok());
  const ServerMetrics delta = server_->Metrics().Delta(before);
  EXPECT_EQ(delta.exec.shards_queried, 3u);
  EXPECT_EQ(ans.value().records.size(), 36u);  // even keys 40..110
  EXPECT_TRUE(verifier_->VerifySelection(40, 110, ans.value(), Now()).ok());
}

TEST_F(ShardedServerTest, AllShardRangeAndDomainEdges) {
  Load(4, EvenKeys());
  ExpectMatchesReference(-100, 600);  // everything, boundaries at sentinels
  ExpectMatchesReference(0, 198);
  ExpectMatchesReference(-100, -50);  // entirely below the data
  ExpectMatchesReference(500, 600);   // entirely above the data
}

TEST_F(ShardedServerTest, RandomRangesMatchSingleServer) {
  Load(4, EvenKeys());
  Rng rng(21);
  for (int trial = 0; trial < 30; ++trial) {
    int64_t lo = static_cast<int64_t>(rng.Uniform(220)) - 10;
    int64_t hi = lo + static_cast<int64_t>(rng.Uniform(120));
    ExpectMatchesReference(lo, hi);
  }
}

TEST_F(ShardedServerTest, EmptyRangeWithinOneShardVerifies) {
  Load(4, EvenKeys());
  auto ans = server_->Select(61, 61);  // between keys 60 and 62, shard 1
  ASSERT_TRUE(ans.ok());
  EXPECT_TRUE(ans.value().records.empty());
  ASSERT_TRUE(ans.value().proof_record.has_value());
  EXPECT_TRUE(verifier_->VerifySelection(61, 61, ans.value(), Now()).ok());
}

TEST_F(ShardedServerTest, EmptyRangeAcrossEmptyShardsVerifies) {
  // Data only near the domain edges: shards 1 and 2 of the 4-way split
  // hold nothing, so emptiness proofs must chain across whole shards.
  Load(4, {2, 4, 6, 190, 192, 194});
  auto ans = server_->Select(10, 180);  // covers all four shards, no hits
  ASSERT_TRUE(ans.ok());
  EXPECT_TRUE(ans.value().records.empty());
  ASSERT_TRUE(ans.value().proof_record.has_value());
  EXPECT_EQ(ans.value().proof_record->key(), 6);    // global predecessor
  EXPECT_EQ(ans.value().right_key, 190);            // global successor
  EXPECT_TRUE(verifier_->VerifySelection(10, 180, ans.value(), Now()).ok());
  ExpectMatchesReference(10, 180);
}

TEST_F(ShardedServerTest, ResultsSeparatedByEmptyShardsChainAcrossSeam) {
  Load(4, {2, 4, 6, 190, 192, 194});
  // Hits on both edges with two empty shards between them: the chain seam
  // 6 -> 190 crosses three shard boundaries and must still verify.
  auto ans = server_->Select(4, 192);
  ASSERT_TRUE(ans.ok());
  EXPECT_EQ(ans.value().records.size(), 4u);  // 4, 6, 190, 192
  EXPECT_TRUE(verifier_->VerifySelection(4, 192, ans.value(), Now()).ok());
  ExpectMatchesReference(4, 192);
}

TEST_F(ShardedServerTest, BoundaryProbeReachesAcrossShards) {
  // First result sits at the very bottom of shard 2; its chain predecessor
  // lives two shards down — the stitcher must find it by probing.
  Load(4, {2, 4, 120, 122});
  auto ans = server_->Select(100, 130);  // shard 2 = [100, 149]
  ASSERT_TRUE(ans.ok());
  EXPECT_EQ(ans.value().records.size(), 2u);
  EXPECT_EQ(ans.value().left_key, 4);  // probed from shard 0
  EXPECT_TRUE(verifier_->VerifySelection(100, 130, ans.value(), Now()).ok());
}

TEST_F(ShardedServerTest, EmptyRelationReportsNotFound) {
  Load(4, {});
  auto ans = server_->Select(10, 20);
  ASSERT_FALSE(ans.ok());
  EXPECT_TRUE(ans.status().IsNotFound());
}

TEST_F(ShardedServerTest, ModifyRoutedToOwnerShard) {
  Load(4, EvenKeys());
  auto msg = da_->ModifyRecord(100, {100, 31337, 0});
  ASSERT_TRUE(msg.ok());
  Apply(msg.value());
  auto ans = server_->Select(100, 100);
  ASSERT_TRUE(ans.ok());
  EXPECT_EQ(ans.value().records[0].attrs[1], 31337);
  EXPECT_TRUE(verifier_->VerifySelection(100, 100, ans.value(), Now()).ok());
}

TEST_F(ShardedServerTest, InsertAtSeamRechainsNeighborsOnBothShards) {
  Load(4, EvenKeys());
  // The 4-way split of [0, 198] puts the seam at 50: key 48 lives on shard
  // 0, key 50 on shard 1. Inserting 49 re-certifies both neighbors, and the
  // two re-chained records land on *different* shards.
  auto msg = da_->InsertRecord({49, 7, 7});
  ASSERT_TRUE(msg.ok());
  EXPECT_FALSE(msg.value().recertified.empty());
  Apply(msg.value());
  ExpectMatchesReference(44, 54);
  auto ans = server_->Select(44, 54);
  ASSERT_TRUE(ans.ok());
  EXPECT_EQ(ans.value().records.size(), 7u);  // 44 46 48 49 50 52 54
}

TEST_F(ShardedServerTest, DeleteAtSeamRechainsAcrossShards) {
  Load(4, EvenKeys());
  auto msg = da_->DeleteRecord(50);  // first key of shard 1
  ASSERT_TRUE(msg.ok());
  Apply(msg.value());
  ExpectMatchesReference(44, 56);
  auto gone = server_->Select(50, 50);
  ASSERT_TRUE(gone.ok());
  EXPECT_TRUE(gone.value().records.empty());
  EXPECT_TRUE(verifier_->VerifySelection(50, 50, gone.value(), Now()).ok());
}

TEST_F(ShardedServerTest, FreshnessSummariesIndictStaleReplay) {
  Load(4, EvenKeys());
  auto stale = server_->Select(100, 100);
  ASSERT_TRUE(stale.ok());
  EXPECT_TRUE(verifier_->VerifySelection(100, 100, stale.value(), Now()).ok());
  clock_.AdvanceSeconds(0.5);
  auto msg = da_->ModifyRecord(100, {100, 999, 0});
  ASSERT_TRUE(msg.ok());
  Apply(msg.value());
  clock_.AdvanceSeconds(0.6);
  PublishPeriod();
  clock_.AdvanceSeconds(1.0);
  PublishPeriod();
  // A fresh client pulls current summaries through any answer, then must
  // reject the pre-update answer replayed by a stale/compromised server.
  ClientVerifier fresh(&da_->public_key(), &codec_, HashMode::kFast);
  auto current = server_->Select(0, 0);
  ASSERT_TRUE(current.ok());
  EXPECT_FALSE(current.value().summaries.empty());
  ASSERT_TRUE(fresh.VerifySelection(0, 0, current.value(), Now()).ok());
  Status s = fresh.VerifySelection(100, 100, stale.value(), Now());
  EXPECT_TRUE(s.IsVerificationFailed()) << s.ToString();
  auto fresh_ans = server_->Select(100, 100);
  ASSERT_TRUE(fresh_ans.ok());
  EXPECT_TRUE(fresh.VerifySelection(100, 100, fresh_ans.value(), Now()).ok());
}

TEST_F(ShardedServerTest, PerShardSigCacheKeepsAnswersVerifiable) {
  Load(4, EvenKeys());
  server_->EnableSigCache(SigCache::RefreshMode::kLazy, 4);
  Rng rng(31);
  const ServerMetrics before = server_->Metrics();
  for (int trial = 0; trial < 20; ++trial) {
    int64_t lo = static_cast<int64_t>(rng.Uniform(180));
    int64_t hi = lo + static_cast<int64_t>(rng.Uniform(60));
    auto ans = server_->Select(lo, hi);
    ASSERT_TRUE(ans.ok());
    EXPECT_TRUE(verifier_->VerifySelection(lo, hi, ans.value(), Now()).ok())
        << lo << ".." << hi;
  }
  EXPECT_GT(server_->Metrics().Delta(before).exec.agg_cache_hits, 0u);
  // Updates keep flowing correctly through the cached shards.
  auto msg = da_->ModifyRecord(60, {60, 5, 5});
  ASSERT_TRUE(msg.ok());
  Apply(msg.value());
  auto ans = server_->Select(50, 70);
  ASSERT_TRUE(ans.ok());
  EXPECT_TRUE(verifier_->VerifySelection(50, 70, ans.value(), Now()).ok());
}

TEST_F(ShardedServerTest, OnlineRetuneSwapsPlansAndKeepsAnswersExact) {
  Load(4, EvenKeys());
  server_->EnableSigCache(SigCache::RefreshMode::kLazy, 4);
  // Drive a leaf-heavy mix (ranges the harmonic plan covers poorly), then
  // retune: the observed leaf share pulls the blended distribution toward
  // uniform, so at least one shard's plan must change.
  Rng rng(47);
  for (int trial = 0; trial < 30; ++trial) {
    int64_t lo = static_cast<int64_t>(rng.Uniform(120));
    int64_t hi = lo + 40 + static_cast<int64_t>(rng.Uniform(60));
    ASSERT_TRUE(server_->Select(lo, hi).ok());
  }
  const ServerMetrics before = server_->Metrics();
  EXPECT_GT(before.exec.agg_leaf_fetches, 0u);
  size_t installs = server_->RetuneSigCache();
  EXPECT_GT(installs, 0u);
  EXPECT_EQ(server_->Metrics().Delta(before).exec.cache_retunes, installs);
  // An immediate second retune observes no new traffic: the blend weight
  // collapses to pure harmonic, so plans change back — and a third is a
  // no-op (identical plans keep their windows).
  size_t back = server_->RetuneSigCache();
  EXPECT_GT(back, 0u);
  EXPECT_EQ(server_->RetuneSigCache(), 0u);
  // Answers after the swaps still verify and match the reference.
  for (int trial = 0; trial < 10; ++trial) {
    int64_t lo = static_cast<int64_t>(rng.Uniform(180));
    ExpectMatchesReference(lo, lo + static_cast<int64_t>(rng.Uniform(60)));
  }
}

}  // namespace
}  // namespace authdb
