#include "crypto/simd/sha_multibuf.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "crypto/sha.h"
#include "crypto/simd/cpu_features.h"

// Scalar-vs-SIMD cross-checks for the multi-buffer SHA front end. Every
// tier the build can express is run against the scalar reference over all
// lane counts (1..2x the vector width), block-boundary lengths, and
// deliberately misaligned buffers — the dispatch choice must never be
// observable in a digest.

namespace authdb {
namespace {

using simd::ShaDispatch;

std::vector<ShaDispatch> TiersToTest() {
  // Request every tier; the library clamps unsupported ones to a runnable
  // fallback, so on any hardware this at least re-checks scalar and at
  // best covers SHA-NI and AVX2 against it.
  return {ShaDispatch::kScalar, ShaDispatch::kAvx2, ShaDispatch::kShaNi};
}

// The lengths where Merkle-Damgard padding changes shape: empty message,
// one byte below/at the 56-byte length-field boundary, around one full
// block, and multi-block tails on both sides of the boundary.
const size_t kBoundaryLengths[] = {0,  1,  55,  56,  57,  63,  64,
                                   65, 119, 120, 127, 128, 129, 200};

std::string RandomMessage(Rng* rng, size_t len) {
  std::string msg(len, 0);
  for (auto& c : msg) c = static_cast<char>(rng->Uniform(256));
  return msg;
}

TEST(ShaSimdTest, ReportActiveDispatch) {
  // Informational: make the selected tier visible in test logs so a CI
  // matrix leg's AUTHDB_SHA_DISPATCH override is auditable.
  const ShaDispatch d = simd::ActiveShaDispatch();
  RecordProperty("sha_dispatch", simd::ShaDispatchName(d));
  SUCCEED() << "active dispatch: " << simd::ShaDispatchName(d)
            << " (cpu avx2=" << simd::CpuHasAvx2()
            << " shani=" << simd::CpuHasShaNi() << ")";
}

TEST(ShaSimdTest, Sha1AllTiersMatchScalarAllLaneCounts) {
  Rng rng(101);
  for (size_t count = 1; count <= 17; ++count) {
    std::vector<std::string> bufs;
    bufs.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      bufs.push_back(RandomMessage(&rng, rng.Uniform(300)));
    }
    std::vector<Slice> msgs;
    std::vector<Digest160> want(count);
    for (size_t i = 0; i < count; ++i) {
      msgs.emplace_back(bufs[i]);
      want[i] = Sha1::Hash(msgs[i]);
    }
    for (ShaDispatch tier : TiersToTest()) {
      std::vector<Digest160> got(count);
      simd::Sha1HashManyTier(tier, msgs.data(), count, got.data());
      for (size_t i = 0; i < count; ++i) {
        EXPECT_EQ(got[i], want[i])
            << "tier=" << simd::ShaDispatchName(tier) << " count=" << count
            << " lane=" << i << " len=" << bufs[i].size();
      }
    }
  }
}

TEST(ShaSimdTest, Sha256AllTiersMatchScalarAllLaneCounts) {
  Rng rng(102);
  for (size_t count = 1; count <= 17; ++count) {
    std::vector<std::string> bufs;
    bufs.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      bufs.push_back(RandomMessage(&rng, rng.Uniform(300)));
    }
    std::vector<Slice> msgs;
    std::vector<Digest256> want(count);
    for (size_t i = 0; i < count; ++i) {
      msgs.emplace_back(bufs[i]);
      want[i] = Sha256::Hash(msgs[i]);
    }
    for (ShaDispatch tier : TiersToTest()) {
      std::vector<Digest256> got(count);
      simd::Sha256HashManyTier(tier, msgs.data(), count, got.data());
      for (size_t i = 0; i < count; ++i) {
        EXPECT_EQ(got[i], want[i])
            << "tier=" << simd::ShaDispatchName(tier) << " count=" << count
            << " lane=" << i << " len=" << bufs[i].size();
      }
    }
  }
}

TEST(ShaSimdTest, BlockBoundaryLengths) {
  // One batch holding every padding-shape edge case at once, so lanes with
  // different block counts (1 vs 2 vs 4) share a vector group.
  Rng rng(103);
  std::vector<std::string> bufs;
  for (size_t len : kBoundaryLengths) {
    bufs.push_back(RandomMessage(&rng, len));
  }
  std::vector<Slice> msgs;
  std::vector<Digest160> want1(bufs.size());
  std::vector<Digest256> want2(bufs.size());
  for (size_t i = 0; i < bufs.size(); ++i) {
    msgs.emplace_back(bufs[i]);
    want1[i] = Sha1::Hash(msgs[i]);
    want2[i] = Sha256::Hash(msgs[i]);
  }
  for (ShaDispatch tier : TiersToTest()) {
    std::vector<Digest160> got1(bufs.size());
    std::vector<Digest256> got2(bufs.size());
    simd::Sha1HashManyTier(tier, msgs.data(), msgs.size(), got1.data());
    simd::Sha256HashManyTier(tier, msgs.data(), msgs.size(), got2.data());
    for (size_t i = 0; i < bufs.size(); ++i) {
      EXPECT_EQ(got1[i], want1[i]) << "sha1 tier="
                                   << simd::ShaDispatchName(tier)
                                   << " len=" << bufs[i].size();
      EXPECT_EQ(got2[i], want2[i]) << "sha256 tier="
                                   << simd::ShaDispatchName(tier)
                                   << " len=" << bufs[i].size();
    }
  }
}

TEST(ShaSimdTest, UnalignedBuffers) {
  // Slices starting at every offset 1..31 within an oversized backing
  // buffer: the vector loads must not require any alignment.
  Rng rng(104);
  std::vector<uint8_t> backing(4096);
  for (auto& b : backing) b = static_cast<uint8_t>(rng.Uniform(256));
  for (size_t offset = 1; offset <= 31; ++offset) {
    std::vector<Slice> msgs;
    std::vector<Digest160> want(8);
    for (size_t i = 0; i < 8; ++i) {
      const size_t len = 40 + 17 * i;  // spans 1- and 2-block messages
      msgs.emplace_back(backing.data() + offset + 96 * i, len);
      want[i] = Sha1::Hash(msgs[i]);
    }
    for (ShaDispatch tier : TiersToTest()) {
      std::vector<Digest160> got(8);
      simd::Sha1HashManyTier(tier, msgs.data(), msgs.size(), got.data());
      for (size_t i = 0; i < 8; ++i) {
        EXPECT_EQ(got[i], want[i]) << "tier=" << simd::ShaDispatchName(tier)
                                   << " offset=" << offset << " lane=" << i;
      }
    }
  }
}

TEST(ShaSimdTest, HashManyMatchesFipsVectors) {
  const std::string abc = "abc";
  const std::string empty;
  const std::string two_block =
      "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
  std::vector<Slice> msgs = {Slice(abc), Slice(empty), Slice(two_block)};
  std::vector<Digest160> d1(3);
  Sha1::HashMany(msgs.data(), msgs.size(), d1.data());
  EXPECT_EQ(d1[0].ToHex(), "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(d1[1].ToHex(), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(d1[2].ToHex(), "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
  std::vector<Digest256> d2(3);
  Sha256::HashMany(msgs.data(), msgs.size(), d2.data());
  EXPECT_EQ(d2[0].ToHex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(d2[1].ToHex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(d2[2].ToHex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(ShaSimdTest, ZeroCountIsNoOp) {
  for (ShaDispatch tier : TiersToTest()) {
    simd::Sha1HashManyTier(tier, nullptr, 0, nullptr);
    simd::Sha256HashManyTier(tier, nullptr, 0, nullptr);
  }
  Sha1::HashMany(nullptr, 0, nullptr);
  Sha256::HashMany(nullptr, 0, nullptr);
}

TEST(ShaSimdTest, LongMessages) {
  // Multi-kilobyte lanes with very different block counts in one group.
  Rng rng(105);
  std::vector<std::string> bufs;
  for (size_t i = 0; i < 8; ++i) {
    bufs.push_back(RandomMessage(&rng, 1 + i * 700));
  }
  std::vector<Slice> msgs;
  std::vector<Digest256> want(bufs.size());
  for (size_t i = 0; i < bufs.size(); ++i) {
    msgs.emplace_back(bufs[i]);
    want[i] = Sha256::Hash(msgs[i]);
  }
  for (ShaDispatch tier : TiersToTest()) {
    std::vector<Digest256> got(bufs.size());
    simd::Sha256HashManyTier(tier, msgs.data(), msgs.size(), got.data());
    for (size_t i = 0; i < bufs.size(); ++i) {
      EXPECT_EQ(got[i], want[i]) << "tier=" << simd::ShaDispatchName(tier)
                                 << " len=" << bufs[i].size();
    }
  }
}

}  // namespace
}  // namespace authdb
