#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/random.h"
#include "storage/buffer_pool.h"
#include "storage/record_file.h"

namespace authdb {
namespace {

TEST(DiskManagerTest, InMemoryReadWrite) {
  DiskManager dm("");
  PageId p0 = dm.AllocatePage();
  PageId p1 = dm.AllocatePage();
  EXPECT_EQ(p0, 0u);
  EXPECT_EQ(p1, 1u);
  uint8_t buf[kPageSize] = {0};
  buf[0] = 42;
  buf[kPageSize - 1] = 24;
  ASSERT_TRUE(dm.WritePage(p1, buf).ok());
  uint8_t out[kPageSize];
  ASSERT_TRUE(dm.ReadPage(p1, out).ok());
  EXPECT_EQ(out[0], 42);
  EXPECT_EQ(out[kPageSize - 1], 24);
  EXPECT_EQ(dm.stats().reads, 1u);
  EXPECT_EQ(dm.stats().writes, 1u);
}

TEST(DiskManagerTest, OutOfRangeRejected) {
  DiskManager dm("");
  uint8_t buf[kPageSize];
  EXPECT_FALSE(dm.ReadPage(3, buf).ok());
  EXPECT_FALSE(dm.WritePage(3, buf).ok());
}

TEST(DiskManagerTest, FileBackedPersistence) {
  std::string path = ::testing::TempDir() + "/authdb_dm_test.db";
  std::remove(path.c_str());
  {
    DiskManager dm(path);
    PageId p = dm.AllocatePage();
    uint8_t buf[kPageSize] = {0};
    buf[7] = 77;
    ASSERT_TRUE(dm.WritePage(p, buf).ok());
  }
  {
    DiskManager dm(path);
    EXPECT_EQ(dm.page_count(), 1u);
    uint8_t out[kPageSize];
    ASSERT_TRUE(dm.ReadPage(0, out).ok());
    EXPECT_EQ(out[7], 77);
  }
  std::remove(path.c_str());
}

TEST(BufferPoolTest, FetchCachesPages) {
  DiskManager dm("");
  BufferPool pool(&dm, 4);
  Page* p = pool.New();
  PageId id = p->id;
  p->bytes()[0] = 99;
  pool.Unpin(p, true);
  Page* again = pool.Fetch(id);
  EXPECT_EQ(again->bytes()[0], 99);
  EXPECT_EQ(pool.hits(), 1u);
  pool.Unpin(again, false);
}

TEST(BufferPoolTest, EvictionWritesDirtyPages) {
  DiskManager dm("");
  BufferPool pool(&dm, 2);
  PageId ids[4];
  for (int i = 0; i < 4; ++i) {
    Page* p = pool.New();
    ids[i] = p->id;
    p->bytes()[0] = static_cast<uint8_t>(i + 1);
    pool.Unpin(p, true);
  }
  // Pages 0 and 1 must have been evicted and written back.
  for (int i = 0; i < 4; ++i) {
    Page* p = pool.Fetch(ids[i]);
    EXPECT_EQ(p->bytes()[0], i + 1) << "page " << i;
    pool.Unpin(p, false);
  }
}

TEST(BufferPoolTest, PinnedPagesAreNotEvicted) {
  DiskManager dm("");
  BufferPool pool(&dm, 2);
  Page* pinned = pool.New();
  pinned->bytes()[1] = 123;
  Page* other = pool.New();
  pool.Unpin(other, true);
  // Force an eviction; the pinned page must survive in place.
  Page* third = pool.New();
  EXPECT_EQ(pinned->bytes()[1], 123);
  pool.Unpin(third, false);
  pool.Unpin(pinned, false);
}

TEST(BufferPoolTest, LruOrderEvictsOldest) {
  DiskManager dm("");
  BufferPool pool(&dm, 2);
  Page* a = pool.New();
  PageId ida = a->id;
  pool.Unpin(a, true);
  Page* b = pool.New();
  pool.Unpin(b, true);
  // Touch a so that b is the LRU victim.
  a = pool.Fetch(ida);
  pool.Unpin(a, false);
  uint64_t misses_before = pool.misses();
  Page* c = pool.New();  // evicts b
  pool.Unpin(c, false);
  a = pool.Fetch(ida);  // must still be resident
  pool.Unpin(a, false);
  EXPECT_EQ(pool.misses(), misses_before);
}

TEST(RecordFileTest, InsertReadUpdateDelete) {
  DiskManager dm("");
  BufferPool pool(&dm, 16);
  RecordFile rf(&pool, 64);
  std::vector<uint8_t> rec(64, 7);
  auto rid = rf.Insert(Slice(rec));
  ASSERT_TRUE(rid.ok());
  auto read = rf.Read(rid.value());
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), rec);

  std::vector<uint8_t> rec2(64, 9);
  ASSERT_TRUE(rf.Update(rid.value(), Slice(rec2)).ok());
  EXPECT_EQ(rf.Read(rid.value()).value(), rec2);

  ASSERT_TRUE(rf.Delete(rid.value()).ok());
  EXPECT_FALSE(rf.Read(rid.value()).ok());
  EXPECT_FALSE(rf.Exists(rid.value()));
  EXPECT_EQ(rf.record_count(), 0u);
}

TEST(RecordFileTest, RejectsWrongLength) {
  DiskManager dm("");
  BufferPool pool(&dm, 16);
  RecordFile rf(&pool, 64);
  std::vector<uint8_t> bad(63, 1);
  EXPECT_FALSE(rf.Insert(Slice(bad)).ok());
}

TEST(RecordFileTest, ManyRecordsAcrossPages) {
  DiskManager dm("");
  BufferPool pool(&dm, 8);
  RecordFile rf(&pool, 512);
  std::vector<RecordId> rids;
  for (int i = 0; i < 100; ++i) {
    std::vector<uint8_t> rec(512, static_cast<uint8_t>(i));
    auto rid = rf.Insert(Slice(rec));
    ASSERT_TRUE(rid.ok());
    rids.push_back(rid.value());
  }
  EXPECT_EQ(rf.record_count(), 100u);
  for (int i = 0; i < 100; ++i) {
    auto read = rf.Read(rids[i]);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(read.value()[0], static_cast<uint8_t>(i));
  }
}

TEST(RecordFileTest, RidsInSamePageGroupsNeighbors) {
  DiskManager dm("");
  BufferPool pool(&dm, 8);
  RecordFile rf(&pool, 512);  // 7 slots per 4K page
  for (int i = 0; i < 20; ++i) {
    std::vector<uint8_t> rec(512, 1);
    ASSERT_TRUE(rf.Insert(Slice(rec)).ok());
  }
  auto group = rf.RidsInSamePage(0);
  EXPECT_EQ(group.size(), rf.slots_per_page());
  for (size_t i = 0; i < group.size(); ++i) EXPECT_EQ(group[i], i);
}

TEST(RecordFileTest, ReattachRecoversState) {
  std::string path = ::testing::TempDir() + "/authdb_rf_test.db";
  std::remove(path.c_str());
  RecordId rid1;
  {
    DiskManager dm(path);
    BufferPool pool(&dm, 8);
    RecordFile rf(&pool, 128);
    std::vector<uint8_t> rec(128, 5);
    rid1 = rf.Insert(Slice(rec)).value();
    rf.Insert(Slice(rec)).value();
    ASSERT_TRUE(pool.FlushAll().ok());
  }
  {
    DiskManager dm(path);
    BufferPool pool(&dm, 8);
    RecordFile rf(&pool, 128);
    EXPECT_EQ(rf.record_count(), 2u);
    auto read = rf.Read(rid1);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(read.value()[0], 5);
    // New inserts continue after the recovered high-water mark.
    std::vector<uint8_t> rec(128, 6);
    RecordId rid3 = rf.Insert(Slice(rec)).value();
    EXPECT_GT(rid3, rid1);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace authdb
