#include "server/shard_router.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/chain.h"

namespace authdb {
namespace {

TEST(ShardRouterTest, SingleShardOwnsEverything) {
  ShardRouter r({});
  EXPECT_EQ(r.shard_count(), 1u);
  EXPECT_EQ(r.ShardOf(0), 0u);
  EXPECT_EQ(r.ShardOf(kChainMinusInf + 1), 0u);
  EXPECT_EQ(r.ShardOf(kChainPlusInf - 1), 0u);
  auto cover = r.Cover(-100, 100);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].shard, 0u);
  EXPECT_EQ(cover[0].lo, -100);
  EXPECT_EQ(cover[0].hi, 100);
}

TEST(ShardRouterTest, ShardOfRespectsSplitKeys) {
  // Shard 0: (..., 9], shard 1: [10, 19], shard 2: [20, ...).
  ShardRouter r({10, 20});
  EXPECT_EQ(r.shard_count(), 3u);
  EXPECT_EQ(r.ShardOf(-5), 0u);
  EXPECT_EQ(r.ShardOf(9), 0u);
  EXPECT_EQ(r.ShardOf(10), 1u);  // split key belongs to the upper shard
  EXPECT_EQ(r.ShardOf(19), 1u);
  EXPECT_EQ(r.ShardOf(20), 2u);
  EXPECT_EQ(r.ShardOf(1000), 2u);
  EXPECT_EQ(r.lower_bound_of(0), kChainMinusInf);
  EXPECT_EQ(r.upper_bound_of(0), 9);
  EXPECT_EQ(r.lower_bound_of(1), 10);
  EXPECT_EQ(r.upper_bound_of(1), 19);
  EXPECT_EQ(r.lower_bound_of(2), 20);
  EXPECT_EQ(r.upper_bound_of(2), kChainPlusInf);
}

TEST(ShardRouterTest, UniformSplitsCoverDomainInOrder) {
  ShardRouter r = ShardRouter::Uniform(4, 0, 99);
  EXPECT_EQ(r.shard_count(), 4u);
  // Every key maps to exactly one shard and shard ids are monotone in key.
  size_t prev = 0;
  for (int64_t k = -10; k <= 110; ++k) {
    size_t s = r.ShardOf(k);
    EXPECT_GE(s, prev);
    prev = s;
  }
  EXPECT_EQ(r.ShardOf(0), 0u);
  EXPECT_EQ(r.ShardOf(99), 3u);
  // Adjacent shards abut without gaps.
  for (size_t s = 0; s + 1 < r.shard_count(); ++s)
    EXPECT_EQ(r.upper_bound_of(s) + 1, r.lower_bound_of(s + 1));
}

TEST(ShardRouterTest, CoverSingleShardRange) {
  ShardRouter r = ShardRouter::Uniform(4, 0, 99);
  auto cover = r.Cover(30, 40);  // interior to shard 1 = [25, 49]
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].shard, 1u);
  EXPECT_EQ(cover[0].lo, 30);
  EXPECT_EQ(cover[0].hi, 40);
}

TEST(ShardRouterTest, CoverTwoShardRangeClampsAtSeam) {
  ShardRouter r = ShardRouter::Uniform(4, 0, 99);
  auto cover = r.Cover(40, 60);  // spans shards 1 and 2 (seam at 50)
  ASSERT_EQ(cover.size(), 2u);
  EXPECT_EQ(cover[0].shard, 1u);
  EXPECT_EQ(cover[0].lo, 40);
  EXPECT_EQ(cover[0].hi, 49);
  EXPECT_EQ(cover[1].shard, 2u);
  EXPECT_EQ(cover[1].lo, 50);
  EXPECT_EQ(cover[1].hi, 60);
}

TEST(ShardRouterTest, CoverAllShards) {
  ShardRouter r = ShardRouter::Uniform(4, 0, 99);
  auto cover = r.Cover(-50, 500);
  ASSERT_EQ(cover.size(), 4u);
  EXPECT_EQ(cover.front().lo, -50);   // edge shard extends below the domain
  EXPECT_EQ(cover.back().hi, 500);    // and above it
  // Sub-ranges tile [lo, hi] exactly.
  for (size_t i = 0; i + 1 < cover.size(); ++i) {
    EXPECT_LE(cover[i].lo, cover[i].hi);
    EXPECT_EQ(cover[i].hi + 1, cover[i + 1].lo);
  }
}

TEST(ShardRouterTest, CoverPointQueryAtSplitKey) {
  ShardRouter r({10, 20});
  auto at_split = r.Cover(10, 10);
  ASSERT_EQ(at_split.size(), 1u);
  EXPECT_EQ(at_split[0].shard, 1u);
  auto below_split = r.Cover(9, 9);
  ASSERT_EQ(below_split.size(), 1u);
  EXPECT_EQ(below_split[0].shard, 0u);
  auto straddling = r.Cover(9, 10);
  ASSERT_EQ(straddling.size(), 2u);
  EXPECT_EQ(straddling[0].hi, 9);
  EXPECT_EQ(straddling[1].lo, 10);
}

TEST(ShardRouterTest, EmptyShardsStillCovered) {
  // Covering a range that crosses shards with no data is a property of the
  // router alone: every covered shard appears, data or not, so the serving
  // layer can prove emptiness across the seam.
  ShardRouter r = ShardRouter::Uniform(8, 0, 799);
  auto cover = r.Cover(150, 650);
  ASSERT_EQ(cover.size(), 6u);  // shards 1..6
  for (size_t i = 0; i < cover.size(); ++i) EXPECT_EQ(cover[i].shard, i + 1);
}

}  // namespace
}  // namespace authdb
