#include "crypto/bas.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace authdb {
namespace {

using HashMode = BasContext::HashMode;

class BasTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(4242);
    ctx_ = new std::shared_ptr<const BasContext>(
        BasContext::Generate(/*p_bits=*/96, /*r_bits=*/64, &rng));
    Rng krng(99);
    key_ = new BasPrivateKey(BasPrivateKey::Generate(*ctx_, &krng));
  }
  static std::shared_ptr<const BasContext>* ctx_;
  static BasPrivateKey* key_;
};
std::shared_ptr<const BasContext>* BasTest::ctx_ = nullptr;
BasPrivateKey* BasTest::key_ = nullptr;

TEST_F(BasTest, SignVerifySecure) {
  std::string m = "record 7 | attr 3 | ts 1000";
  BasSignature sig = key_->Sign(Slice(m), HashMode::kSecure);
  EXPECT_TRUE(key_->public_key().Verify(Slice(m), sig, HashMode::kSecure));
}

TEST_F(BasTest, SignVerifyFast) {
  std::string m = "record 7 | attr 3 | ts 1000";
  BasSignature sig = key_->Sign(Slice(m), HashMode::kFast);
  EXPECT_TRUE(key_->public_key().Verify(Slice(m), sig, HashMode::kFast));
}

TEST_F(BasTest, VerifyRejectsWrongMessage) {
  for (HashMode mode : {HashMode::kSecure, HashMode::kFast}) {
    BasSignature sig = key_->Sign(Slice(std::string("m1")), mode);
    EXPECT_FALSE(
        key_->public_key().Verify(Slice(std::string("m2")), sig, mode));
  }
}

TEST_F(BasTest, VerifyRejectsForeignKey) {
  Rng rng(123);
  BasPrivateKey other = BasPrivateKey::Generate(*ctx_, &rng);
  std::string m = "msg";
  BasSignature sig = other.Sign(Slice(m), HashMode::kFast);
  EXPECT_FALSE(key_->public_key().Verify(Slice(m), sig, HashMode::kFast));
}

TEST_F(BasTest, AggregateVerifies) {
  for (HashMode mode : {HashMode::kSecure, HashMode::kFast}) {
    std::vector<std::string> msgs;
    std::vector<BasSignature> sigs;
    for (int i = 0; i < 15; ++i) {
      msgs.push_back("tuple-" + std::to_string(i));
      sigs.push_back(key_->Sign(Slice(msgs.back()), mode));
    }
    BasSignature agg = (*ctx_)->Aggregate(sigs);
    std::vector<Slice> views(msgs.begin(), msgs.end());
    EXPECT_TRUE(key_->public_key().VerifyAggregate(views, agg, mode));
  }
}

TEST_F(BasTest, VerifyAggregateBatchMatchesSequential) {
  // The batched verifier (one flat multi-buffer hash pass, one shared
  // Montgomery batch inversion) must reach the same verdicts as per-claim
  // VerifyAggregate — including a tampered claim in the middle and an
  // empty claim against the infinity aggregate.
  for (HashMode mode : {HashMode::kSecure, HashMode::kFast}) {
    std::vector<std::vector<std::string>> bufs;
    std::vector<BasAggregateClaim> claims;
    for (int c = 0; c < 5; ++c) {
      bufs.emplace_back();
      std::vector<BasSignature> sigs;
      for (int i = 0; i < c; ++i) {
        bufs.back().push_back("claim-" + std::to_string(c) + "-tuple-" +
                              std::to_string(i));
        sigs.push_back(key_->Sign(Slice(bufs.back().back()), mode));
      }
      BasAggregateClaim claim;
      claim.agg = (*ctx_)->Aggregate(sigs);
      for (const auto& m : bufs.back()) claim.messages.emplace_back(m);
      claims.push_back(std::move(claim));
    }
    // Tamper with claim 2: drop its last message but keep the aggregate.
    claims[2].messages.pop_back();
    std::vector<bool> got =
        key_->public_key().VerifyAggregateBatch(claims, mode);
    ASSERT_EQ(got.size(), claims.size());
    for (size_t c = 0; c < claims.size(); ++c) {
      bool want = key_->public_key().VerifyAggregate(claims[c].messages,
                                                     claims[c].agg, mode);
      EXPECT_EQ(got[c], want) << "mode=" << static_cast<int>(mode)
                              << " claim=" << c;
      EXPECT_EQ(want, c != 2) << "claim=" << c;
    }
  }
}

TEST_F(BasTest, HashToScalarManyMatchesSequential) {
  std::vector<std::string> bufs;
  std::vector<Slice> msgs;
  for (int i = 0; i < 13; ++i) {
    bufs.push_back("scalar-msg-" + std::to_string(i));
  }
  for (const auto& b : bufs) msgs.emplace_back(b);
  std::vector<BigInt> got(msgs.size());
  (*ctx_)->HashToScalarMany(msgs.data(), msgs.size(), got.data());
  for (size_t i = 0; i < msgs.size(); ++i) {
    EXPECT_EQ(BigInt::Compare(got[i], (*ctx_)->HashToScalar(msgs[i])), 0);
  }
}

TEST_F(BasTest, AggregateIsOrderIndependent) {
  std::vector<std::string> msgs = {"x", "y", "z"};
  std::vector<BasSignature> sigs;
  for (const auto& m : msgs) sigs.push_back(key_->Sign(Slice(m), HashMode::kFast));
  BasSignature agg1 = (*ctx_)->Aggregate({sigs[0], sigs[1], sigs[2]});
  BasSignature agg2 = (*ctx_)->Aggregate({sigs[2], sigs[0], sigs[1]});
  EXPECT_TRUE((*ctx_)->curve().Equal(agg1.point, agg2.point));
  std::vector<Slice> reordered = {Slice(msgs[1]), Slice(msgs[2]),
                                  Slice(msgs[0])};
  EXPECT_TRUE(
      key_->public_key().VerifyAggregate(reordered, agg1, HashMode::kFast));
}

TEST_F(BasTest, AggregateRejectsDroppedMessage) {
  std::vector<std::string> msgs = {"x", "y", "z"};
  std::vector<BasSignature> sigs;
  for (const auto& m : msgs)
    sigs.push_back(key_->Sign(Slice(m), HashMode::kFast));
  BasSignature agg = (*ctx_)->Aggregate(sigs);
  std::vector<Slice> dropped = {Slice(msgs[0]), Slice(msgs[1])};
  EXPECT_FALSE(
      key_->public_key().VerifyAggregate(dropped, agg, HashMode::kFast));
}

TEST_F(BasTest, AggregateRejectsSubstitution) {
  std::vector<std::string> msgs = {"x", "y", "z"};
  std::vector<BasSignature> sigs;
  for (const auto& m : msgs)
    sigs.push_back(key_->Sign(Slice(m), HashMode::kFast));
  BasSignature agg = (*ctx_)->Aggregate(sigs);
  std::string evil = "evil";
  std::vector<Slice> subst = {Slice(msgs[0]), Slice(msgs[1]), Slice(evil)};
  EXPECT_FALSE(
      key_->public_key().VerifyAggregate(subst, agg, HashMode::kFast));
}

TEST_F(BasTest, CombineRemoveRoundtrip) {
  BasSignature a = key_->Sign(Slice(std::string("a")), HashMode::kFast);
  BasSignature b = key_->Sign(Slice(std::string("b")), HashMode::kFast);
  BasSignature ab = (*ctx_)->Combine(a, b);
  BasSignature back = (*ctx_)->Remove(ab, b);
  EXPECT_TRUE((*ctx_)->curve().Equal(back.point, a.point));
}

TEST_F(BasTest, FixedBaseMultMatchesScalarMult) {
  Rng rng(55);
  for (int i = 0; i < 10; ++i) {
    BigInt k = BigInt::RandomBelow((*ctx_)->order(), &rng);
    ECPoint fast = (*ctx_)->FixedBaseMult(k);
    ECPoint slow = (*ctx_)->curve().ScalarMult((*ctx_)->generator(), k);
    EXPECT_TRUE((*ctx_)->curve().Equal(fast, slow));
  }
}

TEST_F(BasTest, FastHashMatchesExponentTimesGenerator) {
  std::string m = "message";
  ECPoint h = (*ctx_)->HashToPoint(Slice(m), HashMode::kFast);
  BigInt s = (*ctx_)->HashToScalar(Slice(m));
  ECPoint expect = (*ctx_)->curve().ScalarMult((*ctx_)->generator(), s);
  EXPECT_TRUE((*ctx_)->curve().Equal(h, expect));
}

TEST_F(BasTest, SecureHashToPointLandsInSubgroup) {
  for (int i = 0; i < 5; ++i) {
    std::string m = "msg-" + std::to_string(i);
    ECPoint h = (*ctx_)->HashToPoint(Slice(m), HashMode::kSecure);
    EXPECT_TRUE((*ctx_)->curve().IsOnCurve(h));
    EXPECT_FALSE(h.infinity);
    EXPECT_TRUE((*ctx_)->curve().ScalarMult(h, (*ctx_)->order()).infinity);
  }
}

TEST_F(BasTest, HashToPointIsDeterministic) {
  std::string m = "stable";
  ECPoint h1 = (*ctx_)->HashToPoint(Slice(m), HashMode::kSecure);
  ECPoint h2 = (*ctx_)->HashToPoint(Slice(m), HashMode::kSecure);
  EXPECT_TRUE((*ctx_)->curve().Equal(h1, h2));
}

TEST(BasDefaultParamsTest, DefaultContextIs256Bit) {
  auto ctx = BasContext::Default();
  EXPECT_EQ(ctx->curve().field().p().BitLength(), 256);
  EXPECT_EQ(ctx->order().BitLength(), 160);
  // p = 3 (mod 4)
  EXPECT_EQ(BigInt::Mod(ctx->curve().field().p(), BigInt(4)).ToU64(), 3u);
  // p + 1 = cofactor * r
  BigInt p1 = BigInt::Add(ctx->curve().field().p(), BigInt(1));
  EXPECT_EQ(BigInt::Compare(
                p1, BigInt::Mul(ctx->curve().cofactor(), ctx->order())),
            0);
  // One end-to-end signature at full size.
  Rng rng(1);
  BasPrivateKey key = BasPrivateKey::Generate(ctx, &rng);
  std::string m = "full-size message";
  BasSignature sig = key.Sign(Slice(m), BasContext::HashMode::kSecure);
  EXPECT_TRUE(key.public_key().Verify(Slice(m), sig,
                                      BasContext::HashMode::kSecure));
}

}  // namespace
}  // namespace authdb
