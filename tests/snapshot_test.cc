// Tests for the epoch-pinned copy-on-write storage spine: the
// ShardVersionBuilder / EpochSnapshot COW semantics (structural sharing,
// chunk splits, chain generations), and epoch garbage collection on the
// sharded server — a reader pinning epoch N across later publications
// keeps its snapshot alive and verifiable, retired snapshots are actually
// freed (ASan-checked via weak_ptr expiry), and the max_pinned_epochs
// backpressure knob stalls publication under a wedged reader. Carries the
// `snapshot` CTest label; the threaded cases run under TSan in CI.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "core/data_aggregator.h"
#include "core/epoch_snapshot.h"
#include "core/verifier.h"
#include "server/sharded_query_server.h"
#include "server/update_stream.h"

namespace authdb {
namespace {

SignedRecordUpdate MakeInsert(int64_t key, int64_t payload = 0) {
  SignedRecordUpdate msg;
  msg.kind = SignedRecordUpdate::Kind::kInsert;
  msg.key = key;
  CertifiedRecord cr;
  cr.record.rid = static_cast<uint64_t>(key);
  cr.record.ts = 1;
  cr.record.attrs = {key, payload};
  msg.record = std::move(cr);
  return msg;
}

SignedRecordUpdate MakeModify(int64_t key, int64_t payload, uint64_t ts = 2) {
  SignedRecordUpdate msg = MakeInsert(key, payload);
  msg.kind = SignedRecordUpdate::Kind::kModify;
  msg.record->record.ts = ts;
  return msg;
}

SignedRecordUpdate MakeDelete(int64_t key) {
  SignedRecordUpdate msg;
  msg.kind = SignedRecordUpdate::Kind::kDelete;
  msg.key = key;
  return msg;
}

TEST(ShardVersionBuilderTest, ApplySemanticsMatchReferenceMap) {
  ShardVersionBuilder builder(/*chunk_target=*/4);  // force chunk churn
  std::map<int64_t, int64_t> reference;
  Rng rng(11);
  for (int op = 0; op < 600; ++op) {
    int64_t key = static_cast<int64_t>(rng.Uniform(80));
    int64_t payload = static_cast<int64_t>(rng.Uniform(1'000'000));
    switch (rng.Uniform(3)) {
      case 0: {
        Status st = builder.Apply(MakeInsert(key, payload));
        EXPECT_EQ(st.ok(), reference.count(key) == 0) << st.ToString();
        if (st.ok()) reference[key] = payload;
        break;
      }
      case 1: {
        Status st = builder.Apply(MakeModify(key, payload));
        EXPECT_EQ(st.ok(), reference.count(key) == 1) << st.ToString();
        if (st.ok()) reference[key] = payload;
        break;
      }
      default: {
        Status st = builder.Apply(MakeDelete(key));
        EXPECT_EQ(st.ok(), reference.count(key) == 1) << st.ToString();
        if (st.ok()) reference.erase(key);
        break;
      }
    }
  }
  auto snap = builder.Freeze();
  ASSERT_EQ(snap->size(), reference.size());
  size_t rank = 0;
  for (const auto& [key, payload] : reference) {
    const SnapshotItem& item = snap->ItemAt(rank);
    EXPECT_EQ(item.key(), key);
    EXPECT_EQ(item.record.attrs[1], payload);
    EXPECT_EQ(snap->LowerBound(key), rank);
    EXPECT_EQ(snap->UpperBound(key), rank + 1);
    ASSERT_NE(snap->Get(key), nullptr);
    EXPECT_EQ(snap->Get(key)->record.attrs[1], payload);
    ++rank;
  }
  // Neighbor navigation agrees with the map.
  for (int64_t probe = -2; probe < 84; ++probe) {
    auto it = reference.lower_bound(probe);
    const SnapshotItem* pred = snap->Predecessor(probe);
    if (it == reference.begin()) {
      EXPECT_EQ(pred, nullptr) << probe;
    } else {
      ASSERT_NE(pred, nullptr) << probe;
      EXPECT_EQ(pred->key(), std::prev(it)->first) << probe;
    }
    auto ub = reference.upper_bound(probe);
    const SnapshotItem* succ = snap->Successor(probe);
    if (ub == reference.end()) {
      EXPECT_EQ(succ, nullptr) << probe;
    } else {
      ASSERT_NE(succ, nullptr) << probe;
      EXPECT_EQ(succ->key(), ub->first) << probe;
    }
  }
}

TEST(ShardVersionBuilderTest, FreezeSharesUntouchedChunksAcrossEpochs) {
  ShardVersionBuilder builder(/*chunk_target=*/8);
  for (int64_t k = 0; k < 128; ++k)
    ASSERT_TRUE(builder.Apply(MakeInsert(k, k)).ok());
  auto snap1 = builder.Freeze();
  ASSERT_GT(snap1->chunk_count(), 4u);  // enough chunks to share

  // Touch exactly one key: only its chunk may be copied.
  ASSERT_TRUE(builder.Apply(MakeModify(3, 999)).ok());
  auto snap2 = builder.Freeze();
  ASSERT_EQ(snap2->size(), snap1->size());
  EXPECT_EQ(snap2->generation(), snap1->generation() + 1);
  EXPECT_EQ(snap2->Get(3)->record.attrs[1], 999);
  EXPECT_EQ(snap1->Get(3)->record.attrs[1], 3)
      << "older epoch mutated — not copy-on-write";
  // Structural sharing: an item far from the touched chunk is the SAME
  // object in both epochs (shared chunk), while the touched key's item is
  // a fresh copy.
  EXPECT_EQ(&snap1->ItemAt(100), &snap2->ItemAt(100));
  EXPECT_NE(snap1->Get(3), snap2->Get(3));

  // An untouched freeze is free: same snapshot object, same generation.
  auto snap3 = builder.Freeze();
  EXPECT_EQ(snap3.get(), snap2.get());
}

class SnapshotGcTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(0x51AB);
    ctx_ = new std::shared_ptr<const BasContext>(
        BasContext::Generate(96, 64, &rng));
  }

  void SetUp() override {
    clock_.SetMicros(1'000'000);
    rng_ = std::make_unique<Rng>(5);
    DataAggregator::Options opt;
    opt.record_len = 128;
    opt.piggyback_renewal = false;
    da_ = std::make_unique<DataAggregator>(*ctx_, &clock_, rng_.get(), opt);
  }

  std::unique_ptr<ShardedQueryServer> MakeServer(size_t shards,
                                                 int64_t n_keys,
                                                 size_t max_pinned_epochs) {
    cfg_ = ServerConfig();
    cfg_.node.record_len = 128;
    cfg_.serving.worker_threads = shards;
    cfg_.serving.max_pinned_epochs = max_pinned_epochs;
    auto server = std::make_unique<ShardedQueryServer>(
        *ctx_, ShardRouter::Uniform(shards, 0, n_keys - 1), cfg_);
    std::vector<Record> records;
    for (int64_t k = 0; k < n_keys; ++k) {
      Record r;
      r.attrs = {k, k * 2};
      records.push_back(r);
    }
    auto stream = da_->BulkLoad(std::move(records));
    EXPECT_TRUE(stream.ok());
    for (const auto& msg : stream.value())
      EXPECT_TRUE(server->ApplyUpdate(msg).ok());
    return server;
  }

  /// Close the DA's rho-period into the stream.
  void StreamPeriod(UpdateStream* stream, uint64_t advance = 1'000'000) {
    clock_.AdvanceMicros(advance);
    DataAggregator::PeriodOutput out = da_->PublishSummary();
    for (const auto& msg : out.recertifications) stream->PushUpdate(msg);
    stream->PushSummary(std::move(out.summary));
  }

  void PushModify(UpdateStream* stream, int64_t key, int64_t v) {
    auto msg = da_->ModifyRecord(key, {key, v});
    ASSERT_TRUE(msg.ok());
    stream->PushUpdate(std::move(msg.value()));
  }

  static std::shared_ptr<const BasContext>* ctx_;
  ManualClock clock_;
  std::unique_ptr<Rng> rng_;
  VarintGapCodec codec_;
  std::unique_ptr<DataAggregator> da_;
  ServerConfig cfg_;  ///< the config MakeServer last built a server from
};
std::shared_ptr<const BasContext>* SnapshotGcTest::ctx_ = nullptr;

TEST_F(SnapshotGcTest, PinnedReaderSurvivesLaterPublications) {
  auto server = MakeServer(4, 64, /*max_pinned_epochs=*/0);
  UpdateStream stream(server.get(), cfg_);
  StreamPeriod(&stream);  // summary 0 certifies the bulk load
  stream.Flush();
  ASSERT_EQ(server->freshness_tracker().current_epoch(), 1u);

  // A reader pins epoch 1 (descriptor + an answer captured under it) and
  // stalls across two further publications.
  std::shared_ptr<const EpochDescriptor> pin = server->PinCurrentEpoch();
  ASSERT_EQ(pin->epoch, 1u);
  auto pinned_answer = server->Select(10, 20);
  ASSERT_TRUE(pinned_answer.ok());
  ASSERT_EQ(pinned_answer.value().served_epoch, 1u);
  std::vector<UpdateSummary> epoch1_feed(pin->summaries->begin(),
                                         pin->summaries->end());

  for (int period = 0; period < 2; ++period) {
    clock_.AdvanceMicros(250'000);
    for (int64_t key = 10; key < 21; ++key)
      PushModify(&stream, key, 1000 + period);
    StreamPeriod(&stream, 750'000);
  }
  stream.Flush();
  ASSERT_EQ(server->freshness_tracker().current_epoch(), 3u);
  EXPECT_GE(server->pinned_epochs(), 1u);  // the stalled reader's epoch

  // The pinned snapshot set is fully intact: every item of epoch 1 is
  // still addressable (ASan would flag a retired-too-early chunk), and
  // the captured answer still verifies against an epoch-1 client — a
  // verifier that has only seen the summaries published by epoch 1.
  uint64_t total = 0;
  for (const auto& snap : pin->shards) {
    for (size_t r = 0; r < snap->size(); ++r) total += snap->ItemAt(r).key();
  }
  EXPECT_EQ(total, 64u * 63 / 2);
  ClientVerifier epoch1_client(&da_->public_key(), &codec_, da_->hash_mode());
  for (const UpdateSummary& s : epoch1_feed)
    ASSERT_TRUE(epoch1_client.freshness().AddSummary(s).ok());
  EXPECT_TRUE(epoch1_client
                  .VerifySelectionFresh(10, 20, pinned_answer.value(),
                                        clock_.NowMicros(), /*min_epoch=*/1)
                  .ok());
  // An up-to-date client (epoch 3 feed) rejects the same answer: its
  // records were superseded in the meantime.
  ClientVerifier fresh_client(&da_->public_key(), &codec_, da_->hash_mode());
  auto fresh = server->Select(10, 20);
  ASSERT_TRUE(fresh.ok());
  ASSERT_TRUE(fresh_client
                  .VerifySelectionFresh(10, 20, fresh.value(),
                                        clock_.NowMicros(), 3)
                  .ok());
  EXPECT_TRUE(fresh_client
                  .VerifySelectionFresh(10, 20, pinned_answer.value(),
                                        clock_.NowMicros(), 3)
                  .IsVerificationFailed());
}

TEST_F(SnapshotGcTest, RetiredEpochsAreFreedWhenUnpinned) {
  auto server = MakeServer(2, 32, /*max_pinned_epochs=*/0);
  UpdateStream stream(server.get(), cfg_);
  StreamPeriod(&stream);
  stream.Flush();

  std::shared_ptr<const EpochDescriptor> pin = server->PinCurrentEpoch();
  std::weak_ptr<const EpochDescriptor> watch = pin;
  ASSERT_EQ(pin->epoch, 1u);

  clock_.AdvanceMicros(500'000);
  PushModify(&stream, 7, 777);
  StreamPeriod(&stream, 500'000);
  stream.Flush();
  ASSERT_EQ(server->freshness_tracker().current_epoch(), 2u);

  // Still pinned: alive. Unpinned: the retired epoch is freed at once
  // (refcount drained + newer epoch published) — under ASan a leak or a
  // dangling chunk would fail the job.
  EXPECT_FALSE(watch.expired());
  EXPECT_EQ(server->pinned_epochs(), 1u);
  pin.reset();
  EXPECT_TRUE(watch.expired());
  EXPECT_EQ(server->pinned_epochs(), 0u);
}

TEST_F(SnapshotGcTest, MaxPinnedEpochsBackpressuresPublication) {
  auto server = MakeServer(2, 32, /*max_pinned_epochs=*/1);
  UpdateStream stream(server.get(), cfg_);
  StreamPeriod(&stream);
  stream.Flush();
  ASSERT_EQ(server->freshness_tracker().current_epoch(), 1u);

  // A wedged reader pins epoch 1. The next publication retires epoch 1
  // (still pinned — now counted against the budget); the one after must
  // block until the reader lets go.
  std::shared_ptr<const EpochDescriptor> pin = server->PinCurrentEpoch();
  clock_.AdvanceMicros(250'000);
  PushModify(&stream, 3, 300);
  StreamPeriod(&stream, 750'000);
  // Epoch 2 publishes: no retired epoch was pinned when it published.
  for (int spin = 0; spin < 500 &&
                     server->freshness_tracker().current_epoch() < 2;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(server->freshness_tracker().current_epoch(), 2u);

  clock_.AdvanceMicros(250'000);
  PushModify(&stream, 4, 400);
  StreamPeriod(&stream, 750'000);
  // Epoch 3 must NOT publish while the reader still pins epoch 1.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_EQ(server->freshness_tracker().current_epoch(), 2u)
      << "publication proceeded past the max_pinned_epochs budget";

  pin.reset();  // the reader drains — backpressure releases
  for (int spin = 0; spin < 500 &&
                     server->freshness_tracker().current_epoch() < 3;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server->freshness_tracker().current_epoch(), 3u);
  stream.Flush();
}

}  // namespace
}  // namespace authdb
