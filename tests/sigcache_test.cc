#include "core/sigcache.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/random.h"
#include "core/epoch_snapshot.h"

namespace authdb {
namespace {

// Brute-force xi: enumerate every cardinality-q range over N positions,
// compute its canonical aligned-block cover (greedy largest block, the same
// decomposition RangeAggregate uses), and count ranges covered by (level,j).
uint64_t BruteForceXi(uint64_t n, int level, uint64_t j, uint64_t q) {
  uint64_t count = 0;
  for (uint64_t lo = 0; lo + q <= n; ++lo) {
    uint64_t hi = lo + q - 1;
    uint64_t pos = lo;
    bool uses = false;
    while (pos <= hi) {
      int best = 0;
      for (int l = 1; (uint64_t{1} << l) <= n; ++l) {
        uint64_t m = uint64_t{1} << l;
        if (pos % m == 0 && pos + m - 1 <= hi) best = l;
      }
      uint64_t m = uint64_t{1} << best;
      if (best == level && pos / m == j) uses = true;
      pos += m;
    }
    if (uses) ++count;
  }
  return count;
}

TEST(SigTreeXiTest, MatchesPaperRunningExample) {
  // Figure 5 / Section 4.1, N = 16, q = 7.
  const uint64_t n = 16, q = 7;
  EXPECT_EQ(SigTreeXi(n, 3, 0, q), 0u);   // T30 irrelevant for q < 8
  EXPECT_EQ(SigTreeXi(n, 2, 0, q), 1u);   // T20: one query (r0..r6)
  EXPECT_EQ(SigTreeXi(n, 2, 1, q), 4u);   // T21: q - 2^i + 1 = 4
  EXPECT_EQ(SigTreeXi(n, 2, 2, q), 4u);   // T22
  EXPECT_EQ(SigTreeXi(n, 2, 3, q), 1u);   // T23
  EXPECT_EQ(SigTreeXi(n, 1, 1, q), 2u);   // T11: full usability
  EXPECT_EQ(SigTreeXi(n, 1, 3, q), 2u);   // T13
  EXPECT_EQ(SigTreeXi(n, 1, 5, q), 1u);   // T15: partial
  EXPECT_EQ(SigTreeXi(n, 1, 7, q), 0u);   // T17: unusable
  EXPECT_EQ(SigTreeXi(n, 1, 4, q), 2u);   // T14 (even, first condition)
  EXPECT_EQ(SigTreeXi(n, 1, 2, q), 1u);   // T12 (even, second condition)
  EXPECT_EQ(SigTreeXi(n, 1, 0, q), 0u);   // T10 (even, third condition)
  EXPECT_EQ(SigTreeXi(n, 0, 8, q), 1u);   // T08
  EXPECT_EQ(SigTreeXi(n, 0, 11, q), 0u);  // T0B
}

TEST(SigTreeXiTest, MatchesBruteForceExhaustively) {
  const uint64_t n = 32;
  for (int level = 0; (uint64_t{1} << level) <= n; ++level) {
    for (uint64_t j = 0; j < (n >> level); ++j) {
      for (uint64_t q = 1; q <= n; ++q) {
        EXPECT_EQ(SigTreeXi(n, level, j, q), BruteForceXi(n, level, j, q))
            << "level=" << level << " j=" << j << " q=" << q;
      }
    }
  }
}

TEST(SigCachePlannerTest, NodeProbabilityMatchesDirectSummation) {
  const uint64_t n = 64;
  for (const auto& dist :
       {CardinalityDist::Harmonic(n), CardinalityDist::Uniform(n)}) {
    for (int level = 1; (uint64_t{1} << level) <= n; ++level) {
      for (uint64_t j = 0; j < (n >> level); ++j) {
        double direct = 0;
        for (uint64_t q = 1; q <= n; ++q) {
          direct += static_cast<double>(SigTreeXi(n, level, j, q)) /
                    static_cast<double>(n - q + 1) * dist.P(q);
        }
        double fast = SigCachePlanner::NodeProbability(n, dist, level, j);
        EXPECT_NEAR(direct, fast, 1e-12)
            << "level=" << level << " j=" << j;
      }
    }
  }
}

TEST(SigCachePlannerTest, CostCurveDecreasesMonotonically) {
  for (uint64_t n : {uint64_t{256}, uint64_t{4096}}) {
    auto plan = SigCachePlanner::Plan(n, CardinalityDist::Uniform(n), 12);
    ASSERT_GE(plan.cost_after_pairs.size(), 2u);
    for (size_t i = 1; i < plan.cost_after_pairs.size(); ++i)
      EXPECT_LE(plan.cost_after_pairs[i], plan.cost_after_pairs[i - 1] + 1e-9);
    // Uniform base cost = E[q-1] = (N-1)/2.
    EXPECT_NEAR(plan.base_cost, (n - 1) / 2.0, 1e-6);
  }
}

TEST(SigCachePlannerTest, SecondFromEdgeNodesChosenFirst) {
  // Section 4.1: "the most valuable aggregate signatures to cache are the
  // second node from the left and right edges ... starting from the third
  // highest tree level".
  const uint64_t n = 1024;
  auto plan = SigCachePlanner::Plan(n, CardinalityDist::Uniform(n), 2);
  ASSERT_GE(plan.chosen.size(), 2u);
  // First pair: level 8 (third-highest; root = 10), second node from each
  // edge — {j=1, j=2} in either order (mirror nodes tie in utility).
  EXPECT_EQ(plan.chosen[0].level, 8);
  EXPECT_EQ(plan.chosen[1].level, 8);
  std::set<uint64_t> first_pair = {plan.chosen[0].j, plan.chosen[1].j};
  EXPECT_EQ(first_pair, (std::set<uint64_t>{1, 2}));
}

TEST(SigCachePlannerTest, UniformCachesDeeperThanHarmonic) {
  // Long queries dominate the uniform distribution, so high-level nodes
  // carry more utility than under the short-query-skewed harmonic dist.
  const uint64_t n = 4096;
  auto uni = SigCachePlanner::Plan(n, CardinalityDist::Uniform(n), 8);
  auto har = SigCachePlanner::Plan(n, CardinalityDist::Harmonic(n), 8);
  double uni_avg_level = 0, har_avg_level = 0;
  for (const auto& c : uni.chosen) uni_avg_level += c.level;
  for (const auto& c : har.chosen) har_avg_level += c.level;
  uni_avg_level /= uni.chosen.size();
  har_avg_level /= har.chosen.size();
  EXPECT_GE(uni_avg_level, har_avg_level);
}

// --- Runtime cache ---------------------------------------------------------

class SigCacheRuntimeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(0xCAC);
    ctx_ = new std::shared_ptr<const BasContext>(
        BasContext::Generate(96, 64, &rng));
    Rng krng(5);
    key_ = new BasPrivateKey(BasPrivateKey::Generate(*ctx_, &krng));
  }
  void SetUp() override {
    sigs_.clear();
    for (int i = 0; i < 64; ++i) sigs_.push_back(SignPos(i, 0));
  }
  BasSignature SignPos(int pos, int version) {
    ByteBuffer buf;
    buf.PutU64(pos);
    buf.PutU64(version);
    return key_->Sign(buf.AsSlice(), BasContext::HashMode::kFast);
  }
  BasSignature DirectSum(size_t lo, size_t hi) {
    std::vector<BasSignature> parts(sigs_.begin() + lo,
                                    sigs_.begin() + hi + 1);
    return (*ctx_)->Aggregate(parts);
  }
  std::unique_ptr<SigCache> MakeCache(SigCache::RefreshMode mode) {
    return std::make_unique<SigCache>(
        *ctx_, sigs_.size(), mode,
        [this](size_t pos) { return sigs_[pos]; });
  }
  static std::shared_ptr<const BasContext>* ctx_;
  static BasPrivateKey* key_;
  std::vector<BasSignature> sigs_;
};
std::shared_ptr<const BasContext>* SigCacheRuntimeTest::ctx_ = nullptr;
BasPrivateKey* SigCacheRuntimeTest::key_ = nullptr;

TEST_F(SigCacheRuntimeTest, AggregateMatchesDirectSumWithRandomPins) {
  auto cache = MakeCache(SigCache::RefreshMode::kLazy);
  cache->Pin(3, 1);
  cache->Pin(3, 6);
  cache->Pin(4, 1);
  cache->Pin(2, 5);
  Rng rng(17);
  for (int trial = 0; trial < 40; ++trial) {
    size_t lo = rng.Uniform(64);
    size_t hi = lo + rng.Uniform(64 - lo);
    SigCache::AggStats stats;
    BasSignature got = cache->RangeAggregate(lo, hi, &stats);
    BasSignature want = DirectSum(lo, hi);
    EXPECT_TRUE((*ctx_)->curve().Equal(got.point, want.point))
        << lo << ".." << hi;
  }
}

TEST_F(SigCacheRuntimeTest, CachedNodeSavesAdditions) {
  auto cache = MakeCache(SigCache::RefreshMode::kLazy);
  cache->Pin(4, 0);  // covers [0, 16)
  SigCache::AggStats cold, warm;
  cache->RangeAggregate(0, 15, &cold);   // first use computes the node
  cache->RangeAggregate(0, 15, &warm);   // second use is one cache hit
  EXPECT_EQ(warm.point_adds, 0u);
  EXPECT_EQ(warm.cache_hits, 1u);
  EXPECT_EQ(warm.leaf_fetches, 0u);
  EXPECT_GT(cold.leaf_fetches, 0u);
}

TEST_F(SigCacheRuntimeTest, EagerUpdatePatchesInPlace) {
  auto cache = MakeCache(SigCache::RefreshMode::kEager);
  cache->Pin(4, 0);
  cache->RangeAggregate(0, 15, nullptr);  // warm the entry
  BasSignature old_sig = sigs_[7];
  sigs_[7] = SignPos(7, 1);
  cache->OnLeafUpdate(7, old_sig, sigs_[7]);
  EXPECT_EQ(cache->eager_patch_adds(), 2u);
  SigCache::AggStats stats;
  BasSignature got = cache->RangeAggregate(0, 15, &stats);
  EXPECT_TRUE((*ctx_)->curve().Equal(got.point, DirectSum(0, 15).point));
  EXPECT_EQ(stats.refreshes, 0u);  // no lazy recompute needed
}

TEST_F(SigCacheRuntimeTest, LazyUpdateInvalidatesAndRecomputesOnUse) {
  auto cache = MakeCache(SigCache::RefreshMode::kLazy);
  cache->Pin(4, 0);
  cache->RangeAggregate(0, 15, nullptr);
  BasSignature old_sig = sigs_[7];
  sigs_[7] = SignPos(7, 1);
  cache->OnLeafUpdate(7, old_sig, sigs_[7]);
  EXPECT_EQ(cache->eager_patch_adds(), 0u);
  SigCache::AggStats stats;
  BasSignature got = cache->RangeAggregate(0, 15, &stats);
  EXPECT_EQ(stats.refreshes, 1u);
  EXPECT_TRUE((*ctx_)->curve().Equal(got.point, DirectSum(0, 15).point));
}

TEST_F(SigCacheRuntimeTest, UpdatesOutsideCachedIntervalsAreFree) {
  auto cache = MakeCache(SigCache::RefreshMode::kEager);
  cache->Pin(3, 0);  // [0, 8)
  cache->RangeAggregate(0, 7, nullptr);
  BasSignature old_sig = sigs_[40];
  sigs_[40] = SignPos(40, 1);
  cache->OnLeafUpdate(40, old_sig, sigs_[40]);
  EXPECT_EQ(cache->eager_patch_adds(), 0u);
}

TEST_F(SigCacheRuntimeTest, NestedCachedNodesCompose) {
  auto cache = MakeCache(SigCache::RefreshMode::kLazy);
  cache->Pin(5, 0);  // [0, 32)
  cache->Pin(3, 0);  // [0, 8) — descendant of the above
  // Refreshing the level-5 node should reuse the level-3 node.
  SigCache::AggStats stats;
  BasSignature got = cache->RangeAggregate(0, 31, &stats);
  EXPECT_TRUE((*ctx_)->curve().Equal(got.point, DirectSum(0, 31).point));
}

TEST_F(SigCacheRuntimeTest, ReviseKeepsHotEntries) {
  auto cache = MakeCache(SigCache::RefreshMode::kLazy);
  cache->Pin(3, 0);
  cache->Pin(3, 1);
  cache->Pin(3, 2);
  // Heat up node (3,1) = positions [8,16).
  for (int i = 0; i < 10; ++i) cache->RangeAggregate(8, 15, nullptr);
  cache->Revise(1);
  EXPECT_EQ(cache->entry_count(), 1u);
  SigCache::AggStats stats;
  cache->RangeAggregate(8, 15, &stats);
  EXPECT_EQ(stats.cache_hits, 1u);  // the kept node is (3,1)
}

TEST_F(SigCacheRuntimeTest, ReviseStartsAFreshObservationWindow) {
  auto cache = MakeCache(SigCache::RefreshMode::kLazy);
  cache->Pin(3, 0);  // [0, 8)
  cache->Pin(3, 2);  // [16, 24)
  // Heat (3,0) hard, then revise keeping both: access counts reset, so the
  // next window's usage decides the following revision.
  for (int i = 0; i < 20; ++i) cache->RangeAggregate(0, 7, nullptr);
  cache->Revise(2);
  EXPECT_EQ(cache->entry_count(), 2u);
  // New window: only (3,2) is used now.
  for (int i = 0; i < 3; ++i) cache->RangeAggregate(16, 23, nullptr);
  cache->Revise(1);
  SigCache::AggStats stats;
  cache->RangeAggregate(16, 23, &stats);
  EXPECT_EQ(stats.cache_hits, 1u);  // (3,2) survived, not the stale hot node
  SigCache::AggStats cold;
  cache->RangeAggregate(0, 7, &cold);
  EXPECT_EQ(cold.cache_hits, 0u);
}

TEST_F(SigCacheRuntimeTest, LazyInterleavedUpdatesAndQueriesStayCorrect) {
  // The previously untested path: kLazy invalidation raced (sequentially)
  // against queries in arbitrary interleavings — every aggregate must equal
  // the direct sum of the *current* signatures, and invalidated nodes must
  // recompute exactly once per invalidation burst.
  auto cache = MakeCache(SigCache::RefreshMode::kLazy);
  cache->Pin(4, 0);  // [0, 16)
  cache->Pin(4, 1);  // [16, 32)
  cache->Pin(3, 4);  // [32, 40)
  Rng rng(99);
  int version = 1;
  for (int step = 0; step < 60; ++step) {
    if (rng.Uniform(3) == 0) {
      size_t pos = rng.Uniform(48);
      BasSignature old_sig = sigs_[pos];
      sigs_[pos] = SignPos(static_cast<int>(pos), version++);
      cache->OnLeafUpdate(pos, old_sig, sigs_[pos]);
    } else {
      size_t lo = rng.Uniform(48);
      size_t hi = lo + rng.Uniform(sigs_.size() - lo);
      SigCache::AggStats stats;
      BasSignature got = cache->RangeAggregate(lo, hi, &stats);
      ASSERT_TRUE((*ctx_)->curve().Equal(got.point, DirectSum(lo, hi).point))
          << "step " << step << " range " << lo << ".." << hi;
    }
  }
}

TEST_F(SigCacheRuntimeTest, LazyRefreshChargedOncePerInvalidation) {
  auto cache = MakeCache(SigCache::RefreshMode::kLazy);
  cache->Pin(4, 0);  // [0, 16)
  cache->RangeAggregate(0, 15, nullptr);  // warm
  BasSignature old_sig = sigs_[3];
  sigs_[3] = SignPos(3, 1);
  cache->OnLeafUpdate(3, old_sig, sigs_[3]);
  SigCache::AggStats first, second;
  cache->RangeAggregate(0, 15, &first);
  EXPECT_EQ(first.refreshes, 1u);  // recompute charged to this query
  cache->RangeAggregate(0, 15, &second);
  EXPECT_EQ(second.refreshes, 0u);  // valid again until the next update
  EXPECT_EQ(second.point_adds, 0u);
}

TEST_F(SigCacheRuntimeTest, ReviseUnderInterleavedLoadKeepsAnswersExact) {
  auto cache = MakeCache(SigCache::RefreshMode::kLazy);
  for (uint64_t j = 0; j < 8; ++j) cache->Pin(3, j);
  Rng rng(1234);
  int version = 1;
  for (int round = 0; round < 4; ++round) {
    for (int step = 0; step < 15; ++step) {
      if (rng.Uniform(4) == 0) {
        size_t pos = rng.Uniform(64);
        BasSignature old_sig = sigs_[pos];
        sigs_[pos] = SignPos(static_cast<int>(pos), version++);
        cache->OnLeafUpdate(pos, old_sig, sigs_[pos]);
      } else {
        size_t lo = rng.Uniform(64);
        size_t hi = lo + rng.Uniform(64 - lo);
        SigCache::AggStats stats;
        BasSignature got = cache->RangeAggregate(lo, hi, &stats);
        ASSERT_TRUE(
            (*ctx_)->curve().Equal(got.point, DirectSum(lo, hi).point));
      }
    }
    cache->Revise(4);  // shrink mid-load; answers must stay exact
    EXPECT_LE(cache->entry_count(), 4u);
  }
}

// --- Epoch-barrier precomputed spans ---------------------------------------

TEST_F(SigCacheRuntimeTest, BarrierSpansMatchLeafFoldsAndCountHits) {
  // A barrier-aware builder precomputes per-chunk chain aggregates at
  // Freeze; the snapshot read path hands them to the cache as a
  // SpanProvider. Aggregates must stay byte-identical with spans on or
  // off, and span_hits must actually fire.
  ShardVersionBuilder builder(/*chunk_target=*/8, *ctx_);
  auto insert = [&](int i) {
    SignedRecordUpdate msg;
    msg.kind = SignedRecordUpdate::Kind::kInsert;
    msg.key = i;
    CertifiedRecord cr;
    cr.record.rid = static_cast<uint64_t>(i);
    cr.record.ts = 1;
    cr.record.attrs = {i, 0};
    cr.sig = sigs_[i];
    msg.record = std::move(cr);
    ASSERT_TRUE(builder.Apply(msg).ok());
  };
  for (int i = 0; i < 64; ++i) insert(i);
  auto snap = builder.Freeze();
  const CurveGroup& curve = (*ctx_)->curve();

  // Every chunk start answers with its full length and the exact
  // aggregate; mid-chunk positions answer 0.
  size_t pos = 0, chunks_seen = 0;
  while (pos < snap->size()) {
    ECPoint agg;
    size_t len = snap->ChunkAggregateAt(pos, snap->size() - 1, &agg);
    ASSERT_GT(len, 0u) << pos;
    BasSignature want = DirectSum(pos, pos + len - 1);
    EXPECT_TRUE(curve.Equal(agg, want.point)) << pos;
    if (len > 1) {
      EXPECT_EQ(snap->ChunkAggregateAt(pos + 1, snap->size() - 1, &agg), 0u);
    }
    // A chunk that does not fit under hi is not served.
    EXPECT_EQ(snap->ChunkAggregateAt(pos, pos + len - 2, &agg), 0u);
    pos += len;
    ++chunks_seen;
  }
  EXPECT_EQ(chunks_seen, snap->chunk_count());

  // Same tagged batch against two cold caches — with and without the span
  // provider — must agree with each other and with the direct sums, and
  // the span-fed run must report precomputed-prefix hits.
  auto leaves = [&snap](size_t p) { return snap->ItemAt(p).sig; };
  auto spans = [&snap](size_t p, size_t hi, ECPoint* agg) {
    return snap->ChunkAggregateAt(p, hi, agg);
  };
  std::vector<SigCache::RangeSpec> ranges = {{0, 63}, {5, 40}, {8, 31},
                                             {16, 16}};
  auto plan = SigCachePlanner::Plan(64, CardinalityDist::Harmonic(64), 4);
  auto run = [&](bool use_spans, std::vector<SigCache::AggStats>* stats) {
    auto cache = MakeCache(SigCache::RefreshMode::kLazy);
    cache->PinPlan(plan.chosen);
    return cache->RangeAggregateBatch(
        ranges, snap->generation(), leaves, stats,
        use_spans ? SigCache::SpanProvider(spans)
                  : SigCache::SpanProvider(nullptr));
  };
  std::vector<SigCache::AggStats> with_stats, without_stats;
  std::vector<BasSignature> with_spans = run(true, &with_stats);
  std::vector<BasSignature> without_spans = run(false, &without_stats);
  ASSERT_EQ(with_spans.size(), ranges.size());
  size_t span_hits = 0, span_leaf_fetches = 0, plain_leaf_fetches = 0;
  for (size_t i = 0; i < ranges.size(); ++i) {
    BasSignature want = DirectSum(ranges[i].lo, ranges[i].hi);
    EXPECT_TRUE(curve.Equal(with_spans[i].point, want.point)) << i;
    EXPECT_TRUE(curve.Equal(without_spans[i].point, want.point)) << i;
    span_hits += with_stats[i].span_hits;
    span_leaf_fetches += with_stats[i].leaf_fetches;
    plain_leaf_fetches += without_stats[i].leaf_fetches;
    EXPECT_EQ(without_stats[i].span_hits, 0u) << i;
  }
  EXPECT_GT(span_hits, 0u);
  EXPECT_LT(span_leaf_fetches, plain_leaf_fetches)
      << "precomputed prefixes should displace leaf fetches";

  // Mutating one key dirties only its chunk; the next freeze recomputes
  // that aggregate and the whole tiling is exact again.
  sigs_[3] = SignPos(3, 1);
  SignedRecordUpdate mod;
  mod.kind = SignedRecordUpdate::Kind::kModify;
  mod.key = 3;
  CertifiedRecord cr;
  cr.record.rid = 3;
  cr.record.ts = 2;
  cr.record.attrs = {3, 1};
  cr.sig = sigs_[3];
  mod.record = std::move(cr);
  ASSERT_TRUE(builder.Apply(mod).ok());
  auto snap2 = builder.Freeze();
  ASSERT_EQ(snap2->generation(), snap->generation() + 1);
  pos = 0;
  while (pos < snap2->size()) {
    ECPoint agg;
    size_t len = snap2->ChunkAggregateAt(pos, snap2->size() - 1, &agg);
    ASSERT_GT(len, 0u) << pos;
    BasSignature want = DirectSum(pos, pos + len - 1);
    EXPECT_TRUE(curve.Equal(agg, want.point)) << pos;
    pos += len;
  }
}

}  // namespace
}  // namespace authdb
