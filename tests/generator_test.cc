#include "workload/generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

namespace authdb {
namespace {

WorkloadGenerator::Config SmallConfig() {
  WorkloadGenerator::Config cfg;
  cfg.n_records = 10'000;
  cfg.n_attrs = 4;
  cfg.selectivity = 0.01;
  cfg.update_fraction = 0.1;
  cfg.seed = 42;
  return cfg;
}

TEST(WorkloadGeneratorTest, RecordsAreDeterministicUnderFixedSeed) {
  WorkloadGenerator a(SmallConfig());
  WorkloadGenerator b(SmallConfig());
  std::vector<Record> ra = a.MakeRecords();
  std::vector<Record> rb = b.MakeRecords();
  ASSERT_EQ(ra.size(), rb.size());
  for (size_t i = 0; i < ra.size(); ++i) EXPECT_EQ(ra[i], rb[i]);
}

TEST(WorkloadGeneratorTest, QueryStreamIsDeterministicUnderFixedSeed) {
  WorkloadGenerator a(SmallConfig());
  WorkloadGenerator b(SmallConfig());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.NextRange(), b.NextRange());
    EXPECT_EQ(a.NextUpdateKey(), b.NextUpdateKey());
    EXPECT_EQ(a.NextIsUpdate(), b.NextIsUpdate());
  }
}

TEST(WorkloadGeneratorTest, DifferentSeedsDiverge) {
  WorkloadGenerator::Config cfg = SmallConfig();
  WorkloadGenerator a(cfg);
  cfg.seed = 43;
  WorkloadGenerator b(cfg);
  bool diverged = false;
  for (int i = 0; i < 100 && !diverged; ++i)
    diverged = a.NextRange() != b.NextRange();
  EXPECT_TRUE(diverged);
}

TEST(WorkloadGeneratorTest, RecordsHaveDenseKeysAndConfiguredArity) {
  WorkloadGenerator::Config cfg = SmallConfig();
  WorkloadGenerator gen(cfg);
  std::vector<Record> recs = gen.MakeRecords();
  ASSERT_EQ(recs.size(), cfg.n_records);
  for (uint64_t k = 0; k < cfg.n_records; ++k) {
    EXPECT_EQ(recs[k].key(), static_cast<int64_t>(k));
    EXPECT_EQ(recs[k].attrs.size(), cfg.n_attrs);
  }
}

TEST(WorkloadGeneratorTest, RangesRespectSelectivityBand) {
  // Section 5.1: selectivity is drawn from [sf/2, 3sf/2], so the range
  // cardinality q lies in [sf/2 * N, 3sf/2 * N] and the bounds stay in the
  // key domain.
  WorkloadGenerator::Config cfg = SmallConfig();
  WorkloadGenerator gen(cfg);
  const double sf = cfg.selectivity;
  const auto n = static_cast<double>(cfg.n_records);
  for (int i = 0; i < 2000; ++i) {
    auto [lo, hi] = gen.NextRange();
    ASSERT_LE(lo, hi);
    EXPECT_GE(lo, 0);
    EXPECT_LT(hi, static_cast<int64_t>(cfg.n_records));
    double q = static_cast<double>(hi - lo + 1);
    EXPECT_GE(q, sf / 2 * n - 1);
    EXPECT_LE(q, 3 * sf / 2 * n + 1);
  }
}

TEST(WorkloadGeneratorTest, ExactCardinalityRange) {
  WorkloadGenerator gen(SmallConfig());
  for (uint64_t q : {uint64_t{1}, uint64_t{17}, uint64_t{5000}}) {
    auto [lo, hi] = gen.NextRangeWithCardinality(q);
    EXPECT_EQ(static_cast<uint64_t>(hi - lo + 1), q);
  }
  // Cardinality is clamped to the table size.
  auto [lo, hi] = gen.NextRangeWithCardinality(1'000'000);
  EXPECT_EQ(lo, 0);
  EXPECT_EQ(static_cast<uint64_t>(hi), gen.config().n_records - 1);
}

TEST(WorkloadGeneratorTest, UpdateKeysCoverTheDomainUniformly) {
  WorkloadGenerator::Config cfg = SmallConfig();
  cfg.n_records = 100;
  WorkloadGenerator gen(cfg);
  std::vector<uint64_t> hits(cfg.n_records, 0);
  const int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) {
    int64_t key = gen.NextUpdateKey();
    ASSERT_GE(key, 0);
    ASSERT_LT(key, static_cast<int64_t>(cfg.n_records));
    ++hits[key];
  }
  // Every key drawn, and no bucket more than 2x off the uniform expectation
  // (1000 draws/bucket; a fair PRNG stays well within this).
  const double expect = static_cast<double>(kDraws) / cfg.n_records;
  for (uint64_t h : hits) {
    EXPECT_GT(h, 0u);
    EXPECT_LT(h, 2 * expect);
  }
}

TEST(WorkloadGeneratorTest, UpdateMixMatchesConfiguredFraction) {
  WorkloadGenerator::Config cfg = SmallConfig();
  cfg.update_fraction = 0.3;
  WorkloadGenerator gen(cfg);
  const int kDraws = 100'000;
  int updates = 0;
  for (int i = 0; i < kDraws; ++i)
    if (gen.NextIsUpdate()) ++updates;
  double frac = static_cast<double>(updates) / kDraws;
  EXPECT_NEAR(frac, cfg.update_fraction, 0.01);
}

TEST(WorkloadGeneratorTest, UpdateValuesKeepTheKey) {
  WorkloadGenerator gen(SmallConfig());
  std::vector<int64_t> attrs = gen.NextUpdateValues(123);
  ASSERT_EQ(attrs.size(), gen.config().n_attrs);
  EXPECT_EQ(attrs[0], 123);
}

}  // namespace
}  // namespace authdb
