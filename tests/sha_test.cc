#include "crypto/sha.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/random.h"

namespace authdb {
namespace {

TEST(Sha1Test, Fips180Vectors) {
  EXPECT_EQ(Sha1::Hash(Slice(std::string("abc"))).ToHex(),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(Sha1::Hash(Slice(std::string(""))).ToHex(),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(Sha1::Hash(Slice(std::string(
                           "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomn"
                           "opnopq")))
                .ToHex(),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
  EXPECT_EQ(Sha1::Hash(Slice(std::string(1000000, 'a'))).ToHex(),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha256Test, Fips180Vectors) {
  EXPECT_EQ(Sha256::Hash(Slice(std::string("abc"))).ToHex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(Sha256::Hash(Slice(std::string(""))).ToHex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(Sha256::Hash(Slice(std::string(
                             "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmno"
                             "mnopnopq")))
                .ToHex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha1Test, IncrementalMatchesOneShot) {
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    size_t len = rng.Uniform(500);
    std::string msg(len, 0);
    for (auto& c : msg) c = static_cast<char>(rng.Uniform(256));
    Digest160 oneshot = Sha1::Hash(Slice(msg));
    Sha1 inc;
    size_t pos = 0;
    while (pos < len) {
      size_t chunk = 1 + rng.Uniform(70);
      chunk = std::min(chunk, len - pos);
      inc.Update(Slice(msg.data() + pos, chunk));
      pos += chunk;
    }
    EXPECT_EQ(inc.Finish(), oneshot);
  }
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  Rng rng(12);
  for (int trial = 0; trial < 50; ++trial) {
    size_t len = rng.Uniform(500);
    std::string msg(len, 0);
    for (auto& c : msg) c = static_cast<char>(rng.Uniform(256));
    Digest256 oneshot = Sha256::Hash(Slice(msg));
    Sha256 inc;
    size_t pos = 0;
    while (pos < len) {
      size_t chunk = 1 + rng.Uniform(70);
      chunk = std::min(chunk, len - pos);
      inc.Update(Slice(msg.data() + pos, chunk));
      pos += chunk;
    }
    EXPECT_EQ(inc.Finish(), oneshot);
  }
}

TEST(Sha1Test, ReuseAfterFinish) {
  Sha1 h;
  h.Update(Slice(std::string("abc")));
  Digest160 d1 = h.Finish();
  h.Update(Slice(std::string("abc")));
  Digest160 d2 = h.Finish();
  EXPECT_EQ(d1, d2);
}

TEST(Sha1Test, HashPairOrderMatters) {
  Digest160 a = Sha1::Hash(Slice(std::string("a")));
  Digest160 b = Sha1::Hash(Slice(std::string("b")));
  EXPECT_NE(Sha1::HashPair(a, b), Sha1::HashPair(b, a));
}

TEST(Sha1Test, DistinctInputsDistinctDigests) {
  // Sanity: no accidental collisions over a batch of structured inputs.
  Rng rng(13);
  std::vector<std::string> seen;
  for (int i = 0; i < 200; ++i) {
    std::string m = "record-" + std::to_string(i);
    std::string d = Sha1::Hash(Slice(m)).ToHex();
    for (const auto& prev : seen) EXPECT_NE(prev, d);
    seen.push_back(d);
  }
}

}  // namespace
}  // namespace authdb
