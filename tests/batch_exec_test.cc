// The batched read path (ShardedQueryServer::ExecuteBatch): a PlanBatch
// answered from ONE pinned epoch must produce, plan for plan, byte-for-byte
// the answers the one-at-a-time Execute path serves — same records, same
// boundary keys, same witnesses, same canonical-affine aggregate points —
// and every answer must be accepted by the unmodified
// ClientVerifier::VerifyAnswerFresh. Also covered: per-plan validation
// error parity, ServerMetrics accounting, SigCache byte-equivalence, and a
// churn test that runs batches against live UpdateStream ingest across
// epoch barriers (the `concurrency` label puts it in the TSan CI lane).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "core/data_aggregator.h"
#include "core/verifier.h"
#include "server/sharded_query_server.h"
#include "server/update_stream.h"

namespace authdb {
namespace {

using HashMode = BasContext::HashMode;

// Same composite-keyed S as query_exec_test: duplicated B values with the
// 4-shard router seamed *inside* B=30's duplicate run, so batched match
// groups and boundary probes must stitch across shards exactly like the
// sequential path does.
class BatchExecTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(0xBA7C);
    ctx_ = new std::shared_ptr<const BasContext>(
        BasContext::Generate(96, 64, &rng));
  }

  void SetUp() override {
    clock_.SetMicros(1'000'000);
    rng_ = std::make_unique<Rng>(7);
    DataAggregator::Options opt;
    opt.record_len = 128;
    opt.piggyback_renewal = false;
    opt.sign_attributes = true;
    da_ = std::make_unique<DataAggregator>(*ctx_, &clock_, rng_.get(), opt);
    verifier_ = std::make_unique<ClientVerifier>(&da_->public_key(), &codec_,
                                                 HashMode::kFast);
  }

  /// Bulk-load S = {B value -> duplicate count}, enable join partitions,
  /// and stand up the default 4-shard server (2 worker threads).
  void Load(const std::map<int64_t, int>& b_counts) {
    std::vector<Record> records;
    for (const auto& [b, count] : b_counts) {
      for (int d = 0; d < count; ++d) {
        Record r;
        r.attrs = {JoinCompositeKey(b, static_cast<uint32_t>(d)), b, b * 11};
        records.push_back(r);
      }
    }
    auto stream = da_->BulkLoad(std::move(records));
    ASSERT_TRUE(stream.ok());
    msgs_ = stream.value();
    da_->EnableJoinPartitions(/*values_per_partition=*/2,
                              /*bits_per_value=*/8.0);
    server_ = MakeServer(/*worker_threads=*/2);
  }

  /// A fresh 4-shard server over the loaded stream; worker_threads = 0
  /// exercises the inline (caller-thread) ShardExecutor path.
  static ServerConfig Config(size_t worker_threads) {
    ServerConfig cfg;
    cfg.node.record_len = 128;
    cfg.serving.worker_threads = worker_threads;
    return cfg;
  }

  std::unique_ptr<ShardedQueryServer> MakeServer(size_t worker_threads) {
    auto server = std::make_unique<ShardedQueryServer>(
        *ctx_,
        ShardRouter({JoinCompositeKey(30, 1), JoinCompositeKey(50, 0),
                     JoinCompositeKey(75, 0)}),
        Config(worker_threads));
    for (const auto& msg : msgs_) EXPECT_TRUE(server->ApplyUpdate(msg).ok());
    server->SetJoinPartitions(da_->join_partitions());
    return server;
  }

  static std::map<int64_t, int> DefaultS() {
    return {{10, 3}, {20, 1}, {30, 3}, {50, 2}, {70, 1}, {90, 2}};
  }

  /// A mixed batch touching every plan kind and every stitch shape:
  /// cross-seam selections, an empty range, projections with and without
  /// the index attribute, both join methods, matched + unmatched probes,
  /// and the absence witness whose chain neighbors span the 30/50 gap.
  static std::vector<Query> MixedPlans() {
    return {
        Query::Select(JoinCompositeKey(10, 0), JoinCompositeKey(50, 1)),
        Query::Select(JoinCompositeKey(31, 0), JoinCompositeKey(49, 0)),
        Query::Select(JoinCompositeKey(10, 0), JoinCompositeKey(90, 1)),
        Query::Project(JoinCompositeKey(10, 0), JoinCompositeKey(90, 1), {2}),
        Query::Project(JoinCompositeKey(20, 0), JoinCompositeKey(30, 2),
                       {0, 1}),
        Query::Project(JoinCompositeKey(31, 0), JoinCompositeKey(49, 0), {1}),
        Query::Join({10, 15, 30, 41, 70, 85, 90, 120},
                    JoinMethod::kBoundaryValues),
        Query::Join({30}, JoinMethod::kBloomFilter),
        Query::Join({40}, JoinMethod::kBoundaryValues),
        Query::Join({10, 90}, JoinMethod::kBloomFilter),
    };
  }

  bool PointsEqual(const BasSignature& a, const BasSignature& b) {
    return (*ctx_)->curve().Equal(a.point, b.point);
  }

  void ExpectSameSelection(const SelectionAnswer& a, const SelectionAnswer& b) {
    EXPECT_EQ(a.records, b.records);
    EXPECT_EQ(a.left_key, b.left_key);
    EXPECT_EQ(a.right_key, b.right_key);
    ASSERT_EQ(a.proof_record.has_value(), b.proof_record.has_value());
    if (a.proof_record) {
      EXPECT_EQ(*a.proof_record, *b.proof_record);
    }
    EXPECT_TRUE(PointsEqual(a.agg_sig, b.agg_sig));
    EXPECT_EQ(a.summaries.size(), b.summaries.size());
    EXPECT_EQ(a.served_epoch, b.served_epoch);
  }

  void ExpectSameProjection(const ProjectedRangeAnswer& a,
                            const ProjectedRangeAnswer& b) {
    ASSERT_EQ(a.tuples.size(), b.tuples.size());
    for (size_t i = 0; i < a.tuples.size(); ++i) {
      EXPECT_EQ(a.tuples[i].rid, b.tuples[i].rid);
      EXPECT_EQ(a.tuples[i].ts, b.tuples[i].ts);
      EXPECT_EQ(a.tuples[i].attr_indices, b.tuples[i].attr_indices);
      EXPECT_EQ(a.tuples[i].values, b.tuples[i].values);
    }
    EXPECT_EQ(a.digests, b.digests);
    EXPECT_EQ(a.left_key, b.left_key);
    EXPECT_EQ(a.right_key, b.right_key);
    ASSERT_EQ(a.proof.has_value(), b.proof.has_value());
    if (a.proof) {
      EXPECT_EQ(a.proof->key, b.proof->key);
      EXPECT_EQ(a.proof->rid, b.proof->rid);
      EXPECT_EQ(a.proof->ts, b.proof->ts);
      EXPECT_EQ(a.proof->digest, b.proof->digest);
    }
    EXPECT_TRUE(PointsEqual(a.agg_sig, b.agg_sig));
  }

  void ExpectSameJoin(const JoinAnswer& a, const JoinAnswer& b) {
    EXPECT_EQ(a.method, b.method);
    ASSERT_EQ(a.matches.size(), b.matches.size());
    for (size_t i = 0; i < a.matches.size(); ++i) {
      EXPECT_EQ(a.matches[i].a_value, b.matches[i].a_value);
      EXPECT_EQ(a.matches[i].s_records, b.matches[i].s_records);
      EXPECT_EQ(a.matches[i].left_key, b.matches[i].left_key);
      EXPECT_EQ(a.matches[i].right_key, b.matches[i].right_key);
    }
    EXPECT_EQ(a.negative_probes, b.negative_probes);
    ASSERT_EQ(a.partitions.size(), b.partitions.size());
    for (size_t i = 0; i < a.partitions.size(); ++i)
      EXPECT_EQ(a.partitions[i].idx, b.partitions[i].idx);
    ASSERT_EQ(a.absence_proofs.size(), b.absence_proofs.size());
    for (size_t i = 0; i < a.absence_proofs.size(); ++i) {
      EXPECT_EQ(a.absence_proofs[i].a_value, b.absence_proofs[i].a_value);
      EXPECT_EQ(a.absence_proofs[i].rec_key, b.absence_proofs[i].rec_key);
      EXPECT_EQ(a.absence_proofs[i].rec_rid, b.absence_proofs[i].rec_rid);
      EXPECT_EQ(a.absence_proofs[i].rec_ts, b.absence_proofs[i].rec_ts);
      EXPECT_EQ(a.absence_proofs[i].rec_digest,
                b.absence_proofs[i].rec_digest);
      EXPECT_EQ(a.absence_proofs[i].left_key, b.absence_proofs[i].left_key);
      EXPECT_EQ(a.absence_proofs[i].right_key, b.absence_proofs[i].right_key);
    }
    EXPECT_TRUE(PointsEqual(a.agg_sig, b.agg_sig));
  }

  void ExpectSameAnswer(const QueryAnswer& a, const QueryAnswer& b) {
    ASSERT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.served_epoch, b.served_epoch);
    EXPECT_EQ(a.summaries.size(), b.summaries.size());
    switch (a.kind) {
      case QueryKind::kSelect:
        ExpectSameSelection(a.selection, b.selection);
        break;
      case QueryKind::kProject:
        ExpectSameProjection(a.projection, b.projection);
        break;
      case QueryKind::kJoin:
        ExpectSameJoin(a.join, b.join);
        break;
    }
  }

  uint64_t Now() { return clock_.NowMicros(); }

  static std::shared_ptr<const BasContext>* ctx_;
  ManualClock clock_;
  std::unique_ptr<Rng> rng_;
  VarintGapCodec codec_;
  std::unique_ptr<DataAggregator> da_;
  std::vector<SignedRecordUpdate> msgs_;
  std::unique_ptr<ShardedQueryServer> server_;
  std::unique_ptr<ClientVerifier> verifier_;
};
std::shared_ptr<const BasContext>* BatchExecTest::ctx_ = nullptr;

TEST_F(BatchExecTest, BatchMatchesSequentialExecution) {
  Load(DefaultS());
  std::vector<Query> plans = MixedPlans();
  auto batched = server_->ExecuteBatch(PlanBatch::Of(plans));
  ASSERT_EQ(batched.size(), plans.size());
  for (size_t i = 0; i < plans.size(); ++i) {
    SCOPED_TRACE("plan " + std::to_string(i));
    auto seq = server_->Execute(plans[i]);
    ASSERT_TRUE(batched[i].ok());
    ASSERT_TRUE(seq.ok());
    ExpectSameAnswer(batched[i].value(), seq.value());
    EXPECT_TRUE(verifier_
                    ->VerifyAnswerFresh(plans[i], batched[i].value(), Now(),
                                        /*min_epoch=*/0)
                    .ok());
  }
}

TEST_F(BatchExecTest, BatchVerifyMatchesSequentialVerdictsFieldForField) {
  Load(DefaultS());
  std::vector<Query> plans = MixedPlans();
  auto answers = server_->ExecuteBatch(PlanBatch::Of(plans));
  ASSERT_EQ(answers.size(), plans.size());
  // Tamper with one selection (drop a record) and one projection (flip a
  // projected value) so failing verdicts are compared too, not only
  // passing ones.
  ASSERT_GE(answers[0].value().selection.records.size(), 2u);
  answers[0].value().selection.records.pop_back();
  ASSERT_FALSE(answers[4].value().projection.tuples.empty());
  answers[4].value().projection.tuples[0].values.back() ^= 1;

  // The sequential reference: one fresh verifier driving VerifyAnswerFresh
  // answer by answer.
  std::vector<Status> seq;
  {
    ClientVerifier v(&da_->public_key(), &codec_, HashMode::kFast);
    for (size_t i = 0; i < plans.size(); ++i)
      seq.push_back(v.VerifyAnswerFresh(plans[i], answers[i].value(), Now(),
                                        /*min_epoch=*/0));
  }
  EXPECT_FALSE(seq[0].ok());
  EXPECT_FALSE(seq[4].ok());

  for (size_t threads : {size_t{0}, size_t{3}}) {
    SCOPED_TRACE("worker_threads " + std::to_string(threads));
    ClientVerifier v(&da_->public_key(), &codec_, HashMode::kFast);
    ClientVerifier::BatchVerifyOptions opts;
    opts.worker_threads = threads;
    ClientVerifier::BatchVerifyStats stats;
    std::vector<Status> got = v.VerifyAnswerBatch(
        PlanBatch::Of(plans), answers, Now(), /*min_epoch=*/0, opts, &stats);
    ASSERT_EQ(got.size(), seq.size());
    for (size_t i = 0; i < got.size(); ++i) {
      SCOPED_TRACE("plan " + std::to_string(i));
      EXPECT_EQ(got[i].code(), seq[i].code());
      EXPECT_EQ(got[i].ToString(), seq[i].ToString());
    }
    EXPECT_EQ(stats.answers, plans.size());
    // Selections + projections fold into ONE shared-inversion pass.
    EXPECT_EQ(stats.aggregate_claims, 6u);
    EXPECT_EQ(stats.shared_inversions, 1u);
  }
}

TEST_F(BatchExecTest, AllAnswersOfABatchShareOnePinnedEpoch) {
  Load(DefaultS());
  auto batched = server_->ExecuteBatch(PlanBatch::Of(MixedPlans()));
  ASSERT_FALSE(batched.empty());
  ASSERT_TRUE(batched[0].ok());
  const uint64_t epoch = batched[0].value().served_epoch;
  for (const auto& r : batched) {
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().served_epoch, epoch);
  }
  // The metrics snapshot saw the same pinned epoch.
  EXPECT_EQ(server_->Metrics().exec.last_epoch, epoch);
}

TEST_F(BatchExecTest, InvalidPlansFailIdenticallyWithoutPoisoningTheBatch) {
  Load(DefaultS());
  std::vector<Query> plans = {
      Query::Select(JoinCompositeKey(10, 0), JoinCompositeKey(30, 2)),
      Query::Select(JoinCompositeKey(50, 0), JoinCompositeKey(10, 0)),  // lo>hi
      Query::Join({}, JoinMethod::kBoundaryValues),  // no probe values
      Query::Join({70, 90}, JoinMethod::kBloomFilter),
  };
  auto batched = server_->ExecuteBatch(PlanBatch::Of(plans));
  ASSERT_EQ(batched.size(), plans.size());
  for (size_t i = 0; i < plans.size(); ++i) {
    SCOPED_TRACE("plan " + std::to_string(i));
    auto seq = server_->Execute(plans[i]);
    ASSERT_EQ(batched[i].ok(), seq.ok());
    if (!seq.ok()) {
      EXPECT_EQ(batched[i].status().message(), seq.status().message());
      continue;
    }
    ExpectSameAnswer(batched[i].value(), seq.value());
    EXPECT_TRUE(
        verifier_->VerifyAnswerFresh(plans[i], batched[i].value(), Now(), 0)
            .ok());
  }
}

TEST_F(BatchExecTest, BatchOfOneIsExactlyExecute) {
  Load(DefaultS());
  Query q = Query::Select(JoinCompositeKey(10, 0), JoinCompositeKey(90, 1));
  const ServerMetrics before = server_->Metrics();
  auto batched = server_->ExecuteBatch(PlanBatch::Of({q}));
  auto seq = server_->Execute(q);
  ASSERT_EQ(batched.size(), 1u);
  ASSERT_TRUE(batched[0].ok() && seq.ok());
  ExpectSameAnswer(batched[0].value(), seq.value());
  const ServerMetrics delta = server_->Metrics().Delta(before);
  EXPECT_EQ(delta.exec.batches, 2u);  // the batch of one + Execute's own
  EXPECT_EQ(delta.exec.plans, 2u);
}

TEST_F(BatchExecTest, InlineExecutorMatchesThreadedExecutor) {
  Load(DefaultS());
  auto inline_server = MakeServer(/*worker_threads=*/0);
  std::vector<Query> plans = MixedPlans();
  auto threaded = server_->ExecuteBatch(PlanBatch::Of(plans));
  auto inlined = inline_server->ExecuteBatch(PlanBatch::Of(plans));
  ASSERT_EQ(threaded.size(), inlined.size());
  for (size_t i = 0; i < threaded.size(); ++i) {
    SCOPED_TRACE("plan " + std::to_string(i));
    ASSERT_TRUE(threaded[i].ok() && inlined[i].ok());
    ExpectSameAnswer(threaded[i].value(), inlined[i].value());
  }
}

TEST_F(BatchExecTest, MetricsAccountShardVisitsAndFinalizes) {
  Load(DefaultS());
  std::vector<Query> plans = MixedPlans();
  const ServerMetrics before = server_->Metrics();
  auto batched = server_->ExecuteBatch(PlanBatch::Of(plans));
  for (const auto& r : batched) ASSERT_TRUE(r.ok());
  const ServerMetrics delta = server_->Metrics().Delta(before);
  EXPECT_EQ(delta.exec.batches, 1u);
  EXPECT_EQ(delta.exec.plans, plans.size());
  EXPECT_EQ(delta.exec.invalid_plans, 0u);
  // One visit per covered shard per batch — never one per plan.
  EXPECT_GE(delta.exec.shard_visits, 1u);
  EXPECT_LE(delta.exec.shard_visits, server_->shard_count());
  ASSERT_EQ(delta.exec.shard_busy.size(), server_->shard_count());
  uint64_t visit_us = 0;
  for (const auto& kb : delta.exec.shard_busy) visit_us += kb.visit_us;
  EXPECT_GT(visit_us, 0u);
  // At least the one batch-level answer finalize ran.
  EXPECT_GE(delta.exec.batch_finalizes, 1u);
  EXPECT_EQ(delta.exec.last_epoch, batched[0].value().served_epoch);
}

TEST_F(BatchExecTest, SigCacheWindowsKeepBatchByteEquivalent) {
  Load(DefaultS());
  // Sequential answers captured BEFORE the cache exists: the cached batch
  // path (batched window fills, one shared inversion) must reproduce the
  // exact leaf-path aggregates — canonical affine points, not just
  // verifying ones.
  std::vector<Query> plans = MixedPlans();
  std::vector<QueryAnswer> uncached;
  for (const auto& q : plans) {
    auto r = server_->Execute(q);
    ASSERT_TRUE(r.ok());
    uncached.push_back(r.MoveValue());
  }
  server_->EnableSigCache(SigCache::RefreshMode::kLazy, 4);
  auto cached = server_->ExecuteBatch(PlanBatch::Of(plans));
  ASSERT_EQ(cached.size(), plans.size());
  for (size_t i = 0; i < plans.size(); ++i) {
    SCOPED_TRACE("plan " + std::to_string(i));
    ASSERT_TRUE(cached[i].ok());
    ExpectSameAnswer(cached[i].value(), uncached[i]);
    EXPECT_TRUE(
        verifier_->VerifyAnswerFresh(plans[i], cached[i].value(), Now(), 0)
            .ok());
  }
}

// Batches against live ingest: an UpdateStream applies modifies and closes
// rho-periods (epoch barriers with certified partition refreshes) while the
// main thread runs batched reads. Every batch must stay internally
// epoch-consistent, answers must keep verifying after the stream quiesces,
// and the run must cross at least one epoch barrier. Runs under TSan via
// the `concurrency` suite label.
TEST_F(BatchExecTest, BatchesStayConsistentUnderLiveIngestAcrossEpochs) {
  Load(DefaultS());
  UpdateStream stream(server_.get(), Config(2));
  std::vector<Query> plans = MixedPlans();

  auto first = server_->ExecuteBatch(PlanBatch::Of(plans));
  for (const auto& r : first) ASSERT_TRUE(r.ok());
  const uint64_t first_epoch = first[0].value().served_epoch;

  // Producer: bursts of modifies, each burst closed by a summary barrier
  // (and its certified partition refresh). The clock and the DA are only
  // ever touched from this thread while it runs.
  std::atomic<bool> done{false};
  std::thread producer([&] {
    const std::vector<int64_t> bs = {10, 20, 30, 50, 70, 90};
    for (int period = 0; period < 6; ++period) {
      for (int64_t b : bs) {
        int64_t key = JoinCompositeKey(b, 0);
        auto msg = da_->ModifyRecord(key, {key, b, 1000 + period});
        ASSERT_TRUE(msg.ok());
        stream.PushUpdate(std::move(msg.value()));
      }
      clock_.AdvanceSeconds(1.0);
      DataAggregator::PeriodOutput out = da_->PublishSummary();
      for (const auto& msg : out.recertifications)
        stream.PushUpdate(msg);
      stream.PushSummary(std::move(out.summary),
                         std::move(out.partition_refresh));
    }
    done.store(true, std::memory_order_release);
  });

  std::set<uint64_t> epochs_seen = {first_epoch};
  while (!done.load(std::memory_order_acquire)) {
    auto batched = server_->ExecuteBatch(PlanBatch::Of(plans));
    ASSERT_EQ(batched.size(), plans.size());
    ASSERT_TRUE(batched[0].ok());
    const uint64_t batch_epoch = batched[0].value().served_epoch;
    for (const auto& r : batched) {
      ASSERT_TRUE(r.ok());
      // One serializable cut per batch, even mid-barrier.
      EXPECT_EQ(r.value().served_epoch, batch_epoch);
    }
    epochs_seen.insert(batch_epoch);
  }
  producer.join();
  stream.Flush();

  // The quiesced state: a final batch pins the last published epoch, every
  // answer matching the sequential path and accepted fresh by the client.
  auto final_batch = server_->ExecuteBatch(PlanBatch::Of(plans));
  ASSERT_TRUE(final_batch[0].ok());
  const uint64_t final_epoch = final_batch[0].value().served_epoch;
  epochs_seen.insert(final_epoch);
  EXPECT_GT(final_epoch, first_epoch)
      << "the stream never published an epoch barrier";
  EXPECT_GE(epochs_seen.size(), 2u);
  for (size_t i = 0; i < plans.size(); ++i) {
    SCOPED_TRACE("plan " + std::to_string(i));
    ASSERT_TRUE(final_batch[i].ok());
    auto seq = server_->Execute(plans[i]);
    ASSERT_TRUE(seq.ok());
    ExpectSameAnswer(final_batch[i].value(), seq.value());
    EXPECT_TRUE(verifier_
                    ->VerifyAnswerFresh(plans[i], final_batch[i].value(),
                                        Now(), final_epoch)
                    .ok());
  }
}

}  // namespace
}  // namespace authdb
