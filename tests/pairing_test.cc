#include "crypto/pairing.h"

#include <cstdint>
#include <memory>

#include <gtest/gtest.h>

#include "crypto/bas.h"

namespace authdb {
namespace {

class PairingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(777);
    ctx_ = new std::shared_ptr<const BasContext>(
        BasContext::Generate(/*p_bits=*/96, /*r_bits=*/64, &rng));
  }
  const CurveGroup& curve() { return (*ctx_)->curve(); }
  const TatePairing& e() { return (*ctx_)->pairing(); }
  const Fp2Field& fp2() { return (*ctx_)->pairing().fp2(); }
  const ECPoint& G() { return (*ctx_)->generator(); }
  static std::shared_ptr<const BasContext>* ctx_;
};
std::shared_ptr<const BasContext>* PairingTest::ctx_ = nullptr;

TEST_F(PairingTest, NonDegenerate) {
  Fp2Elem v = e().Pair(G(), G());
  EXPECT_FALSE(fp2().Equal(v, fp2().One()));
  EXPECT_FALSE(fp2().IsZero(v));
}

TEST_F(PairingTest, InfinityPairsToOne) {
  EXPECT_TRUE(fp2().Equal(e().Pair(ECPoint{}, G()), fp2().One()));
  EXPECT_TRUE(fp2().Equal(e().Pair(G(), ECPoint{}), fp2().One()));
}

TEST_F(PairingTest, PairingValueHasOrderR) {
  Fp2Elem v = e().Pair(G(), G());
  EXPECT_TRUE(fp2().Equal(fp2().Exp(v, curve().order()), fp2().One()));
}

TEST_F(PairingTest, BilinearInFirstArgument) {
  Rng rng(1);
  for (int i = 0; i < 8; ++i) {
    uint64_t a = 2 + rng.Uniform(1u << 20);
    ECPoint aG = curve().ScalarMult(G(), BigInt(a));
    Fp2Elem lhs = e().Pair(aG, G());
    Fp2Elem rhs = fp2().Exp(e().Pair(G(), G()), BigInt(a));
    EXPECT_TRUE(fp2().Equal(lhs, rhs)) << "a=" << a;
  }
}

TEST_F(PairingTest, BilinearInSecondArgument) {
  Rng rng(2);
  for (int i = 0; i < 8; ++i) {
    uint64_t b = 2 + rng.Uniform(1u << 20);
    ECPoint bG = curve().ScalarMult(G(), BigInt(b));
    Fp2Elem lhs = e().Pair(G(), bG);
    Fp2Elem rhs = fp2().Exp(e().Pair(G(), G()), BigInt(b));
    EXPECT_TRUE(fp2().Equal(lhs, rhs)) << "b=" << b;
  }
}

TEST_F(PairingTest, FullBilinearity) {
  Rng rng(3);
  for (int i = 0; i < 5; ++i) {
    uint64_t a = 2 + rng.Uniform(1u << 16);
    uint64_t b = 2 + rng.Uniform(1u << 16);
    ECPoint aG = curve().ScalarMult(G(), BigInt(a));
    ECPoint bG = curve().ScalarMult(G(), BigInt(b));
    Fp2Elem lhs = e().Pair(aG, bG);
    Fp2Elem rhs = fp2().Exp(e().Pair(G(), G()), BigInt(a * b));
    EXPECT_TRUE(fp2().Equal(lhs, rhs)) << a << " " << b;
  }
}

TEST_F(PairingTest, MultiplicativeInFirstArgument) {
  // e(P+Q, R) == e(P,R) * e(Q,R)
  Rng rng(4);
  ECPoint P = curve().ScalarMult(G(), BigInt(1 + rng.Uniform(1u << 20)));
  ECPoint Q = curve().ScalarMult(G(), BigInt(1 + rng.Uniform(1u << 20)));
  ECPoint R = curve().ScalarMult(G(), BigInt(1 + rng.Uniform(1u << 20)));
  Fp2Elem lhs = e().Pair(curve().Add(P, Q), R);
  Fp2Elem rhs = fp2().Mul(e().Pair(P, R), e().Pair(Q, R));
  EXPECT_TRUE(fp2().Equal(lhs, rhs));
}

TEST_F(PairingTest, NegationInvertsPairing) {
  ECPoint P = curve().ScalarMult(G(), BigInt(123));
  Fp2Elem v = e().Pair(P, G());
  Fp2Elem vn = e().Pair(curve().Negate(P), G());
  EXPECT_TRUE(fp2().Equal(fp2().Mul(v, vn), fp2().One()));
}

TEST(Fp2FieldTest, FieldAxioms) {
  Rng rng(5);
  BigInt p = BigInt::GeneratePrime(96, &rng);
  while (BigInt::Mod(p, BigInt(4)).ToU64() != 3)
    p = BigInt::GeneratePrime(96, &rng);
  PrimeField fp(p);
  Fp2Field f2(&fp);
  for (int i = 0; i < 30; ++i) {
    Fp2Elem a = f2.Make(fp.FromPlain(BigInt::RandomBelow(p, &rng)),
                        fp.FromPlain(BigInt::RandomBelow(p, &rng)));
    Fp2Elem b = f2.Make(fp.FromPlain(BigInt::RandomBelow(p, &rng)),
                        fp.FromPlain(BigInt::RandomBelow(p, &rng)));
    // Multiplication commutes; Sqr matches Mul.
    EXPECT_TRUE(f2.Equal(f2.Mul(a, b), f2.Mul(b, a)));
    EXPECT_TRUE(f2.Equal(f2.Sqr(a), f2.Mul(a, a)));
    // Inverse.
    if (!f2.IsZero(a)) {
      EXPECT_TRUE(f2.Equal(f2.Mul(a, f2.Inv(a)), f2.One()));
    }
    // Conjugation is multiplicative.
    EXPECT_TRUE(
        f2.Equal(f2.Conj(f2.Mul(a, b)), f2.Mul(f2.Conj(a), f2.Conj(b))));
    // Norm a * conj(a) is in F_p (imaginary part zero).
    Fp2Elem norm = f2.Mul(a, f2.Conj(a));
    EXPECT_TRUE(norm.im.IsZero());
  }
}

}  // namespace
}  // namespace authdb
