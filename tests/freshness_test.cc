#include "core/freshness.h"

#include <cstdint>
#include <memory>

#include <gtest/gtest.h>

namespace authdb {
namespace {

using HashMode = BasContext::HashMode;

class FreshnessTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(0x5555);
    ctx_ = new std::shared_ptr<const BasContext>(
        BasContext::Generate(96, 64, &rng));
    Rng krng(7);
    key_ = new BasPrivateKey(BasPrivateKey::Generate(*ctx_, &krng));
  }
  UpdateSummary Publish(SummaryBuilder* b, uint64_t seq, uint64_t ts,
                        uint64_t nbits = 1000) {
    return b->BuildAndSign(seq, ts, nbits, *key_, HashMode::kFast);
  }
  static std::shared_ptr<const BasContext>* ctx_;
  static BasPrivateKey* key_;
  VarintGapCodec codec_;
};
std::shared_ptr<const BasContext>* FreshnessTest::ctx_ = nullptr;
BasPrivateKey* FreshnessTest::key_ = nullptr;

TEST_F(FreshnessTest, FreshRecordPasses) {
  SummaryBuilder builder(&codec_);
  FreshnessChecker checker(&key_->public_key(), &codec_, HashMode::kFast);
  ASSERT_TRUE(checker.AddSummary(Publish(&builder, 0, 1000)).ok());
  // Record certified after the summary: fresh by definition.
  uint64_t staleness = 0;
  EXPECT_TRUE(checker.CheckRecord(5, 1500, 2000, &staleness).ok());
  EXPECT_EQ(staleness, 500u);
}

TEST_F(FreshnessTest, UnmarkedOldRecordPasses) {
  SummaryBuilder builder(&codec_);
  FreshnessChecker checker(&key_->public_key(), &codec_, HashMode::kFast);
  builder.MarkUpdated(7);  // some other record
  ASSERT_TRUE(checker.AddSummary(Publish(&builder, 0, 1000)).ok());
  ASSERT_TRUE(checker.AddSummary(Publish(&builder, 1, 2000)).ok());
  uint64_t staleness = 0;
  EXPECT_TRUE(checker.CheckRecord(5, 500, 2400, &staleness).ok());
  EXPECT_EQ(staleness, 400u);  // bounded by the latest summary age
}

TEST_F(FreshnessTest, StaleRecordDetected) {
  SummaryBuilder builder(&codec_);
  FreshnessChecker checker(&key_->public_key(), &codec_, HashMode::kFast);
  builder.MarkUpdated(5);  // record 5 certified at ts=500 (period 0)
  ASSERT_TRUE(checker.AddSummary(Publish(&builder, 0, 1000)).ok());
  builder.MarkUpdated(5);  // record 5 updated again in period 1
  ASSERT_TRUE(checker.AddSummary(Publish(&builder, 1, 2000)).ok());
  // Server returns the version certified at ts=500; the period-1 mark
  // (a period that began after ts=500) proves a newer version exists.
  Status s = checker.CheckRecord(5, 500, 2500);
  EXPECT_TRUE(s.IsVerificationFailed());
}

TEST_F(FreshnessTest, OwnPeriodMarkIsNotStaleness) {
  // The summary closing the period that *contains* the certification marks
  // the record because of that very certification — it must not be treated
  // as evidence of a newer version.
  SummaryBuilder builder(&codec_);
  FreshnessChecker checker(&key_->public_key(), &codec_, HashMode::kFast);
  builder.MarkUpdated(5);  // the record's own certification at ts=500
  ASSERT_TRUE(checker.AddSummary(Publish(&builder, 0, 1000)).ok());
  ASSERT_TRUE(checker.AddSummary(Publish(&builder, 1, 2000)).ok());
  EXPECT_TRUE(checker.CheckRecord(5, 500, 2500).ok());
}

TEST_F(FreshnessTest, TamperedSummaryRejected) {
  SummaryBuilder builder(&codec_);
  FreshnessChecker checker(&key_->public_key(), &codec_, HashMode::kFast);
  builder.MarkUpdated(5);
  UpdateSummary summary = Publish(&builder, 0, 1000);
  // The compromised server tries to erase the update mark.
  Bitmap empty(1000);
  summary.compressed_bitmap = codec_.Encode(empty);
  EXPECT_TRUE(checker.AddSummary(summary).IsVerificationFailed());
}

TEST_F(FreshnessTest, DuplicateSummariesIgnored) {
  SummaryBuilder builder(&codec_);
  FreshnessChecker checker(&key_->public_key(), &codec_, HashMode::kFast);
  UpdateSummary s0 = Publish(&builder, 0, 1000);
  ASSERT_TRUE(checker.AddSummary(s0).ok());
  ASSERT_TRUE(checker.AddSummary(s0).ok());
  EXPECT_EQ(checker.summary_count(), 1u);
}

TEST_F(FreshnessTest, CoverageGapDetected) {
  SummaryBuilder builder(&codec_);
  FreshnessChecker checker(&key_->public_key(), &codec_, HashMode::kFast);
  ASSERT_TRUE(checker.AddSummary(Publish(&builder, 0, 1000)).ok());
  // seq 1 (published at 2000) never arrives.
  ASSERT_TRUE(checker.AddSummary(Publish(&builder, 2, 3000)).ok());
  // A record certified at 500 needs coverage across the gap: reject.
  EXPECT_TRUE(checker.CheckRecord(5, 500, 3500).IsVerificationFailed());
  // A record newer than the latest summary is still fine.
  EXPECT_TRUE(checker.CheckRecord(5, 3200, 3500).ok());
}

TEST_F(FreshnessTest, MultiUpdateTrackingForRecertification) {
  SummaryBuilder builder(&codec_);
  builder.MarkUpdated(3);
  builder.MarkUpdated(3);
  builder.MarkUpdated(4);
  auto multi = builder.MultiUpdatedRids();
  ASSERT_EQ(multi.size(), 1u);
  EXPECT_EQ(multi[0], 3u);
}

TEST_F(FreshnessTest, MultiUpdateStateResetsAcrossConsecutivePeriods) {
  // Section 3.1 granularity rule across two consecutive periods: closing a
  // period consumes the multi-update set (the DA re-certifies those rids
  // in the *next* period), so the next period starts clean, and the
  // re-certification mark it receives counts as a single update there.
  SummaryBuilder builder(&codec_);
  builder.MarkUpdated(3);
  builder.MarkUpdated(3);
  ASSERT_EQ(builder.MultiUpdatedRids().size(), 1u);
  UpdateSummary s0 = Publish(&builder, 0, 1000);
  EXPECT_EQ(builder.pending_updates(), 0u);
  EXPECT_TRUE(builder.MultiUpdatedRids().empty());
  EXPECT_TRUE(codec_.Decode(Slice(s0.compressed_bitmap)).Get(3));

  builder.MarkUpdated(3);  // the period-1 re-certification of rid 3
  EXPECT_TRUE(builder.MultiUpdatedRids().empty());  // single mark: no cascade
  UpdateSummary s1 = Publish(&builder, 1, 2000);
  EXPECT_TRUE(codec_.Decode(Slice(s1.compressed_bitmap)).Get(3));

  // The chained effect on the freshness rule: a version certified in
  // period 0 is invalidated by the period-1 mark.
  FreshnessChecker checker(&key_->public_key(), &codec_, HashMode::kFast);
  ASSERT_TRUE(checker.AddSummary(s0).ok());
  ASSERT_TRUE(checker.AddSummary(s1).ok());
  EXPECT_TRUE(checker.CheckRecord(3, 500, 2500).IsVerificationFailed());
  EXPECT_TRUE(checker.CheckRecord(3, 1500, 2500).ok());  // own-period mark
}

TEST_F(FreshnessTest, WireSizeUsesActualSignatureSize) {
  SummaryBuilder builder(&codec_);
  builder.MarkUpdated(42);
  UpdateSummary s = Publish(&builder, 0, 1000);
  // Fixed overhead: seq, publish_ts, nbits (8 bytes each), plus the
  // signature at its serialized size — not the paper's 20-byte constant.
  EXPECT_EQ(s.wire_size(),
            s.compressed_bitmap.size() + 24 + s.sig.wire_bytes());
  // The signature's self-reported size tracks the real point serialization
  // (2 x field width; at most one padding byte per coordinate off when a
  // leading byte is zero).
  size_t serialized = (*ctx_)->curve().Serialize(s.sig.point).size();
  EXPECT_LE(s.sig.wire_bytes(), serialized);
  EXPECT_GE(s.sig.wire_bytes() + 2, serialized);
  // The 96-bit test field already overflows the old hard-coded constant.
  EXPECT_GT(s.sig.wire_bytes(), 20u);
}

TEST_F(FreshnessTest, SummarySizeTracksUpdateCount) {
  SummaryBuilder builder(&codec_);
  for (uint64_t rid = 0; rid < 10; ++rid) builder.MarkUpdated(rid * 97);
  UpdateSummary small = Publish(&builder, 0, 1000, 1'000'000);
  for (uint64_t rid = 0; rid < 1000; ++rid) builder.MarkUpdated(rid * 97);
  UpdateSummary large = Publish(&builder, 1, 2000, 1'000'000);
  EXPECT_LT(small.compressed_bitmap.size(), large.compressed_bitmap.size());
  // Size is proportional to updates, insensitive to the 1M-record domain.
  EXPECT_LT(large.compressed_bitmap.size(), 4096u);
}

TEST_F(FreshnessTest, NoSummariesMeansEverythingFresh) {
  FreshnessChecker checker(&key_->public_key(), &codec_, HashMode::kFast);
  EXPECT_TRUE(checker.CheckRecord(1, 100, 200).ok());
}

}  // namespace
}  // namespace authdb
