// Concurrency tests for the sharded serving layer — written to run under
// ThreadSanitizer (the CI tsan job executes exactly these). They hammer the
// server from many client threads while a writer replays DA traffic, and
// only make deterministic assertions (counts, verification in quiesced
// phases); the sanitizer provides the interesting failure mode.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "core/data_aggregator.h"
#include "core/verifier.h"
#include "server/shard_executor.h"
#include "server/sharded_query_server.h"
#include "sim/multi_client.h"

namespace authdb {
namespace {

using HashMode = BasContext::HashMode;

class ConcurrencyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(0xC0C0);
    ctx_ = new std::shared_ptr<const BasContext>(
        BasContext::Generate(96, 64, &rng));
  }

  void SetUp() override {
    clock_.SetMicros(1'000'000);
    rng_ = std::make_unique<Rng>(13);
    DataAggregator::Options opt;
    opt.record_len = 128;
    opt.piggyback_renewal = false;  // keep each modify single-shard
    da_ = std::make_unique<DataAggregator>(*ctx_, &clock_, rng_.get(), opt);
  }

  std::unique_ptr<ShardedQueryServer> MakeServer(size_t shards,
                                                 size_t workers,
                                                 int64_t n_keys) {
    ServerConfig cfg;
    cfg.node.record_len = 128;
    cfg.serving.worker_threads = workers;
    auto server = std::make_unique<ShardedQueryServer>(
        *ctx_, ShardRouter::Uniform(shards, 0, n_keys - 1), cfg);
    std::vector<Record> records;
    for (int64_t k = 0; k < n_keys; ++k) {
      Record r;
      r.attrs = {k, k};
      records.push_back(r);
    }
    auto stream = da_->BulkLoad(std::move(records));
    EXPECT_TRUE(stream.ok());
    for (const auto& msg : stream.value())
      EXPECT_TRUE(server->ApplyUpdate(msg).ok());
    return server;
  }

  static std::shared_ptr<const BasContext>* ctx_;
  ManualClock clock_;
  std::unique_ptr<Rng> rng_;
  VarintGapCodec codec_;
  std::unique_ptr<DataAggregator> da_;
};
std::shared_ptr<const BasContext>* ConcurrencyTest::ctx_ = nullptr;

TEST(ShardExecutorTest, RunVisitsExecutesEveryVisitOnce) {
  ShardExecutor exec(3, /*threaded=*/true);
  std::atomic<int> count{0};
  std::vector<ShardExecutor::Visit> visits;
  for (int i = 0; i < 64; ++i)
    visits.push_back({static_cast<size_t>(i) % 3, [&] { ++count; }});
  exec.RunVisits(std::move(visits));
  EXPECT_EQ(count.load(), 64);
}

TEST(ShardExecutorTest, InlineModeRunsOnCallerThread) {
  ShardExecutor exec(3, /*threaded=*/false);
  int count = 0;  // no atomics needed: everything runs on this thread
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<ShardExecutor::Visit> visits;
  for (int i = 0; i < 8; ++i) {
    visits.push_back({static_cast<size_t>(i) % 3, [&, caller] {
                        EXPECT_EQ(std::this_thread::get_id(), caller);
                        ++count;
                      }});
  }
  exec.RunVisits(std::move(visits));
  EXPECT_EQ(count, 8);
}

TEST(ShardExecutorTest, VisitsAreShardAffine) {
  // Every visit for shard s must land on shard s's one worker thread,
  // across multiple RunVisits rounds.
  ShardExecutor exec(4, /*threaded=*/true);
  std::array<std::atomic<std::thread::id>, 4> owner{};
  std::atomic<int> mismatches{0};
  for (int round = 0; round < 16; ++round) {
    std::vector<ShardExecutor::Visit> visits;
    for (size_t s = 0; s < 4; ++s) {
      visits.push_back({s, [&, s] {
                          std::thread::id me = std::this_thread::get_id();
                          std::thread::id expect{};
                          if (!owner[s].compare_exchange_strong(expect, me) &&
                              expect != me) {
                            ++mismatches;
                          }
                        }});
    }
    exec.RunVisits(std::move(visits));
  }
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ShardExecutorTest, ConcurrentRunVisitsCallersShareTheLanes) {
  ShardExecutor exec(2, /*threaded=*/true);
  std::atomic<int> count{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < 4; ++c) {
    callers.emplace_back([&] {
      for (int round = 0; round < 20; ++round) {
        std::vector<ShardExecutor::Visit> visits;
        for (int i = 0; i < 5; ++i)
          visits.push_back({static_cast<size_t>(i) % 2, [&] { ++count; }});
        exec.RunVisits(std::move(visits));
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(count.load(), 4 * 20 * 5);
}

TEST_F(ConcurrencyTest, ParallelReadersAcrossShards) {
  auto server = MakeServer(4, 4, 256);
  ClientVerifier verifier(&da_->public_key(), &codec_, HashMode::kFast);
  std::atomic<size_t> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(100 + t);
      for (int i = 0; i < 40; ++i) {
        int64_t lo = static_cast<int64_t>(rng.Uniform(240));
        int64_t hi = lo + static_cast<int64_t>(rng.Uniform(64));
        auto ans = server->Select(lo, hi);
        if (!ans.ok()) {
          ++failures;
          continue;
        }
        // The relation is quiescent, so every concurrent answer verifies.
        if (!verifier
                 .VerifySelectionStatic(lo, hi, ans.value())
                 .ok())
          ++failures;
      }
    });
  }
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0u);
}

TEST_F(ConcurrencyTest, ReadersWithConcurrentSingleShardUpdates) {
  auto server = MakeServer(4, 4, 256);
  // Pre-sign the update stream: the DA is a single-threaded signer; the
  // serving layer is what is under concurrency test.
  std::vector<SignedRecordUpdate> updates;
  for (int i = 0; i < 120; ++i) {
    int64_t key = static_cast<int64_t>(rng_->Uniform(256));
    auto msg = da_->ModifyRecord(key, {key, 1000 + i});
    ASSERT_TRUE(msg.ok());
    updates.push_back(std::move(msg.value()));
  }
  std::atomic<size_t> read_errors{0};
  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(200 + t);
      while (!done.load(std::memory_order_relaxed)) {
        int64_t lo = static_cast<int64_t>(rng.Uniform(250));
        auto ans = server->Select(lo, lo + 5);
        if (!ans.ok()) ++read_errors;
      }
    });
  }
  for (const auto& msg : updates)
    ASSERT_TRUE(server->ApplyUpdate(msg).ok());
  done.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(read_errors.load(), 0u);
  // Quiesced: the final state serves verifiable answers everywhere.
  ClientVerifier verifier(&da_->public_key(), &codec_, HashMode::kFast);
  auto ans = server->Select(0, 255);
  ASSERT_TRUE(ans.ok());
  EXPECT_EQ(ans.value().records.size(), 256u);
  EXPECT_TRUE(
      verifier.VerifySelectionStatic(0, 255, ans.value()).ok());
}

TEST_F(ConcurrencyTest, LazySigCacheUnderInterleavedReadsAndUpdates) {
  auto server = MakeServer(2, 2, 128);
  server->EnableSigCache(SigCache::RefreshMode::kLazy, 4);
  std::vector<SignedRecordUpdate> updates;
  for (int i = 0; i < 60; ++i) {
    int64_t key = static_cast<int64_t>(rng_->Uniform(128));
    auto msg = da_->ModifyRecord(key, {key, 2000 + i});
    ASSERT_TRUE(msg.ok());
    updates.push_back(std::move(msg.value()));
  }
  std::atomic<size_t> next{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(300 + t);
      for (int i = 0; i < 60; ++i) {
        size_t u = next.fetch_add(1);
        if (u < updates.size() && rng.Uniform(2) == 0) {
          EXPECT_TRUE(server->ApplyUpdate(updates[u]).ok());
        } else {
          int64_t lo = static_cast<int64_t>(rng.Uniform(120));
          auto ans = server->Select(lo, lo + 7);
          EXPECT_TRUE(ans.ok());
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  // Quiesced correctness through the (partly invalidated) caches.
  ClientVerifier verifier(&da_->public_key(), &codec_, HashMode::kFast);
  auto ans = server->Select(0, 127);
  ASSERT_TRUE(ans.ok());
  EXPECT_TRUE(verifier.VerifySelectionStatic(0, 127, ans.value()).ok());
}

TEST_F(ConcurrencyTest, MultiClientDriverSmoke) {
  auto server = MakeServer(4, 2, 256);
  std::vector<SignedRecordUpdate> updates;
  for (int i = 0; i < 20; ++i) {
    int64_t key = static_cast<int64_t>(rng_->Uniform(256));
    auto msg = da_->ModifyRecord(key, {key, 3000 + i});
    ASSERT_TRUE(msg.ok());
    updates.push_back(std::move(msg.value()));
  }
  MultiClientOptions opts;
  opts.clients = 3;
  opts.ops_per_client = 30;
  opts.update_fraction = 0.2;
  opts.key_lo = 0;
  opts.key_hi = 255;
  opts.query_span = 8;
  MultiClientReport report = RunMultiClientLoad(server.get(),
                                               std::move(updates), opts);
  EXPECT_EQ(report.queries + report.updates, 90u);
  EXPECT_EQ(report.failures, 0u);
  EXPECT_GT(report.ops_per_second, 0.0);
  EXPECT_EQ(report.query_latency.count(), report.queries);
  EXPECT_EQ(report.update_latency.count(), report.updates);
  EXPECT_GE(report.query_latency.PercentileMicros(0.99),
            report.query_latency.PercentileMicros(0.50));
}

TEST(LatencyHistogramTest, PercentilesAndMerge) {
  LatencyHistogram h;
  for (uint64_t v : {1u, 2u, 4u, 8u, 100u, 1000u}) h.Record(v);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_GE(h.PercentileMicros(1.0), 1000u);
  EXPECT_LE(h.PercentileMicros(0.0), 2u);
  LatencyHistogram other;
  other.Record(50);
  h.Merge(other);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_EQ(h.MaxMicros(), 1000u);
}

}  // namespace
}  // namespace authdb
