// Whole-system integration tests: a data aggregator, a query server and a
// client run a realistic mixed workload (modifications, inserts, deletes,
// period closes, renewals) with every answer verified against a reference
// model — plus a parameterized sweep over adversarial server behaviours,
// each of which must be caught by exactly the defence the paper assigns it.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "core/data_aggregator.h"
#include "core/query_server.h"
#include "core/verifier.h"

namespace authdb {
namespace {

using HashMode = BasContext::HashMode;

class SystemFixture {
 public:
  SystemFixture(std::shared_ptr<const BasContext> ctx, uint64_t n)
      : clock_(1'000'000), rng_(31), ctx_(ctx) {
    DataAggregator::Options opt;
    opt.record_len = 128;
    opt.rho_micros = 1'000'000;
    opt.rho_prime_micros = 30'000'000;
    da_ = std::make_unique<DataAggregator>(ctx, &clock_, &rng_, opt);
    QueryServer::Options qopt;
    qopt.record_len = 128;
    qs_ = std::make_unique<QueryServer>(ctx, qopt);
    std::vector<Record> records;
    for (uint64_t k = 0; k < n; ++k) {
      Record r;
      r.attrs = {static_cast<int64_t>(k * 3), static_cast<int64_t>(k), 7};
      records.push_back(r);
      model_[k * 3] = static_cast<int64_t>(k);
    }
    auto stream = da_->BulkLoad(std::move(records));
    AUTHDB_CHECK(stream.ok());
    for (const auto& msg : stream.value()) {
      Status s = qs_->ApplyUpdate(msg);
      AUTHDB_CHECK(s.ok());
    }
  }

  void Apply(const SignedRecordUpdate& msg) {
    Status s = qs_->ApplyUpdate(msg);
    AUTHDB_CHECK(s.ok());
  }
  void ClosePeriod() {
    auto out = da_->PublishSummary();
    qs_->AddSummary(out.summary);
    for (const auto& msg : out.recertifications) Apply(msg);
  }

  ManualClock clock_;
  Rng rng_;
  std::shared_ptr<const BasContext> ctx_;
  std::unique_ptr<DataAggregator> da_;
  std::unique_ptr<QueryServer> qs_;
  std::map<int64_t, int64_t> model_;  // key -> attrs[1]
};

std::shared_ptr<const BasContext> TestCtx() {
  static auto* ctx = [] {
    Rng rng(0x17E6);
    return new std::shared_ptr<const BasContext>(
        BasContext::Generate(96, 64, &rng));
  }();
  return *ctx;
}

TEST(IntegrationTest, MixedWorkloadStaysVerifiable) {
  SystemFixture sys(TestCtx(), 120);
  static VarintGapCodec codec;
  ClientVerifier client(&sys.da_->public_key(), &codec, HashMode::kFast);
  Rng wrng(5);
  for (int step = 0; step < 120; ++step) {
    sys.clock_.AdvanceMicros(90'000);
    uint64_t action = wrng.Uniform(10);
    if (action < 5) {  // modify
      if (sys.model_.empty()) continue;
      auto it = sys.model_.begin();
      std::advance(it, wrng.Uniform(sys.model_.size()));
      int64_t v = static_cast<int64_t>(wrng.Uniform(100000));
      auto msg = sys.da_->ModifyRecord(it->first, {it->first, v, 7});
      ASSERT_TRUE(msg.ok());
      sys.Apply(msg.value());
      it->second = v;
    } else if (action < 7) {  // insert at a fresh key
      int64_t key = static_cast<int64_t>(wrng.Uniform(600));
      if (sys.model_.count(key)) continue;
      auto msg = sys.da_->InsertRecord({key, key, 7});
      ASSERT_TRUE(msg.ok());
      sys.Apply(msg.value());
      sys.model_[key] = key;
    } else if (action < 8) {  // delete
      if (sys.model_.size() < 10) continue;
      auto it = sys.model_.begin();
      std::advance(it, wrng.Uniform(sys.model_.size()));
      auto msg = sys.da_->DeleteRecord(it->first);
      ASSERT_TRUE(msg.ok());
      sys.Apply(msg.value());
      sys.model_.erase(it);
    } else if (action < 9) {  // close a period
      sys.ClosePeriod();
    } else {  // range query, verified and checked against the model
      int64_t lo = static_cast<int64_t>(wrng.Uniform(600));
      int64_t hi = lo + static_cast<int64_t>(wrng.Uniform(80));
      auto ans = sys.qs_->Select(lo, hi);
      ASSERT_TRUE(ans.ok());
      Status v = client.VerifySelection(lo, hi, ans.value(),
                                        sys.clock_.NowMicros());
      ASSERT_TRUE(v.ok()) << v.ToString() << " range " << lo << ".." << hi;
      auto mlo = sys.model_.lower_bound(lo);
      auto mhi = sys.model_.upper_bound(hi);
      ASSERT_EQ(ans.value().records.size(),
                static_cast<size_t>(std::distance(mlo, mhi)));
      size_t i = 0;
      for (auto it = mlo; it != mhi; ++it, ++i) {
        EXPECT_EQ(ans.value().records[i].key(), it->first);
        EXPECT_EQ(ans.value().records[i].attrs[1], it->second);
      }
    }
  }
  // Final sanity: a full scan verifies and matches the model exactly.
  auto all = sys.qs_->Select(0, 10'000);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value().records.size(), sys.model_.size());
  EXPECT_TRUE(client
                  .VerifySelection(0, 10'000, all.value(),
                                   sys.clock_.NowMicros())
                  .ok());
}

// --- Parameterized adversary sweep ----------------------------------------

enum class Attack {
  kDropRecord,
  kDropFirstRecord,
  kDropLastRecord,
  kModifyValue,
  kModifyTimestamp,
  kModifyRid,
  kInjectRecord,
  kDuplicateRecord,
  kReorderRecords,
  kShrinkLeftBoundary,
  kShrinkRightBoundary,
  kForeignAggregate,
  kEmptyClaim,
};

class AdversaryTest : public ::testing::TestWithParam<Attack> {};

TEST_P(AdversaryTest, EveryTamperIsDetected) {
  SystemFixture sys(TestCtx(), 100);
  static VarintGapCodec codec;
  ClientVerifier client(&sys.da_->public_key(), &codec, HashMode::kFast);
  const int64_t lo = 60, hi = 150;  // keys are multiples of 3
  auto genuine = sys.qs_->Select(lo, hi);
  ASSERT_TRUE(genuine.ok());
  ASSERT_TRUE(
      client.VerifySelection(lo, hi, genuine.value(), sys.clock_.NowMicros())
          .ok());
  SelectionAnswer ans = genuine.value();
  switch (GetParam()) {
    case Attack::kDropRecord:
      ans.records.erase(ans.records.begin() + ans.records.size() / 2);
      break;
    case Attack::kDropFirstRecord:
      ans.records.erase(ans.records.begin());
      break;
    case Attack::kDropLastRecord:
      ans.records.pop_back();
      break;
    case Attack::kModifyValue:
      ans.records[1].attrs[1] ^= 0x5555;
      break;
    case Attack::kModifyTimestamp:
      ans.records[1].ts += 1;
      break;
    case Attack::kModifyRid:
      ans.records[1].rid += 1;
      break;
    case Attack::kInjectRecord: {
      Record fake = ans.records[0];
      fake.attrs[0] = 61;  // not a multiple of 3: no such record
      ans.records.insert(ans.records.begin() + 1, fake);
      break;
    }
    case Attack::kDuplicateRecord:
      ans.records.insert(ans.records.begin() + 1, ans.records[1]);
      break;
    case Attack::kReorderRecords:
      std::swap(ans.records[0], ans.records[1]);
      break;
    case Attack::kShrinkLeftBoundary:
      ans.left_key = ans.records.front().key();
      ans.records.erase(ans.records.begin());
      break;
    case Attack::kShrinkRightBoundary:
      ans.right_key = ans.records.back().key();
      ans.records.pop_back();
      break;
    case Attack::kForeignAggregate: {
      // Substitute an aggregate from a *different* (genuine) answer.
      auto other = sys.qs_->Select(300, 330);
      ASSERT_TRUE(other.ok());
      ans.agg_sig = other.value().agg_sig;
      break;
    }
    case Attack::kEmptyClaim:
      ans.records.clear();
      ans.proof_record = genuine.value().records[0];
      break;
  }
  Status s = client.VerifySelection(lo, hi, ans, sys.clock_.NowMicros());
  EXPECT_FALSE(s.ok()) << "attack was not detected";
}

INSTANTIATE_TEST_SUITE_P(
    AllAttacks, AdversaryTest,
    ::testing::Values(Attack::kDropRecord, Attack::kDropFirstRecord,
                      Attack::kDropLastRecord, Attack::kModifyValue,
                      Attack::kModifyTimestamp, Attack::kModifyRid,
                      Attack::kInjectRecord, Attack::kDuplicateRecord,
                      Attack::kReorderRecords, Attack::kShrinkLeftBoundary,
                      Attack::kShrinkRightBoundary,
                      Attack::kForeignAggregate, Attack::kEmptyClaim));

}  // namespace
}  // namespace authdb
