// End-to-end tests of the paper's selection protocol: data aggregator signs
// and pushes, query server proves, client verifies authenticity /
// completeness / freshness — including a battery of adversarial-server
// scenarios.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/data_aggregator.h"
#include "core/query_server.h"
#include "core/verifier.h"

namespace authdb {
namespace {

using HashMode = BasContext::HashMode;

class SelectionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(0xE2E);
    ctx_ = new std::shared_ptr<const BasContext>(
        BasContext::Generate(96, 64, &rng));
  }

  void SetUp() override {
    clock_.SetMicros(1'000'000);
    rng_ = std::make_unique<Rng>(99);
    DataAggregator::Options opt;
    opt.record_len = 128;
    opt.rho_micros = 1'000'000;
    opt.rho_prime_micros = 60'000'000;
    da_ = std::make_unique<DataAggregator>(*ctx_, &clock_, rng_.get(), opt);
    QueryServer::Options qopt;
    qopt.record_len = 128;
    qs_ = std::make_unique<QueryServer>(*ctx_, qopt);
    verifier_ = std::make_unique<ClientVerifier>(&da_->public_key(), &codec_,
                                                 HashMode::kFast);
    // 100 records with even keys 0..198.
    std::vector<Record> records;
    for (int64_t k = 0; k < 100; ++k) {
      Record r;
      r.attrs = {k * 2, k * 100, k};
      records.push_back(r);
    }
    auto stream = da_->BulkLoad(std::move(records));
    ASSERT_TRUE(stream.ok());
    for (const auto& msg : stream.value())
      ASSERT_TRUE(qs_->ApplyUpdate(msg).ok());
  }

  /// DA-side update propagated to the QS.
  void Modify(int64_t key, int64_t value) {
    auto msg = da_->ModifyRecord(key, {key, value, 0});
    ASSERT_TRUE(msg.ok());
    ASSERT_TRUE(qs_->ApplyUpdate(msg.value()).ok());
  }
  void PublishPeriod() {
    auto out = da_->PublishSummary();
    qs_->AddSummary(out.summary);
    for (const auto& msg : out.recertifications)
      ASSERT_TRUE(qs_->ApplyUpdate(msg).ok());
  }

  uint64_t Now() { return clock_.NowMicros(); }

  static std::shared_ptr<const BasContext>* ctx_;
  ManualClock clock_;
  std::unique_ptr<Rng> rng_;
  VarintGapCodec codec_;
  std::unique_ptr<DataAggregator> da_;
  std::unique_ptr<QueryServer> qs_;
  std::unique_ptr<ClientVerifier> verifier_;
};
std::shared_ptr<const BasContext>* SelectionTest::ctx_ = nullptr;

TEST_F(SelectionTest, RangeAnswerVerifies) {
  auto ans = qs_->Select(50, 120);
  ASSERT_TRUE(ans.ok());
  EXPECT_EQ(ans.value().records.size(), 36u);  // keys 50..120 even
  EXPECT_TRUE(verifier_->VerifySelection(50, 120, ans.value(), Now()).ok());
}

TEST_F(SelectionTest, PointAnswerVerifies) {
  auto ans = qs_->Select(42, 42);
  ASSERT_TRUE(ans.ok());
  EXPECT_EQ(ans.value().records.size(), 1u);
  EXPECT_TRUE(verifier_->VerifySelection(42, 42, ans.value(), Now()).ok());
}

TEST_F(SelectionTest, EmptyRangeProvenByAdjacency) {
  auto ans = qs_->Select(43, 43);  // between keys 42 and 44
  ASSERT_TRUE(ans.ok());
  EXPECT_TRUE(ans.value().records.empty());
  ASSERT_TRUE(ans.value().proof_record.has_value());
  EXPECT_TRUE(verifier_->VerifySelection(43, 43, ans.value(), Now()).ok());
}

TEST_F(SelectionTest, RangeBeyondDomainEdges) {
  auto below = qs_->Select(-100, -50);
  ASSERT_TRUE(below.ok());
  EXPECT_TRUE(verifier_->VerifySelection(-100, -50, below.value(), Now()).ok());
  auto above = qs_->Select(500, 600);
  ASSERT_TRUE(above.ok());
  EXPECT_TRUE(verifier_->VerifySelection(500, 600, above.value(), Now()).ok());
  auto spanning = qs_->Select(-100, 600);
  ASSERT_TRUE(spanning.ok());
  EXPECT_EQ(spanning.value().records.size(), 100u);
  EXPECT_TRUE(
      verifier_->VerifySelection(-100, 600, spanning.value(), Now()).ok());
}

TEST_F(SelectionTest, VoSizeIndependentOfSelectivity) {
  SizeModel sm;
  auto small = qs_->Select(0, 10);
  auto large = qs_->Select(0, 190);
  ASSERT_TRUE(small.ok() && large.ok());
  EXPECT_EQ(small.value().vo_size(sm), large.value().vo_size(sm));
  EXPECT_EQ(small.value().vo_size(sm),
            sm.signature_bytes + 2 * sm.key_bytes);  // 28 bytes, cf. Table 4
}

// --- Adversarial servers -------------------------------------------------

TEST_F(SelectionTest, DroppedRecordDetected) {
  auto ans = qs_->Select(50, 120);
  ASSERT_TRUE(ans.ok());
  auto tampered = ans.value();
  tampered.records.erase(tampered.records.begin() + 5);
  EXPECT_FALSE(verifier_->VerifySelection(50, 120, tampered, Now()).ok());
}

TEST_F(SelectionTest, ModifiedValueDetected) {
  auto ans = qs_->Select(50, 120);
  ASSERT_TRUE(ans.ok());
  auto tampered = ans.value();
  tampered.records[3].attrs[1] = 987654;
  EXPECT_FALSE(verifier_->VerifySelection(50, 120, tampered, Now()).ok());
}

TEST_F(SelectionTest, InjectedRecordDetected) {
  auto ans = qs_->Select(50, 120);
  ASSERT_TRUE(ans.ok());
  auto tampered = ans.value();
  Record fake;
  fake.rid = 99999;
  fake.ts = Now();
  fake.attrs = {51, 1, 1};  // odd key: not a real record
  tampered.records.insert(tampered.records.begin() + 1, fake);
  EXPECT_FALSE(verifier_->VerifySelection(50, 120, tampered, Now()).ok());
}

TEST_F(SelectionTest, TruncatedTailWithForgedBoundaryDetected) {
  auto ans = qs_->Select(50, 120);
  ASSERT_TRUE(ans.ok());
  auto tampered = ans.value();
  tampered.right_key = tampered.records.back().key();
  tampered.records.pop_back();
  EXPECT_FALSE(verifier_->VerifySelection(50, 120, tampered, Now()).ok());
}

TEST_F(SelectionTest, FakeEmptyAnswerDetected) {
  // The range does contain records; the server claims it is empty using a
  // genuine record as "proof".
  auto real = qs_->Select(40, 40);
  ASSERT_TRUE(real.ok());
  SelectionAnswer fake;
  fake.proof_record = real.value().records[0];
  fake.left_key = 38;
  fake.right_key = 42;
  fake.agg_sig = real.value().agg_sig;
  EXPECT_FALSE(verifier_->VerifySelection(50, 60, fake, Now()).ok());
}

TEST_F(SelectionTest, StaleVersionDetectedViaSummaries) {
  // Capture the answer before an update.
  auto stale = qs_->Select(100, 100);
  ASSERT_TRUE(stale.ok());
  EXPECT_TRUE(verifier_->VerifySelection(100, 100, stale.value(), Now()).ok());
  // The DA updates record 100 and closes the period. The bulk-load mark
  // plus this modification make the record multi-updated in period 0, so
  // the DA re-certifies it in period 1 (Section 3.1); the period-1 summary
  // then indicts the stale version with the paper's 2*rho bound.
  clock_.AdvanceSeconds(0.5);
  Modify(100, 31337);
  clock_.AdvanceSeconds(0.6);
  PublishPeriod();
  clock_.AdvanceSeconds(1.0);
  PublishPeriod();
  // A fresh client that received the new summaries must reject the stale
  // answer replayed by a lazy/compromised server.
  ClientVerifier fresh_client(&da_->public_key(), &codec_, HashMode::kFast);
  auto current = qs_->Select(0, 0);  // carries the summaries
  ASSERT_TRUE(current.ok());
  ASSERT_TRUE(
      fresh_client.VerifySelection(0, 0, current.value(), Now()).ok());
  Status s = fresh_client.VerifySelection(100, 100, stale.value(), Now());
  EXPECT_TRUE(s.IsVerificationFailed()) << s.ToString();
  // The genuinely fresh answer passes.
  auto fresh = qs_->Select(100, 100);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh.value().records[0].attrs[1], 31337);
  EXPECT_TRUE(
      fresh_client.VerifySelection(100, 100, fresh.value(), Now()).ok());
}

TEST_F(SelectionTest, InsertThenQueryVerifies) {
  auto msg = da_->InsertRecord({43, 7, 7});
  ASSERT_TRUE(msg.ok());
  ASSERT_TRUE(qs_->ApplyUpdate(msg.value()).ok());
  // Neighbors 42 and 44 were re-chained; range answers must still verify.
  auto ans = qs_->Select(40, 48);
  ASSERT_TRUE(ans.ok());
  EXPECT_EQ(ans.value().records.size(), 6u);  // 40 42 43 44 46 48
  EXPECT_TRUE(verifier_->VerifySelection(40, 48, ans.value(), Now()).ok());
}

TEST_F(SelectionTest, InsertHiddenByServerDetected) {
  // Close the bulk-load period first.
  clock_.AdvanceSeconds(1.1);
  PublishPeriod();
  // DA inserts key 43, but the malicious QS suppresses the message and
  // keeps serving the old adjacency 42-44. The next summary marks the
  // re-chained neighbors, indicting their old signatures.
  clock_.AdvanceSeconds(0.4);
  auto msg = da_->InsertRecord({43, 7, 7});
  ASSERT_TRUE(msg.ok());  // NOT applied at the QS
  clock_.AdvanceSeconds(0.7);
  auto period = da_->PublishSummary();
  qs_->AddSummary(period.summary);
  auto ans = qs_->Select(43, 43);  // server claims: empty range
  ASSERT_TRUE(ans.ok());
  Status s = verifier_->VerifySelection(43, 43, ans.value(), Now());
  EXPECT_TRUE(s.IsVerificationFailed()) << s.ToString();
}

TEST_F(SelectionTest, DeleteThenQueryVerifies) {
  auto msg = da_->DeleteRecord(42);
  ASSERT_TRUE(msg.ok());
  ASSERT_TRUE(qs_->ApplyUpdate(msg.value()).ok());
  auto ans = qs_->Select(40, 46);
  ASSERT_TRUE(ans.ok());
  EXPECT_EQ(ans.value().records.size(), 3u);  // 40 44 46
  EXPECT_TRUE(verifier_->VerifySelection(40, 46, ans.value(), Now()).ok());
  auto gone = qs_->Select(42, 42);
  ASSERT_TRUE(gone.ok());
  EXPECT_TRUE(gone.value().records.empty());
  EXPECT_TRUE(verifier_->VerifySelection(42, 42, gone.value(), Now()).ok());
}

TEST_F(SelectionTest, MultiUpdateInPeriodRecertified) {
  // Two versions within one period: the summary cannot distinguish them,
  // so the DA re-certifies in the next period (Section 3.1).
  clock_.AdvanceSeconds(0.1);
  Modify(100, 111);
  clock_.AdvanceSeconds(0.1);
  Modify(100, 222);
  clock_.AdvanceSeconds(0.9);
  PublishPeriod();  // emits the re-certification for record 100
  clock_.AdvanceSeconds(1.0);
  PublishPeriod();
  auto ans = qs_->Select(100, 100);
  ASSERT_TRUE(ans.ok());
  EXPECT_EQ(ans.value().records[0].attrs[1], 222);
  EXPECT_TRUE(verifier_->VerifySelection(100, 100, ans.value(), Now()).ok());
}

TEST_F(SelectionTest, BackgroundRenewalRefreshesOldSignatures) {
  clock_.AdvanceSeconds(120);  // beyond rho' = 60 s
  auto renewals = da_->BackgroundRenewal(10);
  EXPECT_EQ(renewals.size(), 10u);
  for (const auto& msg : renewals) ASSERT_TRUE(qs_->ApplyUpdate(msg).ok());
  auto ans = qs_->Select(0, 20);
  ASSERT_TRUE(ans.ok());
  EXPECT_TRUE(verifier_->VerifySelection(0, 20, ans.value(), Now()).ok());
  // Renewed records now carry recent timestamps.
  bool some_renewed = false;
  for (const auto& r : ans.value().records)
    some_renewed |= r.ts >= Now() - 1'000'000;
  EXPECT_TRUE(some_renewed);
}

TEST_F(SelectionTest, SecureHashModeEndToEnd) {
  // Run one full protocol round in the cryptographically secure mode.
  Rng rng(0x5EC);
  DataAggregator::Options opt;
  opt.record_len = 128;
  opt.hash_mode = HashMode::kSecure;
  DataAggregator da(*ctx_, &clock_, &rng, opt);
  QueryServer::Options qopt;
  qopt.record_len = 128;
  QueryServer qs(*ctx_, qopt);
  std::vector<Record> records;
  for (int64_t k = 0; k < 10; ++k) {
    Record r;
    r.attrs = {k, k * 7};
    records.push_back(r);
  }
  auto stream = da.BulkLoad(std::move(records));
  ASSERT_TRUE(stream.ok());
  for (const auto& msg : stream.value()) ASSERT_TRUE(qs.ApplyUpdate(msg).ok());
  ClientVerifier client(&da.public_key(), &codec_, HashMode::kSecure);
  auto ans = qs.Select(2, 7);
  ASSERT_TRUE(ans.ok());
  EXPECT_TRUE(client.VerifySelection(2, 7, ans.value(), Now()).ok());
  auto tampered = ans.value();
  tampered.records[0].attrs[1] = 12345;
  EXPECT_FALSE(client.VerifySelection(2, 7, tampered, Now()).ok());
}

}  // namespace
}  // namespace authdb
