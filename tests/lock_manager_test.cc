#include "txn/lock_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace authdb {
namespace {

TEST(LockManagerTest, SharedLocksCoexist) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, kRootResource, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(2, kRootResource, LockMode::kShared).ok());
  lm.ReleaseAll(1);
  lm.ReleaseAll(2);
}

TEST(LockManagerTest, ExclusiveExcludesShared) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, kRootResource, LockMode::kExclusive).ok());
  // A second transaction times out quickly while txn 1 holds X.
  Status s = lm.Acquire(2, kRootResource, LockMode::kShared, 50);
  EXPECT_TRUE(s.IsAborted());
  lm.ReleaseAll(1);
  EXPECT_TRUE(lm.Acquire(2, kRootResource, LockMode::kShared).ok());
  lm.ReleaseAll(2);
}

TEST(LockManagerTest, ReacquireIsIdempotent) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, 5, LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Acquire(1, 5, LockMode::kExclusive).ok());
  lm.ReleaseAll(1);
  EXPECT_TRUE(lm.Acquire(2, 5, LockMode::kExclusive, 50).ok());
  lm.ReleaseAll(2);
}

TEST(LockManagerTest, ExclusiveHandoffAfterRelease) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, 7, LockMode::kExclusive).ok());
  std::atomic<bool> granted{false};
  std::thread waiter([&] {
    ASSERT_TRUE(lm.Acquire(2, 7, LockMode::kExclusive, 5000).ok());
    granted = true;
    lm.ReleaseAll(2);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(granted.load());
  lm.Release(1, 7);
  waiter.join();
  EXPECT_TRUE(granted.load());
}

TEST(LockManagerTest, ConcurrentCountersAreSerializedByExclusiveLocks) {
  LockManager lm;
  int counter = 0;  // unsynchronized: correctness depends on the lock
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&lm, &counter, t] {
      for (int i = 0; i < 500; ++i) {
        TxnId txn = t * 1000 + i + 1;
        ASSERT_TRUE(lm.Acquire(txn, 9, LockMode::kExclusive, 30000).ok());
        ++counter;
        lm.ReleaseAll(txn);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, 2000);
}

TEST(LockManagerTest, RootLockContentionMirrorsEmbBehaviour) {
  // The MHT pattern: updates X-lock the root, queries S-lock it. Many
  // concurrent queries proceed together; one update serializes them.
  LockManager lm;
  std::atomic<int> concurrent_readers{0};
  std::atomic<int> max_concurrent{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      TxnId txn = 100 + t;
      ASSERT_TRUE(lm.Acquire(txn, kRootResource, LockMode::kShared).ok());
      int now = ++concurrent_readers;
      int prev = max_concurrent.load();
      while (now > prev && !max_concurrent.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      --concurrent_readers;
      lm.ReleaseAll(txn);
    });
  }
  for (auto& th : readers) th.join();
  EXPECT_GE(max_concurrent.load(), 2);  // shared locks overlapped
  EXPECT_EQ(lm.contention_count(), 0u);
}

TEST(TransactionTest, TwoPhaseLockingReleasesTogether) {
  LockManager lm;
  {
    Transaction txn(&lm, 1);
    ASSERT_TRUE(txn.LockExclusive(RecordResource(10)).ok());
    ASSERT_TRUE(txn.LockExclusive(RecordResource(20)).ok());
    // Both held until Finish: another txn cannot take either.
    EXPECT_TRUE(lm.Acquire(2, RecordResource(10), LockMode::kShared, 50)
                    .IsAborted());
    EXPECT_TRUE(lm.Acquire(2, RecordResource(20), LockMode::kShared, 50)
                    .IsAborted());
  }  // destructor releases
  EXPECT_TRUE(lm.Acquire(2, RecordResource(10), LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(2, RecordResource(20), LockMode::kShared).ok());
  lm.ReleaseAll(2);
}

TEST(TransactionTest, OrderedAcquisitionEnforced) {
  LockManager lm;
  Transaction txn(&lm, 1);
  ASSERT_TRUE(txn.LockShared(RecordResource(20)).ok());
  Status s = txn.LockShared(RecordResource(10));
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace authdb
