#include "crypto/bitmap.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "common/random.h"

namespace authdb {
namespace {

class BitmapCodecTest : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<BitmapCodec> MakeCodec() const {
    if (std::string(GetParam()) == "varint-gap")
      return std::make_unique<VarintGapCodec>();
    return std::make_unique<WahCodec>();
  }
};

TEST(BitmapTest, SetGetClear) {
  Bitmap bm(1000);
  EXPECT_EQ(bm.CountOnes(), 0u);
  bm.Set(0);
  bm.Set(63);
  bm.Set(64);
  bm.Set(999);
  EXPECT_TRUE(bm.Get(0));
  EXPECT_TRUE(bm.Get(63));
  EXPECT_TRUE(bm.Get(64));
  EXPECT_TRUE(bm.Get(999));
  EXPECT_FALSE(bm.Get(1));
  EXPECT_EQ(bm.CountOnes(), 4u);
  bm.Clear(63);
  EXPECT_FALSE(bm.Get(63));
  EXPECT_EQ(bm.CountOnes(), 3u);
}

TEST(BitmapTest, OnesPositionsSorted) {
  Bitmap bm(500);
  bm.Set(400);
  bm.Set(3);
  bm.Set(64);
  auto ones = bm.OnesPositions();
  ASSERT_EQ(ones.size(), 3u);
  EXPECT_EQ(ones[0], 3u);
  EXPECT_EQ(ones[1], 64u);
  EXPECT_EQ(ones[2], 400u);
}

TEST(BitmapTest, OutOfRangeGetIsFalse) {
  Bitmap bm(10);
  EXPECT_FALSE(bm.Get(100));
}

TEST_P(BitmapCodecTest, RoundtripRandom) {
  auto codec = MakeCodec();
  Rng rng(101);
  for (int trial = 0; trial < 30; ++trial) {
    size_t nbits = 1 + rng.Uniform(10000);
    Bitmap bm(nbits);
    size_t nset = rng.Uniform(nbits / 2 + 1);
    for (size_t i = 0; i < nset; ++i) bm.Set(rng.Uniform(nbits));
    auto encoded = codec->Encode(bm);
    Bitmap decoded = codec->Decode(Slice(encoded));
    EXPECT_EQ(decoded.size(), bm.size());
    EXPECT_TRUE(decoded == bm) << codec->name() << " trial " << trial;
  }
}

TEST_P(BitmapCodecTest, RoundtripEmpty) {
  auto codec = MakeCodec();
  Bitmap bm(100000);
  Bitmap decoded = codec->Decode(Slice(codec->Encode(bm)));
  EXPECT_TRUE(decoded == bm);
  // An empty sparse bitmap should compress to nearly nothing.
  EXPECT_LT(codec->Encode(bm).size(), 32u);
}

TEST_P(BitmapCodecTest, RoundtripDense) {
  auto codec = MakeCodec();
  Bitmap bm(5000);
  for (size_t i = 0; i < 5000; ++i) bm.Set(i);
  Bitmap decoded = codec->Decode(Slice(codec->Encode(bm)));
  EXPECT_TRUE(decoded == bm);
}

TEST_P(BitmapCodecTest, SparseCompressionRatio) {
  // Paper Section 3.1: compressed size is ~2-3 bytes per 1-bit for sparse
  // update bitmaps. Check we are within that regime (allow up to 4x).
  auto codec = MakeCodec();
  Rng rng(202);
  const size_t kBits = 1000000;
  const size_t kOnes = 1000;  // 0.1% density
  Bitmap bm(kBits);
  for (size_t i = 0; i < kOnes; ++i) bm.Set(rng.Uniform(kBits));
  size_t ones = bm.CountOnes();
  size_t bytes = codec->Encode(bm).size();
  // Gap coding lands in the paper's 2-3 bytes/one regime; WAH pays one
  // 4-byte fill + one 4-byte literal per isolated bit.
  size_t per_one = std::string(codec->name()) == "wah" ? 8 : 4;
  EXPECT_LT(bytes, ones * per_one + 64) << codec->name();
  EXPECT_LT(bytes, kBits / 8 / 10) << "should beat raw bitmap by >=10x";
}

TEST_P(BitmapCodecTest, SingleBitAtEnd) {
  auto codec = MakeCodec();
  Bitmap bm(99991);
  bm.Set(99990);
  Bitmap decoded = codec->Decode(Slice(codec->Encode(bm)));
  EXPECT_TRUE(decoded == bm);
}

INSTANTIATE_TEST_SUITE_P(Codecs, BitmapCodecTest,
                         ::testing::Values("varint-gap", "wah"));

TEST(WahCodecTest, LongRunsCompressWell) {
  WahCodec wah;
  Bitmap bm(31 * 10000);
  // one literal group in the middle of zeros
  bm.Set(31 * 5000 + 7);
  auto enc = wah.Encode(bm);
  // 2 fill words + 1 literal + header — tiny.
  EXPECT_LT(enc.size(), 32u);
  EXPECT_TRUE(wah.Decode(Slice(enc)) == bm);
}

}  // namespace
}  // namespace authdb
