#include "crypto/ec.h"

#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "crypto/bas.h"

namespace authdb {
namespace {

// Small deterministic parameter set (96-bit field) keeps the suite fast.
class EcTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(1234);
    ctx_ = new std::shared_ptr<const BasContext>(
        BasContext::Generate(/*p_bits=*/96, /*r_bits=*/64, &rng));
  }
  const CurveGroup& curve() { return (*ctx_)->curve(); }
  const ECPoint& G() { return (*ctx_)->generator(); }
  static std::shared_ptr<const BasContext>* ctx_;
};
std::shared_ptr<const BasContext>* EcTest::ctx_ = nullptr;

TEST_F(EcTest, GeneratorIsOnCurveWithOrderR) {
  EXPECT_FALSE(G().infinity);
  EXPECT_TRUE(curve().IsOnCurve(G()));
  EXPECT_TRUE(curve().ScalarMult(G(), curve().order()).infinity);
}

TEST_F(EcTest, IdentityLaws) {
  ECPoint inf;
  EXPECT_TRUE(curve().Equal(curve().Add(G(), inf), G()));
  EXPECT_TRUE(curve().Equal(curve().Add(inf, G()), G()));
  EXPECT_TRUE(curve().Add(inf, inf).infinity);
  EXPECT_TRUE(curve().Add(G(), curve().Negate(G())).infinity);
}

TEST_F(EcTest, AdditionIsCommutative) {
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    ECPoint a = curve().ScalarMult(G(), BigInt(1 + rng.Uniform(1000)));
    ECPoint b = curve().ScalarMult(G(), BigInt(1 + rng.Uniform(1000)));
    EXPECT_TRUE(curve().Equal(curve().Add(a, b), curve().Add(b, a)));
  }
}

TEST_F(EcTest, AdditionIsAssociative) {
  Rng rng(6);
  for (int i = 0; i < 20; ++i) {
    ECPoint a = curve().ScalarMult(G(), BigInt(1 + rng.Uniform(1000)));
    ECPoint b = curve().ScalarMult(G(), BigInt(1 + rng.Uniform(1000)));
    ECPoint c = curve().ScalarMult(G(), BigInt(1 + rng.Uniform(1000)));
    ECPoint lhs = curve().Add(curve().Add(a, b), c);
    ECPoint rhs = curve().Add(a, curve().Add(b, c));
    EXPECT_TRUE(curve().Equal(lhs, rhs));
  }
}

TEST_F(EcTest, DoubleMatchesAdd) {
  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    ECPoint a = curve().ScalarMult(G(), BigInt(1 + rng.Uniform(100000)));
    EXPECT_TRUE(curve().Equal(curve().Double(a), curve().Add(a, a)));
  }
}

TEST_F(EcTest, ScalarMultDistributesOverScalarAddition) {
  Rng rng(8);
  for (int i = 0; i < 10; ++i) {
    uint64_t a = 1 + rng.Uniform(1u << 20), b = 1 + rng.Uniform(1u << 20);
    ECPoint lhs = curve().ScalarMult(G(), BigInt(a + b));
    ECPoint rhs = curve().Add(curve().ScalarMult(G(), BigInt(a)),
                              curve().ScalarMult(G(), BigInt(b)));
    EXPECT_TRUE(curve().Equal(lhs, rhs));
  }
}

TEST_F(EcTest, ScalarMultComposes) {
  Rng rng(9);
  for (int i = 0; i < 10; ++i) {
    uint64_t a = 1 + rng.Uniform(1u << 16), b = 1 + rng.Uniform(1u << 16);
    ECPoint lhs = curve().ScalarMult(curve().ScalarMult(G(), BigInt(a)),
                                     BigInt(b));
    ECPoint rhs = curve().ScalarMult(G(), BigInt(a * b));
    EXPECT_TRUE(curve().Equal(lhs, rhs));
  }
}

TEST_F(EcTest, ScalarMultByOrderMinusOneIsNegation) {
  BigInt rm1 = BigInt::Sub(curve().order(), BigInt(1));
  ECPoint p = curve().ScalarMult(G(), BigInt(12345));
  ECPoint lhs = curve().ScalarMult(p, rm1);
  EXPECT_TRUE(curve().Equal(lhs, curve().Negate(p)));
}

TEST_F(EcTest, SumMatchesIteratedAdd) {
  Rng rng(10);
  std::vector<ECPoint> pts;
  ECPoint expect;  // infinity
  for (int i = 0; i < 50; ++i) {
    ECPoint p = curve().ScalarMult(G(), BigInt(1 + rng.Uniform(1u << 18)));
    pts.push_back(p);
    expect = curve().Add(expect, p);
  }
  EXPECT_TRUE(curve().Equal(curve().Sum(pts), expect));
}

TEST_F(EcTest, SumSkipsInfinity) {
  ECPoint p = curve().ScalarMult(G(), BigInt(77));
  std::vector<ECPoint> pts = {ECPoint{}, p, ECPoint{}};
  EXPECT_TRUE(curve().Equal(curve().Sum(pts), p));
  EXPECT_TRUE(curve().Sum({}).infinity);
}

TEST_F(EcTest, SerializeRoundtrip) {
  Rng rng(11);
  for (int i = 0; i < 20; ++i) {
    ECPoint p = curve().ScalarMult(G(), BigInt(1 + rng.Uniform(1u << 30)));
    auto bytes = curve().Serialize(p);
    EXPECT_EQ(bytes.size(), 2u * curve().field().element_bytes());
    EXPECT_TRUE(curve().Equal(curve().Deserialize(bytes), p));
  }
  // Infinity roundtrip.
  auto inf_bytes = curve().Serialize(ECPoint{});
  EXPECT_TRUE(curve().Deserialize(inf_bytes).infinity);
}

TEST_F(EcTest, IsOnCurveRejectsForgedPoint) {
  ECPoint p = curve().ScalarMult(G(), BigInt(99));
  p.x = curve().field().Add(p.x, curve().field().One());
  EXPECT_FALSE(curve().IsOnCurve(p));
}

TEST_F(EcTest, NegateIsInvolution) {
  ECPoint p = curve().ScalarMult(G(), BigInt(31337));
  EXPECT_TRUE(curve().Equal(curve().Negate(curve().Negate(p)), p));
}

TEST(PrimeFieldTest, BasicArithmetic) {
  Rng rng(12);
  BigInt p = BigInt::GeneratePrime(96, &rng);
  while (!p.Bit(0) || BigInt::Mod(p, BigInt(4)).ToU64() != 3)
    p = BigInt::GeneratePrime(96, &rng);
  PrimeField f(p);
  for (int i = 0; i < 30; ++i) {
    BigInt a = f.FromPlain(BigInt::RandomBelow(p, &rng));
    BigInt b = f.FromPlain(BigInt::RandomBelow(p, &rng));
    // a + b - b == a
    EXPECT_TRUE(f.Equal(f.Sub(f.Add(a, b), b), a));
    // a * inv(a) == 1
    if (!a.IsZero()) {
      EXPECT_TRUE(f.Equal(f.Mul(a, f.Inv(a)), f.One()));
    }
    // sqrt(a^2) == +-a
    BigInt s = f.Sqrt(f.Sqr(a));
    EXPECT_TRUE(f.Equal(s, a) || f.Equal(s, f.Neg(a)));
    // Euler criterion consistency
    EXPECT_TRUE(f.IsSquare(f.Sqr(a)));
  }
}

}  // namespace
}  // namespace authdb
