// Runtime coverage for the annotated concurrency wrappers
// (common/thread_annotations.h): the capability attributes are
// compile-time only, so these tests pin the runtime semantics the rest of
// the tree assumes — mutual exclusion, RAII release, condition-variable
// wakeup, and deadline expiry. The compile-time half of the contract is
// exercised by tests/tsa_demo.cc (a negative-compile file CI builds under
// -Wthread-safety and expects to FAIL).

#include "common/thread_annotations.h"

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace authdb {
namespace {

TEST(MutexTest, ExcludesConcurrentIncrements) {
  Mutex mu;
  int64_t counter = 0;  // guarded by mu (locals can't annotate)
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, int64_t{kThreads} * kIters);
}

TEST(MutexTest, TryLockReflectsOwnership) {
  Mutex mu;
  ASSERT_TRUE(mu.TryLock());
  // Held here: a second owner must be refused (probe from another thread —
  // self-try_lock on an owned std::mutex is undefined).
  bool contended_acquire = true;
  std::thread probe([&] { contended_acquire = mu.TryLock(); });
  probe.join();
  EXPECT_FALSE(contended_acquire);
  mu.Unlock();
  std::thread reprobe([&] {
    if (mu.TryLock()) {
      contended_acquire = true;
      mu.Unlock();
    }
  });
  reprobe.join();
  EXPECT_TRUE(contended_acquire);
}

TEST(MutexLockTest, ReleasesOnScopeExit) {
  Mutex mu;
  { MutexLock lock(mu); }
  bool acquired = false;
  std::thread probe([&] {
    if (mu.TryLock()) {
      acquired = true;
      mu.Unlock();
    }
  });
  probe.join();
  EXPECT_TRUE(acquired);
}

TEST(CondVarTest, WaitWakesOnPredicate) {
  Mutex mu;
  CondVar cv;
  bool ready = false;  // guarded by mu
  int observed = 0;

  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
    observed = 1;
  });
  // Let the waiter park, then flip the predicate under the lock.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  {
    MutexLock lock(mu);
    ready = true;
    cv.NotifyOne();
  }
  waiter.join();
  EXPECT_EQ(observed, 1);
}

TEST(CondVarTest, WaitUntilTimesOut) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  // Nobody notifies: the deadline must fire and the lock must still be
  // held afterwards (the next guarded access would be a TSA error
  // otherwise — and a runtime double-lock if ownership leaked).
  std::cv_status st = cv.WaitUntil(
      mu, std::chrono::steady_clock::now() + std::chrono::milliseconds(5));
  EXPECT_EQ(st, std::cv_status::timeout);
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;  // guarded by mu
  int woke = 0;     // guarded by mu
  constexpr int kWaiters = 4;
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      MutexLock lock(mu);
      while (!go) cv.Wait(mu);
      ++woke;
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  {
    MutexLock lock(mu);
    go = true;
    cv.NotifyAll();
  }
  for (std::thread& t : waiters) t.join();
  MutexLock lock(mu);
  EXPECT_EQ(woke, kWaiters);
}

}  // namespace
}  // namespace authdb
