// ServerMetrics contract tests: the dotted names Flatten() emits are a
// STABLE telemetry surface — bench JSON keys, the README metrics table
// (cross-checked by scripts/lint_invariants.py), and downstream dashboards
// all hang off them. This suite pins the full name set, so renaming or
// dropping a counter fails here first, as an explicit API break.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "server/metrics.h"

namespace authdb {
namespace {

// The frozen name set (scalar counters; per-shard names are prefix + shard
// index and are pinned separately below). Additions append; renames and
// removals are breaking.
const char* const kStableNames[] = {
    "exec.batches",
    "exec.plans",
    "exec.invalid_plans",
    "exec.shards_queried",
    "exec.batch.shard_visits",
    "exec.batch.finalizes",
    "exec.agg.point_adds",
    "exec.agg.leaf_fetches",
    "exec.agg.cache_hits",
    "exec.agg.refreshes",
    "exec.agg.span_hits",
    "exec.crypto.digests_hashed",
    "exec.bloom.probes",
    "exec.bloom.block_hits",
    "exec.bloom.fp_fallbacks",
    "exec.bloom.delta_merges",
    "exec.bloom.full_rebuilds",
    "exec.cache.retunes",
    "exec.last_epoch",
    "admission.enabled",
    "admission.admitted_total",
    "admission.shed_total",
    "admission.select.admitted",
    "admission.select.shed",
    "admission.project.admitted",
    "admission.project.shed",
    "admission.join.admitted",
    "admission.join.shed",
    "admission.priority_grants",
    "admission.bulk_grants",
    "admission.starvation_grants",
    "admission.queue_wait_us",
    "admission.queue_depth_max",
    "epoch.current",
    "epoch.pinned",
    "epoch.published_total",
    "epoch.publish_backpressure_us",
    "ingest.updates_pushed",
    "ingest.pieces_applied",
    "ingest.summaries_published",
    "ingest.apply_failures",
    "ingest.queue_depth_max",
    "ingest.push_block_us",
    "ingest.publish_wait_us",
};

const char* const kPerShardPrefixes[] = {
    "exec.batch.shard_busy_us.",
    "exec.batch.select_us.",
    "exec.batch.project_us.",
    "exec.batch.join_us.",
};

TEST(ServerMetricsTest, FlattenEmitsExactlyTheStableNames) {
  ServerMetrics m;
  m.exec.shard_busy.resize(3);
  std::set<std::string> emitted;
  for (const auto& [name, value] : m.Flatten()) {
    EXPECT_TRUE(emitted.insert(name).second) << "duplicate name " << name;
  }
  std::set<std::string> expected;
  for (const char* name : kStableNames) expected.insert(name);
  for (const char* prefix : kPerShardPrefixes)
    for (int s = 0; s < 3; ++s) expected.insert(prefix + std::to_string(s));
  EXPECT_EQ(emitted, expected);
}

TEST(ServerMetricsTest, ValueLooksUpByExactName) {
  ServerMetrics m;
  m.exec.batches = 7;
  m.admission.enabled = true;
  m.admission.shed_total = 13;
  m.ingest.publish_wait_us = 450;
  EXPECT_EQ(m.Value("exec.batches"), 7.0);
  EXPECT_EQ(m.Value("admission.enabled"), 1.0);
  EXPECT_EQ(m.Value("admission.shed_total"), 13.0);
  EXPECT_EQ(m.Value("ingest.publish_wait_us"), 450.0);
  EXPECT_EQ(m.Value("no.such.counter"), 0.0);
}

TEST(ServerMetricsTest, DeltaSubtractsCountersButKeepsPointInTimeValues) {
  ServerMetrics before;
  before.exec.batches = 10;
  before.exec.plans = 40;
  before.exec.last_epoch = 3;
  before.epoch.current = 3;
  before.epoch.pinned = 1;
  before.admission.shed_total = 5;
  before.ingest.updates_pushed = 100;
  before.ingest.queue_depth_max = 4;
  before.exec.shard_busy.resize(2);
  before.exec.shard_busy[1].visit_us = 50;

  ServerMetrics after = before;
  after.exec.batches = 25;
  after.exec.plans = 90;
  after.exec.last_epoch = 7;
  after.epoch.current = 7;
  after.epoch.pinned = 2;
  after.admission.shed_total = 9;
  after.ingest.updates_pushed = 260;
  after.ingest.queue_depth_max = 6;
  after.exec.shard_busy[1].visit_us = 80;

  ServerMetrics d = after.Delta(before);
  // Monotonic counters subtract...
  EXPECT_EQ(d.exec.batches, 15u);
  EXPECT_EQ(d.exec.plans, 50u);
  EXPECT_EQ(d.admission.shed_total, 4u);
  EXPECT_EQ(d.ingest.updates_pushed, 160u);
  EXPECT_EQ(d.exec.shard_busy[1].visit_us, 30u);
  // ...point-in-time values and high-water marks keep the later snapshot.
  EXPECT_EQ(d.exec.last_epoch, 7u);
  EXPECT_EQ(d.epoch.current, 7u);
  EXPECT_EQ(d.epoch.pinned, 2u);
  EXPECT_EQ(d.ingest.queue_depth_max, 6u);
}

TEST(MetricsCoreTest, FoldAndSnapshotAccumulate) {
  MetricsCore core(2);
  BatchExecStats batch;
  batch.epoch = 4;
  batch.plans = 3;
  batch.shards_queried = 5;
  batch.shard_visits = 2;
  batch.batch_finalizes = 1;
  batch.shard_busy.resize(2);
  batch.shard_busy[0].visit_us = 10;
  batch.shard_busy[0].select_us = 6;
  core.FoldBatch(batch);
  core.FoldBatch(batch);
  core.RecordPublish(/*backpressure_us=*/120);

  ServerMetrics m;
  core.Snapshot(&m);
  EXPECT_EQ(m.exec.batches, 2u);
  EXPECT_EQ(m.exec.plans, 6u);
  EXPECT_EQ(m.exec.shards_queried, 10u);
  EXPECT_EQ(m.exec.shard_visits, 4u);
  EXPECT_EQ(m.exec.last_epoch, 4u);
  ASSERT_EQ(m.exec.shard_busy.size(), 2u);
  EXPECT_EQ(m.exec.shard_busy[0].visit_us, 20u);
  EXPECT_EQ(m.exec.shard_busy[0].select_us, 12u);
  EXPECT_EQ(m.exec.shard_busy[1].visit_us, 0u);
  EXPECT_EQ(m.epoch.published_total, 1u);
  EXPECT_EQ(m.epoch.publish_backpressure_us, 120u);
}

}  // namespace
}  // namespace authdb
