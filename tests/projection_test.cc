#include "core/projection.h"

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/data_aggregator.h"

namespace authdb {
namespace {

using HashMode = BasContext::HashMode;

class ProjectionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(0xBEE);
    ctx_ = new std::shared_ptr<const BasContext>(
        BasContext::Generate(96, 64, &rng));
  }
  void SetUp() override {
    clock_.SetMicros(5'000'000);
    rng_ = std::make_unique<Rng>(11);
    DataAggregator::Options opt;
    opt.record_len = 128;
    da_ = std::make_unique<DataAggregator>(*ctx_, &clock_, rng_.get(), opt);
    for (int64_t k = 0; k < 8; ++k) {
      Record r;
      r.rid = k;
      r.ts = clock_.NowMicros();
      r.attrs = {k, k * 10, k * 100, k * 1000, -k};
      tuples_.push_back(r);
      attr_sigs_.push_back(da_->SignAttributes(r));
    }
    prover_ = std::make_unique<ProjectionProver>(*ctx_);
    verifier_ = std::make_unique<ProjectionVerifier>(&da_->public_key(),
                                                     HashMode::kFast);
  }

  static std::shared_ptr<const BasContext>* ctx_;
  ManualClock clock_;
  std::unique_ptr<Rng> rng_;
  std::unique_ptr<DataAggregator> da_;
  std::vector<Record> tuples_;
  std::vector<std::vector<BasSignature>> attr_sigs_;
  std::unique_ptr<ProjectionProver> prover_;
  std::unique_ptr<ProjectionVerifier> verifier_;
};
std::shared_ptr<const BasContext>* ProjectionTest::ctx_ = nullptr;

TEST_F(ProjectionTest, FullProjectionVerifies) {
  auto ans = prover_->Project(tuples_, attr_sigs_, {0, 1, 2, 3, 4});
  EXPECT_TRUE(verifier_->Verify(ans).ok());
}

TEST_F(ProjectionTest, PartialProjectionVerifies) {
  auto ans = prover_->Project(tuples_, attr_sigs_, {1, 3});
  ASSERT_EQ(ans.tuples.size(), 8u);
  EXPECT_EQ(ans.tuples[2].values[0], 20);
  EXPECT_EQ(ans.tuples[2].values[1], 2000);
  EXPECT_TRUE(verifier_->Verify(ans).ok());
}

TEST_F(ProjectionTest, NonContiguousProjectionVerifies) {
  auto ans = prover_->Project(tuples_, attr_sigs_, {0, 4});
  EXPECT_TRUE(verifier_->Verify(ans).ok());
}

TEST_F(ProjectionTest, VoIsOneSignatureRegardlessOfWidth) {
  SizeModel sm;
  auto narrow = prover_->Project(tuples_, attr_sigs_, {1});
  auto wide = prover_->Project(tuples_, attr_sigs_, {0, 1, 2, 3, 4});
  EXPECT_EQ(narrow.vo_size(sm), sm.signature_bytes);
  EXPECT_EQ(wide.vo_size(sm), sm.signature_bytes);
}

TEST_F(ProjectionTest, ValueTamperDetected) {
  auto ans = prover_->Project(tuples_, attr_sigs_, {1, 2});
  ans.tuples[0].values[0] = 424242;
  EXPECT_FALSE(verifier_->Verify(ans).ok());
}

TEST_F(ProjectionTest, SwapBetweenRecordsDetected) {
  // Both values are genuinely signed — but for different records.
  auto ans = prover_->Project(tuples_, attr_sigs_, {1});
  std::swap(ans.tuples[0].values[0], ans.tuples[1].values[0]);
  EXPECT_FALSE(verifier_->Verify(ans).ok());
}

TEST_F(ProjectionTest, SwapBetweenAttributePositionsDetected) {
  // Attribute 1 of record k is k*10; attribute 2 is k*100. The server
  // relabels a signed attr-2 value as attr-1.
  auto ans = prover_->Project(tuples_, attr_sigs_, {1, 2});
  std::swap(ans.tuples[3].attr_indices[0], ans.tuples[3].attr_indices[1]);
  EXPECT_FALSE(verifier_->Verify(ans).ok());
}

TEST_F(ProjectionTest, TimestampTamperDetected) {
  auto ans = prover_->Project(tuples_, attr_sigs_, {1});
  ans.tuples[0].ts += 1;
  EXPECT_FALSE(verifier_->Verify(ans).ok());
}

TEST_F(ProjectionTest, DroppedTupleDetected) {
  auto ans = prover_->Project(tuples_, attr_sigs_, {1});
  ans.tuples.pop_back();
  EXPECT_FALSE(verifier_->Verify(ans).ok());
}

}  // namespace
}  // namespace authdb
