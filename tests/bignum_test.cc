#include "crypto/bignum.h"

#include <cstdint>

#include <gtest/gtest.h>

#include "common/random.h"

namespace authdb {
namespace {

TEST(BigIntTest, U64Roundtrip) {
  EXPECT_EQ(BigInt(0).ToU64(), 0u);
  EXPECT_EQ(BigInt(1).ToU64(), 1u);
  EXPECT_EQ(BigInt(0xdeadbeefcafebabeULL).ToU64(), 0xdeadbeefcafebabeULL);
  EXPECT_TRUE(BigInt(0).IsZero());
  EXPECT_FALSE(BigInt(7).IsZero());
}

TEST(BigIntTest, HexRoundtrip) {
  const char* kCases[] = {"1", "ff", "deadbeef", "123456789abcdef0123456789",
                          "ffffffffffffffffffffffffffffffff"};
  for (const char* c : kCases) {
    EXPECT_EQ(BigInt::FromHex(c).ToHex(), c) << c;
  }
}

TEST(BigIntTest, BytesRoundtrip) {
  BigInt v = BigInt::FromHex("0123456789abcdef00ff");
  auto bytes = v.ToBytes(16);
  EXPECT_EQ(BigInt::Compare(BigInt::FromBytes(Slice(bytes)), v), 0);
  // Leading zero padding must not change the value.
  auto wide = v.ToBytes(32);
  EXPECT_EQ(BigInt::Compare(BigInt::FromBytes(Slice(wide)), v), 0);
}

TEST(BigIntTest, BitLengthAndBit) {
  EXPECT_EQ(BigInt(0).BitLength(), 0);
  EXPECT_EQ(BigInt(1).BitLength(), 1);
  EXPECT_EQ(BigInt(255).BitLength(), 8);
  EXPECT_EQ(BigInt(256).BitLength(), 9);
  BigInt v = BigInt::FromHex("10000000000000000");  // 2^64
  EXPECT_EQ(v.BitLength(), 65);
  EXPECT_TRUE(v.Bit(64));
  EXPECT_FALSE(v.Bit(63));
  EXPECT_FALSE(v.Bit(1000));
}

TEST(BigIntTest, AddSubProperties) {
  Rng rng(42);
  for (int i = 0; i < 200; ++i) {
    BigInt a = BigInt::Random(1 + rng.Uniform(300), &rng);
    BigInt b = BigInt::Random(1 + rng.Uniform(300), &rng);
    BigInt s = BigInt::Add(a, b);
    EXPECT_EQ(BigInt::Compare(BigInt::Sub(s, b), a), 0);
    EXPECT_EQ(BigInt::Compare(BigInt::Sub(s, a), b), 0);
    EXPECT_EQ(BigInt::Compare(BigInt::Add(a, b), BigInt::Add(b, a)), 0);
  }
}

TEST(BigIntTest, SmallArithmeticMatchesU64) {
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    uint64_t a = rng.Next() >> 33, b = rng.Next() >> 33;
    EXPECT_EQ(BigInt::Add(BigInt(a), BigInt(b)).ToU64(), a + b);
    EXPECT_EQ(BigInt::Mul(BigInt(a), BigInt(b)).ToU64(), a * b);
    if (b != 0) {
      EXPECT_EQ(BigInt::Div(BigInt(a), BigInt(b)).ToU64(), a / b);
      EXPECT_EQ(BigInt::Mod(BigInt(a), BigInt(b)).ToU64(), a % b);
    }
  }
}

TEST(BigIntTest, MulDistributesOverAdd) {
  Rng rng(43);
  for (int i = 0; i < 100; ++i) {
    BigInt a = BigInt::Random(200, &rng);
    BigInt b = BigInt::Random(150, &rng);
    BigInt c = BigInt::Random(100, &rng);
    BigInt lhs = BigInt::Mul(a, BigInt::Add(b, c));
    BigInt rhs = BigInt::Add(BigInt::Mul(a, b), BigInt::Mul(a, c));
    EXPECT_EQ(BigInt::Compare(lhs, rhs), 0);
  }
}

TEST(BigIntTest, DivModInvariant) {
  Rng rng(44);
  for (int i = 0; i < 200; ++i) {
    BigInt a = BigInt::Random(1 + rng.Uniform(512), &rng);
    BigInt d = BigInt::Random(1 + rng.Uniform(256), &rng);
    if (d.IsZero()) continue;
    BigInt q, r;
    BigInt::DivMod(a, d, &q, &r);
    EXPECT_LT(BigInt::Compare(r, d), 0);
    EXPECT_EQ(BigInt::Compare(BigInt::Add(BigInt::Mul(q, d), r), a), 0);
  }
}

TEST(BigIntTest, Shifts) {
  Rng rng(45);
  for (int i = 0; i < 100; ++i) {
    BigInt a = BigInt::Random(200, &rng);
    int s = static_cast<int>(rng.Uniform(130));
    BigInt left = BigInt::ShiftLeft(a, s);
    EXPECT_EQ(BigInt::Compare(BigInt::ShiftRight(left, s), a), 0);
    EXPECT_EQ(left.BitLength(), a.BitLength() + s);
  }
}

TEST(BigIntTest, ModInverse) {
  Rng rng(46);
  BigInt p = BigInt::FromHex("fffffffffffffffffffffffffffffff1");  // odd
  for (int i = 0; i < 50; ++i) {
    BigInt a = BigInt::RandomBelow(p, &rng);
    BigInt inv = BigInt::ModInverse(a, p);
    if (inv.IsZero()) continue;  // a shares a factor with p
    EXPECT_EQ(BigInt::MulMod(a, inv, p).ToU64(), 1u);
  }
}

TEST(BigIntTest, ModInverseNonInvertible) {
  BigInt m(100);
  EXPECT_TRUE(BigInt::ModInverse(BigInt(10), m).IsZero());
  EXPECT_TRUE(BigInt::ModInverse(BigInt(0), m).IsZero());
}

TEST(BigIntTest, MontgomeryMulMatchesPlain) {
  Rng rng(47);
  for (int trial = 0; trial < 20; ++trial) {
    BigInt n = BigInt::Random(128 + rng.Uniform(256), &rng);
    if (!n.IsOdd()) n = BigInt::Add(n, BigInt(1));
    MontgomeryContext mont(n);
    for (int i = 0; i < 10; ++i) {
      BigInt a = BigInt::RandomBelow(n, &rng);
      BigInt b = BigInt::RandomBelow(n, &rng);
      BigInt am = mont.ToMont(a);
      EXPECT_EQ(BigInt::Compare(mont.FromMont(am), a), 0);
      BigInt prod = mont.FromMont(mont.Mul(am, mont.ToMont(b)));
      EXPECT_EQ(BigInt::Compare(prod, BigInt::MulMod(a, b, n)), 0);
    }
  }
}

TEST(BigIntTest, MontgomeryExpMatchesNaive) {
  Rng rng(48);
  BigInt n = BigInt::Random(192, &rng);
  if (!n.IsOdd()) n = BigInt::Add(n, BigInt(1));
  MontgomeryContext mont(n);
  for (int i = 0; i < 20; ++i) {
    BigInt base = BigInt::RandomBelow(n, &rng);
    uint64_t e = rng.Uniform(50);
    BigInt expect(1);
    for (uint64_t j = 0; j < e; ++j) expect = BigInt::MulMod(expect, base, n);
    EXPECT_EQ(BigInt::Compare(mont.Exp(base, BigInt(e)), expect), 0)
        << "e=" << e;
  }
}

TEST(BigIntTest, FermatLittleTheorem) {
  Rng rng(49);
  BigInt p = BigInt::GeneratePrime(128, &rng);
  MontgomeryContext mont(p);
  BigInt pm1 = BigInt::Sub(p, BigInt(1));
  for (int i = 0; i < 10; ++i) {
    BigInt a = BigInt::RandomBelow(p, &rng);
    EXPECT_EQ(mont.Exp(a, pm1).ToU64(), 1u);
  }
}

TEST(BigIntTest, PrimalityKnownValues) {
  Rng rng(50);
  EXPECT_TRUE(BigInt::IsProbablePrime(BigInt(2), &rng));
  EXPECT_TRUE(BigInt::IsProbablePrime(BigInt(3), &rng));
  EXPECT_FALSE(BigInt::IsProbablePrime(BigInt(1), &rng));
  EXPECT_FALSE(BigInt::IsProbablePrime(BigInt(561), &rng));  // Carmichael
  EXPECT_TRUE(BigInt::IsProbablePrime(BigInt(2147483647), &rng));  // 2^31-1
  EXPECT_FALSE(BigInt::IsProbablePrime(
      BigInt::Mul(BigInt(2147483647), BigInt(2147483647)), &rng));
  // 2^127 - 1 is a Mersenne prime.
  BigInt m127 = BigInt::Sub(BigInt::ShiftLeft(BigInt(1), 127), BigInt(1));
  EXPECT_TRUE(BigInt::IsProbablePrime(m127, &rng));
}

TEST(BigIntTest, GeneratePrimeHasRequestedLength) {
  Rng rng(51);
  for (int bits : {64, 96, 128}) {
    BigInt p = BigInt::GeneratePrime(bits, &rng);
    EXPECT_EQ(p.BitLength(), bits);
    EXPECT_TRUE(BigInt::IsProbablePrime(p, &rng));
  }
}

TEST(BigIntTest, RandomBelowInRange) {
  Rng rng(52);
  BigInt n(1000);
  for (int i = 0; i < 100; ++i) {
    BigInt v = BigInt::RandomBelow(n, &rng);
    EXPECT_FALSE(v.IsZero());
    EXPECT_LT(BigInt::Compare(v, n), 0);
  }
}

}  // namespace
}  // namespace authdb
