// End-to-end tests of the unified query-execution layer: selections,
// projections, and both equi-join variants served through
// QueryServer::Execute and ShardedQueryServer::Execute, every answer
// epoch-stamped and accepted (or, when tampered/stale, rejected) by the
// client-side ClientVerifier::VerifyAnswerFresh.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "core/data_aggregator.h"
#include "core/query_server.h"
#include "core/verifier.h"
#include "server/sharded_query_server.h"

namespace authdb {
namespace {

using HashMode = BasContext::HashMode;

// S holds duplicated B values indexed on composite keys; R probes it with
// arbitrary A values. The 4-shard router is deliberately seamed *inside*
// B=30's duplicate run so match groups must stitch across shards.
class QueryExecTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(0xE4EC);
    ctx_ = new std::shared_ptr<const BasContext>(
        BasContext::Generate(96, 64, &rng));
  }

  void SetUp() override {
    clock_.SetMicros(1'000'000);
    rng_ = std::make_unique<Rng>(5);
    DataAggregator::Options opt;
    opt.record_len = 128;
    opt.piggyback_renewal = false;
    opt.sign_attributes = true;
    da_ = std::make_unique<DataAggregator>(*ctx_, &clock_, rng_.get(), opt);
    verifier_ = std::make_unique<ClientVerifier>(&da_->public_key(), &codec_,
                                                 HashMode::kFast);
  }

  /// Bulk-load S = {B value -> duplicate count}, enable join partitions,
  /// and stand up a 4-shard server (plus a single-server reference) with
  /// seams at composite keys {(30,1), (50,0), (75,0)}.
  void Load(const std::map<int64_t, int>& b_counts) {
    std::vector<Record> records;
    for (const auto& [b, count] : b_counts) {
      for (int d = 0; d < count; ++d) {
        Record r;
        r.attrs = {JoinCompositeKey(b, static_cast<uint32_t>(d)), b, b * 11};
        records.push_back(r);
      }
    }
    auto stream = da_->BulkLoad(std::move(records));
    ASSERT_TRUE(stream.ok());
    da_->EnableJoinPartitions(/*values_per_partition=*/2,
                              /*bits_per_value=*/8.0);

    ServerConfig cfg;
    cfg.node.record_len = 128;
    cfg.serving.worker_threads = 2;
    server_ = std::make_unique<ShardedQueryServer>(
        *ctx_,
        ShardRouter({JoinCompositeKey(30, 1), JoinCompositeKey(50, 0),
                     JoinCompositeKey(75, 0)}),
        cfg);
    QueryServer::Options qopt;
    qopt.record_len = 128;
    reference_ = std::make_unique<QueryServer>(*ctx_, qopt);
    for (const auto& msg : stream.value()) {
      ASSERT_TRUE(server_->ApplyUpdate(msg).ok());
      ASSERT_TRUE(reference_->ApplyUpdate(msg).ok());
    }
    server_->SetJoinPartitions(da_->join_partitions());
    reference_->SetJoinPartitions(da_->join_partitions());
  }

  static std::map<int64_t, int> DefaultS() {
    // Distinct B: 10 20 30 50 70 90; B=30 spans the shard-0/1 seam.
    return {{10, 3}, {20, 1}, {30, 3}, {50, 2}, {70, 1}, {90, 2}};
  }

  /// Apply one DA message to both servers.
  void Apply(const SignedRecordUpdate& msg) {
    ASSERT_TRUE(server_->ApplyUpdate(msg).ok());
    ASSERT_TRUE(reference_->ApplyUpdate(msg).ok());
  }
  /// Close the rho-period into both servers (summary + re-certifications +
  /// certified partition refresh), advancing the clock by rho first so
  /// certifications never coincide with the period boundary.
  void PublishPeriod() {
    clock_.AdvanceSeconds(1.0);
    DataAggregator::PeriodOutput out = da_->PublishSummary();
    // The sharded server installs the refresh (delta merges + full
    // rebuilds) in the same descriptor swap as the epoch; the single-node
    // reference mirrors it through the same ApplyPartitionRefresh.
    server_->AddSummary(out.summary, out.partition_refresh);
    reference_->AddSummary(out.summary);
    for (const auto& msg : out.recertifications) Apply(msg);
    if (!out.partition_refresh.empty()) {
      std::vector<CertifiedPartition> ref = reference_->join_partitions();
      ASSERT_TRUE(ApplyPartitionRefresh(out.partition_refresh, &ref));
      reference_->SetJoinPartitions(std::move(ref));
    }
  }

  uint64_t Now() { return clock_.NowMicros(); }

  static std::shared_ptr<const BasContext>* ctx_;
  ManualClock clock_;
  std::unique_ptr<Rng> rng_;
  VarintGapCodec codec_;
  std::unique_ptr<DataAggregator> da_;
  std::unique_ptr<ShardedQueryServer> server_;
  std::unique_ptr<QueryServer> reference_;
  std::unique_ptr<ClientVerifier> verifier_;
};
std::shared_ptr<const BasContext>* QueryExecTest::ctx_ = nullptr;

TEST_F(QueryExecTest, SelectPlanMatchesDirectSelect) {
  Load(DefaultS());
  int64_t lo = JoinCompositeKey(10, 0), hi = JoinCompositeKey(50, 1);
  Query q = Query::Select(lo, hi);
  auto plan = server_->Execute(q);
  auto direct = server_->Select(lo, hi);
  ASSERT_TRUE(plan.ok() && direct.ok());
  EXPECT_EQ(plan.value().kind, QueryKind::kSelect);
  EXPECT_EQ(plan.value().selection.records, direct.value().records);
  EXPECT_TRUE(
      verifier_->VerifyAnswerFresh(q, plan.value(), Now(), /*min_epoch=*/0)
          .ok());
}

TEST_F(QueryExecTest, JoinMatchGroupSpansShardSeam) {
  Load(DefaultS());
  // B=30's duplicates straddle the (30,1) split: dup 0 on shard 0, dups
  // 1-2 on shard 1. The stitched group must carry its true global chain
  // boundaries and verify against the unmodified join checks.
  for (JoinMethod method :
       {JoinMethod::kBloomFilter, JoinMethod::kBoundaryValues}) {
    Query q = Query::Join({30}, method);
    auto ans = server_->Execute(q);
    ASSERT_TRUE(ans.ok());
    ASSERT_EQ(ans.value().join.matches.size(), 1u);
    EXPECT_EQ(ans.value().join.matches[0].s_records.size(), 3u);
    EXPECT_TRUE(
        verifier_->VerifyAnswerFresh(q, ans.value(), Now(), 0).ok());
    // The sharded aggregate equals the single-server one: same records,
    // same chain signatures, same sum.
    auto ref = reference_->Execute(q);
    ASSERT_TRUE(ref.ok());
    EXPECT_TRUE((*ctx_)->curve().Equal(ans.value().join.agg_sig.point,
                                       ref.value().join.agg_sig.point));
  }
}

TEST_F(QueryExecTest, JoinMixedMatchedUnmatchedAcrossShards) {
  Load(DefaultS());
  std::vector<int64_t> r_values = {10, 15, 30, 41, 70, 85, 90, 120};
  for (JoinMethod method :
       {JoinMethod::kBloomFilter, JoinMethod::kBoundaryValues}) {
    Query q = Query::Join(r_values, method);
    const ServerMetrics before = server_->Metrics();
    auto ans = server_->Execute(q);
    ASSERT_TRUE(ans.ok());
    EXPECT_EQ(ans.value().join.matches.size(), 4u);  // 10, 30, 70, 90
    EXPECT_GT(server_->Metrics().Delta(before).exec.shards_queried, 1u);
    EXPECT_TRUE(
        verifier_->VerifyAnswerFresh(q, ans.value(), Now(), 0).ok());
    auto ref = reference_->Execute(q);
    ASSERT_TRUE(ref.ok());
    EXPECT_TRUE((*ctx_)->curve().Equal(ans.value().join.agg_sig.point,
                                       ref.value().join.agg_sig.point));
  }
}

TEST_F(QueryExecTest, JoinAbsenceWitnessStitchesAcrossSeam) {
  Load(DefaultS());
  // B=40 falls in the gap between 30 (ending on shard 1) and 50 (starting
  // on shard 2... actually seam (50,0) puts 50 on shard 2): the witness
  // and both its chain neighbors must be resolved by cross-shard probes.
  Query q = Query::Join({40}, JoinMethod::kBoundaryValues);
  auto ans = server_->Execute(q);
  ASSERT_TRUE(ans.ok());
  ASSERT_EQ(ans.value().join.absence_proofs.size(), 1u);
  const AbsenceProof& p = ans.value().join.absence_proofs[0];
  EXPECT_EQ(JoinBValue(p.rec_key), 30);  // nearest record left of the gap
  EXPECT_EQ(JoinBValue(p.right_key), 50);
  EXPECT_TRUE(verifier_->VerifyAnswerFresh(q, ans.value(), Now(), 0).ok());
}

TEST_F(QueryExecTest, BloomNegativeSkipsBoundaryProof) {
  Load(DefaultS());
  // Hunt a value the covering filter answers negative for.
  int64_t neg = -1;
  for (int64_t v = 100; v < 200 && neg < 0; ++v) {
    bool covered_negative = false;
    for (const auto& part : da_->join_partitions()) {
      if (part.lo_b <= v && v <= part.hi_b)
        covered_negative = !part.filter.MayContainInt64(v);
    }
    if (covered_negative) neg = v;
  }
  ASSERT_GT(neg, 0) << "no negative probe value found";
  Query q = Query::Join({neg}, JoinMethod::kBloomFilter);
  auto ans = server_->Execute(q);
  ASSERT_TRUE(ans.ok());
  EXPECT_EQ(ans.value().join.negative_probes.size(), 1u);
  EXPECT_TRUE(ans.value().join.absence_proofs.empty());
  EXPECT_EQ(ans.value().join.partitions.size(), 1u);
  EXPECT_TRUE(verifier_->VerifyAnswerFresh(q, ans.value(), Now(), 0).ok());
}

TEST_F(QueryExecTest, BloomFalsePositiveFallsBackToBoundaryProofServed) {
  Load(DefaultS());
  // A deliberately colliding unmatched value: hunt the certified filters
  // for a false positive (8 bits/value keeps them rare but findable).
  int64_t fp = -1;
  std::map<int64_t, int> s = DefaultS();
  for (int64_t v = 11; v < 2'000'000 && fp < 0; ++v) {
    if (s.count(v) > 0) continue;
    for (const auto& part : da_->join_partitions()) {
      if (part.lo_b <= v && v <= part.hi_b) {
        if (part.filter.MayContainInt64(v)) fp = v;
        break;
      }
    }
  }
  if (fp < 0) GTEST_SKIP() << "no false positive found in probe range";
  Query q = Query::Join({fp}, JoinMethod::kBloomFilter);
  auto ans = server_->Execute(q);
  ASSERT_TRUE(ans.ok());
  // The filter cannot prove absence — the served answer must fall back to
  // the boundary witness and still verify end to end.
  EXPECT_TRUE(ans.value().join.negative_probes.empty());
  ASSERT_EQ(ans.value().join.absence_proofs.size(), 1u);
  EXPECT_TRUE(verifier_->VerifyAnswerFresh(q, ans.value(), Now(), 0).ok());
}

TEST_F(QueryExecTest, TamperedPartitionSignatureRejected) {
  Load(DefaultS());
  int64_t neg = -1;
  for (int64_t v = 100; v < 200 && neg < 0; ++v) {
    for (const auto& part : da_->join_partitions()) {
      if (part.lo_b <= v && v <= part.hi_b &&
          !part.filter.MayContainInt64(v))
        neg = v;
    }
  }
  ASSERT_GT(neg, 0);
  Query q = Query::Join({neg}, JoinMethod::kBloomFilter);
  auto ans = server_->Execute(q);
  ASSERT_TRUE(ans.ok());
  ASSERT_EQ(ans.value().join.partitions.size(), 1u);
  ASSERT_TRUE(verifier_->VerifyAnswerFresh(q, ans.value(), Now(), 0).ok());
  ClientVerifier fresh(&da_->public_key(), &codec_, HashMode::kFast);
  // The certification binds the partition's full content: a server
  // advancing the claimed timestamp (to dodge the age bound) no longer
  // matches the aggregated certification message.
  {
    QueryAnswer tampered = ans.value();
    tampered.join.partitions[0].ts += 1;
    EXPECT_TRUE(fresh.VerifyAnswerFresh(q, tampered, Now(), 0)
                    .IsVerificationFailed());
  }
  // A stolen signature from a different (genuine) partition aggregated in
  // place of the shipped partition's certification is rejected.
  {
    QueryAnswer tampered = ans.value();
    const auto& parts = da_->join_partitions();
    ASSERT_GE(parts.size(), 2u);
    for (const auto& other : parts) {
      if (other.idx != tampered.join.partitions[0].idx) {
        // This answer's aggregate covers exactly the one partition
        // certification (negative probes add no chain messages), so the
        // swap is precisely "the partition's signature, tampered".
        tampered.join.agg_sig = other.sig;
        break;
      }
    }
    EXPECT_TRUE(fresh.VerifyAnswerFresh(q, tampered, Now(), 0)
                    .IsVerificationFailed());
  }
  // An emptied filter claiming absence of present values is rejected.
  {
    QueryAnswer forged = ans.value();
    forged.join.partitions[0].filter = BloomFilter(64, 2);  // empty filter
    EXPECT_TRUE(fresh.VerifyAnswerFresh(q, forged, Now(), 0)
                    .IsVerificationFailed());
  }
}

TEST_F(QueryExecTest, ProjectionServedAcrossShardsVerifies) {
  Load(DefaultS());
  // Project attrs {1, 2} over a range spanning three shards; the executor
  // forces the index attribute in so the spine stays bound.
  Query q = Query::Project(JoinCompositeKey(10, 0), JoinCompositeKey(70, 0),
                           {1, 2});
  const ServerMetrics before = server_->Metrics();
  auto ans = server_->Execute(q);
  ASSERT_TRUE(ans.ok());
  const ProjectedRangeAnswer& proj = ans.value().projection;
  EXPECT_EQ(proj.tuples.size(), 10u);  // 3+1+3+2+1 records in [10, 70]
  EXPECT_GT(server_->Metrics().Delta(before).exec.shards_queried, 1u);
  ASSERT_FALSE(proj.tuples.empty());
  EXPECT_EQ(proj.tuples[0].attr_indices.front(), 0u);  // forced index attr
  EXPECT_EQ(proj.tuples[0].attr_indices.size(), 3u);
  EXPECT_TRUE(verifier_->VerifyAnswerFresh(q, ans.value(), Now(), 0).ok());
  // Reference answer aggregates identically.
  auto ref = reference_->Execute(q);
  ASSERT_TRUE(ref.ok());
  EXPECT_TRUE((*ctx_)->curve().Equal(proj.agg_sig.point,
                                     ref.value().projection.agg_sig.point));
}

TEST_F(QueryExecTest, ProjectionEmptyRangeProvenByWitness) {
  Load(DefaultS());
  // The whole B=40 gap: no tuples, digest-only witness spans the range.
  Query q = Query::Project(JoinCompositeKey(35, 0), JoinCompositeKey(45, 0),
                           {1});
  auto ans = server_->Execute(q);
  ASSERT_TRUE(ans.ok());
  EXPECT_TRUE(ans.value().projection.tuples.empty());
  ASSERT_TRUE(ans.value().projection.proof.has_value());
  EXPECT_TRUE(verifier_->VerifyAnswerFresh(q, ans.value(), Now(), 0).ok());
}

TEST_F(QueryExecTest, ProjectionTamperDetected) {
  Load(DefaultS());
  Query q = Query::Project(JoinCompositeKey(10, 0), JoinCompositeKey(30, 2),
                           {1});
  auto ans = server_->Execute(q);
  ASSERT_TRUE(ans.ok());
  ASSERT_TRUE(verifier_->VerifyProjectionStatic(q, ans.value().projection)
                  .ok());
  {  // A swapped value (still genuinely signed, for another record):
     // tuples 0 and 3 have different B values, so the swap changes both
     // attribute messages.
    QueryAnswer t = ans.value();
    ASSERT_GE(t.projection.tuples.size(), 4u);
    ASSERT_NE(t.projection.tuples[0].values[1],
              t.projection.tuples[3].values[1]);
    std::swap(t.projection.tuples[0].values[1],
              t.projection.tuples[3].values[1]);
    EXPECT_TRUE(verifier_->VerifyProjectionStatic(q, t.projection)
                    .IsVerificationFailed());
  }
  {  // A dropped tuple (and its spine entry).
    QueryAnswer t = ans.value();
    t.projection.tuples.pop_back();
    t.projection.digests.pop_back();
    EXPECT_TRUE(verifier_->VerifyProjectionStatic(q, t.projection)
                    .IsVerificationFailed());
  }
  {  // A forged digest breaks the chain aggregate.
    QueryAnswer t = ans.value();
    t.projection.digests[0] = Digest160{};
    EXPECT_TRUE(verifier_->VerifyProjectionStatic(q, t.projection)
                    .IsVerificationFailed());
  }
}

TEST_F(QueryExecTest, ProjectionWithoutAttributeSignaturesRefused) {
  // A DA that does not sign attributes cannot back projection plans; the
  // server must refuse rather than fabricate.
  DataAggregator::Options opt;
  opt.record_len = 128;
  opt.piggyback_renewal = false;
  DataAggregator da(*ctx_, &clock_, rng_.get(), opt);
  std::vector<Record> records;
  for (int64_t k = 0; k < 8; ++k) {
    Record r;
    r.attrs = {k, k * 7};
    records.push_back(r);
  }
  auto stream = da.BulkLoad(std::move(records));
  ASSERT_TRUE(stream.ok());
  QueryServer::Options qopt;
  qopt.record_len = 128;
  QueryServer qs(*ctx_, qopt);
  for (const auto& msg : stream.value())
    ASSERT_TRUE(qs.ApplyUpdate(msg).ok());
  auto ans = qs.Execute(Query::Project(0, 7, {1}));
  ASSERT_FALSE(ans.ok());
  EXPECT_FALSE(ans.status().IsNotFound());
}

TEST_F(QueryExecTest, WrongKindAnswerRejected) {
  // The answer kind is server-controlled. A server answering a join query
  // with an *honest selection* answer (or any kind mismatch) must be
  // rejected outright: the mismatched member the client would read is
  // default-empty, so accepting it would be a verified-yet-incomplete
  // answer.
  Load(DefaultS());
  Query join_q = Query::Join({30});
  auto select_ans =
      server_->Execute(Query::Select(JoinCompositeKey(10, 0),
                                     JoinCompositeKey(10, 0)));
  ASSERT_TRUE(select_ans.ok());
  ASSERT_TRUE(verifier_
                  ->VerifyAnswerFresh(Query::Select(JoinCompositeKey(10, 0),
                                                    JoinCompositeKey(10, 0)),
                                      select_ans.value(), Now(), 0)
                  .ok());
  EXPECT_TRUE(verifier_->VerifyAnswerFresh(join_q, select_ans.value(),
                                           Now(), 0)
                  .IsVerificationFailed());
  auto join_ans = server_->Execute(join_q);
  ASSERT_TRUE(join_ans.ok());
  EXPECT_TRUE(verifier_
                  ->VerifyAnswerFresh(Query::Project(0, 1, {1}),
                                      join_ans.value(), Now(), 0)
                  .IsVerificationFailed());
}

TEST_F(QueryExecTest, StaleJoinReplayRejectedByBitmapWalk) {
  Load(DefaultS());
  PublishPeriod();  // summary 0 certifies the bulk load
  // Capture a pre-update join answer citing B=50's rows.
  Query q = Query::Join({50}, JoinMethod::kBloomFilter);
  auto stale = server_->Execute(q);
  ASSERT_TRUE(stale.ok());
  EXPECT_EQ(stale.value().served_epoch, 1u);
  ASSERT_TRUE(verifier_->VerifyAnswerFresh(q, stale.value(), Now(), 1).ok());

  clock_.AdvanceSeconds(0.5);
  int64_t victim_key = JoinCompositeKey(50, 0);
  auto msg = da_->ModifyRecord(victim_key, {victim_key, 50, 4242});
  ASSERT_TRUE(msg.ok());
  Apply(msg.value());
  clock_.AdvanceSeconds(0.6);
  PublishPeriod();
  clock_.AdvanceSeconds(1.0);
  PublishPeriod();

  // A fresh client pulls the current summaries through any live answer,
  // then must reject the replayed pre-update join: the victim's rid is
  // marked in a summary published after its captured certification. The
  // epoch stamp is deliberately ignored (min_epoch = 0) — the signed
  // bitmaps alone must catch the replay.
  ClientVerifier fresh(&da_->public_key(), &codec_, HashMode::kFast);
  auto live = server_->Execute(q);
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(live.value().served_epoch, 3u);
  ASSERT_TRUE(fresh.VerifyAnswerFresh(q, live.value(), Now(), 3).ok());
  Status replay = fresh.VerifyAnswerFresh(q, stale.value(), Now(), 0);
  EXPECT_TRUE(replay.IsVerificationFailed()) << replay.ToString();
  EXPECT_FALSE(fresh.StaleRids(stale.value(), Now()).empty());
  // With the epoch cross-check the same replay dies immediately.
  EXPECT_TRUE(fresh.VerifyAnswerFresh(q, stale.value(), Now(), 3)
                  .IsVerificationFailed());
}

TEST_F(QueryExecTest, PartitionRefreshFollowsDeletion) {
  Load(DefaultS());
  PublishPeriod();
  // Delete every B=20 row; until the refresh lands the old filter still
  // contains 20, so a join must fall back to the boundary witness — then
  // the rho-period rebuild restores the negative probe.
  auto del = da_->DeleteRecord(JoinCompositeKey(20, 0));
  ASSERT_TRUE(del.ok());
  Apply(del.value());
  Query q = Query::Join({20}, JoinMethod::kBloomFilter);
  auto before = server_->Execute(q);
  ASSERT_TRUE(before.ok());
  EXPECT_TRUE(before.value().join.matches.empty());
  EXPECT_EQ(before.value().join.absence_proofs.size(), 1u);  // FP fallback
  EXPECT_TRUE(
      verifier_->VerifyAnswerFresh(q, before.value(), Now(), 0).ok());

  clock_.AdvanceSeconds(1.0);
  PublishPeriod();  // rebuilds the dirty partition without 20
  auto after = server_->Execute(q);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().join.negative_probes.size(), 1u);
  EXPECT_TRUE(after.value().join.absence_proofs.empty());
  EXPECT_TRUE(verifier_->VerifyAnswerFresh(q, after.value(), Now(), 0,
                                           /*max_partition_age_micros=*/
                                           3'000'000)
                  .ok());
}

TEST_F(QueryExecTest, LaggingPartitionRejectedByAgeBound) {
  Load(DefaultS());
  PublishPeriod();
  int64_t neg = -1;
  for (int64_t v = 100; v < 200 && neg < 0; ++v) {
    for (const auto& part : da_->join_partitions()) {
      if (part.lo_b <= v && v <= part.hi_b &&
          !part.filter.MayContainInt64(v))
        neg = v;
    }
  }
  ASSERT_GT(neg, 0);
  Query q = Query::Join({neg}, JoinMethod::kBloomFilter);
  auto ans = server_->Execute(q);
  ASSERT_TRUE(ans.ok());
  ASSERT_EQ(ans.value().join.negative_probes.size(), 1u);
  ASSERT_TRUE(verifier_->VerifyAnswerFresh(q, ans.value(), Now(), 0,
                                           3'000'000)
                  .ok());
  // Several periods later the captured answer's filter is provably old:
  // a server replaying it (e.g. to hide an insert of `neg`) fails the
  // partition-age bound even though every signature checks out.
  for (int i = 0; i < 4; ++i) {
    clock_.AdvanceSeconds(1.0);
    PublishPeriod();
  }
  ClientVerifier fresh(&da_->public_key(), &codec_, HashMode::kFast);
  auto live = server_->Execute(Query::Select(JoinCompositeKey(10, 0),
                                            JoinCompositeKey(10, 0)));
  ASSERT_TRUE(live.ok());
  ASSERT_TRUE(fresh
                  .VerifyAnswerFresh(Query::Select(JoinCompositeKey(10, 0),
                                                   JoinCompositeKey(10, 0)),
                                     live.value(), Now(), 0)
                  .ok());
  EXPECT_TRUE(fresh.VerifyAnswerFresh(q, ans.value(), Now(), 0, 3'000'000)
                  .IsVerificationFailed());
}

TEST_F(QueryExecTest, VoAccountingSplitsBloomAndBoundaryBytes) {
  Load(DefaultS());
  SizeModel sm;
  Query bf = Query::Join({10, 111, 112, 113}, JoinMethod::kBloomFilter);
  Query bv = Query::Join({10, 111, 112, 113}, JoinMethod::kBoundaryValues);
  auto bf_ans = server_->Execute(bf);
  auto bv_ans = server_->Execute(bv);
  ASSERT_TRUE(bf_ans.ok() && bv_ans.ok());
  const JoinAnswer& a = bf_ans.value().join;
  EXPECT_EQ(a.vo_size_paper(sm),
            a.vo_bloom_bytes(sm) + a.vo_boundary_bytes(sm) +
                sm.signature_bytes);
  EXPECT_EQ(bv_ans.value().join.vo_bloom_bytes(sm), 0u);
  EXPECT_GT(bv_ans.value().join.vo_boundary_bytes(sm), 0u);
  EXPECT_GT(bf_ans.value().vo_bytes(sm), 0u);
  // Projection VO is digest spine + boundaries + one signature.
  Query proj = Query::Project(JoinCompositeKey(10, 0),
                              JoinCompositeKey(30, 2), {1});
  auto p = server_->Execute(proj);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().projection.vo_size(sm),
            sm.signature_bytes + 2 * sm.key_bytes +
                p.value().projection.tuples.size() * sm.digest_bytes);
}

}  // namespace
}  // namespace authdb
