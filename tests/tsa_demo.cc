// Negative-compile demonstration that the thread-safety annotations are
// load-bearing: this file contains a textbook lock-discipline bug — a
// GUARDED_BY field written without its mutex held — and MUST FAIL to
// compile under clang with -Wthread-safety -Werror=thread-safety-analysis.
//
// It is deliberately not part of any CMake target. CI compiles it
// standalone (see the thread-safety job in .github/workflows/ci.yml):
//
//   clang++ -fsyntax-only -std=c++17 -Isrc -DAUTHDB_TSA_DEMO=1 \
//       -Wthread-safety -Werror=thread-safety-analysis tests/tsa_demo.cc
//
// and asserts the exit status is NON-zero. If a refactor of
// common/thread_annotations.h ever turns the attributes into silent
// no-ops under clang, this file starts compiling and the CI step fails —
// the annotations cannot quietly stop analyzing.

#ifndef AUTHDB_TSA_DEMO
#error "negative-compile fixture: build with -DAUTHDB_TSA_DEMO=1"
#endif

#include <cstdint>

#include "common/thread_annotations.h"

namespace authdb {
namespace {

class EpochCounter {
 public:
  // BUG (by design): touches published_ without holding mu_. Under
  // -Werror=thread-safety-analysis clang reports
  //   writing variable 'published_' requires holding mutex 'mu_'
  // and refuses the translation unit.
  void Publish() { ++published_; }

  uint64_t published() const {
    MutexLock lock(mu_);
    return published_;
  }

 private:
  mutable Mutex mu_;
  uint64_t published_ GUARDED_BY(mu_) = 0;
};

}  // namespace
}  // namespace authdb

int main() {
  authdb::EpochCounter c;
  c.Publish();
  return static_cast<int>(c.published());
}
