#include "crypto/rsa.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace authdb {
namespace {

// 512-bit keys keep the test fast; the scheme is size-agnostic.
class RsaTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rng_ = new Rng(0xabc);
    key_ = new RsaPrivateKey(RsaPrivateKey::Generate(512, rng_));
  }
  static Rng* rng_;
  static RsaPrivateKey* key_;
};
Rng* RsaTest::rng_ = nullptr;
RsaPrivateKey* RsaTest::key_ = nullptr;

TEST_F(RsaTest, SignVerify) {
  std::string msg = "tuple #42: price=101.25 ts=993";
  RsaSignature sig = key_->Sign(Slice(msg));
  EXPECT_TRUE(key_->public_key().Verify(Slice(msg), sig));
}

TEST_F(RsaTest, VerifyRejectsWrongMessage) {
  RsaSignature sig = key_->Sign(Slice(std::string("m1")));
  EXPECT_FALSE(key_->public_key().Verify(Slice(std::string("m2")), sig));
}

TEST_F(RsaTest, VerifyRejectsTamperedSignature) {
  RsaSignature sig = key_->Sign(Slice(std::string("m1")));
  sig.value = BigInt::Add(sig.value, BigInt(1));
  EXPECT_FALSE(key_->public_key().Verify(Slice(std::string("m1")), sig));
}

TEST_F(RsaTest, SigningIsDeterministic) {
  RsaSignature s1 = key_->Sign(Slice(std::string("m")));
  RsaSignature s2 = key_->Sign(Slice(std::string("m")));
  EXPECT_EQ(BigInt::Compare(s1.value, s2.value), 0);
}

TEST_F(RsaTest, CondensedAggregateVerifies) {
  std::vector<std::string> msgs;
  std::vector<RsaSignature> sigs;
  for (int i = 0; i < 20; ++i) {
    msgs.push_back("record-" + std::to_string(i));
    sigs.push_back(key_->Sign(Slice(msgs.back())));
  }
  RsaSignature agg = key_->public_key().Aggregate(sigs);
  std::vector<Slice> views(msgs.begin(), msgs.end());
  EXPECT_TRUE(key_->public_key().VerifyCondensed(views, agg));
}

TEST_F(RsaTest, CondensedIsOrderIndependent) {
  std::vector<std::string> msgs = {"a", "b", "c"};
  std::vector<RsaSignature> sigs;
  for (const auto& m : msgs) sigs.push_back(key_->Sign(Slice(m)));
  RsaSignature agg = key_->public_key().Aggregate(sigs);
  std::vector<Slice> reordered = {Slice(msgs[2]), Slice(msgs[0]),
                                  Slice(msgs[1])};
  EXPECT_TRUE(key_->public_key().VerifyCondensed(reordered, agg));
}

TEST_F(RsaTest, CondensedRejectsDroppedMessage) {
  std::vector<std::string> msgs = {"a", "b", "c"};
  std::vector<RsaSignature> sigs;
  for (const auto& m : msgs) sigs.push_back(key_->Sign(Slice(m)));
  RsaSignature agg = key_->public_key().Aggregate(sigs);
  std::vector<Slice> dropped = {Slice(msgs[0]), Slice(msgs[1])};
  EXPECT_FALSE(key_->public_key().VerifyCondensed(dropped, agg));
}

TEST_F(RsaTest, CondensedRejectsSubstitutedMessage) {
  std::vector<std::string> msgs = {"a", "b", "c"};
  std::vector<RsaSignature> sigs;
  for (const auto& m : msgs) sigs.push_back(key_->Sign(Slice(m)));
  RsaSignature agg = key_->public_key().Aggregate(sigs);
  std::string evil = "z";
  std::vector<Slice> subst = {Slice(msgs[0]), Slice(msgs[1]), Slice(evil)};
  EXPECT_FALSE(key_->public_key().VerifyCondensed(subst, agg));
}

TEST_F(RsaTest, CondensedRejectsForeignSignatureInAggregate) {
  Rng rng2(0xdef);
  RsaPrivateKey other = RsaPrivateKey::Generate(512, &rng2);
  std::vector<std::string> msgs = {"a", "b"};
  std::vector<RsaSignature> sigs = {key_->Sign(Slice(msgs[0])),
                                    other.Sign(Slice(msgs[1]))};
  RsaSignature agg = key_->public_key().Aggregate(sigs);
  std::vector<Slice> views(msgs.begin(), msgs.end());
  EXPECT_FALSE(key_->public_key().VerifyCondensed(views, agg));
}

TEST_F(RsaTest, SingleMessageCondensedEqualsPlainVerify) {
  std::string m = "solo";
  RsaSignature sig = key_->Sign(Slice(m));
  RsaSignature agg = key_->public_key().Aggregate({sig});
  EXPECT_TRUE(key_->public_key().VerifyCondensed({Slice(m)}, agg));
  EXPECT_EQ(BigInt::Compare(agg.value, sig.value), 0);
}

}  // namespace
}  // namespace authdb
