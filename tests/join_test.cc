#include "core/join.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "core/data_aggregator.h"

namespace authdb {
namespace {

using HashMode = BasContext::HashMode;

// S holds B values {10, 10, 10, 20, 30, 30, 50, 70} (duplicates included),
// indexed on composite keys.
class JoinTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(0x1011);
    ctx_ = new std::shared_ptr<const BasContext>(
        BasContext::Generate(96, 64, &rng));
  }
  void SetUp() override {
    clock_.SetMicros(1'000'000);
    rng_ = std::make_unique<Rng>(3);
    DataAggregator::Options opt;
    opt.record_len = 128;
    da_ = std::make_unique<DataAggregator>(*ctx_, &clock_, rng_.get(), opt);

    std::vector<int64_t> b_values = {10, 10, 10, 20, 30, 30, 50, 70};
    std::vector<Record> records;
    std::map<int64_t, uint32_t> dup_count;
    for (int64_t b : b_values) {
      Record r;
      r.attrs = {JoinCompositeKey(b, dup_count[b]++), b, b * 11};
      records.push_back(r);
    }
    auto stream = da_->BulkLoad(std::move(records));
    ASSERT_TRUE(stream.ok());

    distinct_b_ = {10, 20, 30, 50, 70};
    authority_ = std::make_unique<JoinAuthority>(
        *ctx_, da_->private_key(), HashMode::kFast);
    partitions_ = authority_->BuildPartitions(distinct_b_,
                                              /*values_per_partition=*/2,
                                              /*bits_per_value=*/8.0,
                                              clock_.NowMicros());
    prover_ = std::make_unique<JoinProver>(*ctx_, &da_->table(), &partitions_);
    verifier_ = std::make_unique<JoinVerifier>(&da_->public_key(),
                                               HashMode::kFast);
  }

  static std::shared_ptr<const BasContext>* ctx_;
  ManualClock clock_;
  std::unique_ptr<Rng> rng_;
  std::unique_ptr<DataAggregator> da_;
  std::vector<int64_t> distinct_b_;
  std::unique_ptr<JoinAuthority> authority_;
  std::vector<CertifiedPartition> partitions_;
  std::unique_ptr<JoinProver> prover_;
  std::unique_ptr<JoinVerifier> verifier_;
};
std::shared_ptr<const BasContext>* JoinTest::ctx_ = nullptr;

TEST_F(JoinTest, MatchedValuesReturnAllDuplicates) {
  auto ans = prover_->Join({10, 30}, JoinMethod::kBloomFilter);
  ASSERT_TRUE(ans.ok());
  ASSERT_EQ(ans.value().matches.size(), 2u);
  EXPECT_EQ(ans.value().matches[0].s_records.size(), 3u);  // B=10 x3
  EXPECT_EQ(ans.value().matches[1].s_records.size(), 2u);  // B=30 x2
  EXPECT_TRUE(verifier_->Verify({10, 30}, ans.value()).ok());
}

TEST_F(JoinTest, MixedMatchedAndUnmatchedVerifies) {
  std::vector<int64_t> r_values = {10, 15, 20, 41, 70, 99};
  for (JoinMethod method :
       {JoinMethod::kBloomFilter, JoinMethod::kBoundaryValues}) {
    auto ans = prover_->Join(r_values, method);
    ASSERT_TRUE(ans.ok());
    EXPECT_EQ(ans.value().matches.size(), 3u);  // 10, 20, 70
    EXPECT_TRUE(verifier_->Verify(r_values, ans.value()).ok());
  }
}

TEST_F(JoinTest, BloomNegativesAvoidBoundaryProofs) {
  // Find probe values the filters answer negative for (the common case).
  std::vector<int64_t> unmatched;
  for (int64_t v = 100; unmatched.size() < 5; ++v) {
    if (std::find(distinct_b_.begin(), distinct_b_.end(), v) ==
        distinct_b_.end())
      unmatched.push_back(v);
  }
  auto bf = prover_->Join(unmatched, JoinMethod::kBloomFilter);
  auto bv = prover_->Join(unmatched, JoinMethod::kBoundaryValues);
  ASSERT_TRUE(bf.ok() && bv.ok());
  // BV needs one absence proof per value; BF mostly needs none.
  EXPECT_EQ(bv.value().absence_proofs.size(), unmatched.size());
  EXPECT_LT(bf.value().absence_proofs.size(), unmatched.size());
  EXPECT_GT(bf.value().negative_probes.size(), 0u);
  EXPECT_TRUE(verifier_->Verify(unmatched, bf.value()).ok());
  EXPECT_TRUE(verifier_->Verify(unmatched, bv.value()).ok());
}

TEST_F(JoinTest, FalsePositiveFallsBackToBoundaryProof) {
  // Hunt for a value that false-positives on its partition filter.
  int64_t fp_value = -1;
  for (int64_t v = 11; v < 1000000 && fp_value < 0; ++v) {
    if (std::find(distinct_b_.begin(), distinct_b_.end(), v) !=
        distinct_b_.end())
      continue;
    for (const auto& part : partitions_) {
      if (part.lo_b <= v && v <= part.hi_b) {
        if (part.filter.MayContainInt64(v)) fp_value = v;
        break;
      }
    }
  }
  if (fp_value < 0) GTEST_SKIP() << "no false positive found in probe range";
  auto ans = prover_->Join({fp_value}, JoinMethod::kBloomFilter);
  ASSERT_TRUE(ans.ok());
  EXPECT_EQ(ans.value().absence_proofs.size(), 1u);
  EXPECT_TRUE(ans.value().negative_probes.empty());
  EXPECT_TRUE(verifier_->Verify({fp_value}, ans.value()).ok());
}

TEST_F(JoinTest, DuplicateRValuesDeduplicated) {
  auto ans = prover_->Join({10, 10, 10, 15, 15}, JoinMethod::kBloomFilter);
  ASSERT_TRUE(ans.ok());
  EXPECT_EQ(ans.value().matches.size(), 1u);
  EXPECT_TRUE(verifier_->Verify({10, 10, 10, 15, 15}, ans.value()).ok());
}

// --- Adversarial servers -------------------------------------------------

TEST_F(JoinTest, HiddenMatchRowDetected) {
  auto ans = prover_->Join({10}, JoinMethod::kBloomFilter);
  ASSERT_TRUE(ans.ok());
  auto tampered = ans.value();
  tampered.matches[0].s_records.pop_back();
  EXPECT_FALSE(verifier_->Verify({10}, tampered).ok());
}

TEST_F(JoinTest, ModifiedMatchRowDetected) {
  auto ans = prover_->Join({20}, JoinMethod::kBloomFilter);
  ASSERT_TRUE(ans.ok());
  auto tampered = ans.value();
  tampered.matches[0].s_records[0].attrs[2] = 666;
  EXPECT_FALSE(verifier_->Verify({20}, tampered).ok());
}

TEST_F(JoinTest, ClaimingMatchedValueAbsentDetected) {
  // 20 IS in S. A negative-probe claim must fail because the genuine
  // certified filter contains 20.
  auto ans = prover_->Join({20}, JoinMethod::kBloomFilter);
  ASSERT_TRUE(ans.ok());
  auto tampered = ans.value();
  tampered.matches.clear();
  const CertifiedPartition* part = nullptr;
  for (const auto& p : partitions_) {
    if (p.lo_b <= 20 && 20 <= p.hi_b) part = &p;
  }
  ASSERT_NE(part, nullptr);
  tampered.partitions = {*part};
  tampered.negative_probes = {{20, part->idx}};
  tampered.agg_sig = part->sig;
  EXPECT_FALSE(verifier_->Verify({20}, tampered).ok());
}

TEST_F(JoinTest, ForgedFilterDetected) {
  // The server builds its own (uncertified) empty filter to claim absence.
  auto ans = prover_->Join({20}, JoinMethod::kBloomFilter);
  ASSERT_TRUE(ans.ok());
  auto tampered = ans.value();
  tampered.matches.clear();
  CertifiedPartition forged;
  forged.idx = 77;
  forged.lo_b = 0;
  forged.hi_b = 1000;
  forged.ts = clock_.NowMicros();
  forged.filter = BloomFilter(64, 2);  // empty: probes answer negative
  forged.sig = partitions_[0].sig;     // stolen signature
  tampered.partitions = {forged};
  tampered.negative_probes = {{20, 77}};
  tampered.agg_sig = forged.sig;
  EXPECT_FALSE(verifier_->Verify({20}, tampered).ok());
}

TEST_F(JoinTest, NonBracketingWitnessDetected) {
  auto ans = prover_->Join({15}, JoinMethod::kBoundaryValues);
  ASSERT_TRUE(ans.ok());
  auto tampered = ans.value();
  // Shift the claimed value: witness for 15 cannot prove absence of 25.
  EXPECT_FALSE(verifier_->Verify({25}, tampered).ok());
}

TEST_F(JoinTest, UnaccountedValueDetected) {
  auto ans = prover_->Join({15}, JoinMethod::kBloomFilter);
  ASSERT_TRUE(ans.ok());
  // The verifier expects proofs for both 15 and 25.
  EXPECT_FALSE(verifier_->Verify({15, 25}, ans.value()).ok());
}

TEST_F(JoinTest, PartitionRebuildAfterDeletion) {
  // Deleting B=50 from S requires rebuilding its partition filter.
  const CertifiedPartition* part = nullptr;
  for (const auto& p : partitions_) {
    if (p.lo_b <= 50 && 50 <= p.hi_b) part = &p;
  }
  ASSERT_NE(part, nullptr);
  CertifiedPartition rebuilt = authority_->RebuildPartition(
      *part, /*remaining_values=*/{30}, clock_.NowMicros() + 1);
  EXPECT_FALSE(rebuilt.filter.MayContainInt64(50));
  // The rebuilt filter is certified and usable.
  EXPECT_TRUE(da_->public_key().Verify(rebuilt.SignedMessage().AsSlice(),
                                       rebuilt.sig, HashMode::kFast));
}

TEST_F(JoinTest, DeltaRefreshEquivalentToFullRebuildForInserts) {
  // Insert-only period: merging a small delta filter into the live
  // partition must produce the SAME certified filter as rebuilding from
  // the full value set — bit-identical digest, valid signature, and a
  // verifier verdict indistinguishable from the rebuild path.
  const CertifiedPartition* live = nullptr;
  for (const auto& p : partitions_)
    if (p.lo_b <= 30 && 30 <= p.hi_b) live = &p;
  ASSERT_NE(live, nullptr);  // covers {30, 50}
  const std::vector<int64_t> inserted = {35, 42};

  CertifiedPartition via_delta = *live;
  PartitionDelta delta = authority_->RefreshWithDelta(
      &via_delta, inserted, clock_.NowMicros() + 1);
  CertifiedPartition via_rebuild = authority_->RebuildPartition(
      *live, /*remaining_values=*/{30, 50, 35, 42}, clock_.NowMicros() + 1);

  EXPECT_EQ(via_delta.filter.CertificationDigest(),
            via_rebuild.filter.CertificationDigest());
  EXPECT_EQ(via_delta.filter.bytes(), via_rebuild.filter.bytes());
  // Both certifications verify; the delta's signature covers the
  // POST-merge state, so it is the rebuild's signature contract exactly.
  for (const CertifiedPartition* p : {&via_delta, &via_rebuild}) {
    EXPECT_TRUE(da_->public_key().Verify(p->SignedMessage().AsSlice(), p->sig,
                                         HashMode::kFast));
  }
  EXPECT_TRUE(da_->public_key().Verify(via_delta.SignedMessage().AsSlice(),
                                       delta.sig, HashMode::kFast));
}

TEST_F(JoinTest, ApplyPartitionRefreshMergesDeltasAndReplacesFulls) {
  std::vector<CertifiedPartition> live = partitions_;
  const uint32_t target = live.back().idx;
  CertifiedPartition refreshed = live.back();
  PartitionRefresh refresh;
  refresh.deltas.push_back(authority_->RefreshWithDelta(
      &refreshed, {65}, clock_.NowMicros() + 1));
  ASSERT_TRUE(ApplyPartitionRefresh(refresh, &live));
  EXPECT_EQ(live.back().filter.bytes(), refreshed.filter.bytes());
  EXPECT_EQ(live.back().ts, refreshed.ts);

  // Full rebuilds replace by idx.
  PartitionRefresh full;
  full.full.push_back(authority_->RebuildPartition(
      live.front(), {10}, clock_.NowMicros() + 2));
  ASSERT_TRUE(ApplyPartitionRefresh(full, &live));
  EXPECT_FALSE(live.front().filter.MayContainInt64(20));

  // A delta naming a missing partition or the wrong geometry is a
  // protocol violation, not a silent skip.
  PartitionRefresh missing;
  missing.deltas.push_back(PartitionDelta{});
  missing.deltas.back().idx = 9999;
  EXPECT_FALSE(ApplyPartitionRefresh(missing, &live));
  PartitionRefresh mismatch;
  mismatch.deltas.push_back(PartitionDelta{});
  mismatch.deltas.back().idx = target;
  mismatch.deltas.back().delta = BloomFilter(64, 1);
  EXPECT_FALSE(ApplyPartitionRefresh(mismatch, &live));
}

TEST_F(JoinTest, TamperedDeltaMergedFilterDetected) {
  // The server merges the certified delta but then flips a bit: the
  // signature over the post-merge SignedMessage must fail.
  CertifiedPartition refreshed = partitions_[0];
  authority_->RefreshWithDelta(&refreshed, {15}, clock_.NowMicros() + 1);
  ASSERT_TRUE(da_->public_key().Verify(refreshed.SignedMessage().AsSlice(),
                                       refreshed.sig, HashMode::kFast));
  CertifiedPartition tampered = refreshed;
  tampered.filter.AddInt64(999999);  // extra bits after certification
  EXPECT_FALSE(da_->public_key().Verify(tampered.SignedMessage().AsSlice(),
                                        tampered.sig, HashMode::kFast));
}

TEST_F(JoinTest, VoSizeBfSmallerThanBvWhenMostlyUnmatched) {
  SizeModel sm;
  std::vector<int64_t> unmatched;
  for (int64_t v = 1000; v < 1050; ++v) unmatched.push_back(v);
  auto bf = prover_->Join(unmatched, JoinMethod::kBloomFilter);
  auto bv = prover_->Join(unmatched, JoinMethod::kBoundaryValues);
  ASSERT_TRUE(bf.ok() && bv.ok());
  EXPECT_TRUE(verifier_->Verify(unmatched, bf.value()).ok());
  EXPECT_TRUE(verifier_->Verify(unmatched, bv.value()).ok());
  // All 50 probes hit the rightmost partition; one small filter beats 50
  // boundary-value proofs under wire accounting.
  EXPECT_LT(bf.value().wire_size(sm), bv.value().wire_size(sm));
}

}  // namespace
}  // namespace authdb
