#include "index/merkle.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/random.h"

namespace authdb {
namespace {

std::vector<Digest160> MakeLeaves(size_t n) {
  std::vector<Digest160> out;
  for (size_t i = 0; i < n; ++i)
    out.push_back(Sha1::Hash(Slice("leaf-" + std::to_string(i))));
  return out;
}

TEST(MerkleTreeTest, Figure1Semantics) {
  // Root of 4 messages: h(h(h(m1)|h(m2)) | h(h(m3)|h(m4))).
  auto leaves = MakeLeaves(4);
  MerkleTree tree(leaves);
  Digest160 n12 = Sha1::HashPair(leaves[0], leaves[1]);
  Digest160 n34 = Sha1::HashPair(leaves[2], leaves[3]);
  EXPECT_EQ(tree.root(), Sha1::HashPair(n12, n34));
}

TEST(MerkleTreeTest, SingleLeaf) {
  auto leaves = MakeLeaves(1);
  MerkleTree tree(leaves);
  EXPECT_EQ(tree.root(), leaves[0]);
  auto proof = tree.RangeProof(0, 0);
  EXPECT_TRUE(proof.empty());
  EXPECT_TRUE(MerkleTree::VerifyRange(tree.root(), 1, 0, leaves, proof));
}

TEST(MerkleTreeTest, RangeProofVerifies) {
  auto leaves = MakeLeaves(16);
  MerkleTree tree(leaves);
  for (size_t lo = 0; lo < 16; ++lo) {
    for (size_t hi = lo; hi < 16; ++hi) {
      auto proof = tree.RangeProof(lo, hi);
      std::vector<Digest160> range(leaves.begin() + lo,
                                   leaves.begin() + hi + 1);
      EXPECT_TRUE(
          MerkleTree::VerifyRange(tree.root(), 16, lo, range, proof))
          << lo << ".." << hi;
    }
  }
}

TEST(MerkleTreeTest, NonPowerOfTwoLeafCounts) {
  for (size_t n : {2u, 3u, 5u, 7u, 13u, 100u, 1000u}) {
    auto leaves = MakeLeaves(n);
    MerkleTree tree(leaves);
    size_t lo = n / 3, hi = std::min(n - 1, n / 3 + 4);
    auto proof = tree.RangeProof(lo, hi);
    std::vector<Digest160> range(leaves.begin() + lo,
                                 leaves.begin() + hi + 1);
    EXPECT_TRUE(MerkleTree::VerifyRange(tree.root(), n, lo, range, proof))
        << "n=" << n;
  }
}

TEST(MerkleTreeTest, TamperedLeafRejected) {
  auto leaves = MakeLeaves(16);
  MerkleTree tree(leaves);
  auto proof = tree.RangeProof(4, 7);
  std::vector<Digest160> range(leaves.begin() + 4, leaves.begin() + 8);
  range[1] = Sha1::Hash(Slice(std::string("forged")));
  EXPECT_FALSE(MerkleTree::VerifyRange(tree.root(), 16, 4, range, proof));
}

TEST(MerkleTreeTest, DroppedLeafRejected) {
  auto leaves = MakeLeaves(16);
  MerkleTree tree(leaves);
  auto proof = tree.RangeProof(4, 7);
  std::vector<Digest160> range(leaves.begin() + 4, leaves.begin() + 7);
  EXPECT_FALSE(MerkleTree::VerifyRange(tree.root(), 16, 4, range, proof));
}

TEST(MerkleTreeTest, ShiftedRangeRejected) {
  auto leaves = MakeLeaves(16);
  MerkleTree tree(leaves);
  auto proof = tree.RangeProof(4, 7);
  std::vector<Digest160> range(leaves.begin() + 5, leaves.begin() + 9);
  EXPECT_FALSE(MerkleTree::VerifyRange(tree.root(), 16, 4, range, proof));
  EXPECT_FALSE(MerkleTree::VerifyRange(tree.root(), 16, 5, range, proof));
}

TEST(MerkleTreeTest, TamperedProofRejected) {
  auto leaves = MakeLeaves(16);
  MerkleTree tree(leaves);
  auto proof = tree.RangeProof(4, 7);
  ASSERT_FALSE(proof.empty());
  proof[0].bytes[0] ^= 1;
  std::vector<Digest160> range(leaves.begin() + 4, leaves.begin() + 8);
  EXPECT_FALSE(MerkleTree::VerifyRange(tree.root(), 16, 4, range, proof));
}

TEST(MerkleTreeTest, UpdateLeafChangesRootAndPathLength) {
  auto leaves = MakeLeaves(1024);
  MerkleTree tree(leaves);
  Digest160 old_root = tree.root();
  size_t ops = tree.UpdateLeaf(512, Sha1::Hash(Slice(std::string("new"))));
  EXPECT_EQ(ops, 10u);  // log2(1024)
  EXPECT_NE(tree.root(), old_root);
  // Proof for the updated leaf verifies against the new root.
  auto proof = tree.RangeProof(512, 512);
  EXPECT_TRUE(MerkleTree::VerifyRange(
      tree.root(), 1024, 512, {Sha1::Hash(Slice(std::string("new")))}, proof));
  // And the old root no longer accepts it (freshness-by-resigning logic).
  EXPECT_FALSE(MerkleTree::VerifyRange(
      old_root, 1024, 512, {Sha1::Hash(Slice(std::string("new")))}, proof));
}

TEST(MerkleTreeTest, ProofSizeIsLogarithmic) {
  auto leaves = MakeLeaves(1 << 12);
  MerkleTree tree(leaves);
  // Point proof needs ~log2(n) digests.
  EXPECT_LE(tree.RangeProofSize(100, 100), 12u);
  // Wide ranges need fewer proof digests than narrow ones combined.
  EXPECT_LT(tree.RangeProofSize(0, (1 << 12) - 1), 2u);
}

TEST(MerkleTreeTest, RandomRangesRoundtrip) {
  Rng rng(3);
  auto leaves = MakeLeaves(777);
  MerkleTree tree(leaves);
  for (int trial = 0; trial < 100; ++trial) {
    size_t lo = rng.Uniform(777);
    size_t hi = std::min<size_t>(776, lo + rng.Uniform(50));
    auto proof = tree.RangeProof(lo, hi);
    std::vector<Digest160> range(leaves.begin() + lo,
                                 leaves.begin() + hi + 1);
    EXPECT_TRUE(MerkleTree::VerifyRange(tree.root(), 777, lo, range, proof));
  }
}

TEST(MerkleTreeTest, WrongCapacityRejected) {
  // A leaf count implying a different tree capacity changes the recursion
  // shape and must fail. (Counts within the same power-of-two capacity are
  // indistinguishable at this layer; the EMB root signature covers the
  // exact n_leaves to close that gap — see EmbTree::RootMessage.)
  auto leaves = MakeLeaves(100);
  MerkleTree tree(leaves);
  auto proof = tree.RangeProof(10, 12);
  std::vector<Digest160> range(leaves.begin() + 10, leaves.begin() + 13);
  EXPECT_FALSE(MerkleTree::VerifyRange(tree.root(), 300, 10, range, proof));
  EXPECT_FALSE(MerkleTree::VerifyRange(tree.root(), 64, 10, range, proof));
}

}  // namespace
}  // namespace authdb
