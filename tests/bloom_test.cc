#include "crypto/bloom.h"

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "common/random.h"

namespace authdb {
namespace {

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter bf(8 * 1024, 5);
  for (int64_t k = 0; k < 1000; ++k) bf.AddInt64(k * 7 + 1);
  for (int64_t k = 0; k < 1000; ++k) EXPECT_TRUE(bf.MayContainInt64(k * 7 + 1));
}

TEST(BloomFilterTest, FalsePositiveRateNearExpected) {
  const size_t kKeys = 2000;
  const double kBitsPerKey = 8.0;
  BloomFilter bf = BloomFilter::WithBitsPerKey(kKeys, kBitsPerKey);
  for (size_t k = 0; k < kKeys; ++k) bf.AddInt64(static_cast<int64_t>(k));
  size_t fp = 0;
  const size_t kProbes = 20000;
  for (size_t k = 0; k < kProbes; ++k) {
    if (bf.MayContainInt64(static_cast<int64_t>(1000000 + k))) ++fp;
  }
  double rate = static_cast<double>(fp) / kProbes;
  double expected =
      BloomFilter::ExpectedFpRate(bf.bit_count(), kKeys, bf.hash_count());
  // Within 3x of the analytic estimate (generous; randomness).
  EXPECT_LT(rate, expected * 3 + 0.01);
  EXPECT_GT(rate, 0.0);  // at 8 bits/key some false positives are expected
}

TEST(BloomFilterTest, Formula1MatchesPaperConstant) {
  // Paper Section 3.5: m = 8 * IB bits per key gives FP = 0.0216.
  EXPECT_NEAR(BloomFilter::OptimalFpRate(8.0), 0.0216, 0.001);
}

TEST(BloomFilterTest, EmptyFilterContainsNothing) {
  BloomFilter bf(1024, 4);
  for (int64_t k = 0; k < 100; ++k) EXPECT_FALSE(bf.MayContainInt64(k));
}

TEST(BloomFilterTest, ClearResets) {
  BloomFilter bf(1024, 4);
  bf.AddInt64(42);
  EXPECT_TRUE(bf.MayContainInt64(42));
  bf.Clear();
  EXPECT_FALSE(bf.MayContainInt64(42));
  EXPECT_EQ(bf.ones(), 0u);
}

TEST(BloomFilterTest, CertificationDigestDetectsTampering) {
  BloomFilter a(1024, 4), b(1024, 4);
  a.AddInt64(1);
  b.AddInt64(2);
  EXPECT_NE(a.CertificationDigest(), b.CertificationDigest());
  BloomFilter c(1024, 4);
  c.AddInt64(1);
  EXPECT_EQ(a.CertificationDigest(), c.CertificationDigest());
}

TEST(BloomFilterTest, WithBitsPerKeyChoosesOptimalK) {
  BloomFilter bf = BloomFilter::WithBitsPerKey(1000, 8.0);
  // k = 8 * ln2 = 5.5 -> 6
  EXPECT_EQ(bf.hash_count(), 6);
  EXPECT_GE(bf.bit_count(), 8000u);
}

TEST(BloomFilterTest, StringAndIntKeysIndependent) {
  BloomFilter bf(4096, 4);
  std::string key = "hello";
  bf.Add(Slice(key));
  EXPECT_TRUE(bf.MayContain(Slice(key)));
}

}  // namespace
}  // namespace authdb
