#include "crypto/bloom.h"

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace authdb {
namespace {

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter bf(8 * 1024, 5);
  for (int64_t k = 0; k < 1000; ++k) bf.AddInt64(k * 7 + 1);
  for (int64_t k = 0; k < 1000; ++k) EXPECT_TRUE(bf.MayContainInt64(k * 7 + 1));
}

TEST(BloomFilterTest, FalsePositiveRateNearExpected) {
  const size_t kKeys = 2000;
  const double kBitsPerKey = 8.0;
  BloomFilter bf = BloomFilter::WithBitsPerKey(kKeys, kBitsPerKey);
  for (size_t k = 0; k < kKeys; ++k) bf.AddInt64(static_cast<int64_t>(k));
  size_t fp = 0;
  const size_t kProbes = 20000;
  for (size_t k = 0; k < kProbes; ++k) {
    if (bf.MayContainInt64(static_cast<int64_t>(1000000 + k))) ++fp;
  }
  double rate = static_cast<double>(fp) / kProbes;
  double expected =
      BloomFilter::ExpectedFpRate(bf.bit_count(), kKeys, bf.hash_count());
  // Within 3x of the analytic estimate (generous; randomness).
  EXPECT_LT(rate, expected * 3 + 0.01);
  EXPECT_GT(rate, 0.0);  // at 8 bits/key some false positives are expected
}

TEST(BloomFilterTest, Formula1MatchesPaperConstant) {
  // Paper Section 3.5: m = 8 * IB bits per key gives FP = 0.0216.
  EXPECT_NEAR(BloomFilter::OptimalFpRate(8.0), 0.0216, 0.001);
}

TEST(BloomFilterTest, EmptyFilterContainsNothing) {
  BloomFilter bf(1024, 4);
  for (int64_t k = 0; k < 100; ++k) EXPECT_FALSE(bf.MayContainInt64(k));
}

TEST(BloomFilterTest, ClearResets) {
  BloomFilter bf(1024, 4);
  bf.AddInt64(42);
  EXPECT_TRUE(bf.MayContainInt64(42));
  bf.Clear();
  EXPECT_FALSE(bf.MayContainInt64(42));
  EXPECT_EQ(bf.ones(), 0u);
}

TEST(BloomFilterTest, CertificationDigestDetectsTampering) {
  BloomFilter a(1024, 4), b(1024, 4);
  a.AddInt64(1);
  b.AddInt64(2);
  EXPECT_NE(a.CertificationDigest(), b.CertificationDigest());
  BloomFilter c(1024, 4);
  c.AddInt64(1);
  EXPECT_EQ(a.CertificationDigest(), c.CertificationDigest());
}

TEST(BloomFilterTest, WithBitsPerKeyChoosesOptimalK) {
  BloomFilter bf = BloomFilter::WithBitsPerKey(1000, 8.0);
  // k = 8 * ln2 = 5.5 -> 6
  EXPECT_EQ(bf.hash_count(), 6);
  EXPECT_GE(bf.bit_count(), 8000u);
}

TEST(BloomFilterTest, StringAndIntKeysIndependent) {
  BloomFilter bf(4096, 4);
  std::string key = "hello";
  bf.Add(Slice(key));
  EXPECT_TRUE(bf.MayContain(Slice(key)));
}

// Randomized blocked-vs-reference equivalence: against an exact set, the
// blocked filter must never answer a false negative, and its measured FP
// rate on absent keys must stay within the configured bits-per-value
// bound (blocked layouts pay a small FP penalty over the flat optimum;
// the 3x + 1% band absorbs it).
TEST(BloomFilterTest, RandomizedNoFalseNegativesVsReferenceSet) {
  Rng rng(0xb10cf11e);
  const size_t kKeys = 5000;
  BloomFilter bf = BloomFilter::WithBitsPerKey(kKeys, 8.0);
  std::set<int64_t> reference;
  while (reference.size() < kKeys) {
    int64_t key = static_cast<int64_t>(rng.Next());
    reference.insert(key);
    bf.AddInt64(key);
  }
  for (int64_t key : reference) EXPECT_TRUE(bf.MayContainInt64(key));
  size_t fp = 0, probes = 0;
  while (probes < 20000) {
    int64_t key = static_cast<int64_t>(rng.Next());
    if (reference.count(key)) continue;
    ++probes;
    if (bf.MayContainInt64(key)) ++fp;
  }
  double rate = static_cast<double>(fp) / probes;
  double expected =
      BloomFilter::ExpectedFpRate(bf.bit_count(), kKeys, bf.hash_count());
  EXPECT_LT(rate, expected * 3 + 0.01);
}

TEST(BloomFilterTest, ProbeManyMatchesScalarProbes) {
  Rng rng(0x9a7cf);
  BloomFilter bf = BloomFilter::WithBitsPerKey(2000, 8.0);
  for (size_t i = 0; i < 2000; ++i)
    bf.AddInt64(static_cast<int64_t>(rng.Next() % 100000));
  // Mixed present/absent probes, including tile-boundary sizes.
  for (size_t n : {0u, 1u, 31u, 32u, 33u, 1000u}) {
    std::vector<int64_t> keys(n);
    for (size_t i = 0; i < n; ++i)
      keys[i] = static_cast<int64_t>(rng.Next() % 200000);
    std::vector<uint8_t> out(n, 0xee);
    bf.ProbeMany(keys.data(), n, out.data());
    for (size_t i = 0; i < n; ++i)
      EXPECT_EQ(out[i] != 0, bf.MayContainInt64(keys[i])) << "key " << i;
  }
}

TEST(BloomFilterTest, ProbeManyOnEmptyFilterAllNegative) {
  BloomFilter empty;
  std::vector<int64_t> keys = {1, 2, 3, 4};
  std::vector<uint8_t> out(keys.size(), 0xee);
  empty.ProbeMany(keys.data(), keys.size(), out.data());
  for (uint8_t v : out) EXPECT_EQ(v, 0);
}

TEST(BloomFilterTest, MergeIsBitwiseOrOfBitArrays) {
  BloomFilter a(2048, 4), b(2048, 4);
  for (int64_t k = 0; k < 100; ++k) a.AddInt64(k);
  for (int64_t k = 50; k < 150; ++k) b.AddInt64(k);
  BloomFilter merged = a;
  ASSERT_TRUE(merged.Merge(b));
  for (size_t i = 0; i < merged.byte_size(); ++i)
    EXPECT_EQ(merged.bytes()[i], a.bytes()[i] | b.bytes()[i]);
  for (int64_t k = 0; k < 150; ++k) EXPECT_TRUE(merged.MayContainInt64(k));
}

TEST(BloomFilterTest, MergeAssociativeCommutativeIdempotent) {
  BloomFilter a(2048, 4), b(2048, 4), c(2048, 4);
  for (int64_t k = 0; k < 60; ++k) a.AddInt64(k * 3);
  for (int64_t k = 0; k < 60; ++k) b.AddInt64(k * 5 + 1);
  for (int64_t k = 0; k < 60; ++k) c.AddInt64(k * 7 + 2);
  BloomFilter ab_c = a;
  ASSERT_TRUE(ab_c.Merge(b));
  ASSERT_TRUE(ab_c.Merge(c));
  BloomFilter bc = b;
  ASSERT_TRUE(bc.Merge(c));
  BloomFilter a_bc = a;
  ASSERT_TRUE(a_bc.Merge(bc));
  EXPECT_EQ(ab_c.bytes(), a_bc.bytes());  // associative
  BloomFilter ba = b;
  ASSERT_TRUE(ba.Merge(a));
  BloomFilter ab = a;
  ASSERT_TRUE(ab.Merge(b));
  EXPECT_EQ(ab.bytes(), ba.bytes());  // commutative
  BloomFilter aa = a;
  ASSERT_TRUE(aa.Merge(a));
  EXPECT_EQ(aa.bytes(), a.bytes());  // idempotent
}

TEST(BloomFilterTest, MergeGeometryAndEmptyCases) {
  BloomFilter a(2048, 4), wrong_m(1024, 4), wrong_k(2048, 3);
  a.AddInt64(7);
  BloomFilter target = a;
  EXPECT_FALSE(target.Merge(wrong_m));
  EXPECT_FALSE(target.Merge(wrong_k));
  EXPECT_EQ(target.bytes(), a.bytes());  // untouched on mismatch
  BloomFilter empty;
  EXPECT_TRUE(target.Merge(empty));  // merging empty: no-op
  EXPECT_EQ(target.bytes(), a.bytes());
  BloomFilter from_empty;
  EXPECT_TRUE(from_empty.Merge(a));  // merging INTO empty: copy
  EXPECT_EQ(from_empty.bytes(), a.bytes());
  EXPECT_TRUE(from_empty.SameGeometry(a));
}

TEST(DoubleBufferedBloomTest, ShadowMergeInvisibleUntilSwitch) {
  BloomFilter initial(2048, 4);
  initial.AddInt64(1);
  DoubleBufferedBloom pair(initial);
  BloomFilter delta(2048, 4);
  delta.AddInt64(2);
  ASSERT_TRUE(pair.MergeIntoShadow(delta));
  // Readers of Current see the old generation until the flip.
  EXPECT_TRUE(pair.Current().MayContainInt64(1));
  EXPECT_FALSE(pair.Current().MayContainInt64(2));
  pair.SwitchCurrent();
  EXPECT_TRUE(pair.Current().MayContainInt64(1));
  EXPECT_TRUE(pair.Current().MayContainInt64(2));
  BloomFilter taken = pair.TakeCurrent();
  EXPECT_TRUE(taken.MayContainInt64(2));
}

TEST(BloomFilterTest, CertificationDigestCoversGeometry) {
  // Same insertions, different geometry -> different digests: the signed
  // digest pins (layout, m, k), not just the raw bits.
  BloomFilter a(1024, 4), b(1024, 3);
  a.AddInt64(1);
  b.AddInt64(1);
  EXPECT_NE(a.CertificationDigest(), b.CertificationDigest());
}

}  // namespace
}  // namespace authdb
