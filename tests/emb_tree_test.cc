#include "index/emb_tree.h"

#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

namespace authdb {
namespace {

Record MakeRecord(uint64_t rid, int64_t key, int64_t value, uint64_t ts) {
  Record r;
  r.rid = rid;
  r.ts = ts;
  r.attrs = {key, value, value * 2, value * 3};
  return r;
}

class EmbTreeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(0x1111);
    key_ = new RsaPrivateKey(RsaPrivateKey::Generate(512, &rng));
  }
  void SetUp() override {
    data_dm_ = std::make_unique<DiskManager>("");
    index_dm_ = std::make_unique<DiskManager>("");
    data_pool_ = std::make_unique<BufferPool>(data_dm_.get(), 64);
    index_pool_ = std::make_unique<BufferPool>(index_dm_.get(), 64);
    tree_ = std::make_unique<EmbTree>(data_pool_.get(), index_pool_.get(),
                                      key_, 128);
    std::vector<Record> records;
    for (int64_t k = 0; k < 200; ++k)
      records.push_back(MakeRecord(k, k * 2, k * 100, 1));  // even keys
    ASSERT_TRUE(tree_->BulkLoad(records).ok());
  }

  static RsaPrivateKey* key_;
  std::unique_ptr<DiskManager> data_dm_, index_dm_;
  std::unique_ptr<BufferPool> data_pool_, index_pool_;
  std::unique_ptr<EmbTree> tree_;
};
RsaPrivateKey* EmbTreeTest::key_ = nullptr;

TEST_F(EmbTreeTest, RangeQueryVerifies) {
  auto ans = tree_->RangeQuery(100, 140);
  ASSERT_TRUE(ans.ok());
  EXPECT_EQ(ans.value().records.size(), 21u);
  EXPECT_TRUE(EmbTree::VerifyRange(key_->public_key(), 100, 140, ans.value())
                  .ok());
}

TEST_F(EmbTreeTest, PointQueryVerifies) {
  auto ans = tree_->RangeQuery(50, 50);
  ASSERT_TRUE(ans.ok());
  EXPECT_EQ(ans.value().records.size(), 1u);
  EXPECT_TRUE(
      EmbTree::VerifyRange(key_->public_key(), 50, 50, ans.value()).ok());
}

TEST_F(EmbTreeTest, EmptyRangeStillProvable) {
  auto ans = tree_->RangeQuery(101, 101);  // odd: no match
  ASSERT_TRUE(ans.ok());
  EXPECT_TRUE(ans.value().records.empty());
  EXPECT_TRUE(
      EmbTree::VerifyRange(key_->public_key(), 101, 101, ans.value()).ok());
}

TEST_F(EmbTreeTest, DomainEdgeRanges) {
  auto lo = tree_->RangeQuery(-100, 10);
  ASSERT_TRUE(lo.ok());
  EXPECT_FALSE(lo.value().vo.left_boundary.has_value());
  EXPECT_TRUE(
      EmbTree::VerifyRange(key_->public_key(), -100, 10, lo.value()).ok());
  auto hi = tree_->RangeQuery(390, 10000);
  ASSERT_TRUE(hi.ok());
  EXPECT_FALSE(hi.value().vo.right_boundary.has_value());
  EXPECT_TRUE(
      EmbTree::VerifyRange(key_->public_key(), 390, 10000, hi.value()).ok());
}

TEST_F(EmbTreeTest, DroppedRecordDetected) {
  auto ans = tree_->RangeQuery(100, 140);
  ASSERT_TRUE(ans.ok());
  auto tampered = ans.value();
  tampered.records.erase(tampered.records.begin() + 3);
  EXPECT_FALSE(
      EmbTree::VerifyRange(key_->public_key(), 100, 140, tampered).ok());
}

TEST_F(EmbTreeTest, ModifiedRecordDetected) {
  auto ans = tree_->RangeQuery(100, 140);
  ASSERT_TRUE(ans.ok());
  auto tampered = ans.value();
  tampered.records[2].attrs[1] = 999999;  // fake value
  EXPECT_FALSE(
      EmbTree::VerifyRange(key_->public_key(), 100, 140, tampered).ok());
}

TEST_F(EmbTreeTest, ShrunkBoundaryDetected) {
  // Server tries to hide qualifying records by narrowing with a fake
  // boundary record inside the range.
  auto ans = tree_->RangeQuery(100, 140);
  ASSERT_TRUE(ans.ok());
  auto tampered = ans.value();
  tampered.vo.right_boundary = tampered.records.back();
  tampered.records.pop_back();
  EXPECT_FALSE(
      EmbTree::VerifyRange(key_->public_key(), 100, 140, tampered).ok());
}

TEST_F(EmbTreeTest, UpdatePropagatesToRoot) {
  uint64_t sigs_before = tree_->root_signatures();
  Record updated = MakeRecord(55, 110, 42424242, 2);
  ASSERT_TRUE(tree_->UpdateRecord(updated).ok());
  EXPECT_EQ(tree_->root_signatures(), sigs_before + 1);
  EXPECT_GE(tree_->last_update_digest_ops(), 8u);  // log2(200) = 7.6
  // Fresh query reflects the update and verifies under the new root.
  auto ans = tree_->RangeQuery(110, 110);
  ASSERT_TRUE(ans.ok());
  ASSERT_EQ(ans.value().records.size(), 1u);
  EXPECT_EQ(ans.value().records[0].attrs[1], 42424242);
  EXPECT_TRUE(
      EmbTree::VerifyRange(key_->public_key(), 110, 110, ans.value()).ok());
}

TEST_F(EmbTreeTest, StaleAnswerAfterUpdateRejected) {
  auto stale = tree_->RangeQuery(110, 110);
  ASSERT_TRUE(stale.ok());
  ASSERT_TRUE(tree_->UpdateRecord(MakeRecord(55, 110, 777, 2)).ok());
  // The old answer carries the old root signature; after the update the
  // verifier comparing against it still passes (it was valid then) — but a
  // *mixed* answer (old record, new root signature) must fail.
  auto fresh = tree_->RangeQuery(110, 110);
  ASSERT_TRUE(fresh.ok());
  auto mixed = stale.value();
  mixed.vo.root_sig = fresh.value().vo.root_sig;
  EXPECT_FALSE(
      EmbTree::VerifyRange(key_->public_key(), 110, 110, mixed).ok());
}

TEST_F(EmbTreeTest, InsertAndDelete) {
  ASSERT_TRUE(tree_->InsertRecord(MakeRecord(1000, 101, 5, 3)).ok());
  auto ans = tree_->RangeQuery(100, 102);
  ASSERT_TRUE(ans.ok());
  EXPECT_EQ(ans.value().records.size(), 3u);  // 100, 101, 102
  EXPECT_TRUE(
      EmbTree::VerifyRange(key_->public_key(), 100, 102, ans.value()).ok());

  ASSERT_TRUE(tree_->DeleteRecord(101).ok());
  auto after = tree_->RangeQuery(100, 102);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().records.size(), 2u);
  EXPECT_TRUE(
      EmbTree::VerifyRange(key_->public_key(), 100, 102, after.value()).ok());
}

TEST_F(EmbTreeTest, UpdateUnknownKeyFails) {
  EXPECT_TRUE(tree_->UpdateRecord(MakeRecord(9, 99999, 1, 1)).IsNotFound());
}

TEST_F(EmbTreeTest, VoSizeGrowsWithProof) {
  auto point = tree_->RangeQuery(100, 100);
  auto range = tree_->RangeQuery(0, 398);
  ASSERT_TRUE(point.ok() && range.ok());
  size_t point_size = EmbTree::VoSizeBytes(point.value().vo);
  EXPECT_GT(point_size, 128u);  // at least the root signature
  // A full scan needs almost no sibling digests.
  EXPECT_LT(range.value().vo.proof.size(), point.value().vo.proof.size());
}

}  // namespace
}  // namespace authdb
