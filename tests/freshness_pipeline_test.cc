// End-to-end tests for the streaming freshness pipeline: UpdateStream
// ingest into the sharded server, epoch-stamped answers, the verifier's
// epoch cross-check, and the staleness-attack harness. The suite carries
// the `freshness` and `concurrency` CTest labels — the CI TSan job runs it
// to certify the concurrent ingest path data-race-free.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "core/data_aggregator.h"
#include "core/verifier.h"
#include "server/sharded_query_server.h"
#include "server/update_stream.h"
#include "sim/staleness_attack.h"

namespace authdb {
namespace {

using HashMode = BasContext::HashMode;

TEST(FreshnessTrackerTest, EpochIsLatestSeqPlusOne) {
  FreshnessTracker tracker;
  EXPECT_EQ(tracker.current_epoch(), 0u);
  tracker.Publish(0, 1000);
  EXPECT_EQ(tracker.current_epoch(), 1u);
  EXPECT_EQ(tracker.latest_publish_ts(), 1000u);
  tracker.Publish(1, 2000);
  EXPECT_EQ(tracker.current_epoch(), 2u);
  EXPECT_EQ(tracker.publications(), 2u);
}

TEST(FreshnessTrackerTest, OutOfOrderAndDuplicatesDoNotRegress) {
  FreshnessTracker tracker;
  tracker.Publish(2, 3000);
  tracker.Publish(1, 2000);  // late arrival: counted, epoch unchanged
  tracker.Publish(2, 3000);  // duplicate
  EXPECT_EQ(tracker.current_epoch(), 3u);
  EXPECT_EQ(tracker.latest_publish_ts(), 3000u);
  EXPECT_EQ(tracker.publications(), 3u);
}

class FreshnessPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(0xF00D);
    ctx_ = new std::shared_ptr<const BasContext>(
        BasContext::Generate(96, 64, &rng));
  }

  void SetUp() override {
    clock_.SetMicros(1'000'000);
    rng_ = std::make_unique<Rng>(21);
    MakeDa(/*sign_attributes=*/false);
  }

  /// (Re)create the DA; attribute signing is opt-in per test — it multiplies
  /// every certification's signature count, which matters under TSan.
  void MakeDa(bool sign_attributes) {
    DataAggregator::Options opt;
    opt.record_len = 128;
    opt.piggyback_renewal = false;
    opt.sign_attributes = sign_attributes;
    da_ = std::make_unique<DataAggregator>(*ctx_, &clock_, rng_.get(), opt);
  }

  std::unique_ptr<ShardedQueryServer> MakeServer(size_t shards,
                                                 int64_t n_keys) {
    cfg_ = ServerConfig();
    cfg_.node.record_len = 128;
    cfg_.serving.worker_threads = shards;
    auto server = std::make_unique<ShardedQueryServer>(
        *ctx_, ShardRouter::Uniform(shards, 0, n_keys - 1), cfg_);
    std::vector<Record> records;
    for (int64_t k = 0; k < n_keys; ++k) {
      Record r;
      r.attrs = {k, k * 2};
      records.push_back(r);
    }
    auto stream = da_->BulkLoad(std::move(records));
    EXPECT_TRUE(stream.ok());
    for (const auto& msg : stream.value())
      EXPECT_TRUE(server->ApplyUpdate(msg).ok());
    return server;
  }

  /// Build a sharded server over a composite-keyed S relation (n_b B
  /// values 0, stride, 2*stride, ..., `dups` rows each) with certified
  /// Bloom partitions — the join-serving configuration. stride > 1 leaves
  /// in-range absent values for the filters to answer negatively.
  std::unique_ptr<ShardedQueryServer> MakeJoinServer(size_t shards,
                                                     int64_t n_b,
                                                     uint32_t dups,
                                                     int64_t stride = 1) {
    cfg_ = ServerConfig();
    cfg_.node.record_len = 128;
    cfg_.serving.worker_threads = shards;
    auto server = std::make_unique<ShardedQueryServer>(
        *ctx_,
        ShardRouter::Uniform(shards, 0,
                             JoinCompositeKey((n_b - 1) * stride, dups)),
        cfg_);
    std::vector<Record> records;
    for (int64_t i = 0; i < n_b; ++i) {
      const int64_t b = i * stride;
      for (uint32_t d = 0; d < dups; ++d) {
        Record r;
        r.attrs = {JoinCompositeKey(b, d), b, b * 3};
        records.push_back(r);
      }
    }
    auto stream = da_->BulkLoad(std::move(records));
    EXPECT_TRUE(stream.ok());
    for (const auto& msg : stream.value())
      EXPECT_TRUE(server->ApplyUpdate(msg).ok());
    da_->EnableJoinPartitions(/*values_per_partition=*/4,
                              /*bits_per_value=*/8.0);
    server->SetJoinPartitions(da_->join_partitions());
    return server;
  }

  /// Close the DA's rho-period into the stream: re-certifications first
  /// (they belong to the new period), then the summary — carrying the
  /// period's certified partition refresh, if any — as epoch barrier.
  void StreamPeriod(UpdateStream* stream, uint64_t advance = 1'000'000) {
    clock_.AdvanceMicros(advance);
    DataAggregator::PeriodOutput out = da_->PublishSummary();
    for (const auto& msg : out.recertifications) stream->PushUpdate(msg);
    stream->PushSummary(std::move(out.summary),
                        std::move(out.partition_refresh));
  }

  static std::shared_ptr<const BasContext>* ctx_;
  ManualClock clock_;
  std::unique_ptr<Rng> rng_;
  VarintGapCodec codec_;
  std::unique_ptr<DataAggregator> da_;
  ServerConfig cfg_;  ///< the config MakeServer/MakeJoinServer last used
};
std::shared_ptr<const BasContext>* FreshnessPipelineTest::ctx_ = nullptr;

TEST_F(FreshnessPipelineTest, StreamAppliesUpdatesAndPublishesEpoch) {
  auto server = MakeServer(4, 64);
  UpdateStream stream(server.get(), cfg_);
  StreamPeriod(&stream);  // summary 0 certifies the bulk load
  stream.Flush();
  EXPECT_EQ(server->freshness_tracker().current_epoch(), 1u);

  clock_.AdvanceMicros(250'000);
  for (int64_t key = 0; key < 16; ++key) {  // distinct: no re-certifications
    auto msg = da_->ModifyRecord(key, {key, 5000 + key});
    ASSERT_TRUE(msg.ok());
    stream.PushUpdate(std::move(msg.value()));
  }
  StreamPeriod(&stream);
  stream.Flush();

  EXPECT_EQ(server->freshness_tracker().current_epoch(), 2u);
  ServerMetrics m = stream.Metrics();
  EXPECT_EQ(m.ingest.updates_pushed, 16u);
  EXPECT_EQ(m.ingest.summaries_published, 2u);
  EXPECT_EQ(m.ingest.apply_failures, 0u);
  EXPECT_EQ(m.ingest.pieces_applied, 16u);
  EXPECT_EQ(m.epoch.current, 2u);

  // Answers are stamped with the published epoch and still verify.
  auto ans = server->Select(0, 63);
  ASSERT_TRUE(ans.ok());
  EXPECT_EQ(ans.value().served_epoch, 2u);
  ClientVerifier verifier(&da_->public_key(), &codec_, da_->hash_mode());
  EXPECT_TRUE(verifier
                  .VerifySelectionFresh(0, 63, ans.value(), clock_.NowMicros(),
                                        /*min_epoch=*/2)
                  .ok());
}

TEST_F(FreshnessPipelineTest, BackpressureBoundsQueueDepthWithoutDeadlock) {
  auto server = MakeServer(2, 32);
  ServerConfig scfg = cfg_;
  scfg.ingest.max_queue_depth = 2;
  UpdateStream stream(server.get(), scfg);
  for (int i = 0; i < 50; ++i) {
    int64_t key = static_cast<int64_t>(rng_->Uniform(32));
    auto msg = da_->ModifyRecord(key, {key, i});
    ASSERT_TRUE(msg.ok());
    stream.PushUpdate(std::move(msg.value()));
  }
  stream.Flush();
  ServerMetrics m = stream.Metrics();
  EXPECT_EQ(m.ingest.pieces_applied, 50u);
  EXPECT_LE(m.ingest.queue_depth_max, 2u);
  EXPECT_EQ(m.ingest.apply_failures, 0u);
}

TEST_F(FreshnessPipelineTest, SummaryBarrierWaitsForEveryShard) {
  // A burst touching every shard, then the epoch barrier: when the epoch
  // has advanced, every update pushed before the summary must be visible.
  auto server = MakeServer(4, 64);
  UpdateStream stream(server.get(), cfg_);
  StreamPeriod(&stream);
  stream.Flush();

  clock_.AdvanceMicros(250'000);
  for (int64_t key = 0; key < 64; ++key) {
    auto msg = da_->ModifyRecord(key, {key, 9000 + key});
    ASSERT_TRUE(msg.ok());
    stream.PushUpdate(std::move(msg.value()));
  }
  StreamPeriod(&stream);
  stream.Flush();

  ASSERT_EQ(server->freshness_tracker().current_epoch(), 2u);
  auto ans = server->Select(0, 63);
  ASSERT_TRUE(ans.ok());
  ASSERT_EQ(ans.value().records.size(), 64u);
  for (const Record& r : ans.value().records)
    EXPECT_EQ(r.attrs[1], 9000 + r.key());
}

TEST_F(FreshnessPipelineTest, CloseIsIdempotentAndDrains) {
  auto server = MakeServer(2, 32);
  auto stream = std::make_unique<UpdateStream>(server.get(), cfg_);
  StreamPeriod(stream.get());
  stream->Flush();
  clock_.AdvanceMicros(250'000);
  for (int64_t key = 0; key < 10; ++key) {  // distinct: no re-certifications
    auto msg = da_->ModifyRecord(key, {key, 100 + key});
    ASSERT_TRUE(msg.ok());
    stream->PushUpdate(std::move(msg.value()));
  }
  StreamPeriod(stream.get());
  stream->Close();  // drains the backlog, publishes the pending summary
  stream->Close();  // idempotent
  ServerMetrics m = stream->Metrics();
  EXPECT_EQ(m.ingest.pieces_applied, 10u);
  EXPECT_EQ(m.ingest.summaries_published, 2u);
  stream.reset();  // destructor after explicit Close is a no-op
  EXPECT_EQ(server->freshness_tracker().current_epoch(), 2u);
}

TEST_F(FreshnessPipelineTest, VerifierRejectsStaleEpochClaim) {
  auto server = MakeServer(2, 32);
  ClientVerifier verifier(&da_->public_key(), &codec_, da_->hash_mode());

  // Served before any summary: epoch 0. A client that has seen epoch 1
  // must reject it even though the content is authentic.
  auto ans = server->Select(4, 9);
  ASSERT_TRUE(ans.ok());
  EXPECT_EQ(ans.value().served_epoch, 0u);
  EXPECT_TRUE(verifier
                  .VerifySelectionFresh(4, 9, ans.value(), clock_.NowMicros(),
                                        /*min_epoch=*/1)
                  .IsVerificationFailed());
  // The same answer is fine for a client with no fresher knowledge.
  EXPECT_TRUE(verifier
                  .VerifySelectionFresh(4, 9, ans.value(), clock_.NowMicros(),
                                        /*min_epoch=*/0)
                  .ok());
}

TEST_F(FreshnessPipelineTest, ConcurrentIngestAndEpochVerifiedReads) {
  // Readers verify the live epoch stamp while a writer streams three
  // periods of updates + summaries; run under TSan in CI.
  auto server = MakeServer(4, 128);
  UpdateStream stream(server.get(), cfg_);
  StreamPeriod(&stream);
  stream.Flush();

  std::atomic<bool> done{false};
  std::atomic<size_t> read_failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(700 + t);
      while (!done.load(std::memory_order_relaxed)) {
        int64_t lo = static_cast<int64_t>(rng.Uniform(120));
        auto ans = server->Select(lo, lo + 7);
        if (!ans.ok() || ans.value().served_epoch < 1) ++read_failures;
      }
    });
  }
  for (int period = 0; period < 3; ++period) {
    for (int i = 0; i < 30; ++i) {
      int64_t key = static_cast<int64_t>(rng_->Uniform(128));
      auto msg = da_->ModifyRecord(key, {key, period * 100 + i});
      ASSERT_TRUE(msg.ok());
      stream.PushUpdate(std::move(msg.value()));
    }
    StreamPeriod(&stream);
  }
  stream.Flush();
  done.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(read_failures.load(), 0u);
  EXPECT_EQ(server->freshness_tracker().current_epoch(), 4u);
  // Quiesced: the final state verifies under the final epoch.
  ClientVerifier verifier(&da_->public_key(), &codec_, da_->hash_mode());
  auto ans = server->Select(0, 127);
  ASSERT_TRUE(ans.ok());
  EXPECT_TRUE(verifier
                  .VerifySelectionFresh(0, 127, ans.value(),
                                        clock_.NowMicros(), /*min_epoch=*/4)
                  .ok());
}

TEST_F(FreshnessPipelineTest, CrossSeamChurnServesPinnedSnapshots) {
  // Inserts/deletes at shard seams split into multi-shard pieces; the
  // stream applies each piece to its shard's next-epoch builder and the
  // epoch barrier publishes them together in one atomic descriptor swap.
  // Racing readers pin one descriptor per answer, so no read can ever
  // observe half of a re-chaining — there is no retry protocol left to
  // exercise; every mid-churn answer must pass static verification
  // unconditionally (a torn stitch would mix pre- and post-re-chaining
  // certifications and fail the gapless-chain/aggregate check). Periods
  // close mid-churn so descriptor publication itself races the pinned
  // reads. Run under TSan in CI.
  auto server = MakeServer(4, 64);  // seams at 16, 32, 48
  UpdateStream stream(server.get(), cfg_);
  StreamPeriod(&stream);
  stream.Flush();

  // Snapshot DA accessors before the churn: the reader threads race with
  // the main thread's DeleteRecord/InsertRecord calls on da_.
  const BasPublicKey* da_pub = &da_->public_key();
  const BasContext::HashMode hash_mode = da_->hash_mode();

  std::atomic<bool> done{false};
  std::atomic<size_t> read_errors{0};
  std::atomic<size_t> verify_failures{0};
  std::atomic<size_t> epoch_regressions{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 6; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(900 + t);
      VarintGapCodec codec;
      ClientVerifier verifier(da_pub, &codec, hash_mode);
      uint64_t last_epoch = 0;
      while (!done.load(std::memory_order_relaxed)) {
        int64_t lo = 10 + static_cast<int64_t>(rng.Uniform(40));
        auto ans = server->Select(lo, lo + 12);  // spans a seam
        if (!ans.ok()) {
          ++read_errors;
          continue;
        }
        if (!verifier.VerifySelectionStatic(lo, lo + 12, ans.value()).ok())
          ++verify_failures;
        // Pinned epochs are monotone per reader: descriptor swaps never
        // hand back an older epoch.
        if (ans.value().served_epoch < last_epoch) ++epoch_regressions;
        last_epoch = ans.value().served_epoch;
      }
    });
  }
  const int64_t seams[] = {16, 32, 48};
  for (int round = 0; round < 48; ++round) {
    int64_t key = seams[round % 3];
    auto del = da_->DeleteRecord(key);  // re-chains neighbors across seams
    ASSERT_TRUE(del.ok());
    stream.PushUpdate(std::move(del.value()));
    auto ins = da_->InsertRecord({key, 7000 + round});
    ASSERT_TRUE(ins.ok());
    stream.PushUpdate(std::move(ins.value()));
    // Close a period mid-churn so epoch publication races the readers.
    if (round % 8 == 7) StreamPeriod(&stream, 100'000);
  }
  StreamPeriod(&stream);
  stream.Flush();
  done.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(read_errors.load(), 0u);
  EXPECT_EQ(verify_failures.load(), 0u);
  EXPECT_EQ(epoch_regressions.load(), 0u);
  EXPECT_EQ(stream.Metrics().ingest.apply_failures, 0u);
  // Quiesced: the churned state is complete and verifiable.
  ClientVerifier verifier(&da_->public_key(), &codec_, da_->hash_mode());
  auto ans = server->Select(0, 63);
  ASSERT_TRUE(ans.ok());
  EXPECT_EQ(ans.value().records.size(), 64u);
  EXPECT_TRUE(verifier.VerifySelectionStatic(0, 63, ans.value()).ok());
}

TEST_F(FreshnessPipelineTest, MidPeriodUpdatesInvisibleUntilBarrier) {
  // The epoch-pinned visibility contract: updates streamed after a barrier
  // build the NEXT epoch's copy-on-write snapshots and stay invisible —
  // reads keep serving the published epoch bit-for-bit — until the next
  // summary publishes them atomically. served_epoch is therefore exact,
  // not a lower bound.
  auto server = MakeServer(4, 64);
  UpdateStream stream(server.get(), cfg_);
  StreamPeriod(&stream);  // summary 0 certifies the bulk load
  stream.Flush();

  auto before = server->Select(5, 5);
  ASSERT_TRUE(before.ok());
  const int64_t old_value = before.value().records[0].attrs[1];
  ASSERT_EQ(before.value().served_epoch, 1u);

  clock_.AdvanceMicros(250'000);
  auto msg = da_->ModifyRecord(5, {5, 4242});
  ASSERT_TRUE(msg.ok());
  stream.PushUpdate(std::move(msg.value()));
  stream.Flush();  // applied to the next-epoch builder — not published

  auto mid = server->Select(5, 5);
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(mid.value().served_epoch, 1u);
  EXPECT_EQ(mid.value().records[0].attrs[1], old_value)
      << "mid-period update leaked into the pinned epoch";

  StreamPeriod(&stream);
  stream.Flush();
  auto after = server->Select(5, 5);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().served_epoch, 2u);
  EXPECT_EQ(after.value().records[0].attrs[1], 4242);

  // The pre-barrier answer still verifies for a client at epoch 1 and is
  // rejected by a client that has seen epoch 2's summary (the update's
  // period closed, so the old version is provably superseded).
  ClientVerifier verifier(&da_->public_key(), &codec_, da_->hash_mode());
  uint64_t now = clock_.NowMicros();
  EXPECT_TRUE(
      verifier.VerifySelectionFresh(5, 5, mid.value(), now, 1).ok());
  EXPECT_TRUE(verifier.VerifySelectionFresh(5, 5, mid.value(), now, 2)
                  .IsVerificationFailed());
  EXPECT_TRUE(
      verifier.VerifySelectionFresh(5, 5, after.value(), now, 2).ok());
}

TEST_F(FreshnessPipelineTest, BoundaryProbesServeFromPinnedSnapshot) {
  // A proven-empty answer is assembled entirely from boundary probes; the
  // probes read the same pinned descriptor as the (empty) scan, so churn
  // on the gap's chain neighbors — single-shard deletes/inserts via the
  // direct apply path, which republishes per call — can never produce a
  // predecessor whose refreshed signature binds a different successor
  // than the one the answer cites. Every mid-churn answer verifies.
  // Run under TSan in CI.
  auto server = MakeServer(2, 64);
  // Carve a gap interior to shard 0 so Select(25, 26) is a proven-empty
  // answer assembled entirely from probes.
  for (int64_t key = 24; key <= 27; ++key) {
    auto del = da_->DeleteRecord(key);
    ASSERT_TRUE(del.ok());
    ASSERT_TRUE(server->ApplyUpdate(del.value()).ok());
  }
  const BasPublicKey* da_pub = &da_->public_key();
  const BasContext::HashMode hash_mode = da_->hash_mode();

  std::atomic<bool> done{false};
  std::atomic<size_t> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      VarintGapCodec codec;
      ClientVerifier verifier(da_pub, &codec, hash_mode);
      while (!done.load(std::memory_order_relaxed)) {
        auto ans = server->Select(25, 26);
        if (!ans.ok() ||
            !verifier.VerifySelectionStatic(25, 26, ans.value()).ok())
          ++failures;
      }
    });
  }
  for (int round = 0; round < 48; ++round) {
    int64_t key = (round % 2 == 0) ? 23 : 28;
    auto del = da_->DeleteRecord(key);
    ASSERT_TRUE(del.ok());
    ASSERT_TRUE(server->ApplyUpdate(del.value()).ok());
    auto ins = da_->InsertRecord({key, 9000 + round});
    ASSERT_TRUE(ins.ok());
    ASSERT_TRUE(server->ApplyUpdate(ins.value()).ok());
  }
  done.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(failures.load(), 0u);
}

TEST_F(FreshnessPipelineTest, MultiUpdateRecertifiedAcrossConsecutivePeriods) {
  // Section 3.1 granularity rule: two updates to one record inside a
  // rho-period leave the intermediate version undetectable by that
  // period's summary alone; closing the period therefore re-certifies the
  // record in the next period, whose summary then invalidates every
  // pre-recert version — the 2*rho staleness bound, across two
  // consecutive periods.
  auto server = MakeServer(2, 16);
  UpdateStream stream(server.get(), cfg_);
  StreamPeriod(&stream);  // summary 0 certifies the bulk load
  stream.Flush();

  clock_.AdvanceMicros(250'000);
  auto v1 = da_->ModifyRecord(7, {7, 100});
  ASSERT_TRUE(v1.ok());
  stream.PushUpdate(v1.value());
  clock_.AdvanceMicros(250'000);
  auto v2 = da_->ModifyRecord(7, {7, 200});
  ASSERT_TRUE(v2.ok());
  stream.PushUpdate(v2.value());

  // Close period 1: the summary marks rid 7, and the DA re-certifies the
  // multi-updated record into period 2.
  clock_.AdvanceMicros(500'000);
  DataAggregator::PeriodOutput p1 = da_->PublishSummary();
  ASSERT_EQ(p1.recertifications.size(), 1u);
  ASSERT_EQ(p1.recertifications[0].recertified.size(), 1u);
  EXPECT_EQ(p1.recertifications[0].recertified[0].record.key(), 7);
  for (const auto& msg : p1.recertifications) stream.PushUpdate(msg);
  stream.PushSummary(p1.summary);
  stream.Flush();

  ClientVerifier verifier(&da_->public_key(), &codec_, da_->hash_mode());
  uint64_t now = clock_.NowMicros();
  // Prime the checker through a live answer (carries summaries 0..1).
  auto live = server->Select(7, 7);
  ASSERT_TRUE(live.ok());
  ASSERT_TRUE(verifier.VerifySelection(7, 7, live.value(), now).ok());
  // After summary 1 alone, the intermediate version v1 hides inside its own
  // period's mark — not yet provably stale (the 2*rho window).
  Record v1_rec = v1.value().record->record;
  EXPECT_TRUE(
      verifier.freshness().CheckRecord(v1_rec.rid, v1_rec.ts, now).ok());

  // Close period 2 (no new updates): its summary carries the
  // re-certification mark; v1 and v2 both become provably stale while the
  // re-certified current version stays fresh.
  clock_.AdvanceMicros(1'000'000);
  DataAggregator::PeriodOutput p2 = da_->PublishSummary();
  EXPECT_TRUE(p2.recertifications.empty());  // no carryover past one period
  stream.PushSummary(p2.summary);
  stream.Flush();
  now = clock_.NowMicros();
  ASSERT_TRUE(verifier.freshness().AddSummary(p2.summary).ok());
  Record v2_rec = v2.value().record->record;
  EXPECT_TRUE(verifier.freshness()
                  .CheckRecord(v1_rec.rid, v1_rec.ts, now)
                  .IsVerificationFailed());
  EXPECT_TRUE(verifier.freshness()
                  .CheckRecord(v2_rec.rid, v2_rec.ts, now)
                  .IsVerificationFailed());
  auto current = server->Select(7, 7);
  ASSERT_TRUE(current.ok());
  EXPECT_TRUE(verifier
                  .VerifySelectionFresh(7, 7, current.value(), now,
                                        /*min_epoch=*/3)
                  .ok());
}

TEST_F(FreshnessPipelineTest, JoinChurnAcrossSeamsServesVerifiableAnswers) {
  // The unified path under seam churn: readers execute join *and
  // projection* plans spanning the shard seams while the stream applies
  // seam-re-chaining deletes and inserts of the probed B values — plus
  // periodic certified partition refreshes riding the epoch barriers
  // mid-flight. Every plan kind pins ONE epoch descriptor — scans, match
  // groups, witnesses, boundary probes, and the Bloom partitions all come
  // from the same published cut — so every mid-churn answer must pass the
  // unmodified static verification unconditionally: a torn join would mix
  // chain generations inside its deduplicated aggregate and a torn
  // projection spine would cite a superseded digest, failing the
  // signature check either way. Run under TSan in CI.
  MakeDa(/*sign_attributes=*/true);  // projections need attribute sigs
  auto server = MakeJoinServer(4, 64, 2);
  UpdateStream stream(server.get(), cfg_);
  StreamPeriod(&stream);
  stream.Flush();

  const BasPublicKey* da_pub = &da_->public_key();
  const BasContext::HashMode hash_mode = da_->hash_mode();

  // B values owning the first key of shards 1..3: deleting / re-inserting
  // their first duplicate re-chains records across the seam.
  std::vector<int64_t> seam_bs;
  for (size_t s = 1; s < server->shard_count(); ++s)
    seam_bs.push_back(JoinBValue(server->router().lower_bound_of(s)));

  std::atomic<bool> done{false};
  std::atomic<size_t> read_errors{0};
  std::atomic<size_t> verify_failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 6; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(1500 + t);
      VarintGapCodec codec;
      ClientVerifier verifier(da_pub, &codec, hash_mode);
      bool project = false;
      while (!done.load(std::memory_order_relaxed)) {
        int64_t b = seam_bs[rng.Uniform(seam_bs.size())];
        project = !project;
        if (project) {
          // A projection whose range straddles the churned seam.
          Query q = Query::Project(JoinCompositeKey(b - 2, 0),
                                   JoinCompositeKey(b + 2, kJoinMaxDup),
                                   {1});
          auto ans = server->Execute(q);
          if (!ans.ok()) {
            ++read_errors;
            continue;
          }
          if (!verifier.VerifyProjectionStatic(q, ans.value().projection)
                   .ok())
            ++verify_failures;
          continue;
        }
        // Matched neighbors, the churned value itself, and a far-away
        // absent value: match groups, witnesses, and filter probes in one
        // plan, straddling the seam.
        Query q = Query::Join({b - 1, b, b + 1, b + 100},
                              rng.Uniform(2) == 0
                                  ? JoinMethod::kBloomFilter
                                  : JoinMethod::kBoundaryValues);
        auto ans = server->Execute(q);
        if (!ans.ok()) {
          ++read_errors;
          continue;
        }
        if (!verifier.VerifyJoinStatic(q, ans.value().join).ok())
          ++verify_failures;
      }
    });
  }
  for (int round = 0; round < 48; ++round) {
    int64_t key =
        JoinCompositeKey(seam_bs[round % seam_bs.size()], 0);
    auto del = da_->DeleteRecord(key);
    ASSERT_TRUE(del.ok());
    stream.PushUpdate(std::move(del.value()));
    auto ins = da_->InsertRecord({key, JoinBValue(key), 7000 + round});
    ASSERT_TRUE(ins.ok());
    stream.PushUpdate(std::move(ins.value()));
    // Periodically close a rho-period mid-churn so certified partition
    // refreshes race the join reads' partition snapshots.
    if (round % 8 == 7) StreamPeriod(&stream, 100'000);
  }
  StreamPeriod(&stream);
  stream.Flush();
  done.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(read_errors.load(), 0u);
  EXPECT_EQ(verify_failures.load(), 0u);
  EXPECT_EQ(stream.Metrics().ingest.apply_failures, 0u);
  // Quiesced: a join and a projection verify *fresh* under the final
  // published epoch.
  VarintGapCodec codec;
  ClientVerifier verifier(&da_->public_key(), &codec, da_->hash_mode());
  const uint64_t epoch = server->freshness_tracker().current_epoch();
  Query qj = Query::Join({seam_bs[0], seam_bs[0] + 100});
  auto jans = server->Execute(qj);
  ASSERT_TRUE(jans.ok());
  EXPECT_EQ(jans.value().served_epoch, epoch);
  EXPECT_TRUE(
      verifier.VerifyAnswerFresh(qj, jans.value(), clock_.NowMicros(), epoch)
          .ok());
  Query qp = Query::Project(JoinCompositeKey(seam_bs[0] - 2, 0),
                            JoinCompositeKey(seam_bs[0] + 2, kJoinMaxDup),
                            {1});
  auto pans = server->Execute(qp);
  ASSERT_TRUE(pans.ok());
  EXPECT_EQ(pans.value().served_epoch, epoch);
  EXPECT_TRUE(
      verifier.VerifyAnswerFresh(qp, pans.value(), clock_.NowMicros(), epoch)
          .ok());
}

TEST_F(FreshnessPipelineTest, BloomProbesRaceDeltaRefreshAtEpochBarrier) {
  // Insert-only churn: every rho-period's partition refresh arrives as
  // pure delta merges, installed double-buffered at the epoch barrier
  // (merge onto a copy, publish via the descriptor swap). Readers hammer
  // Bloom-method joins — batched ProbeMany against the pinned
  // descriptor's filters — while barriers swap refreshed filters in. A
  // reader on a pinned epoch must never observe a half-merged filter, so
  // every mid-refresh answer passes the unmodified static verification:
  // a torn filter would flip a negative probe into a signed-digest
  // mismatch. Run under TSan in CI.
  auto server = MakeJoinServer(4, 32, 2, /*stride=*/2);  // B: even 0..62
  UpdateStream stream(server.get(), cfg_);
  StreamPeriod(&stream);
  stream.Flush();

  const BasPublicKey* da_pub = &da_->public_key();
  const BasContext::HashMode hash_mode = da_->hash_mode();

  std::atomic<bool> done{false};
  std::atomic<size_t> read_errors{0};
  std::atomic<size_t> verify_failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(2100 + t);
      VarintGapCodec codec;
      ClientVerifier verifier(da_pub, &codec, hash_mode);
      while (!done.load(std::memory_order_relaxed)) {
        // A present even value, its odd neighbor (in-range: the filter
        // answers it — absent until its insert publishes, matched after),
        // and a far out-of-range value (boundary witness): match groups,
        // batched negative probes, and witnesses in one plan.
        int64_t b = 2 * static_cast<int64_t>(rng.Uniform(30));
        Query q =
            Query::Join({b, b + 1, b + 1000}, JoinMethod::kBloomFilter);
        auto ans = server->Execute(q);
        if (!ans.ok()) {
          ++read_errors;
          continue;
        }
        if (!verifier.VerifyJoinStatic(q, ans.value().join).ok())
          ++verify_failures;
      }
    });
  }
  for (int round = 0; round < 24; ++round) {
    // Insert a brand-new odd B value inside a certified partition's
    // range: the next barrier's refresh merges it as a delta.
    const int64_t b = 2 * round + 1;
    auto ins = da_->InsertRecord({JoinCompositeKey(b, 0), b, 7000 + round});
    ASSERT_TRUE(ins.ok());
    stream.PushUpdate(std::move(ins.value()));
    if (round % 6 == 5) StreamPeriod(&stream, 100'000);
  }
  StreamPeriod(&stream);
  stream.Flush();
  done.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(read_errors.load(), 0u);
  EXPECT_EQ(verify_failures.load(), 0u);
  ServerMetrics m = stream.Metrics();
  EXPECT_EQ(m.ingest.apply_failures, 0u);
  // The refreshes really took the delta path (insert-only periods), on
  // top of the initial SetJoinPartitions full install; the readers'
  // probes really went through the batched filter path.
  EXPECT_GT(m.exec.bloom_delta_merges, 0u);
  EXPECT_GT(m.exec.bloom_full_rebuilds, 0u);

  // Quiesced: the inserted odd values are now match groups, a
  // never-inserted in-range value goes through the batched filter probe,
  // and the whole answer verifies fresh under the final epoch.
  VarintGapCodec codec;
  ClientVerifier verifier(&da_->public_key(), &codec, da_->hash_mode());
  const uint64_t epoch = server->freshness_tracker().current_epoch();
  Query q = Query::Join({1, 2, 49, 1001}, JoinMethod::kBloomFilter);
  auto ans = server->Execute(q);
  ASSERT_TRUE(ans.ok());
  EXPECT_TRUE(
      verifier.VerifyAnswerFresh(q, ans.value(), clock_.NowMicros(), epoch)
          .ok());
  EXPECT_GT(stream.Metrics().exec.bloom_probes, 0u);
}

TEST_F(FreshnessPipelineTest, StalenessAttackJoinReplaysCaught) {
  // Acceptance criterion: replayed stale *join* answers are rejected 100%
  // — with the full check and with the epoch stamp ignored (bitmap walk
  // over the match rows alone) — while honest joins racing the ingest and
  // the post-period re-joins all verify.
  StalenessAttackOptions opt;
  opt.shards = 4;
  opt.periods = 3;
  opt.n_records = 128;
  opt.victims_per_period = 6;
  opt.extra_updates_per_period = 12;
  opt.reader_threads = 2;
  opt.reads_per_reader = 20;
  opt.join_replays_per_period = 4;
  StalenessAttackReport report = RunStalenessAttack(*ctx_, opt);

  EXPECT_EQ(report.periods_run, 3u);
  EXPECT_EQ(report.join_replayed_answers, 12u);
  EXPECT_EQ(report.join_replays_rejected, report.join_replayed_answers);
  EXPECT_EQ(report.join_replays_rejected_bitmap_only,
            report.join_replayed_answers);
  EXPECT_EQ(report.join_replays_stale_rid_flagged,
            report.join_replayed_answers);
  EXPECT_EQ(report.join_honest_accepted, report.join_honest_answers);
  EXPECT_GT(report.join_honest_answers, 0u);
  // The selection-side guarantees hold unchanged in join mode.
  EXPECT_EQ(report.replays_rejected, report.replayed_answers);
  EXPECT_EQ(report.replays_rejected_bitmap_only, report.replayed_answers);
  EXPECT_EQ(report.honest_accepted, report.honest_answers);
  EXPECT_TRUE(report.Clean());
}

TEST_F(FreshnessPipelineTest, StalenessAttackAllReplaysCaught) {
  // Acceptance criterion: across >= 3 rho-periods on 4 shards with
  // concurrent ingest, the verifier rejects 100% of replayed answers and
  // accepts every honest one.
  StalenessAttackOptions opt;
  opt.shards = 4;
  opt.periods = 3;
  opt.n_records = 128;
  opt.victims_per_period = 6;
  opt.extra_updates_per_period = 12;
  opt.reader_threads = 2;
  opt.reads_per_reader = 20;
  StalenessAttackReport report = RunStalenessAttack(*ctx_, opt);

  EXPECT_EQ(report.periods_run, 3u);
  EXPECT_EQ(report.replayed_answers, 18u);
  EXPECT_EQ(report.replays_rejected, report.replayed_answers);
  EXPECT_EQ(report.replays_rejected_bitmap_only, report.replayed_answers);
  EXPECT_EQ(report.replays_stale_rid_flagged, report.replayed_answers);
  // Mixed-generation splices (old-epoch chain + newer summary): both the
  // stamp-consistent and the stamp-forged variant are rejected 100%, even
  // by a verifier holding nothing beyond the answer's own evidence.
  EXPECT_EQ(report.mixed_generation_answers, 2 * report.replayed_answers);
  EXPECT_EQ(report.mixed_generation_rejected,
            report.mixed_generation_answers);
  EXPECT_EQ(report.honest_accepted, report.honest_answers);
  EXPECT_GT(report.honest_answers, 0u);
  EXPECT_EQ(report.final_epoch, 4u);  // bulk summary + 3 periods
  EXPECT_TRUE(report.Clean());
}

}  // namespace
}  // namespace authdb
