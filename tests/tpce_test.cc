#include "workload/tpce.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "core/join.h"

namespace authdb {
namespace {

TpceJoinWorkload::Config SmallConfig() {
  TpceJoinWorkload::Config cfg;
  cfg.scale_divisor = 16;  // 428 R rows, 55875 S rows, 214 distinct B
  return cfg;
}

TEST(TpceJoinWorkloadTest, ScaledCardinalitiesMatchThePaper) {
  TpceJoinWorkload wl(SmallConfig());
  EXPECT_EQ(wl.nr(), 6850u / 16);
  EXPECT_EQ(wl.ns(), 894'000u / 16);
  EXPECT_EQ(wl.ib(), 3425u / 16);
  EXPECT_EQ(wl.distinct_b().size(), wl.ib());
}

TEST(TpceJoinWorkloadTest, DistinctBIsSortedUniqueAndGapped) {
  TpceJoinWorkload wl(SmallConfig());
  const std::vector<int64_t>& b = wl.distinct_b();
  ASSERT_FALSE(b.empty());
  for (size_t i = 1; i < b.size(); ++i) {
    // Strictly ascending with room between values for unmatched R.A probes.
    ASSERT_LT(b[i - 1], b[i]);
    ASSERT_GE(b[i] - b[i - 1], 2);
  }
}

TEST(TpceJoinWorkloadTest, HoldingRowsAreDeterministicUnderFixedSeed) {
  TpceJoinWorkload a(SmallConfig());
  TpceJoinWorkload b(SmallConfig());
  std::vector<Record> ra = a.MakeHoldingRows();
  std::vector<Record> rb = b.MakeHoldingRows();
  ASSERT_EQ(ra.size(), rb.size());
  for (size_t i = 0; i < ra.size(); ++i) EXPECT_EQ(ra[i], rb[i]);
}

TEST(TpceJoinWorkloadTest, HoldingRowsCoverEveryBValueSortedByCompositeKey) {
  TpceJoinWorkload wl(SmallConfig());
  std::vector<Record> rows = wl.MakeHoldingRows();
  ASSERT_EQ(rows.size(), wl.ns());
  std::set<int64_t> seen_b;
  for (size_t i = 0; i < rows.size(); ++i) {
    ASSERT_EQ(rows[i].attrs.size(), 3u);
    // attrs = {composite key, B, qty}; key() decodes back to B.
    EXPECT_EQ(JoinBValue(rows[i].key()), rows[i].attrs[1]);
    if (i > 0) {
      ASSERT_LT(rows[i - 1].key(), rows[i].key());
    }
    seen_b.insert(rows[i].attrs[1]);
  }
  EXPECT_EQ(seen_b.size(), wl.distinct_b().size());
}

TEST(TpceJoinWorkloadTest, HoldingRowsSpreadAcrossBValues) {
  // ns/ib ~ 261 rows per value on average; uniform assignment should keep
  // every per-value count within a generous factor of that.
  TpceJoinWorkload wl(SmallConfig());
  std::vector<Record> rows = wl.MakeHoldingRows();
  std::map<int64_t, uint64_t> per_value;
  for (const Record& r : rows) ++per_value[r.attrs[1]];
  const double mean =
      static_cast<double>(wl.ns()) / static_cast<double>(wl.ib());
  for (const auto& [b, count] : per_value) {
    EXPECT_GE(count, 1u);
    EXPECT_LT(static_cast<double>(count), 2.0 * mean);
  }
}

TEST(TpceJoinWorkloadTest, SecurityValuesAreDeterministicUnderFixedSeed) {
  TpceJoinWorkload a(SmallConfig());
  TpceJoinWorkload b(SmallConfig());
  EXPECT_EQ(a.MakeSecurityValues(0.5, 200), b.MakeSecurityValues(0.5, 200));
}

TEST(TpceJoinWorkloadTest, MatchRatioAlphaIsHonored) {
  TpceJoinWorkload wl(SmallConfig());
  std::set<int64_t> b_domain(wl.distinct_b().begin(), wl.distinct_b().end());
  for (double alpha : {0.0, 0.25, 0.75, 1.0}) {
    const uint64_t n = 100;
    std::vector<int64_t> values = wl.MakeSecurityValues(alpha, n);
    ASSERT_EQ(values.size(), n);
    ASSERT_TRUE(std::is_sorted(values.begin(), values.end()));
    uint64_t matched = 0;
    for (int64_t v : values)
      if (b_domain.count(v)) ++matched;
    EXPECT_EQ(matched, static_cast<uint64_t>(alpha * n + 0.5));
  }
}

TEST(TpceJoinWorkloadTest, UnmatchedValuesFallInGaps) {
  TpceJoinWorkload wl(SmallConfig());
  std::set<int64_t> b_domain(wl.distinct_b().begin(), wl.distinct_b().end());
  std::vector<int64_t> values = wl.MakeSecurityValues(0.0, 150);
  for (int64_t v : values) {
    EXPECT_EQ(b_domain.count(v), 0u);
    // Gap values sit strictly inside the B domain's span.
    EXPECT_GT(v, wl.distinct_b().front());
    EXPECT_LT(v, wl.distinct_b().back() + 4);
  }
}

}  // namespace
}  // namespace authdb
