#!/usr/bin/env python3
"""CI bench-regression gate: diff bench-smoke JSON artifacts against the
checked-in bench_baseline.json and fail on throughput regressions.

Every bench binary writes a BenchRun report (``--json``):

    {"bench": "...", "smoke": true, "elapsed_seconds": ..., "metrics": {...}}

The baseline pins a subset of those metrics. Only *throughput-like* metrics
(name matching qps / ops / rate / per_s / speedup / retention / throughput)
are gated; latencies and sizes are informational. A gated metric fails when

    result < baseline_value * (1 - tolerance)

with the default tolerance of 0.25 (the ">25% regression" rule) unless the
baseline entry carries its own ``tolerance``: generated baselines give
machine-independent ratio metrics (speedup) a 0.4 band — strict enough
that the self-test's 2x slowdown fails, loose enough to ride out
smoke-mode jitter — and host-dependent absolute metrics a 0.75 guard band
because smoke-mode qps on shared CI runners swings with the host. The
guard band still catches order-of-magnitude collapses, while the ratio
metrics catch scaling regressions. A bench or metric that is present in
the baseline but missing from the results also fails: a silently dropped
bench is not a passing bench.

Usage:
    compare_bench.py --baseline bench_baseline.json --results bench-results/
    compare_bench.py --baseline ... --self-test  # 2x-slowdown gate check
    compare_bench.py ... --scale-results 0.5     # scale live results (manual)
    compare_bench.py ... --write-baseline        # refresh the baseline file

Exit status: 0 = no regression, 1 = regression / missing data, 2 = usage.
"""

import argparse
import json
import pathlib
import re
import sys

THROUGHPUT_RE = re.compile(
    r"(qps|ops_per_second|ops\b|per_s|rate|speedup|retention|throughput)")

# Tolerances written into a generated baseline. Host-dependent metrics get
# the wide guard band; ratio metrics (machine-independent, but still a
# quotient of two noisy smoke-mode runs) get a band that keeps headroom
# over run-to-run jitter while staying below 0.5 — the self-test's uniform
# 2x slowdown must land under their floor. Retention (live/idle qps) is
# deliberately in the host-dependent class: it depends on spare cores for
# the ingest producer, which shared runners do not guarantee. Metrics
# without an explicit tolerance gate at the strict 25% default.
ABSOLUTE_TOLERANCE = 0.75
RATIO_TOLERANCE = 0.4
RATIO_RE = re.compile(r"(speedup|ratio)")
DEFAULT_TOLERANCE = 0.25


def is_gated(name):
    return THROUGHPUT_RE.search(name) is not None


def load_results(results_dir):
    """name -> metrics dict, from every BenchRun JSON in the directory."""
    out = {}
    for path in sorted(pathlib.Path(results_dir).glob("*.json")):
        try:
            report = json.loads(path.read_text())
        except ValueError:
            print(f"note: skipping unparseable {path}")
            continue
        if not isinstance(report, dict) or "metrics" not in report:
            continue  # e.g. google-benchmark output (bench_ablation_micro)
        out[report.get("bench", path.stem)] = report["metrics"]
    return out


def write_baseline(path, results, threshold):
    benches = {}
    for bench, metrics in sorted(results.items()):
        gated = {}
        for name, value in sorted(metrics.items()):
            if not is_gated(name):
                continue
            entry = {"value": value}
            entry["tolerance"] = (RATIO_TOLERANCE if RATIO_RE.search(name)
                                  else ABSOLUTE_TOLERANCE)
            gated[name] = entry
        if gated:
            benches[bench] = gated
    doc = {
        "_meta": {
            "tool": "scripts/compare_bench.py",
            "default_tolerance": threshold,
            "note": "regenerate with --write-baseline after intentional "
                    "performance changes; smoke-mode values",
        },
        "benches": benches,
    }
    pathlib.Path(path).write_text(json.dumps(doc, indent=2) + "\n")
    n = sum(len(m) for m in benches.values())
    print(f"wrote {path}: {len(benches)} benches, {n} gated metrics")


def gate(doc, results, threshold, scale):
    if threshold is None:  # no CLI override: honor the baseline's default
        threshold = doc.get("_meta", {}).get("default_tolerance",
                                             DEFAULT_TOLERANCE)
    failures = []
    checked = 0
    for bench, metrics in sorted(doc.get("benches", {}).items()):
        if bench not in results:
            failures.append(f"{bench}: no result JSON found")
            continue
        have = results[bench]
        for name, entry in sorted(metrics.items()):
            base = entry["value"]
            tolerance = entry.get("tolerance", threshold)
            if name not in have:
                failures.append(f"{bench}.{name}: metric missing from results")
                continue
            value = have[name] * scale
            checked += 1
            floor = base * (1.0 - tolerance)
            verdict = "ok"
            if value < floor:
                verdict = "REGRESSION"
                failures.append(
                    f"{bench}.{name}: {value:.4g} < floor {floor:.4g} "
                    f"(baseline {base:.4g}, tolerance {tolerance:.0%})")
            print(f"  {verdict:>10}  {bench}.{name}: {value:.4g} "
                  f"vs baseline {base:.4g} (floor {floor:.4g})")
    print(f"checked {checked} gated metrics, {len(failures)} failure(s)")
    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    return 1 if failures else 0


def self_test(doc, threshold):
    """Deterministic gate check: a uniform 2x slowdown of the *baseline's
    own values* must fail the gate. Independent of the host running it —
    live measurements never enter the check — so it validates the gate
    mechanics (and that the baseline still contains at least one
    strict-tolerance metric able to catch the slowdown) without flaking
    on fast or slow runners."""
    synthetic = {
        bench: {name: entry["value"] * 0.5 for name, entry in metrics.items()}
        for bench, metrics in doc.get("benches", {}).items()
    }
    rc = gate(doc, synthetic, threshold, 1.0)
    if rc == 0:
        print("SELF-TEST FAILED: a uniform 2x slowdown of the baseline "
              "passed the gate — no strict-tolerance metric left?",
              file=sys.stderr)
        return 1
    print("self-test ok: uniform 2x slowdown of the baseline is rejected")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", default="bench_baseline.json")
    ap.add_argument("--results",
                    help="directory of BenchRun --json reports")
    ap.add_argument("--self-test", action="store_true",
                    help="check that a 2x slowdown of the baseline's own "
                         "values fails the gate (exit 0 when it does)")
    ap.add_argument("--threshold", type=float, default=None,
                    help="default fractional regression tolerance "
                         f"(default: the baseline's recorded value, else "
                         f"{DEFAULT_TOLERANCE})")
    ap.add_argument("--scale-results", type=float, default=1.0,
                    help="multiply result metrics (0.5 simulates a 2x "
                         "slowdown; used by the CI gate self-test)")
    ap.add_argument("--write-baseline", action="store_true",
                    help="write the baseline from the results instead of "
                         "gating")
    args = ap.parse_args()

    if args.self_test:
        doc = json.loads(pathlib.Path(args.baseline).read_text())
        return self_test(doc, args.threshold)
    if not args.results:
        ap.error("--results is required unless --self-test is given")
    results = load_results(args.results)
    if not results:
        print(f"no bench results under {args.results}", file=sys.stderr)
        return 1
    if args.write_baseline:
        write_baseline(args.baseline, results,
                       args.threshold if args.threshold is not None
                       else DEFAULT_TOLERANCE)
        return 0
    doc = json.loads(pathlib.Path(args.baseline).read_text())
    return gate(doc, results, args.threshold, args.scale_results)


if __name__ == "__main__":
    sys.exit(main())
