#!/usr/bin/env python3
"""CI bench-regression gate: diff bench-smoke JSON artifacts against the
checked-in bench_baseline.json and fail on throughput regressions.

Every bench binary writes a BenchRun report (``--json``):

    {"bench": "...", "smoke": true, "elapsed_seconds": ..., "metrics": {...}}

The baseline pins the throughput-like metrics (name matching qps / ops /
rate / per_s / speedup / retention / throughput) in two classes:

* *Ratio* metrics (speedup, retention) are machine-independent — a
  quotient of two measurements from the same run on the same host, so the
  host's absolute speed cancels — and are the only metrics gated on value
  in required CI. A gated metric fails when

      result < baseline_value * (1 - tolerance)

  with the entry's recorded tolerance (0.4 for speedup-style ratios,
  0.5 for retention, which also depends on spare cores for the ingest
  producer), else the 0.25 default (the ">25% regression" rule).
* *Absolute* metrics (qps, updates/s, ...) are recorded as
  ``"informational": true``: printed with their delta for the log and the
  nightly full-mode artifacts, and failed only below the 10x collapse
  floor (``value < baseline * 0.1``) — smoke-mode absolute throughput
  recorded on one machine says nothing about a shared CI runner class,
  so a tight floor would block unrelated PRs on runner speed, but an
  order-of-magnitude collapse (an accidental O(n^2) path, a lock
  serializing everything) is a real regression no plausible runner-class
  gap produces, and ratios alone cannot see a uniform one.

Both classes fail when a bench or metric present in the baseline is
missing from the results: a silently dropped bench is not a passing
bench, and that check is machine-independent.

Usage:
    compare_bench.py --baseline bench_baseline.json --results bench-results/
    compare_bench.py --baseline ... --self-test  # gate mechanics checks
    compare_bench.py ... --scale-results 0.5     # scale live results (manual)
    compare_bench.py ... --write-baseline        # refresh the baseline file
    compare_bench.py --ablation on.json off.json # batching ON/OFF delta

Exit status: 0 = no regression, 1 = regression / missing data, 2 = usage.
"""

import argparse
import json
import pathlib
import re
import sys

THROUGHPUT_RE = re.compile(
    r"(qps|ops_per_second|ops\b|per_s|rate|speedup|retention|throughput"
    r"|ratio)")

# Metric classes written into a generated baseline. Only ratio metrics
# are gated on value: speedup-style ratios get a 0.4 band — headroom over
# smoke-mode jitter, but below 0.5 so the self-test's uniform 2x slowdown
# lands under the floor — and retention (live/idle qps) gets 0.5 because
# it additionally depends on spare cores for the ingest producer, which
# shared runners do not guarantee. Absolute throughput metrics are marked
# informational: host-dependent values recorded on one machine must not
# gate other machines on a tight floor, but a uniform order-of-magnitude
# collapse is invisible to ratios, so informational metrics still fail
# below COLLAPSE_FRACTION of the recorded value. Gated metrics without
# an explicit tolerance use the strict 25% default.
RATIO_RE = re.compile(r"(speedup|ratio)")
RETENTION_RE = re.compile(r"retention")
RATIO_TOLERANCE = 0.4
RETENTION_TOLERANCE = 0.5
DEFAULT_TOLERANCE = 0.25
COLLAPSE_FRACTION = 0.1

# The shard-scaling contract: these 4-shard-vs-1-shard busy-time capacity
# ratios (bench_mixed_queries) are REQUIRED gated metrics with a hard
# absolute floor, independent of the baseline-relative tolerance band. The
# band catches drift from the recorded value; the floor says the sharded
# server must scale at all — a ratio at or below ~1x means shard visits
# have collapsed onto one shard (or the busy accounting broke), which a
# generous band around a high recorded value could otherwise wave through.
SCALING_FLOOR_RE = re.compile(
    r"^(read_qps_ratio_4v1|join_qps_ratio_4v1|mixed_ops_ratio_4v1)$")
SCALING_FLOOR = 1.2
# Scaling ratios divide per-shard busy times, which at smoke scale are
# micro-measurements (a few hundred microseconds of join work per shard)
# — far noisier than the speedup/retention ratios of whole-run wall
# clocks. The absolute contract floor above is their primary gate; the
# baseline-relative band stays loose so runner jitter around a high
# recorded ratio cannot fail a healthy build.
SCALING_TOLERANCE = 0.65

# The crypto hot-path contract (bench_table3_crypto): the multi-buffer
# SHA front end must beat the forced-scalar tier by >= 1.5x on the bulk
# digest workload. The measured quotient depends on which dispatch tier
# the host runs (SHA-NI lands far above AVX2, which lands above nothing),
# so a baseline-relative band recorded on one tier is meaningless on
# another runner class — the tolerance is set wide enough that only the
# absolute contract floor gates, on every tier that claims to be SIMD.
SIMD_SPEEDUP_RE = re.compile(r"^sha(1|256)_multibuf_speedup$")
SIMD_SPEEDUP_FLOOR = 1.5
SIMD_SPEEDUP_TOLERANCE = 0.9

# The probe-batching contract (bench_fig11_join): how much ProbeMany's
# bulk hashing + block prefetch beats the scalar probe loop depends on
# how well the host's out-of-order window already hides the filter's
# cache misses — deep-window runners can flatten the quotient toward 1x
# without anything regressing — so the baseline-relative band is loose
# and the absolute floor only rejects the true failure mode: a batched
# path that LOSES to the scalar loop it replaced.
PROBE_SPEEDUP_RE = re.compile(r"^join_probe_throughput_speedup$")
PROBE_SPEEDUP_FLOOR = 0.8
PROBE_SPEEDUP_TOLERANCE = 0.75

# The partition-refresh contract (bench_fig11_join): an insert-only
# period must refresh the largest partition with a certified delta merge
# at least 2x cheaper than the full rebuild a deletion forces. Same-run
# quotient, so host speed cancels; but the split between signature cost
# and per-value filter work varies by host, so the baseline-relative band
# stays loose and the absolute floor is the real gate — a delta path that
# stops beating the rebuild it exists to avoid is a regression on every
# host.
REFRESH_FLOOR_RE = re.compile(r"^refresh_cost_ratio_delta_vs_rebuild$")
REFRESH_FLOOR = 2.0
REFRESH_TOLERANCE = 0.9

# The overload contract (bench_open_loop): at 2x measured capacity with
# admission control on, goodput — served plans only, sheds excluded —
# must stay at or above this fraction of the closed-loop capacity. Like
# the scaling floor, this is an absolute machine-independent floor (a
# ratio of two same-run measurements): a server that collapses under
# overload instead of shedding fails here even when a generous
# baseline-relative band would wave it through.
GOODPUT_FLOOR_RE = re.compile(r"^goodput_ratio_at_2x_capacity$")
GOODPUT_FLOOR = 0.6


def is_gated(name):
    return THROUGHPUT_RE.search(name) is not None


def load_results(results_dir):
    """name -> metrics dict, from every BenchRun JSON in the directory."""
    out = {}
    for path in sorted(pathlib.Path(results_dir).glob("*.json")):
        try:
            report = json.loads(path.read_text())
        except ValueError:
            print(f"note: skipping unparseable {path}")
            continue
        if not isinstance(report, dict) or "metrics" not in report:
            continue  # e.g. google-benchmark output (bench_ablation_micro)
        out[report.get("bench", path.stem)] = report["metrics"]
    return out


def write_baseline(path, results, threshold):
    benches = {}
    for bench, metrics in sorted(results.items()):
        pinned = {}
        for name, value in sorted(metrics.items()):
            if not is_gated(name):
                continue
            entry = {"value": value}
            if RATIO_RE.search(name):
                entry["tolerance"] = RATIO_TOLERANCE
            elif RETENTION_RE.search(name):
                entry["tolerance"] = RETENTION_TOLERANCE
            else:
                entry["informational"] = True
            if SCALING_FLOOR_RE.match(name):
                entry["floor"] = SCALING_FLOOR
                entry["tolerance"] = SCALING_TOLERANCE
            if GOODPUT_FLOOR_RE.match(name):
                entry["floor"] = GOODPUT_FLOOR
            if SIMD_SPEEDUP_RE.match(name):
                entry["floor"] = SIMD_SPEEDUP_FLOOR
                entry["tolerance"] = SIMD_SPEEDUP_TOLERANCE
            if REFRESH_FLOOR_RE.match(name):
                entry["floor"] = REFRESH_FLOOR
                entry["tolerance"] = REFRESH_TOLERANCE
            if PROBE_SPEEDUP_RE.match(name):
                entry["floor"] = PROBE_SPEEDUP_FLOOR
                entry["tolerance"] = PROBE_SPEEDUP_TOLERANCE
            pinned[name] = entry
        if pinned:
            benches[bench] = pinned
    doc = {
        "_meta": {
            "tool": "scripts/compare_bench.py",
            "default_tolerance": threshold,
            "note": "regenerate with --write-baseline after intentional "
                    "performance changes; smoke-mode values. Only ratio "
                    "metrics (speedup/retention) gate required CI on a "
                    "tight band; informational absolutes are "
                    "presence-checked, reported, and failed only below "
                    "the 10x collapse floor.",
        },
        "benches": benches,
    }
    pathlib.Path(path).write_text(json.dumps(doc, indent=2) + "\n")
    gated = sum(1 for m in benches.values() for e in m.values()
                if not e.get("informational"))
    info = sum(1 for m in benches.values() for e in m.values()
               if e.get("informational"))
    print(f"wrote {path}: {len(benches)} benches, {gated} gated metrics, "
          f"{info} informational")


def gate(doc, results, threshold, scale):
    if threshold is None:  # no CLI override: honor the baseline's default
        threshold = doc.get("_meta", {}).get("default_tolerance",
                                             DEFAULT_TOLERANCE)
    failures = []
    gated = 0
    informational = 0
    for bench, metrics in sorted(doc.get("benches", {}).items()):
        if bench not in results:
            failures.append(f"{bench}: no result JSON found")
            continue
        have = results[bench]
        for name, entry in sorted(metrics.items()):
            base = entry["value"]
            if name not in have:
                failures.append(f"{bench}.{name}: metric missing from results")
                continue
            value = have[name] * scale
            if entry.get("informational"):
                # Host-dependent absolute metric: reported for the log,
                # failed only below the 10x collapse floor.
                informational += 1
                delta = (value / base - 1.0) * 100.0 if base else 0.0
                floor = base * COLLAPSE_FRACTION
                if value < floor:
                    failures.append(
                        f"{bench}.{name}: {value:.4g} < collapse floor "
                        f"{floor:.4g} ({COLLAPSE_FRACTION:.0%} of recorded "
                        f"{base:.4g})")
                    print(f"  {'COLLAPSE':>10}  {bench}.{name}: {value:.4g} "
                          f"vs recorded {base:.4g} ({delta:+.1f}%)")
                else:
                    print(f"  {'info':>10}  {bench}.{name}: {value:.4g} "
                          f"vs recorded {base:.4g} ({delta:+.1f}%, gated "
                          f"only below {floor:.4g})")
                continue
            gated += 1
            tolerance = entry.get("tolerance", threshold)
            floor = base * (1.0 - tolerance)
            verdict = "ok"
            if value < floor:
                verdict = "REGRESSION"
                failures.append(
                    f"{bench}.{name}: {value:.4g} < floor {floor:.4g} "
                    f"(baseline {base:.4g}, tolerance {tolerance:.0%})")
            # Absolute hard floor (the shard-scaling contract): checked in
            # addition to the baseline-relative band — a value inside the
            # band but below the contract floor still fails.
            hard = entry.get("floor")
            if hard is not None and value < hard and verdict == "ok":
                verdict = "BELOW-FLOOR"
                failures.append(
                    f"{bench}.{name}: {value:.4g} < required floor "
                    f"{hard:.4g} (scaling contract, independent of the "
                    f"baseline band)")
            print(f"  {verdict:>10}  {bench}.{name}: {value:.4g} "
                  f"vs baseline {base:.4g} (floor {floor:.4g}"
                  + (f", required >= {hard:.4g}" if hard is not None else "")
                  + ")")
    print(f"checked {gated} gated + {informational} informational "
          f"(collapse-floor-only) metrics, {len(failures)} failure(s)")
    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    return 1 if failures else 0


def self_test(doc, threshold):
    """Deterministic gate check: a uniform 2x slowdown of the *baseline's
    own values* must fail the gate. Independent of the host running it —
    live measurements never enter the check — so it validates the gate
    mechanics (and that the baseline still contains at least one gated
    ratio metric able to catch the slowdown) without flaking on fast or
    slow runners."""
    synthetic = {
        bench: {name: entry["value"] * 0.5 for name, entry in metrics.items()}
        for bench, metrics in doc.get("benches", {}).items()
    }
    rc = gate(doc, synthetic, threshold, 1.0)
    if rc == 0:
        print("SELF-TEST FAILED: a uniform 2x slowdown of the baseline "
              "passed the gate — no gated ratio metric left?",
              file=sys.stderr)
        return 1
    print("self-test ok: uniform 2x slowdown of the baseline is rejected")

    # Scaling-floor mechanics: a ratio INSIDE the baseline-relative band
    # but below the absolute contract floor must still fail. Synthetic
    # baseline: recorded 1.3 with the 0.4 ratio band puts the band floor
    # at 0.78; a measured 1.15 clears that band yet sits below the 1.2
    # contract floor — only the "floor" key can reject it.
    floor_doc = {"benches": {"synthetic_scaling": {
        "mixed_ops_ratio_4v1":
            {"value": 1.3, "tolerance": 0.4, "floor": SCALING_FLOOR},
    }}}
    rc = gate(floor_doc, {"synthetic_scaling": {"mixed_ops_ratio_4v1": 1.15}},
              threshold, 1.0)
    if rc == 0:
        print("SELF-TEST FAILED: a sub-floor scaling ratio (1.15 < "
              f"{SCALING_FLOOR}) inside the tolerance band passed the gate",
              file=sys.stderr)
        return 1
    print(f"self-test ok: sub-floor scaling ratio (1.15 < {SCALING_FLOOR}) "
          "is rejected even inside the tolerance band")

    # Goodput-floor mechanics (the overload contract): a goodput ratio
    # inside the 0.4 relative band around a healthy recorded value but
    # below the absolute 0.6 floor must still fail — a server that keeps
    # only half its capacity as goodput under 2x load is overloading
    # wrong, whatever it did last time.
    goodput_doc = {"benches": {"synthetic_overload": {
        "goodput_ratio_at_2x_capacity":
            {"value": 0.9, "tolerance": 0.4, "floor": GOODPUT_FLOOR},
    }}}
    rc = gate(goodput_doc,
              {"synthetic_overload": {"goodput_ratio_at_2x_capacity": 0.55}},
              threshold, 1.0)
    if rc == 0:
        print("SELF-TEST FAILED: a sub-floor goodput ratio (0.55 < "
              f"{GOODPUT_FLOOR}) inside the tolerance band passed the gate",
              file=sys.stderr)
        return 1
    print(f"self-test ok: sub-floor goodput ratio (0.55 < {GOODPUT_FLOOR}) "
          "is rejected even inside the tolerance band")

    # SIMD-speedup-floor mechanics (the crypto hot-path contract): a
    # speedup inside the deliberately loose relative band but below the
    # absolute 1.5x floor must still fail — a "SIMD" front end that does
    # not beat scalar is a regression whatever tier recorded the baseline.
    simd_doc = {"benches": {"synthetic_crypto": {
        "sha1_multibuf_speedup":
            {"value": 9.0, "tolerance": SIMD_SPEEDUP_TOLERANCE,
             "floor": SIMD_SPEEDUP_FLOOR},
    }}}
    rc = gate(simd_doc,
              {"synthetic_crypto": {"sha1_multibuf_speedup": 1.2}},
              threshold, 1.0)
    if rc == 0:
        print("SELF-TEST FAILED: a sub-floor SIMD speedup (1.2 < "
              f"{SIMD_SPEEDUP_FLOOR}) inside the tolerance band passed "
              "the gate", file=sys.stderr)
        return 1
    print(f"self-test ok: sub-floor SIMD speedup (1.2 < "
          f"{SIMD_SPEEDUP_FLOOR}) is rejected even inside the tolerance "
          "band")

    # Refresh-floor mechanics (the partition-refresh contract): a
    # delta-vs-rebuild cost ratio inside the deliberately loose relative
    # band but below the absolute 2x floor must still fail — a delta
    # refresh that is not clearly cheaper than the rebuild it replaces
    # has lost the point of shipping deltas, whatever the recorded value.
    refresh_doc = {"benches": {"synthetic_refresh": {
        "refresh_cost_ratio_delta_vs_rebuild":
            {"value": 12.0, "tolerance": REFRESH_TOLERANCE,
             "floor": REFRESH_FLOOR},
    }}}
    rc = gate(refresh_doc,
              {"synthetic_refresh":
                   {"refresh_cost_ratio_delta_vs_rebuild": 1.6}},
              threshold, 1.0)
    if rc == 0:
        print("SELF-TEST FAILED: a sub-floor refresh cost ratio (1.6 < "
              f"{REFRESH_FLOOR}) inside the tolerance band passed the gate",
              file=sys.stderr)
        return 1
    print(f"self-test ok: sub-floor refresh cost ratio (1.6 < "
          f"{REFRESH_FLOOR}) is rejected even inside the tolerance band")

    # And the floors must actually be pinned: every scaling-contract,
    # overload-contract, crypto-contract, and refresh-contract ratio
    # present in the real baseline has to carry the "floor" key, or the
    # contract silently degrades to the relative band.
    missing = [
        f"{bench}.{name}"
        for bench, metrics in doc.get("benches", {}).items()
        for name, entry in metrics.items()
        if (SCALING_FLOOR_RE.match(name) or GOODPUT_FLOOR_RE.match(name)
            or SIMD_SPEEDUP_RE.match(name) or REFRESH_FLOOR_RE.match(name)
            or PROBE_SPEEDUP_RE.match(name))
        and "floor" not in entry
    ]
    if missing:
        print("SELF-TEST FAILED: scaling ratios without a required floor: "
              + ", ".join(sorted(missing)), file=sys.stderr)
        return 1
    return 0


def ablation(on_path, off_path):
    """Informational ablation report: compare one BenchRun JSON produced
    with a feature ON (batching, batched bloom probes, SIMD crypto)
    against one with it forced OFF and print the per-metric delta. Never
    gates — the ON run is what the baseline and the contracts judge; this
    step documents what the feature buys on the runner that produced the
    artifacts."""
    reports = []
    for path in (on_path, off_path):
        report = json.loads(pathlib.Path(path).read_text())
        if "metrics" not in report:
            print(f"{path}: not a BenchRun report", file=sys.stderr)
            return 1
        reports.append(report["metrics"])
    on, off = reports
    shared = sorted(set(on) & set(off)
                    - {"batching_enabled", "scalar_bloom_probes"})
    if not shared:
        print("no shared metrics between ON and OFF artifacts",
              file=sys.stderr)
        return 1
    print(f"batching ablation (ON vs OFF), {len(shared)} shared metrics:")
    for name in shared:
        ratio = on[name] / off[name] if off[name] else float("inf")
        print(f"  {name}: ON {on[name]:.4g} vs OFF {off[name]:.4g} "
              f"({ratio:.2f}x)")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", default="bench_baseline.json")
    ap.add_argument("--results",
                    help="directory of BenchRun --json reports")
    ap.add_argument("--self-test", action="store_true",
                    help="check that a 2x slowdown of the baseline's own "
                         "values fails the gate (exit 0 when it does)")
    ap.add_argument("--threshold", type=float, default=None,
                    help="default fractional regression tolerance "
                         f"(default: the baseline's recorded value, else "
                         f"{DEFAULT_TOLERANCE})")
    ap.add_argument("--scale-results", type=float, default=1.0,
                    help="multiply result metrics (0.5 simulates a 2x "
                         "slowdown; used by the CI gate self-test)")
    ap.add_argument("--write-baseline", action="store_true",
                    help="write the baseline from the results instead of "
                         "gating")
    ap.add_argument("--ablation", nargs=2, metavar=("ON_JSON", "OFF_JSON"),
                    help="informational: report the per-metric delta "
                         "between a batching-ON and a batching-OFF "
                         "BenchRun artifact (no gating)")
    args = ap.parse_args()

    if args.ablation:
        return ablation(args.ablation[0], args.ablation[1])
    if args.self_test:
        doc = json.loads(pathlib.Path(args.baseline).read_text())
        return self_test(doc, args.threshold)
    if not args.results:
        ap.error("--results is required unless --self-test is given")
    results = load_results(args.results)
    if not results:
        print(f"no bench results under {args.results}", file=sys.stderr)
        return 1
    if args.write_baseline:
        write_baseline(args.baseline, results,
                       args.threshold if args.threshold is not None
                       else DEFAULT_TOLERANCE)
        return 0
    doc = json.loads(pathlib.Path(args.baseline).read_text())
    return gate(doc, results, args.threshold, args.scale_results)


if __name__ == "__main__":
    sys.exit(main())
