#!/usr/bin/env python3
"""Structural invariant linter for the authdb tree.

Nine rules, each protecting a contract the compiler cannot see:

* ``epoch-pin`` — read paths of ``ShardedQueryServer`` (its ``const``
  member functions in ``src/server/sharded_query_server.cc``) must reach
  per-shard snapshot state only through a pinned ``EpochDescriptor``.
  Concretely: no ``builder`` access, no ``Freeze``/``InstallDescriptor*``
  /``Republish*`` calls, no ``atomic_exchange``/``atomic_store`` on the
  descriptor head, no raw ``current_`` outside ``PinCurrentEpoch``, and
  ``shards_[...]`` only for the epoch-invariant cache plumbing
  (``->cache_slot``). This is the wait-free-reader
  contract of the epoch-pinned COW design: a reader that touched builder
  state would observe a half-built next epoch.

* ``raw-mutex`` — no naked ``std::mutex`` / ``std::lock_guard`` /
  ``std::unique_lock`` / ``std::condition_variable`` (or their include
  lines) outside ``src/common/thread_annotations.h``. All locking goes
  through the annotated ``Mutex`` / ``MutexLock`` / ``CondVar`` wrappers
  so clang's ``-Wthread-safety`` analysis sees every acquisition.

* ``test-labels`` — every test suite registered in
  ``tests/CMakeLists.txt`` carries at least one CTest label. The CI TSan
  and smoke lanes select by label; an unlabeled suite silently drops out
  of every filtered lane.

* ``bench-json`` — every ``bench/bench_*.cc`` drives its measurement
  through the ``BenchRun`` harness (which implements ``--smoke`` and
  ``--json``) or google-benchmark (``--benchmark_format=json``). The CI
  bench gate consumes those JSON artifacts; a bench without them is
  invisible to the regression gate.

* ``batch-path`` — the batched executor
  (``src/server/batch_exec.cc``) must not dispatch shard work from a
  per-plan loop: a ``for``/``while`` whose header mentions ``plan`` may
  stitch and aggregate, but a shard dispatch call (``RunVisits`` /
  ``Execute`` / ``ExecuteBatch`` / ``Select`` / ``ScanShard`` /
  ``Visit``) inside it reintroduces one-visit-per-plan — exactly the
  hand-off the PlanBatch envelope exists to amortize away (one visit per
  covered shard per batch).

* ``stats-surface`` — every ``struct *Stats`` in ``src/server`` must be
  surfaced through the unified ``ServerMetrics`` snapshot (defined in, or
  at least referenced by, ``src/server/metrics.h``). ServerMetrics is the
  single serving-side telemetry surface; a stats struct it never folds is
  a second, drifting surface that benches and tests will reach for
  directly.

* ``metrics-doc`` — every dotted counter name quoted in
  ``src/server/metrics.cc`` (the stable ``Flatten()`` contract) must
  appear in the README metrics table. The names are a published API;
  an undocumented one is unfindable and gets renamed by accident.

* ``crypto-batch`` — the crypto hot-path files (``core/chain.h``,
  ``core/sigcache.cc``, ``core/verifier.cc``,
  ``server/batch_exec.cc``) must not fold digests or finalize
  signatures one message at a time where a batched variant exists:
  single-message ``Sha1::Hash``/``Sha256::Hash`` (use
  ``Sha*::HashMany``), per-record ``.Digest()`` (use
  ``RecordDigestMany``), and scalar ``Finalize(`` (use
  ``FinalizeBatch`` / ``ToAffineBatch``). One stray scalar call in a
  per-tuple loop quietly serializes what the SIMD front end and the
  shared Montgomery inversions batch — exactly the regression the
  crypto-bench speedup gate exists to catch, caught here before it
  costs a bench run. Genuinely single-shot sites (a lone join witness,
  one boundary record) take the allow-escape with a comment saying why
  the batch cannot apply.

* ``bloom-batch`` — the join hot-path files (``core/join.cc``,
  ``server/batch_exec.cc``) must not probe the certified Bloom
  partitions one key at a time: per-key ``MayContain`` /
  ``MayContainInt64`` re-hashes and cache-misses per value what
  ``BloomFilter::ProbeMany`` batches (bulk hashing plus a block
  prefetch sweep over the cache-line-blocked layout). Group a plan's
  unmatched probe values by covering partition and issue one ProbeMany
  per group. Deliberate scalar sites — the ablation path behind
  ``ServerConfig::Serving::scalar_bloom_probes`` — take the
  allow-escape with a comment saying why.

Escape hatch: a violating line is accepted when it (or the line directly
above it) carries ``// authdb-lint: allow(<rule>)`` — use sparingly and
say why in the surrounding comment.

Usage:
    lint_invariants.py [--root DIR]   # lint the tree; findings to stdout
    lint_invariants.py --self-test    # seeded-violation check of the rules

Exit status: 0 = clean / self-test ok, 1 = findings / self-test failure,
2 = usage.
"""

import argparse
import pathlib
import re
import sys
from collections import namedtuple

Finding = namedtuple("Finding", "rule path line msg")

ALLOW_RE = re.compile(r"authdb-lint:\s*allow\(([a-z-]+)\)")

# --------------------------------------------------------------------------
# Shared helpers


def _strip_line_comment(line):
    return line.split("//", 1)[0]


def _allowed(lines, idx, rule):
    """True when line idx (0-based) or the one above carries an allow."""
    for i in (idx, idx - 1):
        if 0 <= i < len(lines):
            m = ALLOW_RE.search(lines[i])
            if m and m.group(1) == rule:
                return True
    return False


def _line_of(text, offset):
    return text.count("\n", 0, offset) + 1


# --------------------------------------------------------------------------
# Rule: raw-mutex

RAW_MUTEX_RE = re.compile(
    r"\bstd::(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex"
    r"|shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock"
    r"|shared_lock|condition_variable|condition_variable_any)\b")
RAW_INCLUDE_RE = re.compile(
    r"#\s*include\s*<(mutex|shared_mutex|condition_variable)>")


def check_raw_mutex(relpath, text):
    findings = []
    lines = text.splitlines()
    for idx, line in enumerate(lines):
        code = _strip_line_comment(line)
        m = RAW_MUTEX_RE.search(code) or RAW_INCLUDE_RE.search(code)
        if m and not _allowed(lines, idx, "raw-mutex"):
            findings.append(Finding(
                "raw-mutex", relpath, idx + 1,
                "naked %s — use the annotated wrappers from "
                "common/thread_annotations.h" % m.group(0).strip()))
    return findings


# --------------------------------------------------------------------------
# Rule: epoch-pin

# Forbidden inside const member functions of ShardedQueryServer: each
# pattern is a route to snapshot state that bypasses the pinned
# descriptor, or a mutation of the descriptor head.
EPOCH_PIN_FORBIDDEN = [
    (re.compile(r"\bbuilder\b"),
     "touches a ShardVersionBuilder (next-epoch state) from a read path"),
    (re.compile(r"\bFreeze\w*\s*\("),
     "freezes a snapshot from a read path"),
    (re.compile(r"\b(InstallDescriptor\w*|Republish\w*)\s*\("),
     "publishes a descriptor from a read path"),
    (re.compile(r"\batomic_(exchange|store)\b"),
     "mutates the descriptor head from a read path"),
]
SHARDS_ACCESS_RE = re.compile(r"shards_\s*\[")
SHARDS_ALLOWED_RE = re.compile(
    r"shards_\s*\[[^\]]*\]\s*->\s*cache_slot\b")
MEMBER_DEF_RE = re.compile(r"ShardedQueryServer::(\w+)\s*\(")


def _match_forward(text, start, open_ch, close_ch):
    """Offset one past the close_ch matching the open_ch at text[start]."""
    depth = 0
    for i in range(start, len(text)):
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def _const_member_bodies(text):
    """Yield (name, body_start_offset, body_text) for each const member
    function definition of ShardedQueryServer in `text` (comments already
    stripped)."""
    for m in MEMBER_DEF_RE.finditer(text):
        paren_open = text.index("(", m.end() - 1)
        paren_close = _match_forward(text, paren_open, "(", ")")
        if paren_close < 0:
            continue
        brace = text.find("{", paren_close)
        semi = text.find(";", paren_close)
        if brace < 0 or (0 <= semi < brace):
            continue  # declaration or out-of-line data — no body here
        # Qualifier region ends at a ctor's initializer-list colon, so a
        # `const` inside an initializer expression is not a cv-qualifier.
        qualifiers = text[paren_close:brace].split(":", 1)[0]
        body_end = _match_forward(text, brace, "{", "}")
        if body_end < 0:
            continue
        if re.search(r"\bconst\b", qualifiers):
            yield m.group(1), brace, text[brace:body_end]


def check_epoch_pin(relpath, text):
    findings = []
    orig_lines = text.splitlines()
    stripped = "\n".join(_strip_line_comment(ln) for ln in orig_lines)
    for name, body_start, body in _const_member_bodies(stripped):
        for pat, why in EPOCH_PIN_FORBIDDEN:
            for hit in pat.finditer(body):
                line = _line_of(stripped, body_start + hit.start())
                if not _allowed(orig_lines, line - 1, "epoch-pin"):
                    findings.append(Finding(
                        "epoch-pin", relpath, line,
                        "%s(): %s" % (name, why)))
        if name == "PinCurrentEpoch":
            continue  # the one blessed accessor of the descriptor head
        for hit in re.finditer(r"\bcurrent_\b", body):
            line = _line_of(stripped, body_start + hit.start())
            if not _allowed(orig_lines, line - 1, "epoch-pin"):
                findings.append(Finding(
                    "epoch-pin", relpath, line,
                    "%s(): raw current_ access — pin the epoch via "
                    "PinCurrentEpoch() instead" % name))
        for hit in SHARDS_ACCESS_RE.finditer(body):
            if SHARDS_ALLOWED_RE.match(body, hit.start()):
                continue
            line = _line_of(stripped, body_start + hit.start())
            if not _allowed(orig_lines, line - 1, "epoch-pin"):
                findings.append(Finding(
                    "epoch-pin", relpath, line,
                    "%s(): shards_[...] beyond ->sigcache/->cache_positions"
                    " — read snapshot state from the pinned "
                    "EpochDescriptor" % name))
    return findings


# --------------------------------------------------------------------------
# Rule: test-labels

ADD_TEST_RE = re.compile(r"add_test\s*\(\s*NAME\s+([A-Za-z0-9_]+)")
SUITES_RE = re.compile(r"set\s*\(\s*AUTHDB_TEST_SUITES\b([^)]*)\)", re.S)
PROPS_RE = re.compile(r"set_tests_properties\s*\(([^)]*)\)", re.S)


def check_test_labels(relpath, text):
    code = "\n".join(ln.split("#", 1)[0] for ln in text.splitlines())
    tests = []
    m = SUITES_RE.search(code)
    if m:
        tests.extend(m.group(1).split())
    tests.extend(n for n in ADD_TEST_RE.findall(code) if not n.startswith("$"))

    labeled = set()
    for call in PROPS_RE.findall(code):
        tokens = call.split()
        if "PROPERTIES" not in tokens or "LABELS" not in tokens:
            continue
        names = tokens[:tokens.index("PROPERTIES")]
        li = tokens.index("LABELS")
        has_value = li + 1 < len(tokens) and tokens[li + 1].strip('"')
        if has_value:
            labeled.update(names)

    findings = []
    for name in tests:
        if name not in labeled:
            findings.append(Finding(
                "test-labels", relpath, 1,
                "suite %s has no CTest LABELS — it drops out of every "
                "label-filtered CI lane (TSan, smoke)" % name))
    return findings


# --------------------------------------------------------------------------
# Rule: bench-json

BENCH_HARNESS_RE = re.compile(
    r"\bBenchRun\b|\bbenchmark::Initialize\b|\bBENCHMARK_MAIN\b")


def check_bench_json(files):
    """`files` is a list of (relpath, text) for bench/bench_*.cc."""
    findings = []
    for relpath, text in files:
        if not BENCH_HARNESS_RE.search(text):
            findings.append(Finding(
                "bench-json", relpath, 1,
                "bench drives neither BenchRun nor google-benchmark — it "
                "emits no --json artifact and the CI bench gate cannot "
                "see it"))
    return findings


# --------------------------------------------------------------------------
# Rule: batch-path

LOOP_HEADER_RE = re.compile(r"\b(for|while)\s*\(")
BATCH_DISPATCH_RE = re.compile(
    r"\b(RunVisits|ExecuteBatch|Execute|Select|ScanShard|Visit)\s*\(")


def check_batch_path(relpath, text):
    findings = []
    orig_lines = text.splitlines()
    stripped = "\n".join(_strip_line_comment(ln) for ln in orig_lines)
    for m in LOOP_HEADER_RE.finditer(stripped):
        paren_close = _match_forward(stripped, m.end() - 1, "(", ")")
        if paren_close < 0:
            continue
        if not re.search(r"plan", stripped[m.start():paren_close],
                         re.IGNORECASE):
            continue
        rest = stripped[paren_close:].lstrip()
        if rest.startswith("{"):
            brace = stripped.index("{", paren_close)
            body_end = _match_forward(stripped, brace, "{", "}")
            if body_end < 0:
                continue
            body_start, body = brace, stripped[brace:body_end]
        else:  # single-statement loop body
            semi = stripped.find(";", paren_close)
            if semi < 0:
                continue
            body_start, body = paren_close, stripped[paren_close:semi + 1]
        for hit in BATCH_DISPATCH_RE.finditer(body):
            line = _line_of(stripped, body_start + hit.start())
            if not _allowed(orig_lines, line - 1, "batch-path"):
                findings.append(Finding(
                    "batch-path", relpath, line,
                    "per-plan loop dispatches %s — the batched executor "
                    "must visit each shard once per batch, not once per "
                    "plan" % hit.group(1)))
    return findings


# --------------------------------------------------------------------------
# Rule: stats-surface

STATS_STRUCT_RE = re.compile(r"\bstruct\s+(\w*Stats)\b")


def check_stats_surface(server_files, metrics_text):
    """`server_files` is a list of (relpath, text) for src/server/*.{h,cc};
    `metrics_text` is the concatenated text of server/metrics.{h,cc}."""
    findings = []
    for relpath, text in server_files:
        if relpath.endswith("server/metrics.h"):
            continue  # the surface itself
        lines = text.splitlines()
        stripped = "\n".join(_strip_line_comment(ln) for ln in lines)
        for m in STATS_STRUCT_RE.finditer(stripped):
            name = m.group(1)
            line = _line_of(stripped, m.start())
            if re.search(r"\b%s\b" % re.escape(name), metrics_text):
                continue
            if not _allowed(lines, line - 1, "stats-surface"):
                findings.append(Finding(
                    "stats-surface", relpath, line,
                    "struct %s is not surfaced through ServerMetrics "
                    "(server/metrics.h) — serving-side telemetry has ONE "
                    "snapshot surface" % name))
    return findings


# --------------------------------------------------------------------------
# Rule: metrics-doc

METRIC_NAME_RE = re.compile(
    r"\"((?:exec|admission|epoch|ingest)\.[a-z0-9_.]*)\"")


def check_metrics_doc(relpath, metrics_cc_text, readme_text):
    findings = []
    lines = metrics_cc_text.splitlines()
    for idx, line in enumerate(lines):
        code = _strip_line_comment(line)
        for m in METRIC_NAME_RE.finditer(code):
            name = m.group(1).rstrip(".")  # per-shard prefixes end with '.'
            if name in readme_text:
                continue
            if not _allowed(lines, idx, "metrics-doc"):
                findings.append(Finding(
                    "metrics-doc", relpath, idx + 1,
                    "metric %r is not documented in the README metrics "
                    "table — Flatten() names are a stable, published "
                    "contract" % name))
    return findings


# --------------------------------------------------------------------------
# Rule: crypto-batch

CRYPTO_BATCH_FILES = (
    "src/core/chain.h",
    "src/core/sigcache.cc",
    "src/core/verifier.cc",
    "src/server/batch_exec.cc",
)
# Each pattern is a scalar crypto call with a batched sibling. Finalize(
# deliberately does not match FinalizeBatch( — the batched call is the
# fix, not a finding.
CRYPTO_BATCH_PATTERNS = [
    (re.compile(r"\bSha(?:1|256)::Hash\s*\("),
     "single-message Sha*::Hash on a crypto hot path — batch through "
     "Sha1::HashMany / Sha256::HashMany"),
    (re.compile(r"\.Digest\s*\(\s*\)"),
     "per-record Record::Digest on a crypto hot path — batch through "
     "RecordDigestMany"),
    (re.compile(r"(?:->|\.)\s*Finalize\s*\("),
     "scalar Finalize on a crypto hot path — share one Montgomery "
     "inversion via FinalizeBatch / ToAffineBatch"),
]


def check_crypto_batch(relpath, text):
    findings = []
    lines = text.splitlines()
    for idx, line in enumerate(lines):
        code = _strip_line_comment(line)
        for pat, msg in CRYPTO_BATCH_PATTERNS:
            if pat.search(code) and not _allowed(lines, idx, "crypto-batch"):
                findings.append(
                    Finding("crypto-batch", relpath, idx + 1, msg))
    return findings


# --------------------------------------------------------------------------
# Rule: bloom-batch

BLOOM_BATCH_FILES = (
    "src/core/join.cc",
    "src/server/batch_exec.cc",
)
BLOOM_SCALAR_RE = re.compile(r"(?:->|\.)\s*MayContain(?:Int64)?\s*\(")


def check_bloom_batch(relpath, text):
    findings = []
    lines = text.splitlines()
    for idx, line in enumerate(lines):
        code = _strip_line_comment(line)
        if BLOOM_SCALAR_RE.search(code) and not _allowed(lines, idx,
                                                         "bloom-batch"):
            findings.append(Finding(
                "bloom-batch", relpath, idx + 1,
                "per-key Bloom probe on the join hot path — group values "
                "by covering partition and batch through "
                "BloomFilter::ProbeMany"))
    return findings


# --------------------------------------------------------------------------
# Driver

CXX_DIRS = ("src", "tests", "bench", "examples")
RAW_MUTEX_EXEMPT = "src/common/thread_annotations.h"


def lint_tree(root):
    root = pathlib.Path(root)
    findings = []

    for d in CXX_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in (".h", ".cc"):
                continue
            rel = path.relative_to(root).as_posix()
            if rel == RAW_MUTEX_EXEMPT:
                continue
            findings.extend(check_raw_mutex(rel, path.read_text()))

    # The read path spans two translation units: the descriptor-global
    # helpers and the batched execution engine. Both hold const member
    # functions of ShardedQueryServer, so both get the epoch-pin scan.
    for name in ("src/server/sharded_query_server.cc",
                 "src/server/batch_exec.cc"):
        server_cc = root / name
        if server_cc.is_file():
            findings.extend(check_epoch_pin(
                server_cc.relative_to(root).as_posix(),
                server_cc.read_text()))

    batch_cc = root / "src/server/batch_exec.cc"
    if batch_cc.is_file():
        findings.extend(check_batch_path(
            batch_cc.relative_to(root).as_posix(), batch_cc.read_text()))

    tests_cmake = root / "tests/CMakeLists.txt"
    if tests_cmake.is_file():
        findings.extend(check_test_labels(
            tests_cmake.relative_to(root).as_posix(),
            tests_cmake.read_text()))

    bench_files = [(p.relative_to(root).as_posix(), p.read_text())
                   for p in sorted((root / "bench").glob("bench_*.cc"))]
    findings.extend(check_bench_json(bench_files))

    server_dir = root / "src/server"
    if server_dir.is_dir():
        metrics_text = ""
        for name in ("src/server/metrics.h", "src/server/metrics.cc"):
            p = root / name
            if p.is_file():
                metrics_text += p.read_text()
        server_files = [(p.relative_to(root).as_posix(), p.read_text())
                        for p in sorted(server_dir.rglob("*"))
                        if p.suffix in (".h", ".cc")]
        findings.extend(check_stats_surface(server_files, metrics_text))

    metrics_cc = root / "src/server/metrics.cc"
    readme = root / "README.md"
    if metrics_cc.is_file() and readme.is_file():
        findings.extend(check_metrics_doc(
            metrics_cc.relative_to(root).as_posix(),
            metrics_cc.read_text(), readme.read_text()))

    for name in CRYPTO_BATCH_FILES:
        p = root / name
        if p.is_file():
            findings.extend(check_crypto_batch(
                p.relative_to(root).as_posix(), p.read_text()))

    for name in BLOOM_BATCH_FILES:
        p = root / name
        if p.is_file():
            findings.extend(check_bloom_batch(
                p.relative_to(root).as_posix(), p.read_text()))
    return findings


# --------------------------------------------------------------------------
# Self-test: seed one violation per rule; every seed must be caught, and
# the allow-escape must suppress.

SELFTEST_RAW_MUTEX = """\
#include <mutex>
std::mutex mu;
void f() { std::lock_guard<std::mutex> lock(mu); }
"""

SELFTEST_RAW_MUTEX_ALLOWED = """\
// authdb-lint: allow(raw-mutex)
std::mutex interop_with_external_api;
"""

SELFTEST_EPOCH_PIN = """\
Result<SelectionAnswer> ShardedQueryServer::Select(int64_t lo,
                                                   int64_t hi) const {
  Shard& sh = *shards_[0];
  sh.builder.Apply(piece);
  std::shared_ptr<const EpochDescriptor> d = std::atomic_load(&current_);
  return FreezeShard(0);
}
void ShardedQueryServer::ApplyUpdate(const SignedRecordUpdate& msg) {
  shards_[0]->builder.Apply(msg);  // write path: must NOT be flagged
}
"""

SELFTEST_TEST_LABELS = """\
set(AUTHDB_TEST_SUITES
    labeled_test
    naked_test
)
add_test(NAME extra_check COMMAND extra_check)
set_tests_properties(labeled_test PROPERTIES LABELS "core")
"""

SELFTEST_BENCH = [
    ("bench/bench_good.cc", "int main() { BenchRun run(...); }"),
    ("bench/bench_micro.cc", "int main() { benchmark::Initialize(...); }"),
    ("bench/bench_naked.cc", "int main() { printf(\"fast\\n\"); }"),
]

SELFTEST_BATCH_PATH = """\
void BatchEngine::Bad(const PlanBatch& batch) {
  for (const Query& plan : batch.plans) {
    srv_.Execute(plan);
  }
  for (size_t s = 0; s < shards; ++s) {
    RunVisits(visits);  // not a per-plan loop: must NOT be flagged
  }
  for (size_t p = 0; p < plans.size(); ++p) {
    results.push_back(StitchSelect(p));  // stitch call: must NOT be flagged
  }
  for (const Query& plan : batch.plans) {
    // authdb-lint: allow(batch-path)
    srv_.Execute(plan);
  }
}
"""


SELFTEST_STATS_SURFACE = [
    ("src/server/orphan.h", "struct OrphanStats { uint64_t hits = 0; };"),
    ("src/server/folded.h", "struct FoldedStats { uint64_t hits = 0; };"),
    ("src/server/escaped.h",
     "// authdb-lint: allow(stats-surface)\n"
     "struct InternalScratchStats { uint64_t hits = 0; };"),
]
SELFTEST_STATS_METRICS_TEXT = """\
struct ServerMetrics { };
void Fold(const FoldedStats& s);
"""

SELFTEST_METRICS_DOC_CC = """\
  put("exec.batches", static_cast<double>(exec.batches));
  put("exec.undocumented_thing", 0.0);
  out.emplace_back(std::string("exec.batch.shard_busy_us.") + sfx, 0.0);
"""
SELFTEST_METRICS_DOC_README = """\
| `exec.batches` | ExecuteBatch calls served |
| `exec.batch.shard_busy_us.<s>` | per-shard busy time |
"""

SELFTEST_CRYPTO_BATCH = """\
void Hot(const Record* recs, size_t n, Digest160* out) {
  Digest160 d = Sha1::Hash(msg);                  // flagged
  Digest160 d2 = recs[0].Digest();                // flagged
  BasSignature s = ctx->Finalize(acc);            // flagged
  Sha1::HashMany(msgs.data(), msgs.size(), out);  // batched: silent
  RecordDigestMany(recs, n, out);                 // batched: silent
  auto sigs = ctx->FinalizeBatch(accs);           // batched: silent
  // authdb-lint: allow(crypto-batch) lone boundary witness
  Digest160 d3 = recs[n - 1].Digest();            // escaped: silent
}
"""


SELFTEST_BLOOM_BATCH = """\
void Stitch(const CertifiedPartition* part, int64_t a) {
  bool hit = part->filter.MayContainInt64(a);       // flagged
  bool hit2 = part->filter.MayContain(key);         // flagged
  part->filter.ProbeMany(keys.data(), n, out);      // batched: silent
  // authdb-lint: allow(bloom-batch) ablation-only scalar probe path
  bool hit3 = part->filter.MayContainInt64(a);      // escaped: silent
}
"""


def self_test():
    failures = []

    def expect(label, findings, rule, count):
        got = [f for f in findings if f.rule == rule]
        if len(got) != count:
            failures.append("%s: expected %d %s finding(s), got %d: %r"
                            % (label, count, rule, len(got), got))

    expect("seeded raw mutex",
           check_raw_mutex("fake.cc", SELFTEST_RAW_MUTEX), "raw-mutex", 3)
    expect("allow-escape",
           check_raw_mutex("fake.cc", SELFTEST_RAW_MUTEX_ALLOWED),
           "raw-mutex", 0)
    # Seeded read path: shards_ deref, builder access, raw current_,
    # Freeze call — and none from the non-const write path below it.
    expect("seeded epoch-pin",
           check_epoch_pin("fake.cc", SELFTEST_EPOCH_PIN), "epoch-pin", 4)
    expect("seeded unlabeled suites",
           check_test_labels("fake.txt", SELFTEST_TEST_LABELS),
           "test-labels", 2)
    expect("seeded naked bench",
           check_bench_json(SELFTEST_BENCH), "bench-json", 1)
    naked = check_bench_json(SELFTEST_BENCH)
    if naked and naked[0].path != "bench/bench_naked.cc":
        failures.append("bench-json flagged the wrong file: %r" % (naked,))
    # Seeded per-plan dispatch is caught once; the per-shard loop, the
    # stitch call, and the allow-escaped loop all stay silent.
    expect("seeded batch-path",
           check_batch_path("fake.cc", SELFTEST_BATCH_PATH),
           "batch-path", 1)
    # Orphan stats struct caught; the folded one and the allow-escape stay
    # silent.
    stats = check_stats_surface(SELFTEST_STATS_SURFACE,
                                SELFTEST_STATS_METRICS_TEXT)
    expect("seeded orphan stats struct", stats, "stats-surface", 1)
    if stats and stats[0].path != "src/server/orphan.h":
        failures.append("stats-surface flagged the wrong file: %r" % (stats,))
    # Undocumented metric name caught; the documented scalar and the
    # per-shard prefix (matched with its '.' suffix trimmed) stay silent.
    expect("seeded undocumented metric",
           check_metrics_doc("fake.cc", SELFTEST_METRICS_DOC_CC,
                             SELFTEST_METRICS_DOC_README),
           "metrics-doc", 1)
    # Three scalar crypto calls caught; the batched siblings and the
    # allow-escaped single-shot site stay silent.
    expect("seeded scalar crypto",
           check_crypto_batch("fake.cc", SELFTEST_CRYPTO_BATCH),
           "crypto-batch", 3)
    # Two per-key probes caught; the ProbeMany call and the allow-escaped
    # ablation site stay silent.
    expect("seeded scalar bloom probe",
           check_bloom_batch("fake.cc", SELFTEST_BLOOM_BATCH),
           "bloom-batch", 2)

    if failures:
        for f in failures:
            print("self-test FAILED: %s" % f, file=sys.stderr)
        return 1
    print("self-test ok: every seeded violation is caught and the "
          "allow-escape suppresses")
    return 0


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=None,
                    help="repo root (default: the script's parent repo)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the seeded-violation check of the rules")
    args = ap.parse_args(argv)

    if args.self_test:
        return self_test()

    root = args.root or pathlib.Path(__file__).resolve().parent.parent
    findings = lint_tree(root)
    for f in findings:
        print("%s:%d: [%s] %s" % (f.path, f.line, f.rule, f.msg))
    if findings:
        print("%d invariant violation(s)" % len(findings), file=sys.stderr)
        return 1
    print("invariants ok: epoch-pin, raw-mutex, test-labels, bench-json, "
          "batch-path, stats-surface, metrics-doc, crypto-batch, "
          "bloom-batch")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
