#ifndef AUTHDB_COMMON_CLOCK_H_
#define AUTHDB_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace authdb {

/// Abstract time source. The freshness protocol (Section 3.1 of the paper)
/// timestamps every record certification; tests and the discrete-event
/// simulator need to control time explicitly, so all protocol components
/// take a Clock rather than reading the wall clock directly.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in microseconds since an arbitrary epoch.
  virtual uint64_t NowMicros() const = 0;
  double NowSeconds() const { return NowMicros() * 1e-6; }
};

/// Steady-clock microseconds as a free function, for call sites that need
/// monotonic timestamps (latency measurement) without threading a Clock
/// through their interface.
inline uint64_t MonotonicMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Real wall-clock time.
class SystemClock : public Clock {
 public:
  uint64_t NowMicros() const override { return MonotonicMicros(); }
};

/// Manually advanced clock for tests and simulation.
class ManualClock : public Clock {
 public:
  explicit ManualClock(uint64_t start_micros = 0) : now_(start_micros) {}
  uint64_t NowMicros() const override { return now_; }
  void AdvanceMicros(uint64_t d) { now_ += d; }
  void AdvanceSeconds(double s) { now_ += static_cast<uint64_t>(s * 1e6); }
  void SetMicros(uint64_t t) { now_ = t; }

 private:
  uint64_t now_;
};

/// Stopwatch over the wall clock, for micro-benchmark calibration.
class Stopwatch {
 public:
  Stopwatch() { Reset(); }
  void Reset() { start_ = std::chrono::steady_clock::now(); }
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace authdb

#endif  // AUTHDB_COMMON_CLOCK_H_
