#ifndef AUTHDB_COMMON_LOGGING_H_
#define AUTHDB_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace authdb {

/// Abort the process with a message; used for invariant violations that
/// indicate a programming error rather than a recoverable condition.
[[noreturn]] inline void FatalError(const char* file, int line,
                                    const char* expr) {
  std::fprintf(stderr, "[authdb] FATAL %s:%d: check failed: %s\n", file, line,
               expr);
  std::abort();
}

}  // namespace authdb

/// Always-on invariant check (database code keeps checks in release builds;
/// the cost is negligible next to crypto and I/O).
#define AUTHDB_CHECK(cond)                                   \
  do {                                                       \
    if (!(cond)) ::authdb::FatalError(__FILE__, __LINE__, #cond); \
  } while (0)

#define AUTHDB_DCHECK(cond) AUTHDB_CHECK(cond)

#endif  // AUTHDB_COMMON_LOGGING_H_
