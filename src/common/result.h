#ifndef AUTHDB_COMMON_RESULT_H_
#define AUTHDB_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/status.h"

namespace authdb {

/// Value-or-Status container, in the style of arrow::Result.
///
/// A Result<T> holds either a T (when the producing operation succeeded) or a
/// non-OK Status explaining why it failed.
template <typename T>
class Result {
 public:
  /// Construct a successful result.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Construct a failed result. `status` must be non-OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    AUTHDB_CHECK(!status_.ok());
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Access the contained value. Dies if the result holds an error.
  const T& value() const& {
    AUTHDB_CHECK(ok());
    return *value_;
  }
  T& value() & {
    AUTHDB_CHECK(ok());
    return *value_;
  }
  T&& MoveValue() {
    AUTHDB_CHECK(ok());
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Assign the value of a Result expression or propagate its error.
#define AUTHDB_ASSIGN_OR_RETURN(lhs, expr)        \
  auto AUTHDB_CONCAT_(_res_, __LINE__) = (expr);  \
  if (!AUTHDB_CONCAT_(_res_, __LINE__).ok())      \
    return AUTHDB_CONCAT_(_res_, __LINE__).status(); \
  lhs = AUTHDB_CONCAT_(_res_, __LINE__).MoveValue()

#define AUTHDB_CONCAT_(a, b) AUTHDB_CONCAT_IMPL_(a, b)
#define AUTHDB_CONCAT_IMPL_(a, b) a##b

}  // namespace authdb

#endif  // AUTHDB_COMMON_RESULT_H_
