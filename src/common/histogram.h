#ifndef AUTHDB_COMMON_HISTOGRAM_H_
#define AUTHDB_COMMON_HISTOGRAM_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace authdb {

/// Fixed-bucket latency histogram: bucket i counts operations whose latency
/// in microseconds falls in [2^i, 2^{i+1}) (bucket 0 is [0, 2)). Cheap to
/// record under load, mergeable across client threads, and good enough for
/// percentile reporting at the resolution a throughput harness needs.
class LatencyHistogram {
 public:
  void Record(uint64_t micros) {
    ++buckets_[BucketOf(micros)];
    ++count_;
    sum_micros_ += micros;
    if (micros > max_micros_) max_micros_ = micros;
  }

  void Merge(const LatencyHistogram& other) {
    for (size_t i = 0; i < buckets_.size(); ++i)
      buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    sum_micros_ += other.sum_micros_;
    if (other.max_micros_ > max_micros_) max_micros_ = other.max_micros_;
  }

  uint64_t count() const { return count_; }
  double MeanMicros() const {
    return count_ == 0 ? 0 : static_cast<double>(sum_micros_) / count_;
  }

  /// Upper edge of the bucket containing the p-quantile (p in [0, 1]).
  uint64_t PercentileMicros(double p) const {
    if (count_ == 0) return 0;
    if (p < 0) p = 0;
    if (p > 1) p = 1;
    uint64_t target = static_cast<uint64_t>(p * static_cast<double>(count_));
    if (target >= count_) target = count_ - 1;
    uint64_t seen = 0;
    for (size_t i = 0; i < buckets_.size(); ++i) {
      seen += buckets_[i];
      if (seen > target) return (uint64_t{2} << i) - 1;  // bucket upper edge
    }
    return max_micros_;
  }

  uint64_t MaxMicros() const { return max_micros_; }

 private:
  static int BucketOf(uint64_t micros) {
    int b = 0;
    while ((uint64_t{2} << b) <= micros && b < 39) ++b;
    return b;
  }

  std::array<uint64_t, 40> buckets_{};
  uint64_t count_ = 0;
  uint64_t sum_micros_ = 0;
  uint64_t max_micros_ = 0;
};

}  // namespace authdb

#endif  // AUTHDB_COMMON_HISTOGRAM_H_
