#ifndef AUTHDB_COMMON_HISTOGRAM_H_
#define AUTHDB_COMMON_HISTOGRAM_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace authdb {

/// Log-bucketed HDR-style latency histogram. Values below 2^kSubBits are
/// recorded exactly; above that, each power-of-two octave is split into
/// 2^kSubBits linear sub-buckets, so the bucket width at value v is at
/// most v / 2^kSubBits — a bounded ~3% relative error at every quantile,
/// including p99/p999, instead of the 2x error of plain power-of-two
/// buckets. Cheap to record under load (one shift + one clz) and mergeable
/// across client threads.
class LatencyHistogram {
 public:
  void Record(uint64_t micros) {
    ++buckets_[BucketOf(micros)];
    ++count_;
    sum_micros_ += micros;
    if (micros > max_micros_) max_micros_ = micros;
  }

  void Merge(const LatencyHistogram& other) {
    for (size_t i = 0; i < buckets_.size(); ++i)
      buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    sum_micros_ += other.sum_micros_;
    if (other.max_micros_ > max_micros_) max_micros_ = other.max_micros_;
  }

  uint64_t count() const { return count_; }
  uint64_t SumMicros() const { return sum_micros_; }
  double MeanMicros() const {
    return count_ == 0 ? 0 : static_cast<double>(sum_micros_) / count_;
  }

  /// Upper edge of the bucket containing the p-quantile (p in [0, 1]).
  uint64_t PercentileMicros(double p) const {
    if (count_ == 0) return 0;
    if (p < 0) p = 0;
    if (p > 1) p = 1;
    uint64_t target = static_cast<uint64_t>(p * static_cast<double>(count_));
    if (target >= count_) target = count_ - 1;
    uint64_t seen = 0;
    for (size_t i = 0; i < buckets_.size(); ++i) {
      seen += buckets_[i];
      if (seen > target) {
        uint64_t edge = BucketUpperEdge(i);
        // The true maximum is a tighter edge for the top bucket.
        return edge < max_micros_ ? edge : max_micros_;
      }
    }
    return max_micros_;
  }

  uint64_t MaxMicros() const { return max_micros_; }

 private:
  /// 2^kSubBits linear sub-buckets per octave: relative quantile error is
  /// bounded by 1 / (2^kSubBits + 1) ~ 3%.
  static constexpr uint64_t kSubBits = 5;
  static constexpr uint64_t kSub = uint64_t{1} << kSubBits;  // 32
  /// Octaves above the exact region; covers values up to ~2^45 us.
  static constexpr size_t kOctaves = 41;
  static constexpr size_t kBuckets = kOctaves * kSub;

  static size_t BucketOf(uint64_t v) {
    if (v < kSub) return static_cast<size_t>(v);  // exact region
    int msb = 63 - __builtin_clzll(v);
    size_t shift = static_cast<size_t>(msb) - kSubBits;
    size_t idx = (static_cast<size_t>(msb) - kSubBits) * kSub +
                 static_cast<size_t>(v >> shift);
    return idx < kBuckets ? idx : kBuckets - 1;
  }

  static uint64_t BucketUpperEdge(size_t idx) {
    if (idx < kSub) return static_cast<uint64_t>(idx);  // exact
    size_t shift = idx / kSub - 1;
    uint64_t base = static_cast<uint64_t>(idx % kSub + kSub) << shift;
    return base + ((uint64_t{1} << shift) - 1);
  }

  std::array<uint64_t, kBuckets> buckets_{};
  uint64_t count_ = 0;
  uint64_t sum_micros_ = 0;
  uint64_t max_micros_ = 0;
};

}  // namespace authdb

#endif  // AUTHDB_COMMON_HISTOGRAM_H_
