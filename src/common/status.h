#ifndef AUTHDB_COMMON_STATUS_H_
#define AUTHDB_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace authdb {

/// Error categories used across the library. Mirrors the RocksDB/Arrow
/// convention of returning a Status instead of throwing exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kCorruption,        ///< on-disk or in-transit data failed an integrity check
  kVerificationFailed,///< a cryptographic proof did not verify
  kIOError,
  kOutOfRange,
  kResourceExhausted,
  kAborted,           ///< transaction aborted (e.g. lock conflict)
  kInternal,
};

/// Lightweight status object carried by fallible operations.
///
/// Usage:
///   Status s = tree.Insert(k, v);
///   if (!s.ok()) return s;
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status Corruption(std::string m) {
    return Status(StatusCode::kCorruption, std::move(m));
  }
  static Status VerificationFailed(std::string m) {
    return Status(StatusCode::kVerificationFailed, std::move(m));
  }
  static Status IOError(std::string m) {
    return Status(StatusCode::kIOError, std::move(m));
  }
  static Status OutOfRange(std::string m) {
    return Status(StatusCode::kOutOfRange, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status Aborted(std::string m) {
    return Status(StatusCode::kAborted, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsVerificationFailed() const {
    return code_ == StatusCode::kVerificationFailed;
  }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }

  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
};

/// Propagate a non-OK status to the caller.
#define AUTHDB_RETURN_NOT_OK(expr)             \
  do {                                         \
    ::authdb::Status _s = (expr);              \
    if (!_s.ok()) return _s;                   \
  } while (0)

}  // namespace authdb

#endif  // AUTHDB_COMMON_STATUS_H_
