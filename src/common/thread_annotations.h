#ifndef AUTHDB_COMMON_THREAD_ANNOTATIONS_H_
#define AUTHDB_COMMON_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

/// Clang Thread Safety Analysis for the concurrency spine.
///
/// The capability model: a Mutex is a *capability* — the ability to touch
/// the data it guards. Fields declare their owning mutex with GUARDED_BY,
/// functions declare the capabilities they need with REQUIRES (caller must
/// hold the lock) or manage with ACQUIRE/RELEASE (lock/unlock inside), and
/// EXCLUDES documents locks a function takes itself and so must NOT be held
/// on entry. Clang then proves, at compile time and on every path, that no
/// guarded field is touched without its capability held — the lock
/// discipline the epoch-snapshot serving layer depends on stops being a
/// comment and becomes a build error (`-DAUTHDB_THREAD_SAFETY=ON`, clang
/// only; gcc compiles the macros away to nothing).
///
/// Everything mutex-shaped in the project goes through these wrappers:
/// `scripts/lint_invariants.py` rejects naked std::mutex / std::lock_guard
/// outside this header, because an unannotated mutex is invisible to the
/// analysis and silently re-opens the hole.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define AUTHDB_TSA(x) __attribute__((x))
#endif
#endif
#ifndef AUTHDB_TSA
#define AUTHDB_TSA(x)  // no-op outside clang
#endif

#define CAPABILITY(x) AUTHDB_TSA(capability(x))
#define SCOPED_CAPABILITY AUTHDB_TSA(scoped_lockable)
#define GUARDED_BY(x) AUTHDB_TSA(guarded_by(x))
#define PT_GUARDED_BY(x) AUTHDB_TSA(pt_guarded_by(x))
#define ACQUIRE(...) AUTHDB_TSA(acquire_capability(__VA_ARGS__))
#define RELEASE(...) AUTHDB_TSA(release_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) AUTHDB_TSA(try_acquire_capability(__VA_ARGS__))
#define REQUIRES(...) AUTHDB_TSA(requires_capability(__VA_ARGS__))
#define EXCLUDES(...) AUTHDB_TSA(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) AUTHDB_TSA(assert_capability(x))
#define RETURN_CAPABILITY(x) AUTHDB_TSA(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS AUTHDB_TSA(no_thread_safety_analysis)

namespace authdb {

class CondVar;

/// std::mutex with the capability attribute: the analysis tracks which
/// scopes hold it and which fields (GUARDED_BY(this mutex)) it protects.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock (the std::lock_guard replacement). SCOPED_CAPABILITY tells the
/// analysis the constructor acquires and the destructor releases, so a
/// MutexLock in scope satisfies GUARDED_BY/REQUIRES checks.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to the annotated Mutex. Wait* atomically
/// release and re-acquire `mu`, so from the static analysis's view the
/// capability is held across the call — which is exactly the caller's
/// contract (REQUIRES(mu)). Predicate waits are written as explicit
/// `while (!pred) cv.Wait(mu);` loops at the call site: the predicate then
/// reads its guarded fields inside the annotated scope instead of inside
/// an unanalyzable lambda.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();  // ownership returns to the caller's scope
  }

  std::cv_status WaitUntil(
      Mutex& mu, std::chrono::steady_clock::time_point deadline)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    std::cv_status st = cv_.wait_until(lk, deadline);
    lk.release();
    return st;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace authdb

#endif  // AUTHDB_COMMON_THREAD_ANNOTATIONS_H_
