#include "common/status.h"

#include <string>

namespace authdb {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kCorruption: return "Corruption";
    case StatusCode::kVerificationFailed: return "VerificationFailed";
    case StatusCode::kIOError: return "IOError";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kResourceExhausted: return "ResourceExhausted";
    case StatusCode::kAborted: return "Aborted";
    case StatusCode::kInternal: return "Internal";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace authdb
