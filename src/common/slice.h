#ifndef AUTHDB_COMMON_SLICE_H_
#define AUTHDB_COMMON_SLICE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace authdb {

/// Non-owning view over a byte range, in the style of rocksdb::Slice.
class Slice {
 public:
  Slice() : data_(nullptr), size_(0) {}
  Slice(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  Slice(const char* data, size_t size)
      : data_(reinterpret_cast<const uint8_t*>(data)), size_(size) {}
  Slice(const std::string& s)  // NOLINT(runtime/explicit)
      : data_(reinterpret_cast<const uint8_t*>(s.data())), size_(s.size()) {}
  Slice(const std::vector<uint8_t>& v)  // NOLINT(runtime/explicit)
      : data_(v.data()), size_(v.size()) {}

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  uint8_t operator[](size_t i) const { return data_[i]; }

  std::string ToString() const {
    return std::string(reinterpret_cast<const char*>(data_), size_);
  }
  std::vector<uint8_t> ToBytes() const {
    return std::vector<uint8_t>(data_, data_ + size_);
  }

  bool operator==(const Slice& other) const {
    return size_ == other.size_ &&
           (size_ == 0 || std::memcmp(data_, other.data_, size_) == 0);
  }

 private:
  const uint8_t* data_;
  size_t size_;
};

/// Growable byte buffer with little-endian integer append helpers, used to
/// build canonical byte strings for hashing and signing.
class ByteBuffer {
 public:
  void PutU8(uint8_t v) { bytes_.push_back(v); }
  void PutU32(uint32_t v) {
    for (int i = 0; i < 4; ++i) bytes_.push_back((v >> (8 * i)) & 0xff);
  }
  void PutU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) bytes_.push_back((v >> (8 * i)) & 0xff);
  }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutBytes(Slice s) { bytes_.insert(bytes_.end(), s.data(), s.data() + s.size()); }
  void PutString(const std::string& s) { PutBytes(Slice(s)); }

  Slice AsSlice() const { return Slice(bytes_); }
  const std::vector<uint8_t>& bytes() const { return bytes_; }
  size_t size() const { return bytes_.size(); }
  void Clear() { bytes_.clear(); }

 private:
  std::vector<uint8_t> bytes_;
};

}  // namespace authdb

#endif  // AUTHDB_COMMON_SLICE_H_
