#ifndef AUTHDB_COMMON_RANDOM_H_
#define AUTHDB_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>

namespace authdb {

/// Deterministic 64-bit PRNG (xoshiro256** seeded with SplitMix64).
///
/// All experiment drivers take an explicit Rng so runs are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    for (int i = 0; i < 4; ++i) {
      seed += 0x9e3779b97f4a7c15ULL;
      uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s_[i] = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * (1.0 / 9007199254740992.0); }

  /// Exponentially distributed variate with the given rate (for Poisson
  /// arrival processes).
  double Exponential(double rate) {
    double u;
    do {
      u = NextDouble();
    } while (u <= 0.0);
    return -std::log(u) / rate;
  }

  bool OneIn(uint64_t n) { return Uniform(n) == 0; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace authdb

#endif  // AUTHDB_COMMON_RANDOM_H_
