#include "workload/generator.h"

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

namespace authdb {

std::vector<Record> WorkloadGenerator::MakeRecords() const {
  Rng rng(config_.seed ^ 0x9e3779b9);
  std::vector<Record> out;
  out.reserve(config_.n_records);
  for (uint64_t k = 0; k < config_.n_records; ++k) {
    Record r;
    r.attrs.resize(config_.n_attrs);
    r.attrs[0] = static_cast<int64_t>(k);
    for (uint32_t a = 1; a < config_.n_attrs; ++a)
      r.attrs[a] = static_cast<int64_t>(rng.Next() >> 16);
    out.push_back(std::move(r));
  }
  return out;
}

std::pair<int64_t, int64_t> WorkloadGenerator::NextRange() {
  double sf = config_.selectivity * (0.5 + rng_.NextDouble());  // [sf/2,3sf/2)
  uint64_t q = std::max<uint64_t>(
      1, static_cast<uint64_t>(sf * config_.n_records));
  return NextRangeWithCardinality(q);
}

std::pair<int64_t, int64_t> WorkloadGenerator::NextRangeWithCardinality(
    uint64_t q) {
  q = std::min<uint64_t>(q, config_.n_records);
  uint64_t lo = rng_.Uniform(config_.n_records - q + 1);
  return {static_cast<int64_t>(lo), static_cast<int64_t>(lo + q - 1)};
}

int64_t WorkloadGenerator::NextUpdateKey() {
  return static_cast<int64_t>(rng_.Uniform(config_.n_records));
}

std::vector<int64_t> WorkloadGenerator::NextUpdateValues(int64_t key) {
  std::vector<int64_t> attrs(config_.n_attrs);
  attrs[0] = key;
  for (uint32_t a = 1; a < config_.n_attrs; ++a)
    attrs[a] = static_cast<int64_t>(rng_.Next() >> 16);
  return attrs;
}

}  // namespace authdb
