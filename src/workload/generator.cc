#include "workload/generator.h"

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

namespace authdb {

std::vector<Record> WorkloadGenerator::MakeRecords() const {
  Rng rng(config_.seed ^ 0x9e3779b9);
  std::vector<Record> out;
  out.reserve(config_.n_records);
  for (uint64_t k = 0; k < config_.n_records; ++k) {
    Record r;
    r.attrs.resize(config_.n_attrs);
    r.attrs[0] = static_cast<int64_t>(k);
    for (uint32_t a = 1; a < config_.n_attrs; ++a)
      r.attrs[a] = static_cast<int64_t>(rng.Next() >> 16);
    out.push_back(std::move(r));
  }
  return out;
}

std::vector<Record> WorkloadGenerator::MakeCompositeRecords() const {
  Rng rng(config_.seed ^ 0x517cc1b7);
  std::vector<Record> out;
  uint32_t max_dups = std::max<uint32_t>(1, config_.join_max_dups);
  out.reserve(config_.n_records);
  for (uint64_t b = 0; b < config_.n_records; ++b) {
    uint32_t dups = 1 + static_cast<uint32_t>(rng.Uniform(max_dups));
    for (uint32_t d = 0; d < dups; ++d) {
      Record r;
      r.attrs.resize(std::max<uint32_t>(config_.n_attrs, 2));
      r.attrs[0] = JoinCompositeKey(static_cast<int64_t>(b), d);
      r.attrs[1] = static_cast<int64_t>(b);
      for (uint32_t a = 2; a < r.attrs.size(); ++a)
        r.attrs[a] = static_cast<int64_t>(rng.Next() >> 16);
      out.push_back(std::move(r));
    }
  }
  return out;
}

WorkloadGenerator::OpKind WorkloadGenerator::NextOp() {
  if (rng_.NextDouble() < config_.update_fraction) return OpKind::kUpdate;
  double kind = rng_.NextDouble();
  if (kind < config_.join_fraction) return OpKind::kJoin;
  if (kind < config_.join_fraction + config_.projection_fraction)
    return OpKind::kProject;
  return OpKind::kSelect;
}

std::vector<int64_t> WorkloadGenerator::NextJoinProbes() {
  std::vector<int64_t> probes;
  probes.reserve(config_.join_probes);
  for (size_t i = 0; i < config_.join_probes; ++i)
    probes.push_back(static_cast<int64_t>(rng_.Uniform(2 * config_.n_records)));
  return probes;
}

std::pair<int64_t, int64_t> WorkloadGenerator::NextRange() {
  double sf = config_.selectivity * (0.5 + rng_.NextDouble());  // [sf/2,3sf/2)
  uint64_t q = std::max<uint64_t>(
      1, static_cast<uint64_t>(sf * config_.n_records));
  return NextRangeWithCardinality(q);
}

std::pair<int64_t, int64_t> WorkloadGenerator::NextRangeWithCardinality(
    uint64_t q) {
  q = std::min<uint64_t>(q, config_.n_records);
  uint64_t lo = rng_.Uniform(config_.n_records - q + 1);
  return {static_cast<int64_t>(lo), static_cast<int64_t>(lo + q - 1)};
}

int64_t WorkloadGenerator::NextUpdateKey() {
  return static_cast<int64_t>(rng_.Uniform(config_.n_records));
}

std::vector<int64_t> WorkloadGenerator::NextUpdateValues(int64_t key) {
  std::vector<int64_t> attrs(config_.n_attrs);
  attrs[0] = key;
  for (uint32_t a = 1; a < config_.n_attrs; ++a)
    attrs[a] = static_cast<int64_t>(rng_.Next() >> 16);
  return attrs;
}

}  // namespace authdb
