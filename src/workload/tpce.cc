#include "workload/tpce.h"

#include <algorithm>
#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "core/join.h"

namespace authdb {

TpceJoinWorkload::TpceJoinWorkload(const Config& config) : cfg_(config) {
  AUTHDB_CHECK(cfg_.scale_divisor >= 1);
  // Distinct B values spaced 4 apart: every pair of consecutive values
  // leaves unmatched integers in between for the alpha sweep.
  uint64_t n = ib();
  distinct_b_.reserve(n);
  for (uint64_t i = 0; i < n; ++i)
    distinct_b_.push_back(static_cast<int64_t>(4 * (i + 1)));
}

std::vector<Record> TpceJoinWorkload::MakeHoldingRows() const {
  Rng rng(cfg_.seed);
  uint64_t rows = ns();
  uint64_t n_b = distinct_b_.size();
  // Each distinct B value receives at least one row; the remainder are
  // assigned uniformly (the paper's Holding subset averages ns/ib ~ 261
  // rows per value).
  std::vector<uint32_t> per_value(n_b, 1);
  for (uint64_t i = n_b; i < rows; ++i) ++per_value[rng.Uniform(n_b)];
  std::vector<Record> out;
  out.reserve(rows);
  for (uint64_t v = 0; v < n_b; ++v) {
    for (uint32_t d = 0; d < per_value[v]; ++d) {
      Record r;
      r.attrs = {JoinCompositeKey(distinct_b_[v], d), distinct_b_[v],
                 static_cast<int64_t>(rng.Uniform(10'000))};
      out.push_back(std::move(r));
    }
  }
  return out;
}

std::vector<int64_t> TpceJoinWorkload::MakeSecurityValues(double alpha,
                                                          uint64_t n) const {
  AUTHDB_CHECK(alpha >= 0 && alpha <= 1);
  Rng rng(cfg_.seed ^ 0xA1FA);
  uint64_t matched = static_cast<uint64_t>(alpha * n + 0.5);
  matched = std::min(matched, n);
  std::set<int64_t> values;
  // Matched values: sampled from the B domain.
  while (values.size() < matched) {
    values.insert(distinct_b_[rng.Uniform(distinct_b_.size())]);
    if (values.size() >= distinct_b_.size()) break;  // domain exhausted
  }
  // Unmatched values: integers in the gaps (B values are multiples of 4;
  // offsets 1..3 never match).
  while (values.size() < n) {
    int64_t base = distinct_b_[rng.Uniform(distinct_b_.size())];
    values.insert(base + 1 + static_cast<int64_t>(rng.Uniform(3)));
  }
  return std::vector<int64_t>(values.begin(), values.end());
}

}  // namespace authdb
