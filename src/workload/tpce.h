#ifndef AUTHDB_WORKLOAD_TPCE_H_
#define AUTHDB_WORKLOAD_TPCE_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "core/record.h"

namespace authdb {

/// Synthetic stand-ins for the TPC-E tables used by the equi-join
/// experiments (Section 5.5): 'Security' (R, 6850 rows, IA = 6850 distinct
/// R.A) joined with a 'Holding' subset (S, 894,000 rows, IB = 3425 distinct
/// S.B). TPC-E data is not redistributable; these generators reproduce the
/// cardinalities and the controllable match ratio alpha, which is all the
/// VO-size experiments depend on (substitution #4 in DESIGN.md).
class TpceJoinWorkload {
 public:
  struct Config {
    uint64_t nr = 6850;       ///< |R| = IA (R.A is a key)
    uint64_t ns = 894'000;    ///< |S|
    uint64_t ib = 3425;       ///< distinct S.B values
    uint64_t seed = 7;
    /// Scale factor for quick runs: divides nr/ns/ib.
    uint64_t scale_divisor = 1;
  };

  explicit TpceJoinWorkload(const Config& config);

  /// The distinct S.B domain (sorted). B values are spread over a sparse
  /// integer domain so unmatched R.A values exist between them.
  const std::vector<int64_t>& distinct_b() const { return distinct_b_; }

  /// S rows: attrs = {composite key, B, qty}. Sorted by composite key.
  std::vector<Record> MakeHoldingRows() const;

  /// R.A values with match ratio alpha: round(alpha * n) values drawn from
  /// distinct_b(), the rest from the gaps between B values.
  std::vector<int64_t> MakeSecurityValues(double alpha, uint64_t n) const;

  uint64_t nr() const { return cfg_.nr / cfg_.scale_divisor; }
  uint64_t ns() const { return cfg_.ns / cfg_.scale_divisor; }
  uint64_t ib() const { return cfg_.ib / cfg_.scale_divisor; }

 private:
  Config cfg_;
  std::vector<int64_t> distinct_b_;
};

}  // namespace authdb

#endif  // AUTHDB_WORKLOAD_TPCE_H_
