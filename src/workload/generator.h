#ifndef AUTHDB_WORKLOAD_GENERATOR_H_
#define AUTHDB_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/join.h"
#include "core/record.h"

namespace authdb {

/// Workload machinery of Section 5.1: N uniformly generated records of
/// RecLen bytes with integer keys, selection queries uniform over the key
/// domain with selectivity in [sf/2, 3sf/2], and an Upd% update mix —
/// extended with the unified-surface mix (join / projection fractions and
/// composite-keyed S relations) for the mixed-query benches.
class WorkloadGenerator {
 public:
  struct Config {
    uint64_t n_records = 1'000'000;
    uint32_t record_len = 512;
    uint32_t n_attrs = 4;        ///< attrs[0] is the indexed key
    double selectivity = 0.001;  ///< sf (fraction of records per range query)
    double update_fraction = 0.1;
    /// Mixed-query surface: fractions of the read ops that are equi-join /
    /// projection plans (the remainder is selections).
    double join_fraction = 0.0;
    double projection_fraction = 0.0;
    size_t join_probes = 4;     ///< R.A values per join op
    uint32_t join_max_dups = 1; ///< duplicate rows per B value (composite S)
    uint64_t seed = 42;
  };

  enum class OpKind { kUpdate, kSelect, kJoin, kProject };

  explicit WorkloadGenerator(const Config& config)
      : config_(config), rng_(config.seed) {}

  /// Records with dense keys 0..N-1 and uniform attribute values.
  std::vector<Record> MakeRecords() const;

  /// Composite-keyed S relation for join workloads: n_records distinct B
  /// values 0..N-1, each with 1..join_max_dups duplicate rows keyed
  /// JoinCompositeKey(B, dup); attrs[1] carries B.
  std::vector<Record> MakeCompositeRecords() const;

  /// Next operation kind under the configured mix (update first, then
  /// join/projection fractions of the read remainder).
  OpKind NextOp();

  /// R.A probe values for one join op, uniform over [0, 2N): roughly half
  /// hit S (B in [0, N)) and half must be proven absent.
  std::vector<int64_t> NextJoinProbes();

  /// Range [lo, hi] with selectivity drawn from [sf/2, 3sf/2], uniform
  /// placement (Section 5.1).
  std::pair<int64_t, int64_t> NextRange();
  /// Exact-cardinality range (point query: q = 1).
  std::pair<int64_t, int64_t> NextRangeWithCardinality(uint64_t q);

  /// Key of the next record to update (uniform).
  int64_t NextUpdateKey();
  /// Fresh attribute values for an update of `key`.
  std::vector<int64_t> NextUpdateValues(int64_t key);

  bool NextIsUpdate() { return rng_.NextDouble() < config_.update_fraction; }

  const Config& config() const { return config_; }
  Rng* rng() { return &rng_; }

 private:
  Config config_;
  Rng rng_;
};

}  // namespace authdb

#endif  // AUTHDB_WORKLOAD_GENERATOR_H_
