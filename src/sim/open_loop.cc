#include "sim/open_loop.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

#include "common/clock.h"
#include "common/logging.h"
#include "common/random.h"

namespace authdb {
namespace {

// Instantaneous arrival rate (plans/us) at schedule time `t_micros`.
// Poisson is stationary; burst alternates high/low windows whose weighted
// mean equals the base rate, so the offered-QPS knob stays truthful.
double RateAt(const OpenLoopOptions& o, uint64_t t_micros) {
  const double base = o.target_qps * 1e-6;
  if (o.arrivals == OpenLoopOptions::Arrivals::kPoisson) return base;
  const double duty = std::min(std::max(o.burst_duty, 1e-6), 1.0 - 1e-6);
  const double high = base * o.burst_factor;
  // duty*high + (1-duty)*low = base  =>  low solves the long-run mean.
  const double low =
      std::max(base * (1.0 - duty * o.burst_factor) / (1.0 - duty), 1e-12);
  const uint64_t period = std::max<uint64_t>(o.burst_period_micros, 1);
  const uint64_t phase = t_micros % period;
  const bool in_burst =
      phase < static_cast<uint64_t>(duty * static_cast<double>(period));
  return in_burst ? high : low;
}

}  // namespace

std::vector<Arrival> BuildArrivalSchedule(const OpenLoopOptions& o) {
  AUTHDB_CHECK(o.target_qps > 0);
  AUTHDB_CHECK(o.key_lo <= o.key_hi);
  AUTHDB_CHECK(o.query_span >= 1);
  AUTHDB_CHECK(o.join_fraction + o.projection_fraction <= 1.0);
  if (o.join_fraction > 0) {
    AUTHDB_CHECK(o.join_b_lo <= o.join_b_hi);
    AUTHDB_CHECK(o.join_probe_count >= 1);
  }
  if (o.arrivals == OpenLoopOptions::Arrivals::kBurst) {
    AUTHDB_CHECK(o.burst_factor >= 1.0);
    AUTHDB_CHECK(o.burst_duty * o.burst_factor <= 1.0);
  }

  const uint64_t domain = static_cast<uint64_t>(o.key_hi) -
                          static_cast<uint64_t>(o.key_lo) + 1;
  const uint64_t span = std::min(o.query_span, domain);
  const uint64_t b_domain =
      o.join_fraction > 0 ? static_cast<uint64_t>(o.join_b_hi) -
                                static_cast<uint64_t>(o.join_b_lo) + 1
                          : 1;
  const size_t contexts = std::max<size_t>(o.contexts, 1);

  Rng rng(o.seed);
  std::vector<Arrival> schedule;
  schedule.reserve(o.total_arrivals);
  double t = 0;  // fractional micros; rounded per arrival, never accumulated
  for (size_t i = 0; i < o.total_arrivals; ++i) {
    // Thinning-free variable-rate sampling: draw the next gap at the rate
    // in effect NOW. Exact for Poisson; for burst a window boundary can
    // stretch one gap, which only softens the burst edge by one arrival.
    t += rng.Exponential(RateAt(o, static_cast<uint64_t>(t)));
    Arrival a;
    a.due_micros = static_cast<uint64_t>(t);
    a.context = static_cast<uint32_t>(rng.Uniform(contexts));
    const double kind_draw = rng.NextDouble();
    if (kind_draw < o.join_fraction) {
      std::vector<int64_t> probes;
      probes.reserve(o.join_probe_count);
      for (size_t p = 0; p < o.join_probe_count; ++p) {
        probes.push_back(o.join_b_lo +
                         static_cast<int64_t>(rng.Uniform(b_domain)));
      }
      a.plan = Query::Join(std::move(probes), o.join_method);
    } else {
      const int64_t lo =
          o.key_lo + static_cast<int64_t>(rng.Uniform(domain - span + 1));
      const int64_t hi = lo + static_cast<int64_t>(span) - 1;
      if (kind_draw < o.join_fraction + o.projection_fraction) {
        a.plan = Query::Project(lo, hi, o.projection_attrs);
      } else {
        a.plan = Query::Select(lo, hi);
      }
    }
    schedule.push_back(std::move(a));
  }
  return schedule;
}

OpenLoopReport RunOpenLoopLoad(ShardedQueryServer* server,
                               const OpenLoopOptions& options) {
  AUTHDB_CHECK(server != nullptr);
  const std::vector<Arrival> schedule = BuildArrivalSchedule(options);
  const size_t threads_n = std::max<size_t>(options.dispatch_threads, 1);
  const size_t batch_cap = std::max<size_t>(options.batch_size, 1);

  struct PerThread {
    size_t served_selects = 0, served_projects = 0, served_joins = 0;
    size_t shed_selects = 0, shed_projects = 0, shed_joins = 0;
    size_t not_found = 0, failures = 0;
    LatencyHistogram select_latency, project_latency, join_latency;
    LatencyHistogram queue_delay, shed_latency;
  };
  std::vector<PerThread> per_thread(threads_n);

  // Shared cursor into the time-ordered schedule: dispatchers claim the
  // next arrival, sleep until it is due, then additionally claim any
  // arrivals ALREADY past due (up to batch_cap) — the backlog a real
  // front end would coalesce. Arrivals are never dispatched early.
  std::atomic<size_t> next{0};

  const ServerMetrics before = server->Metrics();
  const uint64_t t_start = MonotonicMicros();

  auto dispatcher = [&](size_t tid) {
    PerThread& me = per_thread[tid];
    std::vector<size_t> claimed;
    claimed.reserve(batch_cap);
    for (;;) {
      const size_t first = next.fetch_add(1, std::memory_order_relaxed);
      if (first >= schedule.size()) break;
      const uint64_t due_abs = t_start + schedule[first].due_micros;
      uint64_t now = MonotonicMicros();
      if (now < due_abs) {
        std::this_thread::sleep_for(std::chrono::microseconds(due_abs - now));
        now = MonotonicMicros();
      }
      claimed.clear();
      claimed.push_back(first);
      while (claimed.size() < batch_cap) {
        size_t j = next.load(std::memory_order_relaxed);
        if (j >= schedule.size() ||
            t_start + schedule[j].due_micros > now ||
            !next.compare_exchange_weak(j, j + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
        claimed.push_back(j);
      }

      std::vector<Query> plans;
      plans.reserve(claimed.size());
      for (size_t idx : claimed) {
        me.queue_delay.Record(now - std::min(t_start + schedule[idx].due_micros,
                                             now));
        plans.push_back(schedule[idx].plan);
      }
      std::vector<Result<QueryAnswer>> answers =
          server->ExecuteBatch(PlanBatch::Of(std::move(plans)));
      const uint64_t done = MonotonicMicros();

      for (size_t k = 0; k < claimed.size(); ++k) {
        const Arrival& a = schedule[claimed[k]];
        // Latency from the SCHEDULED arrival: a plan the harness or the
        // server let queue is charged for every microsecond it waited.
        const uint64_t sched_abs = t_start + a.due_micros;
        const uint64_t latency = done > sched_abs ? done - sched_abs : 0;
        const Result<QueryAnswer>& ans = answers[k];
        if (!ans.ok()) {
          if (ans.status().IsNotFound()) {
            ++me.not_found;
          } else {
            ++me.failures;
          }
          continue;
        }
        if (ans.value().outcome == AnswerOutcome::kShedRetryAfter) {
          me.shed_latency.Record(latency);
          switch (a.plan.kind) {
            case QueryKind::kSelect: ++me.shed_selects; break;
            case QueryKind::kProject: ++me.shed_projects; break;
            case QueryKind::kJoin: ++me.shed_joins; break;
          }
          continue;
        }
        switch (a.plan.kind) {
          case QueryKind::kSelect:
            ++me.served_selects;
            me.select_latency.Record(latency);
            break;
          case QueryKind::kProject:
            ++me.served_projects;
            me.project_latency.Record(latency);
            break;
          case QueryKind::kJoin:
            ++me.served_joins;
            me.join_latency.Record(latency);
            break;
        }
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(threads_n);
  for (size_t i = 0; i < threads_n; ++i) threads.emplace_back(dispatcher, i);
  for (std::thread& th : threads) th.join();
  const uint64_t t_end = MonotonicMicros();

  OpenLoopReport report;
  report.server = server->Metrics().Delta(before);
  report.offered = schedule.size();
  for (const Arrival& a : schedule) {
    switch (a.plan.kind) {
      case QueryKind::kSelect: ++report.offered_selects; break;
      case QueryKind::kProject: ++report.offered_projects; break;
      case QueryKind::kJoin: ++report.offered_joins; break;
    }
  }
  for (const PerThread& pt : per_thread) {
    report.served_selects += pt.served_selects;
    report.served_projects += pt.served_projects;
    report.served_joins += pt.served_joins;
    report.shed_selects += pt.shed_selects;
    report.shed_projects += pt.shed_projects;
    report.shed_joins += pt.shed_joins;
    report.not_found += pt.not_found;
    report.failures += pt.failures;
    report.select_latency.Merge(pt.select_latency);
    report.project_latency.Merge(pt.project_latency);
    report.join_latency.Merge(pt.join_latency);
    report.queue_delay.Merge(pt.queue_delay);
    report.shed_latency.Merge(pt.shed_latency);
  }
  report.served =
      report.served_selects + report.served_projects + report.served_joins;
  report.shed = report.shed_selects + report.shed_projects + report.shed_joins;
  report.elapsed_seconds = static_cast<double>(t_end - t_start) * 1e-6;
  if (report.elapsed_seconds > 0) {
    report.offered_qps =
        static_cast<double>(report.offered) / report.elapsed_seconds;
    report.goodput_qps =
        static_cast<double>(report.served) / report.elapsed_seconds;
  }
  if (report.offered > 0) {
    report.shed_rate =
        static_cast<double>(report.shed) / static_cast<double>(report.offered);
  }
  return report;
}

}  // namespace authdb
