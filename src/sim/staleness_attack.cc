#include "sim/staleness_attack.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/logging.h"
#include "common/random.h"
#include "core/data_aggregator.h"
#include "core/verifier.h"
#include "server/sharded_query_server.h"
#include "server/update_stream.h"

namespace authdb {

StalenessAttackReport RunStalenessAttack(
    std::shared_ptr<const BasContext> ctx, const StalenessAttackOptions& opt) {
  AUTHDB_CHECK(opt.periods >= 1);
  AUTHDB_CHECK(opt.victims_per_period >= 1);
  // Victim keys are partitioned by period and never touched before their
  // period: the captured version is then certified strictly before the
  // period of the superseding update, so the summary closing that period
  // must reject the replay (no 2*rho grace case to wait out).
  const uint64_t victim_space = opt.periods * opt.victims_per_period;
  AUTHDB_CHECK(opt.n_records > victim_space);

  // Join mode: the relation is keyed on composite join keys (B = record
  // index, one row each) so join plans can probe it, and the DA maintains
  // certified Bloom partitions refreshed at every summary barrier.
  const bool join_mode = opt.join_replays_per_period > 0;
  auto record_key = [&](int64_t k) {
    return join_mode ? JoinCompositeKey(k, 0) : k;
  };

  ManualClock clock(1'000'000);
  Rng rng(opt.seed);
  DataAggregator::Options da_opt;
  da_opt.record_len = 128;
  da_opt.rho_micros = opt.rho_micros;
  da_opt.piggyback_renewal = false;
  DataAggregator da(ctx, &clock, &rng, da_opt);

  ServerConfig cfg;
  cfg.node.record_len = 128;
  cfg.serving.worker_threads = opt.worker_threads;
  ShardedQueryServer server(
      ctx,
      ShardRouter::Uniform(
          opt.shards, 0,
          record_key(static_cast<int64_t>(opt.n_records) - 1)),
      cfg);
  UpdateStream stream(&server, cfg);

  StalenessAttackReport report;
  VarintGapCodec codec;
  std::vector<UpdateSummary> history;  // the DA -> client broadcast feed

  // Close the DA's current rho-period and push its output through the
  // stream: re-certifications first (they belong to the new period), then
  // the summary — carrying the period's certified partition refresh — as
  // the epoch barrier, then wait for the epoch to advance.
  auto publish_period = [&] {
    DataAggregator::PeriodOutput out = da.PublishSummary();
    for (const SignedRecordUpdate& msg : out.recertifications)
      stream.PushUpdate(msg);
    history.push_back(out.summary);
    stream.PushSummary(std::move(out.summary),
                       std::move(out.partition_refresh));
    stream.Flush();
  };

  // Period 0: bulk-certify the relation through the stream.
  std::vector<Record> records;
  records.reserve(opt.n_records);
  for (uint64_t k = 0; k < opt.n_records; ++k) {
    Record r;
    r.attrs = {record_key(static_cast<int64_t>(k)),
               static_cast<int64_t>(k * 7)};
    records.push_back(r);
  }
  Result<std::vector<SignedRecordUpdate>> bulk =
      da.BulkLoad(std::move(records));
  AUTHDB_CHECK(bulk.ok());
  for (const SignedRecordUpdate& msg : bulk.value()) stream.PushUpdate(msg);
  if (join_mode) {
    da.EnableJoinPartitions(/*values_per_partition=*/4,
                            /*bits_per_value=*/8.0);
    server.SetJoinPartitions(da.join_partitions());
  }
  clock.AdvanceMicros(opt.rho_micros);
  publish_period();

  for (size_t p = 0; p < opt.periods; ++p) {
    clock.AdvanceMicros(opt.rho_micros / 4);  // mid-period update time
    const uint64_t now = clock.NowMicros();
    const uint64_t epoch_at_start = history.size();

    // The malicious server captures the answers it will later replay:
    // point selections of the records about to be superseded.
    struct Captured {
      int64_t key;
      SelectionAnswer ans;
    };
    std::vector<Captured> captured;
    const int64_t victim_lo =
        static_cast<int64_t>(p * opt.victims_per_period);
    for (size_t v = 0; v < opt.victims_per_period; ++v) {
      int64_t key = record_key(victim_lo + static_cast<int64_t>(v));
      Result<SelectionAnswer> ans = server.Select(key, key);
      AUTHDB_CHECK(ans.ok());
      captured.push_back(Captured{key, std::move(ans.value())});
    }
    // Join mode: also capture pre-update *join* answers over the victims'
    // B values — their match rows are about to be superseded.
    struct CapturedJoin {
      Query query;
      QueryAnswer ans;
    };
    std::vector<CapturedJoin> captured_joins;
    for (size_t v = 0;
         v < std::min(opt.join_replays_per_period, opt.victims_per_period);
         ++v) {
      Query q = Query::Join({victim_lo + static_cast<int64_t>(v)},
                            JoinMethod::kBloomFilter);
      Result<QueryAnswer> ans = server.Execute(q);
      AUTHDB_CHECK(ans.ok());
      captured_joins.push_back(
          CapturedJoin{std::move(q), std::move(ans.value())});
    }

    // Honest clients read and verify while the ingest below runs. Each
    // holds its own verifier, primed with the summary feed so far; `now`
    // and the epoch floor are snapshots (the clock only moves between
    // phases, on this thread).
    std::atomic<size_t> accepted{0};
    std::vector<std::thread> readers;
    readers.reserve(opt.reader_threads);
    for (size_t t = 0; t < opt.reader_threads; ++t) {
      readers.emplace_back([&, t] {
        ClientVerifier verifier(&da.public_key(), &codec, da.hash_mode());
        for (const UpdateSummary& s : history) {
          if (!verifier.freshness().AddSummary(s).ok()) return;
        }
        Rng rrng(opt.seed * 1000 + p * 100 + t);
        uint64_t span = std::min<uint64_t>(
            std::max<uint64_t>(opt.query_span, 1), opt.n_records);
        for (size_t i = 0; i < opt.reads_per_reader; ++i) {
          if (join_mode && i % 4 == 3) {
            // Every 4th honest read is a live join racing the ingest.
            Query q = Query::Join(
                {static_cast<int64_t>(rrng.Uniform(2 * opt.n_records))},
                JoinMethod::kBloomFilter);
            Result<QueryAnswer> ans = server.Execute(q);
            if (!ans.ok()) continue;
            if (verifier.VerifyAnswerFresh(q, ans.value(), now,
                                           epoch_at_start)
                    .ok()) {
              ++accepted;
            }
            continue;
          }
          int64_t lo_k =
              static_cast<int64_t>(rrng.Uniform(opt.n_records - span + 1));
          int64_t lo = record_key(lo_k);
          int64_t hi =
              join_mode
                  ? JoinCompositeKey(lo_k + static_cast<int64_t>(span) - 1,
                                     kJoinMaxDup)
                  : lo + static_cast<int64_t>(span) - 1;
          Result<SelectionAnswer> ans = server.Select(lo, hi);
          if (!ans.ok()) continue;
          if (verifier
                  .VerifySelectionFresh(lo, hi, ans.value(), now,
                                        epoch_at_start)
                  .ok()) {
            ++accepted;
          }
        }
      });
    }

    // Concurrently: this period's updates stream in. Every victim is
    // superseded; background churn hits the non-victim tail of the key
    // space (repeats there exercise the multi-update re-certification).
    for (const Captured& c : captured) {
      Result<SignedRecordUpdate> msg =
          da.ModifyRecord(c.key, {c.key, static_cast<int64_t>(1000 + p)});
      AUTHDB_CHECK(msg.ok());
      stream.PushUpdate(std::move(msg.value()));
    }
    for (size_t i = 0; i < opt.extra_updates_per_period; ++i) {
      int64_t key = record_key(static_cast<int64_t>(
          victim_space + rng.Uniform(opt.n_records - victim_space)));
      Result<SignedRecordUpdate> msg =
          da.ModifyRecord(key, {key, static_cast<int64_t>(i)});
      AUTHDB_CHECK(msg.ok());
      stream.PushUpdate(std::move(msg.value()));
    }
    for (std::thread& t : readers) t.join();
    report.honest_answers += opt.reader_threads * opt.reads_per_reader;
    report.honest_accepted += accepted.load();

    // Close the period: the summary certifying this period's updates
    // publishes, advancing the epoch.
    clock.AdvanceMicros(3 * opt.rho_micros / 4);
    publish_period();

    // The replay attack: the stale answers against a client that followed
    // the summary feed.
    ClientVerifier judge(&da.public_key(), &codec, da.hash_mode());
    for (const UpdateSummary& s : history) {
      Status st = judge.freshness().AddSummary(s);
      AUTHDB_CHECK(st.ok());
    }
    const uint64_t now_post = clock.NowMicros();
    const uint64_t epoch_now = history.size();
    for (const Captured& c : captured) {
      ++report.replayed_answers;
      if (!judge.VerifySelectionFresh(c.key, c.key, c.ans, now_post, epoch_now)
               .ok()) {
        ++report.replays_rejected;
      }
      // Epoch stamp forged/ignored: the bitmaps alone must still catch it.
      if (!judge.VerifySelectionFresh(c.key, c.key, c.ans, now_post, 0).ok())
        ++report.replays_rejected_bitmap_only;
      if (!judge.StaleRids(c.ans, now_post).empty())
        ++report.replays_stale_rid_flagged;
    }
    // Mixed-generation forgeries: the malicious server splices the
    // period-closing summary onto each captured old-epoch answer to make
    // it look current. Judged with min_epoch = 0 — a client with no
    // independent summary feed — so rejection must come from the answer's
    // own evidence: the epoch/summary-seq inconsistency when the stamp is
    // left at the capture epoch, and the glued summary's own bitmap
    // (which marks every victim) when the stamp is forged upward.
    for (const Captured& c : captured) {
      // A fresh verifier per forgery: it holds nothing but what the answer
      // ships, so acceptance would mean the splice is self-consistent.
      SelectionAnswer glued = c.ans;
      glued.summaries.push_back(history.back());
      ++report.mixed_generation_answers;
      ClientVerifier naive1(&da.public_key(), &codec, da.hash_mode());
      if (!naive1.VerifySelectionFresh(c.key, c.key, glued, now_post, 0).ok())
        ++report.mixed_generation_rejected;
      SelectionAnswer forged = glued;
      forged.served_epoch = epoch_now;
      ++report.mixed_generation_answers;
      ClientVerifier naive2(&da.public_key(), &codec, da.hash_mode());
      if (!naive2.VerifySelectionFresh(c.key, c.key, forged, now_post, 0).ok())
        ++report.mixed_generation_rejected;
    }
    // The join replays: every captured match row is superseded, so the
    // generalized verifier must reject with the full check and with the
    // epoch stamp deliberately ignored (the bitmap walk alone).
    for (const CapturedJoin& c : captured_joins) {
      ++report.join_replayed_answers;
      if (!judge
               .VerifyAnswerFresh(c.query, c.ans, now_post, epoch_now,
                                  /*max_partition_age_micros=*/
                                  2 * opt.rho_micros)
               .ok()) {
        ++report.join_replays_rejected;
      }
      if (!judge.VerifyAnswerFresh(c.query, c.ans, now_post, 0).ok())
        ++report.join_replays_rejected_bitmap_only;
      if (!judge.StaleRids(c.ans, now_post).empty())
        ++report.join_replays_stale_rid_flagged;
    }
    // Honest re-joins of the same probe values: the current versions
    // verify under the advanced epoch and the partition-age bound.
    for (const CapturedJoin& c : captured_joins) {
      Result<QueryAnswer> ans = server.Execute(c.query);
      ++report.join_honest_answers;
      if (ans.ok() && judge
                          .VerifyAnswerFresh(c.query, ans.value(), now_post,
                                             epoch_now, 2 * opt.rho_micros)
                          .ok()) {
        ++report.join_honest_accepted;
      }
    }

    // Honest re-reads of the same records: the *current* versions verify,
    // so the rejections above are staleness detection, not noise.
    for (const Captured& c : captured) {
      Result<SelectionAnswer> ans = server.Select(c.key, c.key);
      ++report.honest_answers;
      if (ans.ok() && judge.VerifySelectionFresh(c.key, c.key, ans.value(),
                                                 now_post, epoch_now)
                          .ok()) {
        ++report.honest_accepted;
      }
    }
    ++report.periods_run;
  }

  ServerMetrics metrics = stream.Metrics();
  report.updates_streamed = metrics.ingest.updates_pushed;
  report.summaries_published = metrics.ingest.summaries_published;
  report.final_epoch = server.freshness_tracker().current_epoch();
  return report;
}

}  // namespace authdb
