#ifndef AUTHDB_SIM_CALIBRATION_H_
#define AUTHDB_SIM_CALIBRATION_H_

#include <memory>

#include "crypto/bas.h"
#include "crypto/rsa.h"

namespace authdb {

/// Measured costs (seconds) of the cryptographic primitives on this
/// machine — the simulator's service-time inputs and the content of
/// Table 3. Measured once per process with real operations.
struct CryptoCosts {
  double bas_sign = 0;            ///< one BLS signature (secure hash-to-point)
  double bas_verify = 0;          ///< one signature: 2 pairings + hash
  double bas_aggregate_1000 = 0;  ///< aggregating 1000 signatures
  double bas_verify_1000 = 0;     ///< verifying a 1000-signature aggregate
  double point_add = 0;           ///< one EC point addition
  double hash_to_point = 0;       ///< secure hash-to-curve
  double rsa_sign = 0;
  double rsa_verify = 0;
  double rsa_aggregate_1000 = 0;
  double rsa_verify_1000 = 0;
  double sha_256b = 0, sha_512b = 0, sha_1024b = 0;  ///< SHA-1 per message
};

/// Run the micro-measurements. `quick` uses fewer repetitions (used by the
/// throughput benches; the Table 3 bench uses full precision).
CryptoCosts MeasureCryptoCosts(std::shared_ptr<const BasContext> ctx,
                               bool quick = false);

}  // namespace authdb

#endif  // AUTHDB_SIM_CALIBRATION_H_
