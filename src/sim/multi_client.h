#ifndef AUTHDB_SIM_MULTI_CLIENT_H_
#define AUTHDB_SIM_MULTI_CLIENT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/histogram.h"
#include "core/protocol.h"
#include "server/sharded_query_server.h"

namespace authdb {

/// Closed-loop multi-client load: each client thread issues its next
/// operation the moment the previous one completes (no think time), drawing
/// uniform fixed-span range selections and — with probability
/// `update_fraction` — pre-signed DA update messages from a shared queue.
struct MultiClientOptions {
  size_t clients = 4;
  size_t ops_per_client = 200;
  double update_fraction = 0.0;  ///< fraction of ops that apply an update
  int64_t key_lo = 0;            ///< query domain (inclusive)
  int64_t key_hi = 0;
  uint64_t query_span = 16;      ///< hi - lo + 1 of every range query
  uint64_t seed = 1;
};

struct MultiClientReport {
  size_t queries = 0;
  size_t updates = 0;
  size_t failures = 0;  ///< Select errors or ApplyUpdate errors
  double elapsed_seconds = 0;
  double ops_per_second = 0;  ///< aggregate throughput (queries + updates)
  LatencyHistogram query_latency;
  LatencyHistogram update_latency;
};

/// Run the load against a sharded server. `updates` is a pool of pre-signed
/// messages (from the DA) drained at most once each; when the pool runs
/// dry, update slots fall back to queries so the op count stays fixed.
MultiClientReport RunMultiClientLoad(ShardedQueryServer* server,
                                     std::vector<SignedRecordUpdate> updates,
                                     const MultiClientOptions& options);

}  // namespace authdb

#endif  // AUTHDB_SIM_MULTI_CLIENT_H_
