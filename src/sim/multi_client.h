#ifndef AUTHDB_SIM_MULTI_CLIENT_H_
#define AUTHDB_SIM_MULTI_CLIENT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/histogram.h"
#include "core/protocol.h"
#include "server/metrics.h"
#include "server/sharded_query_server.h"

namespace authdb {

/// Closed-loop multi-client load over the unified query surface: each
/// client thread issues its next operation the moment the previous one
/// completes (no think time). Operations are drawn per-op: a pre-signed DA
/// update with probability `update_fraction`, else a join / projection /
/// selection plan by the kind fractions (selection is the remainder) — all
/// reads go through ShardedQueryServer::Execute.
struct MultiClientOptions {
  size_t clients = 4;
  size_t ops_per_client = 200;
  double update_fraction = 0.0;  ///< fraction of ops that apply an update
  int64_t key_lo = 0;            ///< selection/projection domain (inclusive)
  int64_t key_hi = 0;
  uint64_t query_span = 16;      ///< hi - lo + 1 of every range query

  /// Mixed-workload fractions of the *read* ops (update slots excluded);
  /// whatever remains is selections. join_fraction requires a composite-
  /// keyed relation and `join_b_lo <= join_b_hi`.
  double join_fraction = 0.0;
  double projection_fraction = 0.0;
  size_t join_probe_count = 4;  ///< R.A values drawn per join op
  int64_t join_b_lo = 0, join_b_hi = 0;  ///< B domain probed by joins
  JoinMethod join_method = JoinMethod::kBloomFilter;
  std::vector<uint32_t> projection_attrs = {1};

  /// Read plans per PlanBatch envelope. 1 issues every plan on its own
  /// (a batch of one — the sequential baseline); >1 lets each client
  /// accumulate up to this many consecutive read plans and submit them in
  /// one ExecuteBatch call. Update slots flush the pending batch first, so
  /// batching never reorders a client's reads around its writes.
  size_t batch_size = 1;

  uint64_t seed = 1;
};

struct MultiClientReport {
  size_t queries = 0;      ///< selection plans served
  size_t joins = 0;        ///< join plans served
  size_t projections = 0;  ///< projection plans served
  size_t updates = 0;
  size_t failures = 0;  ///< Execute errors or ApplyUpdate errors
  /// Plans refused with AnswerOutcome::kShedRetryAfter (admission control
  /// enabled and the server over capacity). Shed plans still count in
  /// their per-kind totals above but carry no VO or epoch accounting.
  size_t shed = 0;
  double elapsed_seconds = 0;
  double ops_per_second = 0;  ///< aggregate throughput (all kinds + updates)
  /// Per-query-kind latency breakdown (selection / join / projection).
  LatencyHistogram query_latency;
  LatencyHistogram join_latency;
  LatencyHistogram projection_latency;
  LatencyHistogram update_latency;
  /// Per-kind VO bytes under the paper's constants (core/vo_size.h).
  VoAccounting vo;

  /// Snapshot-pin statistics of the epoch-pinned read path: every read
  /// pins one published epoch; `epoch_lag` records, per read, how many
  /// epochs the publisher had advanced past the pinned one by the time
  /// the answer came back (0 = the answer is the newest epoch; >0 = a
  /// publication raced the read — bounded staleness, never a torn read).
  LatencyHistogram epoch_lag;          ///< unit: epochs, not micros
  uint64_t min_served_epoch = ~0ull;   ///< oldest epoch any read pinned
  uint64_t max_served_epoch = 0;       ///< newest epoch any read pinned

  /// Batched-execution accounting: PlanBatch envelopes the load issued
  /// (batches of one included).
  size_t batches = 0;
  /// The server-side metrics delta over exactly this run (two snapshots
  /// bracket the load). `server.exec.shard_busy[s]` is shard s's
  /// accumulated per-kind visit time — on a single-core box, per-shard
  /// busy time (not wall clock) is what shard scaling divides, so capacity
  /// ratios are derived from max-over-shards busy seconds.
  ServerMetrics server;

  double KindOpsPerSecond(size_t count) const {
    return elapsed_seconds > 0 ? static_cast<double>(count) / elapsed_seconds
                               : 0.0;
  }
};

/// Run the load against a sharded server. `updates` is a pool of pre-signed
/// messages (from the DA) drained at most once each; when the pool runs
/// dry, update slots fall back to queries so the op count stays fixed.
MultiClientReport RunMultiClientLoad(ShardedQueryServer* server,
                                     std::vector<SignedRecordUpdate> updates,
                                     const MultiClientOptions& options);

}  // namespace authdb

#endif  // AUTHDB_SIM_MULTI_CLIENT_H_
