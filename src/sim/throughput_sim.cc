#include "sim/throughput_sim.h"

#include <algorithm>
#include <functional>
#include <queue>
#include <vector>

namespace authdb {

ThroughputSimulator::Stats ThroughputSimulator::Run(
    double arrival_rate_per_sec, size_t n_jobs, double upd_fraction,
    const std::function<JobDemand(bool, Rng*)>& demand_gen, Rng* rng) const {
  Stats stats;
  // Per-resource availability clocks.
  std::priority_queue<double, std::vector<double>, std::greater<double>>
      cores;
  for (int i = 0; i < config_.cpu_cores; ++i) cores.push(0.0);
  double wan_avail = 0;
  double root_write_end = 0;    // when the last exclusive holder finishes
  double root_readers_end = 0;  // max finish over current shared holders

  double t = 0;
  double sum_q = 0, sum_u = 0;
  for (size_t i = 0; i < n_jobs; ++i) {
    t += rng->Exponential(arrival_rate_per_sec);
    bool is_update = rng->NextDouble() < upd_fraction;
    JobDemand d = demand_gen(is_update, rng);

    double ready = t;
    // Updates originate at the DA: signing plus the WAN hop precede the QS.
    if (d.is_update) {
      ready += d.da_cpu_seconds;
      double xstart = std::max(ready, wan_avail);
      double xend = xstart + d.update_bytes * 8.0 / config_.wan_bps;
      wan_avail = xend;
      ready = xend;
    }

    // Root lock (EMB only): writers exclude everyone, readers exclude
    // writers. FCFS grant order = arrival order.
    double lock_start = ready;
    if (d.exclusive_root) {
      lock_start = std::max({ready, root_write_end, root_readers_end});
    } else if (d.shared_root) {
      lock_start = std::max(ready, root_write_end);
    }
    double lock_wait = lock_start - ready;

    // CPU + disk at the QS (held core; I/O folded into occupancy).
    double core_free = cores.top();
    cores.pop();
    double proc_start = std::max(lock_start, core_free);
    double cpu_wait = proc_start - lock_start;
    double proc_end = proc_start + d.qs_io_seconds + d.qs_cpu_seconds;
    cores.push(proc_end);
    if (d.exclusive_root) root_write_end = proc_end;
    if (d.shared_root) root_readers_end = std::max(root_readers_end, proc_end);

    if (d.is_update) {
      // Update response: fresh data available at the QS.
      sum_u += proc_end - t;
      ++stats.updates;
      continue;
    }
    // Reply to the user over that user's own LAN link (each user has a
    // dedicated 3.5G/HSDPA downlink in the paper's model), then client
    // verification.
    double xstart = proc_end;
    double xend = xstart + d.reply_bytes * 8.0 / config_.lan_bps;
    double done = xend + d.verify_seconds;
    sum_q += done - t;
    ++stats.queries;
    stats.query_locking += lock_wait;
    stats.query_queueing += cpu_wait + (xstart - proc_end);
    stats.query_processing += d.qs_io_seconds + d.qs_cpu_seconds;
    stats.query_transmission += xend - xstart;
    stats.query_verification += d.verify_seconds;
  }
  if (stats.queries > 0) {
    stats.mean_query_response = sum_q / stats.queries;
    stats.query_locking /= stats.queries;
    stats.query_queueing /= stats.queries;
    stats.query_processing /= stats.queries;
    stats.query_transmission /= stats.queries;
    stats.query_verification /= stats.queries;
  }
  if (stats.updates > 0) stats.mean_update_response = sum_u / stats.updates;
  return stats;
}

}  // namespace authdb
