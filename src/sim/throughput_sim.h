#ifndef AUTHDB_SIM_THROUGHPUT_SIM_H_
#define AUTHDB_SIM_THROUGHPUT_SIM_H_

#include <functional>

#include "common/random.h"

namespace authdb {

/// System parameters for the throughput experiments (Table 2 of the paper).
/// The networks are modelled as bandwidth-limited FCFS queues exactly as in
/// the paper; the CPU schedule and lock queues are additionally simulated
/// here because this machine has a single core (substitution #3 in
/// DESIGN.md). All service times are calibrated from micro-measurements of
/// the real implementations.
struct SystemConfig {
  int cpu_cores = 4;            ///< quad-core Xeon in the paper's testbed
  double io_seconds = 0.005;    ///< one random 4-KB disk I/O
  double lan_bps = 14.4e6;      ///< HSDPA user link
  double wan_bps = 622e6;       ///< OC12 DA->QS link
};

/// Per-job resource demands, produced by a scheme-specific generator.
struct JobDemand {
  bool is_update = false;
  double qs_io_seconds = 0;     ///< disk time at the query server
  double qs_cpu_seconds = 0;    ///< proof construction / digest updates
  double da_cpu_seconds = 0;    ///< signing at the data aggregator (updates)
  double reply_bytes = 0;       ///< answer + VO shipped over the LAN
  double update_bytes = 0;      ///< DA->QS message over the WAN (updates)
  double verify_seconds = 0;    ///< client-side verification
  bool exclusive_root = false;  ///< MHT update: X-lock the root for the job
  bool shared_root = false;     ///< MHT query: S-lock the root
};

/// Open-system discrete-event simulation: Poisson arrivals, k-core FCFS
/// CPU, FCFS network pipes, and a readers-writer root lock reproducing the
/// EMB-tree's concurrency constraint. Jobs are processed in arrival order
/// with per-resource availability clocks (FCFS reservation).
class ThroughputSimulator {
 public:
  explicit ThroughputSimulator(const SystemConfig& config)
      : config_(config) {}

  struct Stats {
    double mean_query_response = 0;   ///< arrival -> verified at client
    double mean_update_response = 0;  ///< arrival -> fresh data at QS
    // Mean per-query breakdown (Figures 7b / 9b).
    double query_locking = 0;
    double query_queueing = 0;
    double query_processing = 0;
    double query_transmission = 0;
    double query_verification = 0;
    size_t queries = 0, updates = 0;
  };

  /// `demand_gen(is_update, rng)` yields each job's resource demands.
  Stats Run(double arrival_rate_per_sec, size_t n_jobs, double upd_fraction,
            const std::function<JobDemand(bool, Rng*)>& demand_gen,
            Rng* rng) const;

 private:
  SystemConfig config_;
};

}  // namespace authdb

#endif  // AUTHDB_SIM_THROUGHPUT_SIM_H_
