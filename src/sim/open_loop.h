#ifndef AUTHDB_SIM_OPEN_LOOP_H_
#define AUTHDB_SIM_OPEN_LOOP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/histogram.h"
#include "core/protocol.h"
#include "server/metrics.h"
#include "server/sharded_query_server.h"

namespace authdb {

/// Open-loop overload harness: the load a real front end sees. Unlike the
/// closed-loop multi-client driver (where each client waits for its answer
/// before issuing the next op, so offered load self-throttles to server
/// capacity), this driver precomputes a target-QPS *arrival schedule* and
/// dispatches each plan at its scheduled instant whether or not earlier
/// plans have completed. Offered load beyond capacity therefore queues —
/// and, with admission control enabled, sheds — instead of silently
/// disappearing, and every latency is measured from the plan's SCHEDULED
/// arrival time, so queue delay is charged to the server (the
/// coordinated-omission-free measurement).
struct OpenLoopOptions {
  /// Arrival process of the schedule. kPoisson draws i.i.d. exponential
  /// gaps at target_qps. kBurst alternates a high-rate window
  /// (burst_factor x the base rate for burst_duty of each period) with a
  /// low-rate remainder chosen so the long-run mean stays target_qps.
  enum class Arrivals { kPoisson, kBurst };
  Arrivals arrivals = Arrivals::kPoisson;
  double target_qps = 1000.0;    ///< long-run mean arrival rate (plans/sec)
  size_t total_arrivals = 1000;  ///< schedule length (plans)
  uint64_t burst_period_micros = 100'000;  ///< kBurst: one on/off cycle
  double burst_duty = 0.2;     ///< kBurst: fraction of the period at high rate
  double burst_factor = 4.0;   ///< kBurst: high rate = factor * base rate

  /// Simulated client contexts: each arrival is stamped with a context id
  /// drawn uniformly (tens of thousands of nominal clients multiplexed
  /// over dispatch_threads OS threads — open-loop drivers never need a
  /// thread per client).
  size_t contexts = 10000;
  /// OS threads dispatching the schedule. Under overload this bounds the
  /// plans concurrently in flight INSIDE the server; for sheds to occur it
  /// must exceed admission.max_inflight_plans + admission.queue_depth.
  size_t dispatch_threads = 8;
  /// Late-arrival batching: a dispatcher that finds further arrivals
  /// already past due claims up to this many into one ExecuteBatch (the
  /// queue a real front end would batch). Never dispatches early.
  size_t batch_size = 1;

  /// Plan mix (mirrors MultiClientOptions): join / projection fractions of
  /// the arrivals, selections the remainder.
  int64_t key_lo = 0;
  int64_t key_hi = 0;
  uint64_t query_span = 16;
  double join_fraction = 0.0;
  double projection_fraction = 0.0;
  size_t join_probe_count = 4;
  int64_t join_b_lo = 0, join_b_hi = 0;
  JoinMethod join_method = JoinMethod::kBloomFilter;
  std::vector<uint32_t> projection_attrs = {1};

  uint64_t seed = 1;
};

/// One scheduled plan arrival. `due_micros` is relative to the run start;
/// the schedule is sorted ascending.
struct Arrival {
  uint64_t due_micros = 0;
  uint32_t context = 0;
  Query plan;
};

/// The deterministic arrival schedule for `options`: same options + seed
/// => byte-identical schedule (times, contexts, and plans), independent of
/// thread count or wall clock. Exposed for tests; RunOpenLoopLoad builds
/// it internally.
std::vector<Arrival> BuildArrivalSchedule(const OpenLoopOptions& options);

struct OpenLoopReport {
  // Offered (scheduled) and outcome counts, per plan kind.
  size_t offered = 0;
  size_t offered_selects = 0, offered_projects = 0, offered_joins = 0;
  size_t served = 0;  ///< answered with AnswerOutcome::kServed
  size_t served_selects = 0, served_projects = 0, served_joins = 0;
  size_t shed = 0;  ///< refused with AnswerOutcome::kShedRetryAfter
  size_t shed_selects = 0, shed_projects = 0, shed_joins = 0;
  size_t not_found = 0;  ///< NotFound answers (workload config, not serving)
  size_t failures = 0;   ///< non-ok Results (NotFound excluded)

  /// Per-kind latency from SCHEDULED arrival to completion (queue delay
  /// included) — served plans only; shed plans are accounted separately.
  LatencyHistogram select_latency;
  LatencyHistogram project_latency;
  LatencyHistogram join_latency;
  /// Dispatch lateness (actual dispatch minus scheduled arrival) across
  /// every arrival — how far the harness itself fell behind the schedule.
  LatencyHistogram queue_delay;
  /// Scheduled-to-completion time of shed plans (the fast-refusal path).
  LatencyHistogram shed_latency;

  double elapsed_seconds = 0;
  double offered_qps = 0;  ///< offered / elapsed
  double goodput_qps = 0;  ///< served / elapsed — sheds are NOT goodput
  double shed_rate = 0;    ///< shed / offered

  /// Server-side metrics delta over exactly this run.
  ServerMetrics server;
};

/// Drive the schedule against a live server. Plans are dispatched at their
/// scheduled instants (never early); dispatchers that fall behind charge
/// the lateness to the affected plans' latencies. Safe to run concurrently
/// with a live UpdateStream — every plan is an ordinary epoch-pinned read.
OpenLoopReport RunOpenLoopLoad(ShardedQueryServer* server,
                               const OpenLoopOptions& options);

}  // namespace authdb

#endif  // AUTHDB_SIM_OPEN_LOOP_H_
