#ifndef AUTHDB_SIM_STALENESS_ATTACK_H_
#define AUTHDB_SIM_STALENESS_ATTACK_H_

#include <cstddef>
#include <cstdint>
#include <memory>

#include "crypto/bas.h"

namespace authdb {

/// End-to-end staleness-attack simulation against the streaming freshness
/// pipeline: a DA streams updates and rho-period summaries into a sharded
/// server (server/update_stream.h) while honest clients read and verify
/// concurrently; a malicious query server captures pre-update answers and
/// replays them after the records have been superseded. The harness checks
/// the paper's Section 3.1 guarantee — every replay is rejected once the
/// summary closing the update's period has been published, while honest
/// answers (including mid-period reads racing the ingest) all verify.
struct StalenessAttackOptions {
  size_t shards = 4;
  size_t worker_threads = 4;      ///< select fan-out pool of the server
  uint64_t n_records = 256;       ///< bulk-loaded relation size
  size_t periods = 3;             ///< attack rho-periods (>= 1)
  size_t victims_per_period = 8;  ///< records captured then updated
  size_t extra_updates_per_period = 16;  ///< background churn (non-victims)
  size_t reader_threads = 2;      ///< honest clients racing the ingest
  size_t reads_per_reader = 32;   ///< honest reads per thread per period
  uint64_t query_span = 8;        ///< honest range-query width
  uint64_t rho_micros = 1'000'000;
  /// Join-replay extension: when > 0, the relation is keyed on composite
  /// join keys (B value = record index, one row each), the DA maintains
  /// certified Bloom partitions refreshed at every summary barrier, and
  /// each period additionally captures up to this many pre-update *join*
  /// answers over the period's victims, replaying them after the closing
  /// summary publishes. 0 keeps the selection-only harness.
  size_t join_replays_per_period = 0;
  uint64_t seed = 1;
};

struct StalenessAttackReport {
  size_t periods_run = 0;
  size_t updates_streamed = 0;     ///< messages through the update stream
  size_t summaries_published = 0;  ///< epoch advances observed
  uint64_t final_epoch = 0;

  size_t honest_answers = 0;   ///< live answers verified (racing + quiesced)
  size_t honest_accepted = 0;  ///< must equal honest_answers

  size_t replayed_answers = 0;  ///< captured pre-update answers replayed
  /// Rejections with the full check (epoch cross-check + bitmaps).
  size_t replays_rejected = 0;
  /// Rejections with the epoch stamp deliberately ignored (min_epoch = 0),
  /// i.e. against a server that forges the stamp: the signed bitmaps alone
  /// must still catch every replay.
  size_t replays_rejected_bitmap_only = 0;
  /// Replays whose stale rid was pinpointed by ClientVerifier::StaleRids.
  size_t replays_stale_rid_flagged = 0;

  /// Mixed-generation forgeries: a captured old-epoch answer spliced with
  /// the period-closing summary it never carried — once with the original
  /// epoch stamp (self-inconsistent: a snapshot of epoch e cannot carry a
  /// summary of period >= e) and once with the stamp forged to the current
  /// epoch (the glued summary's own bitmap then indicts the stale
  /// records). Both variants are judged with min_epoch = 0, i.e. by a
  /// client with NO independent view of the summary stream — the splice
  /// must fail on the answer's own evidence.
  size_t mixed_generation_answers = 0;
  size_t mixed_generation_rejected = 0;

  /// Join-replay tallies (zero unless join_replays_per_period > 0).
  size_t join_replayed_answers = 0;
  size_t join_replays_rejected = 0;  ///< full check (epoch + bitmaps)
  /// Epoch stamp deliberately ignored: the bitmap walk over the match
  /// rows / witnesses alone must still catch every replay.
  size_t join_replays_rejected_bitmap_only = 0;
  size_t join_replays_stale_rid_flagged = 0;
  size_t join_honest_answers = 0;   ///< post-period re-joins verified
  size_t join_honest_accepted = 0;  ///< must equal join_honest_answers

  bool Clean() const {
    return replayed_answers > 0 && honest_accepted == honest_answers &&
           replays_rejected == replayed_answers &&
           replays_rejected_bitmap_only == replayed_answers &&
           mixed_generation_rejected == mixed_generation_answers &&
           join_replays_rejected == join_replayed_answers &&
           join_replays_rejected_bitmap_only == join_replayed_answers &&
           join_honest_accepted == join_honest_answers;
  }
};

/// Run the attack. `ctx` supplies the BAS domain parameters (tests pass a
/// small fast-generated context; tools may pass BasContext::Default()).
StalenessAttackReport RunStalenessAttack(
    std::shared_ptr<const BasContext> ctx, const StalenessAttackOptions& opt);

}  // namespace authdb

#endif  // AUTHDB_SIM_STALENESS_ATTACK_H_
