#include "sim/calibration.h"

#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "crypto/sha.h"

namespace authdb {

namespace {
/// Median-free simple timing: run `fn` `reps` times, return mean seconds.
template <typename Fn>
double TimeIt(int reps, Fn&& fn) {
  Stopwatch sw;
  for (int i = 0; i < reps; ++i) fn(i);
  return sw.ElapsedSeconds() / reps;
}
}  // namespace

CryptoCosts MeasureCryptoCosts(std::shared_ptr<const BasContext> ctx,
                               bool quick) {
  CryptoCosts costs;
  Rng rng(0xCA11B);
  const int reps = quick ? 3 : 10;
  const int agg_n = quick ? 200 : 1000;
  const double agg_scale = 1000.0 / agg_n;

  BasPrivateKey bas_key = BasPrivateKey::Generate(ctx, &rng);
  std::vector<std::string> msgs;
  for (int i = 0; i < agg_n; ++i) msgs.push_back("m" + std::to_string(i));

  costs.bas_sign = TimeIt(reps, [&](int i) {
    bas_key.Sign(Slice(msgs[i % agg_n]), BasContext::HashMode::kSecure);
  });
  costs.hash_to_point = TimeIt(reps, [&](int i) {
    ctx->HashToPoint(Slice(msgs[i % agg_n]), BasContext::HashMode::kSecure);
  });
  BasSignature sig =
      bas_key.Sign(Slice(msgs[0]), BasContext::HashMode::kSecure);
  costs.bas_verify = TimeIt(reps, [&](int) {
    bas_key.public_key().Verify(Slice(msgs[0]), sig,
                                BasContext::HashMode::kSecure);
  });
  std::vector<BasSignature> sigs;
  for (int i = 0; i < agg_n; ++i)
    sigs.push_back(bas_key.Sign(Slice(msgs[i]), BasContext::HashMode::kFast));
  costs.bas_aggregate_1000 =
      TimeIt(reps, [&](int) { ctx->Aggregate(sigs); }) * agg_scale;
  costs.point_add = costs.bas_aggregate_1000 / 1000.0;
  {
    std::vector<Slice> views(msgs.begin(), msgs.end());
    BasSignature agg = ctx->Aggregate(sigs);
    // Fast-mode hashes make this the aggregation-verification lower bound;
    // secure-mode adds agg_n hash-to-point costs on top.
    double fast = TimeIt(1, [&](int) {
      bas_key.public_key().VerifyAggregate(views, agg,
                                           BasContext::HashMode::kFast);
    });
    costs.bas_verify_1000 =
        fast * agg_scale + 1000.0 * costs.hash_to_point;
  }

  RsaPrivateKey rsa_key = RsaPrivateKey::Generate(1024, &rng);
  costs.rsa_sign =
      TimeIt(reps, [&](int i) { rsa_key.Sign(Slice(msgs[i % agg_n])); });
  RsaSignature rsig = rsa_key.Sign(Slice(msgs[0]));
  costs.rsa_verify = TimeIt(reps, [&](int) {
    rsa_key.public_key().Verify(Slice(msgs[0]), rsig);
  });
  std::vector<RsaSignature> rsigs;
  for (int i = 0; i < agg_n; ++i) rsigs.push_back(rsa_key.Sign(Slice(msgs[i])));
  costs.rsa_aggregate_1000 =
      TimeIt(1, [&](int) { rsa_key.public_key().Aggregate(rsigs); }) *
      agg_scale;
  {
    std::vector<Slice> views(msgs.begin(), msgs.end());
    RsaSignature ragg = rsa_key.public_key().Aggregate(rsigs);
    costs.rsa_verify_1000 =
        TimeIt(1, [&](int) {
          rsa_key.public_key().VerifyCondensed(views, ragg);
        }) *
        agg_scale;
  }

  std::string m256(256, 'x'), m512(512, 'x'), m1024(1024, 'x');
  const int sha_reps = quick ? 2000 : 20000;
  costs.sha_256b = TimeIt(sha_reps, [&](int) { Sha1::Hash(Slice(m256)); });
  costs.sha_512b = TimeIt(sha_reps, [&](int) { Sha1::Hash(Slice(m512)); });
  costs.sha_1024b = TimeIt(sha_reps, [&](int) { Sha1::Hash(Slice(m1024)); });
  return costs;
}

}  // namespace authdb
