#include "sim/multi_client.h"

#include <algorithm>
#include <mutex>
#include <thread>
#include <utility>

#include "common/clock.h"
#include "common/logging.h"
#include "common/random.h"

namespace authdb {

MultiClientReport RunMultiClientLoad(ShardedQueryServer* server,
                                     std::vector<SignedRecordUpdate> updates,
                                     const MultiClientOptions& options) {
  AUTHDB_CHECK(server != nullptr);
  AUTHDB_CHECK(options.key_lo <= options.key_hi);
  AUTHDB_CHECK(options.query_span >= 1);

  struct PerClient {
    LatencyHistogram query_latency, update_latency;
    size_t queries = 0, updates = 0, failures = 0;
  };
  std::vector<PerClient> per_client(options.clients);

  std::mutex updates_mu;
  size_t next_update = 0;

  uint64_t domain = static_cast<uint64_t>(options.key_hi) -
                    static_cast<uint64_t>(options.key_lo) + 1;
  uint64_t span = std::min(options.query_span, domain);

  auto client = [&](size_t id) {
    Rng rng(options.seed * 0x9E3779B9u + id);
    PerClient& me = per_client[id];
    for (size_t op = 0; op < options.ops_per_client; ++op) {
      bool do_update = rng.NextDouble() < options.update_fraction;
      const SignedRecordUpdate* upd = nullptr;
      if (do_update) {
        std::lock_guard<std::mutex> lock(updates_mu);
        if (next_update < updates.size()) upd = &updates[next_update++];
      }
      if (upd != nullptr) {
        uint64_t t0 = MonotonicMicros();
        Status s = server->ApplyUpdate(*upd);
        me.update_latency.Record(MonotonicMicros() - t0);
        ++me.updates;
        if (!s.ok()) ++me.failures;
      } else {
        int64_t lo = options.key_lo +
                     static_cast<int64_t>(rng.Uniform(domain - span + 1));
        int64_t hi = lo + static_cast<int64_t>(span) - 1;
        uint64_t t0 = MonotonicMicros();
        auto ans = server->Select(lo, hi);
        me.query_latency.Record(MonotonicMicros() - t0);
        ++me.queries;
        // An empty relation is a workload configuration error, not a
        // serving failure; everything else that is not OK counts.
        if (!ans.ok() && !ans.status().IsNotFound()) ++me.failures;
      }
    }
  };

  uint64_t t_start = MonotonicMicros();
  std::vector<std::thread> threads;
  threads.reserve(options.clients);
  for (size_t i = 0; i < options.clients; ++i) threads.emplace_back(client, i);
  for (std::thread& t : threads) t.join();
  uint64_t t_end = MonotonicMicros();

  MultiClientReport report;
  for (const PerClient& pc : per_client) {
    report.queries += pc.queries;
    report.updates += pc.updates;
    report.failures += pc.failures;
    report.query_latency.Merge(pc.query_latency);
    report.update_latency.Merge(pc.update_latency);
  }
  report.elapsed_seconds = static_cast<double>(t_end - t_start) * 1e-6;
  if (report.elapsed_seconds > 0) {
    report.ops_per_second =
        static_cast<double>(report.queries + report.updates) /
        report.elapsed_seconds;
  }
  return report;
}

}  // namespace authdb
