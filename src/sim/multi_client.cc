#include "sim/multi_client.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "common/random.h"

namespace authdb {

namespace {
int BucketOf(uint64_t micros) {
  int b = 0;
  while ((uint64_t{2} << b) <= micros && b < 39) ++b;
  return b;
}

uint64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

void LatencyHistogram::Record(uint64_t micros) {
  ++buckets_[BucketOf(micros)];
  ++count_;
  sum_micros_ += micros;
  if (micros > max_micros_) max_micros_ = micros;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_micros_ += other.sum_micros_;
  if (other.max_micros_ > max_micros_) max_micros_ = other.max_micros_;
}

uint64_t LatencyHistogram::PercentileMicros(double p) const {
  if (count_ == 0) return 0;
  if (p < 0) p = 0;
  if (p > 1) p = 1;
  uint64_t target = static_cast<uint64_t>(p * static_cast<double>(count_));
  if (target >= count_) target = count_ - 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen > target) return (uint64_t{2} << i) - 1;  // bucket upper edge
  }
  return max_micros_;
}

MultiClientReport RunMultiClientLoad(ShardedQueryServer* server,
                                     std::vector<SignedRecordUpdate> updates,
                                     const MultiClientOptions& options) {
  AUTHDB_CHECK(server != nullptr);
  AUTHDB_CHECK(options.key_lo <= options.key_hi);
  AUTHDB_CHECK(options.query_span >= 1);

  struct PerClient {
    LatencyHistogram query_latency, update_latency;
    size_t queries = 0, updates = 0, failures = 0;
  };
  std::vector<PerClient> per_client(options.clients);

  std::mutex updates_mu;
  size_t next_update = 0;

  uint64_t domain = static_cast<uint64_t>(options.key_hi) -
                    static_cast<uint64_t>(options.key_lo) + 1;
  uint64_t span = std::min(options.query_span, domain);

  auto client = [&](size_t id) {
    Rng rng(options.seed * 0x9E3779B9u + id);
    PerClient& me = per_client[id];
    for (size_t op = 0; op < options.ops_per_client; ++op) {
      bool do_update = rng.NextDouble() < options.update_fraction;
      const SignedRecordUpdate* upd = nullptr;
      if (do_update) {
        std::lock_guard<std::mutex> lock(updates_mu);
        if (next_update < updates.size()) upd = &updates[next_update++];
      }
      if (upd != nullptr) {
        uint64_t t0 = NowMicros();
        Status s = server->ApplyUpdate(*upd);
        me.update_latency.Record(NowMicros() - t0);
        ++me.updates;
        if (!s.ok()) ++me.failures;
      } else {
        int64_t lo = options.key_lo +
                     static_cast<int64_t>(rng.Uniform(domain - span + 1));
        int64_t hi = lo + static_cast<int64_t>(span) - 1;
        uint64_t t0 = NowMicros();
        auto ans = server->Select(lo, hi);
        me.query_latency.Record(NowMicros() - t0);
        ++me.queries;
        // An empty relation is a workload configuration error, not a
        // serving failure; everything else that is not OK counts.
        if (!ans.ok() && !ans.status().IsNotFound()) ++me.failures;
      }
    }
  };

  uint64_t t_start = NowMicros();
  std::vector<std::thread> threads;
  threads.reserve(options.clients);
  for (size_t i = 0; i < options.clients; ++i) threads.emplace_back(client, i);
  for (std::thread& t : threads) t.join();
  uint64_t t_end = NowMicros();

  MultiClientReport report;
  for (const PerClient& pc : per_client) {
    report.queries += pc.queries;
    report.updates += pc.updates;
    report.failures += pc.failures;
    report.query_latency.Merge(pc.query_latency);
    report.update_latency.Merge(pc.update_latency);
  }
  report.elapsed_seconds = static_cast<double>(t_end - t_start) * 1e-6;
  if (report.elapsed_seconds > 0) {
    report.ops_per_second =
        static_cast<double>(report.queries + report.updates) /
        report.elapsed_seconds;
  }
  return report;
}

}  // namespace authdb
