#include "sim/multi_client.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "common/clock.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/thread_annotations.h"

namespace authdb {

MultiClientReport RunMultiClientLoad(ShardedQueryServer* server,
                                     std::vector<SignedRecordUpdate> updates,
                                     const MultiClientOptions& options) {
  AUTHDB_CHECK(server != nullptr);
  AUTHDB_CHECK(options.key_lo <= options.key_hi);
  AUTHDB_CHECK(options.query_span >= 1);
  AUTHDB_CHECK(options.join_fraction + options.projection_fraction <= 1.0);
  if (options.join_fraction > 0) {
    AUTHDB_CHECK(options.join_b_lo <= options.join_b_hi);
    AUTHDB_CHECK(options.join_probe_count >= 1);
  }

  struct PerClient {
    LatencyHistogram query_latency, join_latency, projection_latency,
        update_latency;
    LatencyHistogram epoch_lag;
    uint64_t min_served_epoch = ~0ull, max_served_epoch = 0;
    VoAccounting vo;
    size_t queries = 0, joins = 0, projections = 0, updates = 0, failures = 0;
    size_t shed = 0;
    size_t batches = 0;
  };
  std::vector<PerClient> per_client(options.clients);
  const size_t batch_size = std::max<size_t>(options.batch_size, 1);

  Mutex updates_mu;
  size_t next_update = 0;  // guarded by updates_mu (locals can't annotate)

  uint64_t domain = static_cast<uint64_t>(options.key_hi) -
                    static_cast<uint64_t>(options.key_lo) + 1;
  uint64_t span = std::min(options.query_span, domain);
  uint64_t b_domain = options.join_fraction > 0
                          ? static_cast<uint64_t>(options.join_b_hi) -
                                static_cast<uint64_t>(options.join_b_lo) + 1
                          : 1;
  const SizeModel size_model;

  auto client = [&](size_t id) {
    Rng rng(options.seed * 0x9E3779B9u + id);
    PerClient& me = per_client[id];

    // Record one served plan: client-observed latency (for a batched plan,
    // the whole envelope's round trip — they are issued and completed
    // together) plus the per-kind counters and VO accounting.
    auto account = [&](const Query& q, const Result<QueryAnswer>& ans,
                       uint64_t latency) {
      // An empty relation is a workload configuration error, not a
      // serving failure; everything else that is not OK counts.
      bool failed = !ans.ok() && !ans.status().IsNotFound();
      if (failed) ++me.failures;
      const bool served =
          ans.ok() && ans.value().outcome == AnswerOutcome::kServed;
      if (ans.ok() && !served) ++me.shed;
      if (served) {
        // Snapshot-pin accounting: how far publication ran ahead of the
        // epoch this read pinned (0 under a quiescent stream).
        uint64_t served_epoch = ans.value().served_epoch;
        uint64_t current = server->freshness_tracker().current_epoch();
        me.epoch_lag.Record(current > served_epoch ? current - served_epoch
                                                   : 0);
        me.min_served_epoch = std::min(me.min_served_epoch, served_epoch);
        me.max_served_epoch = std::max(me.max_served_epoch, served_epoch);
      }
      switch (q.kind) {
        case QueryKind::kSelect:
          me.query_latency.Record(latency);
          ++me.queries;
          if (served) {
            ++me.vo.select_answers;
            me.vo.select_bytes += ans.value().vo_bytes(size_model);
          }
          break;
        case QueryKind::kProject:
          me.projection_latency.Record(latency);
          ++me.projections;
          if (served) {
            ++me.vo.project_answers;
            me.vo.project_bytes += ans.value().vo_bytes(size_model);
          }
          break;
        case QueryKind::kJoin:
          me.join_latency.Record(latency);
          ++me.joins;
          if (served) {
            ++me.vo.join_answers;
            me.vo.join_bytes += ans.value().vo_bytes(size_model);
            me.vo.join_bloom_bytes +=
                ans.value().join.vo_bloom_bytes(size_model);
            me.vo.join_boundary_bytes +=
                ans.value().join.vo_boundary_bytes(size_model);
          }
          break;
      }
    };

    std::vector<Query> pending;
    pending.reserve(batch_size);
    auto flush = [&] {
      if (pending.empty()) return;
      PlanBatch pb = PlanBatch::Of(std::move(pending));
      pending.clear();
      uint64_t t0 = MonotonicMicros();
      std::vector<Result<QueryAnswer>> answers = server->ExecuteBatch(pb);
      uint64_t latency = MonotonicMicros() - t0;
      ++me.batches;
      for (size_t i = 0; i < pb.plans.size(); ++i)
        account(pb.plans[i], answers[i], latency);
    };

    for (size_t op = 0; op < options.ops_per_client; ++op) {
      bool do_update = rng.NextDouble() < options.update_fraction;
      const SignedRecordUpdate* upd = nullptr;
      if (do_update) {
        MutexLock lock(updates_mu);
        if (next_update < updates.size()) upd = &updates[next_update++];
      }
      if (upd != nullptr) {
        flush();  // keep this client's reads ordered before its write
        uint64_t t0 = MonotonicMicros();
        Status s = server->ApplyUpdate(*upd);
        me.update_latency.Record(MonotonicMicros() - t0);
        ++me.updates;
        if (!s.ok()) ++me.failures;
        continue;
      }
      // Read op: pick the plan kind, build the plan, batch it up.
      double kind_draw = rng.NextDouble();
      Query q;
      if (kind_draw < options.join_fraction) {
        std::vector<int64_t> probes;
        probes.reserve(options.join_probe_count);
        for (size_t i = 0; i < options.join_probe_count; ++i) {
          probes.push_back(options.join_b_lo +
                           static_cast<int64_t>(rng.Uniform(b_domain)));
        }
        q = Query::Join(std::move(probes), options.join_method);
      } else {
        int64_t lo = options.key_lo +
                     static_cast<int64_t>(rng.Uniform(domain - span + 1));
        int64_t hi = lo + static_cast<int64_t>(span) - 1;
        if (kind_draw <
            options.join_fraction + options.projection_fraction) {
          q = Query::Project(lo, hi, options.projection_attrs);
        } else {
          q = Query::Select(lo, hi);
        }
      }
      pending.push_back(std::move(q));
      if (pending.size() >= batch_size) flush();
    }
    flush();
  };

  const ServerMetrics before = server->Metrics();
  uint64_t t_start = MonotonicMicros();
  std::vector<std::thread> threads;
  threads.reserve(options.clients);
  for (size_t i = 0; i < options.clients; ++i) threads.emplace_back(client, i);
  for (std::thread& t : threads) t.join();
  uint64_t t_end = MonotonicMicros();

  MultiClientReport report;
  report.server = server->Metrics().Delta(before);
  for (const PerClient& pc : per_client) {
    report.queries += pc.queries;
    report.joins += pc.joins;
    report.projections += pc.projections;
    report.updates += pc.updates;
    report.failures += pc.failures;
    report.shed += pc.shed;
    report.query_latency.Merge(pc.query_latency);
    report.join_latency.Merge(pc.join_latency);
    report.projection_latency.Merge(pc.projection_latency);
    report.update_latency.Merge(pc.update_latency);
    report.epoch_lag.Merge(pc.epoch_lag);
    report.min_served_epoch = std::min(report.min_served_epoch,
                                       pc.min_served_epoch);
    report.max_served_epoch = std::max(report.max_served_epoch,
                                       pc.max_served_epoch);
    report.vo.Merge(pc.vo);
    report.batches += pc.batches;
  }
  report.elapsed_seconds = static_cast<double>(t_end - t_start) * 1e-6;
  if (report.elapsed_seconds > 0) {
    report.ops_per_second =
        static_cast<double>(report.queries + report.joins +
                            report.projections + report.updates) /
        report.elapsed_seconds;
  }
  return report;
}

}  // namespace authdb
