#include "server/update_stream.h"

#include <utility>

#include "common/clock.h"
#include "common/logging.h"

namespace authdb {

UpdateStream::UpdateStream(ShardedQueryServer* server,
                           const ServerConfig& config)
    : server_(server), max_queue_depth_(config.ingest.max_queue_depth) {
  AUTHDB_CHECK(server_ != nullptr);
  AUTHDB_CHECK(config.Validated().ok() && "invalid ServerConfig");
  queues_.reserve(server_->shard_count());
  for (size_t s = 0; s < server_->shard_count(); ++s)
    queues_.push_back(std::make_unique<ShardQueue>());
  for (size_t s = 0; s < queues_.size(); ++s)
    queues_[s]->worker = std::thread([this, s] { WorkerLoop(s); });
}

UpdateStream::~UpdateStream() { Close(); }

void UpdateStream::Enqueue(size_t shard, Event event) {
  ShardQueue& q = *queues_[shard];
  MutexLock lk(q.mu);
  if (q.q.size() >= max_queue_depth_) {
    // The backpressure block — measured, so a producer stalled behind a
    // wedged reader (epoch-pin budget -> barrier -> full queues) shows up
    // as ingest.push_block_us instead of silent lost throughput.
    const uint64_t t0 = MonotonicMicros();
    while (q.q.size() >= max_queue_depth_) q.progress.Wait(q.mu);
    q.push_block_us += MonotonicMicros() - t0;
  }
  q.q.push_back(std::move(event));
  ++q.enqueued;
  if (q.q.size() > q.max_depth_seen) q.max_depth_seen = q.q.size();
  q.ready.NotifyOne();
}

void UpdateStream::PushUpdate(SignedRecordUpdate msg) {
  std::vector<ShardedQueryServer::ShardPiece> pieces =
      server_->SplitByOwner(msg);
  MutexLock lock(push_mu_);
  AUTHDB_CHECK(!closed_);
  // A seam-spanning message needs no rendezvous: each piece applies to its
  // own shard's next-epoch builder, and the epoch barrier — behind every
  // piece on every involved queue — publishes them together atomically.
  for (ShardedQueryServer::ShardPiece& sp : pieces) {
    Event ev;
    ev.piece = std::move(sp.piece);
    Enqueue(sp.shard, std::move(ev));
  }
  MutexLock slock(tally_mu_);
  ++tally_.updates_pushed;
}

void UpdateStream::PushSummary(UpdateSummary summary) {
  PushSummary(std::move(summary), PartitionRefresh{});
}

void UpdateStream::PushSummary(
    UpdateSummary summary, std::vector<CertifiedPartition> partition_refresh) {
  PartitionRefresh refresh;
  refresh.full = std::move(partition_refresh);
  PushSummary(std::move(summary), std::move(refresh));
}

void UpdateStream::PushSummary(UpdateSummary summary,
                               PartitionRefresh partition_refresh) {
  auto barrier = std::make_shared<SummaryBarrier>();
  barrier->summary = std::move(summary);
  barrier->partition_refresh = std::move(partition_refresh);
  barrier->snaps.resize(queues_.size());
  barrier->remaining.store(queues_.size());
  barrier->enqueue_micros = MonotonicMicros();
  MutexLock lock(push_mu_);
  AUTHDB_CHECK(!closed_);
  for (size_t s = 0; s < queues_.size(); ++s) {
    Event ev;
    ev.barrier = barrier;
    Enqueue(s, std::move(ev));
  }
}

void UpdateStream::WorkerLoop(size_t shard) {
  ShardQueue& q = *queues_[shard];
  for (;;) {
    q.mu.Lock();
    while (q.q.empty() && !stop_.load()) q.ready.Wait(q.mu);
    if (q.q.empty()) {  // stop requested and fully drained
      q.mu.Unlock();
      break;
    }
    Event ev = std::move(q.q.front());
    q.q.pop_front();
    q.mu.Unlock();

    uint64_t applied = 0, failures = 0;
    if (ev.barrier) {
      // Freeze this shard's snapshot BEFORE decrementing: the frozen state
      // is exactly the shard's prefix of the stream up to the barrier,
      // even if this worker races ahead into next-period updates while
      // slower shards drain. The decrement's acq_rel ordering publishes
      // the slot write to the final worker.
      ev.barrier->snaps[shard] = server_->FreezeShard(shard);
      if (ev.barrier->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Last shard over the barrier: every update pushed before the
        // summary has been applied and frozen on every shard, so the new
        // epoch — snapshots, summary, and partition refresh — publishes
        // in one atomic descriptor swap. (This may block on the
        // max_pinned_epochs budget; the queues then fill and backpressure
        // reaches the producer.)
        server_->PublishEpoch(std::move(ev.barrier->summary),
                              std::move(ev.barrier->snaps),
                              std::move(ev.barrier->partition_refresh));
        uint64_t latency = MonotonicMicros() - ev.barrier->enqueue_micros;
        MutexLock slock(tally_mu_);  // rare: once per rho
        ++tally_.summaries_published;
        tally_.publish_wait_us += latency;
      }
    } else {
      applied = 1;
      if (!server_->ApplyToShardDeferred(shard, ev.piece).ok()) failures = 1;
    }

    q.mu.Lock();
    q.pieces_applied += applied;
    q.apply_failures += failures;
    ++q.drained;
    q.progress.NotifyAll();
    q.mu.Unlock();
  }
}

void UpdateStream::Flush() {
  // Snapshot the enqueue counts under the push lock so the wait targets
  // form one consistent cut of the stream, then wait each queue past its
  // target. A summary publishes inside the event that drains it, so once
  // every queue reaches its target all barriers in the cut have published.
  std::vector<uint64_t> targets(queues_.size());
  {
    MutexLock lock(push_mu_);
    for (size_t s = 0; s < queues_.size(); ++s) {
      MutexLock qlock(queues_[s]->mu);
      targets[s] = queues_[s]->enqueued;
    }
  }
  for (size_t s = 0; s < queues_.size(); ++s) {
    ShardQueue& q = *queues_[s];
    MutexLock lk(q.mu);
    while (q.drained < targets[s]) q.progress.Wait(q.mu);
  }
}

void UpdateStream::Close() {
  {
    MutexLock lock(push_mu_);
    if (closed_) return;
    closed_ = true;
  }
  stop_.store(true);
  for (auto& q : queues_) {
    MutexLock lk(q->mu);
    q->ready.NotifyOne();
  }
  for (auto& q : queues_) q->worker.join();
}

ServerMetrics UpdateStream::Metrics() const {
  ServerMetrics m = server_->Metrics();
  {
    MutexLock lock(tally_mu_);
    m.ingest.updates_pushed = tally_.updates_pushed;
    m.ingest.summaries_published = tally_.summaries_published;
    m.ingest.publish_wait_us = tally_.publish_wait_us;
  }
  for (const auto& q : queues_) {
    MutexLock lk(q->mu);
    m.ingest.pieces_applied += q->pieces_applied;
    m.ingest.apply_failures += q->apply_failures;
    m.ingest.push_block_us += q->push_block_us;
    if (q->max_depth_seen > m.ingest.queue_depth_max)
      m.ingest.queue_depth_max = q->max_depth_seen;
  }
  return m;
}

}  // namespace authdb
