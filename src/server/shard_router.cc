#include "server/shard_router.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace authdb {

ShardRouter::ShardRouter(std::vector<int64_t> split_keys)
    : splits_(std::move(split_keys)) {
  // Strictly ascending, and never the -inf sentinel (upper_bound_of
  // computes split - 1, which must not underflow).
  AUTHDB_CHECK(splits_.empty() || splits_.front() > kChainMinusInf);
  for (size_t i = 1; i < splits_.size(); ++i)
    AUTHDB_CHECK(splits_[i - 1] < splits_[i]);
}

ShardRouter ShardRouter::Uniform(size_t shards, int64_t lo, int64_t hi) {
  AUTHDB_CHECK(shards >= 1 && lo <= hi);
  // The chain sentinels cannot appear inside an owned interval: a split at
  // kChainMinusInf would alias the sentinel, and the full int64 domain
  // would wrap `width` to zero below.
  AUTHDB_CHECK(lo > kChainMinusInf);
  std::vector<int64_t> splits;
  splits.reserve(shards - 1);
  // Split [lo, hi] into `shards` near-equal strides; unsigned arithmetic
  // sidesteps overflow when the interval spans most of the domain.
  uint64_t width = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  // Fewer keys than shards would compute duplicate split points; fail
  // loudly here rather than in the strict-ascending constructor check.
  AUTHDB_CHECK(width >= shards);
  for (size_t i = 1; i < shards; ++i) {
    uint64_t off = width / shards * i;
    splits.push_back(static_cast<int64_t>(static_cast<uint64_t>(lo) + off));
  }
  return ShardRouter(std::move(splits));
}

size_t ShardRouter::ShardOf(int64_t key) const {
  // First split strictly greater than key names the shard's upper edge.
  return std::upper_bound(splits_.begin(), splits_.end(), key) -
         splits_.begin();
}

std::vector<ShardRouter::SubRange> ShardRouter::Cover(int64_t lo,
                                                      int64_t hi) const {
  AUTHDB_CHECK(lo <= hi);
  std::vector<SubRange> out;
  size_t first = ShardOf(lo), last = ShardOf(hi);
  out.reserve(last - first + 1);
  for (size_t s = first; s <= last; ++s) {
    out.push_back(SubRange{s, std::max(lo, lower_bound_of(s)),
                           std::min(hi, upper_bound_of(s))});
  }
  return out;
}

}  // namespace authdb
