#ifndef AUTHDB_SERVER_SHARD_EXECUTOR_H_
#define AUTHDB_SERVER_SHARD_EXECUTOR_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"

namespace authdb {

/// Per-shard task queues with shard-affine workers: shard s's visits always
/// execute on shard s's worker thread. The sharded server replaced its
/// fixed ThreadPool hand-off with this so a batch's shard visits (one per
/// shard per batch) land on the thread that owns that shard's snapshot
/// chunks and SigCache — consecutive batches touch each shard from one
/// thread, and no visit migrates between cores mid-stream.
///
/// In the inline configuration (`threaded == false`) every visit runs on
/// the submitting thread in shard order — the degenerate mode used by
/// single-threaded tools, tests, and worker_threads == 0 servers.
///
/// Visits never submit sub-visits, so callers may block on completion
/// without risking exhaustion deadlock (same contract the ThreadPool had).
class ShardExecutor {
 public:
  /// One queued unit: the shard it is affine to, and the closure to run.
  struct Visit {
    size_t shard = 0;
    std::function<void()> fn;
  };

  ShardExecutor(size_t shards, bool threaded);
  ~ShardExecutor();

  ShardExecutor(const ShardExecutor&) = delete;
  ShardExecutor& operator=(const ShardExecutor&) = delete;

  /// Run every visit on its shard's worker (or inline when not threaded),
  /// returning when all have finished. Multiple visits for the same shard
  /// run in submission order on that shard's lane.
  void RunVisits(std::vector<Visit> visits);

  size_t shard_count() const { return lanes_.size(); }
  bool threaded() const { return threaded_; }

 private:
  struct Latch {
    Mutex mu;
    CondVar cv;
    size_t remaining GUARDED_BY(mu) = 0;
  };
  /// One shard's queue + worker. Lanes are independently locked: a batch
  /// enqueues into each visited lane once and the workers never contend
  /// with each other.
  struct Lane {
    Mutex mu;
    CondVar cv;
    std::deque<std::function<void()>> queue GUARDED_BY(mu);
    bool stop GUARDED_BY(mu) = false;
    std::thread worker;
  };

  void WorkerLoop(Lane* lane);

  std::vector<std::unique_ptr<Lane>> lanes_;
  bool threaded_;
};

}  // namespace authdb

#endif  // AUTHDB_SERVER_SHARD_EXECUTOR_H_
