#include "server/shard_executor.h"

#include <memory>
#include <utility>

#include "common/logging.h"

namespace authdb {

ShardExecutor::ShardExecutor(size_t shards, bool threaded)
    : threaded_(threaded) {
  lanes_.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    lanes_.push_back(std::make_unique<Lane>());
    if (threaded_) {
      Lane* lane = lanes_.back().get();
      lane->worker = std::thread([this, lane] { WorkerLoop(lane); });
    }
  }
}

ShardExecutor::~ShardExecutor() {
  for (auto& lane : lanes_) {
    {
      MutexLock lock(lane->mu);
      lane->stop = true;
    }
    lane->cv.NotifyAll();
  }
  for (auto& lane : lanes_) {
    if (lane->worker.joinable()) lane->worker.join();
  }
}

void ShardExecutor::WorkerLoop(Lane* lane) {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(lane->mu);
      while (!lane->stop && lane->queue.empty()) lane->cv.Wait(lane->mu);
      if (lane->queue.empty()) return;  // stop set and drained
      task = std::move(lane->queue.front());
      lane->queue.pop_front();
    }
    task();
  }
}

void ShardExecutor::RunVisits(std::vector<Visit> visits) {
  if (visits.empty()) return;
  if (!threaded_) {
    for (Visit& v : visits) v.fn();
    return;
  }
  auto latch = std::make_shared<Latch>();
  {
    // Uncontended (the latch is not yet shared); taken so the analysis
    // sees the guarded initialization.
    MutexLock l(latch->mu);
    latch->remaining = visits.size();
  }
  for (Visit& v : visits) {
    AUTHDB_CHECK(v.shard < lanes_.size());
    Lane* lane = lanes_[v.shard].get();
    {
      MutexLock lock(lane->mu);
      lane->queue.emplace_back([latch, fn = std::move(v.fn)] {
        fn();
        MutexLock l(latch->mu);
        if (--latch->remaining == 0) latch->cv.NotifyOne();
      });
    }
    lane->cv.NotifyOne();
  }
  MutexLock l(latch->mu);
  while (latch->remaining != 0) latch->cv.Wait(latch->mu);
}

}  // namespace authdb
