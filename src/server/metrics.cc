#include "server/metrics.h"

namespace authdb {

// ---------------------------------------------------------------------------
// ServerMetrics: the stable dotted-name view.
//
// The quoted names below are the telemetry contract: tests/metrics_test.cc
// pins the full set, the README metrics table documents each one, and
// scripts/lint_invariants.py (rule metrics-doc) fails when a name quoted
// here is missing from the README. Add names freely; renaming or dropping
// one is an API break.

std::vector<std::pair<std::string, double>> ServerMetrics::Flatten() const {
  std::vector<std::pair<std::string, double>> out;
  auto put = [&out](const char* name, double v) { out.emplace_back(name, v); };

  put("exec.batches", static_cast<double>(exec.batches));
  put("exec.plans", static_cast<double>(exec.plans));
  put("exec.invalid_plans", static_cast<double>(exec.invalid_plans));
  put("exec.shards_queried", static_cast<double>(exec.shards_queried));
  put("exec.batch.shard_visits", static_cast<double>(exec.shard_visits));
  put("exec.batch.finalizes", static_cast<double>(exec.batch_finalizes));
  put("exec.agg.point_adds", static_cast<double>(exec.agg_point_adds));
  put("exec.agg.leaf_fetches", static_cast<double>(exec.agg_leaf_fetches));
  put("exec.agg.cache_hits", static_cast<double>(exec.agg_cache_hits));
  put("exec.agg.refreshes", static_cast<double>(exec.agg_refreshes));
  put("exec.agg.span_hits", static_cast<double>(exec.agg_span_hits));
  put("exec.crypto.digests_hashed",
      static_cast<double>(exec.digests_hashed));
  put("exec.bloom.probes", static_cast<double>(exec.bloom_probes));
  put("exec.bloom.block_hits", static_cast<double>(exec.bloom_block_hits));
  put("exec.bloom.fp_fallbacks",
      static_cast<double>(exec.bloom_fp_fallbacks));
  put("exec.bloom.delta_merges",
      static_cast<double>(exec.bloom_delta_merges));
  put("exec.bloom.full_rebuilds",
      static_cast<double>(exec.bloom_full_rebuilds));
  put("exec.cache.retunes", static_cast<double>(exec.cache_retunes));
  put("exec.last_epoch", static_cast<double>(exec.last_epoch));
  for (size_t s = 0; s < exec.shard_busy.size(); ++s) {
    const std::string sfx = std::to_string(s);
    const ShardBusy& b = exec.shard_busy[s];
    out.emplace_back(std::string("exec.batch.shard_busy_us.") + sfx,
                     static_cast<double>(b.visit_us));
    out.emplace_back(std::string("exec.batch.select_us.") + sfx,
                     static_cast<double>(b.select_us));
    out.emplace_back(std::string("exec.batch.project_us.") + sfx,
                     static_cast<double>(b.project_us));
    out.emplace_back(std::string("exec.batch.join_us.") + sfx,
                     static_cast<double>(b.join_us));
  }

  put("admission.enabled", admission.enabled ? 1.0 : 0.0);
  put("admission.admitted_total",
      static_cast<double>(admission.admitted_total));
  put("admission.shed_total", static_cast<double>(admission.shed_total));
  put("admission.select.admitted",
      static_cast<double>(admission.select_admitted));
  put("admission.select.shed", static_cast<double>(admission.select_shed));
  put("admission.project.admitted",
      static_cast<double>(admission.project_admitted));
  put("admission.project.shed", static_cast<double>(admission.project_shed));
  put("admission.join.admitted", static_cast<double>(admission.join_admitted));
  put("admission.join.shed", static_cast<double>(admission.join_shed));
  put("admission.priority_grants",
      static_cast<double>(admission.priority_grants));
  put("admission.bulk_grants", static_cast<double>(admission.bulk_grants));
  put("admission.starvation_grants",
      static_cast<double>(admission.starvation_grants));
  put("admission.queue_wait_us", static_cast<double>(admission.queue_wait_us));
  put("admission.queue_depth_max",
      static_cast<double>(admission.queue_depth_max));

  put("epoch.current", static_cast<double>(epoch.current));
  put("epoch.pinned", static_cast<double>(epoch.pinned));
  put("epoch.published_total", static_cast<double>(epoch.published_total));
  put("epoch.publish_backpressure_us",
      static_cast<double>(epoch.publish_backpressure_us));

  put("ingest.updates_pushed", static_cast<double>(ingest.updates_pushed));
  put("ingest.pieces_applied", static_cast<double>(ingest.pieces_applied));
  put("ingest.summaries_published",
      static_cast<double>(ingest.summaries_published));
  put("ingest.apply_failures", static_cast<double>(ingest.apply_failures));
  put("ingest.queue_depth_max", static_cast<double>(ingest.queue_depth_max));
  put("ingest.push_block_us", static_cast<double>(ingest.push_block_us));
  put("ingest.publish_wait_us", static_cast<double>(ingest.publish_wait_us));
  return out;
}

double ServerMetrics::Value(const std::string& name) const {
  for (const auto& [n, v] : Flatten()) {
    if (n == name) return v;
  }
  return 0.0;
}

ServerMetrics ServerMetrics::Delta(const ServerMetrics& since) const {
  auto sub = [](uint64_t now, uint64_t then) {
    return now >= then ? now - then : 0;
  };
  ServerMetrics d = *this;  // point-in-time values keep this snapshot
  d.exec.batches = sub(exec.batches, since.exec.batches);
  d.exec.plans = sub(exec.plans, since.exec.plans);
  d.exec.invalid_plans = sub(exec.invalid_plans, since.exec.invalid_plans);
  d.exec.shards_queried = sub(exec.shards_queried, since.exec.shards_queried);
  d.exec.shard_visits = sub(exec.shard_visits, since.exec.shard_visits);
  d.exec.batch_finalizes =
      sub(exec.batch_finalizes, since.exec.batch_finalizes);
  d.exec.agg_point_adds = sub(exec.agg_point_adds, since.exec.agg_point_adds);
  d.exec.agg_leaf_fetches =
      sub(exec.agg_leaf_fetches, since.exec.agg_leaf_fetches);
  d.exec.agg_cache_hits = sub(exec.agg_cache_hits, since.exec.agg_cache_hits);
  d.exec.agg_refreshes = sub(exec.agg_refreshes, since.exec.agg_refreshes);
  d.exec.agg_span_hits = sub(exec.agg_span_hits, since.exec.agg_span_hits);
  d.exec.digests_hashed = sub(exec.digests_hashed, since.exec.digests_hashed);
  d.exec.bloom_probes = sub(exec.bloom_probes, since.exec.bloom_probes);
  d.exec.bloom_block_hits =
      sub(exec.bloom_block_hits, since.exec.bloom_block_hits);
  d.exec.bloom_fp_fallbacks =
      sub(exec.bloom_fp_fallbacks, since.exec.bloom_fp_fallbacks);
  d.exec.bloom_delta_merges =
      sub(exec.bloom_delta_merges, since.exec.bloom_delta_merges);
  d.exec.bloom_full_rebuilds =
      sub(exec.bloom_full_rebuilds, since.exec.bloom_full_rebuilds);
  d.exec.cache_retunes = sub(exec.cache_retunes, since.exec.cache_retunes);
  for (size_t s = 0; s < d.exec.shard_busy.size(); ++s) {
    if (s >= since.exec.shard_busy.size()) break;
    const ShardBusy& b = since.exec.shard_busy[s];
    d.exec.shard_busy[s].select_us =
        sub(exec.shard_busy[s].select_us, b.select_us);
    d.exec.shard_busy[s].project_us =
        sub(exec.shard_busy[s].project_us, b.project_us);
    d.exec.shard_busy[s].join_us = sub(exec.shard_busy[s].join_us, b.join_us);
    d.exec.shard_busy[s].visit_us =
        sub(exec.shard_busy[s].visit_us, b.visit_us);
  }

  d.admission.admitted_total =
      sub(admission.admitted_total, since.admission.admitted_total);
  d.admission.shed_total = sub(admission.shed_total, since.admission.shed_total);
  d.admission.select_admitted =
      sub(admission.select_admitted, since.admission.select_admitted);
  d.admission.select_shed =
      sub(admission.select_shed, since.admission.select_shed);
  d.admission.project_admitted =
      sub(admission.project_admitted, since.admission.project_admitted);
  d.admission.project_shed =
      sub(admission.project_shed, since.admission.project_shed);
  d.admission.join_admitted =
      sub(admission.join_admitted, since.admission.join_admitted);
  d.admission.join_shed = sub(admission.join_shed, since.admission.join_shed);
  d.admission.priority_grants =
      sub(admission.priority_grants, since.admission.priority_grants);
  d.admission.bulk_grants =
      sub(admission.bulk_grants, since.admission.bulk_grants);
  d.admission.starvation_grants =
      sub(admission.starvation_grants, since.admission.starvation_grants);
  d.admission.queue_wait_us =
      sub(admission.queue_wait_us, since.admission.queue_wait_us);

  d.epoch.published_total =
      sub(epoch.published_total, since.epoch.published_total);
  d.epoch.publish_backpressure_us =
      sub(epoch.publish_backpressure_us, since.epoch.publish_backpressure_us);

  d.ingest.updates_pushed =
      sub(ingest.updates_pushed, since.ingest.updates_pushed);
  d.ingest.pieces_applied =
      sub(ingest.pieces_applied, since.ingest.pieces_applied);
  d.ingest.summaries_published =
      sub(ingest.summaries_published, since.ingest.summaries_published);
  d.ingest.apply_failures =
      sub(ingest.apply_failures, since.ingest.apply_failures);
  d.ingest.push_block_us = sub(ingest.push_block_us, since.ingest.push_block_us);
  d.ingest.publish_wait_us =
      sub(ingest.publish_wait_us, since.ingest.publish_wait_us);
  return d;
}

// ---------------------------------------------------------------------------
// MetricsCore

namespace {
constexpr auto kRelaxed = std::memory_order_relaxed;
}  // namespace

MetricsCore::MetricsCore(size_t shards) : shard_busy_(shards) {}

void MetricsCore::FoldBatch(const BatchExecStats& batch) {
  batches_.fetch_add(1, kRelaxed);
  plans_.fetch_add(batch.plans, kRelaxed);
  invalid_plans_.fetch_add(batch.invalid_plans, kRelaxed);
  shards_queried_.fetch_add(batch.shards_queried, kRelaxed);
  shard_visits_.fetch_add(batch.shard_visits, kRelaxed);
  batch_finalizes_.fetch_add(batch.batch_finalizes, kRelaxed);
  agg_point_adds_.fetch_add(batch.agg_point_adds, kRelaxed);
  agg_leaf_fetches_.fetch_add(batch.agg_leaf_fetches, kRelaxed);
  agg_cache_hits_.fetch_add(batch.agg_cache_hits, kRelaxed);
  agg_refreshes_.fetch_add(batch.agg_refreshes, kRelaxed);
  agg_span_hits_.fetch_add(batch.agg_span_hits, kRelaxed);
  digests_hashed_.fetch_add(batch.digests_hashed, kRelaxed);
  bloom_probes_.fetch_add(batch.bloom_probes, kRelaxed);
  bloom_block_hits_.fetch_add(batch.bloom_block_hits, kRelaxed);
  bloom_fp_fallbacks_.fetch_add(batch.bloom_fp_fallbacks, kRelaxed);
  last_epoch_.store(batch.epoch, kRelaxed);
  for (size_t s = 0; s < batch.shard_busy.size() && s < shard_busy_.size();
       ++s) {
    const ShardBusy& b = batch.shard_busy[s];
    if (b.visit_us == 0 && b.select_us == 0 && b.project_us == 0 &&
        b.join_us == 0) {
      continue;
    }
    shard_busy_[s].select_us.fetch_add(b.select_us, kRelaxed);
    shard_busy_[s].project_us.fetch_add(b.project_us, kRelaxed);
    shard_busy_[s].join_us.fetch_add(b.join_us, kRelaxed);
    shard_busy_[s].visit_us.fetch_add(b.visit_us, kRelaxed);
  }
}

void MetricsCore::RecordPublish(uint64_t backpressure_us) {
  published_total_.fetch_add(1, kRelaxed);
  if (backpressure_us > 0)
    publish_backpressure_us_.fetch_add(backpressure_us, kRelaxed);
}

void MetricsCore::RecordCacheRetunes(uint64_t installs) {
  cache_retunes_.fetch_add(installs, kRelaxed);
}

void MetricsCore::RecordPartitionRefresh(uint64_t delta_merges,
                                         uint64_t full_rebuilds) {
  bloom_delta_merges_.fetch_add(delta_merges, kRelaxed);
  bloom_full_rebuilds_.fetch_add(full_rebuilds, kRelaxed);
}

void MetricsCore::Snapshot(ServerMetrics* out) const {
  ServerMetrics::Exec& e = out->exec;
  e.batches = batches_.load(kRelaxed);
  e.plans = plans_.load(kRelaxed);
  e.invalid_plans = invalid_plans_.load(kRelaxed);
  e.shards_queried = shards_queried_.load(kRelaxed);
  e.shard_visits = shard_visits_.load(kRelaxed);
  e.batch_finalizes = batch_finalizes_.load(kRelaxed);
  e.agg_point_adds = agg_point_adds_.load(kRelaxed);
  e.agg_leaf_fetches = agg_leaf_fetches_.load(kRelaxed);
  e.agg_cache_hits = agg_cache_hits_.load(kRelaxed);
  e.agg_refreshes = agg_refreshes_.load(kRelaxed);
  e.agg_span_hits = agg_span_hits_.load(kRelaxed);
  e.digests_hashed = digests_hashed_.load(kRelaxed);
  e.bloom_probes = bloom_probes_.load(kRelaxed);
  e.bloom_block_hits = bloom_block_hits_.load(kRelaxed);
  e.bloom_fp_fallbacks = bloom_fp_fallbacks_.load(kRelaxed);
  e.bloom_delta_merges = bloom_delta_merges_.load(kRelaxed);
  e.bloom_full_rebuilds = bloom_full_rebuilds_.load(kRelaxed);
  e.cache_retunes = cache_retunes_.load(kRelaxed);
  e.last_epoch = last_epoch_.load(kRelaxed);
  e.shard_busy.resize(shard_busy_.size());
  for (size_t s = 0; s < shard_busy_.size(); ++s) {
    e.shard_busy[s].select_us = shard_busy_[s].select_us.load(kRelaxed);
    e.shard_busy[s].project_us = shard_busy_[s].project_us.load(kRelaxed);
    e.shard_busy[s].join_us = shard_busy_[s].join_us.load(kRelaxed);
    e.shard_busy[s].visit_us = shard_busy_[s].visit_us.load(kRelaxed);
  }
  out->epoch.published_total = published_total_.load(kRelaxed);
  out->epoch.publish_backpressure_us =
      publish_backpressure_us_.load(kRelaxed);
}

}  // namespace authdb
