#include "server/config.h"

#include <string>

namespace authdb {

Result<ServerConfig> ServerConfig::Validated() const {
  if (node.record_len == 0)
    return Status::InvalidArgument("node.record_len must be >= 1");
  if (node.summaries_retained == 0) {
    return Status::InvalidArgument(
        "node.summaries_retained must be >= 1 (every epoch carries its "
        "summary run)");
  }
  if (serving.worker_threads > 4096) {
    return Status::InvalidArgument(
        "serving.worker_threads is a per-shard flag, not a pool size: " +
        std::to_string(serving.worker_threads) + " is not plausible");
  }
  if (ingest.max_queue_depth == 0) {
    return Status::InvalidArgument(
        "ingest.max_queue_depth must be >= 1 (0 would deadlock every "
        "producer)");
  }
  if (admission.enabled) {
    if (admission.max_inflight_plans == 0) {
      return Status::InvalidArgument(
          "admission.max_inflight_plans must be >= 1 when admission is "
          "enabled (0 sheds everything)");
    }
    if (admission.starvation_bound == 0) {
      return Status::InvalidArgument(
          "admission.starvation_bound must be >= 1 (the bulk lane must "
          "eventually be granted)");
    }
  }
  return *this;
}

}  // namespace authdb
