#include "server/sharded_query_server.h"

#include <algorithm>
#include <functional>
#include <iterator>
#include <set>
#include <utility>

#include "common/logging.h"
#include "core/chain.h"

namespace authdb {

ShardedQueryServer::ShardedQueryServer(std::shared_ptr<const BasContext> ctx,
                                       ShardRouter router,
                                       const Options& options)
    : ctx_(std::move(ctx)),
      router_(std::move(router)),
      options_(options),
      pool_(options.worker_threads),
      pin_sync_(std::make_shared<PinSync>()),
      summaries_(std::make_shared<const std::deque<UpdateSummary>>()) {
  shards_.reserve(router_.shard_count());
  for (size_t i = 0; i < router_.shard_count(); ++i)
    shards_.push_back(std::make_unique<Shard>());
  // Publish the empty epoch-0 descriptor so readers always have a pin.
  MutexLock pub(publish_mu_);
  RepublishLocked();
}

// ---------------------------------------------------------------------------
// Write path: COW builders + atomic epoch publication

std::vector<ShardedQueryServer::ShardPiece> ShardedQueryServer::SplitByOwner(
    const SignedRecordUpdate& msg) const {
  int64_t primary_key = msg.record ? msg.record->record.key() : msg.key;
  size_t owner = router_.ShardOf(primary_key);

  std::vector<SignedRecordUpdate> per_shard(shards_.size());
  std::vector<bool> active(shards_.size(), false);
  if (msg.record || msg.kind != SignedRecordUpdate::Kind::kRecertify) {
    per_shard[owner].kind = msg.kind;
    per_shard[owner].key = msg.key;
    per_shard[owner].record = msg.record;
    active[owner] = true;
  }
  for (const CertifiedRecord& cr : msg.recertified) {
    size_t s = router_.ShardOf(cr.record.key());
    if (!active[s]) {
      per_shard[s].kind = SignedRecordUpdate::Kind::kRecertify;
      active[s] = true;
    }
    per_shard[s].recertified.push_back(cr);
  }

  std::vector<ShardPiece> out;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (active[s]) out.push_back(ShardPiece{s, std::move(per_shard[s])});
  }
  return out;
}

Status ShardedQueryServer::ApplyToShardDeferred(
    size_t shard, const SignedRecordUpdate& piece) {
  AUTHDB_CHECK(shard < shards_.size());
  Shard& sh = *shards_[shard];
  MutexLock lock(sh.mu);
  return sh.builder.Apply(piece);
}

Status ShardedQueryServer::ApplyUpdate(const SignedRecordUpdate& msg) {
  // publish_mu_ is held across the whole piece-apply loop AND the
  // republish: a concurrent publisher (another direct apply, AddSummary,
  // SetJoinPartitions) could otherwise freeze a seam-spanning message
  // half-applied — shard 0 post-piece, shard 1 pre-piece — into a
  // descriptor every reader would pin as a torn re-chaining.
  MutexLock pub(publish_mu_);
  Status st = Status::OK();
  for (const ShardPiece& sp : SplitByOwner(msg)) {
    st = ApplyToShardDeferred(sp.shard, sp.piece);
    // A piece failing to apply is a protocol violation (the DA's signed
    // messages always apply cleanly); earlier pieces stay in place and the
    // caller must treat the failure as fatal to the replica's integrity.
    if (!st.ok()) break;
  }
  RepublishLocked();
  return st;
}

std::shared_ptr<const EpochSnapshot> ShardedQueryServer::FreezeShard(
    size_t shard) {
  AUTHDB_CHECK(shard < shards_.size());
  Shard& sh = *shards_[shard];
  MutexLock lock(sh.mu);
  return sh.builder.Freeze();
}

size_t ShardedQueryServer::LivePinnedLocked() const {
  // Requires pin_sync_->mu (NOT publish_mu_): the diagnostic and the
  // backpressure predicate must stay readable while a publisher parks on
  // the budget with publish_mu_ held.
  retired_.erase(std::remove_if(retired_.begin(), retired_.end(),
                                [](const std::weak_ptr<const EpochDescriptor>&
                                       w) { return w.expired(); }),
                 retired_.end());
  return retired_.size();
}

void ShardedQueryServer::InstallDescriptorLocked(
    std::vector<std::shared_ptr<const EpochSnapshot>> snaps) {
  auto* raw = new EpochDescriptor;
  raw->epoch = tracker_.current_epoch();
  raw->total_size = 0;
  for (const auto& s : snaps) raw->total_size += s->size();
  raw->shards = std::move(snaps);
  raw->summaries = summaries_;
  raw->partitions = partitions_;
  // The deleter fires when the last reader unpins a superseded epoch —
  // that retires the snapshot set (chunks shared with newer epochs
  // survive) and wakes any publisher blocked on max_pinned_epochs. The
  // sync block is shared so an unpin after server teardown stays safe.
  std::shared_ptr<PinSync> sync = pin_sync_;
  std::shared_ptr<const EpochDescriptor> desc(
      raw, [sync](const EpochDescriptor* d) {
        delete d;
        MutexLock lk(sync->mu);
        sync->cv.NotifyAll();
      });
  std::shared_ptr<const EpochDescriptor> old =
      std::atomic_exchange(&current_, desc);
  if (old != nullptr) {
    MutexLock lk(pin_sync_->mu);
    retired_.emplace_back(old);
    // Keep the GC list from accumulating dead weak_ptrs on the
    // direct-apply path (which installs a descriptor per message and
    // never runs the backpressure prune).
    if (retired_.size() > 64) LivePinnedLocked();
  }
}

void ShardedQueryServer::RepublishLocked() {
  std::vector<std::shared_ptr<const EpochSnapshot>> snaps;
  snaps.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    Shard& sh = *shards_[s];
    MutexLock lock(sh.mu);
    snaps.push_back(sh.builder.Freeze());
  }
  InstallDescriptorLocked(std::move(snaps));
}

void ShardedQueryServer::PublishEpoch(
    UpdateSummary summary,
    std::vector<std::shared_ptr<const EpochSnapshot>> snaps,
    std::vector<CertifiedPartition> partition_refresh) {
  AUTHDB_CHECK(snaps.size() == shards_.size());
  MutexLock pub(publish_mu_);
  if (options_.max_pinned_epochs > 0) {
    // Backpressure against stalled readers: wait until fewer than the
    // budget of superseded epochs is still pinned. publish_mu_ stays held
    // — the block is meant to propagate through the update stream's apply
    // queues to the producer. Readers never take either lock, so they
    // drain (and notify through the descriptor deleter) independently.
    MutexLock lk(pin_sync_->mu);
    while (LivePinnedLocked() >= options_.max_pinned_epochs)
      pin_sync_->cv.Wait(pin_sync_->mu);
  }
  // Monotonicity guard: if a direct-path publication (ApplyUpdate /
  // SetJoinPartitions / AddSummary) raced this barrier and already
  // published newer builder state for some shard, keep the newer version
  // — readers must never watch a record regress to an older generation
  // at a higher epoch. (Mixing the direct path into a live streaming
  // period still weakens the stamp's exactness for that period — the
  // leaked updates ride the earlier epoch — so keep direct publications
  // to bootstrap/quiesced phases; see the class comment.)
  {
    std::shared_ptr<const EpochDescriptor> cur = std::atomic_load(&current_);
    for (size_t s = 0; s < snaps.size() && s < cur->shards.size(); ++s) {
      if (cur->shards[s]->generation() > snaps[s]->generation())
        snaps[s] = cur->shards[s];
    }
  }
  if (!partition_refresh.empty()) {
    partitions_ = std::make_shared<const std::vector<CertifiedPartition>>(
        std::move(partition_refresh));
  }
  tracker_.Publish(summary.seq, summary.publish_ts);
  auto sums = std::make_shared<std::deque<UpdateSummary>>(*summaries_);
  sums->push_back(std::move(summary));
  while (sums->size() > options_.shard.summaries_retained) sums->pop_front();
  summaries_ = std::move(sums);
  InstallDescriptorLocked(std::move(snaps));
}

void ShardedQueryServer::AddSummary(UpdateSummary summary) {
  std::vector<std::shared_ptr<const EpochSnapshot>> snaps;
  snaps.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) snaps.push_back(FreezeShard(s));
  PublishEpoch(std::move(summary), std::move(snaps), {});
}

void ShardedQueryServer::SetJoinPartitions(
    std::vector<CertifiedPartition> partitions) {
  MutexLock pub(publish_mu_);
  partitions_ = std::make_shared<const std::vector<CertifiedPartition>>(
      std::move(partitions));
  RepublishLocked();
}

std::shared_ptr<const EpochDescriptor> ShardedQueryServer::PinCurrentEpoch()
    const {
  return std::atomic_load(&current_);
}

size_t ShardedQueryServer::pinned_epochs() const {
  // Deliberately NOT publish_mu_: this diagnostic must answer while a
  // backpressured PublishEpoch holds that lock — observing the stall is
  // the whole point.
  MutexLock lk(pin_sync_->mu);
  return LivePinnedLocked();
}

uint64_t ShardedQueryServer::size() const {
  return PinCurrentEpoch()->total_size;
}

void ShardedQueryServer::EnableSigCache(SigCache::RefreshMode mode,
                                        size_t max_pairs) {
  // Not synchronized against in-flight reads: enable before serving (or
  // during a quiesced phase), like the rest of the configuration surface.
  std::shared_ptr<const EpochDescriptor> desc = PinCurrentEpoch();
  for (size_t s = 0; s < shards_.size(); ++s) {
    uint64_t n = desc->shards[s]->size();
    if (n < 4) continue;  // nothing worth caching
    uint64_t n2 = 1;
    while (n2 * 2 <= n) n2 *= 2;
    auto plan =
        SigCachePlanner::Plan(n2, CardinalityDist::Harmonic(n2), max_pairs);
    // The member LeafProvider must never be consulted on this path —
    // every aggregate goes through the generation-tagged overload with a
    // per-call provider over the reader's pinned snapshot. A stub that
    // silently returned empty signatures would turn an accidental
    // WarmAll/untagged call into unverifiable answers; fail loudly
    // instead.
    auto cache = std::make_unique<SigCache>(
        ctx_, n2, mode, [](size_t) -> BasSignature {
          AUTHDB_CHECK(false &&
                       "sharded SigCache used without a snapshot provider");
          return BasSignature{};
        });
    cache->PinPlan(plan.chosen);
    shards_[s]->cache_positions = static_cast<size_t>(n2);
    shards_[s]->sigcache = std::move(cache);
  }
}

// ---------------------------------------------------------------------------
// Read path: one pinned descriptor per answer, wait-free under ingest

const SnapshotItem* ShardedQueryServer::GlobalPredecessor(
    const EpochDescriptor& desc, int64_t key) const {
  // The owner shard may hold the predecessor; otherwise it is the greatest
  // record of the nearest non-empty shard to the left.
  for (size_t s = router_.ShardOf(key) + 1; s-- > 0;) {
    const SnapshotItem* item = desc.shards[s]->Predecessor(key);
    if (item != nullptr) return item;
  }
  return nullptr;
}

const SnapshotItem* ShardedQueryServer::GlobalSuccessor(
    const EpochDescriptor& desc, int64_t key) const {
  for (size_t s = router_.ShardOf(key); s < shards_.size(); ++s) {
    const SnapshotItem* item = desc.shards[s]->Successor(key);
    if (item != nullptr) return item;
  }
  return nullptr;
}

BasSignature ShardedQueryServer::AggregateRange(
    size_t shard, const EpochSnapshot& snap, size_t rank_lo, size_t rank_hi,
    SigCache::AggStats* stats) const {
  SigCache* cache = shards_[shard]->sigcache.get();
  if (cache != nullptr && snap.size() >= shards_[shard]->cache_positions) {
    // Generation-tagged windows: reused only for readers pinned to the
    // same chain generation, recomputed from this snapshot otherwise —
    // cached aggregates never mix generations. (Bypassed when the shard
    // shrank below the planned position count, where node coverage could
    // reach past the snapshot.)
    return cache->RangeAggregate(
        rank_lo, rank_hi, snap.generation(),
        [&snap](size_t pos) { return snap.ItemAt(pos).sig; }, stats);
  }
  std::vector<ECPoint> pts;
  pts.reserve(rank_hi - rank_lo + 1);
  snap.ForEachItem(rank_lo, rank_hi, [&pts](const SnapshotItem& item) {
    pts.push_back(item.sig.point);
  });
  if (stats != nullptr) {
    stats->point_adds += pts.empty() ? 0 : pts.size() - 1;
    stats->leaf_fetches += pts.size();
  }
  return BasSignature{ctx_->curve().Sum(pts)};
}

ShardedQueryServer::SubSelect ShardedQueryServer::ScanShard(
    const EpochDescriptor& desc, size_t shard, int64_t lo, int64_t hi,
    SigCache::AggStats* stats) const {
  SubSelect out;
  out.left_key = kChainMinusInf;
  out.right_key = kChainPlusInf;
  const EpochSnapshot& snap = *desc.shards[shard];
  if (snap.size() == 0) return out;
  size_t lo_r = snap.LowerBound(lo);
  size_t hi_r = snap.UpperBound(hi);
  if (lo_r == hi_r) return out;  // no hits in this shard
  out.nonempty = true;
  out.items.reserve(hi_r - lo_r);
  snap.ForEachItem(lo_r, hi_r - 1, [&out](const SnapshotItem& item) {
    out.items.push_back(&item);
  });
  if (lo_r > 0) out.left_key = snap.ItemAt(lo_r - 1).key();
  if (hi_r < snap.size()) out.right_key = snap.ItemAt(hi_r).key();
  out.agg = AggregateRange(shard, snap, lo_r, hi_r - 1, stats);
  return out;
}

Result<SelectionAnswer> ShardedQueryServer::SelectOnDescriptor(
    const EpochDescriptor& desc, int64_t lo, int64_t hi,
    SelectStats* stats) const {
  const std::vector<ShardRouter::SubRange> cover = router_.Cover(lo, hi);
  std::vector<SubSelect> subs(cover.size());
  std::vector<SigCache::AggStats> sub_stats(cover.size());
  {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(cover.size());
    for (size_t i = 0; i < cover.size(); ++i) {
      tasks.emplace_back([this, &desc, &cover, &subs, &sub_stats, i] {
        const ShardRouter::SubRange& sr = cover[i];
        subs[i] = ScanShard(desc, sr.shard, sr.lo, sr.hi, &sub_stats[i]);
      });
    }
    pool_.RunAll(std::move(tasks));
  }
  if (stats != nullptr) {
    stats->shards_queried = cover.size();
    for (const SigCache::AggStats& s : sub_stats) {
      stats->agg.point_adds += s.point_adds;
      stats->agg.leaf_fetches += s.leaf_fetches;
      stats->agg.cache_hits += s.cache_hits;
      stats->agg.refreshes += s.refreshes;
    }
  }

  // Stitch: concatenate the per-shard results (shard order == key order),
  // sum the per-shard aggregates, keep the outermost boundaries. Empty
  // sub-answers contribute nothing — their shard-local proofs are replaced
  // by global boundary probes where needed.
  SelectionAnswer out;
  std::vector<BasSignature> agg_parts;
  uint64_t oldest_ts = ~uint64_t{0};
  bool any = false;
  for (size_t i = 0; i < cover.size(); ++i) {
    SubSelect& sub = subs[i];
    if (!sub.nonempty) continue;
    if (!any) {
      any = true;
      out.left_key = sub.left_key;
    }
    out.right_key = sub.right_key;
    for (const SnapshotItem* item : sub.items) {
      out.records.push_back(item->record);
      oldest_ts = std::min(oldest_ts, item->record.ts);
    }
    agg_parts.push_back(std::move(sub.agg));
  }
  if (stats != nullptr) stats->shards_nonempty = agg_parts.size();

  if (!any) {
    // Empty result across every covered shard: prove it with the global
    // boundary record, exactly as a single server would.
    const SnapshotItem* pred = GlobalPredecessor(desc, lo);
    const SnapshotItem* succ = GlobalSuccessor(desc, hi);
    if (pred == nullptr && succ == nullptr)
      return Status::NotFound("empty relation");
    if (pred != nullptr) {
      out.proof_record = pred->record;
      out.agg_sig = pred->sig;
      const SnapshotItem* pp = GlobalPredecessor(desc, pred->key());
      out.left_key = pp != nullptr ? pp->key() : kChainMinusInf;
      out.right_key = succ != nullptr ? succ->key() : kChainPlusInf;
      oldest_ts = pred->record.ts;
    } else {
      out.proof_record = succ->record;
      out.agg_sig = succ->sig;
      out.left_key = kChainMinusInf;  // no key below lo, hence none below
      const SnapshotItem* ss = GlobalSuccessor(desc, succ->key());
      out.right_key = ss != nullptr ? ss->key() : kChainPlusInf;
      oldest_ts = succ->record.ts;
    }
  } else {
    // A finite shard-local boundary is already the global chain neighbor
    // (contiguous partition); a sentinel means the neighbor lives on an
    // adjacent shard the sub-scan never saw — resolved from the SAME
    // pinned snapshots, so the probe can never disagree with the scan.
    if (out.left_key == kChainMinusInf) {
      const SnapshotItem* pred = GlobalPredecessor(desc, lo);
      if (pred != nullptr) out.left_key = pred->key();
    }
    if (out.right_key == kChainPlusInf) {
      const SnapshotItem* succ = GlobalSuccessor(desc, hi);
      if (succ != nullptr) out.right_key = succ->key();
    }
    out.agg_sig = ctx_->Aggregate(agg_parts);
  }

  AttachSummaries(desc, oldest_ts, &out.summaries);
  out.served_epoch = desc.epoch;
  return out;
}

Result<SelectionAnswer> ShardedQueryServer::Select(int64_t lo, int64_t hi,
                                                   SelectStats* stats) const {
  if (stats != nullptr) *stats = SelectStats{};  // even on early error returns
  if (lo > hi) return Status::InvalidArgument("lo > hi");
  if (lo == kChainMinusInf || hi == kChainPlusInf)
    return Status::InvalidArgument("range touches chain sentinels");
  std::shared_ptr<const EpochDescriptor> desc = PinCurrentEpoch();
  if (stats != nullptr) stats->epoch = desc->epoch;
  return SelectOnDescriptor(*desc, lo, hi, stats);
}

void ShardedQueryServer::AttachSummaries(const EpochDescriptor& desc,
                                         uint64_t oldest_ts,
                                         std::vector<UpdateSummary>* out) {
  if (desc.summaries == nullptr) return;
  for (const UpdateSummary& s : *desc.summaries) {
    if (s.publish_ts >= oldest_ts) out->push_back(s);
  }
}

Result<QueryAnswer> ShardedQueryServer::ProjectOnDescriptor(
    const EpochDescriptor& desc, const Query& query,
    SelectStats* stats) const {
  const std::vector<uint32_t> attrs =
      EffectiveProjectionAttrs(query.attr_indices);
  const std::vector<ShardRouter::SubRange> cover =
      router_.Cover(query.lo, query.hi);

  struct SubProject {
    Status error = Status::OK();
    bool nonempty = false;
    std::vector<ProjectedTuple> tuples;
    std::vector<Digest160> digests;
    int64_t left_key = kChainMinusInf;
    int64_t right_key = kChainPlusInf;
    BasSignature agg;
    uint64_t oldest_ts = ~uint64_t{0};
  };
  std::vector<SubProject> subs(cover.size());
  {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(cover.size());
    for (size_t i = 0; i < cover.size(); ++i) {
      tasks.emplace_back([this, &desc, &cover, &subs, &attrs, i] {
        const ShardRouter::SubRange& sr = cover[i];
        SubProject& sub = subs[i];
        const EpochSnapshot& snap = *desc.shards[sr.shard];
        if (snap.size() == 0) return;
        size_t lo_r = snap.LowerBound(sr.lo);
        size_t hi_r = snap.UpperBound(sr.hi);
        if (lo_r == hi_r) return;
        sub.nonempty = true;
        if (lo_r > 0) sub.left_key = snap.ItemAt(lo_r - 1).key();
        if (hi_r < snap.size()) sub.right_key = snap.ItemAt(hi_r).key();
        std::vector<BasSignature> parts;
        snap.ForEachItem(lo_r, hi_r - 1, [&](const SnapshotItem& item) {
          if (!sub.error.ok()) return;  // already failed: skip the rest
          const Record& rec = item.record;
          if (item.attr_sigs.empty()) {
            sub.error = Status::InvalidArgument(
                "projection unavailable: no attribute signatures for key " +
                std::to_string(rec.key()));
            return;
          }
          ProjectedTuple tuple;
          tuple.rid = rec.rid;
          tuple.ts = rec.ts;
          for (uint32_t a : attrs) {
            if (a >= rec.attrs.size() || a >= item.attr_sigs.size()) {
              sub.error = Status::InvalidArgument(
                  "projected attribute out of range");
              return;
            }
            tuple.attr_indices.push_back(a);
            tuple.values.push_back(rec.attrs[a]);
            parts.push_back(item.attr_sigs[a]);
          }
          sub.tuples.push_back(std::move(tuple));
          sub.digests.push_back(rec.Digest());
          parts.push_back(item.sig);  // chain signature (completeness spine)
          sub.oldest_ts = std::min(sub.oldest_ts, rec.ts);
        });
        if (!sub.error.ok()) return;
        sub.agg = ctx_->Aggregate(parts);
      });
    }
    pool_.RunAll(std::move(tasks));
  }
  if (stats != nullptr) stats->shards_queried = cover.size();

  QueryAnswer out;
  out.kind = QueryKind::kProject;
  ProjectedRangeAnswer& proj = out.projection;
  std::vector<BasSignature> agg_parts;
  uint64_t oldest_ts = ~uint64_t{0};
  bool any = false;
  for (SubProject& sub : subs) {
    if (!sub.error.ok()) return sub.error;
    if (!sub.nonempty) continue;
    if (!any) {
      any = true;
      proj.left_key = sub.left_key;
    }
    proj.right_key = sub.right_key;
    // Tuples carry per-attribute value and index vectors — splice them by
    // move; the per-shard sub-results are dead after this stitch.
    proj.tuples.insert(proj.tuples.end(),
                       std::make_move_iterator(sub.tuples.begin()),
                       std::make_move_iterator(sub.tuples.end()));
    proj.digests.insert(proj.digests.end(), sub.digests.begin(),
                        sub.digests.end());
    agg_parts.push_back(std::move(sub.agg));
    oldest_ts = std::min(oldest_ts, sub.oldest_ts);
  }
  if (stats != nullptr) stats->shards_nonempty = agg_parts.size();

  if (!any) {
    // Empty result: one global boundary witness proves it, digest-only.
    const SnapshotItem* pred = GlobalPredecessor(desc, query.lo);
    const SnapshotItem* succ = GlobalSuccessor(desc, query.hi);
    if (pred == nullptr && succ == nullptr)
      return Status::NotFound("empty relation");
    const SnapshotItem* witness = pred != nullptr ? pred : succ;
    proj.proof = DigestWitness{witness->key(), witness->record.rid,
                               witness->record.ts, witness->record.Digest()};
    proj.agg_sig = witness->sig;
    if (pred != nullptr) {
      const SnapshotItem* pp = GlobalPredecessor(desc, pred->key());
      proj.left_key = pp != nullptr ? pp->key() : kChainMinusInf;
      proj.right_key = succ != nullptr ? succ->key() : kChainPlusInf;
    } else {
      proj.left_key = kChainMinusInf;  // no key below lo, hence none below
      const SnapshotItem* ss = GlobalSuccessor(desc, succ->key());
      proj.right_key = ss != nullptr ? ss->key() : kChainPlusInf;
    }
    oldest_ts = witness->record.ts;
  } else {
    if (proj.left_key == kChainMinusInf) {
      const SnapshotItem* pred = GlobalPredecessor(desc, query.lo);
      if (pred != nullptr) proj.left_key = pred->key();
    }
    if (proj.right_key == kChainPlusInf) {
      const SnapshotItem* succ = GlobalSuccessor(desc, query.hi);
      if (succ != nullptr) proj.right_key = succ->key();
    }
    proj.agg_sig = ctx_->Aggregate(agg_parts);
  }

  AttachSummaries(desc, oldest_ts, &out.summaries);
  out.served_epoch = desc.epoch;
  return out;
}

Result<QueryAnswer> ShardedQueryServer::JoinOnDescriptor(
    const EpochDescriptor& desc, const std::vector<int64_t>& values,
    JoinMethod method, SelectStats* stats) const {
  static const std::vector<CertifiedPartition> kNoPartitions;
  const std::vector<CertifiedPartition>& partitions =
      desc.partitions != nullptr ? *desc.partitions : kNoPartitions;
  QueryAnswer out;
  out.kind = QueryKind::kJoin;
  JoinAnswer& ans = out.join;
  ans.method = method;

  std::set<uint32_t> used_partitions;
  // Chain signatures included in the aggregate, deduplicated by composite
  // key across the whole answer (a record may serve several proofs). With
  // every scan and probe reading the same pinned snapshots, the dedup can
  // never mix two chain generations of one record — the property the old
  // seqlock validation existed to defend.
  std::set<int64_t> included_keys;
  std::vector<BasSignature> parts;
  uint64_t oldest_ts = ~uint64_t{0};
  auto include_item = [&](const SnapshotItem& item) {
    if (included_keys.insert(item.key()).second) parts.push_back(item.sig);
    oldest_ts = std::min(oldest_ts, item.record.ts);
  };

  std::vector<bool> touched(shards_.size(), false);
  for (int64_t a : values) {
    const int64_t clo = JoinCompositeKey(a, 0);
    const int64_t chi = JoinCompositeKey(a, kJoinMaxDup);
    const std::vector<ShardRouter::SubRange> cover = router_.Cover(clo, chi);
    // Per-value scan of the covering shards; the edge sub-scans also
    // report the shard-local boundary items (the global chain neighbors
    // when present).
    std::vector<const SnapshotItem*> items;
    const SnapshotItem* left_b = nullptr;
    const SnapshotItem* right_b = nullptr;
    for (size_t i = 0; i < cover.size(); ++i) {
      const ShardRouter::SubRange& sr = cover[i];
      touched[sr.shard] = true;
      const EpochSnapshot& snap = *desc.shards[sr.shard];
      size_t lo_r = snap.LowerBound(sr.lo);
      size_t hi_r = snap.UpperBound(sr.hi);
      if (i == 0 && lo_r > 0) left_b = &snap.ItemAt(lo_r - 1);
      if (i + 1 == cover.size() && hi_r < snap.size())
        right_b = &snap.ItemAt(hi_r);
      if (lo_r < hi_r) {
        snap.ForEachItem(lo_r, hi_r - 1, [&items](const SnapshotItem& item) {
          items.push_back(&item);
        });
      }
    }

    if (!items.empty()) {
      // Match group: stitch its boundary keys across seams exactly like
      // selection boundaries — a shard-local boundary is already the
      // global neighbor; a sentinel means it lives on another shard.
      JoinMatch match;
      match.a_value = a;
      if (left_b != nullptr) {
        match.left_key = left_b->key();
      } else {
        const SnapshotItem* pred = GlobalPredecessor(desc, clo);
        match.left_key = pred != nullptr ? pred->key() : kChainMinusInf;
      }
      if (right_b != nullptr) {
        match.right_key = right_b->key();
      } else {
        const SnapshotItem* succ = GlobalSuccessor(desc, chi);
        match.right_key = succ != nullptr ? succ->key() : kChainPlusInf;
      }
      for (const SnapshotItem* item : items) {
        match.s_records.push_back(item->record);
        include_item(*item);
      }
      ans.matches.push_back(std::move(match));
      continue;
    }

    bool need_boundary = true;
    if (method == JoinMethod::kBloomFilter) {
      const CertifiedPartition* part = FindCoveringPartition(partitions, a);
      if (part != nullptr) {
        used_partitions.insert(part->idx);
        if (!part->filter.MayContainInt64(a)) {
          ans.negative_probes.push_back({a, part->idx});
          need_boundary = false;
        }
        // else: false positive — fall back to the boundary proof below.
      }
    }
    if (need_boundary) {
      // Absence witness adjacent to the gap, possibly on another shard;
      // its own chain neighbors stitch across seams via global probes
      // against the same pinned snapshots.
      const SnapshotItem* witness = left_b;
      if (witness == nullptr) witness = GlobalPredecessor(desc, clo);
      if (witness == nullptr) witness = right_b;
      if (witness == nullptr) witness = GlobalSuccessor(desc, chi);
      if (witness == nullptr) return Status::NotFound("S is empty");
      AbsenceProof proof;
      proof.a_value = a;
      proof.rec_key = witness->key();
      proof.rec_rid = witness->record.rid;
      proof.rec_ts = witness->record.ts;
      proof.rec_digest = witness->record.Digest();
      const SnapshotItem* wl = GlobalPredecessor(desc, witness->key());
      const SnapshotItem* wr = GlobalSuccessor(desc, witness->key());
      proof.left_key = wl != nullptr ? wl->key() : kChainMinusInf;
      proof.right_key = wr != nullptr ? wr->key() : kChainPlusInf;
      include_item(*witness);
      ans.absence_proofs.push_back(std::move(proof));
    }
  }

  for (uint32_t idx : used_partitions) {
    for (const CertifiedPartition& p : partitions) {
      if (p.idx == idx) {
        ans.partitions.push_back(p);
        parts.push_back(p.sig);
        break;
      }
    }
  }
  ans.agg_sig = ctx_->Aggregate(parts);

  if (stats != nullptr) {
    for (size_t s = 0; s < touched.size(); ++s) {
      if (touched[s]) ++stats->shards_queried;
    }
  }
  AttachSummaries(desc, oldest_ts, &out.summaries);
  out.served_epoch = desc.epoch;
  return out;
}

Result<QueryAnswer> ShardedQueryServer::Execute(const Query& query,
                                                SelectStats* stats) const {
  switch (query.kind) {
    case QueryKind::kSelect: {
      QueryAnswer ans;
      ans.kind = QueryKind::kSelect;
      AUTHDB_ASSIGN_OR_RETURN(ans.selection,
                              Select(query.lo, query.hi, stats));
      ans.served_epoch = ans.selection.served_epoch;
      return ans;
    }
    case QueryKind::kProject: {
      if (stats != nullptr) *stats = SelectStats{};
      if (query.lo > query.hi) return Status::InvalidArgument("lo > hi");
      if (query.lo == kChainMinusInf || query.hi == kChainPlusInf)
        return Status::InvalidArgument("range touches chain sentinels");
      std::shared_ptr<const EpochDescriptor> desc = PinCurrentEpoch();
      if (stats != nullptr) stats->epoch = desc->epoch;
      return ProjectOnDescriptor(*desc, query, stats);
    }
    case QueryKind::kJoin: {
      if (stats != nullptr) *stats = SelectStats{};
      if (query.join_values.empty())
        return Status::InvalidArgument("join without probe values");
      std::vector<int64_t> values = query.join_values;
      std::sort(values.begin(), values.end());
      values.erase(std::unique(values.begin(), values.end()), values.end());
      for (int64_t a : values) {
        if (!JoinBValueInDomain(a))
          return Status::InvalidArgument("join probe value outside B domain");
      }
      std::shared_ptr<const EpochDescriptor> desc = PinCurrentEpoch();
      if (stats != nullptr) stats->epoch = desc->epoch;
      return JoinOnDescriptor(*desc, values, query.join_method, stats);
    }
  }
  return Status::InvalidArgument("unknown query kind");
}

}  // namespace authdb
