#include "server/sharded_query_server.h"

#include <algorithm>
#include <functional>
#include <optional>
#include <set>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "core/chain.h"

namespace authdb {

ShardedQueryServer::ShardedQueryServer(std::shared_ptr<const BasContext> ctx,
                                       ShardRouter router,
                                       const Options& options)
    : ctx_(std::move(ctx)),
      router_(std::move(router)),
      options_(options),
      pool_(options.worker_threads) {
  shards_.reserve(router_.shard_count());
  for (size_t i = 0; i < router_.shard_count(); ++i) {
    auto shard = std::make_unique<Shard>();
    shard->qs = std::make_unique<QueryServer>(ctx_, options_.shard);
    shards_.push_back(std::move(shard));
  }
}

uint64_t ShardedQueryServer::size() const {
  uint64_t n = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    n += s->qs->size();
  }
  return n;
}

std::vector<ShardedQueryServer::ShardPiece> ShardedQueryServer::SplitByOwner(
    const SignedRecordUpdate& msg) const {
  // Split the message by key ownership: the primary payload to its owner,
  // every re-certified record to the shard holding its key. An insert or
  // delete near a shard seam re-chains a neighbor stored on the adjacent
  // shard, so the split is what keeps each shard's signatures current.
  int64_t primary_key = msg.record ? msg.record->record.key() : msg.key;
  size_t owner = router_.ShardOf(primary_key);

  std::vector<SignedRecordUpdate> per_shard(shards_.size());
  std::vector<bool> active(shards_.size(), false);
  if (msg.record || msg.kind != SignedRecordUpdate::Kind::kRecertify) {
    per_shard[owner].kind = msg.kind;
    per_shard[owner].key = msg.key;
    per_shard[owner].record = msg.record;
    active[owner] = true;
  }
  for (const CertifiedRecord& cr : msg.recertified) {
    size_t s = router_.ShardOf(cr.record.key());
    if (!active[s]) {
      per_shard[s].kind = SignedRecordUpdate::Kind::kRecertify;
      active[s] = true;
    }
    per_shard[s].recertified.push_back(cr);
  }

  std::vector<ShardPiece> out;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (active[s]) out.push_back(ShardPiece{s, std::move(per_shard[s])});
  }
  return out;
}

Status ShardedQueryServer::ApplyToShard(size_t shard,
                                        const SignedRecordUpdate& piece) {
  AUTHDB_CHECK(shard < shards_.size());
  std::lock_guard<std::mutex> lock(shards_[shard]->mu);
  // Every apply — even single-shard — bumps the owning shard's apply
  // seqlock (odd while in flight): a single-shard insert/delete cannot
  // tear a *stitch*, but it can tear a read that later probes this shard
  // for a global boundary after its own sub-read lock was released.
  shards_[shard]->apply_seq.fetch_add(1, std::memory_order_acq_rel);
  Status st = shards_[shard]->qs->ApplyUpdate(piece);
  shards_[shard]->apply_seq.fetch_add(1, std::memory_order_acq_rel);
  return st;
}

Status ShardedQueryServer::ApplyPieces(const std::vector<ShardPiece>& pieces) {
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(pieces.size());
  for (const ShardPiece& sp : pieces) {
    AUTHDB_CHECK(sp.shard < shards_.size());
    AUTHDB_CHECK(locks.empty() || pieces[locks.size() - 1].shard < sp.shard);
    locks.emplace_back(shards_[sp.shard]->mu);
  }
  // Writer half of the seqlocks, bumped under the full lockset so a
  // reader's sub-read of any involved shard orders against the bumps
  // through that shard's mutex. A joint apply marks each involved
  // shard's seam counter (odd while in flight) — stitched readers
  // validate only the shards they covered, so applies on disjoint shards
  // never invalidate them — and every apply marks each touched shard's
  // apply counter, which readers validate for the shards their boundary
  // probes examined (a probe can be torn by *any* apply to an examined
  // shard, including a single-shard one re-chaining next to the probed
  // boundary; applies elsewhere cannot affect a record the read cited).
  const bool joint = pieces.size() > 1;
  for (const ShardPiece& sp : pieces) {
    if (joint)
      shards_[sp.shard]->seam_seq.fetch_add(1, std::memory_order_acq_rel);
    shards_[sp.shard]->apply_seq.fetch_add(1, std::memory_order_acq_rel);
  }
  Status st = Status::OK();
  for (const ShardPiece& sp : pieces) {
    st = shards_[sp.shard]->qs->ApplyUpdate(sp.piece);
    if (!st.ok()) break;
  }
  for (const ShardPiece& sp : pieces) {
    shards_[sp.shard]->apply_seq.fetch_add(1, std::memory_order_acq_rel);
    if (joint)
      shards_[sp.shard]->seam_seq.fetch_add(1, std::memory_order_acq_rel);
  }
  return st;
}

Status ShardedQueryServer::ApplyUpdate(const SignedRecordUpdate& msg) {
  return ApplyPieces(SplitByOwner(msg));
}

void ShardedQueryServer::AddSummary(UpdateSummary summary) {
  // Epoch first, deque second: a concurrent Select may then stamp an epoch
  // one publication ahead of the summaries it attaches, which is sound
  // (the barrier contract says the epoch's updates are already applied),
  // whereas the opposite order could transiently under-claim and make an
  // up-to-date client reject an honest answer.
  tracker_.Publish(summary.seq, summary.publish_ts);
  std::lock_guard<std::mutex> lock(summaries_mu_);
  summaries_.push_back(std::move(summary));
  while (summaries_.size() > options_.shard.summaries_retained)
    summaries_.pop_front();
}

std::optional<AuthTable::Item> ShardedQueryServer::GlobalPredecessor(
    int64_t key, bool locked, std::vector<bool>* visited) const {
  // The owner shard may hold the predecessor; otherwise it is the greatest
  // record of the nearest non-empty shard to the left.
  for (size_t s = router_.ShardOf(key) + 1; s-- > 0;) {
    if (visited != nullptr) (*visited)[s] = true;
    std::unique_lock<std::mutex> lock(shards_[s]->mu, std::defer_lock);
    if (!locked) lock.lock();
    auto item = shards_[s]->qs->PredecessorItem(key);
    if (item) return item;
  }
  return std::nullopt;
}

std::optional<AuthTable::Item> ShardedQueryServer::GlobalSuccessor(
    int64_t key, bool locked, std::vector<bool>* visited) const {
  for (size_t s = router_.ShardOf(key); s < shards_.size(); ++s) {
    if (visited != nullptr) (*visited)[s] = true;
    std::unique_lock<std::mutex> lock(shards_[s]->mu, std::defer_lock);
    if (!locked) lock.lock();
    auto item = shards_[s]->qs->SuccessorItem(key);
    if (item) return item;
  }
  return std::nullopt;
}

template <typename T, typename AttemptFn>
Result<T> ShardedQueryServer::RunValidated(
    const std::vector<size_t>& seam_shards, AttemptFn&& attempt) const {
  // Reader half of the seqlocks. Sub-reads take their shard locks
  // independently, so without validation a cross-seam read could see one
  // shard before a seam-re-chaining joint apply and the adjacent shard
  // after it — a stitch mixing old and new chain certifications that an
  // honest verifier must reject; a read that consulted boundary probes
  // (or, for joins, re-took a shard lock for a later probe value) can
  // likewise be torn by any apply to a shard it examined after the
  // earlier locks were released. So: snapshot, fan out, and keep the
  // result only if the relevant counters are unchanged — each seam
  // shard's seam counter for a stitch, each visited shard's apply counter
  // for out-of-lock re-reads. Applies to shards the read never examined
  // cannot affect a record it cited and never invalidate it. A read that
  // took a single shard lock and never visited anything is atomic by
  // construction and returns without validating — the common
  // interior-range query shape keeps its per-shard locality even under
  // churn. At least one optimistic pass always runs; the retry budget
  // only meters restitches.
  constexpr int kOddWaitSpins = 256;  // polls of an in-flight joint apply
  std::vector<uint64_t> seam_snap(seam_shards.size());
  std::vector<uint64_t> apply_snap(shards_.size());
  std::vector<bool> visited(shards_.size());
  const int budget = std::max(1, options_.seam_retry_limit);
  for (int round = 0; round < budget; ++round) {
    // A seam shard with an odd seam counter is involved in a joint apply
    // mid-critical-section — not yet a torn window, so waiting it out is
    // not charged against the retry budget. Parking on that shard's mutex
    // piggybacks on the writer's lockset: the lock is held for exactly
    // the apply's duration.
    for (int spin = 0; spin < kOddWaitSpins; ++spin) {
      size_t odd = seam_shards.size();
      for (size_t i = 0; i < seam_shards.size(); ++i) {
        seam_snap[i] =
            shards_[seam_shards[i]]->seam_seq.load(std::memory_order_acquire);
        if (seam_snap[i] & 1) odd = i;
      }
      if (odd == seam_shards.size()) break;
      { std::lock_guard<std::mutex> park(shards_[seam_shards[odd]]->mu); }
      std::this_thread::yield();
    }
    // Attempts decide at runtime which shards they examine, so snapshot
    // every shard's apply counter upfront (cheap: one relaxed-size load
    // per shard) and validate only the ones the attempt actually marked.
    for (size_t s = 0; s < shards_.size(); ++s)
      apply_snap[s] = shards_[s]->apply_seq.load(std::memory_order_acquire);
    std::fill(visited.begin(), visited.end(), false);
    Result<T> out = attempt(/*exclusive=*/false, &visited);
    bool any_probe = false;
    for (size_t s = 0; s < shards_.size(); ++s) any_probe |= visited[s];
    if (seam_shards.size() <= 1 && !any_probe) return out;
    // Equality alone validates in either parity: the counters are
    // monotonic, so an odd-but-unchanged value means one writer held its
    // lockset across our whole window — our reads cannot have touched
    // any involved shard (those locks were held throughout), hence the
    // result is consistent.
    bool valid = true;
    for (size_t i = 0; i < seam_shards.size() && valid; ++i) {
      valid = shards_[seam_shards[i]]->seam_seq.load(
                  std::memory_order_acquire) == seam_snap[i];
    }
    for (size_t s = 0; s < shards_.size() && valid; ++s) {
      if (visited[s]) {
        valid = shards_[s]->apply_seq.load(std::memory_order_acquire) ==
                apply_snap[s];
      }
    }
    if (valid) return out;
    seam_restitches_.fetch_add(1, std::memory_order_relaxed);
  }
  // Sustained cross-seam churn kept tearing the optimistic reads: fall
  // back to taking every shard lock (ascending — the ApplyPieces order,
  // so no deadlock) for one exclusive pass. Guaranteed progress.
  seam_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  std::vector<std::unique_lock<std::mutex>> all_locks;
  all_locks.reserve(shards_.size());
  for (const auto& s : shards_) all_locks.emplace_back(s->mu);
  return attempt(/*exclusive=*/true, nullptr);
}

Result<SelectionAnswer> ShardedQueryServer::Select(int64_t lo, int64_t hi,
                                                   SelectStats* stats) const {
  if (stats != nullptr) *stats = SelectStats{};  // even on early error returns
  if (lo > hi) return Status::InvalidArgument("lo > hi");
  if (lo == kChainMinusInf || hi == kChainPlusInf)
    return Status::InvalidArgument("range touches chain sentinels");
  const std::vector<ShardRouter::SubRange> cover = router_.Cover(lo, hi);
  std::vector<size_t> seam_shards;
  seam_shards.reserve(cover.size());
  for (const ShardRouter::SubRange& sr : cover) seam_shards.push_back(sr.shard);
  return RunValidated<SelectionAnswer>(
      seam_shards, [&](bool exclusive, std::vector<bool>* visited) {
        return SelectAttempt(lo, hi, cover, stats, exclusive, visited);
      });
}

Result<SelectionAnswer> ShardedQueryServer::SelectAttempt(
    int64_t lo, int64_t hi, const std::vector<ShardRouter::SubRange>& cover,
    SelectStats* stats, bool exclusive, std::vector<bool>* visited) const {
  if (stats != nullptr) *stats = SelectStats{};  // per-attempt counters

  // Snapshot the epoch *before* reading any shard: a summary publishing
  // while the fan-out runs then leaves the stamp under-claiming (answer
  // fresher than stamped — allowed) instead of over-claiming an epoch
  // whose updates this answer may predate.
  const uint64_t epoch_at_start = tracker_.current_epoch();

  std::vector<std::optional<Result<SelectionAnswer>>> subs(cover.size());
  std::vector<SigCache::AggStats> sub_stats(cover.size());

  if (exclusive) {
    // The caller holds every shard lock: read inline, never through the
    // pool. Handing work to the pool here could deadlock — its workers
    // may all be parked inside other readers' sub-read tasks, blocked on
    // the very locks this thread holds, so the handed-off tasks would
    // never be picked up while we wait on them.
    for (size_t i = 0; i < cover.size(); ++i) {
      const ShardRouter::SubRange& sr = cover[i];
      subs[i] = shards_[sr.shard]->qs->Select(sr.lo, sr.hi, &sub_stats[i]);
    }
  } else {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(cover.size());
    for (size_t i = 0; i < cover.size(); ++i) {
      tasks.emplace_back([this, &cover, &subs, &sub_stats, i] {
        const ShardRouter::SubRange& sr = cover[i];
        std::lock_guard<std::mutex> lock(shards_[sr.shard]->mu);
        subs[i] = shards_[sr.shard]->qs->Select(sr.lo, sr.hi, &sub_stats[i]);
      });
    }
    pool_.RunAll(std::move(tasks));
  }

  if (stats != nullptr) {
    stats->shards_queried = cover.size();
    for (const SigCache::AggStats& s : sub_stats) {
      stats->agg.point_adds += s.point_adds;
      stats->agg.leaf_fetches += s.leaf_fetches;
      stats->agg.cache_hits += s.cache_hits;
      stats->agg.refreshes += s.refreshes;
    }
  }

  // Stitch: concatenate the per-shard results (shard order == key order),
  // sum the per-shard aggregates, keep the outermost boundaries. Empty
  // sub-answers contribute nothing — their shard-local proofs are replaced
  // by global boundary probes where needed.
  SelectionAnswer out;
  std::vector<BasSignature> agg_parts;
  uint64_t oldest_ts = ~uint64_t{0};
  int first_nonempty = -1;
  for (size_t i = 0; i < cover.size(); ++i) {
    const Result<SelectionAnswer>& r = *subs[i];
    if (!r.ok()) {
      if (r.status().IsNotFound()) continue;  // shard holds no records
      return r.status();
    }
    const SelectionAnswer& sub = r.value();
    if (sub.records.empty()) continue;
    if (first_nonempty < 0) {
      first_nonempty = static_cast<int>(i);
      out.left_key = sub.left_key;
    }
    out.right_key = sub.right_key;
    out.records.insert(out.records.end(), sub.records.begin(),
                       sub.records.end());
    agg_parts.push_back(sub.agg_sig);
    for (const Record& rec : sub.records)
      oldest_ts = std::min(oldest_ts, rec.ts);
  }
  if (stats != nullptr) stats->shards_nonempty = agg_parts.size();

  if (first_nonempty < 0) {
    // Empty result across every covered shard: prove it with the global
    // boundary record, exactly as a single server would.
    auto pred = GlobalPredecessor(lo, exclusive, visited);
    auto succ = GlobalSuccessor(hi, exclusive, visited);
    if (!pred && !succ) return Status::NotFound("empty relation");
    if (pred) {
      out.proof_record = pred->record;
      out.agg_sig = pred->sig;
      auto pp = GlobalPredecessor(pred->record.key(), exclusive, visited);
      out.left_key = pp ? pp->record.key() : kChainMinusInf;
      out.right_key = succ ? succ->record.key() : kChainPlusInf;
      oldest_ts = pred->record.ts;
    } else {
      out.proof_record = succ->record;
      out.agg_sig = succ->sig;
      out.left_key = kChainMinusInf;  // no key below lo, hence none below succ
      auto ss = GlobalSuccessor(succ->record.key(), exclusive, visited);
      out.right_key = ss ? ss->record.key() : kChainPlusInf;
      oldest_ts = succ->record.ts;
    }
  } else {
    // A finite shard-local boundary is already the global chain neighbor
    // (contiguous partition); a sentinel means the neighbor lives on an
    // adjacent shard the sub-query never saw.
    if (out.left_key == kChainMinusInf) {
      auto pred = GlobalPredecessor(lo, exclusive, visited);
      if (pred) out.left_key = pred->record.key();
    }
    if (out.right_key == kChainPlusInf) {
      auto succ = GlobalSuccessor(hi, exclusive, visited);
      if (succ) out.right_key = succ->record.key();
    }
    out.agg_sig = ctx_->Aggregate(agg_parts);
  }

  // Freshness evidence: every summary published at/after the oldest result
  // certification (same rule as QueryServer::Select, held server-wide).
  {
    std::lock_guard<std::mutex> lock(summaries_mu_);
    for (const UpdateSummary& s : summaries_) {
      if (s.publish_ts >= oldest_ts) out.summaries.push_back(s);
    }
  }
  // The tracker is a running max, so the stamp is also correct when
  // summaries were delivered out of order.
  out.served_epoch = epoch_at_start;
  return out;
}

Result<QueryAnswer> ShardedQueryServer::ProjectAttempt(
    const Query& query, const std::vector<ShardRouter::SubRange>& cover,
    SelectStats* stats, bool exclusive, std::vector<bool>* visited) const {
  if (stats != nullptr) *stats = SelectStats{};  // per-attempt counters

  // Epoch snapshot before any shard read: under-claim, never over-claim
  // (same reasoning as SelectAttempt).
  const uint64_t epoch_at_start = tracker_.current_epoch();

  std::vector<std::optional<Result<QueryAnswer>>> subs(cover.size());
  if (exclusive) {
    for (size_t i = 0; i < cover.size(); ++i) {
      Query sub = query;
      sub.lo = cover[i].lo;
      sub.hi = cover[i].hi;
      subs[i] = shards_[cover[i].shard]->qs->Execute(sub);
    }
  } else {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(cover.size());
    for (size_t i = 0; i < cover.size(); ++i) {
      tasks.emplace_back([this, &query, &cover, &subs, i] {
        const ShardRouter::SubRange& sr = cover[i];
        Query sub = query;
        sub.lo = sr.lo;
        sub.hi = sr.hi;
        std::lock_guard<std::mutex> lock(shards_[sr.shard]->mu);
        subs[i] = shards_[sr.shard]->qs->Execute(sub);
      });
    }
    pool_.RunAll(std::move(tasks));
  }
  if (stats != nullptr) stats->shards_queried = cover.size();

  // Stitch exactly like a selection: concatenate tuples + digest spine
  // (shard order == key order), sum the per-shard aggregates, keep the
  // outermost boundaries, resolve sentinel boundaries by global probes.
  QueryAnswer out;
  out.kind = QueryKind::kProject;
  ProjectedRangeAnswer& proj = out.projection;
  std::vector<BasSignature> agg_parts;
  uint64_t oldest_ts = ~uint64_t{0};
  int first_nonempty = -1;
  for (size_t i = 0; i < cover.size(); ++i) {
    const Result<QueryAnswer>& r = *subs[i];
    if (!r.ok()) {
      if (r.status().IsNotFound()) continue;  // shard holds no records
      return r.status();
    }
    const ProjectedRangeAnswer& sub = r.value().projection;
    if (sub.tuples.empty()) continue;
    if (first_nonempty < 0) {
      first_nonempty = static_cast<int>(i);
      proj.left_key = sub.left_key;
    }
    proj.right_key = sub.right_key;
    proj.tuples.insert(proj.tuples.end(), sub.tuples.begin(),
                       sub.tuples.end());
    proj.digests.insert(proj.digests.end(), sub.digests.begin(),
                        sub.digests.end());
    agg_parts.push_back(sub.agg_sig);
    for (const ProjectedTuple& t : sub.tuples)
      oldest_ts = std::min(oldest_ts, t.ts);
  }
  if (stats != nullptr) stats->shards_nonempty = agg_parts.size();

  if (first_nonempty < 0) {
    // Empty result across every covered shard: one global boundary witness
    // proves it, digest-only.
    auto pred = GlobalPredecessor(query.lo, exclusive, visited);
    auto succ = GlobalSuccessor(query.hi, exclusive, visited);
    if (!pred && !succ) return Status::NotFound("empty relation");
    const AuthTable::Item& witness = pred ? *pred : *succ;
    proj.proof = DigestWitness{witness.record.key(), witness.record.rid,
                               witness.record.ts, witness.record.Digest()};
    proj.agg_sig = witness.sig;
    if (pred) {
      auto pp = GlobalPredecessor(pred->record.key(), exclusive, visited);
      proj.left_key = pp ? pp->record.key() : kChainMinusInf;
      proj.right_key = succ ? succ->record.key() : kChainPlusInf;
    } else {
      proj.left_key = kChainMinusInf;  // no key below lo, hence none below
      auto ss = GlobalSuccessor(succ->record.key(), exclusive, visited);
      proj.right_key = ss ? ss->record.key() : kChainPlusInf;
    }
    oldest_ts = witness.record.ts;
  } else {
    if (proj.left_key == kChainMinusInf) {
      auto pred = GlobalPredecessor(query.lo, exclusive, visited);
      if (pred) proj.left_key = pred->record.key();
    }
    if (proj.right_key == kChainPlusInf) {
      auto succ = GlobalSuccessor(query.hi, exclusive, visited);
      if (succ) proj.right_key = succ->record.key();
    }
    proj.agg_sig = ctx_->Aggregate(agg_parts);
  }

  {
    std::lock_guard<std::mutex> lock(summaries_mu_);
    for (const UpdateSummary& s : summaries_) {
      if (s.publish_ts >= oldest_ts) out.summaries.push_back(s);
    }
  }
  out.served_epoch = epoch_at_start;
  return out;
}

Result<QueryAnswer> ShardedQueryServer::JoinAttempt(
    const std::vector<int64_t>& values, JoinMethod method, bool exclusive,
    std::vector<bool>* visited) const {
  const uint64_t epoch_at_start = tracker_.current_epoch();
  // Partition snapshot strictly *after* the epoch read: the update-stream
  // barrier installs a period's refresh before advancing the epoch, so
  // this order guarantees the snapshot is at least as fresh as the stamp
  // claims — a retried or escalated attempt re-snapshots both together.
  std::shared_ptr<const std::vector<CertifiedPartition>> parts_snap;
  {
    std::lock_guard<std::mutex> lock(partitions_mu_);
    parts_snap = join_partitions_;
  }
  static const std::vector<CertifiedPartition> kNoPartitions;
  const std::vector<CertifiedPartition>& partitions =
      parts_snap ? *parts_snap : kNoPartitions;
  QueryAnswer out;
  out.kind = QueryKind::kJoin;
  JoinAnswer& ans = out.join;
  ans.method = method;

  std::set<uint32_t> used_partitions;
  // Chain signatures included in the aggregate, deduplicated by composite
  // key across the whole answer (a record may serve several proofs) —
  // which is why a join validates the apply counter of every shard it
  // reads: the dedup must never mix two chain generations of one record.
  std::set<int64_t> included_keys;
  std::vector<BasSignature> parts;
  uint64_t oldest_ts = ~uint64_t{0};
  auto include_item = [&](const AuthTable::Item& item) {
    if (included_keys.insert(item.record.key()).second)
      parts.push_back(item.sig);
    oldest_ts = std::min(oldest_ts, item.record.ts);
  };

  for (int64_t a : values) {
    const int64_t clo = JoinCompositeKey(a, 0);
    const int64_t chi = JoinCompositeKey(a, kJoinMaxDup);
    const std::vector<ShardRouter::SubRange> cover = router_.Cover(clo, chi);
    // Per-value scan of the covering shards, gathering items with their
    // chain signatures; the edge sub-scans also report the shard-local
    // boundary items (the global chain neighbors when present).
    std::vector<AuthTable::Item> items;
    std::optional<AuthTable::Item> left_b, right_b;
    for (size_t i = 0; i < cover.size(); ++i) {
      const ShardRouter::SubRange& sr = cover[i];
      if (visited != nullptr) (*visited)[sr.shard] = true;
      std::unique_lock<std::mutex> lock(shards_[sr.shard]->mu,
                                        std::defer_lock);
      if (!exclusive) lock.lock();
      AuthTable::RangeOut scan =
          shards_[sr.shard]->qs->table().Scan(sr.lo, sr.hi);
      if (i == 0) left_b = scan.left_boundary;
      if (i + 1 == cover.size()) right_b = scan.right_boundary;
      for (AuthTable::Item& item : scan.items)
        items.push_back(std::move(item));
    }

    if (!items.empty()) {
      // Match group: stitch its boundary keys across seams exactly like
      // selection boundaries — a shard-local boundary is already the
      // global neighbor; a sentinel means it lives on another shard.
      JoinMatch match;
      match.a_value = a;
      if (left_b) {
        match.left_key = left_b->record.key();
      } else {
        auto pred = GlobalPredecessor(clo, exclusive, visited);
        match.left_key = pred ? pred->record.key() : kChainMinusInf;
      }
      if (right_b) {
        match.right_key = right_b->record.key();
      } else {
        auto succ = GlobalSuccessor(chi, exclusive, visited);
        match.right_key = succ ? succ->record.key() : kChainPlusInf;
      }
      for (const AuthTable::Item& item : items) {
        match.s_records.push_back(item.record);
        include_item(item);
      }
      ans.matches.push_back(std::move(match));
      continue;
    }

    bool need_boundary = true;
    if (method == JoinMethod::kBloomFilter) {
      const CertifiedPartition* part = FindCoveringPartition(partitions, a);
      if (part != nullptr) {
        used_partitions.insert(part->idx);
        if (!part->filter.MayContainInt64(a)) {
          ans.negative_probes.push_back({a, part->idx});
          need_boundary = false;
        }
        // else: false positive — fall back to the boundary proof below.
      }
    }
    if (need_boundary) {
      // Absence witness adjacent to the gap, possibly on another shard;
      // its own chain neighbors stitch across seams via global probes.
      std::optional<AuthTable::Item> witness = left_b;
      if (!witness) witness = GlobalPredecessor(clo, exclusive, visited);
      if (!witness) witness = right_b;
      if (!witness) witness = GlobalSuccessor(chi, exclusive, visited);
      if (!witness) return Status::NotFound("S is empty");
      AbsenceProof proof;
      proof.a_value = a;
      proof.rec_key = witness->record.key();
      proof.rec_rid = witness->record.rid;
      proof.rec_ts = witness->record.ts;
      proof.rec_digest = witness->record.Digest();
      auto wl = GlobalPredecessor(witness->record.key(), exclusive, visited);
      auto wr = GlobalSuccessor(witness->record.key(), exclusive, visited);
      proof.left_key = wl ? wl->record.key() : kChainMinusInf;
      proof.right_key = wr ? wr->record.key() : kChainPlusInf;
      include_item(*witness);
      ans.absence_proofs.push_back(std::move(proof));
    }
  }

  for (uint32_t idx : used_partitions) {
    for (const CertifiedPartition& p : partitions) {
      if (p.idx == idx) {
        ans.partitions.push_back(p);
        parts.push_back(p.sig);
        break;
      }
    }
  }
  ans.agg_sig = ctx_->Aggregate(parts);

  {
    std::lock_guard<std::mutex> lock(summaries_mu_);
    for (const UpdateSummary& s : summaries_) {
      if (s.publish_ts >= oldest_ts) out.summaries.push_back(s);
    }
  }
  out.served_epoch = epoch_at_start;
  return out;
}

Result<QueryAnswer> ShardedQueryServer::Execute(const Query& query,
                                                SelectStats* stats) const {
  switch (query.kind) {
    case QueryKind::kSelect: {
      QueryAnswer ans;
      ans.kind = QueryKind::kSelect;
      AUTHDB_ASSIGN_OR_RETURN(ans.selection,
                              Select(query.lo, query.hi, stats));
      ans.served_epoch = ans.selection.served_epoch;
      return ans;
    }
    case QueryKind::kProject: {
      if (stats != nullptr) *stats = SelectStats{};
      if (query.lo > query.hi) return Status::InvalidArgument("lo > hi");
      if (query.lo == kChainMinusInf || query.hi == kChainPlusInf)
        return Status::InvalidArgument("range touches chain sentinels");
      const std::vector<ShardRouter::SubRange> cover =
          router_.Cover(query.lo, query.hi);
      std::vector<size_t> seam_shards;
      seam_shards.reserve(cover.size());
      for (const ShardRouter::SubRange& sr : cover)
        seam_shards.push_back(sr.shard);
      return RunValidated<QueryAnswer>(
          seam_shards, [&](bool exclusive, std::vector<bool>* visited) {
            return ProjectAttempt(query, cover, stats, exclusive, visited);
          });
    }
    case QueryKind::kJoin: {
      if (stats != nullptr) *stats = SelectStats{};
      if (query.join_values.empty())
        return Status::InvalidArgument("join without probe values");
      std::vector<int64_t> values = query.join_values;
      std::sort(values.begin(), values.end());
      values.erase(std::unique(values.begin(), values.end()), values.end());
      std::vector<bool> touched(shards_.size(), false);
      for (int64_t a : values) {
        if (!JoinBValueInDomain(a))
          return Status::InvalidArgument("join probe value outside B domain");
        for (const ShardRouter::SubRange& sr : router_.Cover(
                 JoinCompositeKey(a, 0), JoinCompositeKey(a, kJoinMaxDup)))
          touched[sr.shard] = true;
      }
      std::vector<size_t> seam_shards;
      for (size_t s = 0; s < touched.size(); ++s) {
        if (touched[s]) seam_shards.push_back(s);
      }
      if (stats != nullptr) stats->shards_queried = seam_shards.size();
      return RunValidated<QueryAnswer>(
          seam_shards, [&](bool exclusive, std::vector<bool>* visited) {
            return JoinAttempt(values, query.join_method, exclusive, visited);
          });
    }
  }
  return Status::InvalidArgument("unknown query kind");
}

void ShardedQueryServer::SetJoinPartitions(
    std::vector<CertifiedPartition> partitions) {
  auto fresh = std::make_shared<const std::vector<CertifiedPartition>>(
      std::move(partitions));
  std::lock_guard<std::mutex> lock(partitions_mu_);
  join_partitions_ = std::move(fresh);
}

void ShardedQueryServer::EnableSigCache(SigCache::RefreshMode mode,
                                        size_t max_pairs) {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    uint64_t n = shard->qs->size();
    if (n < 4) continue;  // nothing worth caching
    uint64_t n2 = 1;
    while (n2 * 2 <= n) n2 *= 2;
    auto plan =
        SigCachePlanner::Plan(n2, CardinalityDist::Harmonic(n2), max_pairs);
    shard->qs->EnableSigCache(plan.chosen, mode);
  }
}

}  // namespace authdb
