#include "server/sharded_query_server.h"

#include <algorithm>
#include <functional>
#include <optional>
#include <utility>

#include "common/logging.h"
#include "core/chain.h"

namespace authdb {

ShardedQueryServer::ShardedQueryServer(std::shared_ptr<const BasContext> ctx,
                                       ShardRouter router,
                                       const Options& options)
    : ctx_(std::move(ctx)),
      router_(std::move(router)),
      options_(options),
      pool_(options.worker_threads) {
  shards_.reserve(router_.shard_count());
  for (size_t i = 0; i < router_.shard_count(); ++i) {
    auto shard = std::make_unique<Shard>();
    shard->qs = std::make_unique<QueryServer>(ctx_, options_.shard);
    shards_.push_back(std::move(shard));
  }
}

uint64_t ShardedQueryServer::size() const {
  uint64_t n = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    n += s->qs->size();
  }
  return n;
}

std::vector<ShardedQueryServer::ShardPiece> ShardedQueryServer::SplitByOwner(
    const SignedRecordUpdate& msg) const {
  // Split the message by key ownership: the primary payload to its owner,
  // every re-certified record to the shard holding its key. An insert or
  // delete near a shard seam re-chains a neighbor stored on the adjacent
  // shard, so the split is what keeps each shard's signatures current.
  int64_t primary_key = msg.record ? msg.record->record.key() : msg.key;
  size_t owner = router_.ShardOf(primary_key);

  std::vector<SignedRecordUpdate> per_shard(shards_.size());
  std::vector<bool> active(shards_.size(), false);
  if (msg.record || msg.kind != SignedRecordUpdate::Kind::kRecertify) {
    per_shard[owner].kind = msg.kind;
    per_shard[owner].key = msg.key;
    per_shard[owner].record = msg.record;
    active[owner] = true;
  }
  for (const CertifiedRecord& cr : msg.recertified) {
    size_t s = router_.ShardOf(cr.record.key());
    if (!active[s]) {
      per_shard[s].kind = SignedRecordUpdate::Kind::kRecertify;
      active[s] = true;
    }
    per_shard[s].recertified.push_back(cr);
  }

  std::vector<ShardPiece> out;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (active[s]) out.push_back(ShardPiece{s, std::move(per_shard[s])});
  }
  return out;
}

Status ShardedQueryServer::ApplyToShard(size_t shard,
                                        const SignedRecordUpdate& piece) {
  AUTHDB_CHECK(shard < shards_.size());
  std::lock_guard<std::mutex> lock(shards_[shard]->mu);
  return shards_[shard]->qs->ApplyUpdate(piece);
}

Status ShardedQueryServer::ApplyPieces(const std::vector<ShardPiece>& pieces) {
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(pieces.size());
  for (const ShardPiece& sp : pieces) {
    AUTHDB_CHECK(sp.shard < shards_.size());
    AUTHDB_CHECK(locks.empty() || pieces[locks.size() - 1].shard < sp.shard);
    locks.emplace_back(shards_[sp.shard]->mu);
  }
  for (const ShardPiece& sp : pieces)
    AUTHDB_RETURN_NOT_OK(shards_[sp.shard]->qs->ApplyUpdate(sp.piece));
  return Status::OK();
}

Status ShardedQueryServer::ApplyUpdate(const SignedRecordUpdate& msg) {
  return ApplyPieces(SplitByOwner(msg));
}

void ShardedQueryServer::AddSummary(UpdateSummary summary) {
  // Epoch first, deque second: a concurrent Select may then stamp an epoch
  // one publication ahead of the summaries it attaches, which is sound
  // (the barrier contract says the epoch's updates are already applied),
  // whereas the opposite order could transiently under-claim and make an
  // up-to-date client reject an honest answer.
  tracker_.Publish(summary.seq, summary.publish_ts);
  std::lock_guard<std::mutex> lock(summaries_mu_);
  summaries_.push_back(std::move(summary));
  while (summaries_.size() > options_.shard.summaries_retained)
    summaries_.pop_front();
}

std::optional<AuthTable::Item> ShardedQueryServer::GlobalPredecessor(
    int64_t key) const {
  // The owner shard may hold the predecessor; otherwise it is the greatest
  // record of the nearest non-empty shard to the left.
  for (size_t s = router_.ShardOf(key) + 1; s-- > 0;) {
    std::lock_guard<std::mutex> lock(shards_[s]->mu);
    auto item = shards_[s]->qs->PredecessorItem(key);
    if (item) return item;
  }
  return std::nullopt;
}

std::optional<AuthTable::Item> ShardedQueryServer::GlobalSuccessor(
    int64_t key) const {
  for (size_t s = router_.ShardOf(key); s < shards_.size(); ++s) {
    std::lock_guard<std::mutex> lock(shards_[s]->mu);
    auto item = shards_[s]->qs->SuccessorItem(key);
    if (item) return item;
  }
  return std::nullopt;
}

Result<SelectionAnswer> ShardedQueryServer::Select(int64_t lo, int64_t hi,
                                                   SelectStats* stats) const {
  if (stats != nullptr) *stats = SelectStats{};  // per-call counters
  if (lo > hi) return Status::InvalidArgument("lo > hi");
  if (lo == kChainMinusInf || hi == kChainPlusInf)
    return Status::InvalidArgument("range touches chain sentinels");

  // Snapshot the epoch *before* reading any shard: a summary publishing
  // while the fan-out runs then leaves the stamp under-claiming (answer
  // fresher than stamped — allowed) instead of over-claiming an epoch
  // whose updates this answer may predate.
  const uint64_t epoch_at_start = tracker_.current_epoch();

  std::vector<ShardRouter::SubRange> cover = router_.Cover(lo, hi);
  std::vector<std::optional<Result<SelectionAnswer>>> subs(cover.size());
  std::vector<SigCache::AggStats> sub_stats(cover.size());

  std::vector<std::function<void()>> tasks;
  tasks.reserve(cover.size());
  for (size_t i = 0; i < cover.size(); ++i) {
    tasks.emplace_back([this, &cover, &subs, &sub_stats, i] {
      const ShardRouter::SubRange& sr = cover[i];
      std::lock_guard<std::mutex> lock(shards_[sr.shard]->mu);
      subs[i] = shards_[sr.shard]->qs->Select(sr.lo, sr.hi, &sub_stats[i]);
    });
  }
  pool_.RunAll(std::move(tasks));

  if (stats != nullptr) {
    stats->shards_queried = cover.size();
    for (const SigCache::AggStats& s : sub_stats) {
      stats->agg.point_adds += s.point_adds;
      stats->agg.leaf_fetches += s.leaf_fetches;
      stats->agg.cache_hits += s.cache_hits;
      stats->agg.refreshes += s.refreshes;
    }
  }

  // Stitch: concatenate the per-shard results (shard order == key order),
  // sum the per-shard aggregates, keep the outermost boundaries. Empty
  // sub-answers contribute nothing — their shard-local proofs are replaced
  // by global boundary probes where needed.
  SelectionAnswer out;
  std::vector<BasSignature> agg_parts;
  uint64_t oldest_ts = ~uint64_t{0};
  int first_nonempty = -1;
  for (size_t i = 0; i < cover.size(); ++i) {
    const Result<SelectionAnswer>& r = *subs[i];
    if (!r.ok()) {
      if (r.status().IsNotFound()) continue;  // shard holds no records
      return r.status();
    }
    const SelectionAnswer& sub = r.value();
    if (sub.records.empty()) continue;
    if (first_nonempty < 0) {
      first_nonempty = static_cast<int>(i);
      out.left_key = sub.left_key;
    }
    out.right_key = sub.right_key;
    out.records.insert(out.records.end(), sub.records.begin(),
                       sub.records.end());
    agg_parts.push_back(sub.agg_sig);
    for (const Record& rec : sub.records)
      oldest_ts = std::min(oldest_ts, rec.ts);
  }
  if (stats != nullptr) stats->shards_nonempty = agg_parts.size();

  if (first_nonempty < 0) {
    // Empty result across every covered shard: prove it with the global
    // boundary record, exactly as a single server would.
    auto pred = GlobalPredecessor(lo);
    auto succ = GlobalSuccessor(hi);
    if (!pred && !succ) return Status::NotFound("empty relation");
    if (pred) {
      out.proof_record = pred->record;
      out.agg_sig = pred->sig;
      auto pp = GlobalPredecessor(pred->record.key());
      out.left_key = pp ? pp->record.key() : kChainMinusInf;
      out.right_key = succ ? succ->record.key() : kChainPlusInf;
      oldest_ts = pred->record.ts;
    } else {
      out.proof_record = succ->record;
      out.agg_sig = succ->sig;
      out.left_key = kChainMinusInf;  // no key below lo, hence none below succ
      auto ss = GlobalSuccessor(succ->record.key());
      out.right_key = ss ? ss->record.key() : kChainPlusInf;
      oldest_ts = succ->record.ts;
    }
  } else {
    // A finite shard-local boundary is already the global chain neighbor
    // (contiguous partition); a sentinel means the neighbor lives on an
    // adjacent shard the sub-query never saw.
    if (out.left_key == kChainMinusInf) {
      auto pred = GlobalPredecessor(lo);
      if (pred) out.left_key = pred->record.key();
    }
    if (out.right_key == kChainPlusInf) {
      auto succ = GlobalSuccessor(hi);
      if (succ) out.right_key = succ->record.key();
    }
    out.agg_sig = ctx_->Aggregate(agg_parts);
  }

  // Freshness evidence: every summary published at/after the oldest result
  // certification (same rule as QueryServer::Select, held server-wide).
  {
    std::lock_guard<std::mutex> lock(summaries_mu_);
    for (const UpdateSummary& s : summaries_) {
      if (s.publish_ts >= oldest_ts) out.summaries.push_back(s);
    }
  }
  // The tracker is a running max, so the stamp is also correct when
  // summaries were delivered out of order.
  out.served_epoch = epoch_at_start;
  return out;
}

void ShardedQueryServer::EnableSigCache(SigCache::RefreshMode mode,
                                        size_t max_pairs) {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    uint64_t n = shard->qs->size();
    if (n < 4) continue;  // nothing worth caching
    uint64_t n2 = 1;
    while (n2 * 2 <= n) n2 *= 2;
    auto plan =
        SigCachePlanner::Plan(n2, CardinalityDist::Harmonic(n2), max_pairs);
    shard->qs->EnableSigCache(plan.chosen, mode);
  }
}

}  // namespace authdb
