#include "server/sharded_query_server.h"

#include <algorithm>
#include <functional>
#include <iterator>
#include <set>
#include <utility>

#include "common/clock.h"
#include "common/logging.h"
#include "core/chain.h"

namespace authdb {

ShardedQueryServer::ShardedQueryServer(std::shared_ptr<const BasContext> ctx,
                                       ShardRouter router,
                                       const ServerConfig& config)
    : ctx_(std::move(ctx)),
      router_(std::move(router)),
      config_(config),
      exec_(router_.shard_count(), config.serving.worker_threads > 0),
      metrics_(router_.shard_count()),
      pin_sync_(std::make_shared<PinSync>()),
      summaries_(std::make_shared<const std::deque<UpdateSummary>>()) {
  Result<ServerConfig> checked = config.Validated();
  AUTHDB_CHECK(checked.ok() && "invalid ServerConfig");
  if (config_.admission.enabled)
    admission_ = std::make_unique<AdmissionController>(config_.admission);
  shards_.reserve(router_.shard_count());
  for (size_t i = 0; i < router_.shard_count(); ++i)
    shards_.push_back(std::make_unique<Shard>(ctx_));
  // Publish the empty epoch-0 descriptor so readers always have a pin.
  MutexLock pub(publish_mu_);
  RepublishLocked();
}

// ---------------------------------------------------------------------------
// Write path: COW builders + atomic epoch publication

std::vector<ShardedQueryServer::ShardPiece> ShardedQueryServer::SplitByOwner(
    const SignedRecordUpdate& msg) const {
  int64_t primary_key = msg.record ? msg.record->record.key() : msg.key;
  size_t owner = router_.ShardOf(primary_key);

  std::vector<SignedRecordUpdate> per_shard(shards_.size());
  std::vector<bool> active(shards_.size(), false);
  if (msg.record || msg.kind != SignedRecordUpdate::Kind::kRecertify) {
    per_shard[owner].kind = msg.kind;
    per_shard[owner].key = msg.key;
    per_shard[owner].record = msg.record;
    active[owner] = true;
  }
  for (const CertifiedRecord& cr : msg.recertified) {
    size_t s = router_.ShardOf(cr.record.key());
    if (!active[s]) {
      per_shard[s].kind = SignedRecordUpdate::Kind::kRecertify;
      active[s] = true;
    }
    per_shard[s].recertified.push_back(cr);
  }

  std::vector<ShardPiece> out;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (active[s]) out.push_back(ShardPiece{s, std::move(per_shard[s])});
  }
  return out;
}

Status ShardedQueryServer::ApplyToShardDeferred(
    size_t shard, const SignedRecordUpdate& piece) {
  AUTHDB_CHECK(shard < shards_.size());
  Shard& sh = *shards_[shard];
  MutexLock lock(sh.mu);
  return sh.builder.Apply(piece);
}

Status ShardedQueryServer::ApplyUpdate(const SignedRecordUpdate& msg) {
  // publish_mu_ is held across the whole piece-apply loop AND the
  // republish: a concurrent publisher (another direct apply, AddSummary,
  // SetJoinPartitions) could otherwise freeze a seam-spanning message
  // half-applied — shard 0 post-piece, shard 1 pre-piece — into a
  // descriptor every reader would pin as a torn re-chaining.
  MutexLock pub(publish_mu_);
  Status st = Status::OK();
  for (const ShardPiece& sp : SplitByOwner(msg)) {
    st = ApplyToShardDeferred(sp.shard, sp.piece);
    // A piece failing to apply is a protocol violation (the DA's signed
    // messages always apply cleanly); earlier pieces stay in place and the
    // caller must treat the failure as fatal to the replica's integrity.
    if (!st.ok()) break;
  }
  RepublishLocked();
  return st;
}

std::shared_ptr<const EpochSnapshot> ShardedQueryServer::FreezeShard(
    size_t shard) {
  AUTHDB_CHECK(shard < shards_.size());
  Shard& sh = *shards_[shard];
  MutexLock lock(sh.mu);
  return sh.builder.Freeze();
}

size_t ShardedQueryServer::LivePinnedLocked() const {
  // Requires pin_sync_->mu (NOT publish_mu_): the diagnostic and the
  // backpressure predicate must stay readable while a publisher parks on
  // the budget with publish_mu_ held.
  retired_.erase(std::remove_if(retired_.begin(), retired_.end(),
                                [](const std::weak_ptr<const EpochDescriptor>&
                                       w) { return w.expired(); }),
                 retired_.end());
  return retired_.size();
}

void ShardedQueryServer::InstallDescriptorLocked(
    std::vector<std::shared_ptr<const EpochSnapshot>> snaps) {
  auto* raw = new EpochDescriptor;
  raw->epoch = tracker_.current_epoch();
  raw->total_size = 0;
  for (const auto& s : snaps) raw->total_size += s->size();
  raw->shards = std::move(snaps);
  raw->summaries = summaries_;
  raw->partitions = partitions_;
  // The deleter fires when the last reader unpins a superseded epoch —
  // that retires the snapshot set (chunks shared with newer epochs
  // survive) and wakes any publisher blocked on max_pinned_epochs. The
  // sync block is shared so an unpin after server teardown stays safe.
  std::shared_ptr<PinSync> sync = pin_sync_;
  std::shared_ptr<const EpochDescriptor> desc(
      raw, [sync](const EpochDescriptor* d) {
        delete d;
        MutexLock lk(sync->mu);
        sync->cv.NotifyAll();
      });
  std::shared_ptr<const EpochDescriptor> old =
      std::atomic_exchange(&current_, desc);
  if (old != nullptr) {
    MutexLock lk(pin_sync_->mu);
    retired_.emplace_back(old);
    // Keep the GC list from accumulating dead weak_ptrs on the
    // direct-apply path (which installs a descriptor per message and
    // never runs the backpressure prune).
    if (retired_.size() > 64) LivePinnedLocked();
  }
}

void ShardedQueryServer::RepublishLocked() {
  std::vector<std::shared_ptr<const EpochSnapshot>> snaps;
  snaps.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    Shard& sh = *shards_[s];
    MutexLock lock(sh.mu);
    snaps.push_back(sh.builder.Freeze());
  }
  InstallDescriptorLocked(std::move(snaps));
  metrics_.RecordPublish(0);  // direct path never waits on the pin budget
}

void ShardedQueryServer::PublishEpoch(
    UpdateSummary summary,
    std::vector<std::shared_ptr<const EpochSnapshot>> snaps,
    PartitionRefresh partition_refresh) {
  AUTHDB_CHECK(snaps.size() == shards_.size());
  MutexLock pub(publish_mu_);
  uint64_t backpressure_us = 0;
  if (config_.serving.max_pinned_epochs > 0) {
    // Backpressure against stalled readers: wait until fewer than the
    // budget of superseded epochs is still pinned. publish_mu_ stays held
    // — the block is meant to propagate through the update stream's apply
    // queues to the producer. Readers never take either lock, so they
    // drain (and notify through the descriptor deleter) independently.
    MutexLock lk(pin_sync_->mu);
    if (LivePinnedLocked() >= config_.serving.max_pinned_epochs) {
      const uint64_t t0 = MonotonicMicros();
      while (LivePinnedLocked() >= config_.serving.max_pinned_epochs)
        pin_sync_->cv.Wait(pin_sync_->mu);
      backpressure_us = MonotonicMicros() - t0;
    }
  }
  // Monotonicity guard: if a direct-path publication (ApplyUpdate /
  // SetJoinPartitions / AddSummary) raced this barrier and already
  // published newer builder state for some shard, keep the newer version
  // — readers must never watch a record regress to an older generation
  // at a higher epoch. (Mixing the direct path into a live streaming
  // period still weakens the stamp's exactness for that period — the
  // leaked updates ride the earlier epoch — so keep direct publications
  // to bootstrap/quiesced phases; see the class comment.)
  {
    std::shared_ptr<const EpochDescriptor> cur = std::atomic_load(&current_);
    for (size_t s = 0; s < snaps.size() && s < cur->shards.size(); ++s) {
      if (cur->shards[s]->generation() > snaps[s]->generation())
        snaps[s] = cur->shards[s];
    }
  }
  if (!partition_refresh.empty()) {
    // Double-buffered refresh: build the next partitions vector as a copy
    // of the current one (the shadow), apply full rebuilds and delta
    // merges there, and let InstallDescriptorLocked's swap publish it.
    // Readers keep probing the filters of their pinned epoch throughout.
    auto next = partitions_ != nullptr
                    ? std::vector<CertifiedPartition>(*partitions_)
                    : std::vector<CertifiedPartition>();
    // A refresh that fails to apply (delta for a missing partition or a
    // geometry mismatch) is a protocol violation from the DA feed; the
    // CHECK keeps a corrupt join state out of every future epoch.
    AUTHDB_CHECK(ApplyPartitionRefresh(partition_refresh, &next));
    metrics_.RecordPartitionRefresh(partition_refresh.deltas.size(),
                                    partition_refresh.full.size());
    partitions_ = std::make_shared<const std::vector<CertifiedPartition>>(
        std::move(next));
  }
  tracker_.Publish(summary.seq, summary.publish_ts);
  auto sums = std::make_shared<std::deque<UpdateSummary>>(*summaries_);
  sums->push_back(std::move(summary));
  while (sums->size() > config_.node.summaries_retained) sums->pop_front();
  summaries_ = std::move(sums);
  InstallDescriptorLocked(std::move(snaps));
  metrics_.RecordPublish(backpressure_us);
  // Online planner retune at the configured barrier cadence: the epoch
  // just published is exactly what the next window of reads will serve,
  // so per-shard sizes and generations are fresh here by construction.
  if (config_.serving.sigcache_retune_publications > 0 && cache_enabled_ &&
      ++retune_countdown_ >= config_.serving.sigcache_retune_publications) {
    retune_countdown_ = 0;
    RetuneSigCacheLocked();
  }
}

void ShardedQueryServer::AddSummary(UpdateSummary summary) {
  AddSummary(std::move(summary), {});
}

void ShardedQueryServer::AddSummary(UpdateSummary summary,
                                    PartitionRefresh partition_refresh) {
  std::vector<std::shared_ptr<const EpochSnapshot>> snaps;
  snaps.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) snaps.push_back(FreezeShard(s));
  PublishEpoch(std::move(summary), std::move(snaps),
               std::move(partition_refresh));
}

void ShardedQueryServer::SetJoinPartitions(
    std::vector<CertifiedPartition> partitions) {
  MutexLock pub(publish_mu_);
  metrics_.RecordPartitionRefresh(0, partitions.size());
  partitions_ = std::make_shared<const std::vector<CertifiedPartition>>(
      std::move(partitions));
  RepublishLocked();
}

std::shared_ptr<const EpochDescriptor> ShardedQueryServer::PinCurrentEpoch()
    const {
  return std::atomic_load(&current_);
}

size_t ShardedQueryServer::pinned_epochs() const {
  // Deliberately NOT publish_mu_: this diagnostic must answer while a
  // backpressured PublishEpoch holds that lock — observing the stall is
  // the whole point.
  MutexLock lk(pin_sync_->mu);
  return LivePinnedLocked();
}

uint64_t ShardedQueryServer::size() const {
  return PinCurrentEpoch()->total_size;
}

ServerMetrics ShardedQueryServer::Metrics() const {
  ServerMetrics m;
  metrics_.Snapshot(&m);
  if (admission_ != nullptr) admission_->Snapshot(&m.admission);
  m.epoch.current = tracker_.current_epoch();
  m.epoch.pinned = pinned_epochs();
  return m;
}

std::shared_ptr<const ShardedQueryServer::Shard::CacheSlot>
ShardedQueryServer::BuildCacheSlot(uint64_t n, uint64_t generation,
                                   double uniform_w,
                                   SigCache::RefreshMode mode,
                                   size_t max_pairs) const {
  if (n < 4) return nullptr;  // nothing worth caching
  uint64_t n2 = 1;
  while (n2 * 2 <= n) n2 *= 2;
  CardinalityDist dist =
      uniform_w == 0.0
          ? CardinalityDist::Harmonic(n2)
          : CardinalityDist::Blend(CardinalityDist::Harmonic(n2),
                                   CardinalityDist::Uniform(n2), uniform_w);
  auto plan = SigCachePlanner::Plan(n2, dist, max_pairs);
  // The member LeafProvider must never be consulted on this path —
  // every aggregate goes through the generation-tagged overload with a
  // per-call provider over the reader's pinned snapshot. A stub that
  // silently returned empty signatures would turn an accidental
  // WarmAll/untagged call into unverifiable answers; fail loudly
  // instead.
  auto slot = std::make_shared<Shard::CacheSlot>();
  slot->cache = std::make_shared<SigCache>(
      ctx_, n2, mode, [](size_t) -> BasSignature {
        AUTHDB_CHECK(false &&
                     "sharded SigCache used without a snapshot provider");
        return BasSignature{};
      });
  slot->cache->PinPlan(plan.chosen);
  slot->positions = static_cast<size_t>(n2);
  slot->planned_generation = generation;
  slot->plan = std::move(plan.chosen);
  return slot;
}

void ShardedQueryServer::EnableSigCache(SigCache::RefreshMode mode,
                                        size_t max_pairs) {
  // Safe to call while serving: the slots are installed with atomic
  // stores, and in-flight visits finish on whatever slot they loaded.
  std::shared_ptr<const EpochDescriptor> desc = PinCurrentEpoch();
  for (size_t s = 0; s < shards_.size(); ++s) {
    std::shared_ptr<const Shard::CacheSlot> slot =
        BuildCacheSlot(desc->shards[s]->size(), desc->shards[s]->generation(),
                       /*uniform_w=*/0.0, mode, max_pairs);
    if (slot != nullptr) std::atomic_store(&shards_[s]->cache_slot, slot);
  }
  MutexLock pub(publish_mu_);
  cache_enabled_ = true;
  cache_mode_ = mode;
  cache_max_pairs_ = max_pairs;
  retune_countdown_ = 0;
}

size_t ShardedQueryServer::RetuneSigCache() {
  MutexLock pub(publish_mu_);
  return RetuneSigCacheLocked();
}

size_t ShardedQueryServer::RetuneSigCacheLocked() {
  if (!cache_enabled_) return 0;
  // The observed mix since the last retune: window-served aggregations
  // (hits + fills) versus the leaf fetches the pinned windows failed to
  // cover. A large leaf share means the harmonic assumption under-weights
  // the workload's longer runs, so the next plan leans toward uniform
  // (which pins deeper, wider nodes).
  ServerMetrics m;
  metrics_.Snapshot(&m);
  const uint64_t window = m.exec.agg_cache_hits + m.exec.agg_refreshes;
  const uint64_t leafs = m.exec.agg_leaf_fetches;
  const uint64_t d_window = window - retune_window_hits_;
  const uint64_t d_leafs = leafs - retune_leaf_fetches_;
  retune_window_hits_ = window;
  retune_leaf_fetches_ = leafs;
  const uint64_t total = d_window + d_leafs;
  const double uniform_w =
      total == 0 ? 0.0
                 : static_cast<double>(d_leafs) / static_cast<double>(total);

  std::shared_ptr<const EpochDescriptor> desc = PinCurrentEpoch();
  size_t installs = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    std::shared_ptr<const Shard::CacheSlot> next =
        BuildCacheSlot(desc->shards[s]->size(), desc->shards[s]->generation(),
                       uniform_w, cache_mode_, cache_max_pairs_);
    if (next == nullptr) continue;
    std::shared_ptr<const Shard::CacheSlot> cur =
        std::atomic_load(&shards_[s]->cache_slot);
    if (cur != nullptr && cur->positions == next->positions &&
        cur->plan.size() == next->plan.size()) {
      bool same = true;
      for (size_t i = 0; i < cur->plan.size(); ++i) {
        if (cur->plan[i].level != next->plan[i].level ||
            cur->plan[i].j != next->plan[i].j) {
          same = false;
          break;
        }
      }
      if (same) continue;  // identical plan: keep the warm windows
    }
    std::atomic_store(&shards_[s]->cache_slot, next);
    ++installs;
  }
  if (installs > 0) metrics_.RecordCacheRetunes(installs);
  return installs;
}

// ---------------------------------------------------------------------------
// Read path: one pinned descriptor per answer, wait-free under ingest.
// The execution engine itself — batch planning, shard visits, stitching —
// lives in server/batch_exec.cc (BatchEngine); this file keeps only the
// descriptor-global helpers it shares.

const SnapshotItem* ShardedQueryServer::GlobalPredecessor(
    const EpochDescriptor& desc, int64_t key) const {
  // The owner shard may hold the predecessor; otherwise it is the greatest
  // record of the nearest non-empty shard to the left.
  for (size_t s = router_.ShardOf(key) + 1; s-- > 0;) {
    const SnapshotItem* item = desc.shards[s]->Predecessor(key);
    if (item != nullptr) return item;
  }
  return nullptr;
}

const SnapshotItem* ShardedQueryServer::GlobalSuccessor(
    const EpochDescriptor& desc, int64_t key) const {
  for (size_t s = router_.ShardOf(key); s < shards_.size(); ++s) {
    const SnapshotItem* item = desc.shards[s]->Successor(key);
    if (item != nullptr) return item;
  }
  return nullptr;
}

void ShardedQueryServer::AttachSummaries(const EpochDescriptor& desc,
                                         uint64_t oldest_ts,
                                         std::vector<UpdateSummary>* out) {
  if (desc.summaries == nullptr) return;
  for (const UpdateSummary& s : *desc.summaries) {
    if (s.publish_ts >= oldest_ts) out->push_back(s);
  }
}

}  // namespace authdb
