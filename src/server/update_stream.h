#ifndef AUTHDB_SERVER_UPDATE_STREAM_H_
#define AUTHDB_SERVER_UPDATE_STREAM_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "core/protocol.h"
#include "server/config.h"
#include "server/metrics.h"
#include "server/sharded_query_server.h"

namespace authdb {

/// Streaming ingest of DA output into a live ShardedQueryServer: record
/// updates and rho-period summaries build the *next* epoch's copy-on-write
/// snapshots concurrently with reads, which keep serving the previous
/// published epoch untouched.
///
/// Architecture — one apply queue + worker thread per shard:
///
///   DA ──PushUpdate──► SplitByOwner ──► [q0] worker0 ──► shard 0 builder
///                                   └─► [q1] worker1 ──► shard 1 builder
///      ──PushSummary─► barrier fan-out to every queue ──────────────┐
///                       each worker freezes ITS shard's snapshot at  │
///                       the barrier; the last one publishes the new  │
///                       epoch descriptor + summary atomically ◄──────┘
///
/// Ordering contract (what makes reads "epoch-pinned"):
///  * Per shard, pieces apply in push order (FIFO queues) into that
///    shard's ShardVersionBuilder — invisible to readers until published.
///  * A summary is enqueued to *every* shard queue behind all updates
///    pushed before it. Each worker reaching the barrier freezes its own
///    shard's snapshot (so snapshot construction parallelizes and the
///    frozen state excludes anything pushed after the barrier, even on
///    shards whose workers run ahead); the last worker publishes the
///    assembled EpochSnapshot set, the summary, and the period's certified
///    partition refresh in ONE atomic descriptor swap
///    (ShardedQueryServer::PublishEpoch). Hence: an answer stamped with
///    epoch e reflects exactly the updates of periods 0..e-1 — a true
///    serializable snapshot, not merely a lower bound.
///  * A seam-spanning update (insert/delete re-chaining a neighbor on an
///    adjacent shard) needs no rendezvous: its pieces apply independently
///    to each owning builder, because nothing is visible until the next
///    barrier publishes all of them together. The joint-lockset /
///    seam-seqlock machinery this replaced is gone — readers are
///    wait-free under ingest.
///
/// Producers (typically the single DA feed) block when a shard queue is
/// `ServerConfig::Ingest::max_queue_depth` deep — backpressure instead of
/// unbounded memory. Epoch GC backpressure composes with it: when stalled
/// readers keep `ServerConfig::Serving::max_pinned_epochs` retired epochs
/// alive, PublishEpoch blocks the barrier worker, the queues fill, and
/// PushUpdate blocks the producer. Both waits are measured —
/// `ingest.push_block_us` and `epoch.publish_backpressure_us` in the
/// metrics snapshot — so overload is observable end to end. Multiple
/// producers are safe; their relative order is serialized at the push
/// mutex.
class UpdateStream {
 public:
  /// `server` must outlive the stream. `config` must pass Validated();
  /// only the `ingest` layer is consumed here (the server consumed the
  /// rest — pass the same config to both).
  UpdateStream(ShardedQueryServer* server, const ServerConfig& config);
  ~UpdateStream();

  UpdateStream(const UpdateStream&) = delete;
  UpdateStream& operator=(const UpdateStream&) = delete;

  /// Route one DA update message onto the owning shard queue(s). Blocks
  /// while every target queue is at the backpressure bound.
  void PushUpdate(SignedRecordUpdate msg) EXCLUDES(push_mu_);

  /// Fan a freshly certified summary out to every shard queue as an epoch
  /// barrier; the epoch publishes once all shards have drained past it.
  /// The overloads carry the DA's rho-period certified Bloom partition
  /// refresh (DataAggregator::PeriodOutput::partition_refresh — full
  /// rebuilds plus insert-only delta merges): the filters ride the same
  /// descriptor swap as the epoch itself, so an answer stamped with epoch
  /// e never cites a filter older than period e-1, and readers on a
  /// pinned epoch never observe a half-merged filter — join state and
  /// bitmaps advance atomically together. The vector overload wraps a
  /// wholesale partition replacement as a full-rebuild refresh.
  void PushSummary(UpdateSummary summary) EXCLUDES(push_mu_);
  void PushSummary(UpdateSummary summary, PartitionRefresh partition_refresh)
      EXCLUDES(push_mu_);
  void PushSummary(UpdateSummary summary,
                   std::vector<CertifiedPartition> partition_refresh)
      EXCLUDES(push_mu_);

  /// Block until everything pushed before the call has been applied (and
  /// any summary among it published).
  void Flush() EXCLUDES(push_mu_);

  /// Drain all queues, publish pending summaries, stop the workers. Called
  /// by the destructor; idempotent. No pushes may race with or follow it.
  void Close() EXCLUDES(push_mu_);

  /// The full serving+ingest metrics snapshot: the server's sections
  /// (exec/admission/epoch) plus this stream's `ingest` counters. The one
  /// telemetry surface of the ingest layer — there is no separate stats
  /// struct to drift from it.
  ServerMetrics Metrics() const EXCLUDES(tally_mu_);

 private:
  /// Summary fan-out marker shared by all shard queues. Each worker
  /// freezes its shard's snapshot into `snaps` before decrementing
  /// `remaining`; the worker that reaches zero — necessarily the last
  /// shard to drain past the barrier — publishes the epoch.
  struct SummaryBarrier {
    UpdateSummary summary;
    PartitionRefresh partition_refresh;
    std::vector<std::shared_ptr<const EpochSnapshot>> snaps;
    std::atomic<size_t> remaining;
    uint64_t enqueue_micros = 0;
  };

  struct Event {
    SignedRecordUpdate piece;                 ///< valid iff barrier unset
    std::shared_ptr<SummaryBarrier> barrier;  ///< summary marker
  };

  struct ShardQueue {
    Mutex mu;
    CondVar ready;     ///< worker wakeup
    CondVar progress;  ///< backpressure + Flush wakeup
    std::deque<Event> q GUARDED_BY(mu);
    uint64_t enqueued GUARDED_BY(mu) = 0;
    uint64_t drained GUARDED_BY(mu) = 0;
    // Hot-path counters live here — under the mutex the worker and
    // Enqueue already hold — so the per-event path never touches the
    // global stats lock; stats() merges across shards.
    uint64_t pieces_applied GUARDED_BY(mu) = 0;
    uint64_t apply_failures GUARDED_BY(mu) = 0;
    size_t max_depth_seen GUARDED_BY(mu) = 0;
    /// Producer block time on this queue's backpressure bound.
    uint64_t push_block_us GUARDED_BY(mu) = 0;
    std::thread worker;
  };

  void WorkerLoop(size_t shard);
  /// Enqueue under queues_[shard]->mu, honoring the backpressure bound.
  void Enqueue(size_t shard, Event event);

  ShardedQueryServer* server_;
  size_t max_queue_depth_;
  std::vector<std::unique_ptr<ShardQueue>> queues_;
  Mutex push_mu_;  ///< serializes producers: same order on all queues
  std::atomic<bool> stop_{false};
  bool closed_ GUARDED_BY(push_mu_) = false;

  /// Producer-side and per-publication tallies — all off the per-event
  /// path (hot-path counters live on the shard queues, under the mutex
  /// those paths already hold).
  struct ProducerTally {
    uint64_t updates_pushed = 0;
    uint64_t summaries_published = 0;
    uint64_t publish_wait_us = 0;  ///< PushSummary -> epoch publication
  };
  mutable Mutex tally_mu_;
  ProducerTally tally_ GUARDED_BY(tally_mu_);
};

}  // namespace authdb

#endif  // AUTHDB_SERVER_UPDATE_STREAM_H_
