#ifndef AUTHDB_SERVER_UPDATE_STREAM_H_
#define AUTHDB_SERVER_UPDATE_STREAM_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/histogram.h"
#include "core/protocol.h"
#include "server/sharded_query_server.h"

namespace authdb {

/// Streaming ingest of DA output into a live ShardedQueryServer: record
/// updates and rho-period summaries are applied *concurrently with reads*
/// instead of in quiesced bulk reloads.
///
/// Architecture — one apply queue + worker thread per shard:
///
///   DA ──PushUpdate──► SplitByOwner ──► [q0] worker0 ──► shard 0
///                                   └─► [q1] worker1 ──► shard 1   ...
///      ──PushSummary─► barrier fan-out to every queue ──────────────┐
///                       last worker over the barrier publishes the  │
///                       summary and advances the freshness epoch ◄──┘
///
/// Ordering contract (what makes reads "epoch-verified"):
///  * Per shard, pieces apply in push order (FIFO queues), so a shard's
///    state is always a prefix of the DA's history restricted to its keys.
///  * A summary is enqueued to *every* shard queue behind all updates
///    pushed before it; it publishes (ShardedQueryServer::AddSummary, which
///    advances the FreshnessTracker epoch) only when the last worker has
///    reached it. Hence: an answer stamped with epoch e reflects every
///    update of periods 0..e-1 — the server can never claim an epoch whose
///    updates it has not applied.
///  * Workers may run ahead of a barrier on other shards; answers can
///    therefore be *fresher* than their stamped epoch, never staler.
///  * An update whose split spans several shards (a seam-re-chaining
///    insert/delete, or piggybacked renewals) is a rendezvous: the
///    involved workers park at the event and the last to arrive applies
///    every piece under all the shard locks at once while each involved
///    shard's seam counter is odd (ShardedQueryServer::ApplyPieces).
///    Together with the reader half — Select validates the covered
///    shards' counters around its fan-out and restitches any read the
///    joint apply overlapped — a cross-seam read never observes half of
///    a re-chaining, and the queues cannot stretch the seam-consistency
///    window the way independent per-shard applies would. Rendezvous
///    cannot deadlock: producers enqueue each event to all its queues in
///    one push_mu_ critical section, so any two events appear in the same
///    relative order on every queue they share.
///
/// Producers (typically the single DA feed) block when a shard queue is
/// `max_queue_depth` deep — backpressure instead of unbounded memory.
/// Multiple producers are safe; their relative order is serialized at the
/// push mutex.
class UpdateStream {
 public:
  struct Options {
    size_t max_queue_depth = 4096;  ///< per-shard backpressure bound
  };

  /// `server` must outlive the stream.
  UpdateStream(ShardedQueryServer* server, const Options& options);
  ~UpdateStream();

  UpdateStream(const UpdateStream&) = delete;
  UpdateStream& operator=(const UpdateStream&) = delete;

  /// Route one DA update message onto the owning shard queue(s). Blocks
  /// while every target queue is at the backpressure bound.
  void PushUpdate(SignedRecordUpdate msg);

  /// Fan a freshly certified summary out to every shard queue as an epoch
  /// barrier; it publishes once all shards have drained past it. The
  /// overload carries the DA's rho-period certified Bloom partition
  /// refresh (DataAggregator::PeriodOutput::partition_refresh): the
  /// filters install at the barrier, *before* the epoch advances, so an
  /// answer stamped with epoch e never cites a filter older than period
  /// e-1 — join state rides the same cadence and ordering as the bitmaps.
  void PushSummary(UpdateSummary summary);
  void PushSummary(UpdateSummary summary,
                   std::vector<CertifiedPartition> partition_refresh);

  /// Block until everything pushed before the call has been applied (and
  /// any summary among it published).
  void Flush();

  /// Drain all queues, publish pending summaries, stop the workers. Called
  /// by the destructor; idempotent. No pushes may race with or follow it.
  void Close();

  struct Stats {
    uint64_t updates_pushed = 0;      ///< PushUpdate calls
    uint64_t pieces_applied = 0;      ///< per-shard apply operations
    uint64_t summaries_published = 0;
    uint64_t apply_failures = 0;      ///< rejected by a shard (logged)
    size_t max_queue_depth_seen = 0;  ///< high-water mark across shards
    LatencyHistogram publish_latency;  ///< PushSummary -> epoch advance
  };
  Stats stats() const;

 private:
  /// Summary fan-out marker shared by all shard queues. The worker that
  /// decrements `remaining` to zero — necessarily the last shard to drain
  /// past the barrier — publishes (installing any partition refresh first).
  struct SummaryBarrier {
    UpdateSummary summary;
    std::vector<CertifiedPartition> partition_refresh;
    std::atomic<size_t> remaining;
    uint64_t enqueue_micros = 0;
  };

  /// Multi-shard update rendezvous: shared by the involved shard queues;
  /// the last arriving worker applies every piece atomically while the
  /// others wait, preserving each queue's FIFO order past the event. The
  /// executor alone accounts for the applied pieces (and any failure), so
  /// stats attribute each apply operation exactly once.
  struct JointUpdate {
    std::vector<ShardedQueryServer::ShardPiece> pieces;
    std::atomic<size_t> remaining;
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
  };

  struct Event {
    SignedRecordUpdate piece;  ///< valid iff neither pointer is set
    std::shared_ptr<SummaryBarrier> barrier;  ///< summary marker
    std::shared_ptr<JointUpdate> joint;       ///< multi-shard update
  };

  struct ShardQueue {
    std::mutex mu;
    std::condition_variable ready;     ///< worker wakeup
    std::condition_variable progress;  ///< backpressure + Flush wakeup
    std::deque<Event> q;
    uint64_t enqueued = 0;
    uint64_t drained = 0;
    // Hot-path counters live here — under the mutex the worker and
    // Enqueue already hold — so the per-event path never touches the
    // global stats lock; stats() merges across shards.
    uint64_t pieces_applied = 0;
    uint64_t apply_failures = 0;
    size_t max_depth_seen = 0;
    std::thread worker;
  };

  void WorkerLoop(size_t shard);
  /// Enqueue under queues_[shard]->mu, honoring the backpressure bound.
  void Enqueue(size_t shard, Event event);

  ShardedQueryServer* server_;
  Options options_;
  std::vector<std::unique_ptr<ShardQueue>> queues_;
  std::mutex push_mu_;  ///< serializes producers: same order on all queues
  std::atomic<bool> stop_{false};
  bool closed_ = false;  ///< guarded by push_mu_

  /// Guards the producer-side and per-publication tallies (updates_pushed,
  /// summaries_published, publish_latency) — all off the per-event path.
  mutable std::mutex stats_mu_;
  Stats stats_;
};

}  // namespace authdb

#endif  // AUTHDB_SERVER_UPDATE_STREAM_H_
