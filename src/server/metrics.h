#ifndef AUTHDB_SERVER_METRICS_H_
#define AUTHDB_SERVER_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace authdb {

/// Per-shard, per-kind busy time in microseconds. `visit_us` is each
/// visit's wall time (lock waits and the shared SigCache finalization
/// included, so contention inside the visit path is visible to the
/// scaling metrics); the per-kind buckets cover the request-processing
/// slices only.
struct ShardBusy {
  uint64_t select_us = 0;   ///< selection sub-range scans + aggregation
  uint64_t project_us = 0;  ///< projection scans + digest spines
  uint64_t join_us = 0;     ///< join probe walks
  uint64_t visit_us = 0;    ///< whole-visit wall time
};

/// One ExecuteBatch call's execution tally, produced by the BatchEngine
/// and folded into the server's cumulative MetricsCore. Internal plumbing
/// of src/server/ — external consumers read ServerMetrics snapshots, never
/// this struct.
struct BatchExecStats {
  uint64_t epoch = 0;           ///< the epoch the whole batch pinned
  uint64_t plans = 0;           ///< plans submitted (valid or not)
  uint64_t invalid_plans = 0;   ///< rejected by plan validation
  uint64_t shards_queried = 0;  ///< per-plan sub-ranges fanned out, summed
  uint64_t shard_visits = 0;    ///< shard visits dispatched (<= shards)
  /// Shared-inversion finalizations (per-visit SigCache batch fills + the
  /// one batch-level answer finalize).
  uint64_t batch_finalizes = 0;
  uint64_t agg_point_adds = 0;
  uint64_t agg_leaf_fetches = 0;
  uint64_t agg_cache_hits = 0;
  uint64_t agg_refreshes = 0;
  uint64_t agg_span_hits = 0;   ///< precomputed chunk prefixes used
  uint64_t digests_hashed = 0;  ///< tuple digests via multi-buffer SHA
  uint64_t bloom_probes = 0;    ///< join values probed against a filter
  uint64_t bloom_block_hits = 0;    ///< probes answered "maybe present"
  uint64_t bloom_fp_fallbacks = 0;  ///< positives resolved by absence proof
  std::vector<ShardBusy> shard_busy;  ///< indexed by shard id
};

/// One consistent snapshot of every serving-side counter — the single
/// telemetry surface of the server layer. Producers:
///   * ShardedQueryServer::Metrics() fills `exec`, `admission`, `epoch`;
///   * UpdateStream::Metrics() additionally fills `ingest`.
/// Consumers (sim drivers, benches, tests) read the typed sections or the
/// Flatten() view; the dotted names Flatten() emits are a STABLE contract
/// (pinned by tests/metrics_test.cc and the README metrics table, which
/// scripts/lint_invariants.py cross-checks) — gated bench metrics hang off
/// them, so renaming one is an API break, not a refactor.
struct ServerMetrics {
  struct Exec {
    uint64_t batches = 0;         ///< ExecuteBatch calls served
    uint64_t plans = 0;           ///< plans submitted (valid or not)
    uint64_t invalid_plans = 0;   ///< rejected by plan validation
    uint64_t shards_queried = 0;  ///< per-plan sub-ranges fanned out
    uint64_t shard_visits = 0;    ///< shard visits dispatched
    uint64_t batch_finalizes = 0; ///< shared-inversion finalizations
    uint64_t agg_point_adds = 0;  ///< EC point additions (aggregation)
    uint64_t agg_leaf_fetches = 0;
    uint64_t agg_cache_hits = 0;  ///< SigCache window hits
    uint64_t agg_refreshes = 0;   ///< SigCache window fills (lazy refresh)
    /// Aggregations short-circuited by epoch-barrier chunk aggregates
    /// (precomputed prefixes) instead of per-leaf folds.
    uint64_t agg_span_hits = 0;
    /// Tuple digests produced through the multi-buffer SHA front end
    /// (projection digest spines) — the "hashes hashed" crypto counter.
    uint64_t digests_hashed = 0;
    /// Join-batch Bloom probes (ProbeMany on the certified partition
    /// filters): values probed, probes that answered "maybe present"
    /// (block hits), and positives that fell back to a boundary absence
    /// proof (filter false positives on truly absent values).
    uint64_t bloom_probes = 0;
    uint64_t bloom_block_hits = 0;
    uint64_t bloom_fp_fallbacks = 0;
    /// Partition-refresh installs at the epoch barrier: cheap delta
    /// merges (insert-only periods, incl. empty recertifications) vs
    /// full certified rebuilds (delete-dirty or wholesale installs).
    uint64_t bloom_delta_merges = 0;
    uint64_t bloom_full_rebuilds = 0;
    /// Online planner retunes that installed a changed per-shard plan.
    uint64_t cache_retunes = 0;
    uint64_t last_epoch = 0;      ///< epoch the most recent batch pinned
    std::vector<ShardBusy> shard_busy;  ///< cumulative, indexed by shard
  } exec;

  struct Admission {
    bool enabled = false;
    uint64_t admitted_total = 0;
    uint64_t shed_total = 0;
    uint64_t select_admitted = 0;  ///< priority lane (freshness-critical)
    uint64_t select_shed = 0;
    uint64_t project_admitted = 0;  ///< bulk lane
    uint64_t project_shed = 0;
    uint64_t join_admitted = 0;  ///< bulk lane
    uint64_t join_shed = 0;
    uint64_t priority_grants = 0;  ///< grants issued to the priority lane
    uint64_t bulk_grants = 0;      ///< grants issued to the bulk lane
    /// Anti-starvation grants: a bulk waiter admitted ahead of queued
    /// priority work because the starvation bound was reached.
    uint64_t starvation_grants = 0;
    uint64_t queue_wait_us = 0;    ///< total intake-queue wait time
    uint64_t queue_depth_max = 0;  ///< high-water mark, both lanes
  } admission;

  struct Epoch {
    uint64_t current = 0;          ///< currently published epoch
    uint64_t pinned = 0;           ///< superseded epochs still reader-pinned
    uint64_t published_total = 0;  ///< descriptor installs (republish incl.)
    /// Time publishers spent blocked on the max_pinned_epochs budget —
    /// the stalled-reader backpressure that propagates into ingest.
    uint64_t publish_backpressure_us = 0;
  } epoch;

  struct Ingest {
    uint64_t updates_pushed = 0;       ///< PushUpdate calls
    uint64_t pieces_applied = 0;       ///< per-shard apply operations
    uint64_t summaries_published = 0;  ///< epoch barriers completed
    uint64_t apply_failures = 0;       ///< rejected by a shard (logged)
    uint64_t queue_depth_max = 0;      ///< high-water mark across shards
    /// Producer-side backpressure: time PushUpdate/PushSummary spent
    /// blocked on a full shard queue.
    uint64_t push_block_us = 0;
    /// PushSummary -> epoch publication, summed over barriers (epoch
    /// publication wait as seen by the ingest pipeline).
    uint64_t publish_wait_us = 0;
  } ingest;

  /// The stable dotted-name view: one (name, value) pair per counter,
  /// per-shard entries suffixed with the shard index. Bench JSON and the
  /// name-stability test consume this.
  std::vector<std::pair<std::string, double>> Flatten() const;

  /// Lookup in Flatten() by exact dotted name; 0 when absent.
  double Value(const std::string& name) const;

  /// Counter difference `*this - since` for windowed measurement (a load
  /// run brackets itself with two snapshots). Monotonic counters subtract;
  /// point-in-time values (admission.enabled, epoch.current, epoch.pinned,
  /// exec.last_epoch) and high-water marks keep this snapshot's value.
  ServerMetrics Delta(const ServerMetrics& since) const;
};

/// Lock-free cumulative execution counters embedded in ShardedQueryServer:
/// ExecuteBatch folds one BatchExecStats per call with relaxed atomic adds
/// (read paths never take a lock for telemetry), publishers record epoch
/// installs, and Snapshot() materializes the `exec` + publication slices
/// of a ServerMetrics. Snapshots are monotonic but not a cross-counter
/// atomic cut — each counter is individually exact.
class MetricsCore {
 public:
  explicit MetricsCore(size_t shards);

  MetricsCore(const MetricsCore&) = delete;
  MetricsCore& operator=(const MetricsCore&) = delete;

  void FoldBatch(const BatchExecStats& batch);
  void RecordPublish(uint64_t backpressure_us);
  /// The online planner installed `installs` changed per-shard plans.
  void RecordCacheRetunes(uint64_t installs);
  /// A partition refresh installed `delta_merges` merged deltas and
  /// `full_rebuilds` full certified filters.
  void RecordPartitionRefresh(uint64_t delta_merges, uint64_t full_rebuilds);

  /// Fill `out->exec` and the publication counters of `out->epoch`.
  void Snapshot(ServerMetrics* out) const;

 private:
  struct BusyCell {
    std::atomic<uint64_t> select_us{0};
    std::atomic<uint64_t> project_us{0};
    std::atomic<uint64_t> join_us{0};
    std::atomic<uint64_t> visit_us{0};
  };

  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> plans_{0};
  std::atomic<uint64_t> invalid_plans_{0};
  std::atomic<uint64_t> shards_queried_{0};
  std::atomic<uint64_t> shard_visits_{0};
  std::atomic<uint64_t> batch_finalizes_{0};
  std::atomic<uint64_t> agg_point_adds_{0};
  std::atomic<uint64_t> agg_leaf_fetches_{0};
  std::atomic<uint64_t> agg_cache_hits_{0};
  std::atomic<uint64_t> agg_refreshes_{0};
  std::atomic<uint64_t> agg_span_hits_{0};
  std::atomic<uint64_t> digests_hashed_{0};
  std::atomic<uint64_t> bloom_probes_{0};
  std::atomic<uint64_t> bloom_block_hits_{0};
  std::atomic<uint64_t> bloom_fp_fallbacks_{0};
  std::atomic<uint64_t> bloom_delta_merges_{0};
  std::atomic<uint64_t> bloom_full_rebuilds_{0};
  std::atomic<uint64_t> cache_retunes_{0};
  std::atomic<uint64_t> last_epoch_{0};
  std::atomic<uint64_t> published_total_{0};
  std::atomic<uint64_t> publish_backpressure_us_{0};
  std::vector<BusyCell> shard_busy_;
};

}  // namespace authdb

#endif  // AUTHDB_SERVER_METRICS_H_
