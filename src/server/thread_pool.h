#ifndef AUTHDB_SERVER_THREAD_POOL_H_
#define AUTHDB_SERVER_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace authdb {

/// Fixed-size worker pool used by the sharded query server to fan a range
/// selection out over its shards. Tasks never submit sub-tasks, so callers
/// may block on completion without risking pool-exhaustion deadlock.
///
/// With zero workers every task runs inline on the submitting thread — the
/// degenerate configuration used by single-threaded tools and tests.
class ThreadPool {
 public:
  explicit ThreadPool(size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Run every task, returning when all have finished. The last task is
  /// executed inline on the calling thread: a single-shard query never pays
  /// a handoff, and the caller contributes a core while it would otherwise
  /// be idle.
  void RunAll(std::vector<std::function<void()>> tasks) EXCLUDES(mu_);

  size_t worker_count() const { return workers_.size(); }

 private:
  struct Latch {
    Mutex mu;
    CondVar cv;
    size_t remaining GUARDED_BY(mu) = 0;
  };

  void WorkerLoop() EXCLUDES(mu_);

  std::vector<std::thread> workers_;
  Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;
};

}  // namespace authdb

#endif  // AUTHDB_SERVER_THREAD_POOL_H_
