#ifndef AUTHDB_SERVER_SHARDED_QUERY_SERVER_H_
#define AUTHDB_SERVER_SHARDED_QUERY_SERVER_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "core/protocol.h"
#include "core/query_server.h"
#include "server/shard_router.h"
#include "server/thread_pool.h"

namespace authdb {

/// A query-serving front end that partitions the key space across K
/// QueryServer shards — each with its own AuthTable, buffer pools, and
/// optional SigCache — and serves Select(lo, hi) by fanning the covered
/// sub-ranges out over a fixed thread pool, then stitching the per-shard
/// answers into one SelectionAnswer that the unmodified ClientVerifier
/// accepts.
///
/// Why stitching preserves the proofs: the DA signs every record chained to
/// its *global* neighbors, and the router's partition is contiguous in key
/// order. A record's shard-local predecessor (when one exists) is therefore
/// also its global predecessor, sub-answers from consecutive shards abut
/// exactly at the signed chain links, and the aggregate of the per-shard
/// BAS aggregates equals the aggregate the single-server path would have
/// produced. The only information a shard lacks is the chain neighbor that
/// lives *outside* its interval; the stitcher resolves those few boundary
/// keys by probing adjacent shards (PredecessorItem / SuccessorItem).
///
/// Thread-safety contract (the layered scheme):
///  * QueryServer and its AuthTable/BufferPool are single-threaded; this
///    class holds one mutex per shard and takes it around every shard call,
///    so any number of application threads may call Select / ApplyUpdate /
///    AddSummary concurrently.
///  * Reads of disjoint shards proceed in parallel (that is the scaling
///    story); reads of the same shard serialize on its mutex.
///  * ApplyUpdate locks only the shards that own a piece of the message, so
///    updates block reads on the touched shards and nothing else — the
///    record-level locality the paper contrasts with the MHT root
///    bottleneck, carried up to the serving layer.
class ShardedQueryServer {
 public:
  struct Options {
    QueryServer::Options shard;  ///< applied to every shard
    size_t worker_threads = 4;   ///< pool size for the Select fan-out
  };

  ShardedQueryServer(std::shared_ptr<const BasContext> ctx,
                     ShardRouter router, const Options& options);

  /// Replay a DA update message (also used for the initial bulk stream).
  /// The message is split by key ownership: the primary mutation goes to
  /// its owner shard; each re-certified neighbor is routed to *its* owner,
  /// which can differ when an insert/delete re-chains across a shard seam.
  Status ApplyUpdate(const SignedRecordUpdate& msg);

  /// One shard's slice of an update message, produced by SplitByOwner.
  struct ShardPiece {
    size_t shard;
    SignedRecordUpdate piece;
  };
  /// Split `msg` by key ownership without applying anything: the primary
  /// mutation to its owner shard, each re-certified record to *its* owner.
  /// ApplyUpdate is exactly SplitByOwner + ApplyToShard per piece; the
  /// streaming pipeline (server/update_stream.h) uses the same split to
  /// route pieces onto per-shard apply queues instead.
  std::vector<ShardPiece> SplitByOwner(const SignedRecordUpdate& msg) const;

  /// Apply one piece to one shard under that shard's mutex. The piece must
  /// only touch keys the shard owns (i.e. come from SplitByOwner).
  Status ApplyToShard(size_t shard, const SignedRecordUpdate& piece);

  /// Apply a multi-shard split atomically with respect to readers: every
  /// involved shard mutex is held (in ascending shard order — no other
  /// path holds two) while all pieces apply, so a concurrent cross-seam
  /// Select sees either none or all of a seam-re-chaining insert/delete.
  /// `pieces` must be in ascending shard order, as SplitByOwner emits.
  /// Atomicity is with respect to concurrent readers, not a transaction:
  /// a piece failing to apply (a protocol violation — the DA's signed
  /// messages always apply cleanly) stops the sequence and leaves the
  /// earlier pieces in place, exactly as ApplyUpdate always has; callers
  /// must treat a failure as fatal to the replica's integrity.
  Status ApplyPieces(const std::vector<ShardPiece>& pieces);

  /// Retain a freshly published summary and advance the freshness epoch.
  /// Summaries are server-wide (the DA's bitmap covers the whole rid
  /// space), so they live at the router level rather than in any shard.
  void AddSummary(UpdateSummary summary);

  /// Epoch bookkeeping: advanced by AddSummary, stamped onto every answer.
  const FreshnessTracker& freshness_tracker() const { return tracker_; }

  /// Per-call serving statistics (out-param, never instance state).
  struct SelectStats {
    size_t shards_queried = 0;    ///< sub-ranges fanned out
    size_t shards_nonempty = 0;   ///< sub-answers contributing records
    SigCache::AggStats agg;       ///< summed over the covered shards
  };

  /// Range selection with proof, stitched across the covered shards.
  Result<SelectionAnswer> Select(int64_t lo, int64_t hi,
                                 SelectStats* stats = nullptr) const;

  /// Plan and pin a per-shard SigCache (lazy or eager refresh). Each shard
  /// is planned independently against the largest power-of-two prefix of
  /// its current size — sharding shrinks both the plan space and the blast
  /// radius of an insert/delete cache invalidation.
  void EnableSigCache(SigCache::RefreshMode mode, size_t max_pairs);

  size_t shard_count() const { return shards_.size(); }
  const ShardRouter& router() const { return router_; }
  uint64_t size() const;

  /// Direct shard access for tests and tools. NOT synchronized — do not
  /// call while other threads are serving traffic.
  QueryServer& shard(size_t i) { return *shards_[i]->qs; }

 private:
  struct Shard {
    std::unique_ptr<QueryServer> qs;
    mutable std::mutex mu;
  };

  /// Global chain neighbors of `key`, probing outward from its owner shard
  /// (takes the probed shards' locks).
  std::optional<AuthTable::Item> GlobalPredecessor(int64_t key) const;
  std::optional<AuthTable::Item> GlobalSuccessor(int64_t key) const;

  std::shared_ptr<const BasContext> ctx_;
  ShardRouter router_;
  Options options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  mutable ThreadPool pool_;

  mutable std::mutex summaries_mu_;
  std::deque<UpdateSummary> summaries_;
  FreshnessTracker tracker_;
};

}  // namespace authdb

#endif  // AUTHDB_SERVER_SHARDED_QUERY_SERVER_H_
