#ifndef AUTHDB_SERVER_SHARDED_QUERY_SERVER_H_
#define AUTHDB_SERVER_SHARDED_QUERY_SERVER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "core/protocol.h"
#include "core/query_server.h"
#include "server/shard_router.h"
#include "server/thread_pool.h"

namespace authdb {

/// A query-serving front end that partitions the key space across K
/// QueryServer shards — each with its own AuthTable, buffer pools, and
/// optional SigCache — and serves the unified verified-query surface
/// (Execute: selections, projections, and authenticated equi-joins) by
/// fanning per-shard work out over a fixed thread pool, then stitching the
/// per-shard answers into one answer that the unmodified client-side
/// verifier accepts.
///
/// Why stitching preserves the proofs: the DA signs every record chained to
/// its *global* neighbors, and the router's partition is contiguous in key
/// order. A record's shard-local predecessor (when one exists) is therefore
/// also its global predecessor, sub-answers from consecutive shards abut
/// exactly at the signed chain links, and the aggregate of the per-shard
/// BAS aggregates equals the aggregate the single-server path would have
/// produced. The only information a shard lacks is the chain neighbor that
/// lives *outside* its interval; the stitcher resolves those few boundary
/// keys by probing adjacent shards (PredecessorItem / SuccessorItem).
///
/// Thread-safety contract (the layered scheme):
///  * QueryServer and its AuthTable/BufferPool are single-threaded; this
///    class holds one mutex per shard and takes it around every shard call,
///    so any number of application threads may call Select / ApplyUpdate /
///    AddSummary concurrently.
///  * Reads of disjoint shards proceed in parallel (that is the scaling
///    story); reads of the same shard serialize on its mutex.
///  * ApplyUpdate locks only the shards that own a piece of the message, so
///    updates block reads on the touched shards and nothing else — the
///    record-level locality the paper contrasts with the MHT root
///    bottleneck, carried up to the serving layer.
///  * Read consistency is a pair of seqlocks validated around Select's
///    whole fan-out + stitch + probe window: a multi-shard ApplyPieces
///    bumps each involved shard's seam counter (odd while in flight)
///    under its full lockset — stitched readers validate only the shards
///    they covered, so disjoint applies never invalidate them — and every
///    apply bumps the owning shard's apply counter, which readers
///    validate for exactly the shards their boundary probes examined
///    (probes re-read shards after the sub-read locks dropped, so any
///    apply overlapping an examined shard can tear them, while applies
///    elsewhere cannot). A torn window is restitched; after
///    `seam_retry_limit` tears the read falls back to taking every shard
///    lock and reading inline.
///    An answer therefore never mixes pre- and post-re-chaining states,
///    even though the per-shard sub-reads take their locks independently.
///    Single-shard reads that never probe a neighbor skip validation
///    entirely — they are atomic under their one lock.
class ShardedQueryServer {
 public:
  struct Options {
    QueryServer::Options shard;  ///< applied to every shard
    size_t worker_threads = 4;   ///< pool size for the Select fan-out
    /// Torn read windows a Select restitches before escalating to the
    /// all-shard-lock exclusive pass. At least one optimistic pass always
    /// runs (single-shard no-probe reads never escalate), so 0 escalates
    /// on the *first* torn window — tests use this to reach the exclusive
    /// pass without waiting for 8 consecutive tears.
    int seam_retry_limit = 8;
  };

  ShardedQueryServer(std::shared_ptr<const BasContext> ctx,
                     ShardRouter router, const Options& options);

  /// Replay a DA update message (also used for the initial bulk stream).
  /// The message is split by key ownership: the primary mutation goes to
  /// its owner shard; each re-certified neighbor is routed to *its* owner,
  /// which can differ when an insert/delete re-chains across a shard seam.
  Status ApplyUpdate(const SignedRecordUpdate& msg);

  /// One shard's slice of an update message, produced by SplitByOwner.
  struct ShardPiece {
    size_t shard;
    SignedRecordUpdate piece;
  };
  /// Split `msg` by key ownership without applying anything: the primary
  /// mutation to its owner shard, each re-certified record to *its* owner.
  /// ApplyUpdate is exactly SplitByOwner + ApplyToShard per piece; the
  /// streaming pipeline (server/update_stream.h) uses the same split to
  /// route pieces onto per-shard apply queues instead.
  std::vector<ShardPiece> SplitByOwner(const SignedRecordUpdate& msg) const;

  /// Apply one piece to one shard under that shard's mutex. The piece must
  /// only touch keys the shard owns (i.e. come from SplitByOwner).
  Status ApplyToShard(size_t shard, const SignedRecordUpdate& piece);

  /// Apply a multi-shard split atomically with respect to readers: every
  /// involved shard mutex is held (in ascending shard order — the only
  /// other path holding two is the Select fallback, which locks the same
  /// order) while all pieces apply, and each involved shard's seam
  /// counter is odd for the duration. Holding the lockset alone is not
  /// enough — Select's sub-reads take their shard locks independently, so
  /// a cross-seam read could see one shard before this apply and another
  /// after it; the counters are what let Select detect and restitch such
  /// a torn window, making the combined protocol the none-or-all
  /// guarantee. `pieces` must be in ascending shard order, as
  /// SplitByOwner emits.
  /// Atomicity is with respect to concurrent readers, not a transaction:
  /// a piece failing to apply (a protocol violation — the DA's signed
  /// messages always apply cleanly) stops the sequence and leaves the
  /// earlier pieces in place, exactly as ApplyUpdate always has; callers
  /// must treat a failure as fatal to the replica's integrity.
  Status ApplyPieces(const std::vector<ShardPiece>& pieces);

  /// Retain a freshly published summary and advance the freshness epoch.
  /// Summaries are server-wide (the DA's bitmap covers the whole rid
  /// space), so they live at the router level rather than in any shard.
  void AddSummary(UpdateSummary summary);

  /// Epoch bookkeeping: advanced by AddSummary, stamped onto every answer.
  const FreshnessTracker& freshness_tracker() const { return tracker_; }

  /// Per-call serving statistics (out-param, never instance state).
  struct SelectStats {
    size_t shards_queried = 0;    ///< sub-ranges fanned out
    size_t shards_nonempty = 0;   ///< sub-answers contributing records
    SigCache::AggStats agg;       ///< summed over the covered shards
  };

  /// Range selection with proof, stitched across the covered shards. The
  /// stitch is validated against the seam sequence counter and retried if
  /// a multi-shard ApplyPieces overlapped it, so the answer is always a
  /// seam-consistent cut that the unmodified verifier accepts.
  Result<SelectionAnswer> Select(int64_t lo, int64_t hi,
                                 SelectStats* stats = nullptr) const;

  /// Execute one query plan — the unified read path, every answer kind
  /// epoch-stamped and served under the same seam-consistency protocol as
  /// Select:
  ///  * kSelect wraps Select.
  ///  * kProject fans the range out per shard and stitches the digest
  ///    spine exactly like a selection (outer boundaries resolved by
  ///    global probes), summing the per-shard aggregates.
  ///  * kJoin proves each probe value from the shards covering its
  ///    composite range — match groups and absence witnesses stitch their
  ///    boundary keys across seams via the same global probes as
  ///    selection boundaries; certified Bloom partitions are consulted at
  ///    the router level. Because the per-value scans re-take shard locks,
  ///    a join validates the apply seqlock of *every* shard it examined
  ///    (never the single-cover fast path): a record cited for one value
  ///    must not be re-certified before a later value cites it again, or
  ///    the deduplicated aggregate would mix chain generations.
  Result<QueryAnswer> Execute(const Query& query,
                              SelectStats* stats = nullptr) const;

  /// Install / refresh the DA-certified Bloom partitions over S.B. Join
  /// plans snapshot the current set; the update stream re-installs the
  /// certified refresh at every rho-period summary barrier, so a served
  /// filter is never older than one period behind the published epoch.
  void SetJoinPartitions(std::vector<CertifiedPartition> partitions);

  /// Plan and pin a per-shard SigCache (lazy or eager refresh). Each shard
  /// is planned independently against the largest power-of-two prefix of
  /// its current size — sharding shrinks both the plan space and the blast
  /// radius of an insert/delete cache invalidation.
  void EnableSigCache(SigCache::RefreshMode mode, size_t max_pairs);

  size_t shard_count() const { return shards_.size(); }
  const ShardRouter& router() const { return router_; }
  uint64_t size() const;

  /// Seqlock contention counters: reads whose window an apply tore
  /// (restitched) and escalations to the all-shard-lock exclusive pass.
  /// Monotonic. Tests assert these are non-zero under churn so the
  /// atomicity guarantee is demonstrably exercised, not vacuously passed.
  uint64_t seam_restitches() const {
    return seam_restitches_.load(std::memory_order_relaxed);
  }
  uint64_t seam_exclusive_fallbacks() const {
    return seam_fallbacks_.load(std::memory_order_relaxed);
  }

  /// Direct shard access for tests and tools. NOT synchronized — do not
  /// call while other threads are serving traffic.
  QueryServer& shard(size_t i) { return *shards_[i]->qs; }

 private:
  struct Shard {
    std::unique_ptr<QueryServer> qs;
    mutable std::mutex mu;
    /// Seam seqlock: odd while a joint ApplyPieces involving this shard
    /// is in flight, bumped under the writer's lockset. Stitched reads
    /// validate the counters of exactly the shards they covered.
    mutable std::atomic<uint64_t> seam_seq{0};
    /// Apply seqlock: odd while *any* apply (single-shard or joint) to
    /// this shard is in flight. Reads validate it for exactly the shards
    /// their boundary probes examined — a probe re-reads a shard after
    /// the sub-read locks dropped, so even a single-shard apply (which
    /// cannot tear a stitch) can tear it, while applies to unexamined
    /// shards cannot affect any record the read cited.
    mutable std::atomic<uint64_t> apply_seq{0};
  };

  /// The reader half of the seqlock protocol, shared by every plan kind:
  /// runs `attempt(exclusive, visited)` optimistically — validating the
  /// seam counters of `seam_shards` and the apply counters of every shard
  /// the attempt marked visited — restitching torn windows up to the retry
  /// budget, then escalating to one exclusive pass under every shard lock.
  /// An attempt that covered at most one seam shard and visited nothing is
  /// atomic by construction and returns unvalidated (the fast path).
  template <typename T, typename AttemptFn>
  Result<T> RunValidated(const std::vector<size_t>& seam_shards,
                         AttemptFn&& attempt) const;

  /// One fan-out + stitch pass over `cover`. With `exclusive` false each
  /// sub-read takes its own shard lock (the caller must validate the
  /// seqlock counters around the pass); with `exclusive` true the caller
  /// already holds every shard lock, no locking happens inside, and the
  /// sub-reads run inline on the calling thread — never through the pool,
  /// whose workers may be parked on the locks the caller holds. In
  /// `visited` (may be null) the pass marks every shard a global boundary
  /// probe examined, i.e. read outside the sub-read locks — a
  /// single-cover pass that visited nothing is atomic by construction and
  /// needs no validation.
  Result<SelectionAnswer> SelectAttempt(
      int64_t lo, int64_t hi, const std::vector<ShardRouter::SubRange>& cover,
      SelectStats* stats, bool exclusive, std::vector<bool>* visited) const;

  /// One projection fan-out + stitch pass — the SelectAttempt shape with a
  /// digest spine instead of full records, same locking contract.
  Result<QueryAnswer> ProjectAttempt(
      const Query& query, const std::vector<ShardRouter::SubRange>& cover,
      SelectStats* stats, bool exclusive, std::vector<bool>* visited) const;

  /// One cross-shard join construction pass over the sorted distinct probe
  /// values. Marks every shard it scans or probes in `visited` (per-value
  /// scans re-take locks, so any apply to an examined shard can tear the
  /// pass), same locking contract as the other attempts. Snapshots the
  /// certified partitions itself, *after* reading the epoch: refreshes
  /// install before the epoch advances, so reading in the opposite order
  /// keeps the invariant that an answer stamped epoch e never cites a
  /// filter older than period e-1 (fresher than stamped is allowed).
  Result<QueryAnswer> JoinAttempt(const std::vector<int64_t>& values,
                                  JoinMethod method, bool exclusive,
                                  std::vector<bool>* visited) const;

  /// Global chain neighbors of `key`, probing outward from its owner shard
  /// (takes each probed shard's lock in turn unless `locked`, i.e. the
  /// caller holds every shard lock already). Marks each examined shard in
  /// `visited` when non-null — misses count: "no predecessor in this
  /// shard" is a claim a concurrent insert can falsify.
  std::optional<AuthTable::Item> GlobalPredecessor(
      int64_t key, bool locked, std::vector<bool>* visited) const;
  std::optional<AuthTable::Item> GlobalSuccessor(
      int64_t key, bool locked, std::vector<bool>* visited) const;

  std::shared_ptr<const BasContext> ctx_;
  ShardRouter router_;
  Options options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  mutable ThreadPool pool_;

  mutable std::atomic<uint64_t> seam_restitches_{0};
  mutable std::atomic<uint64_t> seam_fallbacks_{0};

  mutable std::mutex summaries_mu_;
  std::deque<UpdateSummary> summaries_;
  FreshnessTracker tracker_;

  /// Certified Bloom partitions, swapped wholesale on refresh; join
  /// attempts copy the shared_ptr and read a stable snapshot lock-free.
  mutable std::mutex partitions_mu_;
  std::shared_ptr<const std::vector<CertifiedPartition>> join_partitions_;
};

}  // namespace authdb

#endif  // AUTHDB_SERVER_SHARDED_QUERY_SERVER_H_
