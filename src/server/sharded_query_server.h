#ifndef AUTHDB_SERVER_SHARDED_QUERY_SERVER_H_
#define AUTHDB_SERVER_SHARDED_QUERY_SERVER_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/thread_annotations.h"

#include "core/epoch_snapshot.h"
#include "core/freshness.h"
#include "core/protocol.h"
#include "core/query_server.h"
#include "core/sigcache.h"
#include "server/admission.h"
#include "server/config.h"
#include "server/metrics.h"
#include "server/shard_executor.h"
#include "server/shard_router.h"

namespace authdb {

/// One published epoch of the whole sharded server: the per-shard immutable
/// snapshots plus everything a read needs to answer entirely from one
/// consistent cut — the retained summaries, the certified Bloom partitions,
/// and the epoch number the cut was published under. Readers pin a
/// descriptor with one atomic shared_ptr load and never take a lock; a
/// descriptor (and the chunks its snapshots share) stays alive exactly as
/// long as some reader pins it or it is the current epoch.
struct EpochDescriptor {
  uint64_t epoch = 0;
  std::vector<std::shared_ptr<const EpochSnapshot>> shards;
  /// Retained summary run (ascending seq, bounded by summaries_retained).
  std::shared_ptr<const std::deque<UpdateSummary>> summaries;
  /// Certified Bloom partitions over S.B installed at this epoch's barrier
  /// (or by a direct SetJoinPartitions); may be null when joins are off.
  std::shared_ptr<const std::vector<CertifiedPartition>> partitions;
  uint64_t total_size = 0;  ///< sum of shard snapshot sizes
};

/// A query-serving front end that partitions the key space across K shards
/// and serves the unified verified-query surface (Execute: selections,
/// projections, and authenticated equi-joins) from immutable, epoch-pinned
/// copy-on-write snapshots, stitching the per-shard answers into one answer
/// that the unmodified client-side verifier accepts.
///
/// Why stitching preserves the proofs: the DA signs every record chained to
/// its *global* neighbors, and the router's partition is contiguous in key
/// order. A record's shard-local predecessor (when one exists) is therefore
/// also its global predecessor, sub-answers from consecutive shards abut
/// exactly at the signed chain links, and the aggregate of the per-shard
/// BAS aggregates equals the aggregate the single-server path would have
/// produced. The only information a shard lacks is the chain neighbor that
/// lives *outside* its interval; the stitcher resolves those few boundary
/// keys by probing the adjacent shards' snapshots.
///
/// Consistency model — per-epoch snapshots, not seqlocks:
///  * Every read (Select / Execute) pins ONE EpochDescriptor for its whole
///    fan-out + stitch, including the global boundary probes and cross-
///    shard join stitching. The answer is a true serializable snapshot of
///    one published epoch: it can never mix pre- and post-update chain
///    generations, no matter how ingest races it. There is no retry loop,
///    no restitching, and no exclusive fallback — reads never contend
///    with ingest (the only lock a read can touch is the optional
///    per-shard SigCache's internal mutex, shared among readers of that
///    shard's cache; with the cache off, reads take no locks at all).
///  * The update stream builds the next epoch as copy-on-write deltas
///    against the serving snapshots (ShardVersionBuilder) and publishes it
///    atomically at the rho-period summary barrier (PublishEpoch): the new
///    descriptor carries the epoch's snapshots, summaries, and partition
///    refresh in one shared_ptr swap. Mid-period updates are therefore
///    invisible until their epoch publishes — `served_epoch` is exact, not
///    a lower bound.
///  * The direct ApplyUpdate path (bootstrap, tests, tools) applies and
///    republishes the current epoch immediately, preserving
///    read-your-writes for callers that do not run a stream.
///  * Epoch GC: a superseded descriptor is retired the moment its last
///    reader unpins it (shared_ptr refcount; untouched chunks survive via
///    structural sharing with newer epochs).
///    `ServerConfig::Serving::max_pinned_epochs` bounds how many retired
///    epochs stalled readers may keep alive before epoch publication
///    blocks — backpressure that propagates through the update stream's
///    apply queues to the producer.
///
/// Overload model — admission control (ServerConfig::Admission): with
/// admission enabled, ExecuteBatch routes every plan through the two-lane
/// AdmissionController before touching the engine. Plans that do not get
/// an execution slot are answered with AnswerOutcome::kShedRetryAfter —
/// an honest, payload-free, epoch-stamped refusal the client verifier
/// maps to ResourceExhausted (and a shed that carries payload to
/// VerificationFailed). Selections ride the priority lane; projections
/// and joins ride the bulk lane and shed first under pressure.
class ShardedQueryServer {
 public:
  /// `config` must pass ServerConfig::Validated(); the constructor
  /// CHECK-fails otherwise.
  ShardedQueryServer(std::shared_ptr<const BasContext> ctx,
                     ShardRouter router, const ServerConfig& config);

  /// Replay a DA update message on the direct path: the message is split
  /// by key ownership, applied to every owning shard's builder, and the
  /// current epoch is republished so the change is immediately visible
  /// (read-your-writes; the epoch number does not advance). Intended for
  /// bootstrap, tests, and tools: each call pays one chunk
  /// copy-on-write + descriptor install (O(chunk + chunks-per-shard)),
  /// so bulk loads at production scale should prefer the streaming path
  /// (ApplyToShardDeferred + one epoch publication), and direct
  /// publications should not run concurrently with a live update
  /// stream's mid-period ingest — see PublishEpoch's monotonicity guard.
  Status ApplyUpdate(const SignedRecordUpdate& msg) EXCLUDES(publish_mu_);

  /// One shard's slice of an update message, produced by SplitByOwner.
  struct ShardPiece {
    size_t shard;
    SignedRecordUpdate piece;
  };
  /// Split `msg` by key ownership without applying anything: the primary
  /// mutation to its owner shard, each re-certified record to *its* owner.
  /// An insert/delete near a shard seam re-chains a neighbor stored on the
  /// adjacent shard, so the split is what keeps each shard's signatures
  /// current.
  std::vector<ShardPiece> SplitByOwner(const SignedRecordUpdate& msg) const;

  /// Apply one piece to one shard's next-epoch builder WITHOUT publishing:
  /// the change becomes visible only when the epoch containing it is
  /// published (FreezeShard + PublishEpoch — the update stream's summary
  /// barrier). The piece must only touch keys the shard owns (i.e. come
  /// from SplitByOwner). Because visibility is deferred to the atomic
  /// epoch swap, the pieces of a seam-spanning message may be applied
  /// independently per shard, in any order — no rendezvous, no joint
  /// lockset, no torn reads.
  Status ApplyToShardDeferred(size_t shard, const SignedRecordUpdate& piece)
      EXCLUDES(publish_mu_);

  /// Freeze one shard's builder into its next immutable snapshot (cached
  /// and O(1) when the shard's delta is empty). The update stream calls
  /// this per shard as each apply queue reaches the summary barrier, so
  /// snapshot construction parallelizes across shards and the snapshot
  /// excludes anything pushed after the barrier.
  std::shared_ptr<const EpochSnapshot> FreezeShard(size_t shard);

  /// The epoch barrier: atomically publish a new EpochDescriptor built
  /// from `snaps` (one per shard, from FreezeShard), retain `summary` and
  /// advance the freshness epoch, and apply `partition_refresh` (when
  /// non-empty) so join state rides the same cadence and ordering as the
  /// bitmaps. The refresh is double-buffered: full rebuilds and delta
  /// merges are applied to a fresh copy of the current partitions vector
  /// (the shadow), and the descriptor swap is the switch — readers on a
  /// pinned epoch never observe a half-merged filter. Blocks when
  /// max_pinned_epochs retired epochs are still pinned by readers.
  void PublishEpoch(UpdateSummary summary,
                    std::vector<std::shared_ptr<const EpochSnapshot>> snaps,
                    PartitionRefresh partition_refresh) EXCLUDES(publish_mu_);

  /// Direct-path epoch advance (tests, tools, replayed tapes): freezes
  /// every shard inline and publishes, equivalent to a stream barrier that
  /// found every queue drained.
  void AddSummary(UpdateSummary summary) EXCLUDES(publish_mu_);
  /// Same, carrying the period's certified partition refresh so direct-path
  /// callers install filters and epoch in the same descriptor swap, exactly
  /// like the stream barrier.
  void AddSummary(UpdateSummary summary, PartitionRefresh partition_refresh)
      EXCLUDES(publish_mu_);

  /// Install / refresh the DA-certified Bloom partitions over S.B on the
  /// direct path (republishes the current epoch). The update stream
  /// installs refreshes through PublishEpoch instead, so a served filter
  /// is never older than one period behind the answer's epoch.
  void SetJoinPartitions(std::vector<CertifiedPartition> partitions)
      EXCLUDES(publish_mu_);

  /// Epoch bookkeeping: advanced by PublishEpoch/AddSummary, stamped onto
  /// every answer from the pinned descriptor.
  const FreshnessTracker& freshness_tracker() const { return tracker_; }

  /// Pin the currently published epoch. Readers do this internally; it is
  /// exposed for diagnostics and the epoch-GC tests — holding the returned
  /// pointer keeps that epoch's snapshots alive (and, with
  /// max_pinned_epochs set, eventually blocks publication: the stalled-
  /// reader backpressure path).
  std::shared_ptr<const EpochDescriptor> PinCurrentEpoch() const;

  /// Superseded epochs still alive because a reader pins them (the
  /// quantity max_pinned_epochs bounds). Diagnostics; approximate under
  /// concurrent publication.
  size_t pinned_epochs() const EXCLUDES(publish_mu_);

  /// Range selection with proof, stitched across the covered shards of
  /// one pinned epoch snapshot — wait-free under ingest, and always a
  /// serializable cut the unmodified verifier accepts. With admission
  /// enabled, a shed selection returns ResourceExhausted (SelectionAnswer
  /// has no outcome channel of its own).
  Result<SelectionAnswer> Select(int64_t lo, int64_t hi) const;

  /// Execute one query plan — the unified read path. Every plan kind
  /// (selection, projection, equi-join) runs against the same pinned
  /// descriptor: sub-range scans, digest spines, match groups, absence
  /// witnesses, boundary probes, and the certified Bloom partitions all
  /// come from one epoch, and the answer is stamped with exactly that
  /// epoch. Implemented as a batch of one — Execute and ExecuteBatch
  /// cannot drift.
  Result<QueryAnswer> Execute(const Query& query) const;

  /// Execute a batch of plans against ONE pinned epoch — the batched read
  /// path. The whole batch pins a single EpochDescriptor (every answer is
  /// the same serializable cut), visits each covered shard once (per-shard
  /// task queues, shard-affine workers), walks each shard's snapshot
  /// forward once over the batch's sorted sub-ranges and join probes, and
  /// finalizes the batch's aggregate signatures with shared batch
  /// inversions. Answers are byte-for-byte the answers the one-at-a-time
  /// Execute path produces, in plan order — each independently acceptable
  /// to the unmodified client verifier. With admission enabled, plans the
  /// controller refuses come back as ok() results carrying
  /// AnswerOutcome::kShedRetryAfter (still in plan order).
  std::vector<Result<QueryAnswer>> ExecuteBatch(const PlanBatch& batch) const;

  /// One consistent snapshot of the serving-side counters: execution
  /// (exec.*), admission control (admission.*), and epoch publication
  /// (epoch.*). Cheap (relaxed atomic loads + one short admission lock);
  /// safe to call from any thread at any time. Ingest counters (ingest.*)
  /// are filled by UpdateStream::Metrics(), which wraps this.
  ServerMetrics Metrics() const;

  /// Plan and pin a per-shard SigCache with generation-tagged windows.
  /// Each shard is planned independently against the largest power-of-two
  /// prefix of its current snapshot; cached windows are keyed on the
  /// shard's chain generation, so epochs that leave a shard untouched keep
  /// its cache hot while any delta invalidates exactly that shard's
  /// windows (never mixing generations).
  void EnableSigCache(SigCache::RefreshMode mode, size_t max_pairs)
      EXCLUDES(publish_mu_);

  /// Online planner retune (Algorithm 1, re-run against live telemetry):
  /// re-plans every enabled shard against its *current* snapshot size and
  /// generation, with the assumed harmonic cardinality distribution
  /// blended toward uniform by the observed leaf-fetch share of the
  /// aggregation work since the previous retune (leaf fetches are exactly
  /// the aggregations the pinned windows failed to cover). A shard whose
  /// plan comes out unchanged keeps its warm windows; a changed plan is
  /// swapped in atomically under live readers (in-flight visits finish on
  /// the slot they loaded). Returns the number of shards re-planned.
  /// Called automatically every serving.sigcache_retune_publications
  /// epoch barriers, or manually from a quiesced or serving phase.
  size_t RetuneSigCache() EXCLUDES(publish_mu_);

  size_t shard_count() const { return shards_.size(); }
  const ShardRouter& router() const { return router_; }
  /// Total records in the currently published epoch (one descriptor pin —
  /// snapshot-consistent, unlike a per-shard walk).
  uint64_t size() const;

 private:
  struct Shard {
    /// The barrier context lets Freeze() precompute per-chunk chain
    /// aggregates (write-once, shared across epochs like the chunks).
    explicit Shard(std::shared_ptr<const BasContext> ctx)
        : builder(/*chunk_target=*/128, std::move(ctx)) {}
    /// Guards the builder (writers only; readers pin snapshots).
    mutable Mutex mu;
    ShardVersionBuilder builder GUARDED_BY(mu);
    /// One planned cache generation for the shard: the cache itself, the
    /// n it was planned for (bypassed whenever the serving snapshot
    /// shrank below that), and the plan it pinned (so a retune that
    /// re-derives the same plan keeps the warm windows).
    struct CacheSlot {
      std::shared_ptr<SigCache> cache;
      size_t positions = 0;
      uint64_t planned_generation = 0;  ///< shard generation at planning
      std::vector<SigCachePlanner::Choice> plan;
    };
    /// Installed by EnableSigCache / RetuneSigCache, read lock-free by the
    /// batch engine (std::atomic_* shared_ptr access) so retunes can swap
    /// a shard's plan under live readers; null until EnableSigCache.
    std::shared_ptr<const CacheSlot> cache_slot;
  };

  /// The batched read-path engine (server/batch_exec.cc). It plans the
  /// batch's per-shard request lists, runs the shard visits, and stitches
  /// the answers from the ShardedQueryServer's private state.
  friend class BatchEngine;

  /// Global chain neighbors of `key` within the pinned descriptor,
  /// probing outward from its owner shard. Lock-free: the descriptor is
  /// immutable, so probes can never be torn by concurrent ingest.
  const SnapshotItem* GlobalPredecessor(const EpochDescriptor& desc,
                                        int64_t key) const;
  const SnapshotItem* GlobalSuccessor(const EpochDescriptor& desc,
                                      int64_t key) const;

  /// Attach every retained summary published at/after `oldest_ts`.
  static void AttachSummaries(const EpochDescriptor& desc, uint64_t oldest_ts,
                              std::vector<UpdateSummary>* out);

  /// Build + install a descriptor from `snaps` under publish_mu_ (held by
  /// the caller), retiring the previous descriptor into the GC list.
  void InstallDescriptorLocked(
      std::vector<std::shared_ptr<const EpochSnapshot>> snaps)
      REQUIRES(publish_mu_);
  /// Freeze every shard and republish the current epoch (direct path).
  void RepublishLocked() REQUIRES(publish_mu_);
  /// RetuneSigCache's body; PublishEpoch calls it at the configured
  /// cadence while already holding the publish lock.
  size_t RetuneSigCacheLocked() REQUIRES(publish_mu_);
  /// Plan one shard's cache slot over `n` positions (power-of-two floor
  /// applied internally), with the harmonic assumption blended toward
  /// uniform by weight `uniform_w` in [0, 1]. Returns null when the shard
  /// is too small to cache.
  std::shared_ptr<const Shard::CacheSlot> BuildCacheSlot(
      uint64_t n, uint64_t generation, double uniform_w,
      SigCache::RefreshMode mode, size_t max_pairs) const;
  /// Superseded-but-pinned epoch count; prunes dead entries. Held under
  /// pin_sync_->mu, not publish_mu_, so it stays callable while a
  /// backpressured publisher holds the publish lock.
  size_t LivePinnedLocked() const REQUIRES(pin_sync_->mu);

  std::shared_ptr<const BasContext> ctx_;
  ShardRouter router_;
  ServerConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  mutable ShardExecutor exec_;
  FreshnessTracker tracker_;
  /// Cumulative execution counters (relaxed atomics; ExecuteBatch folds
  /// one BatchExecStats per call, Metrics() snapshots).
  mutable MetricsCore metrics_;
  /// Present iff config_.admission.enabled.
  std::unique_ptr<AdmissionController> admission_;

  /// Notified by the descriptor deleter when a retired epoch fully drains
  /// (its last reader unpinned it) — what PublishEpoch's backpressure
  /// waits on. Shared with the deleters so late unpins outlive the server.
  struct PinSync {
    Mutex mu;
    CondVar cv;
  };
  std::shared_ptr<PinSync> pin_sync_;

  /// Serializes publication (stream barriers, direct applies, partition
  /// installs). Readers never take it — they atomic-load current_.
  mutable Mutex publish_mu_;
  std::shared_ptr<const EpochDescriptor> current_;  ///< std::atomic_* access
  /// Superseded descriptors, kept weakly for the pinned-epoch accounting;
  /// pruned on publication and when the list grows. Guarded by
  /// pin_sync_->mu, NOT publish_mu_, so the count stays observable while
  /// a backpressured publisher holds the publish lock.
  mutable std::vector<std::weak_ptr<const EpochDescriptor>> retired_
      GUARDED_BY(pin_sync_->mu);

  /// Publication-side state the next descriptor is assembled from
  /// (guarded by publish_mu_).
  std::shared_ptr<const std::deque<UpdateSummary>> summaries_
      GUARDED_BY(publish_mu_);
  std::shared_ptr<const std::vector<CertifiedPartition>> partitions_
      GUARDED_BY(publish_mu_);

  /// SigCache configuration + retune bookkeeping. Set by EnableSigCache,
  /// consumed by the retuner (publishers already serialize on publish_mu_).
  bool cache_enabled_ GUARDED_BY(publish_mu_) = false;
  SigCache::RefreshMode cache_mode_ GUARDED_BY(publish_mu_) =
      SigCache::RefreshMode::kLazy;
  size_t cache_max_pairs_ GUARDED_BY(publish_mu_) = 0;
  /// Aggregation-counter baselines of the previous retune window.
  uint64_t retune_window_hits_ GUARDED_BY(publish_mu_) = 0;
  uint64_t retune_leaf_fetches_ GUARDED_BY(publish_mu_) = 0;
  /// Publications since the last automatic retune.
  size_t retune_countdown_ GUARDED_BY(publish_mu_) = 0;
};

}  // namespace authdb

#endif  // AUTHDB_SERVER_SHARDED_QUERY_SERVER_H_
