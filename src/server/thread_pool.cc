#include "server/thread_pool.h"

#include <memory>
#include <utility>

namespace authdb {

ThreadPool::ThreadPool(size_t workers) {
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i)
    workers_.emplace_back([this] { WorkerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::RunAll(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  // Inline everything when there is nothing to overlap with.
  if (workers_.empty() || tasks.size() == 1) {
    for (auto& t : tasks) t();
    return;
  }
  auto latch = std::make_shared<Latch>();
  latch->remaining = tasks.size() - 1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i + 1 < tasks.size(); ++i) {
      queue_.emplace_back([latch, task = std::move(tasks[i])] {
        task();
        std::lock_guard<std::mutex> l(latch->mu);
        if (--latch->remaining == 0) latch->cv.notify_one();
      });
    }
  }
  cv_.notify_all();
  tasks.back()();  // caller's share
  std::unique_lock<std::mutex> l(latch->mu);
  latch->cv.wait(l, [&] { return latch->remaining == 0; });
}

}  // namespace authdb
