#include "server/thread_pool.h"

#include <memory>
#include <utility>

namespace authdb {

ThreadPool::ThreadPool(size_t workers) {
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i)
    workers_.emplace_back([this] { WorkerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) cv_.Wait(mu_);
      if (queue_.empty()) return;  // stop_ set and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::RunAll(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  // Inline everything when there is nothing to overlap with.
  if (workers_.empty() || tasks.size() == 1) {
    for (auto& t : tasks) t();
    return;
  }
  auto latch = std::make_shared<Latch>();
  {
    // Uncontended (the latch is not yet shared); taken so the analysis sees
    // the guarded initialization.
    MutexLock l(latch->mu);
    latch->remaining = tasks.size() - 1;
  }
  {
    MutexLock lock(mu_);
    for (size_t i = 0; i + 1 < tasks.size(); ++i) {
      queue_.emplace_back([latch, task = std::move(tasks[i])] {
        task();
        MutexLock l(latch->mu);
        if (--latch->remaining == 0) latch->cv.NotifyOne();
      });
    }
  }
  cv_.NotifyAll();
  tasks.back()();  // caller's share
  MutexLock l(latch->mu);
  while (latch->remaining != 0) latch->cv.Wait(latch->mu);
}

}  // namespace authdb
