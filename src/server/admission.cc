#include "server/admission.h"

#include "common/clock.h"

namespace authdb {

AdmissionController::AdmissionController(const ServerConfig::Admission& opts)
    : max_inflight_(opts.max_inflight_plans),
      queue_depth_(opts.queue_depth),
      starvation_bound_(opts.starvation_bound),
      retry_after_micros_(opts.retry_after_micros) {}

bool AdmissionController::TurnOfLocked(Lane lane) const {
  if (lane == Lane::kPriority) {
    // A priority plan yields only when the bulk lane is owed a
    // starvation grant.
    return !(bulk_waiting_ > 0 && priority_streak_ >= starvation_bound_);
  }
  // Bulk goes when no priority work is waiting, or when priority has had
  // its streak and must let one bulk plan through.
  return priority_waiting_ == 0 || priority_streak_ >= starvation_bound_;
}

void AdmissionController::GrantLocked(Lane lane) {
  ++inflight_;
  if (lane == Lane::kPriority) {
    ++priority_grants_;
    ++priority_streak_;
  } else {
    ++bulk_grants_;
    if (priority_waiting_ > 0 && priority_streak_ >= starvation_bound_)
      ++starvation_grants_;
    priority_streak_ = 0;
  }
}

void AdmissionController::CountAdmitLocked(QueryKind kind) {
  ++admitted_total_;
  switch (kind) {
    case QueryKind::kSelect: ++select_admitted_; break;
    case QueryKind::kProject: ++project_admitted_; break;
    case QueryKind::kJoin: ++join_admitted_; break;
  }
}

void AdmissionController::CountShedLocked(QueryKind kind) {
  ++shed_total_;
  switch (kind) {
    case QueryKind::kSelect: ++select_shed_; break;
    case QueryKind::kProject: ++project_shed_; break;
    case QueryKind::kJoin: ++join_shed_; break;
  }
}

size_t AdmissionController::AdmitPlans(const std::vector<QueryKind>& kinds,
                                       std::vector<uint8_t>* admitted) {
  admitted->assign(kinds.size(), 0);
  size_t granted = 0;
  MutexLock lock(mu_);
  for (size_t i = 0; i < kinds.size(); ++i) {
    const Lane lane = LaneOf(kinds[i]);
    if (inflight_ < max_inflight_ && TurnOfLocked(lane)) {
      GrantLocked(lane);
      CountAdmitLocked(kinds[i]);
      (*admitted)[i] = 1;
      ++granted;
      continue;
    }
    // Blocking is permitted only while this call holds no slots — a slot
    // holder parked on the queue could deadlock against other holders.
    const bool may_wait = granted == 0;
    size_t& waiting = lane == Lane::kPriority ? priority_waiting_ : bulk_waiting_;
    if (!may_wait || waiting >= queue_depth_) {
      CountShedLocked(kinds[i]);
      continue;
    }
    CondVar& cv = lane == Lane::kPriority ? priority_cv_ : bulk_cv_;
    const uint64_t t0 = MonotonicMicros();
    ++waiting;
    if (priority_waiting_ + bulk_waiting_ > queue_depth_max_)
      queue_depth_max_ = priority_waiting_ + bulk_waiting_;
    while (!(inflight_ < max_inflight_ && TurnOfLocked(lane))) cv.Wait(mu_);
    --waiting;
    queue_wait_us_ += MonotonicMicros() - t0;
    GrantLocked(lane);
    CountAdmitLocked(kinds[i]);
    (*admitted)[i] = 1;
    ++granted;
  }
  return granted;
}

void AdmissionController::Release(size_t n) {
  if (n == 0) return;
  bool wake_priority, wake_bulk;
  {
    MutexLock lock(mu_);
    inflight_ = inflight_ >= n ? inflight_ - n : 0;
    // Wake whichever lane the freed slots should go to. Waking both is
    // harmless (waiters re-check the turn predicate) but notifying the
    // losing lane on every release is wasted wakeups under load.
    wake_bulk = bulk_waiting_ > 0 &&
                (priority_waiting_ == 0 || priority_streak_ >= starvation_bound_);
    wake_priority = priority_waiting_ > 0;
  }
  if (wake_priority) priority_cv_.NotifyAll();
  if (wake_bulk) bulk_cv_.NotifyAll();
}

void AdmissionController::Snapshot(ServerMetrics::Admission* out) const {
  MutexLock lock(mu_);
  out->enabled = true;
  out->admitted_total = admitted_total_;
  out->shed_total = shed_total_;
  out->select_admitted = select_admitted_;
  out->select_shed = select_shed_;
  out->project_admitted = project_admitted_;
  out->project_shed = project_shed_;
  out->join_admitted = join_admitted_;
  out->join_shed = join_shed_;
  out->priority_grants = priority_grants_;
  out->bulk_grants = bulk_grants_;
  out->starvation_grants = starvation_grants_;
  out->queue_wait_us = queue_wait_us_;
  out->queue_depth_max = queue_depth_max_;
}

}  // namespace authdb
