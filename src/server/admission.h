#ifndef AUTHDB_SERVER_ADMISSION_H_
#define AUTHDB_SERVER_ADMISSION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/thread_annotations.h"
#include "core/protocol.h"
#include "server/config.h"
#include "server/metrics.h"

namespace authdb {

/// Two-lane admission control for the read path.
///
/// Plans compete for `max_inflight_plans` execution slots through two
/// lanes: *priority* (kSelect — the freshness-critical point/range reads
/// the verification protocol is built around) and *bulk* (kProject and
/// kJoin — the heavy scans). When no slot is free, at most one caller per
/// batch parks in its lane's bounded intake queue; everything beyond the
/// queue bound is shed immediately with AnswerOutcome::kShedRetryAfter so
/// overload degrades into fast, explicit rejections instead of unbounded
/// queueing collapse.
///
/// Lane policy: a free slot goes to the priority lane first. To keep bulk
/// work from starving outright, after `starvation_bound` consecutive
/// priority grants with bulk work waiting, one bulk waiter is admitted
/// ahead of the priority queue (counted as a starvation grant).
///
/// Deadlock discipline: a caller may block for a slot ONLY while it holds
/// no slots (AdmitPlans lets the batch's first plan wait; every later plan
/// in the same batch is admit-or-shed). Slot holders therefore never wait
/// on other slot holders, so Release() always eventually runs.
class AdmissionController {
 public:
  explicit AdmissionController(const ServerConfig::Admission& opts);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Decide admission for one batch's plans, in order. On return,
  /// (*admitted)[i] is non-zero iff kinds[i] holds an execution slot. The
  /// first plan may block (bounded intake queue) until a slot frees;
  /// subsequent plans are granted only if a slot is immediately free and
  /// no higher-precedence waiter would be bypassed. Returns the number of
  /// slots granted — the caller owes exactly one Release(n) for it.
  size_t AdmitPlans(const std::vector<QueryKind>& kinds,
                    std::vector<uint8_t>* admitted) EXCLUDES(mu_);

  /// Return `n` slots taken by a prior AdmitPlans call.
  void Release(size_t n) EXCLUDES(mu_);

  /// Fill the admission section of a metrics snapshot.
  void Snapshot(ServerMetrics::Admission* out) const EXCLUDES(mu_);

  uint64_t retry_after_micros() const { return retry_after_micros_; }

 private:
  enum class Lane { kPriority, kBulk };
  static Lane LaneOf(QueryKind kind) {
    return kind == QueryKind::kSelect ? Lane::kPriority : Lane::kBulk;
  }

  /// True when a free slot should go to `lane` right now, honoring the
  /// priority-first / starvation-bound policy against current waiters.
  bool TurnOfLocked(Lane lane) const REQUIRES(mu_);

  /// Take one slot for `lane` (slot availability and turn already
  /// established) and update the grant bookkeeping.
  void GrantLocked(Lane lane) REQUIRES(mu_);

  void CountShedLocked(QueryKind kind) REQUIRES(mu_);
  void CountAdmitLocked(QueryKind kind) REQUIRES(mu_);

  const size_t max_inflight_;
  const size_t queue_depth_;
  const size_t starvation_bound_;
  const uint64_t retry_after_micros_;

  mutable Mutex mu_;
  CondVar priority_cv_;
  CondVar bulk_cv_;
  size_t inflight_ GUARDED_BY(mu_) = 0;
  size_t priority_waiting_ GUARDED_BY(mu_) = 0;
  size_t bulk_waiting_ GUARDED_BY(mu_) = 0;
  /// Consecutive priority grants since the last bulk grant; reaching
  /// starvation_bound_ with bulk waiters present flips the turn.
  size_t priority_streak_ GUARDED_BY(mu_) = 0;

  // Counters (all GUARDED_BY(mu_); snapshots take the lock briefly).
  uint64_t admitted_total_ GUARDED_BY(mu_) = 0;
  uint64_t shed_total_ GUARDED_BY(mu_) = 0;
  uint64_t select_admitted_ GUARDED_BY(mu_) = 0;
  uint64_t select_shed_ GUARDED_BY(mu_) = 0;
  uint64_t project_admitted_ GUARDED_BY(mu_) = 0;
  uint64_t project_shed_ GUARDED_BY(mu_) = 0;
  uint64_t join_admitted_ GUARDED_BY(mu_) = 0;
  uint64_t join_shed_ GUARDED_BY(mu_) = 0;
  uint64_t priority_grants_ GUARDED_BY(mu_) = 0;
  uint64_t bulk_grants_ GUARDED_BY(mu_) = 0;
  uint64_t starvation_grants_ GUARDED_BY(mu_) = 0;
  uint64_t queue_wait_us_ GUARDED_BY(mu_) = 0;
  uint64_t queue_depth_max_ GUARDED_BY(mu_) = 0;
};

}  // namespace authdb

#endif  // AUTHDB_SERVER_ADMISSION_H_
