// The batched execution engine behind ShardedQueryServer's read path
// (ExecuteBatch; Select and Execute are batches of one).
//
// Batch shape: the whole PlanBatch pins ONE EpochDescriptor, so every
// answer is the same serializable cut. Planning splits each valid plan
// into per-shard requests — selection/projection sub-ranges and per-value
// join probes — and each covered shard is then visited exactly once per
// batch on its shard-affine worker. A visit sorts its requests by low key
// and walks the immutable snapshot forward once (EpochSnapshot::
// ForwardCursor: galloping rank lookups in key order), aggregates
// selection sub-ranges either through ONE generation-tagged
// SigCache::RangeAggregateBatch call or into Jacobian accumulators, and
// the front end stitches per-plan answers and finalizes every plan-level
// aggregate with one shared batch inversion (BasContext::FinalizeBatch).
//
// Equivalence contract: answers are byte-for-byte the answers the
// sequential path produced — EC point addition is commutative and
// associative, affine coordinates are a unique representation, and the
// stitch logic below mirrors the per-plan logic statement for statement —
// so the unmodified ClientVerifier::VerifyAnswerFresh accepts them.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <iterator>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "core/chain.h"
#include "server/sharded_query_server.h"

namespace authdb {

namespace {
using Clock = std::chrono::steady_clock;

uint64_t ElapsedUs(Clock::time_point a, Clock::time_point b) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(b - a).count());
}
}  // namespace

class BatchEngine {
 public:
  BatchEngine(const ShardedQueryServer& srv, const EpochDescriptor& desc)
      : srv_(srv), desc_(desc), curve_(srv.ctx_->curve()) {}

  /// Execute the batch, filling `stats` (one call's tally — the caller
  /// folds it into the server's cumulative MetricsCore).
  std::vector<Result<QueryAnswer>> Run(const PlanBatch& batch,
                                       BatchExecStats* stats);

 private:
  /// One selection/projection sub-range on one shard (a router cover
  /// entry of its plan's key range).
  struct RangeReq {
    size_t plan = 0;
    size_t shard = 0;
    int64_t lo = 0, hi = 0;
    bool project = false;
  };
  struct RangeRes {
    bool nonempty = false;
    int64_t left_key = kChainMinusInf;
    int64_t right_key = kChainPlusInf;
    // Selection: matched items plus the sub-range aggregate — Jacobian
    // (leaf path) or affine (the shared SigCache batch call).
    std::vector<const SnapshotItem*> items;
    CurveGroup::Jacobian agg{};
    BasSignature cache_agg;
    bool cache_used = false;
    SigCache::AggStats agg_stats;
    // Projection: tuples + digest spine + deferred attr/chain aggregate.
    Status error = Status::OK();
    std::vector<ProjectedTuple> tuples;
    std::vector<Digest160> digests;
    CurveGroup::Jacobian proj_agg{};
    uint64_t oldest_ts = ~uint64_t{0};
  };
  /// One join probe value's sub-range on one shard.
  struct ProbeReq {
    size_t plan = 0;
    size_t value = 0;  ///< index into the plan's deduplicated probe values
    size_t shard = 0;
    int64_t lo = 0, hi = 0;
    bool first = false, last = false;  ///< cover-edge flags for boundaries
  };
  struct ProbeRes {
    std::vector<const SnapshotItem*> items;
    const SnapshotItem* left_b = nullptr;   ///< set on the first cover edge
    const SnapshotItem* right_b = nullptr;  ///< set on the last cover edge
  };
  struct PlanWork {
    bool valid = false;
    std::vector<size_t> range_reqs;               ///< cover order
    std::vector<int64_t> values;                  ///< join probes, dedup'd
    std::vector<std::vector<size_t>> probe_reqs;  ///< per value, cover order
    size_t shards_queried = 0;
  };

  Status ValidateAndPlan(const Query& q, size_t p);
  void Visit(size_t shard, const std::vector<size_t>& rr,
             const std::vector<size_t>& pr, ShardBusy* busy,
             size_t* finalizes);

  Result<QueryAnswer> StitchSelect(size_t p, const Query& q,
                                   BasAccumulator* acc, bool* needs_final,
                                   BatchExecStats* bs);
  Result<QueryAnswer> StitchProject(size_t p, const Query& q,
                                    BasAccumulator* acc, bool* needs_final,
                                    BatchExecStats* bs);
  Result<QueryAnswer> StitchJoin(size_t p, const Query& q,
                                 BasAccumulator* acc, bool* needs_final,
                                 BatchExecStats* bs);

  const ShardedQueryServer& srv_;
  const EpochDescriptor& desc_;
  const CurveGroup& curve_;

  std::vector<PlanWork> work_;
  std::vector<std::vector<uint32_t>> plan_attrs_;  ///< projection plans
  std::vector<RangeReq> range_reqs_;
  std::vector<RangeRes> range_res_;
  std::vector<ProbeReq> probe_reqs_;
  std::vector<ProbeRes> probe_res_;
};

Status BatchEngine::ValidateAndPlan(const Query& q, size_t p) {
  PlanWork& work = work_[p];
  switch (q.kind) {
    case QueryKind::kSelect:
    case QueryKind::kProject: {
      if (q.lo > q.hi) return Status::InvalidArgument("lo > hi");
      if (q.lo == kChainMinusInf || q.hi == kChainPlusInf)
        return Status::InvalidArgument("range touches chain sentinels");
      if (q.kind == QueryKind::kProject)
        plan_attrs_[p] = EffectiveProjectionAttrs(q.attr_indices);
      const std::vector<ShardRouter::SubRange> cover =
          srv_.router_.Cover(q.lo, q.hi);
      work.shards_queried = cover.size();
      for (const ShardRouter::SubRange& sr : cover) {
        work.range_reqs.push_back(range_reqs_.size());
        range_reqs_.push_back(RangeReq{p, sr.shard, sr.lo, sr.hi,
                                       q.kind == QueryKind::kProject});
      }
      work.valid = true;
      return Status::OK();
    }
    case QueryKind::kJoin: {
      if (q.join_values.empty())
        return Status::InvalidArgument("join without probe values");
      std::vector<int64_t> values = q.join_values;
      std::sort(values.begin(), values.end());
      values.erase(std::unique(values.begin(), values.end()), values.end());
      for (int64_t a : values) {
        if (!JoinBValueInDomain(a))
          return Status::InvalidArgument("join probe value outside B domain");
      }
      std::vector<bool> touched(desc_.shards.size(), false);
      work.probe_reqs.resize(values.size());
      for (size_t vi = 0; vi < values.size(); ++vi) {
        const int64_t clo = JoinCompositeKey(values[vi], 0);
        const int64_t chi = JoinCompositeKey(values[vi], kJoinMaxDup);
        const std::vector<ShardRouter::SubRange> cover =
            srv_.router_.Cover(clo, chi);
        for (size_t i = 0; i < cover.size(); ++i) {
          const ShardRouter::SubRange& sr = cover[i];
          touched[sr.shard] = true;
          work.probe_reqs[vi].push_back(probe_reqs_.size());
          probe_reqs_.push_back(ProbeReq{p, vi, sr.shard, sr.lo, sr.hi,
                                         i == 0, i + 1 == cover.size()});
        }
      }
      for (bool t : touched) work.shards_queried += t ? 1 : 0;
      work.values = std::move(values);
      work.valid = true;
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown query kind");
}

void BatchEngine::Visit(size_t shard, const std::vector<size_t>& rr,
                        const std::vector<size_t>& pr, ShardBusy* busy,
                        size_t* finalizes) {
  const Clock::time_point visit_start = Clock::now();
  const EpochSnapshot& snap = *desc_.shards[shard];

  // The batch's one walk order over this snapshot: every request sorted by
  // low key, so the forward cursor only ever gallops ahead.
  struct Unit {
    int64_t lo;
    bool probe;
    size_t idx;
  };
  std::vector<Unit> units;
  units.reserve(rr.size() + pr.size());
  for (size_t i : rr) units.push_back(Unit{range_reqs_[i].lo, false, i});
  for (size_t i : pr) units.push_back(Unit{probe_reqs_[i].lo, true, i});
  std::sort(units.begin(), units.end(), [](const Unit& a, const Unit& b) {
    if (a.lo != b.lo) return a.lo < b.lo;
    if (a.probe != b.probe) return !a.probe;  // deterministic tie-break
    return a.idx < b.idx;
  });

  // One atomic slot load per visit: the online retuner may swap a shard's
  // plan mid-serving, and this visit finishes on whatever slot it loaded.
  std::shared_ptr<const ShardedQueryServer::Shard::CacheSlot> cache_slot =
      std::atomic_load(&srv_.shards_[shard]->cache_slot);
  SigCache* cache = cache_slot == nullptr ? nullptr : cache_slot->cache.get();
  // Generation-tagged windows: reused only for readers pinned to the same
  // chain generation, recomputed from this snapshot otherwise — cached
  // aggregates never mix generations. (Bypassed when the shard shrank
  // below the planned position count, where node coverage could reach
  // past the snapshot.)
  const bool cache_ok =
      cache != nullptr && snap.size() >= cache_slot->positions;
  std::vector<SigCache::RangeSpec> cache_ranges;
  std::vector<size_t> cache_req;  ///< RangeRes index per cache range

  EpochSnapshot::ForwardCursor cur(snap);
  uint64_t select_us = 0, project_us = 0, join_us = 0;
  for (const Unit& u : units) {
    const Clock::time_point t0 = Clock::now();
    if (u.probe) {
      const ProbeReq& req = probe_reqs_[u.idx];
      ProbeRes& res = probe_res_[u.idx];
      size_t lo_r = cur.LowerBound(req.lo);
      size_t hi_r = cur.UpperBoundFrom(lo_r, req.hi);
      // The cover-edge sub-scans also report the shard-local boundary
      // items (the global chain neighbors when present).
      if (req.first && lo_r > 0) res.left_b = &snap.ItemAt(lo_r - 1);
      if (req.last && hi_r < snap.size()) res.right_b = &snap.ItemAt(hi_r);
      if (lo_r < hi_r) {
        res.items.reserve(hi_r - lo_r);
        snap.ForEachItem(lo_r, hi_r - 1, [&res](const SnapshotItem& item) {
          res.items.push_back(&item);
        });
      }
      join_us += ElapsedUs(t0, Clock::now());
      continue;
    }
    const RangeReq& req = range_reqs_[u.idx];
    RangeRes& res = range_res_[u.idx];
    size_t lo_r = cur.LowerBound(req.lo);
    size_t hi_r = cur.UpperBoundFrom(lo_r, req.hi);
    if (lo_r == hi_r) {  // no hits in this shard
      (req.project ? project_us : select_us) += ElapsedUs(t0, Clock::now());
      continue;
    }
    res.nonempty = true;
    if (lo_r > 0) res.left_key = snap.ItemAt(lo_r - 1).key();
    if (hi_r < snap.size()) res.right_key = snap.ItemAt(hi_r).key();
    if (!req.project) {
      res.items.reserve(hi_r - lo_r);
      snap.ForEachItem(lo_r, hi_r - 1, [&res](const SnapshotItem& item) {
        res.items.push_back(&item);
      });
      if (cache_ok) {
        res.cache_used = true;
        cache_ranges.push_back(SigCache::RangeSpec{lo_r, hi_r - 1});
        cache_req.push_back(u.idx);
      } else {
        BasAccumulator acc;
        for (const SnapshotItem* item : res.items) acc.Add(curve_, item->sig);
        res.agg = acc.jac;  // finalized with the plan's shared inversion
        res.agg_stats.leaf_fetches += res.items.size();
        res.agg_stats.point_adds +=
            res.items.empty() ? 0 : res.items.size() - 1;
      }
      select_us += ElapsedUs(t0, Clock::now());
    } else {
      const std::vector<uint32_t>& attrs = plan_attrs_[req.plan];
      BasAccumulator acc;
      bool failed = false;
      // Records visited by the walk; their digest spine is computed after
      // the walk in one multi-buffer SHA pass (the items live in the
      // pinned snapshot, so the pointers stay valid).
      std::vector<const Record*> spine;
      snap.ForEachItem(lo_r, hi_r - 1, [&](const SnapshotItem& item) {
        if (failed) return;  // already failed: skip the rest
        const Record& rec = item.record;
        if (item.attr_sigs.empty()) {
          res.error = Status::InvalidArgument(
              "projection unavailable: no attribute signatures for key " +
              std::to_string(rec.key()));
          failed = true;
          return;
        }
        ProjectedTuple tuple;
        tuple.rid = rec.rid;
        tuple.ts = rec.ts;
        for (uint32_t a : attrs) {
          if (a >= rec.attrs.size() || a >= item.attr_sigs.size()) {
            res.error =
                Status::InvalidArgument("projected attribute out of range");
            failed = true;
            return;
          }
          tuple.attr_indices.push_back(a);
          tuple.values.push_back(rec.attrs[a]);
          acc.Add(curve_, item.attr_sigs[a]);
        }
        res.tuples.push_back(std::move(tuple));
        spine.push_back(&rec);
        acc.Add(curve_, item.sig);  // chain signature (completeness spine)
        res.oldest_ts = std::min(res.oldest_ts, rec.ts);
      });
      if (!failed) {
        res.proj_agg = acc.jac;
        res.digests.resize(spine.size());
        RecordDigestMany(spine.data(), spine.size(), res.digests.data());
      }
      project_us += ElapsedUs(t0, Clock::now());
    }
  }

  if (!cache_ranges.empty()) {
    // Every cached selection sub-range of this visit in ONE tagged call:
    // one lock hold, one shared inversion across window fills + results.
    const Clock::time_point t0 = Clock::now();
    std::vector<SigCache::AggStats> per_range(cache_ranges.size());
    std::vector<BasSignature> sigs = cache->RangeAggregateBatch(
        cache_ranges, snap.generation(),
        [&snap](size_t pos) { return snap.ItemAt(pos).sig; }, &per_range,
        [&snap](size_t pos, size_t hi, ECPoint* agg) {
          return snap.ChunkAggregateAt(pos, hi, agg);
        });
    for (size_t k = 0; k < cache_req.size(); ++k) {
      range_res_[cache_req[k]].cache_agg = std::move(sigs[k]);
      range_res_[cache_req[k]].agg_stats = per_range[k];
    }
    ++*finalizes;
    select_us += ElapsedUs(t0, Clock::now());
  }

  busy->select_us += select_us;
  busy->project_us += project_us;
  busy->join_us += join_us;
  busy->visit_us += ElapsedUs(visit_start, Clock::now());
}

Result<QueryAnswer> BatchEngine::StitchSelect(size_t p, const Query& q,
                                              BasAccumulator* acc,
                                              bool* needs_final,
                                              BatchExecStats* bs) {
  const PlanWork& work = work_[p];
  QueryAnswer answer;
  answer.kind = QueryKind::kSelect;
  SelectionAnswer& out = answer.selection;

  // Stitch: concatenate the per-shard results (shard order == key order),
  // sum the per-shard aggregates, keep the outermost boundaries. Empty
  // sub-answers contribute nothing — their shard-local proofs are replaced
  // by global boundary probes where needed.
  uint64_t oldest_ts = ~uint64_t{0};
  bool any = false;
  for (size_t ri : work.range_reqs) {
    RangeRes& sub = range_res_[ri];
    bs->agg_point_adds += sub.agg_stats.point_adds;
    bs->agg_leaf_fetches += sub.agg_stats.leaf_fetches;
    bs->agg_cache_hits += sub.agg_stats.cache_hits;
    bs->agg_refreshes += sub.agg_stats.refreshes;
    bs->agg_span_hits += sub.agg_stats.span_hits;
    if (!sub.nonempty) continue;
    if (!any) {
      any = true;
      out.left_key = sub.left_key;
    }
    out.right_key = sub.right_key;
    for (const SnapshotItem* item : sub.items) {
      out.records.push_back(item->record);
      oldest_ts = std::min(oldest_ts, item->record.ts);
    }
    if (sub.cache_used) {
      acc->Add(curve_, sub.cache_agg);
    } else {
      acc->jac = curve_.JacAdd(acc->jac, sub.agg);
      ++acc->count;
    }
  }

  if (!any) {
    // Empty result across every covered shard: prove it with the global
    // boundary record, exactly as a single server would.
    const SnapshotItem* pred = srv_.GlobalPredecessor(desc_, q.lo);
    const SnapshotItem* succ = srv_.GlobalSuccessor(desc_, q.hi);
    if (pred == nullptr && succ == nullptr)
      return Status::NotFound("empty relation");
    if (pred != nullptr) {
      out.proof_record = pred->record;
      out.agg_sig = pred->sig;
      const SnapshotItem* pp = srv_.GlobalPredecessor(desc_, pred->key());
      out.left_key = pp != nullptr ? pp->key() : kChainMinusInf;
      out.right_key = succ != nullptr ? succ->key() : kChainPlusInf;
      oldest_ts = pred->record.ts;
    } else {
      out.proof_record = succ->record;
      out.agg_sig = succ->sig;
      out.left_key = kChainMinusInf;  // no key below lo, hence none below
      const SnapshotItem* ss = srv_.GlobalSuccessor(desc_, succ->key());
      out.right_key = ss != nullptr ? ss->key() : kChainPlusInf;
      oldest_ts = succ->record.ts;
    }
  } else {
    // A finite shard-local boundary is already the global chain neighbor
    // (contiguous partition); a sentinel means the neighbor lives on an
    // adjacent shard the sub-scan never saw — resolved from the SAME
    // pinned snapshots, so the probe can never disagree with the scan.
    if (out.left_key == kChainMinusInf) {
      const SnapshotItem* pred = srv_.GlobalPredecessor(desc_, q.lo);
      if (pred != nullptr) out.left_key = pred->key();
    }
    if (out.right_key == kChainPlusInf) {
      const SnapshotItem* succ = srv_.GlobalSuccessor(desc_, q.hi);
      if (succ != nullptr) out.right_key = succ->key();
    }
    *needs_final = true;  // agg_sig lands with the batch-level inversion
  }

  ShardedQueryServer::AttachSummaries(desc_, oldest_ts, &out.summaries);
  out.served_epoch = desc_.epoch;
  answer.served_epoch = desc_.epoch;
  return answer;
}

Result<QueryAnswer> BatchEngine::StitchProject(size_t p, const Query& q,
                                               BasAccumulator* acc,
                                               bool* needs_final,
                                               BatchExecStats* bs) {
  const PlanWork& work = work_[p];
  QueryAnswer answer;
  answer.kind = QueryKind::kProject;
  ProjectedRangeAnswer& proj = answer.projection;

  uint64_t oldest_ts = ~uint64_t{0};
  bool any = false;
  for (size_t ri : work.range_reqs) {
    RangeRes& sub = range_res_[ri];
    if (!sub.error.ok()) return sub.error;
    if (!sub.nonempty) continue;
    if (!any) {
      any = true;
      proj.left_key = sub.left_key;
    }
    proj.right_key = sub.right_key;
    // Tuples carry per-attribute value and index vectors — splice them by
    // move; the per-shard sub-results are dead after this stitch.
    proj.tuples.insert(proj.tuples.end(),
                       std::make_move_iterator(sub.tuples.begin()),
                       std::make_move_iterator(sub.tuples.end()));
    proj.digests.insert(proj.digests.end(), sub.digests.begin(),
                        sub.digests.end());
    bs->digests_hashed += sub.digests.size();
    acc->jac = curve_.JacAdd(acc->jac, sub.proj_agg);
    ++acc->count;
    oldest_ts = std::min(oldest_ts, sub.oldest_ts);
  }

  if (!any) {
    // Empty result: one global boundary witness proves it, digest-only.
    const SnapshotItem* pred = srv_.GlobalPredecessor(desc_, q.lo);
    const SnapshotItem* succ = srv_.GlobalSuccessor(desc_, q.hi);
    if (pred == nullptr && succ == nullptr)
      return Status::NotFound("empty relation");
    const SnapshotItem* witness = pred != nullptr ? pred : succ;
    proj.proof = DigestWitness{
        witness->key(), witness->record.rid, witness->record.ts,
        // authdb-lint: allow(crypto-batch) one witness digest per empty answer
        witness->record.Digest()};
    proj.agg_sig = witness->sig;
    if (pred != nullptr) {
      const SnapshotItem* pp = srv_.GlobalPredecessor(desc_, pred->key());
      proj.left_key = pp != nullptr ? pp->key() : kChainMinusInf;
      proj.right_key = succ != nullptr ? succ->key() : kChainPlusInf;
    } else {
      proj.left_key = kChainMinusInf;  // no key below lo, hence none below
      const SnapshotItem* ss = srv_.GlobalSuccessor(desc_, succ->key());
      proj.right_key = ss != nullptr ? ss->key() : kChainPlusInf;
    }
    oldest_ts = witness->record.ts;
  } else {
    if (proj.left_key == kChainMinusInf) {
      const SnapshotItem* pred = srv_.GlobalPredecessor(desc_, q.lo);
      if (pred != nullptr) proj.left_key = pred->key();
    }
    if (proj.right_key == kChainPlusInf) {
      const SnapshotItem* succ = srv_.GlobalSuccessor(desc_, q.hi);
      if (succ != nullptr) proj.right_key = succ->key();
    }
    *needs_final = true;
  }

  ShardedQueryServer::AttachSummaries(desc_, oldest_ts, &answer.summaries);
  answer.served_epoch = desc_.epoch;
  return answer;
}

Result<QueryAnswer> BatchEngine::StitchJoin(size_t p, const Query& q,
                                            BasAccumulator* acc,
                                            bool* needs_final,
                                            BatchExecStats* bs) {
  const PlanWork& work = work_[p];
  static const std::vector<CertifiedPartition> kNoPartitions;
  const std::vector<CertifiedPartition>& partitions =
      desc_.partitions != nullptr ? *desc_.partitions : kNoPartitions;
  QueryAnswer answer;
  answer.kind = QueryKind::kJoin;
  JoinAnswer& ans = answer.join;
  ans.method = q.join_method;

  // Batched Bloom pre-pass (the join hot path): every unmatched probe
  // value is grouped by its covering partition and the group goes through
  // ONE ProbeMany call — bulk hashing plus a block-prefetch sweep over
  // the filter — before the stitch walk below consumes the verdicts. The
  // scalar_bloom_probes ablation flag forces the legacy per-key probe so
  // CI can measure what batching buys; answers are identical either way.
  std::vector<const CertifiedPartition*> cover(work.values.size(), nullptr);
  std::vector<uint8_t> maybe(work.values.size(), 0);
  if (q.join_method == JoinMethod::kBloomFilter && !partitions.empty()) {
    std::map<const CertifiedPartition*, std::vector<size_t>> by_part;
    for (size_t vi = 0; vi < work.values.size(); ++vi) {
      bool matched = false;
      for (size_t pi : work.probe_reqs[vi])
        if (!probe_res_[pi].items.empty()) {
          matched = true;  // match groups never consult the filter
          break;
        }
      if (matched) continue;
      const CertifiedPartition* part =
          FindCoveringPartition(partitions, work.values[vi]);
      if (part == nullptr) continue;
      cover[vi] = part;
      by_part[part].push_back(vi);
    }
    for (const auto& [part, vis] : by_part) {
      bs->bloom_probes += vis.size();
      if (srv_.config_.serving.scalar_bloom_probes) {
        for (size_t vi : vis)
          // authdb-lint: allow(bloom-batch) ablation-only scalar probe path
          maybe[vi] = part->filter.MayContainInt64(work.values[vi]) ? 1 : 0;
      } else {
        std::vector<int64_t> keys(vis.size());
        for (size_t i = 0; i < vis.size(); ++i) keys[i] = work.values[vis[i]];
        std::vector<uint8_t> hits(vis.size());
        part->filter.ProbeMany(keys.data(), keys.size(), hits.data());
        for (size_t i = 0; i < vis.size(); ++i) maybe[vis[i]] = hits[i];
      }
      for (size_t vi : vis) bs->bloom_block_hits += maybe[vi];
    }
  }

  std::set<uint32_t> used_partitions;
  // Chain signatures included in the aggregate, deduplicated by composite
  // key across the whole answer (a record may serve several proofs). With
  // every scan and probe reading the same pinned snapshots, the dedup can
  // never mix two chain generations of one record.
  std::set<int64_t> included_keys;
  uint64_t oldest_ts = ~uint64_t{0};
  auto include_item = [&](const SnapshotItem& item) {
    if (included_keys.insert(item.key()).second) acc->Add(curve_, item.sig);
    oldest_ts = std::min(oldest_ts, item.record.ts);
  };

  for (size_t vi = 0; vi < work.values.size(); ++vi) {
    const int64_t a = work.values[vi];
    const int64_t clo = JoinCompositeKey(a, 0);
    const int64_t chi = JoinCompositeKey(a, kJoinMaxDup);
    // Recombine the value's per-shard probe results in cover order.
    std::vector<const SnapshotItem*> items;
    const SnapshotItem* left_b = nullptr;
    const SnapshotItem* right_b = nullptr;
    for (size_t pi : work.probe_reqs[vi]) {
      const ProbeRes& res = probe_res_[pi];
      if (res.left_b != nullptr) left_b = res.left_b;
      if (res.right_b != nullptr) right_b = res.right_b;
      items.insert(items.end(), res.items.begin(), res.items.end());
    }

    if (!items.empty()) {
      // Match group: stitch its boundary keys across seams exactly like
      // selection boundaries — a shard-local boundary is already the
      // global neighbor; a sentinel means it lives on another shard.
      JoinMatch match;
      match.a_value = a;
      if (left_b != nullptr) {
        match.left_key = left_b->key();
      } else {
        const SnapshotItem* pred = srv_.GlobalPredecessor(desc_, clo);
        match.left_key = pred != nullptr ? pred->key() : kChainMinusInf;
      }
      if (right_b != nullptr) {
        match.right_key = right_b->key();
      } else {
        const SnapshotItem* succ = srv_.GlobalSuccessor(desc_, chi);
        match.right_key = succ != nullptr ? succ->key() : kChainPlusInf;
      }
      for (const SnapshotItem* item : items) {
        match.s_records.push_back(item->record);
        include_item(*item);
      }
      ans.matches.push_back(std::move(match));
      continue;
    }

    bool need_boundary = true;
    if (const CertifiedPartition* part = cover[vi]; part != nullptr) {
      used_partitions.insert(part->idx);
      if (maybe[vi] == 0) {
        ans.negative_probes.push_back({a, part->idx});
        need_boundary = false;
      } else {
        // False positive — fall back to the boundary proof below.
        ++bs->bloom_fp_fallbacks;
      }
    }
    if (need_boundary) {
      // Absence witness adjacent to the gap, possibly on another shard;
      // its own chain neighbors stitch across seams via global probes
      // against the same pinned snapshots.
      const SnapshotItem* witness = left_b;
      if (witness == nullptr) witness = srv_.GlobalPredecessor(desc_, clo);
      if (witness == nullptr) witness = right_b;
      if (witness == nullptr) witness = srv_.GlobalSuccessor(desc_, chi);
      if (witness == nullptr) return Status::NotFound("S is empty");
      AbsenceProof proof;
      proof.a_value = a;
      proof.rec_key = witness->key();
      proof.rec_rid = witness->record.rid;
      proof.rec_ts = witness->record.ts;
      // authdb-lint: allow(crypto-batch) one witness digest per absent value
      proof.rec_digest = witness->record.Digest();
      const SnapshotItem* wl = srv_.GlobalPredecessor(desc_, witness->key());
      const SnapshotItem* wr = srv_.GlobalSuccessor(desc_, witness->key());
      proof.left_key = wl != nullptr ? wl->key() : kChainMinusInf;
      proof.right_key = wr != nullptr ? wr->key() : kChainPlusInf;
      include_item(*witness);
      ans.absence_proofs.push_back(std::move(proof));
    }
  }

  for (uint32_t idx : used_partitions) {
    for (const CertifiedPartition& part : partitions) {
      if (part.idx == idx) {
        ans.partitions.push_back(part);
        acc->Add(curve_, part.sig);
        break;
      }
    }
  }
  *needs_final = true;  // joins always aggregate (infinity when no parts)

  ShardedQueryServer::AttachSummaries(desc_, oldest_ts, &answer.summaries);
  answer.served_epoch = desc_.epoch;
  return answer;
}

std::vector<Result<QueryAnswer>> BatchEngine::Run(const PlanBatch& batch,
                                                  BatchExecStats* stats) {
  const std::vector<Query>& plans = batch.plans;
  const size_t n_shards = desc_.shards.size();

  BatchExecStats& bs = *stats;
  bs.epoch = desc_.epoch;
  bs.plans = plans.size();
  bs.shard_busy.resize(n_shards);

  work_.resize(plans.size());
  plan_attrs_.resize(plans.size());
  std::vector<Status> invalid(plans.size(), Status::OK());
  for (size_t p = 0; p < plans.size(); ++p) {
    invalid[p] = ValidateAndPlan(plans[p], p);
    if (!invalid[p].ok()) ++bs.invalid_plans;
    bs.shards_queried += work_[p].shards_queried;
  }
  range_res_.resize(range_reqs_.size());
  probe_res_.resize(probe_reqs_.size());

  // One visit per covered shard for the WHOLE batch: group every request
  // by shard, dispatch each group to its shard-affine worker once.
  std::vector<std::vector<size_t>> shard_rr(n_shards), shard_pr(n_shards);
  for (size_t i = 0; i < range_reqs_.size(); ++i)
    shard_rr[range_reqs_[i].shard].push_back(i);
  for (size_t i = 0; i < probe_reqs_.size(); ++i)
    shard_pr[probe_reqs_[i].shard].push_back(i);
  std::vector<size_t> visit_finalizes(n_shards, 0);
  std::vector<ShardExecutor::Visit> visits;
  for (size_t s = 0; s < n_shards; ++s) {
    if (shard_rr[s].empty() && shard_pr[s].empty()) continue;
    visits.push_back(ShardExecutor::Visit{
        s, [this, s, &shard_rr, &shard_pr, &bs, &visit_finalizes] {
          Visit(s, shard_rr[s], shard_pr[s], &bs.shard_busy[s],
                &visit_finalizes[s]);
        }});
  }
  bs.shard_visits = visits.size();
  srv_.exec_.RunVisits(std::move(visits));
  for (size_t f : visit_finalizes) bs.batch_finalizes += f;

  // Per-plan stitch. This loops over plans at the FRONT END only — all
  // shard dispatch happened in the single RunVisits above; plan-level
  // aggregates stay Jacobian here and finalize together below.
  std::vector<Result<QueryAnswer>> results;
  results.reserve(plans.size());
  std::vector<BasAccumulator> plan_acc(plans.size());
  std::vector<bool> needs_final(plans.size(), false);
  for (size_t p = 0; p < plans.size(); ++p) {
    if (!invalid[p].ok()) {
      results.push_back(invalid[p]);
      continue;
    }
    bool nf = false;
    switch (plans[p].kind) {
      case QueryKind::kSelect:
        results.push_back(StitchSelect(p, plans[p], &plan_acc[p], &nf, &bs));
        break;
      case QueryKind::kProject:
        results.push_back(StitchProject(p, plans[p], &plan_acc[p], &nf, &bs));
        break;
      case QueryKind::kJoin:
        results.push_back(StitchJoin(p, plans[p], &plan_acc[p], &nf, &bs));
        break;
    }
    needs_final[p] = nf && results.back().ok();
  }

  // The batch-level finalize: ONE shared field inversion converts every
  // plan's aggregate to its affine signature.
  std::vector<const BasAccumulator*> accs;
  std::vector<size_t> acc_plan;
  for (size_t p = 0; p < plans.size(); ++p) {
    if (!needs_final[p]) continue;
    accs.push_back(&plan_acc[p]);
    acc_plan.push_back(p);
  }
  if (!accs.empty()) {
    std::vector<BasSignature> sigs = srv_.ctx_->FinalizeBatch(accs);
    ++bs.batch_finalizes;
    for (size_t k = 0; k < acc_plan.size(); ++k) {
      QueryAnswer& ans = results[acc_plan[k]].value();
      switch (ans.kind) {
        case QueryKind::kSelect:
          ans.selection.agg_sig = std::move(sigs[k]);
          break;
        case QueryKind::kProject:
          ans.projection.agg_sig = std::move(sigs[k]);
          break;
        case QueryKind::kJoin:
          ans.join.agg_sig = std::move(sigs[k]);
          break;
      }
    }
  }

  return results;
}

// ---------------------------------------------------------------------------
// The public read surface: ExecuteBatch, with Execute and Select as
// batches of one. Admission control (when enabled) wraps the engine here:
// plans are routed through the two-lane controller, refused plans come
// back as epoch-stamped shed answers in plan order, and the engine only
// ever sees the admitted sub-batch.

std::vector<Result<QueryAnswer>> ShardedQueryServer::ExecuteBatch(
    const PlanBatch& batch) const {
  std::shared_ptr<const EpochDescriptor> desc = PinCurrentEpoch();
  if (admission_ == nullptr) {
    BatchExecStats bs;
    BatchEngine engine(*this, *desc);
    std::vector<Result<QueryAnswer>> out = engine.Run(batch, &bs);
    metrics_.FoldBatch(bs);
    return out;
  }

  std::vector<QueryKind> kinds;
  kinds.reserve(batch.plans.size());
  for (const Query& q : batch.plans) kinds.push_back(q.kind);
  std::vector<uint8_t> admitted;
  const size_t granted = admission_->AdmitPlans(kinds, &admitted);
  const uint64_t retry_us = admission_->retry_after_micros();

  if (granted == batch.plans.size()) {
    BatchExecStats bs;
    BatchEngine engine(*this, *desc);
    std::vector<Result<QueryAnswer>> out = engine.Run(batch, &bs);
    metrics_.FoldBatch(bs);
    admission_->Release(granted);
    return out;
  }

  std::vector<Result<QueryAnswer>> ran;
  if (granted > 0) {
    PlanBatch sub;
    sub.plans.reserve(granted);
    for (size_t i = 0; i < batch.plans.size(); ++i) {
      if (admitted[i]) sub.plans.push_back(batch.plans[i]);
    }
    BatchExecStats bs;
    BatchEngine engine(*this, *desc);
    ran = engine.Run(sub, &bs);
    metrics_.FoldBatch(bs);
    admission_->Release(granted);
  }

  // Weave the shed answers back so results stay aligned with plan order.
  std::vector<Result<QueryAnswer>> out;
  out.reserve(batch.plans.size());
  size_t next_ran = 0;
  for (size_t i = 0; i < batch.plans.size(); ++i) {
    if (admitted[i]) {
      out.push_back(std::move(ran[next_ran++]));
    } else {
      out.push_back(MakeShedAnswer(batch.plans[i].kind, desc->epoch, retry_us));
    }
  }
  return out;
}

Result<QueryAnswer> ShardedQueryServer::Execute(const Query& query) const {
  std::vector<Result<QueryAnswer>> out = ExecuteBatch(PlanBatch::Of({query}));
  AUTHDB_CHECK(out.size() == 1);
  return std::move(out[0]);
}

Result<SelectionAnswer> ShardedQueryServer::Select(int64_t lo,
                                                   int64_t hi) const {
  Result<QueryAnswer> r = Execute(Query::Select(lo, hi));
  if (!r.ok()) return r.status();
  if (r.value().outcome == AnswerOutcome::kShedRetryAfter) {
    // SelectionAnswer has no outcome channel; surface the shed as the
    // same status the verifier maps it to.
    return Status::ResourceExhausted("selection shed by admission control");
  }
  return std::move(r.value().selection);
}

}  // namespace authdb
