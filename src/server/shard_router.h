#ifndef AUTHDB_SERVER_SHARD_ROUTER_H_
#define AUTHDB_SERVER_SHARD_ROUTER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/chain.h"

namespace authdb {

/// Static range partitioning of the int64 index-key space across K shards.
/// Shard i owns the contiguous interval [lower_bound(i), upper_bound(i)]
/// (both inclusive); the K-1 split keys cover the whole domain, so every key
/// routes to exactly one shard and a range selection maps to a run of
/// consecutive shards. Because the partition is contiguous, the shard-local
/// predecessor / successor of a key — when it exists — is also its global
/// chain neighbor, which is what lets per-shard proofs stitch into one
/// verifiable answer (see sharded_query_server.h).
class ShardRouter {
 public:
  /// `split_keys` must be strictly ascending; shard i covers
  /// [split_keys[i-1], split_keys[i] - 1], with shard 0 open to the bottom
  /// of the domain and the last shard open to the top. An empty vector
  /// yields a single shard owning everything.
  explicit ShardRouter(std::vector<int64_t> split_keys);

  /// Even split of [lo, hi] into `shards` parts (keys outside [lo, hi]
  /// fall into the edge shards). Requires lo > kChainMinusInf (the
  /// sentinel cannot bound an owned interval) and at least one key per
  /// shard.
  static ShardRouter Uniform(size_t shards, int64_t lo, int64_t hi);

  size_t shard_count() const { return splits_.size() + 1; }
  size_t ShardOf(int64_t key) const;

  /// Inclusive lower / upper key bound of a shard's interval. The edge
  /// shards extend to the chain sentinels.
  int64_t lower_bound_of(size_t shard) const {
    return shard == 0 ? kChainMinusInf : splits_[shard - 1];
  }
  int64_t upper_bound_of(size_t shard) const {
    return shard == splits_.size() ? kChainPlusInf : splits_[shard] - 1;
  }

  struct SubRange {
    size_t shard;
    int64_t lo, hi;  // inclusive, clamped to the shard's interval
  };
  /// The per-shard sub-ranges covering [lo, hi], in shard (= key) order.
  std::vector<SubRange> Cover(int64_t lo, int64_t hi) const;

 private:
  std::vector<int64_t> splits_;
};

}  // namespace authdb

#endif  // AUTHDB_SERVER_SHARD_ROUTER_H_
