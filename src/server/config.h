#ifndef AUTHDB_SERVER_CONFIG_H_
#define AUTHDB_SERVER_CONFIG_H_

#include <cstddef>
#include <cstdint>

#include "common/result.h"
#include "core/query_server.h"

namespace authdb {

/// The one configuration surface of the serving stack, layered by
/// subsystem. This replaced the scattered `ShardedQueryServer::Options` /
/// `UpdateStream::Options` pair (and absorbed the admission-control knobs
/// that would otherwise have become a fourth ad-hoc struct):
///
///   node      — the per-shard storage/evidence layer (the core
///               QueryServer::Options, embedded verbatim so the
///               single-node reference path and the sharded server can
///               never drift on record layout or summary retention);
///   serving   — the read fan-out + epoch-GC layer (ShardedQueryServer);
///   ingest    — the streaming apply layer (UpdateStream);
///   admission — overload control on the read path (AdmissionController).
///
/// Construction is validated: `Validated()` returns the checked config or
/// the precise constraint it violates as a Result, and every consumer
/// (ShardedQueryServer, UpdateStream) CHECK-fails on an invalid config so
/// a bad knob can never silently serve.
struct ServerConfig {
  /// Per-shard storage/evidence layer (core). `record_len` sizes the
  /// fixed-length record pages; `summaries_retained` bounds the summary
  /// run carried by every published epoch.
  QueryServer::Options node;

  struct Serving {
    /// Non-zero: one dedicated shard-affine worker thread per shard serves
    /// the read fan-out (the value beyond zero is ignored — the executor
    /// is per-shard by construction). Zero: visits run inline on the
    /// submitting thread.
    size_t worker_threads = 4;
    /// Epoch GC backpressure: maximum number of *superseded* epochs that
    /// stalled readers may keep pinned before PublishEpoch blocks waiting
    /// for one to drain (0 = unbounded). The block propagates through the
    /// update stream's apply queues to the producer — memory stays bounded
    /// even against a wedged reader.
    size_t max_pinned_epochs = 0;
    /// Online SigCache retuning cadence: every this many epoch
    /// publications the run-length planner re-plans each enabled shard
    /// against the live hit/miss mix (ServerMetrics aggregation counters)
    /// and the shard's current size + generation. 0 = never retune
    /// automatically; RetuneSigCache() stays available to callers. Plans
    /// that come out unchanged keep their warm windows.
    size_t sigcache_retune_publications = 0;
    /// Ablation: force the legacy per-key Bloom probe on the join hot
    /// path instead of the batched ProbeMany (no bulk hashing, no block
    /// prefetch). Answers are identical — the filters are the same — so
    /// this isolates what the batch probe buys (CI's scalar-probe bench
    /// artifact). Never enable in production.
    bool scalar_bloom_probes = false;
  } serving;

  struct Ingest {
    size_t max_queue_depth = 4096;  ///< per-shard producer backpressure bound
  } ingest;

  /// Read-path overload control. Disabled by default — closed-loop callers
  /// with bounded concurrency never shed; the open-loop harness and
  /// production fronts enable it to survive offered load beyond capacity.
  struct Admission {
    bool enabled = false;
    /// Execution slots: plans concurrently admitted into the engine across
    /// both lanes. Excess arrivals queue (bounded) and then shed.
    size_t max_inflight_plans = 64;
    /// Bounded intake queue per lane (callers parked waiting for a slot).
    /// A plan arriving with its lane's queue full is shed immediately with
    /// AnswerOutcome::kShedRetryAfter.
    size_t queue_depth = 256;
    /// Priority inversion bound: after this many consecutive priority
    /// (freshness-critical select) grants while bulk (join/project) work
    /// waits, one bulk waiter is admitted ahead of the priority queue —
    /// joins and projections shed first under pressure but never starve.
    size_t starvation_bound = 8;
    /// Backoff hint stamped into shed answers (QueryAnswer::
    /// retry_after_micros) — advisory, not enforced.
    uint64_t retry_after_micros = 1000;
  } admission;

  /// The checked config, or the first constraint it violates.
  Result<ServerConfig> Validated() const;
};

}  // namespace authdb

#endif  // AUTHDB_SERVER_CONFIG_H_
