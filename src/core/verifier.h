#ifndef AUTHDB_CORE_VERIFIER_H_
#define AUTHDB_CORE_VERIFIER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/freshness.h"
#include "core/protocol.h"

namespace authdb {

/// User-side verification (the third party in the paper's model). Checks
/// the three correctness properties of a selection answer:
///  * authenticity  — the aggregate signature matches the chained records;
///  * completeness  — boundary keys enclose the range and the chain is
///                    gapless;
///  * freshness     — no result record is marked in any summary published
///                    after its certification (Section 3.1).
class ClientVerifier {
 public:
  ClientVerifier(const BasPublicKey* da_pub, const BitmapCodec* codec,
                 BasContext::HashMode mode)
      : da_pub_(da_pub),
        mode_(mode),
        freshness_(da_pub, codec, mode) {}

  /// Full pipeline for one answer. `now` is the verification time;
  /// summaries attached to the answer are ingested first.
  Status VerifySelection(int64_t lo, int64_t hi, const SelectionAnswer& ans,
                         uint64_t now);

  /// Live-stream variant: everything VerifySelection checks, plus the epoch
  /// cross-check of the streaming pipeline. A client following the DA's
  /// summary feed knows the latest epoch independently of the server; an
  /// answer claiming an older `served_epoch` is rejected outright (a lagging
  /// or replaying server), and a forged epoch is still caught by the
  /// per-record bitmap walk because the checker already holds the newer
  /// summaries the answer pretends do not exist.
  Status VerifySelectionFresh(int64_t lo, int64_t hi,
                              const SelectionAnswer& ans, uint64_t now,
                              uint64_t min_epoch);

  /// Diagnostic companion for attack harnesses: the rids in `ans` whose
  /// returned version is superseded according to the currently held
  /// summaries (per-rid decompressed-bitmap walk).
  std::vector<uint64_t> StaleRids(const SelectionAnswer& ans,
                                  uint64_t now) const;

  /// Authenticity + completeness only (no freshness), for callers driving
  /// the freshness checker themselves.
  Status VerifySelectionStatic(int64_t lo, int64_t hi,
                               const SelectionAnswer& ans) const;

  FreshnessChecker& freshness() { return freshness_; }

 private:
  const BasPublicKey* da_pub_;
  BasContext::HashMode mode_;
  FreshnessChecker freshness_;
};

}  // namespace authdb

#endif  // AUTHDB_CORE_VERIFIER_H_
