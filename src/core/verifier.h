#ifndef AUTHDB_CORE_VERIFIER_H_
#define AUTHDB_CORE_VERIFIER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "core/freshness.h"
#include "core/protocol.h"

namespace authdb {

/// User-side verification (the third party in the paper's model). Checks
/// the three correctness properties of every served answer kind —
/// selections, projections, and equi-joins:
///  * authenticity  — the aggregate signature matches the cited messages;
///  * completeness  — boundary keys enclose the range / every probe value
///                    is accounted for, and the chain is gapless;
///  * freshness     — no cited record is marked in any summary published
///                    after its certification (Section 3.1), and the
///                    claimed serving epoch is not behind the client's
///                    view of the summary stream.
/// VerifyAnswerFresh is the uniform entry point over QueryAnswer; the
/// per-kind methods remain available for callers driving pieces
/// themselves.
class ClientVerifier {
 public:
  ClientVerifier(const BasPublicKey* da_pub, const BitmapCodec* codec,
                 BasContext::HashMode mode)
      : da_pub_(da_pub),
        mode_(mode),
        freshness_(da_pub, codec, mode) {}

  /// Full pipeline for one answer. `now` is the verification time;
  /// summaries attached to the answer are ingested first.
  Status VerifySelection(int64_t lo, int64_t hi, const SelectionAnswer& ans,
                         uint64_t now);

  /// Live-stream variant: everything VerifySelection checks, plus the epoch
  /// cross-check of the streaming pipeline. A client following the DA's
  /// summary feed knows the latest epoch independently of the server; an
  /// answer claiming an older `served_epoch` is rejected outright (a lagging
  /// or replaying server), and a forged epoch is still caught by the
  /// per-record bitmap walk because the checker already holds the newer
  /// summaries the answer pretends do not exist.
  ///
  /// Mixed-generation defense: with epoch-pinned serving, an answer served
  /// under epoch e is a snapshot of periods 0..e-1, so it can only carry
  /// summaries with seq < e. An answer gluing an old-epoch chain onto a
  /// newer summary (to look fresh to a client without an independent feed)
  /// is rejected for that inconsistency alone; if the server also forges
  /// the stamp upward, the glued summary's own bitmap indicts the stale
  /// records — either way the splice fails.
  Status VerifySelectionFresh(int64_t lo, int64_t hi,
                              const SelectionAnswer& ans, uint64_t now,
                              uint64_t min_epoch);

  /// Diagnostic companion for attack harnesses: the rids in `ans` whose
  /// returned version is superseded according to the currently held
  /// summaries (per-rid decompressed-bitmap walk).
  std::vector<uint64_t> StaleRids(const SelectionAnswer& ans,
                                  uint64_t now) const;

  /// Authenticity + completeness only (no freshness), for callers driving
  /// the freshness checker themselves.
  Status VerifySelectionStatic(int64_t lo, int64_t hi,
                               const SelectionAnswer& ans) const;

  /// Uniform freshness-checked entry point over the unified answer
  /// envelope: the epoch cross-check of VerifySelectionFresh generalized
  /// to every plan kind, then the kind's full pipeline. For joins,
  /// `max_partition_age_micros` (when non-zero) additionally rejects
  /// shipped Bloom partitions certified more than that long before the
  /// latest summary this checker holds — the partition analogue of the
  /// bitmap walk, since filters carry no rids (a lagging filter could
  /// otherwise "prove" a freshly inserted value absent).
  Status VerifyAnswerFresh(const Query& query, const QueryAnswer& ans,
                           uint64_t now, uint64_t min_epoch,
                           uint64_t max_partition_age_micros = 0);

  struct BatchVerifyOptions {
    /// Worker threads for the stateless phase (structural checks, message
    /// building, join static pipelines). 0 = run inline on the caller.
    size_t worker_threads = 0;
    /// Join partition-age bound, as in VerifyAnswerFresh.
    uint64_t max_partition_age_micros = 0;
  };
  struct BatchVerifyStats {
    size_t answers = 0;
    /// Aggregate-signature claims folded into the one shared-inversion
    /// check (selections + projections; join aggregates verify inside
    /// their static pipelines).
    size_t aggregate_claims = 0;
    /// Shared batch finalizations performed (1 when any claims, else 0) —
    /// the client-side mirror of the server's exec.batch.finalizes.
    size_t shared_inversions = 0;
  };

  /// Verify a PlanBatch's answers — verdict-for-verdict identical to
  /// calling VerifyAnswerFresh(plans[i], answers[i], ...) in order, but
  /// with the crypto batched: every selection and projection aggregate
  /// check in the batch shares ONE Montgomery batch inversion
  /// (BasPublicKey::VerifyAggregateBatch, the client-side mirror of the
  /// server's FinalizeBatch), and the stateless phase optionally fans out
  /// across opts.worker_threads. Freshness ingestion stays strictly
  /// serial in answer order — summaries an earlier answer carries are
  /// visible to every later answer's freshness walk, exactly as in the
  /// sequential loop — and an answer that fails its structural or
  /// aggregate check ingests nothing, also as in the sequential loop.
  std::vector<Status> VerifyAnswerBatch(
      const PlanBatch& batch, const std::vector<Result<QueryAnswer>>& answers,
      uint64_t now, uint64_t min_epoch, const BatchVerifyOptions& opts,
      BatchVerifyStats* stats = nullptr);
  std::vector<Status> VerifyAnswerBatch(
      const PlanBatch& batch, const std::vector<Result<QueryAnswer>>& answers,
      uint64_t now, uint64_t min_epoch) {
    return VerifyAnswerBatch(batch, answers, now, min_epoch,
                             BatchVerifyOptions());
  }

  /// Served-projection pipeline: digest-spine completeness + attribute
  /// authenticity (one aggregate), then the per-tuple freshness walk over
  /// the answer's attached summaries.
  Status VerifyProjection(const Query& query, const QueryAnswer& ans,
                          uint64_t now);
  /// Authenticity + completeness of the digest spine only (no freshness).
  Status VerifyProjectionStatic(const Query& query,
                                const ProjectedRangeAnswer& ans) const;

  /// Served-join pipeline: the JoinVerifier static checks, then the
  /// freshness walk over match rows and absence witnesses (and the
  /// optional partition-age bound — see VerifyAnswerFresh).
  Status VerifyJoin(const Query& query, const QueryAnswer& ans, uint64_t now,
                    uint64_t max_partition_age_micros = 0);
  Status VerifyJoinStatic(const Query& query, const JoinAnswer& ans) const;

  /// StaleRids generalized over the answer envelope: every cited rid whose
  /// returned version is superseded by the currently held summaries.
  std::vector<uint64_t> StaleRids(const QueryAnswer& ans, uint64_t now) const;

  FreshnessChecker& freshness() { return freshness_; }

 private:
  const BasPublicKey* da_pub_;
  BasContext::HashMode mode_;
  FreshnessChecker freshness_;
};

}  // namespace authdb

#endif  // AUTHDB_CORE_VERIFIER_H_
