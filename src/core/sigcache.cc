#include "core/sigcache.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace authdb {

namespace {
bool IsPowerOfTwo(uint64_t n) { return n != 0 && (n & (n - 1)) == 0; }

int Log2(uint64_t n) {
  int l = 0;
  while ((uint64_t{1} << l) < n) ++l;
  return l;
}
}  // namespace

CardinalityDist CardinalityDist::Harmonic(uint64_t n) {
  std::vector<double> p(n + 1, 0.0);
  double h = 0;
  for (uint64_t q = 1; q <= n; ++q) h += 1.0 / q;
  for (uint64_t q = 1; q <= n; ++q) p[q] = (1.0 / q) / h;
  return CardinalityDist(std::move(p));
}

CardinalityDist CardinalityDist::Uniform(uint64_t n) {
  std::vector<double> p(n + 1, 1.0 / n);
  p[0] = 0;
  return CardinalityDist(std::move(p));
}

CardinalityDist CardinalityDist::UniformRange(uint64_t n, uint64_t lo,
                                              uint64_t hi) {
  AUTHDB_CHECK(1 <= lo && lo <= hi && hi <= n);
  std::vector<double> p(n + 1, 0.0);
  double w = 1.0 / static_cast<double>(hi - lo + 1);
  for (uint64_t q = lo; q <= hi; ++q) p[q] = w;
  return CardinalityDist(std::move(p));
}

CardinalityDist CardinalityDist::Blend(const CardinalityDist& a,
                                       const CardinalityDist& b, double w) {
  AUTHDB_CHECK(a.N() == b.N());
  AUTHDB_CHECK(0.0 <= w && w <= 1.0);
  std::vector<double> p(a.N() + 1, 0.0);
  for (uint64_t q = 1; q <= a.N(); ++q)
    p[q] = (1.0 - w) * a.P(q) + w * b.P(q);
  return CardinalityDist(std::move(p));
}

uint64_t SigTreeXi(uint64_t n, int level, uint64_t j, uint64_t q) {
  AUTHDB_CHECK(IsPowerOfTwo(n));
  uint64_t m = uint64_t{1} << level;
  uint64_t nodes = n / m;  // M = N / 2^i
  AUTHDB_CHECK(j < nodes && q >= 1 && q <= n);
  if (q < m) return 0;  // 2^i > q
  if (q < 2 * m) {
    // 2^i <= q < 2^{i+1}
    if (j > 0 && j + 1 < nodes) return q - m + 1;
    return 1;
  }
  // q >= 2^{i+1}. D is the node's edge distance that gates usability.
  if (nodes < 2) return 0;  // the root cannot serve q > N anyway
  uint64_t d = (j % 2 == 1) ? (nodes - j) : (j + 1);
  if (q <= m * d) return m;                           // full usability
  if (q < m * (d + 1)) return m * (d + 1) - q;        // partial: m - q + D*m
  return 0;
}

// ---------------------------------------------------------------------------
// Planner

namespace {
/// Prefix sums of w(q) = P(q)/(N-q+1) and q*w(q), enabling O(1) per-node
/// probabilities: every xi segment is linear in q.
struct WeightSums {
  std::vector<double> w_sum, qw_sum;  // cumulative over q = 1..N

  explicit WeightSums(const CardinalityDist& dist) {
    uint64_t n = dist.N();
    w_sum.assign(n + 1, 0.0);
    qw_sum.assign(n + 1, 0.0);
    for (uint64_t q = 1; q <= n; ++q) {
      double w = dist.P(q) / static_cast<double>(n - q + 1);
      w_sum[q] = w_sum[q - 1] + w;
      qw_sum[q] = qw_sum[q - 1] + static_cast<double>(q) * w;
    }
  }
  double W(uint64_t a, uint64_t b) const {  // sum over [a, b], clamped
    uint64_t n = w_sum.size() - 1;
    if (a > b || a > n) return 0;
    b = std::min(b, n);
    return w_sum[b] - w_sum[a - 1];
  }
  double QW(uint64_t a, uint64_t b) const {
    uint64_t n = qw_sum.size() - 1;
    if (a > b || a > n) return 0;
    b = std::min(b, n);
    return qw_sum[b] - qw_sum[a - 1];
  }
};

double NodeProbabilityWithSums(uint64_t n, const WeightSums& sums, int level,
                               uint64_t j) {
  uint64_t m = uint64_t{1} << level;
  uint64_t nodes = n / m;
  double p = 0;
  // Segment 1: q in [m, 2m-1].
  if (j > 0 && j + 1 < nodes) {
    p += sums.QW(m, 2 * m - 1) -
         static_cast<double>(m - 1) * sums.W(m, 2 * m - 1);
  } else {
    p += sums.W(m, 2 * m - 1);
  }
  // Segment 2: q >= 2m.
  if (nodes >= 2) {
    uint64_t d = (j % 2 == 1) ? (nodes - j) : (j + 1);
    p += static_cast<double>(m) * sums.W(2 * m, m * d);
    uint64_t lo = std::max(2 * m, m * d + 1);
    uint64_t hi = m * d + m - 1;
    if (lo <= hi) {
      p += static_cast<double>(m) * static_cast<double>(d + 1) *
               sums.W(lo, hi) -
           sums.QW(lo, hi);
    }
  }
  return p;
}
}  // namespace

double SigCachePlanner::NodeProbability(uint64_t n,
                                        const CardinalityDist& dist,
                                        int level, uint64_t j) {
  WeightSums sums(dist);
  return NodeProbabilityWithSums(n, sums, level, j);
}

SigCachePlanner::PlanResult SigCachePlanner::Plan(uint64_t n,
                                                  const CardinalityDist& dist,
                                                  size_t max_pairs,
                                                  size_t edge_band) {
  AUTHDB_CHECK(IsPowerOfTwo(n));
  WeightSums sums(dist);
  int levels = Log2(n);

  struct Node {
    int level;
    uint64_t j;
    double prob;
    double savings;  // current savings (additions avoided), mutable
  };
  // Candidate set: per level, an edge band on each side (plus whole levels
  // when small). Closed under the ancestor relation.
  std::vector<Node> nodes;
  std::map<std::pair<int, uint64_t>, size_t> index;
  for (int level = 1; level <= levels; ++level) {
    uint64_t count = n >> level;
    auto add = [&](uint64_t j) {
      if (index.count({level, j})) return;
      index[{level, j}] = nodes.size();
      nodes.push_back(Node{level, j, NodeProbabilityWithSums(n, sums, level, j),
                           static_cast<double>((uint64_t{1} << level) - 1)});
    };
    if (count <= 2 * edge_band) {
      for (uint64_t j = 0; j < count; ++j) add(j);
    } else {
      for (uint64_t j = 0; j < edge_band; ++j) {
        add(j);
        add(count - 1 - j);
      }
    }
  }

  double base_cost = 0;
  for (uint64_t q = 1; q <= n; ++q)
    base_cost += static_cast<double>(q - 1) * dist.P(q);

  // Greedy order by initial utility.
  std::vector<size_t> order(nodes.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return nodes[a].prob * nodes[a].savings > nodes[b].prob * nodes[b].savings;
  });

  std::set<size_t> cached;
  double cached_utility_sum = 0;  // sum of prob*savings over cached nodes
  auto ancestors_of = [&](size_t idx) {
    std::vector<size_t> out;
    int level = nodes[idx].level;
    uint64_t j = nodes[idx].j;
    for (int l = level + 1; l <= levels; ++l) {
      j >>= 1;
      auto it = index.find({l, j});
      if (it != index.end()) out.push_back(it->second);
    }
    return out;
  };

  PlanResult result;
  result.base_cost = base_cost;
  result.cost_after_pairs.push_back(base_cost);
  double prev_cost = base_cost;

  for (size_t oi = 0; oi < order.size() && cached.size() / 2 < max_pairs;
       ++oi) {
    size_t idx = order[oi];
    if (cached.count(idx)) continue;
    const Node& node = nodes[idx];
    // Mirror partner (Section 4.1's symmetry optimization).
    uint64_t count = n >> node.level;
    uint64_t mirror_j = count - 1 - node.j;
    size_t midx = idx;
    auto mit = index.find({node.level, mirror_j});
    if (mit != index.end()) midx = mit->second;

    std::vector<size_t> members = {idx};
    if (midx != idx && !cached.count(midx)) members.push_back(midx);

    // Tentatively cache the pair: each member lowers its ancestors' savings
    // by its own current savings (Algorithm 1 line 11).
    std::vector<std::pair<size_t, double>> undo;  // (node, delta applied)
    double utility_before = cached_utility_sum;
    for (size_t mem : members) {
      double s = nodes[mem].savings;
      for (size_t anc : ancestors_of(mem)) {
        nodes[anc].savings -= s;
        if (cached.count(anc)) cached_utility_sum -= nodes[anc].prob * s;
        undo.push_back({anc, s});
      }
      cached.insert(mem);
      cached_utility_sum += nodes[mem].prob * nodes[mem].savings;
    }
    double curr_cost = base_cost - cached_utility_sum;
    if (curr_cost > prev_cost) {
      // Adding this pair raises the expected cost: revert (lines 14-16).
      for (auto it = undo.rbegin(); it != undo.rend(); ++it)
        nodes[it->first].savings += it->second;
      for (size_t mem : members) cached.erase(mem);
      cached_utility_sum = utility_before;
      continue;
    }
    prev_cost = curr_cost;
    for (size_t mem : members) {
      result.chosen.push_back(
          Choice{nodes[mem].level, nodes[mem].j,
                 nodes[mem].prob * nodes[mem].savings});
    }
    result.cost_after_pairs.push_back(curr_cost);
  }
  return result;
}

// ---------------------------------------------------------------------------
// Runtime cache

SigCache::SigCache(std::shared_ptr<const BasContext> ctx,
                   uint64_t n_positions, RefreshMode mode,
                   LeafProvider leaves)
    : ctx_(std::move(ctx)),
      n_(n_positions),
      max_level_(Log2(std::max<uint64_t>(1, n_positions))),
      mode_(mode),
      leaves_(std::move(leaves)) {}

void SigCache::Pin(int level, uint64_t j) {
  MutexLock lock(mu_);
  entries_[Key{level, j}];  // default-constructed: invalid
}

void SigCache::PinPlan(const std::vector<SigCachePlanner::Choice>& plan) {
  MutexLock lock(mu_);
  for (const auto& c : plan) entries_[Key{c.level, c.j}];
}

void SigCache::WarmAll() {
  // Fill bottom-up so higher nodes reuse the lower cached nodes.
  MutexLock lock(mu_);
  AggStats scratch;
  for (auto& [key, entry] : entries_) {
    if (!entry.valid) {
      entry.sig = ComputeNode(key, entry.generation, leaves_, &scratch);
      entry.valid = true;
    }
  }
}

BasSignature SigCache::ComputeNode(const Key& key, uint64_t generation,
                                   const LeafProvider& leaves,
                                   AggStats* stats) {
  // Derive from smaller cached nodes / leaves over the node's interval.
  // Accumulation stays in Jacobian coordinates: one inversion at the end
  // instead of one per addition.
  const CurveGroup& curve = ctx_->curve();
  size_t lo = key.j << key.level;
  size_t hi = lo + (size_t{1} << key.level) - 1;
  CurveGroup::Jacobian acc = curve.ToJacobian(ECPoint{});
  size_t pos = lo;
  while (pos <= hi && pos < n_) {
    bool used_cache = false;
    for (int level = key.level - 1; level >= 1; --level) {
      size_t m = size_t{1} << level;
      if (pos % m != 0 || pos + m - 1 > hi) continue;
      auto it = entries_.find(Key{level, pos >> level});
      // Sub-windows are reusable only within the same chain generation —
      // mixing generations inside one recomputed node is exactly what the
      // tag exists to prevent.
      if (it == entries_.end() || !it->second.valid ||
          it->second.generation != generation) {
        continue;
      }
      ++it->second.access_count;
      ++stats->cache_hits;
      if (!it->second.sig.point.infinity)
        acc = curve.JacAddAffine(acc, it->second.sig.point);
      ++stats->point_adds;
      pos += m;
      used_cache = true;
      break;
    }
    if (used_cache) continue;
    BasSignature leaf = leaves(pos);
    ++stats->leaf_fetches;
    if (!leaf.point.infinity) acc = curve.JacAddAffine(acc, leaf.point);
    ++stats->point_adds;
    ++pos;
  }
  if (stats->point_adds > 0) --stats->point_adds;  // n items = n-1 additions
  return BasSignature{curve.ToAffine(acc)};
}

BasSignature SigCache::RangeAggregate(size_t lo, size_t hi, AggStats* stats) {
  AggStats local;
  AggStats* s = stats != nullptr ? stats : &local;
  *s = AggStats{};  // counters cover this call only
  MutexLock lock(mu_);
  const CurveGroup& curve = ctx_->curve();
  CurveGroup::Jacobian acc = curve.ToJacobian(ECPoint{});
  size_t items = 0;
  size_t pos = lo;
  while (pos <= hi && pos < n_) {
    bool used_cache = false;
    for (int level = max_level_; level >= 1; --level) {
      size_t m = size_t{1} << level;
      if (pos % m != 0 || pos + m - 1 > hi) continue;
      auto it = entries_.find(Key{level, pos >> level});
      if (it == entries_.end()) continue;
      if (!it->second.valid) {
        // Lazy refresh: recompute this node now, charged to this query.
        ++s->refreshes;
        it->second.sig =
            ComputeNode(it->first, it->second.generation, leaves_, s);
        it->second.valid = true;
      }
      ++it->second.access_count;
      ++s->cache_hits;
      if (!it->second.sig.point.infinity)
        acc = curve.JacAddAffine(acc, it->second.sig.point);
      if (items++ > 0) ++s->point_adds;
      pos += m;
      used_cache = true;
      break;
    }
    if (used_cache) continue;
    BasSignature leaf = leaves_(pos);
    ++s->leaf_fetches;
    if (!leaf.point.infinity) acc = curve.JacAddAffine(acc, leaf.point);
    if (items++ > 0) ++s->point_adds;
    ++pos;
  }
  return BasSignature{curve.ToAffine(acc)};
}

BasSignature SigCache::RangeAggregate(size_t lo, size_t hi,
                                      uint64_t generation,
                                      const LeafProvider& leaves,
                                      AggStats* stats,
                                      const SpanProvider& spans) {
  // A batch of one: the decomposition, tagging, and stats discipline live
  // in RangeAggregateBatch so the scalar and batched paths cannot drift.
  std::vector<AggStats> st(1);
  if (stats != nullptr) st[0] = *stats;  // accumulated, not reset
  std::vector<BasSignature> out = RangeAggregateBatch(
      {RangeSpec{lo, hi}}, generation, leaves, &st, spans);
  if (stats != nullptr) *stats = st[0];
  return out[0];
}

struct SigCache::BatchState {
  std::map<Key, size_t> staged;          ///< window -> index into jacs/keys
  std::vector<CurveGroup::Jacobian> jacs;
  std::vector<Key> keys;
};

CurveGroup::Jacobian SigCache::JacComputeNode(const Key& key,
                                              uint64_t generation,
                                              const LeafProvider& leaves,
                                              const SpanProvider& spans,
                                              BatchState* batch,
                                              AggStats* stats) {
  const CurveGroup& curve = ctx_->curve();
  size_t lo = key.j << key.level;
  size_t hi = lo + (size_t{1} << key.level) - 1;
  CurveGroup::Jacobian acc{};
  size_t pos = lo;
  while (pos <= hi && pos < n_) {
    bool used_cache = false;
    for (int level = key.level - 1; level >= 1; --level) {
      size_t m = size_t{1} << level;
      if (pos % m != 0 || pos + m - 1 > hi) continue;
      Key sub{level, pos >> level};
      auto it = entries_.find(sub);
      if (it == entries_.end()) continue;
      auto st = batch->staged.find(sub);
      bool is_staged = st != batch->staged.end();
      // Sub-windows are reusable only within the same chain generation —
      // mixing generations inside one recomputed node is exactly what the
      // tag exists to prevent. A window staged this call IS generation
      // `generation`; its entry flags just haven't been written yet.
      if (!is_staged &&
          (!it->second.valid || it->second.generation != generation)) {
        continue;
      }
      ++it->second.access_count;
      ++stats->cache_hits;
      if (is_staged) {
        acc = curve.JacAdd(acc, batch->jacs[st->second]);
      } else if (!it->second.sig.point.infinity) {
        acc = curve.JacAddAffine(acc, it->second.sig.point);
      }
      ++stats->point_adds;
      pos += m;
      used_cache = true;
      break;
    }
    if (used_cache) continue;
    // Precomputed prefix (a frozen chunk aggregate) before single leaves:
    // the fill consumes whole chunks in one addition each. The clamp to
    // this node's interval keeps the fold byte-identical to the leaf walk.
    if (spans != nullptr) {
      ECPoint span_agg;
      size_t len = spans(pos, std::min(hi, n_ - 1), &span_agg);
      if (len > 0) {
        ++stats->span_hits;
        if (!span_agg.infinity) acc = curve.JacAddAffine(acc, span_agg);
        ++stats->point_adds;
        pos += len;
        continue;
      }
    }
    BasSignature leaf = leaves(pos);
    ++stats->leaf_fetches;
    if (!leaf.point.infinity) acc = curve.JacAddAffine(acc, leaf.point);
    ++stats->point_adds;
    ++pos;
  }
  if (stats->point_adds > 0) --stats->point_adds;  // n items = n-1 additions
  return acc;
}

CurveGroup::Jacobian SigCache::JacRangeWalk(size_t lo, size_t hi,
                                            uint64_t generation,
                                            const LeafProvider& leaves,
                                            const SpanProvider& spans,
                                            BatchState* batch,
                                            AggStats* s) {
  const CurveGroup& curve = ctx_->curve();
  CurveGroup::Jacobian acc{};
  size_t items = 0;
  size_t pos = lo;
  while (pos <= hi) {
    bool used_cache = false;
    // Cached windows apply only inside [0, n_); a shard that grew past its
    // planning size serves the tail from leaves below.
    if (pos < n_) {
      for (int level = max_level_; level >= 1; --level) {
        size_t m = size_t{1} << level;
        if (pos % m != 0 || pos + m - 1 > hi || pos + m > n_) continue;
        Key key{level, pos >> level};
        auto it = entries_.find(key);
        if (it == entries_.end()) continue;
        auto st = batch->staged.find(key);
        bool is_staged = st != batch->staged.end();
        if (!is_staged && it->second.valid &&
            it->second.generation > generation) {
          // The window already serves a NEWER generation: a reader still
          // pinned to an older epoch must not clobber it (alternating
          // old/new readers would otherwise thrash full recomputes) —
          // fall through to this pos's leaves instead.
          continue;
        }
        if (!is_staged &&
            (!it->second.valid || it->second.generation < generation)) {
          // Stale or never-filled window: recompute against this reader's
          // pinned snapshot and stage the fill — it advances the tag when
          // the batch's shared inversion writes it back.
          ++s->refreshes;
          CurveGroup::Jacobian node =
              JacComputeNode(key, generation, leaves, spans, batch, s);
          batch->staged[key] = batch->jacs.size();
          batch->jacs.push_back(std::move(node));
          batch->keys.push_back(key);
          st = batch->staged.find(key);
          is_staged = true;
        }
        ++it->second.access_count;
        ++s->cache_hits;
        if (is_staged) {
          acc = curve.JacAdd(acc, batch->jacs[st->second]);
        } else if (!it->second.sig.point.infinity) {
          acc = curve.JacAddAffine(acc, it->second.sig.point);
        }
        if (items++ > 0) ++s->point_adds;
        pos += m;
        used_cache = true;
        break;
      }
    }
    if (used_cache) continue;
    // Precomputed prefix before single leaves — the seam-stitch fallback
    // consumes whole frozen chunks in one addition each.
    if (spans != nullptr) {
      ECPoint span_agg;
      size_t len = spans(pos, hi, &span_agg);
      if (len > 0) {
        ++s->span_hits;
        if (!span_agg.infinity) acc = curve.JacAddAffine(acc, span_agg);
        if (items++ > 0) ++s->point_adds;
        pos += len;
        continue;
      }
    }
    BasSignature leaf = leaves(pos);
    ++s->leaf_fetches;
    if (!leaf.point.infinity) acc = curve.JacAddAffine(acc, leaf.point);
    if (items++ > 0) ++s->point_adds;
    ++pos;
  }
  return acc;
}

std::vector<BasSignature> SigCache::RangeAggregateBatch(
    const std::vector<RangeSpec>& ranges, uint64_t generation,
    const LeafProvider& leaves, std::vector<AggStats>* per_range_stats,
    const SpanProvider& spans) {
  const CurveGroup& curve = ctx_->curve();
  if (per_range_stats != nullptr && per_range_stats->size() < ranges.size())
    per_range_stats->resize(ranges.size());
  MutexLock lock(mu_);
  BatchState batch;
  std::vector<CurveGroup::Jacobian> range_jacs;
  range_jacs.reserve(ranges.size());
  for (size_t i = 0; i < ranges.size(); ++i) {
    AggStats local;
    AggStats* s =
        per_range_stats != nullptr ? &(*per_range_stats)[i] : &local;
    range_jacs.push_back(JacRangeWalk(ranges[i].lo, ranges[i].hi, generation,
                                      leaves, spans, &batch, s));
  }
  // ONE shared inversion finalizes every staged window fill and every
  // range result together.
  std::vector<CurveGroup::Jacobian> all = std::move(batch.jacs);
  for (CurveGroup::Jacobian& rj : range_jacs) all.push_back(std::move(rj));
  std::vector<ECPoint> pts = curve.ToAffineBatch(all);
  for (size_t f = 0; f < batch.keys.size(); ++f) {
    Entry& e = entries_[batch.keys[f]];
    e.sig = BasSignature{std::move(pts[f])};
    e.valid = true;
    e.generation = generation;
  }
  std::vector<BasSignature> out;
  out.reserve(ranges.size());
  for (size_t i = 0; i < ranges.size(); ++i)
    out.push_back(BasSignature{std::move(pts[batch.keys.size() + i])});
  return out;
}

void SigCache::OnLeafUpdate(size_t pos, const BasSignature& old_sig,
                            const BasSignature& new_sig) {
  MutexLock lock(mu_);
  for (auto& [key, entry] : entries_) {
    if ((pos >> key.level) != key.j) continue;
    if (mode_ == RefreshMode::kLazy) {
      entry.valid = false;
    } else if (entry.valid) {
      // Patch in place: subtract the old component, add the new one.
      entry.sig = ctx_->Combine(ctx_->Remove(entry.sig, old_sig), new_sig);
      eager_patch_adds_ += 2;
    }
  }
}

void SigCache::Revise(size_t keep) {
  MutexLock lock(mu_);
  if (entries_.size() <= keep) {
    // Nothing to evict, but the observation window still restarts.
    for (auto& [key, entry] : entries_) entry.access_count = 0;
    return;
  }
  std::vector<std::pair<double, Key>> ranked;
  for (const auto& [key, entry] : entries_) {
    double savings = static_cast<double>((uint64_t{1} << key.level) - 1);
    ranked.push_back({static_cast<double>(entry.access_count) * savings, key});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::map<Key, Entry> kept;
  for (size_t i = 0; i < keep; ++i) {
    kept[ranked[i].second] = entries_[ranked[i].second];
    kept[ranked[i].second].access_count = 0;  // fresh window
  }
  entries_ = std::move(kept);
}

}  // namespace authdb
