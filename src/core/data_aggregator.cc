#include "core/data_aggregator.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "core/chain.h"

namespace authdb {

DataAggregator::DataAggregator(std::shared_ptr<const BasContext> ctx,
                               const Clock* clock, Rng* rng,
                               const Options& options)
    : ctx_(ctx),
      clock_(clock),
      options_(options),
      key_(BasPrivateKey::Generate(ctx, rng)),
      data_disk_(""),
      index_disk_(""),
      data_pool_(&data_disk_, options.buffer_pages),
      index_pool_(&index_disk_, options.buffer_pages),
      table_(&data_pool_, &index_pool_, &ctx->curve(), options.record_len),
      summary_(&codec_) {}

BasSignature DataAggregator::SignChained(const Record& rec, int64_t left,
                                         int64_t right) {
  ++signatures_issued_;
  return key_.Sign(ChainMessage(rec, left, right).AsSlice(),
                   options_.hash_mode);
}

std::vector<BasSignature> DataAggregator::MaybeSignAttributes(
    const Record& rec) const {
  if (!options_.sign_attributes) return {};
  return SignAttributes(rec);
}

void DataAggregator::MarkJoinDirty(int64_t composite_key, bool is_delete) {
  if (join_partitions_.empty()) return;
  int64_t b = JoinBValue(composite_key);
  for (const CertifiedPartition& p : join_partitions_) {
    if (p.lo_b <= b && b <= p.hi_b) {
      if (is_delete) {
        delete_dirty_.insert(p.idx);
      } else {
        pending_insert_b_[p.idx].push_back(b);
      }
      return;
    }
  }
}

std::vector<int64_t> DataAggregator::DistinctBValuesIn(
    const CertifiedPartition& p) const {
  // The edge partitions extend to the +-inf sentinels; clamp the composite
  // scan to the representable chain interior.
  int64_t lo = p.lo_b == std::numeric_limits<int64_t>::min()
                   ? kChainMinusInf + 1
                   : JoinCompositeKey(p.lo_b, 0);
  int64_t hi = p.hi_b == std::numeric_limits<int64_t>::max()
                   ? kChainPlusInf - 1
                   : JoinCompositeKey(p.hi_b, (1u << kJoinDupShift) - 1);
  std::vector<int64_t> out;
  for (const AuthTable::Item& item : table_.Scan(lo, hi).items) {
    int64_t b = JoinBValue(item.record.key());
    if (out.empty() || out.back() != b) out.push_back(b);
  }
  return out;
}

const std::vector<CertifiedPartition>& DataAggregator::EnableJoinPartitions(
    size_t values_per_partition, double bits_per_value) {
  join_authority_ = std::make_unique<JoinAuthority>(ctx_, &key_,
                                                    options_.hash_mode);
  std::vector<int64_t> distinct_b;
  for (const AuthTable::Item& item : table_.ScanAll()) {
    int64_t b = JoinBValue(item.record.key());
    if (distinct_b.empty() || distinct_b.back() != b) distinct_b.push_back(b);
  }
  join_partitions_ = join_authority_->BuildPartitions(
      distinct_b, values_per_partition, bits_per_value, clock_->NowMicros());
  pending_insert_b_.clear();
  delete_dirty_.clear();
  return join_partitions_;
}

Result<std::vector<SignedRecordUpdate>> DataAggregator::BulkLoad(
    std::vector<Record> records) {
  std::sort(records.begin(), records.end(),
            [](const Record& a, const Record& b) { return a.key() < b.key(); });
  uint64_t now = clock_->NowMicros();
  std::vector<SignedRecordUpdate> out;
  out.reserve(records.size());
  for (size_t i = 1; i < records.size(); ++i) {
    if (records[i].key() == records[i - 1].key())
      return Status::InvalidArgument("duplicate indexed key in bulk load");
  }
  // Assign rids sequentially; chain each record to its in-batch neighbors.
  for (size_t i = 0; i < records.size(); ++i) {
    Record& rec = records[i];
    rec.ts = now;
    rec.rid = table_.records().rid_upper_bound();
    int64_t left = i > 0 ? records[i - 1].key() : kChainMinusInf;
    int64_t right =
        i + 1 < records.size() ? records[i + 1].key() : kChainPlusInf;
    BasSignature sig = SignChained(rec, left, right);
    AUTHDB_RETURN_NOT_OK(table_.Insert(rec, sig));
    summary_.MarkUpdated(rec.rid);  // inserts appear in the period's bitmap
    SignedRecordUpdate msg;
    msg.kind = SignedRecordUpdate::Kind::kInsert;
    msg.key = rec.key();
    msg.record = CertifiedRecord{rec, sig, MaybeSignAttributes(rec)};
    out.push_back(std::move(msg));
  }
  return out;
}

Result<SignedRecordUpdate> DataAggregator::ModifyRecord(
    int64_t key, std::vector<int64_t> attrs) {
  if (attrs.empty() || attrs[0] != key)
    return Status::InvalidArgument("attrs[0] must equal the indexed key");
  AUTHDB_ASSIGN_OR_RETURN(AuthTable::Item existing, table_.GetByKey(key));
  Record rec;
  rec.rid = existing.record.rid;
  rec.ts = clock_->NowMicros();
  rec.attrs = std::move(attrs);
  auto [left, right] = table_.NeighborKeys(key);
  BasSignature sig = SignChained(rec, left, right);
  AUTHDB_RETURN_NOT_OK(table_.Update(rec, sig));
  summary_.MarkUpdated(rec.rid);
  SignedRecordUpdate msg;
  msg.kind = SignedRecordUpdate::Kind::kModify;
  msg.key = key;
  msg.record = CertifiedRecord{rec, sig, MaybeSignAttributes(rec)};
  if (options_.piggyback_renewal) PiggybackRenewal(rec.rid, &msg.recertified);
  return msg;
}

Result<SignedRecordUpdate> DataAggregator::InsertRecord(
    std::vector<int64_t> attrs) {
  if (attrs.empty()) return Status::InvalidArgument("no attributes");
  int64_t key = attrs[0];
  if (table_.ContainsKey(key))
    return Status::AlreadyExists("key " + std::to_string(key));
  Record rec;
  rec.rid = table_.records().rid_upper_bound();
  rec.ts = clock_->NowMicros();
  rec.attrs = std::move(attrs);
  auto [left, right] = table_.NeighborKeys(key);
  BasSignature sig = SignChained(rec, left, right);
  AUTHDB_RETURN_NOT_OK(table_.Insert(rec, sig));
  summary_.MarkUpdated(rec.rid);
  MarkJoinDirty(key, /*is_delete=*/false);
  SignedRecordUpdate msg;
  msg.kind = SignedRecordUpdate::Kind::kInsert;
  msg.key = key;
  msg.record = CertifiedRecord{rec, sig, MaybeSignAttributes(rec)};
  // The neighbors' chains now point at the new record: re-certify both.
  if (left != kChainMinusInf) Recertify(left, &msg.recertified);
  if (right != kChainPlusInf) Recertify(right, &msg.recertified);
  return msg;
}

Result<SignedRecordUpdate> DataAggregator::DeleteRecord(int64_t key) {
  AUTHDB_ASSIGN_OR_RETURN(AuthTable::Item victim, table_.GetByKey(key));
  auto [left, right] = table_.NeighborKeys(key);
  AUTHDB_RETURN_NOT_OK(table_.Delete(key));
  summary_.MarkUpdated(victim.record.rid);
  MarkJoinDirty(key, /*is_delete=*/true);
  SignedRecordUpdate msg;
  msg.kind = SignedRecordUpdate::Kind::kDelete;
  msg.key = key;
  // The ex-neighbors now chain to each other.
  if (left != kChainMinusInf) Recertify(left, &msg.recertified);
  if (right != kChainPlusInf) Recertify(right, &msg.recertified);
  return msg;
}

void DataAggregator::Recertify(int64_t key,
                               std::vector<CertifiedRecord>* out) {
  auto item = table_.GetByKey(key);
  if (!item.ok()) return;
  Record rec = item.value().record;
  rec.ts = clock_->NowMicros();
  auto [left, right] = table_.NeighborKeys(key);
  BasSignature sig = SignChained(rec, left, right);
  Status s = table_.Update(rec, sig);
  AUTHDB_CHECK(s.ok());
  summary_.MarkUpdated(rec.rid);
  out->push_back(CertifiedRecord{rec, sig, MaybeSignAttributes(rec)});
}

void DataAggregator::PiggybackRenewal(uint64_t around_rid,
                                      std::vector<CertifiedRecord>* out) {
  // The disk block holding `around_rid` is already in memory: re-certify
  // any cohabitant whose signature is older than rho' (Section 3.1).
  uint64_t now = clock_->NowMicros();
  for (RecordId rid : table_.records().RidsInSamePage(around_rid)) {
    if (rid == around_rid) continue;
    auto bytes = table_.records().Read(rid);
    if (!bytes.ok()) continue;
    Record rec = Record::Deserialize(Slice(bytes.value()));
    if (now - rec.ts > options_.rho_prime_micros) {
      Recertify(rec.key(), out);
    }
  }
}

DataAggregator::PeriodOutput DataAggregator::PublishSummary() {
  PeriodOutput out;
  std::vector<uint64_t> multi = summary_.MultiUpdatedRids();
  out.summary = summary_.BuildAndSign(summary_seq_++, clock_->NowMicros(),
                                      table_.records().rid_upper_bound(),
                                      key_, options_.hash_mode);
  // Re-certify multi-updated records in the new period so their stale
  // intermediate versions are invalidated by the next summary.
  for (uint64_t rid : multi) {
    auto bytes = table_.records().Read(rid);
    if (!bytes.ok()) continue;  // deleted meanwhile
    Record rec = Record::Deserialize(Slice(bytes.value()));
    SignedRecordUpdate msg;
    msg.kind = SignedRecordUpdate::Kind::kRecertify;
    msg.key = rec.key();
    Recertify(rec.key(), &msg.recertified);
    if (!msg.recertified.empty()) out.recertifications.push_back(std::move(msg));
  }
  // Join state rides the same cadence. Delete-dirty partitions are rebuilt
  // from a table scan (a delete left a B value the filter cannot forget);
  // everything else ships a cheap delta — a small filter over the period's
  // inserted B values, or an empty recertification — that skips both the
  // scan and the full re-hash, so refreshes stay cheap as partitions grow.
  if (join_authority_ != nullptr) {
    uint64_t now = clock_->NowMicros();
    static const std::vector<int64_t> kNoValues;
    for (CertifiedPartition& p : join_partitions_) {
      if (delete_dirty_.count(p.idx) > 0) {
        p = join_authority_->RebuildPartition(p, DistinctBValuesIn(p), now);
        out.partition_refresh.full.push_back(p);
      } else {
        auto it = pending_insert_b_.find(p.idx);
        out.partition_refresh.deltas.push_back(join_authority_->RefreshWithDelta(
            &p, it == pending_insert_b_.end() ? kNoValues : it->second, now));
      }
    }
    pending_insert_b_.clear();
    delete_dirty_.clear();
  }
  return out;
}

std::vector<SignedRecordUpdate> DataAggregator::BackgroundRenewal(
    size_t budget) {
  std::vector<SignedRecordUpdate> out;
  uint64_t upper = table_.records().rid_upper_bound();
  if (upper == 0) return out;
  uint64_t now = clock_->NowMicros();
  uint64_t scanned = 0;
  while (budget > 0 && scanned < upper) {
    uint64_t rid = renewal_cursor_++ % upper;
    ++scanned;
    auto bytes = table_.records().Read(rid);
    if (!bytes.ok()) continue;
    Record rec = Record::Deserialize(Slice(bytes.value()));
    if (now - rec.ts > options_.rho_prime_micros) {
      SignedRecordUpdate msg;
      msg.kind = SignedRecordUpdate::Kind::kRecertify;
      msg.key = rec.key();
      Recertify(rec.key(), &msg.recertified);
      if (!msg.recertified.empty()) {
        out.push_back(std::move(msg));
        --budget;
      }
    }
  }
  return out;
}

ByteBuffer DataAggregator::AttributeMessage(uint64_t rid, uint32_t attr_index,
                                            int64_t value, uint64_t ts) {
  ByteBuffer buf;
  buf.PutString("attr");
  buf.PutU64(rid);
  buf.PutU32(attr_index);
  buf.PutI64(value);
  buf.PutU64(ts);
  return buf;
}

std::vector<BasSignature> DataAggregator::SignAttributes(
    const Record& rec) const {
  std::vector<BasSignature> out;
  out.reserve(rec.attrs.size());
  for (size_t i = 0; i < rec.attrs.size(); ++i) {
    out.push_back(key_.Sign(
        AttributeMessage(rec.rid, static_cast<uint32_t>(i), rec.attrs[i],
                         rec.ts)
            .AsSlice(),
        options_.hash_mode));
  }
  return out;
}

}  // namespace authdb
