#ifndef AUTHDB_CORE_CHAIN_H_
#define AUTHDB_CORE_CHAIN_H_

#include <cstdint>
#include <limits>

#include "common/slice.h"
#include "core/record.h"

namespace authdb {

/// Sentinel neighbor keys for the first / last record in index order.
/// The paper's chaining technique (Section 3.3, after [26],[24]) signs each
/// record together with its immediate neighbors' index-attribute values;
/// records at the domain edges chain to these sentinels.
constexpr int64_t kChainMinusInf = std::numeric_limits<int64_t>::min();
constexpr int64_t kChainPlusInf = std::numeric_limits<int64_t>::max();

/// Canonical byte string whose hash is signed for a record r:
///
///   sign( h( r.key | h(r.rid | A1 | ... | AM | ts) | left.key | right.key ) )
///
/// The record content enters through its digest (as in [24]), so
/// non-existence proofs can transmit a 20-byte digest instead of the full
/// record; the record's own key is bound separately so proofs can reason
/// about key order. A record update (same key) changes only this record's
/// message; an insert/delete also re-chains the two neighbors — the
/// locality that lets the scheme run updates concurrently (unlike the MHT
/// root bottleneck).
inline ByteBuffer ChainMessage(int64_t key, const Digest160& record_digest,
                               int64_t left_key, int64_t right_key) {
  ByteBuffer buf;
  buf.PutString("chain");
  buf.PutI64(key);
  buf.PutBytes(record_digest.AsSlice());
  buf.PutI64(left_key);
  buf.PutI64(right_key);
  return buf;
}

/// Single-record convenience overload for signing/update paths; bulk
/// message building precomputes digests via RecordDigestMany and calls
/// the Digest160 overload above.
inline ByteBuffer ChainMessage(const Record& r, int64_t left_key,
                               int64_t right_key) {
  // authdb-lint: allow(crypto-batch) one record per call by design
  return ChainMessage(r.key(), r.Digest(), left_key, right_key);
}

}  // namespace authdb

#endif  // AUTHDB_CORE_CHAIN_H_
