#include "core/freshness.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace authdb {

void SummaryBuilder::MarkUpdated(uint64_t rid) { ++marks_[rid]; }

std::vector<uint64_t> SummaryBuilder::MultiUpdatedRids() const {
  std::vector<uint64_t> out;
  for (const auto& [rid, count] : marks_) {
    if (count > 1) out.push_back(rid);
  }
  return out;
}

UpdateSummary SummaryBuilder::BuildAndSign(uint64_t seq, uint64_t publish_ts,
                                           uint64_t nbits,
                                           const BasPrivateKey& key,
                                           BasContext::HashMode mode) {
  Bitmap bm(nbits);
  for (const auto& [rid, count] : marks_) {
    if (rid < nbits) bm.Set(rid);
  }
  UpdateSummary out;
  out.seq = seq;
  out.publish_ts = publish_ts;
  out.nbits = nbits;
  out.compressed_bitmap = codec_->Encode(bm);
  out.sig = key.Sign(out.SignedMessage().AsSlice(), mode);
  marks_.clear();
  return out;
}

void FreshnessTracker::Publish(uint64_t seq, uint64_t publish_ts) {
  MutexLock lock(mu_);
  ++publications_;
  if (seq + 1 > epoch_) {
    epoch_ = seq + 1;
    latest_publish_ts_ = publish_ts;
  }
}

uint64_t FreshnessTracker::current_epoch() const {
  MutexLock lock(mu_);
  return epoch_;
}

uint64_t FreshnessTracker::latest_publish_ts() const {
  MutexLock lock(mu_);
  return latest_publish_ts_;
}

uint64_t FreshnessTracker::publications() const {
  MutexLock lock(mu_);
  return publications_;
}

Status FreshnessChecker::AddSummary(const UpdateSummary& summary) {
  if (summaries_.count(summary.seq)) return Status::OK();  // already held
  if (!da_pub_->Verify(summary.SignedMessage().AsSlice(), summary.sig, mode_))
    return Status::VerificationFailed("summary signature mismatch");
  auto after = summaries_.upper_bound(summary.seq);
  if (after != summaries_.end() &&
      summary.publish_ts > after->second.publish_ts)
    return Status::VerificationFailed("summary timestamp regression");
  if (after != summaries_.begin()) {
    auto before = std::prev(after);
    if (summary.publish_ts < before->second.publish_ts)
      return Status::VerificationFailed("summary timestamp regression");
  }
  Held held;
  held.publish_ts = summary.publish_ts;
  held.bitmap = codec_->Decode(Slice(summary.compressed_bitmap));
  summaries_.emplace(summary.seq, std::move(held));
  return Status::OK();
}

Status FreshnessChecker::CheckRecord(uint64_t rid, uint64_t record_ts,
                                     uint64_t now,
                                     uint64_t* max_staleness_micros) const {
  if (summaries_.empty() ||
      record_ts > summaries_.rbegin()->second.publish_ts) {
    // Newer than the latest bitmap: fresh, or out-of-date by < rho.
    if (max_staleness_micros != nullptr)
      *max_staleness_micros = now > record_ts ? now - record_ts : 0;
    return Status::OK();
  }
  // Walk every summary published at/after the record's certification. The
  // run must be gapless through the latest summary; a missing period means
  // we cannot attest that the record was not superseded inside it.
  //
  // Mark semantics: a record's own certification necessarily marks the
  // summary of the period *containing* r.ts, so that mark is expected. Only
  // a mark in a period that began strictly after r.ts (period start = the
  // previous summary's publish time) proves a newer version exists. A
  // second update inside r.ts's own period is caught one period later via
  // the DA's multi-update re-certification — the paper's 2*rho bound.
  bool in_run = false;
  uint64_t prev_seq = 0;
  uint64_t prev_publish_ts = 0;
  for (const auto& [seq, s] : summaries_) {
    if (s.publish_ts < record_ts) {
      prev_publish_ts = s.publish_ts;
      continue;
    }
    if (in_run && seq != prev_seq + 1)
      return Status::VerificationFailed(
          "summary coverage gap between seq " + std::to_string(prev_seq) +
          " and " + std::to_string(seq));
    if (s.bitmap.Get(rid) && prev_publish_ts > record_ts) {
      return Status::VerificationFailed(
          "record " + std::to_string(rid) +
          " was updated after its returned version (summary seq " +
          std::to_string(seq) + ")");
    }
    in_run = true;
    prev_seq = seq;
    prev_publish_ts = s.publish_ts;
  }
  if (max_staleness_micros != nullptr) {
    uint64_t latest = summaries_.rbegin()->second.publish_ts;
    *max_staleness_micros = now > latest ? now - latest : 0;
  }
  return Status::OK();
}

}  // namespace authdb
