#ifndef AUTHDB_CORE_JOIN_H_
#define AUTHDB_CORE_JOIN_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/auth_table.h"
#include "core/vo_size.h"
#include "crypto/bloom.h"

namespace authdb {

/// Authenticated equi-join R ><(R.A = S.B) S — Section 3.5.
///
/// S.B contains duplicates, but the authenticated index requires unique
/// keys, so S rows are indexed on a *composite* sort key
///   kc = (B << kJoinDupShift) | dup_index,
/// which preserves B order; the B value of any composite key is recovered
/// with JoinBValue(). Chain signatures over composite-key order give the
/// same completeness semantics per distinct B value.
constexpr int kJoinDupShift = 20;

inline int64_t JoinCompositeKey(int64_t b, uint32_t dup_index) {
  return (b << kJoinDupShift) | static_cast<int64_t>(dup_index);
}
inline int64_t JoinBValue(int64_t composite_key) {
  return composite_key >> kJoinDupShift;
}
/// Largest duplicate index the composite encoding can hold.
constexpr uint32_t kJoinMaxDup = (1u << kJoinDupShift) - 1;
/// B values whose whole composite range is representable and clear of the
/// chain sentinels — the executors reject probe values outside it.
inline bool JoinBValueInDomain(int64_t b) {
  return b > (std::numeric_limits<int64_t>::min() >> kJoinDupShift) &&
         b < (std::numeric_limits<int64_t>::max() >> kJoinDupShift);
}

/// A DA-certified Bloom filter over the distinct S.B values of one
/// horizontal partition [lo_b, hi_b] of S (Section 3.5, "Authenticating
/// with Bloom Filters").
struct CertifiedPartition {
  uint32_t idx = 0;
  int64_t lo_b = 0, hi_b = 0;  ///< inclusive range of B values covered
  uint64_t ts = 0;
  BloomFilter filter;
  BasSignature sig;

  ByteBuffer SignedMessage() const {
    ByteBuffer buf;
    buf.PutString("bfpart");
    buf.PutU32(idx);
    buf.PutI64(lo_b);
    buf.PutI64(hi_b);
    buf.PutU64(ts);
    buf.PutU64(filter.bit_count());
    buf.PutU32(static_cast<uint32_t>(filter.hash_count()));
    buf.PutBytes(filter.CertificationDigest().AsSlice());
    return buf;
  }
};

/// An insert-only refresh of one partition: a small delta filter with the
/// live partition's geometry, plus the DA's signature over the POST-merge
/// SignedMessage. The server ORs the delta into its current filter
/// (BloomFilter::Merge is a deterministic bit-OR, so DA and server
/// reproduce bit-identical merged filters) and installs the new ts + sig;
/// any divergence makes the shipped certificate fail client verification.
/// An empty delta filter is a pure recertification (timestamp bump only).
/// Deletes cannot ride a delta — Bloom filters cannot forget — so a
/// delete-dirty partition ships as a full CertifiedPartition rebuild.
struct PartitionDelta {
  uint32_t idx = 0;
  uint64_t ts = 0;
  BloomFilter delta;  ///< empty ⇒ recertification only
  BasSignature sig;   ///< over the post-merge SignedMessage
};

/// One rho-period's worth of partition maintenance, shipped DA -> server
/// at the epoch barrier: full rebuilds for delete-dirty partitions, cheap
/// deltas (merge or recertify) for everything else.
struct PartitionRefresh {
  std::vector<CertifiedPartition> full;
  std::vector<PartitionDelta> deltas;
  bool empty() const { return full.empty() && deltas.empty(); }
};

/// Apply one refresh to a partitions vector in place: full rebuilds
/// replace the matching partition by idx (or append a new one), deltas
/// merge into the matching filter and install the post-merge ts + sig.
/// Returns false when a delta references a missing partition or its
/// geometry mismatches — the caller should treat the refresh as
/// corrupt and keep its previous state.
bool ApplyPartitionRefresh(const PartitionRefresh& refresh,
                           std::vector<CertifiedPartition>* partitions);

/// The (unique) partition whose [lo_b, hi_b] range covers `b`, or nullptr
/// when none does — shared by the single-node prover and the sharded
/// executor so their negative-probe decisions cannot diverge.
inline const CertifiedPartition* FindCoveringPartition(
    const std::vector<CertifiedPartition>& partitions, int64_t b) {
  for (const CertifiedPartition& p : partitions) {
    if (p.lo_b <= b && b <= p.hi_b) return &p;
  }
  return nullptr;
}

/// DA-side partition construction and maintenance.
class JoinAuthority {
 public:
  JoinAuthority(std::shared_ptr<const BasContext> ctx,
                const BasPrivateKey* key, BasContext::HashMode mode)
      : ctx_(std::move(ctx)), key_(key), mode_(mode) {}

  /// Partition the sorted distinct B values into chunks of
  /// `values_per_partition` (the paper's IB/p) and certify one filter per
  /// partition with `bits_per_value` bits per distinct value (m/IB).
  /// The first/last partitions extend to -inf/+inf so every probe value
  /// falls in exactly one partition.
  std::vector<CertifiedPartition> BuildPartitions(
      const std::vector<int64_t>& sorted_distinct_b,
      size_t values_per_partition, double bits_per_value, uint64_t ts) const;

  /// Rebuild one partition after an S update (deletions cannot be removed
  /// from a Bloom filter — the whole partition filter is recomputed, which
  /// is why finer partitions update faster; Figure 11c).
  CertifiedPartition RebuildPartition(
      const CertifiedPartition& old,
      const std::vector<int64_t>& remaining_values, uint64_t ts) const;

  /// Refresh a live partition in place from an insert-only update set:
  /// builds a same-geometry delta filter over `new_values`, merges it
  /// into the live filter double-buffered (readers of the old buffer are
  /// unaffected until the switch), stamps `ts`, and signs the post-merge
  /// message. The returned delta is what ships to the server — merging
  /// it there must reproduce these exact bits for the signature to
  /// verify client-side. With empty `new_values` this degenerates to a
  /// recertification delta.
  PartitionDelta RefreshWithDelta(CertifiedPartition* live,
                                  const std::vector<int64_t>& new_values,
                                  uint64_t ts) const;

  /// Re-certify an unchanged partition with a fresh timestamp (the
  /// rho-period refresh of the streaming pipeline: clients can then bound
  /// how stale a shipped filter may be).
  CertifiedPartition Recertify(const CertifiedPartition& old,
                               uint64_t ts) const {
    CertifiedPartition part = old;
    part.ts = ts;
    return Certify(std::move(part));
  }

 private:
  CertifiedPartition Certify(CertifiedPartition part) const;
  std::shared_ptr<const BasContext> ctx_;
  const BasPrivateKey* key_;
  BasContext::HashMode mode_;
};

/// Proof that no S row has B == a: a chained record adjacent to the gap.
/// ~36 bytes of evidence (digest + keys) rather than a full record. The
/// witness's rid/ts ride along for the client-side freshness walk — they
/// are bound to the digest only through the record content (the verifier
/// cannot recompute the digest from them), the same trust position as the
/// epoch stamp: replayed genuine answers carry genuine rid/ts and are
/// caught by the summary bitmaps; a server forging them is caught by the
/// epoch cross-check (see ClientVerifier::VerifyJoinFresh).
struct AbsenceProof {
  int64_t a_value = 0;          ///< the unmatched R.A value proven absent
  int64_t rec_key = 0;          ///< composite key of the witness record
  uint64_t rec_rid = 0;         ///< witness rid (freshness walk)
  uint64_t rec_ts = 0;          ///< witness certification time
  Digest160 rec_digest;         ///< witness content digest
  int64_t left_key = 0, right_key = 0;  ///< witness chain neighbors
};

/// Matching S rows for one distinct R.A value, with group boundaries.
struct JoinMatch {
  int64_t a_value = 0;
  std::vector<Record> s_records;         ///< all S rows with B == a_value
  int64_t left_key = 0, right_key = 0;   ///< composite boundary keys
};

enum class JoinMethod { kBoundaryValues, kBloomFilter };

struct JoinAnswer {
  JoinMethod method = JoinMethod::kBloomFilter;
  std::vector<JoinMatch> matches;
  /// BF: values proven unmatched by a negative filter probe (with the
  /// partition index that answered).
  std::vector<std::pair<int64_t, uint32_t>> negative_probes;
  /// The certified partitions shipped to the user (deduplicated).
  std::vector<CertifiedPartition> partitions;
  /// BV: every unmatched value; BF: only filter false positives.
  std::vector<AbsenceProof> absence_proofs;
  /// One aggregate over: all match-group S-record chain messages, all
  /// absence-witness chain messages, and all partition certifications.
  BasSignature agg_sig;

  /// VO size under the paper's accounting (Section 3.5 / Figure 11):
  /// boundary values at |S.B| bytes (deduplicated), filter bits, partition
  /// boundaries, plus one aggregate signature. Equals
  /// vo_bloom_bytes + vo_boundary_bytes + sm.signature_bytes.
  size_t vo_size_paper(const SizeModel& sm) const;
  /// Bloom share of the VO: shipped filter bits + partition boundary
  /// values (zero for the BV method).
  size_t vo_bloom_bytes(const SizeModel& sm) const;
  /// Boundary-proof share: witness digests + deduplicated boundary values
  /// (the only proof bytes of the BV method; the false-positive fallback
  /// under BF).
  size_t vo_boundary_bytes(const SizeModel& sm) const;
  /// Actual bytes our wire format would ship for the proof artifacts.
  size_t wire_size(const SizeModel& sm) const;
};

/// QS-side join proof construction over the authenticated S table.
class JoinProver {
 public:
  JoinProver(std::shared_ptr<const BasContext> ctx, const AuthTable* s_table,
             const std::vector<CertifiedPartition>* partitions)
      : ctx_(std::move(ctx)), s_(s_table), partitions_(partitions) {}

  /// Join the (already selected and separately proven) distinct R.A values
  /// against S.
  Result<JoinAnswer> Join(const std::vector<int64_t>& r_values,
                          JoinMethod method) const;

 private:
  Result<JoinMatch> MatchGroup(int64_t a) const;
  Result<AbsenceProof> ProveAbsence(int64_t a) const;

  std::shared_ptr<const BasContext> ctx_;
  const AuthTable* s_;
  const std::vector<CertifiedPartition>* partitions_;
};

/// Client-side join verification: every R.A value must be accounted for by
/// exactly one proof (match group, negative probe, or absence witness), and
/// the single aggregate signature must cover every artifact.
class JoinVerifier {
 public:
  JoinVerifier(const BasPublicKey* da_pub, BasContext::HashMode mode)
      : da_pub_(da_pub), mode_(mode) {}

  Status Verify(const std::vector<int64_t>& r_values,
                const JoinAnswer& ans) const;

 private:
  const BasPublicKey* da_pub_;
  BasContext::HashMode mode_;
};

}  // namespace authdb

#endif  // AUTHDB_CORE_JOIN_H_
