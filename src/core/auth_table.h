#ifndef AUTHDB_CORE_AUTH_TABLE_H_
#define AUTHDB_CORE_AUTH_TABLE_H_

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/record.h"
#include "crypto/bas.h"
#include "index/btree.h"
#include "storage/record_file.h"

namespace authdb {

/// The ASign storage composition of Section 3.2 (Figure 2): a disk-based
/// B+-tree whose leaf entries are <key, sn, rid> over an external record
/// file. Both the data aggregator and the query server maintain one.
///
/// The index payload is signature(64) | rid(8) = 72 bytes. (The paper
/// stores 20-byte compressed ECC points; we serialize uncompressed points
/// and keep VO-size accounting on the paper's constants — see
/// core/vo_size.h.)
class AuthTable {
 public:
  AuthTable(BufferPool* data_pool, BufferPool* index_pool,
            const CurveGroup* curve, uint32_t record_len = 512);

  struct Item {
    Record record;
    BasSignature sig;
  };

  /// Insert a new record with its chain signature. Key must be fresh.
  Status Insert(const Record& rec, const BasSignature& sig);
  /// Replace the record with the same indexed key (value modification).
  Status Update(const Record& rec, const BasSignature& sig);
  /// Replace only the stored signature (re-certification / re-chaining).
  Status UpdateSignature(int64_t key, const BasSignature& sig);
  Status Delete(int64_t key);

  Result<Item> GetByKey(int64_t key) const;
  bool ContainsKey(int64_t key) const;

  struct RangeOut {
    std::optional<Item> left_boundary, right_boundary;
    std::vector<Item> items;
  };
  /// Inclusive range with boundary records (for completeness proofs).
  RangeOut Scan(int64_t lo, int64_t hi) const;

  /// Chain-neighbor keys of `key` (kChainMinusInf / kChainPlusInf at the
  /// domain edges). `key` itself need not exist: returns the neighbors the
  /// record *would* have — what an insert must chain to.
  std::pair<int64_t, int64_t> NeighborKeys(int64_t key) const;

  /// Every item in key order.
  std::vector<Item> ScanAll() const;

  uint64_t size() const { return index_.size(); }
  uint32_t index_height() const { return index_.height(); }
  const RecordFile& records() const { return records_; }
  uint32_t record_len() const { return records_.record_len(); }

 private:
  std::vector<uint8_t> EncodePayload(const BasSignature& sig,
                                     RecordId rid) const;
  std::pair<BasSignature, RecordId> DecodePayload(
      const std::vector<uint8_t>& payload) const;
  Result<Item> LoadItem(int64_t key,
                        const std::vector<uint8_t>& payload) const;

  RecordFile records_;
  BPlusTree index_;
  const CurveGroup* curve_;
};

}  // namespace authdb

#endif  // AUTHDB_CORE_AUTH_TABLE_H_
