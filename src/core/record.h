#ifndef AUTHDB_CORE_RECORD_H_
#define AUTHDB_CORE_RECORD_H_

#include <cstdint>
#include <vector>

#include "common/slice.h"
#include "crypto/sha.h"

namespace authdb {

/// A relational tuple with the paper's schema <rid, A1, ..., AM, ts>
/// (Section 3.1): a unique record identifier, M integer attributes, and the
/// timestamp of the record's last certification by the data aggregator.
/// attrs[0] is the indexed attribute A_ind.
struct Record {
  uint64_t rid = 0;
  uint64_t ts = 0;
  std::vector<int64_t> attrs;

  int64_t key() const { return attrs.empty() ? 0 : attrs[0]; }

  /// Canonical byte string h(.) is computed over: rid | A1 | ... | AM | ts.
  ByteBuffer CanonicalBytes() const {
    ByteBuffer buf;
    buf.PutU64(rid);
    for (int64_t a : attrs) buf.PutI64(a);
    buf.PutU64(ts);
    return buf;
  }

  Digest160 Digest() const { return Sha1::Hash(CanonicalBytes().AsSlice()); }

  /// Fixed-width serialization padded to `record_len` bytes (the paper's
  /// RecLen, default 512). Layout: u64 rid | u64 ts | u32 nattrs | attrs.
  std::vector<uint8_t> Serialize(size_t record_len) const;
  static Record Deserialize(Slice bytes);

  /// Minimum record_len able to hold this record.
  size_t WireSize() const { return 8 + 8 + 4 + attrs.size() * 8; }

  bool operator==(const Record& o) const {
    return rid == o.rid && ts == o.ts && attrs == o.attrs;
  }
};

/// Batched Record::Digest over an array of record pointers: every canonical
/// byte string crosses the multi-buffer SHA front end (Sha1::HashMany) in
/// one pass. Digest spines and chain-message walks should prefer this over
/// per-record Digest() calls.
inline void RecordDigestMany(const Record* const* recs, size_t count,
                             Digest160* out) {
  std::vector<ByteBuffer> bufs;
  bufs.reserve(count);
  std::vector<Slice> views;
  views.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    bufs.push_back(recs[i]->CanonicalBytes());
    views.push_back(bufs.back().AsSlice());
  }
  Sha1::HashMany(views.data(), count, out);
}

/// Contiguous-array convenience overload of RecordDigestMany.
inline void RecordDigestMany(const Record* recs, size_t count,
                             Digest160* out) {
  std::vector<const Record*> ptrs;
  ptrs.reserve(count);
  for (size_t i = 0; i < count; ++i) ptrs.push_back(&recs[i]);
  RecordDigestMany(ptrs.data(), count, out);
}

inline std::vector<uint8_t> Record::Serialize(size_t record_len) const {
  ByteBuffer buf;
  buf.PutU64(rid);
  buf.PutU64(ts);
  buf.PutU32(static_cast<uint32_t>(attrs.size()));
  for (int64_t a : attrs) buf.PutI64(a);
  std::vector<uint8_t> out = buf.bytes();
  if (out.size() < record_len) out.resize(record_len, 0);
  return out;
}

inline Record Record::Deserialize(Slice bytes) {
  Record r;
  auto u64at = [&](size_t off) {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= uint64_t{bytes[off + i]} << (8 * i);
    return v;
  };
  r.rid = u64at(0);
  r.ts = u64at(8);
  uint32_t n = 0;
  for (int i = 0; i < 4; ++i) n |= uint32_t{bytes[16 + i]} << (8 * i);
  r.attrs.resize(n);
  for (uint32_t i = 0; i < n; ++i)
    r.attrs[i] = static_cast<int64_t>(u64at(20 + 8 * i));
  return r;
}

}  // namespace authdb

#endif  // AUTHDB_CORE_RECORD_H_
