#ifndef AUTHDB_CORE_SIGCACHE_H_
#define AUTHDB_CORE_SIGCACHE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"
#include "core/vo_size.h"
#include "crypto/bas.h"

namespace authdb {

/// Query-cardinality distribution P(q) for q in [1, N] (Section 4.1). The
/// paper evaluates the truncated-harmonic ("skewed") distribution
/// P(q) = (1/q) / H_N, which favors short ranges, and the uniform
/// distribution P(q) = 1/N.
class CardinalityDist {
 public:
  static CardinalityDist Harmonic(uint64_t n);
  static CardinalityDist Uniform(uint64_t n);
  /// Uniform over [lo, hi] cardinalities, zero elsewhere (e.g. the paper's
  /// selectivity band [sf/2, 3sf/2] of Section 5.1).
  static CardinalityDist UniformRange(uint64_t n, uint64_t lo, uint64_t hi);
  /// Pointwise mixture (1-w)*a + w*b over the same N — the online planner
  /// retune interpolates between the assumed (harmonic) and observed-miss
  /// (uniform) distributions with the live hit/miss mix as the weight.
  static CardinalityDist Blend(const CardinalityDist& a,
                               const CardinalityDist& b, double w);

  double P(uint64_t q) const { return p_[q]; }
  uint64_t N() const { return p_.size() - 1; }

 private:
  explicit CardinalityDist(std::vector<double> p) : p_(std::move(p)) {}
  std::vector<double> p_;  // index 1..N; p_[0] unused
};

/// Exact xi(T_{i,j} | q): the number of cardinality-q range queries whose
/// aggregate signature derives from node j of level `level` in the
/// conceptual signature tree over N records (Section 4.1's case analysis).
/// N must be a power of two.
uint64_t SigTreeXi(uint64_t n, int level, uint64_t j, uint64_t q);

/// Offline cache planning — Algorithm 1 with the two optimizations the
/// paper describes: early termination and mirror-pair symmetry. Candidate
/// nodes are restricted to an edge band per level (the analysis shows
/// high-utility nodes sit near the edges; the band is validated by tests
/// against exhaustive search on small N).
class SigCachePlanner {
 public:
  struct Choice {
    int level = 0;
    uint64_t j = 0;
    double utility = 0;
  };
  struct PlanResult {
    /// Chosen nodes in selection order; mirror partners adjacent.
    std::vector<Choice> chosen;
    /// Expected aggregation cost (EC additions per query) after caching the
    /// first k pairs; index 0 = no caching.
    std::vector<double> cost_after_pairs;
    double base_cost = 0;  ///< expected additions without caching
  };

  static PlanResult Plan(uint64_t n, const CardinalityDist& dist,
                         size_t max_pairs, size_t edge_band = 64);

  /// P(T_{i,j}) = sum_q xi / (N-q+1) * P(q) — exact, O(1) per node after an
  /// O(N) prefix-sum setup (exposed for brute-force validation in tests).
  static double NodeProbability(uint64_t n, const CardinalityDist& dist,
                                int level, uint64_t j);
};

/// Runtime cache of aggregate signatures at the query server (Sections 4.2,
/// 4.3). Positions are ranks in index-key order; node (level, j) covers
/// positions [j*2^level, (j+1)*2^level).
///
/// Two maintenance disciplines share the entry table:
///  * The single-node QueryServer uses the untagged RangeAggregate with the
///    constructor's LeafProvider and patches/invalidates entries through
///    OnLeafUpdate (ranks there are stable across modifications).
///  * The sharded snapshot path uses the *generation-tagged* overload: every
///    cached window carries the chain generation it was computed from
///    (EpochSnapshot::generation), a per-call LeafProvider reads the
///    reader's pinned snapshot, and a window is reused only when the
///    generations match — cached aggregates are never mixed across chain
///    generations, and epochs that left the shard untouched keep the cache
///    hot without any patching.
///
/// Thread safety: the entry table is guarded by an internal mutex, so
/// RangeAggregate (which mutates access counts and performs lazy refreshes),
/// OnLeafUpdate, and Revise may race with each other. The LeafProvider is
/// invoked while that lock is held and must therefore be independently safe
/// to call: trivially so for the snapshot path (pinned snapshots are
/// immutable), while QueryServer's provider reads the index through the
/// buffer pool and relies on the server being externally serialized.
class SigCache {
 public:
  enum class RefreshMode { kEager, kLazy };
  /// Supplies the signature of the record at a rank (the query server backs
  /// this with its scanned range or its index).
  using LeafProvider = std::function<BasSignature(size_t pos)>;
  /// Supplies a precomputed aggregate over a rank span: when a span starts
  /// exactly at `pos` and ends at/before `hi` (inclusive), stores its
  /// affine aggregate in `*agg` and returns the span length, else 0. The
  /// snapshot path backs this with the epoch barrier's write-once chunk
  /// aggregates (EpochSnapshot::ChunkAggregateAt), so window fills and
  /// leaf-fold fallbacks start from precomputed prefixes instead of
  /// refetching each leaf.
  using SpanProvider = std::function<size_t(size_t pos, size_t hi,
                                            ECPoint* agg)>;

  SigCache(std::shared_ptr<const BasContext> ctx, uint64_t n_positions,
           RefreshMode mode, LeafProvider leaves);

  /// Pin a node into the cache (initially invalid; filled on first use or
  /// by eager refresh).
  void Pin(int level, uint64_t j) EXCLUDES(mu_);
  void PinPlan(const std::vector<SigCachePlanner::Choice>& plan)
      EXCLUDES(mu_);
  /// Materialize every pinned entry now (the offline initialization of
  /// Section 4.2) instead of charging the first queries with the fills.
  void WarmAll() EXCLUDES(mu_);

  struct AggStats {
    size_t point_adds = 0;    ///< EC additions performed
    size_t leaf_fetches = 0;  ///< individual signatures pulled
    size_t cache_hits = 0;    ///< cached nodes used
    size_t refreshes = 0;     ///< lazy refreshes triggered (window fills)
    size_t span_hits = 0;     ///< precomputed-prefix (chunk) aggregates used
  };

  /// Aggregate signature over positions [lo, hi] using the best cached
  /// cover; falls back to leaf signatures where no node applies. `stats`
  /// (optional) is reset on entry: it reports this call only.
  BasSignature RangeAggregate(size_t lo, size_t hi, AggStats* stats)
      EXCLUDES(mu_);

  /// Generation-tagged aggregate for the epoch-snapshot read path: cached
  /// windows are reused only when their stored generation equals
  /// `generation`. Stale windows (older generation, or never filled)
  /// recompute from `leaves` (the caller's pinned snapshot) and advance
  /// the tag; windows already serving a NEWER generation are left alone —
  /// a reader pinned to an older epoch falls through to leaves instead of
  /// thrashing the current readers' windows backward. Positions at/above
  /// the cache's n_positions fall back to `leaves` directly, so the call
  /// is valid for any hi below the snapshot size even after the shard
  /// grew. `stats` (optional) is *accumulated into*, not reset — stitched
  /// reads sum one stats block across every covered shard.
  BasSignature RangeAggregate(size_t lo, size_t hi, uint64_t generation,
                              const LeafProvider& leaves, AggStats* stats,
                              const SpanProvider& spans = nullptr)
      EXCLUDES(mu_);

  /// An inclusive position range to aggregate (same contract as the
  /// generation-tagged RangeAggregate).
  struct RangeSpec {
    size_t lo = 0, hi = 0;
  };

  /// Batched window fills + aggregates for one shard visit: every range is
  /// served under ONE lock hold, and the whole call performs ONE field
  /// inversion — window fills are staged as Jacobian accumulators (reused
  /// by later fills and ranges of the same call via Jacobian adds) and
  /// finalized together with the per-range results through
  /// CurveGroup::ToAffineBatch. Decomposition, generation tagging, and the
  /// newer-generation fall-through match the scalar tagged RangeAggregate
  /// exactly (which is now a batch of one). `per_range_stats`, when
  /// non-null, is resized to ranges.size() and each range's counters are
  /// accumulated into the matching slot; fill costs are charged to the
  /// range that first needed the window.
  /// `spans` (optional) short-circuits leaf folds with precomputed span
  /// aggregates; results are byte-identical either way (point addition is
  /// associative and commutative), only the work distribution changes.
  std::vector<BasSignature> RangeAggregateBatch(
      const std::vector<RangeSpec>& ranges, uint64_t generation,
      const LeafProvider& leaves, std::vector<AggStats>* per_range_stats,
      const SpanProvider& spans = nullptr) EXCLUDES(mu_);

  /// A record at `pos` changed signature. Eager mode patches every cached
  /// ancestor (old out, new in: 2 additions each); lazy mode invalidates.
  void OnLeafUpdate(size_t pos, const BasSignature& old_sig,
                    const BasSignature& new_sig) EXCLUDES(mu_);

  /// Adaptive revision (Section 4.2): keep the `keep` highest observed-
  /// utility nodes (access_count * savings), evict the rest.
  void Revise(size_t keep) EXCLUDES(mu_);

  size_t entry_count() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return entries_.size();
  }
  size_t cache_bytes(const SizeModel& sm) const {
    return entry_count() * sm.signature_bytes;
  }
  uint64_t eager_patch_adds() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return eager_patch_adds_;
  }

 private:
  struct Key {
    int level;
    uint64_t j;
    bool operator<(const Key& o) const {
      return level != o.level ? level < o.level : j < o.j;
    }
  };
  struct Entry {
    BasSignature sig;
    bool valid = false;
    /// Chain generation the cached value was computed from (the untagged
    /// QueryServer path pins generation 0 and maintains entries through
    /// OnLeafUpdate instead).
    uint64_t generation = 0;
    uint64_t access_count = 0;
  };

  /// Recomputes through other cached entries of the same generation,
  /// fetching leaves from `leaves`.
  BasSignature ComputeNode(const Key& key, uint64_t generation,
                           const LeafProvider& leaves, AggStats* stats)
      REQUIRES(mu_);

  /// Per-call staging area of RangeAggregateBatch: windows filled during
  /// the call stay Jacobian (visible to later fills and ranges of the same
  /// call) until the shared batch inversion writes them back affine.
  struct BatchState;

  /// Jacobian twin of ComputeNode: derives a node from smaller windows of
  /// the same generation — cached affine entries or fills staged earlier
  /// in this batch — and leaves, without finalizing.
  CurveGroup::Jacobian JacComputeNode(const Key& key, uint64_t generation,
                                      const LeafProvider& leaves,
                                      const SpanProvider& spans,
                                      BatchState* batch, AggStats* stats)
      REQUIRES(mu_);
  /// One range's greedy decomposition walk (the tagged RangeAggregate
  /// discipline), staging fills into `batch` instead of finalizing them.
  CurveGroup::Jacobian JacRangeWalk(size_t lo, size_t hi, uint64_t generation,
                                    const LeafProvider& leaves,
                                    const SpanProvider& spans,
                                    BatchState* batch, AggStats* stats)
      REQUIRES(mu_);

  std::shared_ptr<const BasContext> ctx_;
  uint64_t n_;
  int max_level_;
  RefreshMode mode_;
  LeafProvider leaves_;
  mutable Mutex mu_;
  std::map<Key, Entry> entries_ GUARDED_BY(mu_);
  uint64_t eager_patch_adds_ GUARDED_BY(mu_) = 0;
};

}  // namespace authdb

#endif  // AUTHDB_CORE_SIGCACHE_H_
