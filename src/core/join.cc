#include "core/join.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "core/chain.h"

namespace authdb {

// ---------------------------------------------------------------------------
// JoinAuthority

CertifiedPartition JoinAuthority::Certify(CertifiedPartition part) const {
  part.sig = key_->Sign(part.SignedMessage().AsSlice(), mode_);
  return part;
}

std::vector<CertifiedPartition> JoinAuthority::BuildPartitions(
    const std::vector<int64_t>& sorted_distinct_b,
    size_t values_per_partition, double bits_per_value, uint64_t ts) const {
  AUTHDB_CHECK(values_per_partition >= 1);
  AUTHDB_CHECK(std::is_sorted(sorted_distinct_b.begin(),
                              sorted_distinct_b.end()));
  std::vector<CertifiedPartition> out;
  size_t n = sorted_distinct_b.size();
  size_t p = (n + values_per_partition - 1) / values_per_partition;
  for (size_t i = 0; i < p; ++i) {
    size_t begin = i * values_per_partition;
    size_t end = std::min(n, begin + values_per_partition);
    CertifiedPartition part;
    part.idx = static_cast<uint32_t>(i);
    part.ts = ts;
    // Outer partitions extend to the key-domain edges so that every probe
    // value falls into exactly one partition.
    part.lo_b = i == 0 ? std::numeric_limits<int64_t>::min()
                       : sorted_distinct_b[begin];
    part.hi_b = i + 1 == p ? std::numeric_limits<int64_t>::max()
                           : sorted_distinct_b[end] - 1;
    part.filter = BloomFilter::WithBitsPerKey(end - begin, bits_per_value);
    for (size_t v = begin; v < end; ++v)
      part.filter.AddInt64(sorted_distinct_b[v]);
    out.push_back(Certify(std::move(part)));
  }
  return out;
}

CertifiedPartition JoinAuthority::RebuildPartition(
    const CertifiedPartition& old,
    const std::vector<int64_t>& remaining_values, uint64_t ts) const {
  CertifiedPartition part;
  part.idx = old.idx;
  part.lo_b = old.lo_b;
  part.hi_b = old.hi_b;
  part.ts = ts;
  part.filter = BloomFilter(old.filter.bit_count(), old.filter.hash_count());
  for (int64_t v : remaining_values) part.filter.AddInt64(v);
  return Certify(std::move(part));
}

PartitionDelta JoinAuthority::RefreshWithDelta(
    CertifiedPartition* live, const std::vector<int64_t>& new_values,
    uint64_t ts) const {
  PartitionDelta out;
  out.idx = live->idx;
  out.ts = ts;
  if (!new_values.empty()) {
    out.delta =
        BloomFilter(live->filter.bit_count(), live->filter.hash_count());
    for (int64_t v : new_values) out.delta.AddInt64(v);
    // Merge into the shadow buffer, then flip: the DA's own readers (none
    // today, but the contract is the same as the server's epoch swap)
    // never see a half-merged filter.
    DoubleBufferedBloom buffers(std::move(live->filter));
    AUTHDB_CHECK(buffers.MergeIntoShadow(out.delta));
    buffers.SwitchCurrent();
    live->filter = buffers.TakeCurrent();
  }
  live->ts = ts;
  live->sig = key_->Sign(live->SignedMessage().AsSlice(), mode_);
  out.sig = live->sig;
  return out;
}

bool ApplyPartitionRefresh(const PartitionRefresh& refresh,
                           std::vector<CertifiedPartition>* partitions) {
  for (const CertifiedPartition& f : refresh.full) {
    bool replaced = false;
    for (CertifiedPartition& p : *partitions) {
      if (p.idx == f.idx) {
        p = f;
        replaced = true;
        break;
      }
    }
    if (!replaced) partitions->push_back(f);
  }
  for (const PartitionDelta& d : refresh.deltas) {
    CertifiedPartition* target = nullptr;
    for (CertifiedPartition& p : *partitions) {
      if (p.idx == d.idx) {
        target = &p;
        break;
      }
    }
    if (target == nullptr) return false;
    if (!target->filter.Merge(d.delta)) return false;
    target->ts = d.ts;
    target->sig = d.sig;
  }
  return true;
}

// ---------------------------------------------------------------------------
// JoinProver

Result<JoinMatch> JoinProver::MatchGroup(int64_t a) const {
  int64_t lo = JoinCompositeKey(a, 0);
  int64_t hi = JoinCompositeKey(a, kJoinMaxDup);
  AuthTable::RangeOut scan = s_->Scan(lo, hi);
  JoinMatch match;
  match.a_value = a;
  match.left_key =
      scan.left_boundary ? scan.left_boundary->record.key() : kChainMinusInf;
  match.right_key =
      scan.right_boundary ? scan.right_boundary->record.key() : kChainPlusInf;
  for (const auto& item : scan.items) match.s_records.push_back(item.record);
  return match;
}

Result<AbsenceProof> JoinProver::ProveAbsence(int64_t a) const {
  int64_t lo = JoinCompositeKey(a, 0);
  int64_t hi = JoinCompositeKey(a, kJoinMaxDup);
  AuthTable::RangeOut scan = s_->Scan(lo, hi);
  AUTHDB_CHECK(scan.items.empty());
  const AuthTable::Item* witness =
      scan.left_boundary ? &*scan.left_boundary
                         : (scan.right_boundary ? &*scan.right_boundary
                                                : nullptr);
  if (witness == nullptr) return Status::NotFound("S is empty");
  auto [wl, wr] = s_->NeighborKeys(witness->record.key());
  AbsenceProof proof;
  proof.a_value = a;
  proof.rec_key = witness->record.key();
  proof.rec_rid = witness->record.rid;
  proof.rec_ts = witness->record.ts;
  proof.rec_digest = witness->record.Digest();
  proof.left_key = wl;
  proof.right_key = wr;
  return proof;
}

Result<JoinAnswer> JoinProver::Join(const std::vector<int64_t>& r_values,
                                    JoinMethod method) const {
  std::vector<int64_t> values = r_values;
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());

  JoinAnswer ans;
  ans.method = method;
  std::set<uint32_t> used_partitions;
  // Chain signatures included in the aggregate, deduplicated by composite
  // key (a record may serve as both a match member and an absence witness).
  std::set<int64_t> included_keys;
  std::vector<BasSignature> parts;

  auto include_record = [&](const AuthTable::Item& item) {
    if (included_keys.insert(item.record.key()).second)
      parts.push_back(item.sig);
  };

  // Pass 1: match groups; unmatched values fall through (sorted order
  // preserved so the emitted proof artifacts match the legacy ordering).
  std::vector<int64_t> unmatched;
  for (int64_t a : values) {
    AUTHDB_ASSIGN_OR_RETURN(JoinMatch match, MatchGroup(a));
    if (!match.s_records.empty()) {
      for (const Record& r : match.s_records) {
        auto item = s_->GetByKey(r.key());
        AUTHDB_CHECK(item.ok());
        include_record(item.value());
      }
      ans.matches.push_back(std::move(match));
      continue;
    }
    unmatched.push_back(a);
  }

  // Pass 2 (BF): one batched filter probe per covering partition instead
  // of a per-key scatter — ProbeMany bulk-hashes and prefetches blocks.
  std::vector<const CertifiedPartition*> covering(unmatched.size(), nullptr);
  std::vector<uint8_t> maybe_present(unmatched.size(), 1);
  if (method == JoinMethod::kBloomFilter && !unmatched.empty()) {
    std::map<const CertifiedPartition*, std::vector<size_t>> by_part;
    for (size_t i = 0; i < unmatched.size(); ++i) {
      covering[i] = FindCoveringPartition(*partitions_, unmatched[i]);
      if (covering[i] != nullptr) by_part[covering[i]].push_back(i);
    }
    std::vector<int64_t> keys;
    std::vector<uint8_t> results;
    for (const auto& [part, idxs] : by_part) {
      keys.clear();
      for (size_t i : idxs) keys.push_back(unmatched[i]);
      results.resize(keys.size());
      part->filter.ProbeMany(keys.data(), keys.size(), results.data());
      for (size_t j = 0; j < idxs.size(); ++j)
        maybe_present[idxs[j]] = results[j];
    }
  }

  // Pass 3: emit negative probes / boundary fallbacks in value order.
  for (size_t i = 0; i < unmatched.size(); ++i) {
    int64_t a = unmatched[i];
    bool need_boundary = true;
    if (method == JoinMethod::kBloomFilter && covering[i] != nullptr) {
      used_partitions.insert(covering[i]->idx);
      if (!maybe_present[i]) {
        ans.negative_probes.push_back({a, covering[i]->idx});
        need_boundary = false;
      }
      // else: false positive — fall back to a boundary proof below.
    }
    if (need_boundary) {
      AUTHDB_ASSIGN_OR_RETURN(AbsenceProof proof, ProveAbsence(a));
      auto item = s_->GetByKey(proof.rec_key);
      AUTHDB_CHECK(item.ok());
      include_record(item.value());
      ans.absence_proofs.push_back(std::move(proof));
    }
  }
  for (uint32_t idx : used_partitions) {
    for (const auto& p : *partitions_) {
      if (p.idx == idx) {
        ans.partitions.push_back(p);
        parts.push_back(p.sig);
        break;
      }
    }
  }
  ans.agg_sig = ctx_->Aggregate(parts);
  return ans;
}

// ---------------------------------------------------------------------------
// JoinVerifier

Status JoinVerifier::Verify(const std::vector<int64_t>& r_values,
                            const JoinAnswer& ans) const {
  std::vector<int64_t> values = r_values;
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  std::set<int64_t> pending(values.begin(), values.end());

  std::set<int64_t> included_keys;
  std::vector<ByteBuffer> messages;
  auto include_message = [&](int64_t key, const Digest160& digest,
                             int64_t left, int64_t right) {
    if (included_keys.insert(key).second)
      messages.push_back(ChainMessage(key, digest, left, right));
  };

  // 1. Match groups: every row's B must equal a_value; keys strictly
  //    ascending; boundaries enclose the value's composite range.
  for (const JoinMatch& m : ans.matches) {
    if (!pending.erase(m.a_value))
      return Status::VerificationFailed("match for unqueried value");
    if (m.s_records.empty())
      return Status::VerificationFailed("empty match group");
    if (m.left_key != kChainMinusInf &&
        JoinBValue(m.left_key) >= m.a_value)
      return Status::VerificationFailed("match left boundary inside group");
    if (m.right_key != kChainPlusInf && JoinBValue(m.right_key) <= m.a_value)
      return Status::VerificationFailed("match right boundary inside group");
    for (size_t i = 0; i < m.s_records.size(); ++i) {
      const Record& r = m.s_records[i];
      if (JoinBValue(r.key()) != m.a_value)
        return Status::VerificationFailed("match row with wrong B value");
      if (i > 0 && m.s_records[i - 1].key() >= r.key())
        return Status::VerificationFailed("match rows out of order");
      int64_t left = i == 0 ? m.left_key : m.s_records[i - 1].key();
      int64_t right =
          i + 1 == m.s_records.size() ? m.right_key : m.s_records[i + 1].key();
      include_message(r.key(), r.Digest(), left, right);
    }
  }

  // 2. Negative probes: the certified filter must actually answer "no" —
  //    re-probed through the same batched path the prover used.
  std::map<const CertifiedPartition*, std::vector<int64_t>> probes_by_part;
  for (const auto& [a, pidx] : ans.negative_probes) {
    if (!pending.erase(a))
      return Status::VerificationFailed("negative probe for unqueried value");
    const CertifiedPartition* part = nullptr;
    for (const auto& p : ans.partitions) {
      if (p.idx == pidx) {
        part = &p;
        break;
      }
    }
    if (part == nullptr)
      return Status::VerificationFailed("probe against missing partition");
    if (a < part->lo_b || a > part->hi_b)
      return Status::VerificationFailed("probe outside partition range");
    probes_by_part[part].push_back(a);
  }
  for (const auto& [part, keys] : probes_by_part) {
    std::vector<uint8_t> results(keys.size());
    part->filter.ProbeMany(keys.data(), keys.size(), results.data());
    for (uint8_t maybe : results) {
      if (maybe)
        return Status::VerificationFailed(
            "filter contains a value claimed absent");
    }
  }

  // 3. Absence witnesses: the witness chain must bracket the value.
  for (const AbsenceProof& p : ans.absence_proofs) {
    if (!pending.erase(p.a_value))
      return Status::VerificationFailed("absence proof for unqueried value");
    int64_t wb = JoinBValue(p.rec_key);
    bool left_witness =
        wb < p.a_value &&
        (p.right_key == kChainPlusInf || JoinBValue(p.right_key) > p.a_value);
    bool right_witness =
        wb > p.a_value &&
        (p.left_key == kChainMinusInf || JoinBValue(p.left_key) < p.a_value);
    if (!left_witness && !right_witness)
      return Status::VerificationFailed("witness does not bracket the value");
    include_message(p.rec_key, p.rec_digest, p.left_key, p.right_key);
  }

  if (!pending.empty())
    return Status::VerificationFailed(
        std::to_string(pending.size()) + " R values unaccounted for");

  // 4. One aggregate over every chained record + partition certification.
  std::vector<Slice> views;
  views.reserve(messages.size() + ans.partitions.size());
  for (const ByteBuffer& m : messages) views.push_back(m.AsSlice());
  std::vector<ByteBuffer> part_msgs;
  part_msgs.reserve(ans.partitions.size());
  for (const auto& p : ans.partitions) part_msgs.push_back(p.SignedMessage());
  for (const ByteBuffer& m : part_msgs) views.push_back(m.AsSlice());
  if (!da_pub_->VerifyAggregate(views, ans.agg_sig, mode_))
    return Status::VerificationFailed("join aggregate signature mismatch");
  return Status::OK();
}

// ---------------------------------------------------------------------------
// VO sizes

size_t JoinAnswer::vo_boundary_bytes(const SizeModel& sm) const {
  // The BV-style accounting of [24]: each boundary witness contributes its
  // content digest (the verifier rebuilds the chain message from it) plus
  // the bracketing S.B values; witnesses shared between adjacent unmatched
  // values are deduplicated. Match groups add their two boundary values.
  std::set<int64_t> boundary_vals;
  auto add_key = [&](int64_t composite) {
    if (composite != kChainMinusInf && composite != kChainPlusInf)
      boundary_vals.insert(JoinBValue(composite));
  };
  for (const JoinMatch& m : matches) {
    add_key(m.left_key);
    add_key(m.right_key);
  }
  std::set<int64_t> witnesses;
  for (const AbsenceProof& p : absence_proofs) {
    witnesses.insert(p.rec_key);
    add_key(p.rec_key);
    add_key(p.left_key);
    add_key(p.right_key);
  }
  return boundary_vals.size() * sm.join_attr_bytes +
         witnesses.size() * sm.digest_bytes;
}

size_t JoinAnswer::vo_bloom_bytes(const SizeModel& sm) const {
  size_t bytes = 0;
  std::set<int64_t> part_bounds;
  for (const CertifiedPartition& p : partitions) {
    bytes += (p.filter.bit_count() + 7) / 8;
    if (p.lo_b != std::numeric_limits<int64_t>::min())
      part_bounds.insert(p.lo_b);
    if (p.hi_b != std::numeric_limits<int64_t>::max())
      part_bounds.insert(p.hi_b);
  }
  return bytes + part_bounds.size() * sm.join_attr_bytes;
}

size_t JoinAnswer::vo_size_paper(const SizeModel& sm) const {
  return vo_boundary_bytes(sm) + vo_bloom_bytes(sm) +
         sm.signature_bytes;  // the single aggregate
}

size_t JoinAnswer::wire_size(const SizeModel& sm) const {
  size_t bytes = 2 * 32;  // aggregate signature point (uncompressed)
  // Each match group ships only its two boundary composite keys: the S
  // records themselves are query results (the verifier recomputes their
  // keys and digests) and a_value is part of the query.
  bytes += matches.size() * (2 * 8);
  for (const CertifiedPartition& p : partitions)
    bytes += p.filter.byte_size() + 2 * 8 + 16 + 64;
  bytes += negative_probes.size() * 12;
  // digest + {rec,left,right} keys + a_value + rid + ts
  bytes += absence_proofs.size() * (sm.digest_bytes + 3 * 8 + 8 + 16);
  return bytes;
}

}  // namespace authdb
