#ifndef AUTHDB_CORE_DATA_AGGREGATOR_H_
#define AUTHDB_CORE_DATA_AGGREGATOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/clock.h"
#include "core/auth_table.h"
#include "core/join.h"
#include "core/protocol.h"

namespace authdb {

/// The trusted data aggregator (DA): owns the signing key, maintains the
/// master copy of the relation, certifies every record with the chain
/// signature of Section 3.3, and publishes the periodic update summaries of
/// Section 3.1. Every mutation returns the exact message the DA pushes to
/// the query servers.
class DataAggregator {
 public:
  struct Options {
    uint32_t record_len = 512;
    uint64_t rho_micros = 1'000'000;          ///< summary period (1 s default)
    uint64_t rho_prime_micros = 900'000'000;  ///< signature renewal age (900 s)
    BasContext::HashMode hash_mode = BasContext::HashMode::kFast;
    size_t buffer_pages = 256;
    bool piggyback_renewal = true;  ///< re-certify page cohabitants on update
    /// Sign per-attribute messages (Section 3.4) on every certification and
    /// ship them inside CertifiedRecord so the query servers can serve
    /// projections. Costs M extra signatures per certification — off unless
    /// the deployment serves projection plans.
    bool sign_attributes = false;
  };

  DataAggregator(std::shared_ptr<const BasContext> ctx, const Clock* clock,
                 Rng* rng, const Options& options);

  /// Bulk-certify an initial dataset (records get ts = now). Returns the
  /// insert stream to replay at the QS.
  Result<std::vector<SignedRecordUpdate>> BulkLoad(std::vector<Record> records);

  /// Value modification of the record whose indexed key is attrs[0]; only
  /// this record's signature changes (plus optional piggybacked renewals).
  Result<SignedRecordUpdate> ModifyRecord(int64_t key,
                                          std::vector<int64_t> attrs);
  Result<SignedRecordUpdate> InsertRecord(std::vector<int64_t> attrs);
  Result<SignedRecordUpdate> DeleteRecord(int64_t key);

  /// Close the current rho-period: emit the certified summary plus the
  /// re-certification messages for records updated multiple times in the
  /// closed period (Section 3.1), plus — when join partitions are enabled —
  /// the period's partition maintenance: delete-dirty partitions are
  /// rebuilt from the table and ship as full certified filters; insert-only
  /// and untouched partitions ship cheap deltas (a small same-geometry
  /// filter over the period's new B values, or an empty recertification)
  /// that the servers merge into their live filters at the epoch barrier.
  struct PeriodOutput {
    UpdateSummary summary;
    std::vector<SignedRecordUpdate> recertifications;
    PartitionRefresh partition_refresh;
  };
  PeriodOutput PublishSummary();

  /// Treat the relation as the join's S table (composite keys, Section
  /// 3.5): build certified Bloom partitions over the current distinct B
  /// values and keep them current — inserts/deletes mark the covering
  /// partition dirty, and every PublishSummary re-certifies the set on the
  /// rho-period cadence. Returns the initial partitions (also available
  /// via join_partitions()).
  const std::vector<CertifiedPartition>& EnableJoinPartitions(
      size_t values_per_partition, double bits_per_value);
  const std::vector<CertifiedPartition>& join_partitions() const {
    return join_partitions_;
  }

  /// Background low-priority renewal: re-certify up to `budget` records
  /// whose signatures are older than rho'. Returns renewal messages.
  std::vector<SignedRecordUpdate> BackgroundRenewal(size_t budget);

  /// Per-attribute signatures for projection queries (Section 3.4):
  /// sign(h(rid | i | Ai | ts)) for each attribute position i.
  std::vector<BasSignature> SignAttributes(const Record& rec) const;

  const BasPublicKey& public_key() const { return key_.public_key(); }
  /// The signing key, for co-located authorities (e.g. JoinAuthority
  /// certifying partition filters on the DA's behalf).
  const BasPrivateKey* private_key() const { return &key_; }
  const AuthTable& table() const { return table_; }
  BasContext::HashMode hash_mode() const { return options_.hash_mode; }
  const BasContext& context() const { return *ctx_; }
  uint64_t signatures_issued() const { return signatures_issued_; }

  /// Canonical attribute-signature message (shared with the verifier).
  static ByteBuffer AttributeMessage(uint64_t rid, uint32_t attr_index,
                                     int64_t value, uint64_t ts);

 private:
  BasSignature SignChained(const Record& rec, int64_t left, int64_t right);
  /// Re-certify `key` in place with a fresh timestamp; appends the message
  /// to `out`. Skips silently if the key vanished.
  void Recertify(int64_t key, std::vector<CertifiedRecord>* out);
  void PiggybackRenewal(uint64_t around_rid,
                        std::vector<CertifiedRecord>* out);
  /// Attribute signatures when Options::sign_attributes, else empty.
  std::vector<BasSignature> MaybeSignAttributes(const Record& rec) const;
  /// Record a join-state mutation for B = JoinBValue(key) (no-op unless
  /// join partitions are enabled): inserts queue the B value for the
  /// covering partition's next delta; deletes force a full rebuild of it
  /// at the next PublishSummary (filters cannot forget).
  void MarkJoinDirty(int64_t composite_key, bool is_delete);
  /// Distinct B values currently stored in the partition's range.
  std::vector<int64_t> DistinctBValuesIn(const CertifiedPartition& p) const;

  std::shared_ptr<const BasContext> ctx_;
  const Clock* clock_;
  Options options_;
  BasPrivateKey key_;
  DiskManager data_disk_, index_disk_;
  BufferPool data_pool_, index_pool_;
  AuthTable table_;
  VarintGapCodec codec_;
  SummaryBuilder summary_;
  // Join partition state (empty / null unless EnableJoinPartitions ran).
  std::unique_ptr<JoinAuthority> join_authority_;
  std::vector<CertifiedPartition> join_partitions_;
  /// Per-partition B values inserted since the last summary (the next
  /// delta's contents; duplicates are harmless — merging is idempotent).
  std::map<uint32_t, std::vector<int64_t>> pending_insert_b_;
  /// Partitions that saw a delete since the last summary: full rebuild.
  std::set<uint32_t> delete_dirty_;
  uint64_t summary_seq_ = 0;
  uint64_t renewal_cursor_ = 0;  // background renewal scan position (rid)
  uint64_t signatures_issued_ = 0;
};

}  // namespace authdb

#endif  // AUTHDB_CORE_DATA_AGGREGATOR_H_
