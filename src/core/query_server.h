#ifndef AUTHDB_CORE_QUERY_SERVER_H_
#define AUTHDB_CORE_QUERY_SERVER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/auth_table.h"
#include "core/protocol.h"
#include "core/sigcache.h"

namespace authdb {

/// The untrusted query server (QS): mirrors the DA's relation and
/// authentication data, serves the full verified-query surface — range
/// selections, projections, and authenticated equi-joins — through one
/// Execute(plan) entry point with proofs, and retains the published
/// summaries for freshness evidence. Optionally accelerates selection
/// proof construction with SigCache (Section 4).
///
/// Thread safety: a QueryServer instance is NOT internally synchronized —
/// even Select mutates buffer-pool LRU state while reading pages. Callers
/// that serve concurrent traffic must serialize access per instance. The
/// concurrent serving layer (server/sharded_query_server.h) does not wrap
/// QueryServers at all: it serves from immutable epoch-pinned snapshots
/// (core/epoch_snapshot.h) and keeps this class as the paper-faithful
/// single-node reference implementation.
class QueryServer {
 public:
  struct Options {
    uint32_t record_len = 512;
    size_t buffer_pages = 256;
    size_t summaries_retained = 4096;
  };

  QueryServer(std::shared_ptr<const BasContext> ctx, const Options& options);

  /// Replay a DA update message (also used for the initial bulk stream).
  Status ApplyUpdate(const SignedRecordUpdate& msg);
  /// Retain a freshly published summary.
  void AddSummary(UpdateSummary summary);

  /// Range selection with proof (Section 3.3). Summaries published at/after
  /// the oldest result signature ride along as freshness evidence. When
  /// `stats` is non-null it receives the aggregation counters for this call
  /// (point additions, cache hits, lazy refreshes) — per-call out-params
  /// keep the hot read path free of mutable instance state.
  Result<SelectionAnswer> Select(int64_t lo, int64_t hi,
                                 SigCache::AggStats* stats = nullptr) const;

  /// Execute one query plan — the unified read path. kSelect wraps Select;
  /// kProject serves the digest-spine projection (requires attribute
  /// signatures in the update stream — DataAggregator sign_attributes);
  /// kJoin proves every probe value via match group, certified-Bloom
  /// negative probe, or boundary absence witness (requires
  /// SetJoinPartitions for the Bloom method). Every answer kind attaches
  /// freshness summaries by the oldest-cited-certification rule and is
  /// stamped with the served epoch.
  Result<QueryAnswer> Execute(const Query& query,
                              SigCache::AggStats* stats = nullptr) const;

  /// Install / refresh the DA-certified Bloom partitions over S.B (join
  /// plans; refreshed on the rho cadence by the update stream).
  void SetJoinPartitions(std::vector<CertifiedPartition> partitions) {
    join_partitions_ = std::move(partitions);
  }
  const std::vector<CertifiedPartition>& join_partitions() const {
    return join_partitions_;
  }

  /// Greatest certified record with key strictly below `key`, if any.
  std::optional<AuthTable::Item> PredecessorItem(int64_t key) const;
  /// Least certified record with key strictly above `key`, if any.
  std::optional<AuthTable::Item> SuccessorItem(int64_t key) const;

  /// Enable SigCache with the given cached-node plan (Section 4).
  void EnableSigCache(const std::vector<SigCachePlanner::Choice>& plan,
                      SigCache::RefreshMode mode);
  SigCache* sigcache() { return sigcache_.get(); }

  const AuthTable& table() const { return table_; }
  uint64_t size() const { return table_.size(); }
  const IoStats& data_io() const { return data_disk_.stats(); }
  const IoStats& index_io() const { return index_disk_.stats(); }

 private:
  /// Rank of `key` in the current key order (for SigCache intervals).
  size_t RankOf(int64_t key) const;
  BasSignature LeafSignature(size_t rank) const;
  Result<QueryAnswer> ExecuteProject(const Query& query) const;
  Result<QueryAnswer> ExecuteJoin(const Query& query) const;
  /// Attach every summary published at/after `oldest_ts` and the epoch.
  void StampFreshness(uint64_t oldest_ts, QueryAnswer* ans) const;

  std::shared_ptr<const BasContext> ctx_;
  DiskManager data_disk_, index_disk_;
  BufferPool data_pool_, index_pool_;
  AuthTable table_;
  std::deque<UpdateSummary> summaries_;
  uint64_t latest_epoch_ = 0;  ///< max(seq)+1 over retained summaries
  Options options_;
  // In-memory key order mirror (rank structure for SigCache intervals).
  std::vector<int64_t> sorted_keys_;
  std::unique_ptr<SigCache> sigcache_;
  // Per-key attribute signatures (projection plans), mirrored from the
  // update stream; absent entries mean the DA does not sign attributes.
  std::map<int64_t, std::vector<BasSignature>> attr_sigs_;
  // DA-certified Bloom partitions over S.B (join plans).
  std::vector<CertifiedPartition> join_partitions_;
};

}  // namespace authdb

#endif  // AUTHDB_CORE_QUERY_SERVER_H_
