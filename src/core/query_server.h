#ifndef AUTHDB_CORE_QUERY_SERVER_H_
#define AUTHDB_CORE_QUERY_SERVER_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "core/auth_table.h"
#include "core/protocol.h"
#include "core/sigcache.h"

namespace authdb {

/// The untrusted query server (QS): mirrors the DA's relation and
/// authentication data, serves selection queries with proofs, and retains
/// the published summaries for freshness evidence. Optionally accelerates
/// proof construction with SigCache (Section 4).
class QueryServer {
 public:
  struct Options {
    uint32_t record_len = 512;
    size_t buffer_pages = 256;
    size_t summaries_retained = 4096;
  };

  QueryServer(std::shared_ptr<const BasContext> ctx, const Options& options);

  /// Replay a DA update message (also used for the initial bulk stream).
  Status ApplyUpdate(const SignedRecordUpdate& msg);
  /// Retain a freshly published summary.
  void AddSummary(UpdateSummary summary);

  /// Range selection with proof (Section 3.3). `oldest_needed_ts` selects
  /// which summaries ride along (all summaries published at/after the
  /// oldest result signature).
  Result<SelectionAnswer> Select(int64_t lo, int64_t hi) const;

  /// Enable SigCache with the given cached-node plan (Section 4).
  void EnableSigCache(const std::vector<SigCachePlanner::Choice>& plan,
                      SigCache::RefreshMode mode);
  SigCache* sigcache() { return sigcache_.get(); }

  /// Point additions performed building the last Select's aggregate.
  size_t last_aggregation_adds() const { return last_adds_; }

  const AuthTable& table() const { return table_; }
  uint64_t size() const { return table_.size(); }
  const IoStats& data_io() const { return data_disk_.stats(); }
  const IoStats& index_io() const { return index_disk_.stats(); }

 private:
  /// Rank of `key` in the current key order (for SigCache intervals).
  size_t RankOf(int64_t key) const;
  BasSignature LeafSignature(size_t rank) const;

  std::shared_ptr<const BasContext> ctx_;
  DiskManager data_disk_, index_disk_;
  BufferPool data_pool_, index_pool_;
  AuthTable table_;
  std::deque<UpdateSummary> summaries_;
  Options options_;
  // In-memory key order mirror (rank structure for SigCache intervals).
  std::vector<int64_t> sorted_keys_;
  std::unique_ptr<SigCache> sigcache_;
  mutable size_t last_adds_ = 0;
};

}  // namespace authdb

#endif  // AUTHDB_CORE_QUERY_SERVER_H_
