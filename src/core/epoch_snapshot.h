#ifndef AUTHDB_CORE_EPOCH_SNAPSHOT_H_
#define AUTHDB_CORE_EPOCH_SNAPSHOT_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "core/chain.h"
#include "core/protocol.h"
#include "core/record.h"
#include "crypto/bas.h"

namespace authdb {

/// One certified record as stored in an immutable epoch snapshot: the
/// record, its current chain signature, and — when the DA signs attribute
/// messages (Section 3.4) — the per-attribute signatures projection plans
/// serve from.
struct SnapshotItem {
  Record record;
  BasSignature sig;
  std::vector<BasSignature> attr_sigs;  ///< one per attribute, or empty

  int64_t key() const { return record.key(); }
};

/// An immutable, epoch-pinned version of one shard's authenticated state:
/// every certified record in index-key order, chunked so consecutive
/// versions share the chunks an epoch's delta did not touch (copy-on-write
/// at chunk granularity — publishing an epoch copies O(delta + n/chunk)
/// data, not the relation).
///
/// Readers navigate by *rank* (position in key order) or by key; a pinned
/// snapshot never changes, so a whole multi-shard read — fan-out, stitch,
/// and global boundary probes — can run lock-free against one snapshot set
/// and always observes a single serializable cut of the DA's history.
///
/// `generation` identifies the chain generation this version belongs to:
/// it advances whenever a version is frozen with a non-empty delta, and
/// epoch-tagged SigCache windows key on it so cached aggregates are never
/// mixed across chain generations (a cached node computed from generation
/// g leaves is only reused by readers pinned to generation g).
class EpochSnapshot {
 public:
  using Chunk = std::vector<SnapshotItem>;

  EpochSnapshot() = default;
  EpochSnapshot(std::vector<std::shared_ptr<const Chunk>> chunks,
                uint64_t generation);
  /// As above, with barrier-precomputed per-chunk chain-signature
  /// aggregates (parallel to `chunks`; entries may be null). See
  /// ChunkAggregateAt.
  EpochSnapshot(std::vector<std::shared_ptr<const Chunk>> chunks,
                std::vector<std::shared_ptr<const ECPoint>> chunk_aggs,
                uint64_t generation);

  uint64_t size() const { return total_; }
  uint64_t generation() const { return generation_; }

  /// Rank of the first item with key >= / > `key` (size() when none).
  size_t LowerBound(int64_t key) const;
  size_t UpperBound(int64_t key) const;

  /// Item at `rank` (< size()). The reference is valid for the lifetime of
  /// any shared_ptr pinning this snapshot (or a later one sharing the
  /// chunk).
  const SnapshotItem& ItemAt(size_t rank) const;

  /// Invoke `fn(item)` for every rank in [rank_lo, rank_hi] (inclusive),
  /// walking chunks contiguously: O(log chunks + k) for a k-item range,
  /// unlike k independent ItemAt lookups. The range must be within
  /// [0, size()).
  template <typename Fn>
  void ForEachItem(size_t rank_lo, size_t rank_hi, Fn&& fn) const {
    if (rank_lo > rank_hi) return;
    size_t ci = static_cast<size_t>(
        std::upper_bound(starts_.begin(), starts_.end(), rank_lo) -
        starts_.begin() - 1);
    size_t offset = rank_lo - starts_[ci];
    for (size_t r = rank_lo; r <= rank_hi; ++ci, offset = 0) {
      const Chunk& c = *chunks_[ci];
      for (; offset < c.size() && r <= rank_hi; ++offset, ++r) fn(c[offset]);
    }
  }

  /// The item with exactly `key`, or nullptr.
  const SnapshotItem* Get(int64_t key) const;
  /// Greatest item with key strictly below / least strictly above `key`,
  /// or nullptr at the domain edge.
  const SnapshotItem* Predecessor(int64_t key) const;
  const SnapshotItem* Successor(int64_t key) const;

  size_t chunk_count() const { return chunks_.size(); }

  /// Barrier-precomputed aggregate spans: when a whole chunk starts
  /// exactly at rank `pos`, ends at/before rank `hi` (inclusive), and its
  /// aggregate was precomputed, stores the affine sum of the chunk's chain
  /// signatures in `*agg` and returns the chunk's length; returns 0
  /// otherwise. Aggregates are computed write-once at
  /// ShardVersionBuilder::Freeze and shared across epochs exactly like the
  /// chunks themselves, so a SigCache window fill or seam stitch over a
  /// frozen shard starts from precomputed prefixes instead of refetching
  /// every leaf signature.
  size_t ChunkAggregateAt(size_t pos, size_t hi, ECPoint* agg) const;

  /// Vectorized rank lookup for a batch of probe keys presented in
  /// ascending order (the LookupBatch discipline: sort the probe keys,
  /// then walk the snapshot forward once). The cursor remembers the rank
  /// the previous lookup landed on and gallops forward from there, so a
  /// whole batch of k sorted probes costs O(k + log n) instead of
  /// k full binary searches — and, more importantly, touches each chunk's
  /// key run once, in order.
  class ForwardCursor {
   public:
    explicit ForwardCursor(const EpochSnapshot& snap) : snap_(snap) {}

    /// Rank of the first item with key >= `key`. Keys across calls must be
    /// non-decreasing (checked in debug builds).
    size_t LowerBound(int64_t key);
    /// Rank of the first item with key > `key`, galloping forward from
    /// `start` (callers pass the matching LowerBound result). Does not
    /// move the cursor, so overlapping ranges stay correct.
    size_t UpperBoundFrom(size_t start, int64_t key) const;

   private:
    const EpochSnapshot& snap_;
    size_t pos_ = 0;      ///< rank reached by the previous LowerBound
    int64_t last_key_ = kChainMinusInf;
  };

 private:
  friend class ShardVersionBuilder;

  std::vector<std::shared_ptr<const Chunk>> chunks_;
  /// Parallel to chunks_ (or empty): the affine sum of each chunk's chain
  /// signatures, shared across epochs with the chunk.
  std::vector<std::shared_ptr<const ECPoint>> chunk_aggs_;
  std::vector<size_t> starts_;      ///< starts_[i] = rank of chunks_[i][0]
  std::vector<int64_t> first_keys_; ///< chunks_[i][0].key()
  uint64_t total_ = 0;
  uint64_t generation_ = 0;
};

/// The mutable side of the copy-on-write spine: accumulates a shard's
/// epoch delta (DA update pieces) against the last frozen version and
/// freezes it into the next immutable EpochSnapshot at the epoch barrier.
///
/// Apply() clones a chunk the first time the current delta touches it
/// (chunks untouched since the last Freeze stay shared with every pinned
/// older version) and mutates owned chunks in place, so ingest between two
/// barriers costs O(log n) per piece after the first touch of a chunk.
/// Freeze() is O(chunk count) and returns the cached previous snapshot
/// when the delta was empty.
///
/// Not internally synchronized: the serving layer guards each shard's
/// builder with that shard's apply mutex (readers never touch builders —
/// they pin frozen snapshots).
class ShardVersionBuilder {
 public:
  /// `chunk_target`: preferred items per chunk; chunks split at twice this.
  /// `barrier_ctx` (optional): when set, Freeze() precomputes each dirty
  /// chunk's chain-signature aggregate at the epoch barrier — write-once,
  /// finalized with one shared batch inversion, and shared across epochs
  /// like the chunk itself (EpochSnapshot::ChunkAggregateAt). Null skips
  /// the precomputation (snapshots then answer ChunkAggregateAt with 0).
  explicit ShardVersionBuilder(
      size_t chunk_target = 128,
      std::shared_ptr<const BasContext> barrier_ctx = nullptr);

  /// Apply one DA update piece (the shard-owned slice of a
  /// SignedRecordUpdate). Mirrors the QueryServer apply semantics:
  /// inserts require a fresh key, modifies/deletes/re-certifications an
  /// existing one; attribute signatures are retained per record and kept
  /// when a message ships none.
  Status Apply(const SignedRecordUpdate& piece);

  /// Freeze the current state into an immutable snapshot. Advances the
  /// chain generation iff the delta since the previous Freeze was
  /// non-empty; otherwise returns the cached previous snapshot unchanged.
  std::shared_ptr<const EpochSnapshot> Freeze();

  uint64_t size() const { return size_; }
  bool changed_since_freeze() const { return changed_; }
  uint64_t generation() const { return generation_; }

 private:
  using Chunk = EpochSnapshot::Chunk;

  /// Index of the chunk that owns `key` (the last chunk whose first key
  /// is <= key, clamped to 0). Requires a non-empty chunk list.
  size_t ChunkOf(int64_t key) const;
  /// Mutable access to chunk `ci`, cloning it first if it is still shared
  /// with a frozen snapshot.
  Chunk* Mutate(size_t ci);
  /// Re-balance chunk `ci` after a mutation: split when oversized, drop
  /// when empty. Keeps first_keys_ in sync.
  void Rebalance(size_t ci);

  Status ApplyInsert(const CertifiedRecord& cr);
  Status ApplyReplace(const CertifiedRecord& cr);  // modify / re-certify
  Status ApplyDelete(int64_t key);

  /// Rebuild the chain aggregate of every chunk the delta touched (null
  /// entries of chunk_aggs_), finalizing all of them with ONE shared batch
  /// inversion. No-op without a barrier context.
  void PrecomputeChunkAggregates();

  size_t chunk_target_;
  std::shared_ptr<const BasContext> barrier_ctx_;
  std::vector<std::shared_ptr<const Chunk>> chunks_;
  /// Parallel to chunks_: precomputed aggregates, null while dirty.
  std::vector<std::shared_ptr<const ECPoint>> chunk_aggs_;
  std::vector<bool> owned_;  ///< chunks_[i] is exclusively ours (mutable)
  std::vector<int64_t> first_keys_;
  uint64_t size_ = 0;
  uint64_t generation_ = 0;
  bool changed_ = false;
  std::shared_ptr<const EpochSnapshot> last_frozen_;
};

}  // namespace authdb

#endif  // AUTHDB_CORE_EPOCH_SNAPSHOT_H_
