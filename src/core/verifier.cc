#include "core/verifier.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/chain.h"
#include "core/data_aggregator.h"

namespace authdb {

namespace {

/// Everything VerifySelectionStatic checks short of the aggregate
/// signature itself: structural completeness, then the chain messages the
/// signature must cover. Shared by the sequential path (which verifies the
/// aggregate inline) and VerifyAnswerBatch (which defers every answer's
/// aggregate into one shared-inversion check).
Status BuildSelectionMessages(int64_t lo, int64_t hi,
                              const SelectionAnswer& ans,
                              std::vector<ByteBuffer>* messages_out) {
  std::vector<ByteBuffer>& messages = *messages_out;
  if (lo > hi || lo == kChainMinusInf || hi == kChainPlusInf)
    return Status::InvalidArgument("bad query range");

  if (ans.records.empty()) {
    // Empty result: the proof record's chain must span the whole range.
    if (!ans.proof_record)
      return Status::VerificationFailed("empty answer without proof record");
    const Record& pr = *ans.proof_record;
    bool left_of_range = pr.key() < lo && ans.right_key > hi;
    bool right_of_range = pr.key() > hi && ans.left_key < lo;
    if (!left_of_range && !right_of_range)
      return Status::VerificationFailed(
          "proof record does not demonstrate an empty range");
    messages.push_back(ChainMessage(pr, ans.left_key, ans.right_key));
  } else {
    // Completeness: boundaries enclose the range...
    if (ans.left_key >= lo)
      return Status::VerificationFailed("left boundary inside range");
    if (ans.right_key <= hi)
      return Status::VerificationFailed("right boundary inside range");
    // ...and the results are sorted, in-range, and chained gaplessly.
    for (size_t i = 0; i < ans.records.size(); ++i) {
      int64_t k = ans.records[i].key();
      if (k < lo || k > hi)
        return Status::VerificationFailed("record outside query range");
      if (i > 0 && ans.records[i - 1].key() >= k)
        return Status::VerificationFailed("records not in key order");
    }
    // One multi-buffer SHA pass over every record's canonical bytes; the
    // chain messages are then assembled from the precomputed digests.
    std::vector<Digest160> digests(ans.records.size());
    RecordDigestMany(ans.records.data(), ans.records.size(), digests.data());
    for (size_t i = 0; i < ans.records.size(); ++i) {
      int64_t left = i == 0 ? ans.left_key : ans.records[i - 1].key();
      int64_t right = i + 1 == ans.records.size() ? ans.right_key
                                                  : ans.records[i + 1].key();
      messages.push_back(
          ChainMessage(ans.records[i].key(), digests[i], left, right));
    }
  }
  return Status::OK();
}

std::vector<Slice> MessageViews(const std::vector<ByteBuffer>& messages) {
  std::vector<Slice> views;
  views.reserve(messages.size());
  for (const ByteBuffer& m : messages) views.push_back(m.AsSlice());
  return views;
}

}  // namespace

Status ClientVerifier::VerifySelectionStatic(int64_t lo, int64_t hi,
                                             const SelectionAnswer& ans) const {
  std::vector<ByteBuffer> messages;
  AUTHDB_RETURN_NOT_OK(BuildSelectionMessages(lo, hi, ans, &messages));
  if (!da_pub_->VerifyAggregate(MessageViews(messages), ans.agg_sig, mode_))
    return Status::VerificationFailed("aggregate signature mismatch");
  return Status::OK();
}

Status ClientVerifier::VerifySelection(int64_t lo, int64_t hi,
                                       const SelectionAnswer& ans,
                                       uint64_t now) {
  AUTHDB_RETURN_NOT_OK(VerifySelectionStatic(lo, hi, ans));
  for (const UpdateSummary& s : ans.summaries) {
    Status st = freshness_.AddSummary(s);
    if (!st.ok()) return st;
  }
  auto check = [&](const Record& r) {
    return freshness_.CheckRecord(r.rid, r.ts, now);
  };
  for (const Record& r : ans.records) AUTHDB_RETURN_NOT_OK(check(r));
  if (ans.proof_record) AUTHDB_RETURN_NOT_OK(check(*ans.proof_record));
  return Status::OK();
}

namespace {

/// An answer pinned to epoch e is a snapshot of periods 0..e-1 and can only
/// carry summaries with seq < e. A summary from a later period spliced onto
/// an older answer — the mixed-generation forgery: old-epoch chain state
/// presented with new-epoch freshness evidence — is inconsistent on its
/// face and rejected before any bitmap work.
Status CheckEpochSummaryConsistency(uint64_t served_epoch,
                                    const std::vector<UpdateSummary>& sums) {
  for (const UpdateSummary& s : sums) {
    if (s.seq + 1 > served_epoch) {
      return Status::VerificationFailed(
          "mixed-generation answer: claims serving epoch " +
          std::to_string(served_epoch) + " but carries summary seq " +
          std::to_string(s.seq) + " from a later period");
    }
  }
  return Status::OK();
}

}  // namespace

Status ClientVerifier::VerifySelectionFresh(int64_t lo, int64_t hi,
                                            const SelectionAnswer& ans,
                                            uint64_t now, uint64_t min_epoch) {
  if (ans.served_epoch < min_epoch) {
    return Status::VerificationFailed(
        "answer served under epoch " + std::to_string(ans.served_epoch) +
        " but the summary stream has reached epoch " +
        std::to_string(min_epoch));
  }
  AUTHDB_RETURN_NOT_OK(
      CheckEpochSummaryConsistency(ans.served_epoch, ans.summaries));
  return VerifySelection(lo, hi, ans, now);
}

std::vector<uint64_t> ClientVerifier::StaleRids(const SelectionAnswer& ans,
                                                uint64_t now) const {
  std::vector<uint64_t> stale;
  auto probe = [&](const Record& r) {
    if (!freshness_.CheckRecord(r.rid, r.ts, now).ok()) stale.push_back(r.rid);
  };
  for (const Record& r : ans.records) probe(r);
  if (ans.proof_record) probe(*ans.proof_record);
  return stale;
}

// ---------------------------------------------------------------------------
// Projection

namespace {

/// Projection twin of BuildSelectionMessages: spine + attribute messages,
/// aggregate check deferred to the caller.
Status BuildProjectionMessages(const Query& query,
                               const ProjectedRangeAnswer& ans,
                               std::vector<ByteBuffer>* messages_out) {
  std::vector<ByteBuffer>& messages = *messages_out;
  const int64_t lo = query.lo, hi = query.hi;
  if (lo > hi || lo == kChainMinusInf || hi == kChainPlusInf)
    return Status::InvalidArgument("bad query range");
  const std::vector<uint32_t> attrs =
      EffectiveProjectionAttrs(query.attr_indices);
  size_t index_pos = attrs.size();
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (attrs[i] == 0) index_pos = i;
  }
  if (index_pos == attrs.size())
    return Status::VerificationFailed("projection lost the index attribute");

  if (ans.tuples.empty()) {
    // Empty result: the witness's chain must span the whole range. Its
    // content enters through the shipped digest, as in [24].
    if (!ans.proof)
      return Status::VerificationFailed("empty answer without witness");
    bool left_of_range = ans.proof->key < lo && ans.right_key > hi;
    bool right_of_range = ans.proof->key > hi && ans.left_key < lo;
    if (!left_of_range && !right_of_range)
      return Status::VerificationFailed(
          "witness does not demonstrate an empty range");
    messages.push_back(ChainMessage(ans.proof->key, ans.proof->digest,
                                    ans.left_key, ans.right_key));
  } else {
    if (ans.digests.size() != ans.tuples.size())
      return Status::VerificationFailed("digest spine length mismatch");
    if (ans.left_key >= lo)
      return Status::VerificationFailed("left boundary inside range");
    if (ans.right_key <= hi)
      return Status::VerificationFailed("right boundary inside range");
    // Each tuple must project exactly the agreed attribute set; its signed
    // index-attribute value is the key that ties it to its spine entry.
    std::vector<int64_t> keys;
    keys.reserve(ans.tuples.size());
    for (const ProjectedTuple& t : ans.tuples) {
      if (t.attr_indices != attrs || t.values.size() != attrs.size())
        return Status::VerificationFailed("tuple attribute set mismatch");
      keys.push_back(t.values[index_pos]);
    }
    for (size_t i = 0; i < keys.size(); ++i) {
      if (keys[i] < lo || keys[i] > hi)
        return Status::VerificationFailed("tuple outside query range");
      if (i > 0 && keys[i - 1] >= keys[i])
        return Status::VerificationFailed("tuples not in key order");
    }
    for (size_t i = 0; i < ans.tuples.size(); ++i) {
      int64_t left = i == 0 ? ans.left_key : keys[i - 1];
      int64_t right = i + 1 == ans.tuples.size() ? ans.right_key : keys[i + 1];
      messages.push_back(
          ChainMessage(keys[i], ans.digests[i], left, right));
    }
    for (const ProjectedTuple& t : ans.tuples) {
      for (size_t i = 0; i < t.attr_indices.size(); ++i) {
        messages.push_back(DataAggregator::AttributeMessage(
            t.rid, t.attr_indices[i], t.values[i], t.ts));
      }
    }
  }
  return Status::OK();
}

}  // namespace

Status ClientVerifier::VerifyProjectionStatic(
    const Query& query, const ProjectedRangeAnswer& ans) const {
  std::vector<ByteBuffer> messages;
  AUTHDB_RETURN_NOT_OK(BuildProjectionMessages(query, ans, &messages));
  if (!da_pub_->VerifyAggregate(MessageViews(messages), ans.agg_sig, mode_))
    return Status::VerificationFailed("projection aggregate mismatch");
  return Status::OK();
}

Status ClientVerifier::VerifyProjection(const Query& query,
                                        const QueryAnswer& ans, uint64_t now) {
  AUTHDB_RETURN_NOT_OK(VerifyProjectionStatic(query, ans.projection));
  for (const UpdateSummary& s : ans.summaries) {
    Status st = freshness_.AddSummary(s);
    if (!st.ok()) return st;
  }
  for (const ProjectedTuple& t : ans.projection.tuples)
    AUTHDB_RETURN_NOT_OK(freshness_.CheckRecord(t.rid, t.ts, now));
  if (ans.projection.proof) {
    AUTHDB_RETURN_NOT_OK(freshness_.CheckRecord(ans.projection.proof->rid,
                                                ans.projection.proof->ts,
                                                now));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Join

Status ClientVerifier::VerifyJoinStatic(const Query& query,
                                        const JoinAnswer& ans) const {
  return JoinVerifier(da_pub_, mode_).Verify(query.join_values, ans);
}

Status ClientVerifier::VerifyJoin(const Query& query, const QueryAnswer& ans,
                                  uint64_t now,
                                  uint64_t max_partition_age_micros) {
  AUTHDB_RETURN_NOT_OK(VerifyJoinStatic(query, ans.join));
  for (const UpdateSummary& s : ans.summaries) {
    Status st = freshness_.AddSummary(s);
    if (!st.ok()) return st;
  }
  for (const JoinMatch& m : ans.join.matches) {
    for (const Record& r : m.s_records)
      AUTHDB_RETURN_NOT_OK(freshness_.CheckRecord(r.rid, r.ts, now));
  }
  for (const AbsenceProof& p : ans.join.absence_proofs)
    AUTHDB_RETURN_NOT_OK(freshness_.CheckRecord(p.rec_rid, p.rec_ts, now));
  if (max_partition_age_micros > 0) {
    // Filters carry no rids, so the bitmap walk cannot indict them; bound
    // their age against the newest summary this checker holds instead.
    uint64_t latest = freshness_.latest_publish_ts();
    for (const CertifiedPartition& p : ans.join.partitions) {
      if (p.ts + max_partition_age_micros < latest) {
        return Status::VerificationFailed(
            "partition filter certified " +
            std::to_string(latest - p.ts) +
            "us before the latest summary (bound " +
            std::to_string(max_partition_age_micros) + "us)");
      }
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Unified envelope

namespace {

/// The kind/shed/epoch/splice gate of VerifyAnswerFresh, shared verbatim
/// with VerifyAnswerBatch. Returns OK when the per-kind pipeline should
/// run; any other status is the answer's final verdict.
Status EnvelopePrecheck(const Query& query, const QueryAnswer& ans,
                        uint64_t min_epoch) {
  // The answer kind is server-controlled: dispatching on it without this
  // check would let a server answer a join with an honest *selection*
  // (verifying fine) while the join member the client reads stays empty —
  // a verified-yet-incomplete answer.
  if (ans.kind != query.kind)
    return Status::VerificationFailed("answer kind does not match the query");
  if (ans.outcome == AnswerOutcome::kShedRetryAfter) {
    // An admission-control shed is an honest refusal, never a result: any
    // payload riding on one is a server trying to pass off unverified (or
    // stale) data under the shed banner, so it is treated as tampering,
    // not as overload.
    const bool payload_free =
        ans.selection.records.empty() && !ans.selection.proof_record &&
        ans.selection.summaries.empty() && ans.projection.tuples.empty() &&
        !ans.projection.proof && ans.join.matches.empty() &&
        ans.join.absence_proofs.empty() && ans.join.partitions.empty() &&
        ans.summaries.empty();
    if (!payload_free) {
      return Status::VerificationFailed(
          "shed answer carries payload — a shed is a refusal, not a result");
    }
    return Status::ResourceExhausted(
        "query shed by server admission control (retry after " +
        std::to_string(ans.retry_after_micros) + "us)");
  }
  if (ans.served_epoch < min_epoch) {
    return Status::VerificationFailed(
        "answer served under epoch " + std::to_string(ans.served_epoch) +
        " but the summary stream has reached epoch " +
        std::to_string(min_epoch));
  }
  // Reject mixed-generation splices (old-epoch content + later-period
  // summaries) uniformly across every plan kind.
  return CheckEpochSummaryConsistency(ans.served_epoch, ans.summaries);
}

}  // namespace

Status ClientVerifier::VerifyAnswerFresh(const Query& query,
                                         const QueryAnswer& ans, uint64_t now,
                                         uint64_t min_epoch,
                                         uint64_t max_partition_age_micros) {
  AUTHDB_RETURN_NOT_OK(EnvelopePrecheck(query, ans, min_epoch));
  switch (ans.kind) {
    case QueryKind::kSelect:
      // The selection member carries its own stamp + summaries (mirrored
      // into the envelope); route through the shared selection path so
      // the epoch and splice checks run against the real data once.
      return VerifySelectionFresh(query.lo, query.hi, ans.selection, now,
                                  min_epoch);
    case QueryKind::kProject:
      return VerifyProjection(query, ans, now);
    case QueryKind::kJoin:
      return VerifyJoin(query, ans, now, max_partition_age_micros);
  }
  return Status::InvalidArgument("unknown answer kind");
}

std::vector<Status> ClientVerifier::VerifyAnswerBatch(
    const PlanBatch& batch, const std::vector<Result<QueryAnswer>>& answers,
    uint64_t now, uint64_t min_epoch, const BatchVerifyOptions& opts,
    BatchVerifyStats* stats) {
  const size_t n = batch.plans.size();
  std::vector<Status> out(n, Status::OK());
  if (answers.size() != n) {
    for (Status& s : out)
      s = Status::InvalidArgument("answer count does not match the batch");
    return out;
  }
  if (stats != nullptr) *stats = BatchVerifyStats{};
  if (stats != nullptr) stats->answers = n;

  /// One answer's deferred work: the chain messages whose aggregate still
  /// needs checking (selections/projections), and whether the serial
  /// freshness walk should run.
  struct Pending {
    std::vector<ByteBuffer> messages;
    const BasSignature* agg = nullptr;
    const char* mismatch = nullptr;
    bool freshness = false;
  };
  std::vector<Pending> pend(n);

  // Phase 1 — stateless, answer-parallel: envelope gate, structural
  // checks, message building; joins run their whole static pipeline here
  // (their aggregates are heterogeneous per proof, verified inside
  // JoinVerifier). Nothing in this phase touches freshness_, so striping
  // answers across workers cannot reorder anything observable.
  auto static_one = [&](size_t i) {
    if (!answers[i].ok()) {
      out[i] = answers[i].status();
      return;
    }
    const Query& q = batch.plans[i];
    const QueryAnswer& ans = answers[i].value();
    out[i] = EnvelopePrecheck(q, ans, min_epoch);
    if (!out[i].ok()) return;
    switch (ans.kind) {
      case QueryKind::kSelect: {
        // Mirror VerifySelectionFresh: the selection member carries its
        // own stamp and summary run.
        const SelectionAnswer& sel = ans.selection;
        if (sel.served_epoch < min_epoch) {
          out[i] = Status::VerificationFailed(
              "answer served under epoch " +
              std::to_string(sel.served_epoch) +
              " but the summary stream has reached epoch " +
              std::to_string(min_epoch));
          return;
        }
        out[i] = CheckEpochSummaryConsistency(sel.served_epoch,
                                              sel.summaries);
        if (!out[i].ok()) return;
        out[i] = BuildSelectionMessages(q.lo, q.hi, sel, &pend[i].messages);
        if (!out[i].ok()) return;
        pend[i].agg = &sel.agg_sig;
        pend[i].mismatch = "aggregate signature mismatch";
        return;
      }
      case QueryKind::kProject:
        out[i] = BuildProjectionMessages(q, ans.projection,
                                         &pend[i].messages);
        if (!out[i].ok()) return;
        pend[i].agg = &ans.projection.agg_sig;
        pend[i].mismatch = "projection aggregate mismatch";
        return;
      case QueryKind::kJoin:
        out[i] = VerifyJoinStatic(q, ans.join);
        if (out[i].ok()) pend[i].freshness = true;
        return;
    }
    out[i] = Status::InvalidArgument("unknown answer kind");
  };
  const size_t workers = std::min(opts.worker_threads, n);
  if (workers > 1) {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (size_t t = 0; t < workers; ++t) {
      pool.emplace_back([&, t] {
        for (size_t i = t; i < n; i += workers) static_one(i);
      });
    }
    for (std::thread& th : pool) th.join();
  } else {
    for (size_t i = 0; i < n; ++i) static_one(i);
  }

  // Phase 2 — every deferred aggregate in ONE shared-inversion pass.
  std::vector<BasAggregateClaim> claims;
  std::vector<size_t> owner;
  for (size_t i = 0; i < n; ++i) {
    if (!out[i].ok() || pend[i].agg == nullptr) continue;
    BasAggregateClaim claim;
    claim.messages = MessageViews(pend[i].messages);
    claim.agg = *pend[i].agg;
    claims.push_back(std::move(claim));
    owner.push_back(i);
  }
  if (!claims.empty()) {
    std::vector<bool> ok = da_pub_->VerifyAggregateBatch(claims, mode_);
    for (size_t k = 0; k < claims.size(); ++k) {
      if (ok[k]) {
        pend[owner[k]].freshness = true;
      } else {
        out[owner[k]] = Status::VerificationFailed(pend[owner[k]].mismatch);
      }
    }
    if (stats != nullptr) {
      stats->aggregate_claims = claims.size();
      stats->shared_inversions = 1;
    }
  }

  // Phase 3 — freshness, strictly serial in answer order: summaries an
  // earlier answer ingests are visible to every later walk, exactly as in
  // the sequential loop.
  for (size_t i = 0; i < n; ++i) {
    if (!out[i].ok() || !pend[i].freshness) continue;
    const QueryAnswer& ans = answers[i].value();
    switch (ans.kind) {
      case QueryKind::kSelect: {
        const SelectionAnswer& sel = ans.selection;
        for (const UpdateSummary& s : sel.summaries) {
          out[i] = freshness_.AddSummary(s);
          if (!out[i].ok()) break;
        }
        if (!out[i].ok()) break;
        for (const Record& r : sel.records) {
          out[i] = freshness_.CheckRecord(r.rid, r.ts, now);
          if (!out[i].ok()) break;
        }
        if (out[i].ok() && sel.proof_record) {
          out[i] = freshness_.CheckRecord(sel.proof_record->rid,
                                          sel.proof_record->ts, now);
        }
        break;
      }
      case QueryKind::kProject: {
        for (const UpdateSummary& s : ans.summaries) {
          out[i] = freshness_.AddSummary(s);
          if (!out[i].ok()) break;
        }
        if (!out[i].ok()) break;
        for (const ProjectedTuple& t : ans.projection.tuples) {
          out[i] = freshness_.CheckRecord(t.rid, t.ts, now);
          if (!out[i].ok()) break;
        }
        if (out[i].ok() && ans.projection.proof) {
          out[i] = freshness_.CheckRecord(ans.projection.proof->rid,
                                          ans.projection.proof->ts, now);
        }
        break;
      }
      case QueryKind::kJoin: {
        for (const UpdateSummary& s : ans.summaries) {
          out[i] = freshness_.AddSummary(s);
          if (!out[i].ok()) break;
        }
        if (!out[i].ok()) break;
        for (const JoinMatch& m : ans.join.matches) {
          for (const Record& r : m.s_records) {
            out[i] = freshness_.CheckRecord(r.rid, r.ts, now);
            if (!out[i].ok()) break;
          }
          if (!out[i].ok()) break;
        }
        if (out[i].ok()) {
          for (const AbsenceProof& p : ans.join.absence_proofs) {
            out[i] = freshness_.CheckRecord(p.rec_rid, p.rec_ts, now);
            if (!out[i].ok()) break;
          }
        }
        if (out[i].ok() && opts.max_partition_age_micros > 0) {
          uint64_t latest = freshness_.latest_publish_ts();
          for (const CertifiedPartition& p : ans.join.partitions) {
            if (p.ts + opts.max_partition_age_micros < latest) {
              out[i] = Status::VerificationFailed(
                  "partition filter certified " +
                  std::to_string(latest - p.ts) +
                  "us before the latest summary (bound " +
                  std::to_string(opts.max_partition_age_micros) + "us)");
              break;
            }
          }
        }
        break;
      }
    }
  }
  return out;
}

std::vector<uint64_t> ClientVerifier::StaleRids(const QueryAnswer& ans,
                                                uint64_t now) const {
  std::vector<uint64_t> stale;
  auto probe = [&](uint64_t rid, uint64_t ts) {
    if (!freshness_.CheckRecord(rid, ts, now).ok()) stale.push_back(rid);
  };
  switch (ans.kind) {
    case QueryKind::kSelect:
      return StaleRids(ans.selection, now);
    case QueryKind::kProject:
      for (const ProjectedTuple& t : ans.projection.tuples)
        probe(t.rid, t.ts);
      if (ans.projection.proof)
        probe(ans.projection.proof->rid, ans.projection.proof->ts);
      break;
    case QueryKind::kJoin:
      for (const JoinMatch& m : ans.join.matches) {
        for (const Record& r : m.s_records) probe(r.rid, r.ts);
      }
      for (const AbsenceProof& p : ans.join.absence_proofs)
        probe(p.rec_rid, p.rec_ts);
      break;
  }
  return stale;
}

}  // namespace authdb
