#include "core/verifier.h"

#include <cstdint>
#include <string>
#include <vector>

#include "core/chain.h"

namespace authdb {

Status ClientVerifier::VerifySelectionStatic(int64_t lo, int64_t hi,
                                             const SelectionAnswer& ans) const {
  if (lo > hi || lo == kChainMinusInf || hi == kChainPlusInf)
    return Status::InvalidArgument("bad query range");

  std::vector<ByteBuffer> messages;
  if (ans.records.empty()) {
    // Empty result: the proof record's chain must span the whole range.
    if (!ans.proof_record)
      return Status::VerificationFailed("empty answer without proof record");
    const Record& pr = *ans.proof_record;
    bool left_of_range = pr.key() < lo && ans.right_key > hi;
    bool right_of_range = pr.key() > hi && ans.left_key < lo;
    if (!left_of_range && !right_of_range)
      return Status::VerificationFailed(
          "proof record does not demonstrate an empty range");
    messages.push_back(ChainMessage(pr, ans.left_key, ans.right_key));
  } else {
    // Completeness: boundaries enclose the range...
    if (ans.left_key >= lo)
      return Status::VerificationFailed("left boundary inside range");
    if (ans.right_key <= hi)
      return Status::VerificationFailed("right boundary inside range");
    // ...and the results are sorted, in-range, and chained gaplessly.
    for (size_t i = 0; i < ans.records.size(); ++i) {
      int64_t k = ans.records[i].key();
      if (k < lo || k > hi)
        return Status::VerificationFailed("record outside query range");
      if (i > 0 && ans.records[i - 1].key() >= k)
        return Status::VerificationFailed("records not in key order");
    }
    for (size_t i = 0; i < ans.records.size(); ++i) {
      int64_t left = i == 0 ? ans.left_key : ans.records[i - 1].key();
      int64_t right = i + 1 == ans.records.size() ? ans.right_key
                                                  : ans.records[i + 1].key();
      messages.push_back(ChainMessage(ans.records[i], left, right));
    }
  }
  std::vector<Slice> views;
  views.reserve(messages.size());
  for (const ByteBuffer& m : messages) views.push_back(m.AsSlice());
  if (!da_pub_->VerifyAggregate(views, ans.agg_sig, mode_))
    return Status::VerificationFailed("aggregate signature mismatch");
  return Status::OK();
}

Status ClientVerifier::VerifySelection(int64_t lo, int64_t hi,
                                       const SelectionAnswer& ans,
                                       uint64_t now) {
  AUTHDB_RETURN_NOT_OK(VerifySelectionStatic(lo, hi, ans));
  for (const UpdateSummary& s : ans.summaries) {
    Status st = freshness_.AddSummary(s);
    if (!st.ok()) return st;
  }
  auto check = [&](const Record& r) {
    return freshness_.CheckRecord(r.rid, r.ts, now);
  };
  for (const Record& r : ans.records) AUTHDB_RETURN_NOT_OK(check(r));
  if (ans.proof_record) AUTHDB_RETURN_NOT_OK(check(*ans.proof_record));
  return Status::OK();
}

Status ClientVerifier::VerifySelectionFresh(int64_t lo, int64_t hi,
                                            const SelectionAnswer& ans,
                                            uint64_t now, uint64_t min_epoch) {
  if (ans.served_epoch < min_epoch) {
    return Status::VerificationFailed(
        "answer served under epoch " + std::to_string(ans.served_epoch) +
        " but the summary stream has reached epoch " +
        std::to_string(min_epoch));
  }
  return VerifySelection(lo, hi, ans, now);
}

std::vector<uint64_t> ClientVerifier::StaleRids(const SelectionAnswer& ans,
                                                uint64_t now) const {
  std::vector<uint64_t> stale;
  auto probe = [&](const Record& r) {
    if (!freshness_.CheckRecord(r.rid, r.ts, now).ok()) stale.push_back(r.rid);
  };
  for (const Record& r : ans.records) probe(r);
  if (ans.proof_record) probe(*ans.proof_record);
  return stale;
}

}  // namespace authdb
