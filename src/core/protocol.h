#ifndef AUTHDB_CORE_PROTOCOL_H_
#define AUTHDB_CORE_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "core/freshness.h"
#include "core/record.h"
#include "core/vo_size.h"
#include "crypto/bas.h"

namespace authdb {

/// A record together with its current chain signature.
struct CertifiedRecord {
  Record record;
  BasSignature sig;
};

/// DA -> QS update message. Fresh records and signatures are pushed
/// immediately (decoupled from the periodic summaries — the key design
/// decision of Section 3.1).
struct SignedRecordUpdate {
  enum class Kind { kInsert, kModify, kDelete, kRecertify };
  Kind kind = Kind::kModify;
  int64_t key = 0;  // target key (primary payload key, or delete victim)
  std::optional<CertifiedRecord> record;  // kInsert / kModify payload
  /// Neighbor re-chaining (insert/delete) and active signature renewals:
  /// full re-certified contents (new ts) with fresh signatures.
  std::vector<CertifiedRecord> recertified;

  size_t wire_size(const SizeModel& sm, size_t record_len) const {
    size_t n = record ? 1 : 0;
    n += recertified.size();
    return n * (record_len + sm.signature_bytes) + 16;
  }
};

/// QS -> user selection answer (Section 3.3). The VO is one aggregate
/// signature plus the boundary index-attribute values; for empty results a
/// single proof record demonstrates adjacency across the queried range.
struct SelectionAnswer {
  std::vector<Record> records;
  BasSignature agg_sig;
  int64_t left_key = 0;   ///< index value left of the range (or -inf sentinel)
  int64_t right_key = 0;  ///< index value right of the range (or +inf)
  /// Set when `records` is empty: a record proving no key lies in [lo, hi].
  std::optional<Record> proof_record;
  /// Freshness evidence: summaries since the oldest result signature.
  std::vector<UpdateSummary> summaries;
  /// Freshness epoch the answer was served under: latest summary seq + 1
  /// held by the server when it built this answer (0 = none yet). Unsigned
  /// metadata — the verifier treats it as a claim to cross-check against
  /// its own view of the summary stream; the signed bitmaps remain the
  /// actual staleness proof (see ClientVerifier::VerifySelectionFresh).
  uint64_t served_epoch = 0;

  /// VO size under the paper's constants: one aggregate signature + two
  /// boundary values (independent of selectivity — Section 3.3).
  size_t vo_size(const SizeModel& sm) const {
    size_t bytes = sm.signature_bytes + 2 * sm.key_bytes;
    for (const auto& s : summaries) bytes += s.wire_size();
    return bytes;
  }
};

}  // namespace authdb

#endif  // AUTHDB_CORE_PROTOCOL_H_
