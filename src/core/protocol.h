#ifndef AUTHDB_CORE_PROTOCOL_H_
#define AUTHDB_CORE_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "core/freshness.h"
#include "core/join.h"
#include "core/projection.h"
#include "core/record.h"
#include "core/vo_size.h"
#include "crypto/bas.h"

namespace authdb {

/// A record together with its current chain signature. When the DA signs
/// per-attribute messages for projection queries (Section 3.4,
/// DataAggregator::Options::sign_attributes), the attribute signatures
/// ride along so the query servers can serve projections; empty otherwise.
struct CertifiedRecord {
  Record record;
  BasSignature sig;
  std::vector<BasSignature> attr_sigs;  ///< one per attribute, or empty
};

/// DA -> QS update message. Fresh records and signatures are pushed
/// immediately (decoupled from the periodic summaries — the key design
/// decision of Section 3.1).
struct SignedRecordUpdate {
  enum class Kind { kInsert, kModify, kDelete, kRecertify };
  Kind kind = Kind::kModify;
  int64_t key = 0;  // target key (primary payload key, or delete victim)
  std::optional<CertifiedRecord> record;  // kInsert / kModify payload
  /// Neighbor re-chaining (insert/delete) and active signature renewals:
  /// full re-certified contents (new ts) with fresh signatures.
  std::vector<CertifiedRecord> recertified;

  size_t wire_size(const SizeModel& sm, size_t record_len) const {
    size_t n = record ? 1 : 0;
    n += recertified.size();
    return n * (record_len + sm.signature_bytes) + 16;
  }
};

/// QS -> user selection answer (Section 3.3). The VO is one aggregate
/// signature plus the boundary index-attribute values; for empty results a
/// single proof record demonstrates adjacency across the queried range.
struct SelectionAnswer {
  std::vector<Record> records;
  BasSignature agg_sig;
  int64_t left_key = 0;   ///< index value left of the range (or -inf sentinel)
  int64_t right_key = 0;  ///< index value right of the range (or +inf)
  /// Set when `records` is empty: a record proving no key lies in [lo, hi].
  std::optional<Record> proof_record;
  /// Freshness evidence: summaries since the oldest result signature.
  std::vector<UpdateSummary> summaries;
  /// Freshness epoch the answer was served under: latest summary seq + 1
  /// (0 = none yet). On the epoch-pinned sharded path this is exact — the
  /// whole answer is a snapshot of precisely this published epoch, so it
  /// can only carry summaries with seq < served_epoch (the verifier's
  /// mixed-generation check relies on that). Unsigned metadata — the
  /// verifier treats it as a claim to cross-check against its own view of
  /// the summary stream; the signed bitmaps remain the actual staleness
  /// proof (see ClientVerifier::VerifySelectionFresh).
  uint64_t served_epoch = 0;

  /// VO size under the paper's constants: one aggregate signature + two
  /// boundary values (independent of selectivity — Section 3.3).
  size_t vo_size(const SizeModel& sm) const {
    size_t bytes = sm.signature_bytes + 2 * sm.key_bytes;
    for (const auto& s : summaries) bytes += s.wire_size();
    return bytes;
  }
};

/// The unified verified-query surface: one plan type for every operator
/// the servers execute. Selections and projections are range plans over
/// the index attribute; equi-joins probe the (composite-keyed) S relation
/// with the R.A values, proven by certified Bloom filters or boundary
/// absence witnesses (Section 3.5).
enum class QueryKind { kSelect, kProject, kJoin };

struct Query {
  QueryKind kind = QueryKind::kSelect;
  /// kSelect / kProject: inclusive index-attribute range.
  int64_t lo = 0, hi = 0;
  /// kProject: attribute positions to retain. The executor always adds
  /// position 0 (the index attribute) if absent — its signed value is what
  /// binds each projected tuple to its completeness-spine entry.
  std::vector<uint32_t> attr_indices;
  /// kJoin: the R.A probe values (deduplicated by the executor).
  std::vector<int64_t> join_values;
  JoinMethod join_method = JoinMethod::kBloomFilter;

  static Query Select(int64_t lo, int64_t hi) {
    Query q;
    q.kind = QueryKind::kSelect;
    q.lo = lo;
    q.hi = hi;
    return q;
  }
  static Query Project(int64_t lo, int64_t hi,
                       std::vector<uint32_t> attr_indices) {
    Query q;
    q.kind = QueryKind::kProject;
    q.lo = lo;
    q.hi = hi;
    q.attr_indices = std::move(attr_indices);
    return q;
  }
  static Query Join(std::vector<int64_t> values,
                    JoinMethod method = JoinMethod::kBloomFilter) {
    Query q;
    q.kind = QueryKind::kJoin;
    q.join_values = std::move(values);
    q.join_method = method;
    return q;
  }
};

/// A group of client plans submitted for execution against ONE pinned
/// epoch (the batched server path, ShardedQueryServer::ExecuteBatch).
/// Every plan in the batch is answered from the same serializable cut, and
/// the executor amortizes shard visits, snapshot walks, and signature
/// finalization across the whole batch; each plan still yields its own
/// independently verifiable QueryAnswer.
struct PlanBatch {
  std::vector<Query> plans;

  static PlanBatch Of(std::vector<Query> plans) {
    PlanBatch b;
    b.plans = std::move(plans);
    return b;
  }
};

/// The attribute set a projection plan actually serves: the requested
/// positions deduplicated in order, with the index attribute (position 0)
/// forced to the front when absent — shared by the executors and the
/// verifier so both sides agree on the tuple layout.
inline std::vector<uint32_t> EffectiveProjectionAttrs(
    const std::vector<uint32_t>& requested) {
  std::vector<uint32_t> out;
  bool has_index = false;
  for (uint32_t i : requested) has_index |= i == 0;
  if (!has_index) out.push_back(0);
  for (uint32_t i : requested) {
    bool seen = false;
    for (uint32_t j : out) seen |= j == i;
    if (!seen) out.push_back(i);
  }
  return out;
}

/// How a plan left the server. kServed is the normal path. kShedRetryAfter
/// is an explicit load-shed under admission control: the server refused to
/// execute the plan, stamped the answer with its current epoch and a
/// retry-after hint, and returned NO payload. A shed is an honest,
/// verifier-distinguishable outcome — ClientVerifier::VerifyAnswerFresh
/// maps a payload-free shed to ResourceExhausted (retry), and a shed that
/// smuggles any payload to VerificationFailed (a tampering server cannot
/// use "shed" to sneak an unverified or stale answer past the client).
enum class AnswerOutcome { kServed, kShedRetryAfter };

/// One answer envelope for every plan kind, uniformly epoch-stamped so
/// ClientVerifier::VerifyAnswerFresh applies the same freshness discipline
/// to joins and projections as to selections. Exactly the member matching
/// `kind` is meaningful.
struct QueryAnswer {
  QueryKind kind = QueryKind::kSelect;
  AnswerOutcome outcome = AnswerOutcome::kServed;
  /// kShedRetryAfter only: advisory client backoff hint.
  uint64_t retry_after_micros = 0;
  SelectionAnswer selection;
  ProjectedRangeAnswer projection;
  JoinAnswer join;
  /// Freshness evidence for kProject / kJoin (kSelect carries its own
  /// inside `selection`): every summary published at/after the oldest
  /// cited record certification.
  std::vector<UpdateSummary> summaries;
  /// Freshness epoch the answer was served under — same contract as
  /// SelectionAnswer::served_epoch, mirrored there for kSelect.
  uint64_t served_epoch = 0;

  /// Per-kind VO accounting (paper constants), freshness evidence
  /// included — what the mixed-workload benches report per query kind.
  size_t vo_bytes(const SizeModel& sm) const {
    size_t bytes = 0;
    switch (kind) {
      case QueryKind::kSelect:
        return selection.vo_size(sm);  // summaries counted inside
      case QueryKind::kProject:
        bytes = projection.vo_size(sm);
        break;
      case QueryKind::kJoin:
        bytes = join.vo_size_paper(sm);
        break;
    }
    for (const auto& s : summaries) bytes += s.wire_size();
    return bytes;
  }
};

/// The canonical shed answer: kind echoed, current epoch stamped, backoff
/// hint attached, every payload member left empty.
inline QueryAnswer MakeShedAnswer(QueryKind kind, uint64_t served_epoch,
                                  uint64_t retry_after_micros) {
  QueryAnswer a;
  a.kind = kind;
  a.outcome = AnswerOutcome::kShedRetryAfter;
  a.retry_after_micros = retry_after_micros;
  a.served_epoch = served_epoch;
  a.selection.served_epoch = served_epoch;
  return a;
}

}  // namespace authdb

#endif  // AUTHDB_CORE_PROTOCOL_H_
