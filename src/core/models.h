#ifndef AUTHDB_CORE_MODELS_H_
#define AUTHDB_CORE_MODELS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace authdb {

/// Analytic models lifted straight from the paper (Sections 3.2 and 3.5);
/// they regenerate Table 1 and Figure 4 and provide the Eq. (2)/(3) VO-size
/// predictions that Figure 11 measurements are compared against.
namespace models {

/// Height of the ASign / EMB- index (Table 1): ceil(log_f(3/2 * ceil(N/146)))
/// with 146 data entries per leaf, 2/3 utilization, and effective internal
/// fanout f = 341 (ASign, plain B+-tree internals) or f = 97 (EMB-, internal
/// nodes carry one digest per child entry).
inline int TreeHeight(uint64_t n_records, double fanout) {
  double leaves = 1.5 * std::ceil(static_cast<double>(n_records) / 146.0);
  return static_cast<int>(std::max(1.0, std::ceil(std::log(leaves) /
                                                  std::log(fanout))));
}
inline int AsignHeight(uint64_t n) { return TreeHeight(n, 341.0); }
inline int EmbHeight(uint64_t n) { return TreeHeight(n, 97.0); }

/// Eq. (2): expected boundary-value bytes for BV over the unmatched part.
inline double VoBV(double alpha, double ia, double ib, double sb_bytes) {
  return (1.0 - alpha) * ia * std::min(2.0, ib / ia) * sb_bytes;
}

/// Expected false-positive rate at m/IB bits per distinct value with the
/// optimal k: 0.6185^(m/IB) (Section 2.1).
inline double BloomFp(double bits_per_value) {
  return std::pow(0.6185, bits_per_value);
}

/// Eq. (3): expected BF proof bytes for the unmatched fraction.
/// `m_bits` is the total size of the probed partition filters in bits.
inline double VoBF(double alpha, double ia, double m_bits, double p,
                   double fp, double sb_bytes) {
  double filters = (1.0 - alpha) * m_bits / 8.0;
  double bounds = std::min(1.0, 2.0 * (1.0 - alpha)) * p * sb_bytes;
  double fps = (1.0 - alpha) * ia * fp * 2.0 * sb_bytes;
  return filters + bounds + fps;
}

/// Figure 4's configuration surface: z = 0.0432*(IA/IB) + 2*(p/IB); the BF
/// method wins while z < 0.75 (primary-key/foreign-key case, m = 8*IB).
inline double ViabilityZ(double ia_over_ib, double ib_over_p) {
  return 0.0432 * ia_over_ib + 2.0 / ib_over_p;
}

}  // namespace models
}  // namespace authdb

#endif  // AUTHDB_CORE_MODELS_H_
