#include "core/epoch_snapshot.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/logging.h"

namespace authdb {

// ---------------------------------------------------------------------------
// EpochSnapshot

EpochSnapshot::EpochSnapshot(std::vector<std::shared_ptr<const Chunk>> chunks,
                             uint64_t generation)
    : EpochSnapshot(std::move(chunks), {}, generation) {}

EpochSnapshot::EpochSnapshot(
    std::vector<std::shared_ptr<const Chunk>> chunks,
    std::vector<std::shared_ptr<const ECPoint>> chunk_aggs,
    uint64_t generation)
    : chunks_(std::move(chunks)),
      chunk_aggs_(std::move(chunk_aggs)),
      generation_(generation) {
  AUTHDB_CHECK(chunk_aggs_.empty() || chunk_aggs_.size() == chunks_.size());
  starts_.reserve(chunks_.size());
  first_keys_.reserve(chunks_.size());
  size_t rank = 0;
  for (const auto& c : chunks_) {
    AUTHDB_CHECK(c != nullptr && !c->empty());
    starts_.push_back(rank);
    first_keys_.push_back(c->front().key());
    rank += c->size();
  }
  total_ = rank;
}

size_t EpochSnapshot::ChunkAggregateAt(size_t pos, size_t hi,
                                       ECPoint* agg) const {
  if (chunk_aggs_.empty() || pos >= total_) return 0;
  size_t ci = static_cast<size_t>(
      std::upper_bound(starts_.begin(), starts_.end(), pos) -
      starts_.begin() - 1);
  // Only a span starting exactly at a chunk boundary is precomputed.
  if (starts_[ci] != pos || chunk_aggs_[ci] == nullptr) return 0;
  size_t len = chunks_[ci]->size();
  if (pos + len - 1 > hi) return 0;
  *agg = *chunk_aggs_[ci];
  return len;
}

size_t EpochSnapshot::LowerBound(int64_t key) const {
  if (chunks_.empty()) return 0;
  // Last chunk whose first key is <= key; earlier chunks are entirely
  // below `key`, later ones entirely at/above the chunk's first key > key.
  size_t ci = std::upper_bound(first_keys_.begin(), first_keys_.end(), key) -
              first_keys_.begin();
  if (ci == 0) return 0;
  --ci;
  const Chunk& c = *chunks_[ci];
  auto it = std::lower_bound(
      c.begin(), c.end(), key,
      [](const SnapshotItem& a, int64_t k) { return a.key() < k; });
  return starts_[ci] + static_cast<size_t>(it - c.begin());
}

size_t EpochSnapshot::UpperBound(int64_t key) const {
  if (chunks_.empty()) return 0;
  size_t ci = std::upper_bound(first_keys_.begin(), first_keys_.end(), key) -
              first_keys_.begin();
  if (ci == 0) return 0;
  --ci;
  const Chunk& c = *chunks_[ci];
  auto it = std::upper_bound(
      c.begin(), c.end(), key,
      [](int64_t k, const SnapshotItem& a) { return k < a.key(); });
  return starts_[ci] + static_cast<size_t>(it - c.begin());
}

namespace {
/// First rank in (start, total] whose key satisfies `past(key)`, galloping
/// forward: exponential probes from `start`, then a binary search inside
/// the bracketed window. `past` must be monotone in rank.
template <typename Past>
size_t GallopForward(const EpochSnapshot& snap, size_t start, Past past) {
  size_t total = snap.size();
  if (start >= total) return total;
  if (past(snap.ItemAt(start).key())) return start;
  size_t step = 1;
  size_t lo = start;  // known: !past(key at lo)
  size_t hi;
  for (;;) {
    hi = lo + step;
    if (hi >= total) {
      hi = total;
      break;
    }
    if (past(snap.ItemAt(hi).key())) break;
    lo = hi;
    step <<= 1;
  }
  // Invariant: !past(lo), past(hi) (or hi == total). Bisect (lo, hi).
  while (hi - lo > 1) {
    size_t mid = lo + (hi - lo) / 2;
    if (past(snap.ItemAt(mid).key())) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}
}  // namespace

size_t EpochSnapshot::ForwardCursor::LowerBound(int64_t key) {
  AUTHDB_DCHECK(key >= last_key_);
  last_key_ = key;
  pos_ = GallopForward(snap_, pos_, [key](int64_t k) { return k >= key; });
  return pos_;
}

size_t EpochSnapshot::ForwardCursor::UpperBoundFrom(size_t start,
                                                    int64_t key) const {
  return GallopForward(snap_, start, [key](int64_t k) { return k > key; });
}

const SnapshotItem& EpochSnapshot::ItemAt(size_t rank) const {
  AUTHDB_CHECK(rank < total_);
  size_t ci = std::upper_bound(starts_.begin(), starts_.end(), rank) -
              starts_.begin() - 1;
  return (*chunks_[ci])[rank - starts_[ci]];
}

const SnapshotItem* EpochSnapshot::Get(int64_t key) const {
  size_t r = LowerBound(key);
  if (r == total_) return nullptr;
  const SnapshotItem& item = ItemAt(r);
  return item.key() == key ? &item : nullptr;
}

const SnapshotItem* EpochSnapshot::Predecessor(int64_t key) const {
  size_t r = LowerBound(key);
  return r == 0 ? nullptr : &ItemAt(r - 1);
}

const SnapshotItem* EpochSnapshot::Successor(int64_t key) const {
  size_t r = UpperBound(key);
  return r == total_ ? nullptr : &ItemAt(r);
}

// ---------------------------------------------------------------------------
// ShardVersionBuilder

ShardVersionBuilder::ShardVersionBuilder(
    size_t chunk_target, std::shared_ptr<const BasContext> barrier_ctx)
    : chunk_target_(chunk_target), barrier_ctx_(std::move(barrier_ctx)) {
  AUTHDB_CHECK(chunk_target_ >= 2);
}

size_t ShardVersionBuilder::ChunkOf(int64_t key) const {
  AUTHDB_CHECK(!chunks_.empty());
  size_t ci = std::upper_bound(first_keys_.begin(), first_keys_.end(), key) -
              first_keys_.begin();
  return ci == 0 ? 0 : ci - 1;
}

ShardVersionBuilder::Chunk* ShardVersionBuilder::Mutate(size_t ci) {
  if (!owned_[ci]) {
    chunks_[ci] = std::make_shared<Chunk>(*chunks_[ci]);
    owned_[ci] = true;
  }
  // The chunk's precomputed aggregate is stale the moment the delta
  // touches it; Freeze() rebuilds every null entry at the barrier.
  chunk_aggs_[ci].reset();
  // Owned chunks are exclusively ours until the next Freeze: the const in
  // the shared_ptr type only protects the frozen copies.
  return const_cast<Chunk*>(chunks_[ci].get());
}

void ShardVersionBuilder::Rebalance(size_t ci) {
  Chunk* c = const_cast<Chunk*>(chunks_[ci].get());
  if (c->empty()) {
    chunks_.erase(chunks_.begin() + ci);
    chunk_aggs_.erase(chunk_aggs_.begin() + ci);
    owned_.erase(owned_.begin() + ci);
    first_keys_.erase(first_keys_.begin() + ci);
    return;
  }
  if (c->size() > 2 * chunk_target_) {
    auto right = std::make_shared<Chunk>(
        c->begin() + static_cast<ptrdiff_t>(c->size() / 2), c->end());
    c->erase(c->begin() + static_cast<ptrdiff_t>(c->size() / 2), c->end());
    chunks_.insert(chunks_.begin() + ci + 1, right);
    chunk_aggs_.insert(chunk_aggs_.begin() + ci + 1, nullptr);
    owned_.insert(owned_.begin() + ci + 1, true);
    first_keys_.insert(first_keys_.begin() + ci + 1, right->front().key());
  }
  first_keys_[ci] = chunks_[ci]->front().key();
}

Status ShardVersionBuilder::ApplyInsert(const CertifiedRecord& cr) {
  const int64_t key = cr.record.key();
  if (chunks_.empty()) {
    auto c = std::make_shared<Chunk>();
    c->push_back(SnapshotItem{cr.record, cr.sig, cr.attr_sigs});
    chunks_.push_back(std::move(c));
    chunk_aggs_.push_back(nullptr);
    owned_.push_back(true);
    first_keys_.push_back(key);
    ++size_;
    return Status::OK();
  }
  size_t ci = ChunkOf(key);
  Chunk* c = Mutate(ci);
  auto it = std::lower_bound(
      c->begin(), c->end(), key,
      [](const SnapshotItem& a, int64_t k) { return a.key() < k; });
  if (it != c->end() && it->key() == key)
    return Status::AlreadyExists("insert of existing key " +
                                 std::to_string(key));
  c->insert(it, SnapshotItem{cr.record, cr.sig, cr.attr_sigs});
  ++size_;
  Rebalance(ci);
  return Status::OK();
}

Status ShardVersionBuilder::ApplyReplace(const CertifiedRecord& cr) {
  const int64_t key = cr.record.key();
  if (chunks_.empty())
    return Status::NotFound("update of missing key " + std::to_string(key));
  size_t ci = ChunkOf(key);
  Chunk* c = Mutate(ci);
  auto it = std::lower_bound(
      c->begin(), c->end(), key,
      [](const SnapshotItem& a, int64_t k) { return a.key() < k; });
  if (it == c->end() || it->key() != key)
    return Status::NotFound("update of missing key " + std::to_string(key));
  it->record = cr.record;
  it->sig = cr.sig;
  // A message without attribute signatures leaves the stored ones in
  // place, matching the QueryServer mirror semantics (the DA only ships
  // them when attribute signing is on).
  if (!cr.attr_sigs.empty()) it->attr_sigs = cr.attr_sigs;
  return Status::OK();
}

Status ShardVersionBuilder::ApplyDelete(int64_t key) {
  if (chunks_.empty())
    return Status::NotFound("delete of missing key " + std::to_string(key));
  size_t ci = ChunkOf(key);
  Chunk* c = Mutate(ci);
  auto it = std::lower_bound(
      c->begin(), c->end(), key,
      [](const SnapshotItem& a, int64_t k) { return a.key() < k; });
  if (it == c->end() || it->key() != key)
    return Status::NotFound("delete of missing key " + std::to_string(key));
  c->erase(it);
  --size_;
  Rebalance(ci);
  return Status::OK();
}

Status ShardVersionBuilder::Apply(const SignedRecordUpdate& piece) {
  using Kind = SignedRecordUpdate::Kind;
  Status st = Status::OK();
  switch (piece.kind) {
    case Kind::kInsert:
      if (!piece.record) return Status::InvalidArgument("insert w/o record");
      st = ApplyInsert(*piece.record);
      break;
    case Kind::kModify:
      if (!piece.record) return Status::InvalidArgument("modify w/o record");
      st = ApplyReplace(*piece.record);
      break;
    case Kind::kDelete:
      st = ApplyDelete(piece.key);
      break;
    case Kind::kRecertify:
      break;  // payload carried entirely in `recertified`
  }
  if (!st.ok()) return st;
  changed_ = true;  // even a failed recertified entry below leaves a mark
  for (const CertifiedRecord& cr : piece.recertified) {
    AUTHDB_RETURN_NOT_OK(ApplyReplace(cr));
  }
  return Status::OK();
}

void ShardVersionBuilder::PrecomputeChunkAggregates() {
  if (barrier_ctx_ == nullptr) return;
  const CurveGroup& curve = barrier_ctx_->curve();
  std::vector<size_t> fresh;
  std::vector<CurveGroup::Jacobian> jacs;
  for (size_t ci = 0; ci < chunks_.size(); ++ci) {
    if (chunk_aggs_[ci] != nullptr) continue;  // shared chunk: write-once
    CurveGroup::Jacobian acc{};
    for (const SnapshotItem& item : *chunks_[ci]) {
      if (!item.sig.point.infinity)
        acc = curve.JacAddAffine(acc, item.sig.point);
    }
    fresh.push_back(ci);
    jacs.push_back(std::move(acc));
  }
  if (fresh.empty()) return;
  // ONE shared inversion finalizes every rebuilt chunk aggregate.
  std::vector<ECPoint> pts = curve.ToAffineBatch(jacs);
  for (size_t k = 0; k < fresh.size(); ++k) {
    chunk_aggs_[fresh[k]] =
        std::make_shared<const ECPoint>(std::move(pts[k]));
  }
}

std::shared_ptr<const EpochSnapshot> ShardVersionBuilder::Freeze() {
  if (!changed_ && last_frozen_ != nullptr) return last_frozen_;
  if (changed_) ++generation_;
  changed_ = false;
  std::fill(owned_.begin(), owned_.end(), false);
  PrecomputeChunkAggregates();
  last_frozen_ = std::make_shared<const EpochSnapshot>(chunks_, chunk_aggs_,
                                                       generation_);
  return last_frozen_;
}

}  // namespace authdb
