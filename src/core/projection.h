#ifndef AUTHDB_CORE_PROJECTION_H_
#define AUTHDB_CORE_PROJECTION_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/record.h"
#include "core/vo_size.h"
#include "crypto/bas.h"
#include "crypto/sha.h"

namespace authdb {

/// Authenticated projection (Section 3.4): each attribute value carries its
/// own signature sign(h(rid | i | Ai | ts)); the record signature is their
/// aggregation. A projected answer ships only the requested values plus ONE
/// aggregate signature — dropped attributes impose no VO cost, and binding
/// (rid, i) into each message defeats value-swapping between records or
/// positions.

/// One projected tuple: the retained positions and values.
struct ProjectedTuple {
  uint64_t rid = 0;
  uint64_t ts = 0;
  std::vector<uint32_t> attr_indices;
  std::vector<int64_t> values;
};

struct ProjectionAnswer {
  std::vector<ProjectedTuple> tuples;
  BasSignature agg_sig;

  /// VO = one aggregate signature, independent of M (Section 3.4).
  size_t vo_size(const SizeModel& sm) const { return sm.signature_bytes; }
};

/// Chain evidence for a record whose content is not shipped: enough to
/// rebuild its chain message (key + digest) plus rid/ts for the freshness
/// walk — the projection analogue of AbsenceProof.
struct DigestWitness {
  int64_t key = 0;
  uint64_t rid = 0;
  uint64_t ts = 0;
  Digest160 digest;
};

/// The *served* projection of the unified query path: SELECT attrs FROM T
/// WHERE key IN [lo, hi], proven complete. Composes Section 3.4's
/// per-attribute signatures with Section 3.3's chaining: each result tuple
/// ships its projected values (authenticated by the attr signatures, which
/// bind rid | i | Ai | ts) plus its 20-byte content digest, from which the
/// verifier rebuilds the chain message — so range completeness is proven
/// without shipping the dropped attributes. The executor always retains
/// the index attribute (position 0): its signed value ties each tuple to
/// its spine entry (keys are unique), closing the pairing between the two
/// signature families. One aggregate covers every chain message and every
/// attribute message.
struct ProjectedRangeAnswer {
  std::vector<ProjectedTuple> tuples;  ///< attr_indices always include 0
  std::vector<Digest160> digests;      ///< per-tuple content digest (spine)
  int64_t left_key = 0;   ///< index value left of the range (or -inf)
  int64_t right_key = 0;  ///< index value right of the range (or +inf)
  /// Set when `tuples` is empty: a witness whose chain spans [lo, hi].
  std::optional<DigestWitness> proof;
  /// One aggregate: all chain messages + all attribute messages.
  BasSignature agg_sig;

  /// VO: the digest spine + two boundary values + one aggregate. Dropped
  /// attributes still impose no cost; the spine is what buys completeness.
  size_t vo_size(const SizeModel& sm) const {
    size_t bytes = sm.signature_bytes + 2 * sm.key_bytes +
                   tuples.size() * sm.digest_bytes;
    if (proof) bytes += sm.digest_bytes + sm.key_bytes;
    return bytes;
  }
};

/// Server-side proof construction. `attr_sigs[t][i]` is the DA's signature
/// for attribute i of tuple t (from DataAggregator::SignAttributes).
class ProjectionProver {
 public:
  explicit ProjectionProver(std::shared_ptr<const BasContext> ctx)
      : ctx_(std::move(ctx)) {}

  ProjectionAnswer Project(
      const std::vector<Record>& tuples,
      const std::vector<std::vector<BasSignature>>& attr_sigs,
      const std::vector<uint32_t>& projected_indices) const;

 private:
  std::shared_ptr<const BasContext> ctx_;
};

/// Client-side verification: recomputes each attribute message and checks
/// the single aggregate.
class ProjectionVerifier {
 public:
  ProjectionVerifier(const BasPublicKey* da_pub, BasContext::HashMode mode)
      : da_pub_(da_pub), mode_(mode) {}

  Status Verify(const ProjectionAnswer& ans) const;

 private:
  const BasPublicKey* da_pub_;
  BasContext::HashMode mode_;
};

}  // namespace authdb

#endif  // AUTHDB_CORE_PROJECTION_H_
