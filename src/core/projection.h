#ifndef AUTHDB_CORE_PROJECTION_H_
#define AUTHDB_CORE_PROJECTION_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/record.h"
#include "core/vo_size.h"
#include "crypto/bas.h"

namespace authdb {

/// Authenticated projection (Section 3.4): each attribute value carries its
/// own signature sign(h(rid | i | Ai | ts)); the record signature is their
/// aggregation. A projected answer ships only the requested values plus ONE
/// aggregate signature — dropped attributes impose no VO cost, and binding
/// (rid, i) into each message defeats value-swapping between records or
/// positions.

/// One projected tuple: the retained positions and values.
struct ProjectedTuple {
  uint64_t rid = 0;
  uint64_t ts = 0;
  std::vector<uint32_t> attr_indices;
  std::vector<int64_t> values;
};

struct ProjectionAnswer {
  std::vector<ProjectedTuple> tuples;
  BasSignature agg_sig;

  /// VO = one aggregate signature, independent of M (Section 3.4).
  size_t vo_size(const SizeModel& sm) const { return sm.signature_bytes; }
};

/// Server-side proof construction. `attr_sigs[t][i]` is the DA's signature
/// for attribute i of tuple t (from DataAggregator::SignAttributes).
class ProjectionProver {
 public:
  explicit ProjectionProver(std::shared_ptr<const BasContext> ctx)
      : ctx_(std::move(ctx)) {}

  ProjectionAnswer Project(
      const std::vector<Record>& tuples,
      const std::vector<std::vector<BasSignature>>& attr_sigs,
      const std::vector<uint32_t>& projected_indices) const;

 private:
  std::shared_ptr<const BasContext> ctx_;
};

/// Client-side verification: recomputes each attribute message and checks
/// the single aggregate.
class ProjectionVerifier {
 public:
  ProjectionVerifier(const BasPublicKey* da_pub, BasContext::HashMode mode)
      : da_pub_(da_pub), mode_(mode) {}

  Status Verify(const ProjectionAnswer& ans) const;

 private:
  const BasPublicKey* da_pub_;
  BasContext::HashMode mode_;
};

}  // namespace authdb

#endif  // AUTHDB_CORE_PROJECTION_H_
