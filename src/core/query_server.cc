#include "core/query_server.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "core/chain.h"

namespace authdb {

QueryServer::QueryServer(std::shared_ptr<const BasContext> ctx,
                         const Options& options)
    : ctx_(std::move(ctx)),
      data_disk_(""),
      index_disk_(""),
      data_pool_(&data_disk_, options.buffer_pages),
      index_pool_(&index_disk_, options.buffer_pages),
      table_(&data_pool_, &index_pool_, &ctx_->curve(), options.record_len),
      options_(options) {}

size_t QueryServer::RankOf(int64_t key) const {
  return std::lower_bound(sorted_keys_.begin(), sorted_keys_.end(), key) -
         sorted_keys_.begin();
}

Status QueryServer::ApplyUpdate(const SignedRecordUpdate& msg) {
  using Kind = SignedRecordUpdate::Kind;
  // Mirror the attribute signatures (when the DA ships them) so projection
  // plans always serve the signatures matching the stored version.
  auto keep_attr_sigs = [this](const CertifiedRecord& cr) {
    if (!cr.attr_sigs.empty()) attr_sigs_[cr.record.key()] = cr.attr_sigs;
  };
  switch (msg.kind) {
    case Kind::kInsert: {
      if (!msg.record) return Status::InvalidArgument("insert without record");
      AUTHDB_RETURN_NOT_OK(table_.Insert(msg.record->record, msg.record->sig));
      sorted_keys_.insert(
          sorted_keys_.begin() + RankOf(msg.record->record.key()),
          msg.record->record.key());
      keep_attr_sigs(*msg.record);
      // Rank shifts invalidate the positional cache wholesale; the paper's
      // cache experiments run on modification-only workloads.
      if (sigcache_) sigcache_.reset();
      break;
    }
    case Kind::kModify: {
      if (!msg.record) return Status::InvalidArgument("modify without record");
      int64_t key = msg.record->record.key();
      if (sigcache_) {
        auto old_item = table_.GetByKey(key);
        if (old_item.ok()) {
          sigcache_->OnLeafUpdate(RankOf(key), old_item.value().sig,
                                  msg.record->sig);
        }
      }
      AUTHDB_RETURN_NOT_OK(table_.Update(msg.record->record, msg.record->sig));
      keep_attr_sigs(*msg.record);
      break;
    }
    case Kind::kDelete: {
      AUTHDB_RETURN_NOT_OK(table_.Delete(msg.key));
      auto it = std::lower_bound(sorted_keys_.begin(), sorted_keys_.end(),
                                 msg.key);
      if (it != sorted_keys_.end() && *it == msg.key) sorted_keys_.erase(it);
      attr_sigs_.erase(msg.key);
      if (sigcache_) sigcache_.reset();
      break;
    }
    case Kind::kRecertify:
      break;  // payload carried entirely in `recertified`
  }
  for (const CertifiedRecord& cr : msg.recertified) {
    if (sigcache_) {
      auto old_item = table_.GetByKey(cr.record.key());
      if (old_item.ok()) {
        sigcache_->OnLeafUpdate(RankOf(cr.record.key()), old_item.value().sig,
                                cr.sig);
      }
    }
    AUTHDB_RETURN_NOT_OK(table_.Update(cr.record, cr.sig));
    keep_attr_sigs(cr);
  }
  return Status::OK();
}

void QueryServer::AddSummary(UpdateSummary summary) {
  // Running max: the epoch stamp stays correct under out-of-order delivery.
  if (summary.seq + 1 > latest_epoch_) latest_epoch_ = summary.seq + 1;
  summaries_.push_back(std::move(summary));
  while (summaries_.size() > options_.summaries_retained)
    summaries_.pop_front();
}

BasSignature QueryServer::LeafSignature(size_t rank) const {
  AUTHDB_CHECK(rank < sorted_keys_.size());
  auto item = table_.GetByKey(sorted_keys_[rank]);
  AUTHDB_CHECK(item.ok());
  return item.value().sig;
}

std::optional<AuthTable::Item> QueryServer::PredecessorItem(
    int64_t key) const {
  size_t rank = RankOf(key);  // first position with key' >= key
  if (rank == 0) return std::nullopt;
  auto item = table_.GetByKey(sorted_keys_[rank - 1]);
  AUTHDB_CHECK(item.ok());
  return item.value();
}

std::optional<AuthTable::Item> QueryServer::SuccessorItem(int64_t key) const {
  size_t rank = std::upper_bound(sorted_keys_.begin(), sorted_keys_.end(),
                                 key) -
                sorted_keys_.begin();
  if (rank == sorted_keys_.size()) return std::nullopt;
  auto item = table_.GetByKey(sorted_keys_[rank]);
  AUTHDB_CHECK(item.ok());
  return item.value();
}

Result<SelectionAnswer> QueryServer::Select(int64_t lo, int64_t hi,
                                            SigCache::AggStats* stats) const {
  if (stats != nullptr) *stats = SigCache::AggStats{};  // per-call counters
  if (lo > hi) return Status::InvalidArgument("lo > hi");
  if (lo == kChainMinusInf || hi == kChainPlusInf)
    return Status::InvalidArgument("range touches chain sentinels");
  if (table_.size() == 0) return Status::NotFound("empty relation");

  AuthTable::RangeOut scan = table_.Scan(lo, hi);
  SelectionAnswer ans;
  uint64_t oldest_ts = ~uint64_t{0};

  if (scan.items.empty()) {
    // Empty result: one boundary record proves that its chain spans the
    // whole queried interval.
    const AuthTable::Item* proof =
        scan.left_boundary ? &*scan.left_boundary : &*scan.right_boundary;
    AUTHDB_CHECK(proof != nullptr);
    auto [left, right] = table_.NeighborKeys(proof->record.key());
    ans.proof_record = proof->record;
    ans.left_key = left;
    ans.right_key = right;
    ans.agg_sig = proof->sig;
    oldest_ts = proof->record.ts;
  } else {
    ans.left_key =
        scan.left_boundary ? scan.left_boundary->record.key() : kChainMinusInf;
    ans.right_key = scan.right_boundary ? scan.right_boundary->record.key()
                                        : kChainPlusInf;
    ans.records.reserve(scan.items.size());
    for (const auto& item : scan.items) {
      ans.records.push_back(item.record);
      oldest_ts = std::min(oldest_ts, item.record.ts);
    }
    if (sigcache_ != nullptr && !sorted_keys_.empty()) {
      size_t rank_lo = RankOf(scan.items.front().record.key());
      size_t rank_hi = rank_lo + scan.items.size() - 1;
      ans.agg_sig = sigcache_->RangeAggregate(rank_lo, rank_hi, stats);
    } else {
      std::vector<ECPoint> pts;
      pts.reserve(scan.items.size());
      for (const auto& item : scan.items) pts.push_back(item.sig.point);
      ans.agg_sig = BasSignature{ctx_->curve().Sum(pts)};
      if (stats != nullptr) {
        stats->point_adds += pts.empty() ? 0 : pts.size() - 1;
        stats->leaf_fetches += pts.size();
      }
    }
  }
  // Freshness evidence: every summary published at/after the oldest result
  // certification (Section 3.1: "the certified summaries published after
  // the oldest result record").
  for (const UpdateSummary& s : summaries_) {
    if (s.publish_ts >= oldest_ts) ans.summaries.push_back(s);
  }
  ans.served_epoch = latest_epoch_;
  return ans;
}

void QueryServer::StampFreshness(uint64_t oldest_ts, QueryAnswer* ans) const {
  // Same rule as Select: every summary published at/after the oldest cited
  // record certification is freshness evidence for the answer.
  for (const UpdateSummary& s : summaries_) {
    if (s.publish_ts >= oldest_ts) ans->summaries.push_back(s);
  }
  ans->served_epoch = latest_epoch_;
}

Result<QueryAnswer> QueryServer::ExecuteProject(const Query& query) const {
  if (query.lo > query.hi) return Status::InvalidArgument("lo > hi");
  if (query.lo == kChainMinusInf || query.hi == kChainPlusInf)
    return Status::InvalidArgument("range touches chain sentinels");
  if (table_.size() == 0) return Status::NotFound("empty relation");
  const std::vector<uint32_t> attrs =
      EffectiveProjectionAttrs(query.attr_indices);

  QueryAnswer ans;
  ans.kind = QueryKind::kProject;
  ProjectedRangeAnswer& proj = ans.projection;
  AuthTable::RangeOut scan = table_.Scan(query.lo, query.hi);
  uint64_t oldest_ts = ~uint64_t{0};

  if (scan.items.empty()) {
    // Empty result: one witness whose chain spans the queried interval —
    // the selection emptiness proof, shipped digest-only.
    const AuthTable::Item* witness =
        scan.left_boundary ? &*scan.left_boundary : &*scan.right_boundary;
    AUTHDB_CHECK(witness != nullptr);
    auto [left, right] = table_.NeighborKeys(witness->record.key());
    proj.proof = DigestWitness{witness->record.key(), witness->record.rid,
                               witness->record.ts, witness->record.Digest()};
    proj.left_key = left;
    proj.right_key = right;
    proj.agg_sig = witness->sig;
    oldest_ts = witness->record.ts;
  } else {
    proj.left_key =
        scan.left_boundary ? scan.left_boundary->record.key() : kChainMinusInf;
    proj.right_key = scan.right_boundary ? scan.right_boundary->record.key()
                                         : kChainPlusInf;
    std::vector<BasSignature> parts;
    std::vector<const Record*> spine;
    spine.reserve(scan.items.size());
    for (const AuthTable::Item& item : scan.items) {
      const Record& rec = item.record;
      auto sig_it = attr_sigs_.find(rec.key());
      if (sig_it == attr_sigs_.end())
        return Status::InvalidArgument(
            "projection unavailable: no attribute signatures for key " +
            std::to_string(rec.key()));
      ProjectedTuple tuple;
      tuple.rid = rec.rid;
      tuple.ts = rec.ts;
      for (uint32_t i : attrs) {
        if (i >= rec.attrs.size() || i >= sig_it->second.size())
          return Status::InvalidArgument("projected attribute out of range");
        tuple.attr_indices.push_back(i);
        tuple.values.push_back(rec.attrs[i]);
        parts.push_back(sig_it->second[i]);
      }
      proj.tuples.push_back(std::move(tuple));
      spine.push_back(&rec);
      parts.push_back(item.sig);  // the chain signature (completeness spine)
      oldest_ts = std::min(oldest_ts, rec.ts);
    }
    // Digest spine in one multi-buffer SHA pass over the scanned records.
    proj.digests.resize(spine.size());
    RecordDigestMany(spine.data(), spine.size(), proj.digests.data());
    proj.agg_sig = ctx_->Aggregate(parts);
  }
  StampFreshness(oldest_ts, &ans);
  return ans;
}

Result<QueryAnswer> QueryServer::ExecuteJoin(const Query& query) const {
  if (table_.size() == 0) return Status::NotFound("empty relation");
  if (query.join_values.empty())
    return Status::InvalidArgument("join without probe values");
  for (int64_t a : query.join_values) {
    if (!JoinBValueInDomain(a))
      return Status::InvalidArgument("join probe value outside B domain");
  }
  QueryAnswer ans;
  ans.kind = QueryKind::kJoin;
  JoinProver prover(ctx_, &table_, &join_partitions_);
  AUTHDB_ASSIGN_OR_RETURN(ans.join,
                          prover.Join(query.join_values, query.join_method));
  uint64_t oldest_ts = ~uint64_t{0};
  for (const JoinMatch& m : ans.join.matches) {
    for (const Record& r : m.s_records) oldest_ts = std::min(oldest_ts, r.ts);
  }
  for (const AbsenceProof& p : ans.join.absence_proofs)
    oldest_ts = std::min(oldest_ts, p.rec_ts);
  StampFreshness(oldest_ts, &ans);
  return ans;
}

Result<QueryAnswer> QueryServer::Execute(const Query& query,
                                         SigCache::AggStats* stats) const {
  switch (query.kind) {
    case QueryKind::kSelect: {
      QueryAnswer ans;
      ans.kind = QueryKind::kSelect;
      AUTHDB_ASSIGN_OR_RETURN(ans.selection,
                              Select(query.lo, query.hi, stats));
      ans.served_epoch = ans.selection.served_epoch;
      return ans;
    }
    case QueryKind::kProject:
      if (stats != nullptr) *stats = SigCache::AggStats{};
      return ExecuteProject(query);
    case QueryKind::kJoin:
      if (stats != nullptr) *stats = SigCache::AggStats{};
      return ExecuteJoin(query);
  }
  return Status::InvalidArgument("unknown query kind");
}

void QueryServer::EnableSigCache(
    const std::vector<SigCachePlanner::Choice>& plan,
    SigCache::RefreshMode mode) {
  // Rebuild the rank mirror from the index.
  sorted_keys_.clear();
  for (const auto& item : table_.ScanAll())
    sorted_keys_.push_back(item.record.key());
  sigcache_ = std::make_unique<SigCache>(
      ctx_, sorted_keys_.size(), mode,
      [this](size_t pos) { return LeafSignature(pos); });
  sigcache_->PinPlan(plan);
}

}  // namespace authdb
