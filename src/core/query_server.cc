#include "core/query_server.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "core/chain.h"

namespace authdb {

QueryServer::QueryServer(std::shared_ptr<const BasContext> ctx,
                         const Options& options)
    : ctx_(std::move(ctx)),
      data_disk_(""),
      index_disk_(""),
      data_pool_(&data_disk_, options.buffer_pages),
      index_pool_(&index_disk_, options.buffer_pages),
      table_(&data_pool_, &index_pool_, &ctx_->curve(), options.record_len),
      options_(options) {}

size_t QueryServer::RankOf(int64_t key) const {
  return std::lower_bound(sorted_keys_.begin(), sorted_keys_.end(), key) -
         sorted_keys_.begin();
}

Status QueryServer::ApplyUpdate(const SignedRecordUpdate& msg) {
  using Kind = SignedRecordUpdate::Kind;
  switch (msg.kind) {
    case Kind::kInsert: {
      if (!msg.record) return Status::InvalidArgument("insert without record");
      AUTHDB_RETURN_NOT_OK(table_.Insert(msg.record->record, msg.record->sig));
      sorted_keys_.insert(
          sorted_keys_.begin() + RankOf(msg.record->record.key()),
          msg.record->record.key());
      // Rank shifts invalidate the positional cache wholesale; the paper's
      // cache experiments run on modification-only workloads.
      if (sigcache_) sigcache_.reset();
      break;
    }
    case Kind::kModify: {
      if (!msg.record) return Status::InvalidArgument("modify without record");
      int64_t key = msg.record->record.key();
      if (sigcache_) {
        auto old_item = table_.GetByKey(key);
        if (old_item.ok()) {
          sigcache_->OnLeafUpdate(RankOf(key), old_item.value().sig,
                                  msg.record->sig);
        }
      }
      AUTHDB_RETURN_NOT_OK(table_.Update(msg.record->record, msg.record->sig));
      break;
    }
    case Kind::kDelete: {
      AUTHDB_RETURN_NOT_OK(table_.Delete(msg.key));
      auto it = std::lower_bound(sorted_keys_.begin(), sorted_keys_.end(),
                                 msg.key);
      if (it != sorted_keys_.end() && *it == msg.key) sorted_keys_.erase(it);
      if (sigcache_) sigcache_.reset();
      break;
    }
    case Kind::kRecertify:
      break;  // payload carried entirely in `recertified`
  }
  for (const CertifiedRecord& cr : msg.recertified) {
    if (sigcache_) {
      auto old_item = table_.GetByKey(cr.record.key());
      if (old_item.ok()) {
        sigcache_->OnLeafUpdate(RankOf(cr.record.key()), old_item.value().sig,
                                cr.sig);
      }
    }
    AUTHDB_RETURN_NOT_OK(table_.Update(cr.record, cr.sig));
  }
  return Status::OK();
}

void QueryServer::AddSummary(UpdateSummary summary) {
  // Running max: the epoch stamp stays correct under out-of-order delivery.
  if (summary.seq + 1 > latest_epoch_) latest_epoch_ = summary.seq + 1;
  summaries_.push_back(std::move(summary));
  while (summaries_.size() > options_.summaries_retained)
    summaries_.pop_front();
}

BasSignature QueryServer::LeafSignature(size_t rank) const {
  AUTHDB_CHECK(rank < sorted_keys_.size());
  auto item = table_.GetByKey(sorted_keys_[rank]);
  AUTHDB_CHECK(item.ok());
  return item.value().sig;
}

std::optional<AuthTable::Item> QueryServer::PredecessorItem(
    int64_t key) const {
  size_t rank = RankOf(key);  // first position with key' >= key
  if (rank == 0) return std::nullopt;
  auto item = table_.GetByKey(sorted_keys_[rank - 1]);
  AUTHDB_CHECK(item.ok());
  return item.value();
}

std::optional<AuthTable::Item> QueryServer::SuccessorItem(int64_t key) const {
  size_t rank = std::upper_bound(sorted_keys_.begin(), sorted_keys_.end(),
                                 key) -
                sorted_keys_.begin();
  if (rank == sorted_keys_.size()) return std::nullopt;
  auto item = table_.GetByKey(sorted_keys_[rank]);
  AUTHDB_CHECK(item.ok());
  return item.value();
}

Result<SelectionAnswer> QueryServer::Select(int64_t lo, int64_t hi,
                                            SigCache::AggStats* stats) const {
  if (stats != nullptr) *stats = SigCache::AggStats{};  // per-call counters
  if (lo > hi) return Status::InvalidArgument("lo > hi");
  if (lo == kChainMinusInf || hi == kChainPlusInf)
    return Status::InvalidArgument("range touches chain sentinels");
  if (table_.size() == 0) return Status::NotFound("empty relation");

  AuthTable::RangeOut scan = table_.Scan(lo, hi);
  SelectionAnswer ans;
  uint64_t oldest_ts = ~uint64_t{0};

  if (scan.items.empty()) {
    // Empty result: one boundary record proves that its chain spans the
    // whole queried interval.
    const AuthTable::Item* proof =
        scan.left_boundary ? &*scan.left_boundary : &*scan.right_boundary;
    AUTHDB_CHECK(proof != nullptr);
    auto [left, right] = table_.NeighborKeys(proof->record.key());
    ans.proof_record = proof->record;
    ans.left_key = left;
    ans.right_key = right;
    ans.agg_sig = proof->sig;
    oldest_ts = proof->record.ts;
  } else {
    ans.left_key =
        scan.left_boundary ? scan.left_boundary->record.key() : kChainMinusInf;
    ans.right_key = scan.right_boundary ? scan.right_boundary->record.key()
                                        : kChainPlusInf;
    ans.records.reserve(scan.items.size());
    for (const auto& item : scan.items) {
      ans.records.push_back(item.record);
      oldest_ts = std::min(oldest_ts, item.record.ts);
    }
    if (sigcache_ != nullptr && !sorted_keys_.empty()) {
      size_t rank_lo = RankOf(scan.items.front().record.key());
      size_t rank_hi = rank_lo + scan.items.size() - 1;
      ans.agg_sig = sigcache_->RangeAggregate(rank_lo, rank_hi, stats);
    } else {
      std::vector<ECPoint> pts;
      pts.reserve(scan.items.size());
      for (const auto& item : scan.items) pts.push_back(item.sig.point);
      ans.agg_sig = BasSignature{ctx_->curve().Sum(pts)};
      if (stats != nullptr) {
        stats->point_adds += pts.empty() ? 0 : pts.size() - 1;
        stats->leaf_fetches += pts.size();
      }
    }
  }
  // Freshness evidence: every summary published at/after the oldest result
  // certification (Section 3.1: "the certified summaries published after
  // the oldest result record").
  for (const UpdateSummary& s : summaries_) {
    if (s.publish_ts >= oldest_ts) ans.summaries.push_back(s);
  }
  ans.served_epoch = latest_epoch_;
  return ans;
}

void QueryServer::EnableSigCache(
    const std::vector<SigCachePlanner::Choice>& plan,
    SigCache::RefreshMode mode) {
  // Rebuild the rank mirror from the index.
  sorted_keys_.clear();
  for (const auto& item : table_.ScanAll())
    sorted_keys_.push_back(item.record.key());
  sigcache_ = std::make_unique<SigCache>(
      ctx_, sorted_keys_.size(), mode,
      [this](size_t pos) { return LeafSignature(pos); });
  sigcache_->PinPlan(plan);
}

}  // namespace authdb
