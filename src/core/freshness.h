#ifndef AUTHDB_CORE_FRESHNESS_H_
#define AUTHDB_CORE_FRESHNESS_H_

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "crypto/bas.h"
#include "crypto/bitmap.h"

namespace authdb {

/// A certified bitmap update summary (Section 3.1): one bit per record
/// (indexed by rid), set iff the record was inserted / modified / deleted /
/// re-certified during the rho-period that the summary closes. Compressed
/// with a sparse-bitmap codec and signed by the data aggregator.
struct UpdateSummary {
  uint64_t seq = 0;            ///< period index (consecutive)
  uint64_t publish_ts = 0;     ///< certification time (micros)
  uint64_t nbits = 0;          ///< rid space covered
  std::vector<uint8_t> compressed_bitmap;
  BasSignature sig;

  ByteBuffer SignedMessage() const {
    ByteBuffer buf;
    buf.PutString("summary");
    buf.PutU64(seq);
    buf.PutU64(publish_ts);
    buf.PutU64(nbits);
    buf.PutBytes(Slice(compressed_bitmap));
    return buf;
  }
  /// seq + publish_ts + nbits, the compressed bitmap, and the signature at
  /// its actual serialized size (not the paper's 160-bit constant — the
  /// implementation ships uncompressed points; see SizeModel's note).
  size_t wire_size() const {
    return compressed_bitmap.size() + 8 * 3 + sig.wire_bytes();
  }
};

/// DA-side accumulator for the current rho-period.
class SummaryBuilder {
 public:
  explicit SummaryBuilder(const BitmapCodec* codec) : codec_(codec) {}

  /// Record `rid` was updated (or re-certified) in this period.
  void MarkUpdated(uint64_t rid);
  /// rids marked more than once this period — they must be re-certified in
  /// the next period so the summary granularity suffices (Section 3.1,
  /// "Multiple Updates to a Record within the Same rho-Period").
  std::vector<uint64_t> MultiUpdatedRids() const;

  /// Close the period: build, sign, reset. `nbits` is the rid upper bound.
  UpdateSummary BuildAndSign(uint64_t seq, uint64_t publish_ts,
                             uint64_t nbits, const BasPrivateKey& key,
                             BasContext::HashMode mode);

  size_t pending_updates() const { return marks_.size(); }

 private:
  const BitmapCodec* codec_;
  std::map<uint64_t, uint32_t> marks_;  // rid -> update count this period
};

/// Server-side epoch bookkeeping for the streaming freshness pipeline. An
/// *epoch* is `latest published summary seq + 1` (epoch 0 = nothing
/// published yet). On the epoch-pinned serving path an answer stamped
/// epoch e is a snapshot of EXACTLY the updates of periods 0..e-1 with
/// summaries 0..e-1 available to attach — the update stream's summary
/// barrier publishes snapshots, summary, and epoch in one atomic
/// descriptor swap (server/update_stream.h), so the stamp is precise
/// rather than a lower bound. Shared between the ingest path (Publish)
/// and every reader (current_epoch), so thread-safe.
class FreshnessTracker {
 public:
  /// Summary `seq` finished fanning out. Out-of-order publications are
  /// tolerated (the epoch is the running maximum); duplicates are counted
  /// but do not move the epoch.
  void Publish(uint64_t seq, uint64_t publish_ts) EXCLUDES(mu_);

  /// Latest published summary seq + 1; 0 before the first publication.
  uint64_t current_epoch() const EXCLUDES(mu_);
  uint64_t latest_publish_ts() const EXCLUDES(mu_);
  uint64_t publications() const EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  uint64_t epoch_ GUARDED_BY(mu_) = 0;
  uint64_t latest_publish_ts_ GUARDED_BY(mu_) = 0;
  uint64_t publications_ GUARDED_BY(mu_) = 0;
};

/// Client-side freshness checker. Collects verified summaries and answers:
/// "is record (rid, ts) fresh as of now, and with what staleness bound?"
class FreshnessChecker {
 public:
  explicit FreshnessChecker(const BasPublicKey* da_pub,
                            const BitmapCodec* codec,
                            BasContext::HashMode mode)
      : da_pub_(da_pub), codec_(codec), mode_(mode) {}

  /// Verify the signature; decompress and retain. Idempotent: summaries
  /// already held (same seq) are ignored, so servers may re-attach
  /// overlapping summary runs to successive answers.
  Status AddSummary(const UpdateSummary& summary);

  /// Freshness rule of Section 3.1:
  ///  * r.ts newer than the latest summary  -> fresh (bound < rho).
  ///  * else r must be unmarked in every summary published since r.ts;
  ///    a mark means the server returned a superseded version -> reject.
  /// The held summaries must cover [record_ts, latest] without sequence
  /// gaps, otherwise the absence of marks proves nothing.
  /// `max_staleness_micros` (out, optional) receives the bound.
  Status CheckRecord(uint64_t rid, uint64_t record_ts, uint64_t now,
                     uint64_t* max_staleness_micros = nullptr) const;

  size_t summary_count() const { return summaries_.size(); }
  uint64_t latest_publish_ts() const {
    return summaries_.empty() ? 0 : summaries_.rbegin()->second.publish_ts;
  }

 private:
  const BasPublicKey* da_pub_;
  const BitmapCodec* codec_;
  BasContext::HashMode mode_;
  struct Held {
    uint64_t publish_ts;
    Bitmap bitmap;
  };
  std::map<uint64_t, Held> summaries_;  // seq -> summary
};

}  // namespace authdb

#endif  // AUTHDB_CORE_FRESHNESS_H_
