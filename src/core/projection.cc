#include "core/projection.h"

#include <cstdint>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "core/data_aggregator.h"

namespace authdb {

ProjectionAnswer ProjectionProver::Project(
    const std::vector<Record>& tuples,
    const std::vector<std::vector<BasSignature>>& attr_sigs,
    const std::vector<uint32_t>& projected_indices) const {
  AUTHDB_CHECK(tuples.size() == attr_sigs.size());
  ProjectionAnswer ans;
  std::vector<BasSignature> parts;
  for (size_t t = 0; t < tuples.size(); ++t) {
    const Record& rec = tuples[t];
    ProjectedTuple out;
    out.rid = rec.rid;
    out.ts = rec.ts;
    for (uint32_t i : projected_indices) {
      AUTHDB_CHECK(i < rec.attrs.size());
      out.attr_indices.push_back(i);
      out.values.push_back(rec.attrs[i]);
      parts.push_back(attr_sigs[t][i]);
    }
    ans.tuples.push_back(std::move(out));
  }
  ans.agg_sig = ctx_->Aggregate(parts);
  return ans;
}

Status ProjectionVerifier::Verify(const ProjectionAnswer& ans) const {
  std::vector<ByteBuffer> messages;
  for (const ProjectedTuple& t : ans.tuples) {
    if (t.attr_indices.size() != t.values.size())
      return Status::VerificationFailed("malformed projected tuple");
    for (size_t i = 0; i < t.attr_indices.size(); ++i) {
      messages.push_back(DataAggregator::AttributeMessage(
          t.rid, t.attr_indices[i], t.values[i], t.ts));
    }
  }
  std::vector<Slice> views;
  views.reserve(messages.size());
  for (const ByteBuffer& m : messages) views.push_back(m.AsSlice());
  if (!da_pub_->VerifyAggregate(views, ans.agg_sig, mode_))
    return Status::VerificationFailed("projection aggregate mismatch");
  return Status::OK();
}

}  // namespace authdb
