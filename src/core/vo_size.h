#ifndef AUTHDB_CORE_VO_SIZE_H_
#define AUTHDB_CORE_VO_SIZE_H_

#include <cstddef>

namespace authdb {

/// Size constants for verification-object accounting, matching the paper's
/// experiment configuration (Table 2 and Section 3.5): 160-bit signatures
/// and digests, 4-byte join attribute values.
///
/// Note: the implementation's wire format serializes an EC point as
/// 2 x 32 bytes (uncompressed). VO *sizes reported by experiments* use
/// these paper constants so Figure 11 / Table 4 are directly comparable;
/// point compression to 160 bits is standard and orthogonal.
struct SizeModel {
  size_t signature_bytes = 20;   ///< |sign| = 160 bits (BAS / ECC)
  size_t digest_bytes = 20;      ///< |digest| = 160 bits (SHA-1)
  size_t rsa_signature_bytes = 128;  ///< 1024-bit RSA (condensed RSA, EMB root)
  size_t join_attr_bytes = 4;    ///< |S.B| (Section 3.5)
  size_t key_bytes = 4;          ///< index attribute value in VOs
  size_t rid_bytes = 4;
  size_t timestamp_bytes = 8;
};

}  // namespace authdb

#endif  // AUTHDB_CORE_VO_SIZE_H_
