#ifndef AUTHDB_CORE_VO_SIZE_H_
#define AUTHDB_CORE_VO_SIZE_H_

#include <cstddef>
#include <cstdint>

namespace authdb {

/// Size constants for verification-object accounting, matching the paper's
/// experiment configuration (Table 2 and Section 3.5): 160-bit signatures
/// and digests, 4-byte join attribute values.
///
/// Note: the implementation's wire format serializes an EC point as
/// 2 x 32 bytes (uncompressed). VO *sizes reported by experiments* use
/// these paper constants so Figure 11 / Table 4 are directly comparable;
/// point compression to 160 bits is standard and orthogonal.
struct SizeModel {
  size_t signature_bytes = 20;   ///< |sign| = 160 bits (BAS / ECC)
  size_t digest_bytes = 20;      ///< |digest| = 160 bits (SHA-1)
  size_t rsa_signature_bytes = 128;  ///< 1024-bit RSA (condensed RSA, EMB root)
  size_t join_attr_bytes = 4;    ///< |S.B| (Section 3.5)
  size_t key_bytes = 4;          ///< index attribute value in VOs
  size_t rid_bytes = 4;
  size_t timestamp_bytes = 8;
};

/// Per-query-kind VO accounting accumulated over a served workload, so the
/// mixed-workload benches report proof overhead per kind instead of
/// selection-only. The join total is additionally split into its Bloom
/// share (shipped filter bits + partition bounds) and boundary-proof share
/// (witness digests + boundary values) — the Figure 11 trade-off, observed
/// live. Mergeable across client threads like LatencyHistogram.
struct VoAccounting {
  uint64_t select_answers = 0, project_answers = 0, join_answers = 0;
  uint64_t select_bytes = 0, project_bytes = 0, join_bytes = 0;
  uint64_t join_bloom_bytes = 0, join_boundary_bytes = 0;

  void Merge(const VoAccounting& o) {
    select_answers += o.select_answers;
    project_answers += o.project_answers;
    join_answers += o.join_answers;
    select_bytes += o.select_bytes;
    project_bytes += o.project_bytes;
    join_bytes += o.join_bytes;
    join_bloom_bytes += o.join_bloom_bytes;
    join_boundary_bytes += o.join_boundary_bytes;
  }

  static double Mean(uint64_t bytes, uint64_t n) {
    return n == 0 ? 0.0 : static_cast<double>(bytes) / static_cast<double>(n);
  }
  double select_mean() const { return Mean(select_bytes, select_answers); }
  double project_mean() const { return Mean(project_bytes, project_answers); }
  double join_mean() const { return Mean(join_bytes, join_answers); }
};

}  // namespace authdb

#endif  // AUTHDB_CORE_VO_SIZE_H_
