#include "core/auth_table.h"

#include <cstdint>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "core/chain.h"

namespace authdb {

namespace {
/// Index payload: uncompressed point (2 field elements) followed by the rid.
uint32_t SigBytes(const CurveGroup* curve) {
  return 2 * curve->field().element_bytes();
}
}  // namespace

AuthTable::AuthTable(BufferPool* data_pool, BufferPool* index_pool,
                     const CurveGroup* curve, uint32_t record_len)
    : records_(data_pool, record_len),
      index_(index_pool, SigBytes(curve) + 8),
      curve_(curve) {}

std::vector<uint8_t> AuthTable::EncodePayload(const BasSignature& sig,
                                              RecordId rid) const {
  std::vector<uint8_t> out = curve_->Serialize(sig.point);
  const size_t sig_bytes = out.size();
  out.resize(sig_bytes + 8);
  for (int i = 0; i < 8; ++i) out[sig_bytes + i] = rid >> (8 * i);
  return out;
}

std::pair<BasSignature, RecordId> AuthTable::DecodePayload(
    const std::vector<uint8_t>& payload) const {
  const size_t nsig = SigBytes(curve_);
  std::vector<uint8_t> sig_bytes(payload.begin(), payload.begin() + nsig);
  RecordId rid = 0;
  for (int i = 0; i < 8; ++i) rid |= uint64_t{payload[nsig + i]} << (8 * i);
  return {BasSignature{curve_->Deserialize(sig_bytes)}, rid};
}

Status AuthTable::Insert(const Record& rec, const BasSignature& sig) {
  AUTHDB_ASSIGN_OR_RETURN(
      RecordId rid, records_.Insert(Slice(rec.Serialize(records_.record_len()))));
  Status s = index_.Insert(rec.key(), Slice(EncodePayload(sig, rid)));
  if (!s.ok()) {
    // Roll the heap insert back so the table stays consistent.
    (void)records_.Delete(rid);
  }
  return s;
}

Status AuthTable::Update(const Record& rec, const BasSignature& sig) {
  auto existing = index_.Get(rec.key());
  if (!existing.ok()) return existing.status();
  auto [old_sig, rid] = DecodePayload(existing.value());
  AUTHDB_RETURN_NOT_OK(
      records_.Update(rid, Slice(rec.Serialize(records_.record_len()))));
  return index_.Update(rec.key(), Slice(EncodePayload(sig, rid)));
}

Status AuthTable::UpdateSignature(int64_t key, const BasSignature& sig) {
  auto existing = index_.Get(key);
  if (!existing.ok()) return existing.status();
  auto [old_sig, rid] = DecodePayload(existing.value());
  return index_.Update(key, Slice(EncodePayload(sig, rid)));
}

Status AuthTable::Delete(int64_t key) {
  auto existing = index_.Get(key);
  if (!existing.ok()) return existing.status();
  auto [sig, rid] = DecodePayload(existing.value());
  AUTHDB_RETURN_NOT_OK(records_.Delete(rid));
  return index_.Delete(key);
}

Result<AuthTable::Item> AuthTable::LoadItem(
    int64_t key, const std::vector<uint8_t>& payload) const {
  (void)key;
  auto [sig, rid] = DecodePayload(payload);
  AUTHDB_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, records_.Read(rid));
  Item item;
  item.record = Record::Deserialize(Slice(bytes));
  item.sig = sig;
  return item;
}

Result<AuthTable::Item> AuthTable::GetByKey(int64_t key) const {
  auto payload = index_.Get(key);
  if (!payload.ok()) return payload.status();
  return LoadItem(key, payload.value());
}

bool AuthTable::ContainsKey(int64_t key) const {
  return index_.Contains(key);
}

AuthTable::RangeOut AuthTable::Scan(int64_t lo, int64_t hi) const {
  BPlusTree::ScanResult raw = index_.Scan(lo, hi);
  RangeOut out;
  auto load = [&](const BPlusTree::Entry& e) {
    auto item = LoadItem(e.key, e.payload);
    AUTHDB_CHECK(item.ok());
    return item.MoveValue();
  };
  if (raw.left_boundary) out.left_boundary = load(*raw.left_boundary);
  if (raw.right_boundary) out.right_boundary = load(*raw.right_boundary);
  out.items.reserve(raw.entries.size());
  for (const auto& e : raw.entries) out.items.push_back(load(e));
  return out;
}

std::pair<int64_t, int64_t> AuthTable::NeighborKeys(int64_t key) const {
  BPlusTree::ScanResult raw = index_.Scan(key, key);
  int64_t left = raw.left_boundary ? raw.left_boundary->key : kChainMinusInf;
  int64_t right =
      raw.right_boundary ? raw.right_boundary->key : kChainPlusInf;
  return {left, right};
}

std::vector<AuthTable::Item> AuthTable::ScanAll() const {
  std::vector<Item> out;
  for (const auto& e : index_.ScanAll()) {
    auto item = LoadItem(e.key, e.payload);
    AUTHDB_CHECK(item.ok());
    out.push_back(item.MoveValue());
  }
  return out;
}

}  // namespace authdb
