#include "crypto/bignum.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace authdb {

BigInt::BigInt(uint64_t v) {
  if (v != 0) {
    limbs_.push_back(static_cast<uint32_t>(v));
    if (v >> 32) limbs_.push_back(static_cast<uint32_t>(v >> 32));
  }
}

void BigInt::Trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigInt BigInt::FromHex(const std::string& hex) {
  BigInt out;
  int nibbles = 0;
  for (auto it = hex.rbegin(); it != hex.rend(); ++it) {
    char c = *it;
    uint32_t v;
    if (c >= '0' && c <= '9') v = c - '0';
    else if (c >= 'a' && c <= 'f') v = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') v = c - 'A' + 10;
    else continue;
    int limb = nibbles / 8, off = (nibbles % 8) * 4;
    if (limb >= static_cast<int>(out.limbs_.size())) out.limbs_.push_back(0);
    out.limbs_[limb] |= v << off;
    ++nibbles;
  }
  out.Trim();
  return out;
}

BigInt BigInt::FromBytes(Slice bytes) {
  BigInt out;
  size_t n = bytes.size();
  out.limbs_.assign((n + 3) / 4, 0);
  for (size_t i = 0; i < n; ++i) {
    // big-endian input: bytes[0] is most significant
    size_t bit = (n - 1 - i) * 8;
    out.limbs_[bit / 32] |= static_cast<uint32_t>(bytes[i]) << (bit % 32);
  }
  out.Trim();
  return out;
}

BigInt BigInt::Random(int bits, Rng* rng) {
  AUTHDB_CHECK(bits > 0);
  BigInt out;
  int limbs = (bits + 31) / 32;
  out.limbs_.resize(limbs);
  for (int i = 0; i < limbs; ++i)
    out.limbs_[i] = static_cast<uint32_t>(rng->Next());
  int top_bits = bits - (limbs - 1) * 32;  // 1..32
  uint32_t mask = top_bits == 32 ? 0xffffffffu : ((1u << top_bits) - 1);
  out.limbs_[limbs - 1] &= mask;
  out.limbs_[limbs - 1] |= 1u << (top_bits - 1);  // force exact bit length
  out.Trim();
  return out;
}

BigInt BigInt::RandomBelow(const BigInt& n, Rng* rng) {
  AUTHDB_CHECK(!n.IsZero());
  int bits = n.BitLength();
  while (true) {
    BigInt c = Random(bits, rng);
    c = Mod(c, n);
    if (!c.IsZero()) return c;
  }
}

int BigInt::BitLength() const {
  if (limbs_.empty()) return 0;
  uint32_t top = limbs_.back();
  int b = 0;
  while (top) {
    ++b;
    top >>= 1;
  }
  return static_cast<int>(limbs_.size() - 1) * 32 + b;
}

bool BigInt::Bit(int i) const {
  int limb = i / 32;
  if (limb >= static_cast<int>(limbs_.size())) return false;
  return (limbs_[limb] >> (i % 32)) & 1;
}

uint64_t BigInt::ToU64() const {
  uint64_t v = 0;
  if (!limbs_.empty()) v = limbs_[0];
  if (limbs_.size() > 1) v |= static_cast<uint64_t>(limbs_[1]) << 32;
  return v;
}

int BigInt::Compare(const BigInt& a, const BigInt& b) {
  if (a.limbs_.size() != b.limbs_.size())
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  for (size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

BigInt BigInt::Add(const BigInt& a, const BigInt& b) {
  BigInt out;
  size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  out.limbs_.resize(n + 1, 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t s = carry;
    if (i < a.limbs_.size()) s += a.limbs_[i];
    if (i < b.limbs_.size()) s += b.limbs_[i];
    out.limbs_[i] = static_cast<uint32_t>(s);
    carry = s >> 32;
  }
  out.limbs_[n] = static_cast<uint32_t>(carry);
  out.Trim();
  return out;
}

BigInt BigInt::Sub(const BigInt& a, const BigInt& b) {
  AUTHDB_DCHECK(Compare(a, b) >= 0);
  BigInt out;
  out.limbs_.resize(a.limbs_.size(), 0);
  int64_t borrow = 0;
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    int64_t d = static_cast<int64_t>(a.limbs_[i]) - borrow -
                (i < b.limbs_.size() ? b.limbs_[i] : 0);
    if (d < 0) {
      d += (1LL << 32);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<uint32_t>(d);
  }
  out.Trim();
  return out;
}

BigInt BigInt::Mul(const BigInt& a, const BigInt& b) {
  if (a.IsZero() || b.IsZero()) return BigInt();
  BigInt out;
  out.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    uint64_t carry = 0;
    uint64_t ai = a.limbs_[i];
    for (size_t j = 0; j < b.limbs_.size(); ++j) {
      uint64_t t = ai * b.limbs_[j] + out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<uint32_t>(t);
      carry = t >> 32;
    }
    out.limbs_[i + b.limbs_.size()] += static_cast<uint32_t>(carry);
  }
  out.Trim();
  return out;
}

BigInt BigInt::ShiftLeft(const BigInt& a, int bits) {
  if (a.IsZero() || bits == 0) return bits == 0 ? a : BigInt();
  int limb_shift = bits / 32, bit_shift = bits % 32;
  BigInt out;
  out.limbs_.assign(a.limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    uint64_t v = static_cast<uint64_t>(a.limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<uint32_t>(v);
    out.limbs_[i + limb_shift + 1] |= static_cast<uint32_t>(v >> 32);
  }
  out.Trim();
  return out;
}

BigInt BigInt::ShiftRight(const BigInt& a, int bits) {
  int limb_shift = bits / 32, bit_shift = bits % 32;
  if (limb_shift >= static_cast<int>(a.limbs_.size())) return BigInt();
  BigInt out;
  out.limbs_.assign(a.limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < out.limbs_.size(); ++i) {
    uint64_t v = a.limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift && i + limb_shift + 1 < a.limbs_.size())
      v |= static_cast<uint64_t>(a.limbs_[i + limb_shift + 1])
           << (32 - bit_shift);
    out.limbs_[i] = static_cast<uint32_t>(v);
  }
  out.Trim();
  return out;
}

void BigInt::DivMod(const BigInt& a, const BigInt& d, BigInt* q, BigInt* r) {
  AUTHDB_CHECK(!d.IsZero());
  if (Compare(a, d) < 0) {
    if (q) *q = BigInt();
    if (r) *r = a;
    return;
  }
  int shift = a.BitLength() - d.BitLength();
  BigInt rem = a;
  BigInt quot;
  quot.limbs_.assign((shift + 32) / 32, 0);
  BigInt ds = ShiftLeft(d, shift);
  for (int i = shift; i >= 0; --i) {
    if (Compare(rem, ds) >= 0) {
      rem = Sub(rem, ds);
      quot.limbs_[i / 32] |= 1u << (i % 32);
    }
    ds = ShiftRight(ds, 1);
  }
  quot.Trim();
  if (q) *q = quot;
  if (r) *r = rem;
}

BigInt BigInt::Mod(const BigInt& a, const BigInt& m) {
  BigInt r;
  DivMod(a, m, nullptr, &r);
  return r;
}

BigInt BigInt::Div(const BigInt& a, const BigInt& d) {
  BigInt q;
  DivMod(a, d, &q, nullptr);
  return q;
}

BigInt BigInt::AddMod(const BigInt& a, const BigInt& b, const BigInt& m) {
  BigInt s = Add(a, b);
  if (Compare(s, m) >= 0) s = Sub(s, m);
  // Inputs may not be reduced; fall back to full reduction if still >= m.
  if (Compare(s, m) >= 0) s = Mod(s, m);
  return s;
}

BigInt BigInt::SubMod(const BigInt& a, const BigInt& b, const BigInt& m) {
  if (Compare(a, b) >= 0) return Sub(a, b);
  return Sub(Add(a, m), b);
}

BigInt BigInt::MulMod(const BigInt& a, const BigInt& b, const BigInt& m) {
  return Mod(Mul(a, b), m);
}

namespace {
/// Signed big integer used only inside the extended Euclid below.
struct SignedBig {
  BigInt mag;
  bool neg = false;
};

SignedBig SignedSub(const SignedBig& a, const SignedBig& b) {
  if (a.neg == b.neg) {
    if (BigInt::Compare(a.mag, b.mag) >= 0)
      return {BigInt::Sub(a.mag, b.mag), a.neg};
    return {BigInt::Sub(b.mag, a.mag), !a.neg};
  }
  return {BigInt::Add(a.mag, b.mag), a.neg};
}

SignedBig SignedMul(const SignedBig& a, const BigInt& k) {
  return {BigInt::Mul(a.mag, k), a.neg};
}
}  // namespace

BigInt BigInt::ModInverse(const BigInt& a, const BigInt& m) {
  // Extended Euclid with explicit sign tracking; works for any modulus
  // (RSA needs inversion modulo the even phi(n)).
  if (a.IsZero() || m.IsZero()) return BigInt();
  BigInt old_r = Mod(a, m), r = m;
  if (old_r.IsZero()) return BigInt();
  SignedBig old_s{BigInt(1), false}, s{BigInt(0), false};
  while (!r.IsZero()) {
    BigInt q, rem;
    DivMod(old_r, r, &q, &rem);
    old_r = r;
    r = rem;
    SignedBig next = SignedSub(old_s, SignedMul(s, q));
    old_s = s;
    s = next;
  }
  if (Compare(old_r, BigInt(1)) != 0) return BigInt();  // not invertible
  BigInt result = Mod(old_s.mag, m);
  if (old_s.neg && !result.IsZero()) result = Sub(m, result);
  return result;
}

namespace {
constexpr uint32_t kSmallPrimes[] = {
    3,  5,  7,  11, 13, 17, 19, 23, 29, 31, 37,  41,  43,  47,  53,  59,
    61, 67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137};
}  // namespace

bool BigInt::IsProbablePrime(const BigInt& n, Rng* rng, int rounds) {
  if (n.BitLength() <= 6) {
    uint64_t v = n.ToU64();
    if (v < 2) return false;
    for (uint64_t d = 2; d * d <= v; ++d)
      if (v % d == 0) return false;
    return true;
  }
  if (!n.IsOdd()) return false;
  for (uint32_t p : kSmallPrimes) {
    BigInt r = Mod(n, BigInt(p));
    if (r.IsZero()) return Compare(n, BigInt(p)) == 0;
  }
  // n - 1 = d * 2^s
  BigInt n1 = Sub(n, BigInt(1));
  BigInt d = n1;
  int s = 0;
  while (!d.IsOdd()) {
    d = ShiftRight(d, 1);
    ++s;
  }
  MontgomeryContext mont(n);
  for (int round = 0; round < rounds; ++round) {
    BigInt a = RandomBelow(n1, rng);
    if (Compare(a, BigInt(1)) <= 0) continue;
    BigInt x = mont.Exp(a, d);
    if (Compare(x, BigInt(1)) == 0 || Compare(x, n1) == 0) continue;
    bool composite = true;
    for (int i = 1; i < s; ++i) {
      x = Mod(Mul(x, x), n);
      if (Compare(x, n1) == 0) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

BigInt BigInt::GeneratePrime(int bits, Rng* rng) {
  while (true) {
    BigInt c = Random(bits, rng);
    if (!c.IsOdd()) c = Add(c, BigInt(1));
    if (IsProbablePrime(c, rng)) return c;
  }
}

std::string BigInt::ToHex() const {
  if (limbs_.empty()) return "0";
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  for (size_t i = limbs_.size(); i-- > 0;) {
    for (int nib = 7; nib >= 0; --nib) {
      out.push_back(kDigits[(limbs_[i] >> (nib * 4)) & 0xf]);
    }
  }
  size_t first = out.find_first_not_of('0');
  return out.substr(first);
}

std::vector<uint8_t> BigInt::ToBytes(size_t width) const {
  std::vector<uint8_t> out(width, 0);
  for (size_t i = 0; i < width; ++i) {
    size_t bit = (width - 1 - i) * 8;
    size_t limb = bit / 32;
    if (limb < limbs_.size())
      out[i] = static_cast<uint8_t>(limbs_[limb] >> (bit % 32));
  }
  return out;
}

// ---------------------------------------------------------------------------
// MontgomeryContext

MontgomeryContext::MontgomeryContext(const BigInt& modulus) : n_(modulus) {
  AUTHDB_CHECK(n_.IsOdd());
  k_ = static_cast<int>(n_.limbs_.size());
  // n0_inv = -n^{-1} mod 2^32 via Newton iteration.
  uint32_t n0 = n_.limbs_[0];
  uint32_t inv = n0;  // inverse mod 2^4 approx; iterate to full precision
  for (int i = 0; i < 5; ++i) inv *= 2 - n0 * inv;
  n0_inv_ = ~inv + 1;  // negate
  // R = 2^(32k); compute R mod n and R^2 mod n by shifting.
  BigInt r = BigInt::Mod(BigInt::ShiftLeft(BigInt(1), 32 * k_), n_);
  one_mont_ = r;
  rr_ = BigInt::Mod(BigInt::Mul(r, r), n_);
}

BigInt MontgomeryContext::Redc(std::vector<uint32_t> t) const {
  // t has at least 2k+1 limbs (padded); standard word-by-word REDC.
  const auto& n = n_.limbs_;
  for (int i = 0; i < k_; ++i) {
    uint32_t m = t[i] * n0_inv_;
    uint64_t carry = 0;
    for (int j = 0; j < k_; ++j) {
      uint64_t x = static_cast<uint64_t>(m) * n[j] + t[i + j] + carry;
      t[i + j] = static_cast<uint32_t>(x);
      carry = x >> 32;
    }
    // propagate carry
    for (size_t j = i + k_; carry && j < t.size(); ++j) {
      uint64_t x = static_cast<uint64_t>(t[j]) + carry;
      t[j] = static_cast<uint32_t>(x);
      carry = x >> 32;
    }
  }
  BigInt out;
  out.limbs_.assign(t.begin() + k_, t.end());
  out.Trim();
  if (BigInt::Compare(out, n_) >= 0) out = BigInt::Sub(out, n_);
  return out;
}

BigInt MontgomeryContext::Mul(const BigInt& a, const BigInt& b) const {
  std::vector<uint32_t> t(2 * k_ + 1, 0);
  const auto& al = a.limbs_;
  const auto& bl = b.limbs_;
  for (size_t i = 0; i < al.size(); ++i) {
    uint64_t carry = 0;
    uint64_t ai = al[i];
    for (size_t j = 0; j < bl.size(); ++j) {
      uint64_t x = ai * bl[j] + t[i + j] + carry;
      t[i + j] = static_cast<uint32_t>(x);
      carry = x >> 32;
    }
    size_t j = i + bl.size();
    while (carry) {
      uint64_t x = static_cast<uint64_t>(t[j]) + carry;
      t[j] = static_cast<uint32_t>(x);
      carry = x >> 32;
      ++j;
    }
  }
  return Redc(std::move(t));
}

BigInt MontgomeryContext::ToMont(const BigInt& a) const {
  return Mul(a, rr_);
}

BigInt MontgomeryContext::FromMont(const BigInt& a) const {
  std::vector<uint32_t> t(2 * k_ + 1, 0);
  std::copy(a.limbs_.begin(), a.limbs_.end(), t.begin());
  return Redc(std::move(t));
}

BigInt MontgomeryContext::Add(const BigInt& a, const BigInt& b) const {
  BigInt s = BigInt::Add(a, b);
  if (BigInt::Compare(s, n_) >= 0) s = BigInt::Sub(s, n_);
  return s;
}

BigInt MontgomeryContext::Sub(const BigInt& a, const BigInt& b) const {
  if (BigInt::Compare(a, b) >= 0) return BigInt::Sub(a, b);
  return BigInt::Sub(BigInt::Add(a, n_), b);
}

BigInt MontgomeryContext::ExpMont(const BigInt& base_mont,
                                  const BigInt& e) const {
  BigInt acc = one_mont_;
  int bits = e.BitLength();
  for (int i = bits - 1; i >= 0; --i) {
    acc = Mul(acc, acc);
    if (e.Bit(i)) acc = Mul(acc, base_mont);
  }
  return acc;
}

BigInt MontgomeryContext::Exp(const BigInt& base, const BigInt& e) const {
  BigInt b = BigInt::Compare(base, n_) >= 0 ? BigInt::Mod(base, n_) : base;
  return FromMont(ExpMont(ToMont(b), e));
}

}  // namespace authdb
