#ifndef AUTHDB_CRYPTO_SHA_H_
#define AUTHDB_CRYPTO_SHA_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#include "common/slice.h"

namespace authdb {

/// 160-bit digest — the unit the paper uses for both Merkle-tree digests and
/// (by size equivalence) ECC signatures.
struct Digest160 {
  std::array<uint8_t, 20> bytes{};
  bool operator==(const Digest160& o) const { return bytes == o.bytes; }
  bool operator!=(const Digest160& o) const { return !(*this == o); }
  std::string ToHex() const;
  Slice AsSlice() const { return Slice(bytes.data(), bytes.size()); }
};

/// 256-bit digest, used where we need more hash material (Bloom filter
/// indexing, hash-to-curve) and for the SHA-1 vs SHA-256 ablation.
struct Digest256 {
  std::array<uint8_t, 32> bytes{};
  bool operator==(const Digest256& o) const { return bytes == o.bytes; }
  bool operator!=(const Digest256& o) const { return !(*this == o); }
  std::string ToHex() const;
  Slice AsSlice() const { return Slice(bytes.data(), bytes.size()); }
};

/// Incremental SHA-1 (FIPS 180-1). One-way hash h(.) of the paper.
class Sha1 {
 public:
  Sha1() { Reset(); }
  void Reset();
  void Update(Slice data);
  Digest160 Finish();

  /// Convenience one-shot hash.
  static Digest160 Hash(Slice data);
  /// Hash the concatenation of two digests: h(a | b), the Merkle node rule.
  static Digest160 HashPair(const Digest160& a, const Digest160& b);
  /// Hash `count` independent messages: out[i] = SHA-1(msgs[i]). The batch
  /// entry point hot paths should prefer over per-message Hash: it runs the
  /// process-wide SIMD tier (SHA-NI / AVX2 multi-buffer / scalar, see
  /// crypto/simd/cpu_features.h) and is bit-identical to Hash per message.
  static void HashMany(const Slice* msgs, size_t count, Digest160* out);

 private:
  void ProcessBlock(const uint8_t* block);
  uint32_t h_[5];
  uint64_t length_ = 0;        // total bytes seen
  uint8_t buffer_[64];
  size_t buffered_ = 0;
};

/// Incremental SHA-256 (FIPS 180-2).
class Sha256 {
 public:
  Sha256() { Reset(); }
  void Reset();
  void Update(Slice data);
  Digest256 Finish();

  static Digest256 Hash(Slice data);
  /// Batched one-shot hashing; see Sha1::HashMany.
  static void HashMany(const Slice* msgs, size_t count, Digest256* out);

 private:
  void ProcessBlock(const uint8_t* block);
  uint32_t h_[8];
  uint64_t length_ = 0;
  uint8_t buffer_[64];
  size_t buffered_ = 0;
};

}  // namespace authdb

#endif  // AUTHDB_CRYPTO_SHA_H_
