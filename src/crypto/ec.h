#ifndef AUTHDB_CRYPTO_EC_H_
#define AUTHDB_CRYPTO_EC_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "crypto/fp.h"

namespace authdb {

/// Affine point on an elliptic curve over F_p (coordinates in Montgomery
/// form). The default-constructed point is the point at infinity.
struct ECPoint {
  BigInt x, y;
  bool infinity = true;
};

/// Short-Weierstrass curve group y^2 = x^3 + a*x + b over F_p, with a
/// designated prime-order-r subgroup (cofactor c, #E = c*r).
///
/// For the BAS scheme (crypto/bas.h) we instantiate the supersingular curve
/// y^2 = x^3 + x (a=1, b=0) with p = 3 (mod 4), for which #E(F_p) = p + 1
/// and the distortion map (x,y) -> (-x, i*y) gives a usable pairing.
class CurveGroup {
 public:
  CurveGroup(const BigInt& p, uint64_t a, uint64_t b, const BigInt& order_r,
             const BigInt& cofactor);

  const PrimeField& field() const { return *fp_; }
  const BigInt& order() const { return r_; }
  const BigInt& cofactor() const { return cofactor_; }
  const BigInt& a_mont() const { return a_; }

  bool IsOnCurve(const ECPoint& pt) const;
  bool Equal(const ECPoint& p1, const ECPoint& p2) const;
  ECPoint Negate(const ECPoint& p) const;

  /// Group law (affine interface; internally Jacobian where it matters).
  ECPoint Add(const ECPoint& p1, const ECPoint& p2) const;
  ECPoint Double(const ECPoint& p) const;
  ECPoint ScalarMult(const ECPoint& p, const BigInt& k) const;

  /// Sum of many points (the signature-aggregation inner loop). Performs the
  /// whole accumulation in Jacobian coordinates with a single final
  /// inversion, so aggregating n signatures costs n point additions.
  ECPoint Sum(const std::vector<ECPoint>& points) const;

  /// Deterministically derive a generator of the order-r subgroup: first
  /// valid x on the curve, cofactor-cleared.
  ECPoint FindGenerator() const;

  /// Map y^2 = rhs(x): returns rhs = x^3 + a*x + b (Montgomery form).
  BigInt CurveRhs(const BigInt& x) const;

  /// Serialize a point as 2*field_bytes big-endian bytes (x||y), or all
  /// zeros for infinity; used for hashing/certifying points.
  std::vector<uint8_t> Serialize(const ECPoint& pt) const;
  ECPoint Deserialize(const std::vector<uint8_t>& bytes) const;

  // -- Jacobian internals, exposed for the pairing Miller loop and for bulk
  //    accumulation. x = X/Z^2, y = Y/Z^3; Z=0 encodes infinity.
  struct Jacobian {
    BigInt X, Y, Z;
  };
  Jacobian ToJacobian(const ECPoint& p) const;
  ECPoint ToAffine(const Jacobian& j) const;
  /// Finalize many Jacobian accumulators with ONE field inversion
  /// (Montgomery's batch-inversion trick) instead of one per point. The
  /// inversion dominates ToAffine at our field sizes, so finalizing a
  /// batch of n aggregates costs ~1/n of n individual ToAffine calls —
  /// the amortization the batched execution path is built on.
  std::vector<ECPoint> ToAffineBatch(const std::vector<Jacobian>& js) const;
  Jacobian JacDouble(const Jacobian& p) const;
  Jacobian JacAdd(const Jacobian& p, const Jacobian& q) const;
  /// Mixed addition with an affine (non-infinity) second operand.
  Jacobian JacAddAffine(const Jacobian& p, const ECPoint& q) const;
  bool JacIsInfinity(const Jacobian& j) const { return j.Z.IsZero(); }

 private:
  std::shared_ptr<PrimeField> fp_;
  BigInt a_, b_;  // curve coefficients, Montgomery form
  BigInt r_, cofactor_;
};

}  // namespace authdb

#endif  // AUTHDB_CRYPTO_EC_H_
