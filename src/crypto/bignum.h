#ifndef AUTHDB_CRYPTO_BIGNUM_H_
#define AUTHDB_CRYPTO_BIGNUM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/slice.h"

namespace authdb {

/// Arbitrary-precision unsigned integer with 32-bit limbs (little-endian).
///
/// This is the arithmetic substrate for the RSA and elliptic-curve layers.
/// Hot paths (modular exponentiation, field multiplication) go through
/// MontgomeryContext below; BigInt itself provides schoolbook operations and
/// a binary long division used on cold paths (parameter generation, one-time
/// reductions).
class BigInt {
 public:
  BigInt() = default;
  explicit BigInt(uint64_t v);

  /// Parse from big-endian hex string (no 0x prefix).
  static BigInt FromHex(const std::string& hex);
  /// Interpret a big-endian byte string as an integer.
  static BigInt FromBytes(Slice bytes);
  /// Uniformly random integer with exactly `bits` bits (MSB set).
  static BigInt Random(int bits, Rng* rng);
  /// Uniformly random integer in [1, n-1].
  static BigInt RandomBelow(const BigInt& n, Rng* rng);

  bool IsZero() const { return limbs_.empty(); }
  bool IsOdd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  int BitLength() const;
  bool Bit(int i) const;
  uint64_t ToU64() const;

  /// -1 / 0 / +1 comparison.
  static int Compare(const BigInt& a, const BigInt& b);
  bool operator==(const BigInt& b) const { return Compare(*this, b) == 0; }
  bool operator!=(const BigInt& b) const { return Compare(*this, b) != 0; }
  bool operator<(const BigInt& b) const { return Compare(*this, b) < 0; }
  bool operator<=(const BigInt& b) const { return Compare(*this, b) <= 0; }

  static BigInt Add(const BigInt& a, const BigInt& b);
  /// Requires a >= b.
  static BigInt Sub(const BigInt& a, const BigInt& b);
  static BigInt Mul(const BigInt& a, const BigInt& b);
  static BigInt ShiftLeft(const BigInt& a, int bits);
  static BigInt ShiftRight(const BigInt& a, int bits);

  /// Binary long division: a = q*d + r with 0 <= r < d. O(bits * limbs);
  /// used only off the hot path.
  static void DivMod(const BigInt& a, const BigInt& d, BigInt* q, BigInt* r);
  static BigInt Mod(const BigInt& a, const BigInt& m);
  static BigInt Div(const BigInt& a, const BigInt& d);

  static BigInt AddMod(const BigInt& a, const BigInt& b, const BigInt& m);
  static BigInt SubMod(const BigInt& a, const BigInt& b, const BigInt& m);
  /// Schoolbook multiply followed by binary reduction; cold-path helper.
  static BigInt MulMod(const BigInt& a, const BigInt& b, const BigInt& m);

  /// Modular inverse via binary extended GCD. Returns zero if not invertible.
  static BigInt ModInverse(const BigInt& a, const BigInt& m);

  /// Miller-Rabin probabilistic primality test with `rounds` random bases.
  static bool IsProbablePrime(const BigInt& n, Rng* rng, int rounds = 24);
  /// Random prime with exactly `bits` bits.
  static BigInt GeneratePrime(int bits, Rng* rng);

  std::string ToHex() const;
  /// Fixed-width big-endian byte serialization (zero-padded to `width`).
  std::vector<uint8_t> ToBytes(size_t width) const;

  const std::vector<uint32_t>& limbs() const { return limbs_; }

 private:
  friend class MontgomeryContext;
  void Trim();
  std::vector<uint32_t> limbs_;  // little-endian, no trailing zero limbs
};

/// Montgomery multiplication context for a fixed odd modulus. Provides the
/// fast modular primitives used by RSA signing and all elliptic-curve field
/// arithmetic. Values passed to Mul/Exp must be in Montgomery form
/// (use ToMont / FromMont at the boundaries).
class MontgomeryContext {
 public:
  explicit MontgomeryContext(const BigInt& modulus);

  const BigInt& modulus() const { return n_; }
  int limb_count() const { return k_; }

  BigInt ToMont(const BigInt& a) const;
  BigInt FromMont(const BigInt& a) const;

  /// Montgomery product: returns a*b*R^-1 mod n (all in Montgomery form).
  BigInt Mul(const BigInt& a, const BigInt& b) const;
  /// a + b mod n. Works on plain or Montgomery form alike.
  BigInt Add(const BigInt& a, const BigInt& b) const;
  /// a - b mod n.
  BigInt Sub(const BigInt& a, const BigInt& b) const;

  /// Modular exponentiation base^e mod n (base and result in PLAIN form).
  BigInt Exp(const BigInt& base, const BigInt& e) const;
  /// Exponentiation where base is already in Montgomery form; the result is
  /// in Montgomery form too (used by field code that stays in Mont form).
  BigInt ExpMont(const BigInt& base_mont, const BigInt& e) const;

  /// The Montgomery representation of 1.
  const BigInt& OneMont() const { return one_mont_; }

 private:
  BigInt Redc(std::vector<uint32_t> t) const;  // t has 2k+1 limbs

  BigInt n_;
  int k_;             // limb count of n
  uint32_t n0_inv_;   // -n^{-1} mod 2^32
  BigInt rr_;         // R^2 mod n
  BigInt one_mont_;   // R mod n
};

}  // namespace authdb

#endif  // AUTHDB_CRYPTO_BIGNUM_H_
