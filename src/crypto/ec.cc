#include "crypto/ec.h"

#include <cstdint>
#include <memory>
#include <vector>

#include "common/logging.h"

namespace authdb {

CurveGroup::CurveGroup(const BigInt& p, uint64_t a, uint64_t b,
                       const BigInt& order_r, const BigInt& cofactor)
    : fp_(std::make_shared<PrimeField>(p)),
      a_(fp_->FromU64(a)),
      b_(fp_->FromU64(b)),
      r_(order_r),
      cofactor_(cofactor) {}

BigInt CurveGroup::CurveRhs(const BigInt& x) const {
  const PrimeField& f = *fp_;
  BigInt x3 = f.Mul(f.Sqr(x), x);
  return f.Add(f.Add(x3, f.Mul(a_, x)), b_);
}

bool CurveGroup::IsOnCurve(const ECPoint& pt) const {
  if (pt.infinity) return true;
  return fp_->Equal(fp_->Sqr(pt.y), CurveRhs(pt.x));
}

bool CurveGroup::Equal(const ECPoint& p1, const ECPoint& p2) const {
  if (p1.infinity || p2.infinity) return p1.infinity == p2.infinity;
  return fp_->Equal(p1.x, p2.x) && fp_->Equal(p1.y, p2.y);
}

ECPoint CurveGroup::Negate(const ECPoint& p) const {
  if (p.infinity) return p;
  return ECPoint{p.x, fp_->Neg(p.y), false};
}

CurveGroup::Jacobian CurveGroup::ToJacobian(const ECPoint& p) const {
  if (p.infinity) return Jacobian{fp_->One(), fp_->One(), BigInt()};
  return Jacobian{p.x, p.y, fp_->One()};
}

ECPoint CurveGroup::ToAffine(const Jacobian& j) const {
  if (JacIsInfinity(j)) return ECPoint{};
  const PrimeField& f = *fp_;
  BigInt zi = f.Inv(j.Z);
  BigInt zi2 = f.Sqr(zi);
  ECPoint out;
  out.infinity = false;
  out.x = f.Mul(j.X, zi2);
  out.y = f.Mul(j.Y, f.Mul(zi2, zi));
  return out;
}

std::vector<ECPoint> CurveGroup::ToAffineBatch(
    const std::vector<Jacobian>& js) const {
  const PrimeField& f = *fp_;
  std::vector<ECPoint> out(js.size());
  // Montgomery's trick: prefix-multiply the finite Zs, invert the single
  // running product, then peel per-element inverses off backwards.
  std::vector<size_t> finite;
  std::vector<BigInt> prefix;  // prefix[k] = Z_{finite[0]} * ... * Z_{finite[k]}
  finite.reserve(js.size());
  prefix.reserve(js.size());
  BigInt running = f.One();
  for (size_t i = 0; i < js.size(); ++i) {
    if (JacIsInfinity(js[i])) continue;  // out[i] stays the infinity point
    running = f.Mul(running, js[i].Z);
    finite.push_back(i);
    prefix.push_back(running);
  }
  if (finite.empty()) return out;
  BigInt inv = f.Inv(running);  // the batch's one inversion
  for (size_t k = finite.size(); k-- > 0;) {
    size_t i = finite[k];
    BigInt zi = k == 0 ? inv : f.Mul(inv, prefix[k - 1]);
    inv = f.Mul(inv, js[i].Z);  // running inverse of the shorter prefix
    BigInt zi2 = f.Sqr(zi);
    out[i].infinity = false;
    out[i].x = f.Mul(js[i].X, zi2);
    out[i].y = f.Mul(js[i].Y, f.Mul(zi2, zi));
  }
  return out;
}

CurveGroup::Jacobian CurveGroup::JacDouble(const Jacobian& p) const {
  const PrimeField& f = *fp_;
  if (JacIsInfinity(p) || p.Y.IsZero())
    return Jacobian{f.One(), f.One(), BigInt()};
  BigInt y2 = f.Sqr(p.Y);
  BigInt s = f.Mul(f.FromU64(4), f.Mul(p.X, y2));
  BigInt z2 = f.Sqr(p.Z);
  BigInt m = f.Add(f.Mul(f.FromU64(3), f.Sqr(p.X)), f.Mul(a_, f.Sqr(z2)));
  BigInt x3 = f.Sub(f.Sqr(m), f.Dbl(s));
  BigInt y3 = f.Sub(f.Mul(m, f.Sub(s, x3)), f.Mul(f.FromU64(8), f.Sqr(y2)));
  BigInt z3 = f.Mul(f.Dbl(p.Y), p.Z);
  return Jacobian{x3, y3, z3};
}

CurveGroup::Jacobian CurveGroup::JacAdd(const Jacobian& p,
                                        const Jacobian& q) const {
  const PrimeField& f = *fp_;
  if (JacIsInfinity(p)) return q;
  if (JacIsInfinity(q)) return p;
  BigInt z1z1 = f.Sqr(p.Z);
  BigInt z2z2 = f.Sqr(q.Z);
  BigInt u1 = f.Mul(p.X, z2z2);
  BigInt u2 = f.Mul(q.X, z1z1);
  BigInt s1 = f.Mul(p.Y, f.Mul(q.Z, z2z2));
  BigInt s2 = f.Mul(q.Y, f.Mul(p.Z, z1z1));
  BigInt h = f.Sub(u2, u1);
  BigInt r = f.Sub(s2, s1);
  if (h.IsZero()) {
    if (r.IsZero()) return JacDouble(p);
    return Jacobian{f.One(), f.One(), BigInt()};  // P + (-P) = O
  }
  BigInt hh = f.Sqr(h);
  BigInt hhh = f.Mul(h, hh);
  BigInt v = f.Mul(u1, hh);
  BigInt x3 = f.Sub(f.Sub(f.Sqr(r), hhh), f.Dbl(v));
  BigInt y3 = f.Sub(f.Mul(r, f.Sub(v, x3)), f.Mul(s1, hhh));
  BigInt z3 = f.Mul(f.Mul(p.Z, q.Z), h);
  return Jacobian{x3, y3, z3};
}

CurveGroup::Jacobian CurveGroup::JacAddAffine(const Jacobian& p,
                                              const ECPoint& q) const {
  const PrimeField& f = *fp_;
  AUTHDB_DCHECK(!q.infinity);
  if (JacIsInfinity(p)) return Jacobian{q.x, q.y, f.One()};
  BigInt z1z1 = f.Sqr(p.Z);
  BigInt u2 = f.Mul(q.x, z1z1);
  BigInt s2 = f.Mul(q.y, f.Mul(p.Z, z1z1));
  BigInt h = f.Sub(u2, p.X);
  BigInt r = f.Sub(s2, p.Y);
  if (h.IsZero()) {
    if (r.IsZero()) return JacDouble(p);
    return Jacobian{f.One(), f.One(), BigInt()};
  }
  BigInt hh = f.Sqr(h);
  BigInt hhh = f.Mul(h, hh);
  BigInt v = f.Mul(p.X, hh);
  BigInt x3 = f.Sub(f.Sub(f.Sqr(r), hhh), f.Dbl(v));
  BigInt y3 = f.Sub(f.Mul(r, f.Sub(v, x3)), f.Mul(p.Y, hhh));
  BigInt z3 = f.Mul(p.Z, h);
  return Jacobian{x3, y3, z3};
}

ECPoint CurveGroup::Add(const ECPoint& p1, const ECPoint& p2) const {
  if (p1.infinity) return p2;
  if (p2.infinity) return p1;
  return ToAffine(JacAddAffine(ToJacobian(p1), p2));
}

ECPoint CurveGroup::Double(const ECPoint& p) const {
  return ToAffine(JacDouble(ToJacobian(p)));
}

ECPoint CurveGroup::ScalarMult(const ECPoint& p, const BigInt& k) const {
  if (p.infinity || k.IsZero()) return ECPoint{};
  Jacobian acc{fp_->One(), fp_->One(), BigInt()};  // infinity
  for (int i = k.BitLength() - 1; i >= 0; --i) {
    acc = JacDouble(acc);
    if (k.Bit(i)) acc = JacAddAffine(acc, p);
  }
  return ToAffine(acc);
}

ECPoint CurveGroup::Sum(const std::vector<ECPoint>& points) const {
  Jacobian acc{fp_->One(), fp_->One(), BigInt()};
  for (const ECPoint& p : points) {
    if (p.infinity) continue;
    acc = JacAddAffine(acc, p);
  }
  return ToAffine(acc);
}

ECPoint CurveGroup::FindGenerator() const {
  const PrimeField& f = *fp_;
  for (uint64_t xi = 1;; ++xi) {
    BigInt x = f.FromU64(xi);
    BigInt rhs = CurveRhs(x);
    if (!f.IsSquare(rhs) || rhs.IsZero()) continue;
    ECPoint pt{x, f.Sqrt(rhs), false};
    AUTHDB_CHECK(IsOnCurve(pt));
    ECPoint g = ScalarMult(pt, cofactor_);
    if (g.infinity) continue;
    // g has order dividing r; r prime and g != O, so order is exactly r.
    return g;
  }
}

std::vector<uint8_t> CurveGroup::Serialize(const ECPoint& pt) const {
  size_t w = fp_->element_bytes();
  if (pt.infinity) return std::vector<uint8_t>(2 * w, 0);
  std::vector<uint8_t> out = fp_->ToPlain(pt.x).ToBytes(w);
  std::vector<uint8_t> yb = fp_->ToPlain(pt.y).ToBytes(w);
  out.insert(out.end(), yb.begin(), yb.end());
  return out;
}

ECPoint CurveGroup::Deserialize(const std::vector<uint8_t>& bytes) const {
  size_t w = fp_->element_bytes();
  AUTHDB_CHECK(bytes.size() == 2 * w);
  bool all_zero = true;
  for (uint8_t b : bytes) {
    if (b != 0) {
      all_zero = false;
      break;
    }
  }
  if (all_zero) return ECPoint{};
  ECPoint pt;
  pt.infinity = false;
  pt.x = fp_->FromPlain(BigInt::FromBytes(Slice(bytes.data(), w)));
  pt.y = fp_->FromPlain(BigInt::FromBytes(Slice(bytes.data() + w, w)));
  return pt;
}

}  // namespace authdb
