#include "crypto/simd/sha_multibuf.h"

#include <algorithm>
#include <cstdint>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define AUTHDB_SIMD_X86 1
#endif

// Multi-buffer / hardware SHA kernels. Three properties the rest of the
// system relies on:
//  * Bit-identical output: every tier computes FIPS 180 SHA-1/SHA-256
//    exactly; answers and VOs cannot depend on the dispatch choice.
//  * Single-TU compilation: the AVX2/SHA-NI bodies carry function-level
//    `target` attributes, so this file builds with the portable baseline
//    flags and the fancy instructions are only reachable behind the CPUID
//    probe in cpu_features.cc.
//  * Any shape: arbitrary lengths, arbitrary alignment, lane counts that
//    are not a multiple of the vector width (inactive lanes hash a dummy
//    zero block and are masked out of the state update).

namespace authdb {
namespace simd {

namespace {

inline void StoreBE32(uint8_t* p, uint32_t v) {
  p[0] = v >> 24;
  p[1] = v >> 16;
  p[2] = v >> 8;
  p[3] = v;
}

constexpr uint32_t kSha256K64[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

// Dummy block for masked-out lanes: 64 message bytes plus 32 bytes of
// slack so a 32-byte vector load at offset 32 stays in bounds.
constexpr uint8_t kZeroBlock[96] = {0};

/// Merkle-Damgard tail: the remainder bytes of `msg` plus FIPS 180 padding
/// (0x80, zeros, 64-bit big-endian bit length), laid out as one or two
/// 64-byte blocks in `tail`. Returns the number of tail blocks.
size_t BuildTail(Slice msg, uint8_t tail[128]) {
  const size_t rem = msg.size() % 64;
  const size_t tail_blocks = (rem < 56) ? 1 : 2;
  std::memset(tail, 0, 128);
  if (rem > 0) std::memcpy(tail, msg.data() + (msg.size() - rem), rem);
  tail[rem] = 0x80;
  const uint64_t bit_len = uint64_t(msg.size()) * 8;
  uint8_t* len_at = tail + tail_blocks * 64 - 8;
  for (int i = 0; i < 8; ++i) len_at[i] = uint8_t(bit_len >> (56 - 8 * i));
  return tail_blocks;
}

/// One message's block stream: data_blocks full blocks read straight from
/// the input, then tail_blocks padded blocks from `tail`.
struct LaneSrc {
  const uint8_t* data = nullptr;
  size_t data_blocks = 0;
  size_t total_blocks = 0;  // data_blocks + tail blocks; 0 = inactive lane
  uint8_t tail[128];
};

void InitLane(Slice msg, LaneSrc* lane) {
  lane->data = msg.data();
  lane->data_blocks = msg.size() / 64;
  lane->total_blocks = lane->data_blocks + BuildTail(msg, lane->tail);
}

const uint8_t* LaneBlockPtr(const LaneSrc& lane, size_t b) {
  if (b >= lane.total_blocks) return kZeroBlock;
  if (b < lane.data_blocks) return lane.data + b * 64;
  return lane.tail + (b - lane.data_blocks) * 64;
}

void ScalarSha1Many(const Slice* msgs, size_t count, Digest160* out) {
  for (size_t i = 0; i < count; ++i) out[i] = Sha1::Hash(msgs[i]);
}

void ScalarSha256Many(const Slice* msgs, size_t count, Digest256* out) {
  for (size_t i = 0; i < count; ++i) out[i] = Sha256::Hash(msgs[i]);
}

#if defined(AUTHDB_SIMD_X86)

// ---------------------------------------------------------------------------
// SHA-NI: hardware SHA-1 / SHA-256 rounds, one message stream at a time.
// Round structure follows the canonical Intel sequence (Gulley et al.,
// "Intel SHA Extensions" white paper ordering).

__attribute__((target("sha,sse4.1"))) void Sha1NiBlocks(uint32_t state[5],
                                                        const uint8_t* data,
                                                        size_t blocks) {
  const __m128i kShuf =
      _mm_set_epi64x(0x0001020304050607ULL, 0x08090a0b0c0d0e0fULL);
  __m128i abcd = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state));
  abcd = _mm_shuffle_epi32(abcd, 0x1B);
  __m128i e0 = _mm_set_epi32(int(state[4]), 0, 0, 0);
  __m128i e1;
  __m128i msg0, msg1, msg2, msg3;

  while (blocks-- > 0) {
    const __m128i abcd_save = abcd;
    const __m128i e0_save = e0;

    // Rounds 0-3
    msg0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 0));
    msg0 = _mm_shuffle_epi8(msg0, kShuf);
    e0 = _mm_add_epi32(e0, msg0);
    e1 = abcd;
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 0);

    // Rounds 4-7
    msg1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16));
    msg1 = _mm_shuffle_epi8(msg1, kShuf);
    e1 = _mm_sha1nexte_epu32(e1, msg1);
    e0 = abcd;
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 0);
    msg0 = _mm_sha1msg1_epu32(msg0, msg1);

    // Rounds 8-11
    msg2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 32));
    msg2 = _mm_shuffle_epi8(msg2, kShuf);
    e0 = _mm_sha1nexte_epu32(e0, msg2);
    e1 = abcd;
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 0);
    msg1 = _mm_sha1msg1_epu32(msg1, msg2);
    msg0 = _mm_xor_si128(msg0, msg2);

    // Rounds 12-15
    msg3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 48));
    msg3 = _mm_shuffle_epi8(msg3, kShuf);
    e1 = _mm_sha1nexte_epu32(e1, msg3);
    e0 = abcd;
    msg0 = _mm_sha1msg2_epu32(msg0, msg3);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 0);
    msg2 = _mm_sha1msg1_epu32(msg2, msg3);
    msg1 = _mm_xor_si128(msg1, msg3);

    // Rounds 16-19
    e0 = _mm_sha1nexte_epu32(e0, msg0);
    e1 = abcd;
    msg1 = _mm_sha1msg2_epu32(msg1, msg0);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 0);
    msg3 = _mm_sha1msg1_epu32(msg3, msg0);
    msg2 = _mm_xor_si128(msg2, msg0);

    // Rounds 20-23
    e1 = _mm_sha1nexte_epu32(e1, msg1);
    e0 = abcd;
    msg2 = _mm_sha1msg2_epu32(msg2, msg1);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 1);
    msg0 = _mm_sha1msg1_epu32(msg0, msg1);
    msg3 = _mm_xor_si128(msg3, msg1);

    // Rounds 24-27
    e0 = _mm_sha1nexte_epu32(e0, msg2);
    e1 = abcd;
    msg3 = _mm_sha1msg2_epu32(msg3, msg2);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 1);
    msg1 = _mm_sha1msg1_epu32(msg1, msg2);
    msg0 = _mm_xor_si128(msg0, msg2);

    // Rounds 28-31
    e1 = _mm_sha1nexte_epu32(e1, msg3);
    e0 = abcd;
    msg0 = _mm_sha1msg2_epu32(msg0, msg3);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 1);
    msg2 = _mm_sha1msg1_epu32(msg2, msg3);
    msg1 = _mm_xor_si128(msg1, msg3);

    // Rounds 32-35
    e0 = _mm_sha1nexte_epu32(e0, msg0);
    e1 = abcd;
    msg1 = _mm_sha1msg2_epu32(msg1, msg0);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 1);
    msg3 = _mm_sha1msg1_epu32(msg3, msg0);
    msg2 = _mm_xor_si128(msg2, msg0);

    // Rounds 36-39
    e1 = _mm_sha1nexte_epu32(e1, msg1);
    e0 = abcd;
    msg2 = _mm_sha1msg2_epu32(msg2, msg1);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 1);
    msg0 = _mm_sha1msg1_epu32(msg0, msg1);
    msg3 = _mm_xor_si128(msg3, msg1);

    // Rounds 40-43
    e0 = _mm_sha1nexte_epu32(e0, msg2);
    e1 = abcd;
    msg3 = _mm_sha1msg2_epu32(msg3, msg2);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 2);
    msg1 = _mm_sha1msg1_epu32(msg1, msg2);
    msg0 = _mm_xor_si128(msg0, msg2);

    // Rounds 44-47
    e1 = _mm_sha1nexte_epu32(e1, msg3);
    e0 = abcd;
    msg0 = _mm_sha1msg2_epu32(msg0, msg3);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 2);
    msg2 = _mm_sha1msg1_epu32(msg2, msg3);
    msg1 = _mm_xor_si128(msg1, msg3);

    // Rounds 48-51
    e0 = _mm_sha1nexte_epu32(e0, msg0);
    e1 = abcd;
    msg1 = _mm_sha1msg2_epu32(msg1, msg0);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 2);
    msg3 = _mm_sha1msg1_epu32(msg3, msg0);
    msg2 = _mm_xor_si128(msg2, msg0);

    // Rounds 52-55
    e1 = _mm_sha1nexte_epu32(e1, msg1);
    e0 = abcd;
    msg2 = _mm_sha1msg2_epu32(msg2, msg1);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 2);
    msg0 = _mm_sha1msg1_epu32(msg0, msg1);
    msg3 = _mm_xor_si128(msg3, msg1);

    // Rounds 56-59
    e0 = _mm_sha1nexte_epu32(e0, msg2);
    e1 = abcd;
    msg3 = _mm_sha1msg2_epu32(msg3, msg2);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 2);
    msg1 = _mm_sha1msg1_epu32(msg1, msg2);
    msg0 = _mm_xor_si128(msg0, msg2);

    // Rounds 60-63
    e1 = _mm_sha1nexte_epu32(e1, msg3);
    e0 = abcd;
    msg0 = _mm_sha1msg2_epu32(msg0, msg3);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 3);
    msg2 = _mm_sha1msg1_epu32(msg2, msg3);
    msg1 = _mm_xor_si128(msg1, msg3);

    // Rounds 64-67
    e0 = _mm_sha1nexte_epu32(e0, msg0);
    e1 = abcd;
    msg1 = _mm_sha1msg2_epu32(msg1, msg0);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 3);
    msg3 = _mm_sha1msg1_epu32(msg3, msg0);
    msg2 = _mm_xor_si128(msg2, msg0);

    // Rounds 68-71
    e1 = _mm_sha1nexte_epu32(e1, msg1);
    e0 = abcd;
    msg2 = _mm_sha1msg2_epu32(msg2, msg1);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 3);
    msg3 = _mm_xor_si128(msg3, msg1);

    // Rounds 72-75
    e0 = _mm_sha1nexte_epu32(e0, msg2);
    e1 = abcd;
    msg3 = _mm_sha1msg2_epu32(msg3, msg2);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 3);

    // Rounds 76-79
    e1 = _mm_sha1nexte_epu32(e1, msg3);
    e0 = abcd;
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 3);

    e0 = _mm_sha1nexte_epu32(e0, e0_save);
    abcd = _mm_add_epi32(abcd, abcd_save);
    data += 64;
  }

  abcd = _mm_shuffle_epi32(abcd, 0x1B);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state), abcd);
  state[4] = uint32_t(_mm_extract_epi32(e0, 3));
}

__attribute__((target("sha,sse4.1"))) void Sha256NiBlocks(uint32_t state[8],
                                                          const uint8_t* data,
                                                          size_t blocks) {
  const __m128i kShuf =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);
  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i state1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);           // CDAB
  state1 = _mm_shuffle_epi32(state1, 0x1B);     // EFGH
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);   // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);  // CDGH

// Four rounds: add the round constants for words k..k+3 to the schedule
// chunk W, then two sha256rnds2 (low pair, high pair).
#define AUTHDB_SHA256_QROUND(W, k)                                          \
  do {                                                                      \
    __m128i m_ = _mm_add_epi32(                                             \
        (W), _mm_loadu_si128(                                               \
                 reinterpret_cast<const __m128i*>(&kSha256K64[(k)])));      \
    state1 = _mm_sha256rnds2_epu32(state1, state0, m_);                     \
    m_ = _mm_shuffle_epi32(m_, 0x0E);                                       \
    state0 = _mm_sha256rnds2_epu32(state0, state1, m_);                     \
  } while (0)

// Schedule step: NXT = sha256msg2(NXT + alignr(CUR, PRV, 4), CUR).
#define AUTHDB_SHA256_SCHED(NXT, CUR, PRV)                   \
  do {                                                       \
    const __m128i t_ = _mm_alignr_epi8((CUR), (PRV), 4);     \
    (NXT) = _mm_add_epi32((NXT), t_);                        \
    (NXT) = _mm_sha256msg2_epu32((NXT), (CUR));              \
  } while (0)

  while (blocks-- > 0) {
    const __m128i save0 = state0;
    const __m128i save1 = state1;

    __m128i msg0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 0));
    msg0 = _mm_shuffle_epi8(msg0, kShuf);
    AUTHDB_SHA256_QROUND(msg0, 0);

    __m128i msg1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16));
    msg1 = _mm_shuffle_epi8(msg1, kShuf);
    AUTHDB_SHA256_QROUND(msg1, 4);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    __m128i msg2 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 32));
    msg2 = _mm_shuffle_epi8(msg2, kShuf);
    AUTHDB_SHA256_QROUND(msg2, 8);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    __m128i msg3 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 48));
    msg3 = _mm_shuffle_epi8(msg3, kShuf);
    AUTHDB_SHA256_QROUND(msg3, 12);
    AUTHDB_SHA256_SCHED(msg0, msg3, msg2);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    AUTHDB_SHA256_QROUND(msg0, 16);
    AUTHDB_SHA256_SCHED(msg1, msg0, msg3);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    AUTHDB_SHA256_QROUND(msg1, 20);
    AUTHDB_SHA256_SCHED(msg2, msg1, msg0);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    AUTHDB_SHA256_QROUND(msg2, 24);
    AUTHDB_SHA256_SCHED(msg3, msg2, msg1);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    AUTHDB_SHA256_QROUND(msg3, 28);
    AUTHDB_SHA256_SCHED(msg0, msg3, msg2);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    AUTHDB_SHA256_QROUND(msg0, 32);
    AUTHDB_SHA256_SCHED(msg1, msg0, msg3);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    AUTHDB_SHA256_QROUND(msg1, 36);
    AUTHDB_SHA256_SCHED(msg2, msg1, msg0);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    AUTHDB_SHA256_QROUND(msg2, 40);
    AUTHDB_SHA256_SCHED(msg3, msg2, msg1);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    AUTHDB_SHA256_QROUND(msg3, 44);
    AUTHDB_SHA256_SCHED(msg0, msg3, msg2);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    AUTHDB_SHA256_QROUND(msg0, 48);
    AUTHDB_SHA256_SCHED(msg1, msg0, msg3);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    AUTHDB_SHA256_QROUND(msg1, 52);
    AUTHDB_SHA256_SCHED(msg2, msg1, msg0);

    AUTHDB_SHA256_QROUND(msg2, 56);
    AUTHDB_SHA256_SCHED(msg3, msg2, msg1);

    AUTHDB_SHA256_QROUND(msg3, 60);

    state0 = _mm_add_epi32(state0, save0);
    state1 = _mm_add_epi32(state1, save1);
    data += 64;
  }

#undef AUTHDB_SHA256_QROUND
#undef AUTHDB_SHA256_SCHED

  tmp = _mm_shuffle_epi32(state0, 0x1B);     // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xB1);  // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);  // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);     // HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), state1);
}

void NiSha1Many(const Slice* msgs, size_t count, Digest160* out) {
  for (size_t i = 0; i < count; ++i) {
    uint32_t st[5] = {0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476,
                      0xC3D2E1F0};
    LaneSrc lane;
    InitLane(msgs[i], &lane);
    if (lane.data_blocks > 0) Sha1NiBlocks(st, lane.data, lane.data_blocks);
    Sha1NiBlocks(st, lane.tail, lane.total_blocks - lane.data_blocks);
    for (int j = 0; j < 5; ++j) StoreBE32(out[i].bytes.data() + 4 * j, st[j]);
  }
}

void NiSha256Many(const Slice* msgs, size_t count, Digest256* out) {
  for (size_t i = 0; i < count; ++i) {
    uint32_t st[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                      0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
    LaneSrc lane;
    InitLane(msgs[i], &lane);
    if (lane.data_blocks > 0) Sha256NiBlocks(st, lane.data, lane.data_blocks);
    Sha256NiBlocks(st, lane.tail, lane.total_blocks - lane.data_blocks);
    for (int j = 0; j < 8; ++j) StoreBE32(out[i].bytes.data() + 4 * j, st[j]);
  }
}

// ---------------------------------------------------------------------------
// AVX2 8-lane multi-buffer: eight independent messages advance through the
// scalar round structure with every 32-bit word op widened across lanes.
// Lanes with fewer blocks than the longest lane keep hashing a dummy zero
// block but their state update is masked off (blendv), so each lane's final
// state is exactly its scalar state.

#define AUTHDB_ROTL8(x, k) \
  _mm256_or_si256(_mm256_slli_epi32((x), (k)), _mm256_srli_epi32((x), 32 - (k)))
#define AUTHDB_ROTR8(x, k) \
  _mm256_or_si256(_mm256_srli_epi32((x), (k)), _mm256_slli_epi32((x), 32 - (k)))

/// Load words [woff, woff+8) of one 64-byte block for all 8 lanes and
/// transpose so out[t] holds word woff+t of every lane (big-endian).
__attribute__((target("avx2"))) inline void LoadWords8(
    const uint8_t* const ptrs[8], size_t byte_off, __m256i out[8]) {
  const __m256i bswap = _mm256_setr_epi8(
      3, 2, 1, 0, 7, 6, 5, 4, 11, 10, 9, 8, 15, 14, 13, 12, 3, 2, 1, 0, 7, 6,
      5, 4, 11, 10, 9, 8, 15, 14, 13, 12);
  __m256i r[8];
  for (int l = 0; l < 8; ++l) {
    r[l] = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(ptrs[l] + byte_off));
    r[l] = _mm256_shuffle_epi8(r[l], bswap);
  }
  const __m256i t0 = _mm256_unpacklo_epi32(r[0], r[1]);
  const __m256i t1 = _mm256_unpackhi_epi32(r[0], r[1]);
  const __m256i t2 = _mm256_unpacklo_epi32(r[2], r[3]);
  const __m256i t3 = _mm256_unpackhi_epi32(r[2], r[3]);
  const __m256i t4 = _mm256_unpacklo_epi32(r[4], r[5]);
  const __m256i t5 = _mm256_unpackhi_epi32(r[4], r[5]);
  const __m256i t6 = _mm256_unpacklo_epi32(r[6], r[7]);
  const __m256i t7 = _mm256_unpackhi_epi32(r[6], r[7]);
  const __m256i u0 = _mm256_unpacklo_epi64(t0, t2);
  const __m256i u1 = _mm256_unpackhi_epi64(t0, t2);
  const __m256i u2 = _mm256_unpacklo_epi64(t1, t3);
  const __m256i u3 = _mm256_unpackhi_epi64(t1, t3);
  const __m256i u4 = _mm256_unpacklo_epi64(t4, t6);
  const __m256i u5 = _mm256_unpackhi_epi64(t4, t6);
  const __m256i u6 = _mm256_unpacklo_epi64(t5, t7);
  const __m256i u7 = _mm256_unpackhi_epi64(t5, t7);
  out[0] = _mm256_permute2x128_si256(u0, u4, 0x20);
  out[4] = _mm256_permute2x128_si256(u0, u4, 0x31);
  out[1] = _mm256_permute2x128_si256(u1, u5, 0x20);
  out[5] = _mm256_permute2x128_si256(u1, u5, 0x31);
  out[2] = _mm256_permute2x128_si256(u2, u6, 0x20);
  out[6] = _mm256_permute2x128_si256(u2, u6, 0x31);
  out[3] = _mm256_permute2x128_si256(u3, u7, 0x20);
  out[7] = _mm256_permute2x128_si256(u3, u7, 0x31);
}

__attribute__((target("avx2"))) void Sha1Avx2Block(
    __m256i h[5], const uint8_t* const ptrs[8], __m256i active) {
  __m256i w[80];
  LoadWords8(ptrs, 0, &w[0]);
  LoadWords8(ptrs, 32, &w[8]);
  for (int i = 16; i < 80; ++i) {
    const __m256i x = _mm256_xor_si256(
        _mm256_xor_si256(w[i - 3], w[i - 8]),
        _mm256_xor_si256(w[i - 14], w[i - 16]));
    w[i] = AUTHDB_ROTL8(x, 1);
  }
  __m256i a = h[0], b = h[1], c = h[2], d = h[3], e = h[4];
  for (int i = 0; i < 80; ++i) {
    __m256i f, k;
    if (i < 20) {
      f = _mm256_or_si256(_mm256_and_si256(b, c), _mm256_andnot_si256(b, d));
      k = _mm256_set1_epi32(int(0x5A827999));
    } else if (i < 40) {
      f = _mm256_xor_si256(_mm256_xor_si256(b, c), d);
      k = _mm256_set1_epi32(int(0x6ED9EBA1));
    } else if (i < 60) {
      f = _mm256_or_si256(
          _mm256_or_si256(_mm256_and_si256(b, c), _mm256_and_si256(b, d)),
          _mm256_and_si256(c, d));
      k = _mm256_set1_epi32(int(0x8F1BBCDC));
    } else {
      f = _mm256_xor_si256(_mm256_xor_si256(b, c), d);
      k = _mm256_set1_epi32(int(0xCA62C1D6));
    }
    const __m256i tmp = _mm256_add_epi32(
        _mm256_add_epi32(_mm256_add_epi32(AUTHDB_ROTL8(a, 5), f),
                         _mm256_add_epi32(e, k)),
        w[i]);
    e = d;
    d = c;
    c = AUTHDB_ROTL8(b, 30);
    b = a;
    a = tmp;
  }
  const __m256i n0 = _mm256_add_epi32(h[0], a);
  const __m256i n1 = _mm256_add_epi32(h[1], b);
  const __m256i n2 = _mm256_add_epi32(h[2], c);
  const __m256i n3 = _mm256_add_epi32(h[3], d);
  const __m256i n4 = _mm256_add_epi32(h[4], e);
  h[0] = _mm256_blendv_epi8(h[0], n0, active);
  h[1] = _mm256_blendv_epi8(h[1], n1, active);
  h[2] = _mm256_blendv_epi8(h[2], n2, active);
  h[3] = _mm256_blendv_epi8(h[3], n3, active);
  h[4] = _mm256_blendv_epi8(h[4], n4, active);
}

__attribute__((target("avx2"))) void Sha256Avx2Block(
    __m256i h[8], const uint8_t* const ptrs[8], __m256i active) {
  __m256i w[64];
  LoadWords8(ptrs, 0, &w[0]);
  LoadWords8(ptrs, 32, &w[8]);
  for (int i = 16; i < 64; ++i) {
    const __m256i x15 = w[i - 15];
    const __m256i x2 = w[i - 2];
    const __m256i s0 = _mm256_xor_si256(
        _mm256_xor_si256(AUTHDB_ROTR8(x15, 7), AUTHDB_ROTR8(x15, 18)),
        _mm256_srli_epi32(x15, 3));
    const __m256i s1 = _mm256_xor_si256(
        _mm256_xor_si256(AUTHDB_ROTR8(x2, 17), AUTHDB_ROTR8(x2, 19)),
        _mm256_srli_epi32(x2, 10));
    w[i] = _mm256_add_epi32(_mm256_add_epi32(w[i - 16], s0),
                            _mm256_add_epi32(w[i - 7], s1));
  }
  __m256i a = h[0], b = h[1], c = h[2], d = h[3];
  __m256i e = h[4], f = h[5], g = h[6], hh = h[7];
  for (int i = 0; i < 64; ++i) {
    const __m256i s1 = _mm256_xor_si256(
        _mm256_xor_si256(AUTHDB_ROTR8(e, 6), AUTHDB_ROTR8(e, 11)),
        AUTHDB_ROTR8(e, 25));
    const __m256i ch =
        _mm256_xor_si256(_mm256_and_si256(e, f), _mm256_andnot_si256(e, g));
    const __m256i t1 = _mm256_add_epi32(
        _mm256_add_epi32(_mm256_add_epi32(hh, s1),
                         _mm256_add_epi32(ch, w[i])),
        _mm256_set1_epi32(int(kSha256K64[i])));
    const __m256i s0 = _mm256_xor_si256(
        _mm256_xor_si256(AUTHDB_ROTR8(a, 2), AUTHDB_ROTR8(a, 13)),
        AUTHDB_ROTR8(a, 22));
    const __m256i maj = _mm256_xor_si256(
        _mm256_xor_si256(_mm256_and_si256(a, b), _mm256_and_si256(a, c)),
        _mm256_and_si256(b, c));
    const __m256i t2 = _mm256_add_epi32(s0, maj);
    hh = g;
    g = f;
    f = e;
    e = _mm256_add_epi32(d, t1);
    d = c;
    c = b;
    b = a;
    a = _mm256_add_epi32(t1, t2);
  }
  const __m256i nw[8] = {
      _mm256_add_epi32(h[0], a), _mm256_add_epi32(h[1], b),
      _mm256_add_epi32(h[2], c), _mm256_add_epi32(h[3], d),
      _mm256_add_epi32(h[4], e), _mm256_add_epi32(h[5], f),
      _mm256_add_epi32(h[6], g), _mm256_add_epi32(h[7], hh)};
  for (int j = 0; j < 8; ++j) h[j] = _mm256_blendv_epi8(h[j], nw[j], active);
}

using Avx2BlockFn = void (*)(__m256i*, const uint8_t* const*, __m256i);

/// Shared 8-lane driver: walk every lane's block stream in lockstep,
/// masking finished lanes, then extract per-lane state words.
__attribute__((target("avx2"))) void Avx2Group(
    const Slice* msgs, size_t n, __m256i* h, Avx2BlockFn block_fn) {
  LaneSrc lanes[8];
  alignas(32) uint32_t blocks_left[8] = {0};
  size_t max_blocks = 0;
  for (size_t l = 0; l < n; ++l) {
    InitLane(msgs[l], &lanes[l]);
    blocks_left[l] = uint32_t(lanes[l].total_blocks);
    max_blocks = std::max(max_blocks, lanes[l].total_blocks);
  }
  const __m256i lane_blocks =
      _mm256_load_si256(reinterpret_cast<const __m256i*>(blocks_left));
  for (size_t b = 0; b < max_blocks; ++b) {
    const uint8_t* ptrs[8];
    for (int l = 0; l < 8; ++l) {
      ptrs[l] = (size_t(l) < n) ? LaneBlockPtr(lanes[l], b) : kZeroBlock;
    }
    // Lane active while it still has blocks: total_blocks > b.
    const __m256i active =
        _mm256_cmpgt_epi32(lane_blocks, _mm256_set1_epi32(int(b)));
    block_fn(h, ptrs, active);
  }
}

__attribute__((target("avx2"))) void Avx2Sha1Many(const Slice* msgs,
                                                  size_t count,
                                                  Digest160* out) {
  size_t i = 0;
  while (i < count) {
    const size_t n = std::min<size_t>(8, count - i);
    __m256i h[5] = {_mm256_set1_epi32(int(0x67452301)),
                    _mm256_set1_epi32(int(0xEFCDAB89)),
                    _mm256_set1_epi32(int(0x98BADCFE)),
                    _mm256_set1_epi32(int(0x10325476)),
                    _mm256_set1_epi32(int(0xC3D2E1F0))};
    Avx2Group(msgs + i, n, h, &Sha1Avx2Block);
    alignas(32) uint32_t lanes[5][8];
    for (int j = 0; j < 5; ++j) {
      _mm256_store_si256(reinterpret_cast<__m256i*>(lanes[j]), h[j]);
    }
    for (size_t l = 0; l < n; ++l) {
      for (int j = 0; j < 5; ++j) {
        StoreBE32(out[i + l].bytes.data() + 4 * j, lanes[j][l]);
      }
    }
    i += n;
  }
}

__attribute__((target("avx2"))) void Avx2Sha256Many(const Slice* msgs,
                                                    size_t count,
                                                    Digest256* out) {
  size_t i = 0;
  while (i < count) {
    const size_t n = std::min<size_t>(8, count - i);
    __m256i h[8] = {_mm256_set1_epi32(int(0x6a09e667)),
                    _mm256_set1_epi32(int(0xbb67ae85)),
                    _mm256_set1_epi32(int(0x3c6ef372)),
                    _mm256_set1_epi32(int(0xa54ff53a)),
                    _mm256_set1_epi32(int(0x510e527f)),
                    _mm256_set1_epi32(int(0x9b05688c)),
                    _mm256_set1_epi32(int(0x1f83d9ab)),
                    _mm256_set1_epi32(int(0x5be0cd19))};
    Avx2Group(msgs + i, n, h, &Sha256Avx2Block);
    alignas(32) uint32_t lanes[8][8];
    for (int j = 0; j < 8; ++j) {
      _mm256_store_si256(reinterpret_cast<__m256i*>(lanes[j]), h[j]);
    }
    for (size_t l = 0; l < n; ++l) {
      for (int j = 0; j < 8; ++j) {
        StoreBE32(out[i + l].bytes.data() + 4 * j, lanes[j][l]);
      }
    }
    i += n;
  }
}

#undef AUTHDB_ROTL8
#undef AUTHDB_ROTR8

#endif  // AUTHDB_SIMD_X86

/// Clamp a requested tier to what this build + CPU can actually run — the
/// same degradation AUTHDB_SHA_DISPATCH applies.
ShaDispatch ResolveTier(ShaDispatch tier) {
#if defined(AUTHDB_SIMD_X86)
  if (tier == ShaDispatch::kShaNi && !CpuHasShaNi()) tier = ShaDispatch::kAvx2;
  if (tier == ShaDispatch::kAvx2 && !CpuHasAvx2()) tier = ShaDispatch::kScalar;
  return tier;
#else
  (void)tier;
  return ShaDispatch::kScalar;
#endif
}

}  // namespace

void Sha1HashManyTier(ShaDispatch tier, const Slice* msgs, size_t count,
                      Digest160* out) {
  if (count == 0) return;
  switch (ResolveTier(tier)) {
#if defined(AUTHDB_SIMD_X86)
    case ShaDispatch::kShaNi:
      NiSha1Many(msgs, count, out);
      return;
    case ShaDispatch::kAvx2:
      // A lone message gains nothing from 8 idle lanes.
      if (count == 1) break;
      Avx2Sha1Many(msgs, count, out);
      return;
#endif
    default:
      break;
  }
  ScalarSha1Many(msgs, count, out);
}

void Sha256HashManyTier(ShaDispatch tier, const Slice* msgs, size_t count,
                        Digest256* out) {
  if (count == 0) return;
  switch (ResolveTier(tier)) {
#if defined(AUTHDB_SIMD_X86)
    case ShaDispatch::kShaNi:
      NiSha256Many(msgs, count, out);
      return;
    case ShaDispatch::kAvx2:
      if (count == 1) break;
      Avx2Sha256Many(msgs, count, out);
      return;
#endif
    default:
      break;
  }
  ScalarSha256Many(msgs, count, out);
}

void Sha1HashMany(const Slice* msgs, size_t count, Digest160* out) {
  Sha1HashManyTier(ActiveShaDispatch(), msgs, count, out);
}

void Sha256HashMany(const Slice* msgs, size_t count, Digest256* out) {
  Sha256HashManyTier(ActiveShaDispatch(), msgs, count, out);
}

}  // namespace simd
}  // namespace authdb
