#include "crypto/simd/cpu_features.h"

#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#include <cpuid.h>
#define AUTHDB_X86_64 1
#endif

namespace authdb {
namespace simd {

namespace {

#if defined(AUTHDB_X86_64)
bool CpuidLeaf7(unsigned int* ebx) {
  unsigned int eax = 0, ecx = 0, edx = 0;
  if (__get_cpuid_max(0, nullptr) < 7) return false;
  __cpuid_count(7, 0, eax, *ebx, ecx, edx);
  return true;
}

bool ProbeAvx2() {
  // AVX2 needs the CPUID bit AND OS support for ymm state (XGETBV).
  unsigned int eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return false;
  const bool osxsave = (ecx & (1u << 27)) != 0;
  if (!osxsave) return false;
  unsigned int xcr0_lo, xcr0_hi;
  __asm__ volatile("xgetbv" : "=a"(xcr0_lo), "=d"(xcr0_hi) : "c"(0));
  if ((xcr0_lo & 0x6) != 0x6) return false;  // xmm+ymm state enabled
  unsigned int ebx7 = 0;
  if (!CpuidLeaf7(&ebx7)) return false;
  return (ebx7 & (1u << 5)) != 0;  // AVX2
}

bool ProbeShaNi() {
  // SHA extensions operate on xmm registers: require the SHA bit plus
  // SSE4.1 (the kernels use pblendw/palignr-era instructions too).
  unsigned int eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return false;
  if ((ecx & (1u << 19)) == 0) return false;  // SSE4.1
  unsigned int ebx7 = 0;
  if (!CpuidLeaf7(&ebx7)) return false;
  return (ebx7 & (1u << 29)) != 0;  // SHA
}
#else
bool ProbeAvx2() { return false; }
bool ProbeShaNi() { return false; }
#endif

ShaDispatch Select() {
  const bool avx2 = ProbeAvx2();
  const bool shani = ProbeShaNi();
  ShaDispatch best = ShaDispatch::kScalar;
  if (avx2) best = ShaDispatch::kAvx2;
  if (shani) best = ShaDispatch::kShaNi;

  const char* env = std::getenv("AUTHDB_SHA_DISPATCH");
  if (env == nullptr || std::strcmp(env, "auto") == 0 || env[0] == '\0') {
    return best;
  }
  if (std::strcmp(env, "scalar") == 0) return ShaDispatch::kScalar;
  if (std::strcmp(env, "avx2") == 0) {
    return avx2 ? ShaDispatch::kAvx2 : ShaDispatch::kScalar;
  }
  if (std::strcmp(env, "shani") == 0) {
    if (shani) return ShaDispatch::kShaNi;
    return avx2 ? ShaDispatch::kAvx2 : ShaDispatch::kScalar;
  }
  return best;  // unrecognized value: behave like auto
}

}  // namespace

ShaDispatch ActiveShaDispatch() {
  // Function-local static: selected once, thread-safe, before any hashing.
  static const ShaDispatch d = Select();
  return d;
}

const char* ShaDispatchName(ShaDispatch d) {
  switch (d) {
    case ShaDispatch::kScalar:
      return "scalar";
    case ShaDispatch::kAvx2:
      return "avx2";
    case ShaDispatch::kShaNi:
      return "shani";
  }
  return "unknown";
}

bool CpuHasAvx2() { return ProbeAvx2(); }
bool CpuHasShaNi() { return ProbeShaNi(); }

}  // namespace simd
}  // namespace authdb
