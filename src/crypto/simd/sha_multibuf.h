#ifndef AUTHDB_CRYPTO_SIMD_SHA_MULTIBUF_H_
#define AUTHDB_CRYPTO_SIMD_SHA_MULTIBUF_H_

#include <cstddef>

#include "common/slice.h"
#include "crypto/sha.h"
#include "crypto/simd/cpu_features.h"

namespace authdb {
namespace simd {

/// Hash `count` independent messages: out[i] = SHA-1(msgs[i]). Dispatches
/// on ActiveShaDispatch(); any count (0 is a no-op), any alignment, any
/// lengths. Output is bit-identical to the scalar Sha1::Hash per message —
/// the tiers differ only in schedule, never in the function computed.
void Sha1HashMany(const Slice* msgs, size_t count, Digest160* out);

/// Hash `count` independent messages: out[i] = SHA-256(msgs[i]).
void Sha256HashMany(const Slice* msgs, size_t count, Digest256* out);

/// Tier-forced variants for tests and the bench ablation: run a specific
/// implementation regardless of the process-wide selection. A tier the CPU
/// cannot run falls back exactly like AUTHDB_SHA_DISPATCH would.
void Sha1HashManyTier(ShaDispatch tier, const Slice* msgs, size_t count,
                      Digest160* out);
void Sha256HashManyTier(ShaDispatch tier, const Slice* msgs, size_t count,
                        Digest256* out);

}  // namespace simd
}  // namespace authdb

#endif  // AUTHDB_CRYPTO_SIMD_SHA_MULTIBUF_H_
