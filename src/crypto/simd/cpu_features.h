#ifndef AUTHDB_CRYPTO_SIMD_CPU_FEATURES_H_
#define AUTHDB_CRYPTO_SIMD_CPU_FEATURES_H_

namespace authdb {
namespace simd {

/// The SHA implementation tier the process runs with. Selected exactly once
/// (first use, thread-safe), from the host CPU unless the environment
/// overrides it — every later HashMany call dispatches through the same
/// tier, so a run is never a mix of code paths.
///
/// Tiers (best first):
///  * kShaNi  — x86 SHA extensions: hardware SHA-1/SHA-256 rounds, one
///              message at a time (the instructions are single-buffer, but
///              3-6x faster per message than scalar rounds).
///  * kAvx2   — 8-lane multi-buffer: eight independent messages advance in
///              lockstep through vectorized rounds (32-bit word ops across
///              lanes). Wins only when a call carries many messages.
///  * kScalar — the portable FIPS 180 loops in crypto/sha.cc. Always
///              available; the byte-identical reference the other tiers are
///              cross-checked against.
enum class ShaDispatch {
  kScalar = 0,
  kAvx2 = 1,
  kShaNi = 2,
};

/// The tier selected for this process. First call probes CPUID and reads
/// AUTHDB_SHA_DISPATCH; later calls return the cached choice.
///
/// AUTHDB_SHA_DISPATCH values: "scalar", "avx2", "shani", "auto" (default).
/// A requested tier the CPU cannot run falls back to the best supported
/// tier at or below it — so CI can force the scalar leg on any hardware,
/// and "shani" on a SHA-NI-less box degrades to AVX2/scalar instead of
/// crashing on an illegal instruction.
ShaDispatch ActiveShaDispatch();

/// Human-readable tier name ("scalar" / "avx2" / "shani") for logs, bench
/// JSON, and the ablation artifact.
const char* ShaDispatchName(ShaDispatch d);

/// Raw capability probes (CPUID on x86-64, false elsewhere). Exposed for
/// tests and bench reporting; ActiveShaDispatch is the product-code entry.
bool CpuHasAvx2();
bool CpuHasShaNi();

}  // namespace simd
}  // namespace authdb

#endif  // AUTHDB_CRYPTO_SIMD_CPU_FEATURES_H_
