#ifndef AUTHDB_CRYPTO_BITMAP_H_
#define AUTHDB_CRYPTO_BITMAP_H_

#include <cstdint>
#include <vector>

#include "common/slice.h"

namespace authdb {

/// Dense bitmap with one bit per database record — the update-summary
/// payload of the freshness protocol (Section 3.1). Bits are turned on for
/// records updated (or re-certified) in the current rho-period, so the map
/// is sparse and compresses to ~2-3x the number of 1-bits.
class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(size_t nbits);

  void Resize(size_t nbits);
  size_t size() const { return nbits_; }

  void Set(size_t i);
  void Clear(size_t i);
  bool Get(size_t i) const;
  void Reset();  // all zero

  size_t CountOnes() const;
  /// Sorted positions of all set bits.
  std::vector<uint64_t> OnesPositions() const;

  bool operator==(const Bitmap& o) const {
    return nbits_ == o.nbits_ && words_ == o.words_;
  }

 private:
  size_t nbits_ = 0;
  std::vector<uint64_t> words_;
};

/// Sparse-bitmap compressor interface. Two codecs are provided, matching
/// the compression-technique citations in the paper ([14], [30]): a
/// varint gap coder and a word-aligned hybrid (WAH) run-length coder.
class BitmapCodec {
 public:
  virtual ~BitmapCodec() = default;
  virtual std::vector<uint8_t> Encode(const Bitmap& bm) const = 0;
  virtual Bitmap Decode(Slice data) const = 0;
  virtual const char* name() const = 0;
};

/// Encodes the sorted gap sequence between consecutive 1-bits with LEB128
/// varints. Size ~ (1..3 bytes) per 1-bit for sparse maps.
class VarintGapCodec : public BitmapCodec {
 public:
  std::vector<uint8_t> Encode(const Bitmap& bm) const override;
  Bitmap Decode(Slice data) const override;
  const char* name() const override { return "varint-gap"; }
};

/// 32-bit word-aligned hybrid RLE: literal words carry 31 payload bits,
/// fill words encode runs of all-0/all-1 31-bit groups.
class WahCodec : public BitmapCodec {
 public:
  std::vector<uint8_t> Encode(const Bitmap& bm) const override;
  Bitmap Decode(Slice data) const override;
  const char* name() const override { return "wah"; }
};

}  // namespace authdb

#endif  // AUTHDB_CRYPTO_BITMAP_H_
