#include "crypto/rsa.h"

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "crypto/sha.h"

namespace authdb {

namespace {
/// Expand a message into modulus-width pseudo-random bytes with a SHA-256
/// counter construction (a simplified full-domain hash; structurally the
/// same as the FDH used in condensed-RSA).
BigInt FullDomainHash(Slice message, const BigInt& n) {
  int width = (n.BitLength() + 7) / 8;
  std::vector<uint8_t> material;
  material.reserve(width + 32);
  uint32_t counter = 0;
  while (static_cast<int>(material.size()) < width) {
    Sha256 h;
    uint8_t ctr[4] = {static_cast<uint8_t>(counter >> 24),
                      static_cast<uint8_t>(counter >> 16),
                      static_cast<uint8_t>(counter >> 8),
                      static_cast<uint8_t>(counter)};
    h.Update(Slice(ctr, 4));
    h.Update(message);
    Digest256 d = h.Finish();
    material.insert(material.end(), d.bytes.begin(), d.bytes.end());
    ++counter;
  }
  material.resize(width);
  material[0] &= 0x3f;  // keep the hash below the modulus
  return BigInt::FromBytes(Slice(material.data(), material.size()));
}
}  // namespace

RsaPublicKey::RsaPublicKey(BigInt n, BigInt e)
    : n_(std::move(n)),
      e_(std::move(e)),
      mont_(std::make_shared<MontgomeryContext>(n_)) {}

BigInt RsaPublicKey::HashToModulus(Slice message) const {
  return FullDomainHash(message, n_);
}

bool RsaPublicKey::Verify(Slice message, const RsaSignature& sig) const {
  BigInt expected = FullDomainHash(message, n_);
  BigInt recovered = mont_->Exp(sig.value, e_);
  return BigInt::Compare(expected, recovered) == 0;
}

bool RsaPublicKey::VerifyCondensed(const std::vector<Slice>& messages,
                                   const RsaSignature& condensed) const {
  BigInt prod_mont = mont_->OneMont();
  for (const Slice& m : messages) {
    BigInt h = FullDomainHash(m, n_);
    prod_mont = mont_->Mul(prod_mont, mont_->ToMont(h));
  }
  BigInt expected = mont_->FromMont(prod_mont);
  BigInt recovered = mont_->Exp(condensed.value, e_);
  return BigInt::Compare(expected, recovered) == 0;
}

RsaSignature RsaPublicKey::Aggregate(
    const std::vector<RsaSignature>& sigs) const {
  BigInt acc_mont = mont_->OneMont();
  for (const RsaSignature& s : sigs) {
    acc_mont = mont_->Mul(acc_mont, mont_->ToMont(s.value));
  }
  return RsaSignature{mont_->FromMont(acc_mont)};
}

RsaPrivateKey RsaPrivateKey::Generate(int bits, Rng* rng) {
  AUTHDB_CHECK(bits >= 128);
  const BigInt e(65537);
  while (true) {
    BigInt p = BigInt::GeneratePrime(bits / 2, rng);
    BigInt q = BigInt::GeneratePrime(bits - bits / 2, rng);
    if (p == q) continue;
    BigInt n = BigInt::Mul(p, q);
    BigInt phi = BigInt::Mul(BigInt::Sub(p, BigInt(1)),
                             BigInt::Sub(q, BigInt(1)));
    BigInt d = BigInt::ModInverse(e, phi);
    if (d.IsZero()) continue;  // gcd(e, phi) != 1; re-draw primes
    RsaPrivateKey key;
    key.n_ = n;
    key.d_ = d;
    key.pub_ = RsaPublicKey(n, e);
    key.mont_ = std::make_shared<MontgomeryContext>(n);
    return key;
  }
}

RsaSignature RsaPrivateKey::Sign(Slice message) const {
  BigInt h = pub_.HashToModulus(message);
  return RsaSignature{mont_->Exp(h, d_)};
}

}  // namespace authdb
