#include "crypto/bas.h"

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "crypto/sha.h"

namespace authdb {

namespace {
constexpr int kWindowBits = 4;
constexpr int kWindowCount = 40;  // 160-bit scalars
}  // namespace

std::shared_ptr<const BasContext> BasContext::Generate(int p_bits, int r_bits,
                                                       Rng* rng) {
  BigInt r = BigInt::GeneratePrime(r_bits, rng);
  int c_bits = p_bits - r_bits;
  AUTHDB_CHECK(c_bits >= 3);
  BigInt p, c;
  while (true) {
    c = BigInt::Random(c_bits, rng);
    // Force c = 0 (mod 4) so that p = c*r - 1 = 3 (mod 4).
    c = BigInt::ShiftLeft(BigInt::ShiftRight(c, 2), 2);
    if (c.IsZero()) continue;
    p = BigInt::Sub(BigInt::Mul(c, r), BigInt(1));
    if (p.BitLength() != p_bits) continue;
    if (BigInt::IsProbablePrime(p, rng)) break;
  }
  auto ctx = std::shared_ptr<BasContext>(new BasContext());
  ctx->curve_ = std::make_unique<CurveGroup>(p, /*a=*/1, /*b=*/0, r, c);
  ctx->pairing_ = std::make_unique<TatePairing>(ctx->curve_.get());
  ctx->generator_ = ctx->curve_->FindGenerator();
  AUTHDB_CHECK(ctx->curve_->ScalarMult(ctx->generator_, r).infinity);
  ctx->BuildFixedBaseTable();
  return ctx;
}

std::shared_ptr<const BasContext> BasContext::Default() {
  static std::shared_ptr<const BasContext>* ctx = [] {
    Rng rng(0x4261735f64656661ULL);  // fixed seed: deterministic parameters
    return new std::shared_ptr<const BasContext>(
        Generate(/*p_bits=*/256, /*r_bits=*/160, &rng));
  }();
  return *ctx;
}

void BasContext::BuildFixedBaseTable() {
  fixed_base_.resize(kWindowCount);
  ECPoint base = generator_;
  for (int w = 0; w < kWindowCount; ++w) {
    fixed_base_[w].resize((1 << kWindowBits) - 1);
    ECPoint acc = base;
    for (int j = 0; j < (1 << kWindowBits) - 1; ++j) {
      fixed_base_[w][j] = acc;
      acc = curve_->Add(acc, base);
    }
    // base <- 2^kWindowBits * base
    for (int d = 0; d < kWindowBits; ++d) base = curve_->Double(base);
  }
}

CurveGroup::Jacobian BasContext::FixedBaseMultJac(const BigInt& k) const {
  BigInt scalar = BigInt::Compare(k, curve_->order()) >= 0
                      ? BigInt::Mod(k, curve_->order())
                      : k;
  CurveGroup::Jacobian acc = curve_->ToJacobian(ECPoint{});
  for (int w = 0; w < kWindowCount; ++w) {
    uint32_t nibble = 0;
    for (int b = 0; b < kWindowBits; ++b)
      nibble |= static_cast<uint32_t>(scalar.Bit(w * kWindowBits + b)) << b;
    if (nibble != 0)
      acc = curve_->JacAddAffine(acc, fixed_base_[w][nibble - 1]);
  }
  return acc;
}

ECPoint BasContext::FixedBaseMult(const BigInt& k) const {
  return curve_->ToAffine(FixedBaseMultJac(k));
}

BigInt BasContext::HashToScalar(Slice msg) const {
  Digest256 d = Sha256::Hash(msg);
  return BigInt::Mod(BigInt::FromBytes(d.AsSlice()), curve_->order());
}

void BasContext::HashToScalarMany(const Slice* msgs, size_t count,
                                  BigInt* out) const {
  if (count == 0) return;
  std::vector<Digest256> digests(count);
  Sha256::HashMany(msgs, count, digests.data());
  for (size_t i = 0; i < count; ++i) {
    out[i] = BigInt::Mod(BigInt::FromBytes(digests[i].AsSlice()),
                         curve_->order());
  }
}

ECPoint BasContext::HashToPoint(Slice msg, HashMode mode) const {
  if (mode == HashMode::kFast) return FixedBaseMult(HashToScalar(msg));
  const PrimeField& f = curve_->field();
  for (uint32_t ctr = 0;; ++ctr) {
    Sha256 h;
    uint8_t ctr_be[4] = {static_cast<uint8_t>(ctr >> 24),
                         static_cast<uint8_t>(ctr >> 16),
                         static_cast<uint8_t>(ctr >> 8),
                         static_cast<uint8_t>(ctr)};
    h.Update(Slice(ctr_be, 4));
    h.Update(msg);
    Digest256 d = h.Finish();
    BigInt x_plain = BigInt::Mod(BigInt::FromBytes(d.AsSlice()),
                                 curve_->field().p());
    BigInt x = f.FromPlain(x_plain);
    BigInt rhs = curve_->CurveRhs(x);
    if (rhs.IsZero() || !f.IsSquare(rhs)) continue;
    BigInt y = f.Sqrt(rhs);
    if (d.bytes[31] & 1) y = f.Neg(y);
    ECPoint pt{x, y, false};
    AUTHDB_DCHECK(curve_->IsOnCurve(pt));
    ECPoint cleared = curve_->ScalarMult(pt, curve_->cofactor());
    if (!cleared.infinity) return cleared;
  }
}

BasSignature BasContext::Aggregate(
    const std::vector<BasSignature>& sigs) const {
  std::vector<ECPoint> pts;
  pts.reserve(sigs.size());
  for (const auto& s : sigs) pts.push_back(s.point);
  return BasSignature{curve_->Sum(pts)};
}

BasSignature BasContext::Combine(const BasSignature& a,
                                 const BasSignature& b) const {
  return BasSignature{curve_->Add(a.point, b.point)};
}

BasSignature BasContext::Remove(const BasSignature& acc,
                                const BasSignature& s) const {
  return BasSignature{curve_->Add(acc.point, curve_->Negate(s.point))};
}

BasSignature BasContext::Finalize(const BasAccumulator& acc) const {
  return BasSignature{curve_->ToAffine(acc.jac)};
}

std::vector<BasSignature> BasContext::FinalizeBatch(
    const std::vector<const BasAccumulator*>& accs) const {
  std::vector<CurveGroup::Jacobian> js;
  js.reserve(accs.size());
  for (const BasAccumulator* a : accs) {
    js.push_back(a != nullptr ? a->jac
                              : CurveGroup::Jacobian{});  // Z=0: infinity
  }
  std::vector<ECPoint> pts = curve_->ToAffineBatch(js);
  std::vector<BasSignature> out;
  out.reserve(pts.size());
  for (ECPoint& p : pts) out.push_back(BasSignature{std::move(p)});
  return out;
}

// ---------------------------------------------------------------------------

BasPrivateKey BasPrivateKey::Generate(std::shared_ptr<const BasContext> ctx,
                                      Rng* rng) {
  BasPrivateKey key;
  key.x_ = BigInt::RandomBelow(ctx->order(), rng);
  ECPoint pk = ctx->FixedBaseMult(key.x_);
  key.pub_ = BasPublicKey(ctx, pk);
  key.ctx_ = std::move(ctx);
  return key;
}

BasSignature BasPrivateKey::Sign(Slice message,
                                 BasContext::HashMode mode) const {
  if (mode == BasContext::HashMode::kFast) {
    // sigma = (x * h) * G via the fixed-base table; identical group element
    // to x * H(m) with H(m) = h * G.
    BigInt h = ctx_->HashToScalar(message);
    BigInt e = BigInt::Mod(BigInt::Mul(x_, h), ctx_->order());
    return BasSignature{ctx_->FixedBaseMult(e)};
  }
  ECPoint hm = ctx_->HashToPoint(message, mode);
  return BasSignature{ctx_->curve().ScalarMult(hm, x_)};
}

bool BasPublicKey::Verify(Slice message, const BasSignature& sig,
                          BasContext::HashMode mode) const {
  const TatePairing& e = ctx_->pairing();
  Fp2Elem lhs = e.Pair(sig.point, ctx_->generator());
  Fp2Elem rhs = e.Pair(ctx_->HashToPoint(message, mode), pk_);
  return e.Equal(lhs, rhs);
}

bool BasPublicKey::VerifyAggregate(const std::vector<Slice>& messages,
                                   const BasSignature& agg,
                                   BasContext::HashMode mode) const {
  const CurveGroup& curve = ctx_->curve();
  std::vector<ECPoint> hashed;
  hashed.reserve(messages.size());
  if (mode == BasContext::HashMode::kFast) {
    // Batch-hash every message, sum exponents in Z_r, one fixed-base mult.
    std::vector<BigInt> hs(messages.size());
    ctx_->HashToScalarMany(messages.data(), messages.size(), hs.data());
    BigInt sum;
    for (const BigInt& h : hs)
      sum = BigInt::Mod(BigInt::Add(sum, h), ctx_->order());
    hashed.push_back(ctx_->FixedBaseMult(sum));
  } else {
    for (const Slice& m : messages)
      hashed.push_back(ctx_->HashToPoint(m, mode));
  }
  ECPoint h_sum = curve.Sum(hashed);
  const TatePairing& e = ctx_->pairing();
  Fp2Elem lhs = e.Pair(agg.point, ctx_->generator());
  Fp2Elem rhs = e.Pair(h_sum, pk_);
  return e.Equal(lhs, rhs);
}

std::vector<bool> BasPublicKey::VerifyAggregateBatch(
    const std::vector<BasAggregateClaim>& claims,
    BasContext::HashMode mode) const {
  std::vector<bool> ok(claims.size(), false);
  if (claims.empty()) return ok;
  const CurveGroup& curve = ctx_->curve();
  // Per-claim hash-sum accumulators; the affine conversion is deferred and
  // shared below.
  std::vector<CurveGroup::Jacobian> sums;
  sums.reserve(claims.size());
  if (mode == BasContext::HashMode::kFast) {
    // Flatten every claim's messages into one multi-buffer SHA pass.
    std::vector<Slice> flat;
    for (const auto& c : claims)
      flat.insert(flat.end(), c.messages.begin(), c.messages.end());
    std::vector<BigInt> hs(flat.size());
    ctx_->HashToScalarMany(flat.data(), flat.size(), hs.data());
    size_t at = 0;
    for (const auto& c : claims) {
      BigInt sum;
      for (size_t i = 0; i < c.messages.size(); ++i)
        sum = BigInt::Mod(BigInt::Add(sum, hs[at++]), ctx_->order());
      sums.push_back(ctx_->FixedBaseMultJac(sum));
    }
  } else {
    for (const auto& c : claims) {
      CurveGroup::Jacobian acc = curve.ToJacobian(ECPoint{});
      for (const Slice& m : c.messages)
        acc = curve.JacAddAffine(acc, ctx_->HashToPoint(m, mode));
      sums.push_back(acc);
    }
  }
  // ONE Montgomery batch inversion across every claim's hash sum — the
  // client-side mirror of FinalizeBatch on the server.
  std::vector<ECPoint> h_sums = curve.ToAffineBatch(sums);
  const TatePairing& e = ctx_->pairing();
  for (size_t i = 0; i < claims.size(); ++i) {
    Fp2Elem lhs = e.Pair(claims[i].agg.point, ctx_->generator());
    Fp2Elem rhs = e.Pair(h_sums[i], pk_);
    ok[i] = e.Equal(lhs, rhs);
  }
  return ok;
}

}  // namespace authdb
