#ifndef AUTHDB_CRYPTO_RSA_H_
#define AUTHDB_CRYPTO_RSA_H_

#include <memory>
#include <vector>

#include "common/random.h"
#include "common/slice.h"
#include "common/status.h"
#include "crypto/bignum.h"

namespace authdb {

/// An RSA signature (the full modulus width, 128 bytes at 1024 bits).
struct RsaSignature {
  BigInt value;
};

/// RSA public key with batch ("condensed RSA") verification support
/// (Mykletun, Narasimha & Tsudik, TOS'06 — the paper's RSA baseline).
class RsaPublicKey {
 public:
  RsaPublicKey() = default;
  RsaPublicKey(BigInt n, BigInt e);

  /// Verify a single signature over `message`.
  bool Verify(Slice message, const RsaSignature& sig) const;

  /// Verify a condensed signature against the batch of messages it covers:
  /// (prod sigma_i)^e == prod H(m_i) mod n.
  bool VerifyCondensed(const std::vector<Slice>& messages,
                       const RsaSignature& condensed) const;

  /// Multiply signatures modulo n — condensed-RSA aggregation.
  RsaSignature Aggregate(const std::vector<RsaSignature>& sigs) const;

  const BigInt& n() const { return n_; }
  int modulus_bytes() const { return (n_.BitLength() + 7) / 8; }

  /// Full-domain-ish hash of a message into Z_n.
  BigInt HashToModulus(Slice message) const;

 private:
  BigInt n_, e_;
  std::shared_ptr<MontgomeryContext> mont_;
};

/// RSA private key (sign side, held by the data aggregator).
class RsaPrivateKey {
 public:
  /// Generate a fresh key pair with `bits`-bit modulus (default 1024, the
  /// security level the paper equates to 160-bit ECC).
  static RsaPrivateKey Generate(int bits, Rng* rng);

  RsaSignature Sign(Slice message) const;
  const RsaPublicKey& public_key() const { return pub_; }

 private:
  RsaPrivateKey() = default;
  BigInt n_, d_;
  RsaPublicKey pub_;
  std::shared_ptr<MontgomeryContext> mont_;
};

}  // namespace authdb

#endif  // AUTHDB_CRYPTO_RSA_H_
